// Tests for src/sim: the discrete-event runtime's contract with the
// synchronous Network (fault-free ledger/center parity), the
// determinism rules of docs/simulation.md (same seed + any EKM_THREADS
// → identical event order and metrics), fault accounting
// (drop/retransmit billing), scenario parsing, and the streaming
// deployment path.
#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "core/pipeline.hpp"
#include "data/generators.hpp"
#include "net/summary_codec.hpp"
#include "sim/coordinator.hpp"
#include "sim/event_queue.hpp"
#include "sim/scenario.hpp"
#include "sim/sim_network.hpp"

namespace ekm {
namespace {

std::vector<Dataset> make_parts(std::size_t m, std::size_t n, std::size_t d,
                                std::uint64_t seed) {
  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = d;
  spec.k = 4;
  Rng rng = make_rng(seed, 0xdadaULL);
  const Dataset data = make_gaussian_mixture(spec, rng);
  Rng part_rng = make_rng(seed, 0x9a87ULL);
  return partition_random(data, m, part_rng);
}

PipelineConfig base_config(std::uint64_t seed = 11) {
  PipelineConfig cfg;
  cfg.k = 3;
  cfg.epsilon = 0.3;
  cfg.seed = seed;
  cfg.coreset_size = 200;
  cfg.pca_dim = 8;
  return cfg;
}

TEST(EventQueue, PopsByTimeThenPushOrder) {
  EventQueue q;
  q.push({2.0, 0, SimEventType::kDeliver, 0, true, 0, 10});
  q.push({1.0, 0, SimEventType::kSendStart, 1, true, 0, 10});
  q.push({1.0, 0, SimEventType::kDrop, 2, false, 0, 10});
  ASSERT_EQ(q.size(), 3u);
  // Time order first; the two t=1 events tie-break by push order.
  SimEvent a = q.pop();
  EXPECT_EQ(a.site, 1u);
  EXPECT_EQ(a.seq, 1u);
  SimEvent b = q.pop();
  EXPECT_EQ(b.site, 2u);
  SimEvent c = q.pop();
  EXPECT_EQ(c.site, 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW((void)q.pop(), precondition_error);
}

TEST(Scenario, PresetsExistAndParse) {
  for (const std::string& name : sim_scenario_names()) {
    const auto preset = sim_scenario_preset(name);
    ASSERT_TRUE(preset.has_value()) << name;
    EXPECT_EQ(preset->name, name);
    const SimScenario parsed = parse_scenario(name);
    EXPECT_EQ(parsed.name, name);
  }
  EXPECT_FALSE(sim_scenario_preset("no-such-scenario").has_value());
}

TEST(Scenario, ParserAppliesOverrides) {
  const SimScenario s = parse_scenario("lora-field,loss=0.5,retries=3,skew=4");
  EXPECT_EQ(s.radio.name, "LoRa SF7");
  EXPECT_DOUBLE_EQ(s.loss_rate, 0.5);
  EXPECT_EQ(s.max_retries, 3);
  EXPECT_DOUBLE_EQ(s.site_speed_skew, 4.0);
  // Preset fields not overridden survive.
  EXPECT_DOUBLE_EQ(s.jitter_frac, 0.2);

  const SimScenario custom = parse_scenario("radio=ble,dropout=0.25");
  EXPECT_EQ(custom.name, "custom");
  EXPECT_EQ(custom.radio.name, "BLE 1M");
  EXPECT_DOUBLE_EQ(custom.dropout_rate, 0.25);

  EXPECT_THROW((void)parse_scenario("no-such-scenario"), precondition_error);
  EXPECT_THROW((void)parse_scenario("loss=nope"), precondition_error);
  EXPECT_THROW((void)parse_scenario("frobnicate=1"), precondition_error);
  EXPECT_THROW((void)parse_scenario("radio=zigbee"), precondition_error);
  EXPECT_THROW((void)parse_scenario("loss=0.1,lora-field"), precondition_error);
}

TEST(Sim, ZeroFaultMatchesSynchronousNetwork) {
  const auto parts = make_parts(5, 1500, 24, 11);
  const PipelineConfig cfg = base_config();
  const Coordinator coord(parse_scenario("ideal"));
  ASSERT_TRUE(coord.scenario().fault_free());
  ASSERT_FALSE(parse_scenario("lossy-mesh").fault_free());
  for (const PipelineKind kind :
       {PipelineKind::kNoReduction, PipelineKind::kBklw,
        PipelineKind::kJlBklw}) {
    const PipelineResult sync = run_distributed_pipeline(kind, parts, cfg);
    const SimReport sim = coord.run(kind, parts, cfg);
    // The paper's ledgers must match bit for bit...
    EXPECT_EQ(sim.result.uplink, sync.uplink) << pipeline_name(kind);
    EXPECT_EQ(sim.result.downlink, sync.downlink) << pipeline_name(kind);
    // ...and so must the model the server ends up with.
    EXPECT_EQ(sim.result.centers, sync.centers) << pipeline_name(kind);
    EXPECT_EQ(sim.result.summary_points, sync.summary_points);
    // Fault-free still takes time: radios are finite.
    EXPECT_GT(sim.completion_seconds, 0.0);
    EXPECT_EQ(sim.uplink_stats.drops, 0u);
    EXPECT_EQ(sim.uplink_stats.retransmit_bits, 0u);
    EXPECT_EQ(sim.uplink_stats.attempts, sim.result.uplink.messages);
  }
}

TEST(Sim, EventOrderDeterministicAcrossThreadCounts) {
  const auto parts = make_parts(4, 1200, 16, 23);
  const PipelineConfig cfg = base_config(23);
  const Coordinator coord(parse_scenario("lossy-mesh,seed=23"));

  set_parallel_threads(1);
  const SimReport one = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(8);
  const SimReport eight = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(0);

  ASSERT_EQ(one.event_log.size(), eight.event_log.size());
  for (std::size_t i = 0; i < one.event_log.size(); ++i) {
    EXPECT_EQ(one.event_log[i], eight.event_log[i]) << "event " << i;
  }
  EXPECT_EQ(one.completion_seconds, eight.completion_seconds);
  EXPECT_EQ(one.energy_joules, eight.energy_joules);
  EXPECT_EQ(one.result.uplink, eight.result.uplink);
  EXPECT_EQ(one.result.centers, eight.result.centers);

  // The log is a valid trace: times never rewind.
  for (std::size_t i = 1; i < one.event_log.size(); ++i) {
    EXPECT_GE(one.event_log[i].time, one.event_log[i - 1].time);
  }
}

TEST(Sim, DropRetransmitLedgerAccounting) {
  const auto parts = make_parts(4, 1000, 16, 31);
  const PipelineConfig cfg = base_config(31);
  const Coordinator ideal(parse_scenario("ideal"));
  const Coordinator lossy(parse_scenario("radio=wifi,loss=0.5,retries=16"));

  const SimReport clean = ideal.run(PipelineKind::kBklw, parts, cfg);
  const SimReport faulty = lossy.run(PipelineKind::kBklw, parts, cfg);

  // Losses never corrupt the application layer: same goodput ledger,
  // same centers.
  EXPECT_EQ(faulty.result.uplink, clean.result.uplink);
  EXPECT_EQ(faulty.result.centers, clean.result.centers);

  // At 50% loss over dozens of frames, drops are certain; each drop is
  // one retransmission billed once at the frame's wire size.
  const LinkStats up = faulty.uplink_stats;
  const LinkStats down = faulty.downlink_stats;
  EXPECT_GT(up.drops + down.drops, 0u);
  EXPECT_EQ(up.attempts, faulty.result.uplink.messages + up.drops);
  EXPECT_EQ(down.attempts, faulty.result.downlink.messages + down.drops);
  EXPECT_GT(up.retransmit_bits + down.retransmit_bits, 0u);

  // Retries cost the radio: more airtime, more energy, more time.
  EXPECT_GT(up.airtime_s + down.airtime_s,
            clean.uplink_stats.airtime_s + clean.downlink_stats.airtime_s);
  EXPECT_GT(faulty.energy_joules, clean.energy_joules);
  EXPECT_GT(faulty.completion_seconds, clean.completion_seconds);

  // The trace shows the drops and redeliveries.
  std::size_t drop_events = 0, deliver_events = 0;
  for (const SimEvent& ev : faulty.event_log) {
    drop_events += ev.type == SimEventType::kDrop;
    deliver_events += ev.type == SimEventType::kDeliver;
  }
  EXPECT_EQ(drop_events, up.drops + down.drops);
  EXPECT_EQ(deliver_events,
            faulty.result.uplink.messages + faulty.result.downlink.messages);
}

TEST(Sim, StragglersAndSkewSlowCompletionNotLedgers) {
  const auto parts = make_parts(6, 1200, 16, 41);
  const PipelineConfig cfg = base_config(41);
  // Big per-scalar cost so compute dominates the radio.
  const Coordinator uniform(parse_scenario("radio=5g,sps=1e-5"));
  const Coordinator skewed(
      parse_scenario("radio=5g,sps=1e-5,stragglers=0.5,slowdown=16"));

  const SimReport fast = uniform.run(PipelineKind::kBklw, parts, cfg);
  const SimReport slow = skewed.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_GT(slow.completion_seconds, fast.completion_seconds);
  EXPECT_EQ(slow.result.uplink, fast.result.uplink);
  EXPECT_EQ(slow.result.centers, fast.result.centers);
}

TEST(Sim, DropoutWindowsAppearInTraceAndClock) {
  const auto parts = make_parts(4, 800, 8, 51);
  const PipelineConfig cfg = base_config(51);
  const Coordinator coord(
      parse_scenario("radio=wifi,dropout=0.6,outage=7.5,seed=51"));
  const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);
  std::size_t outages = 0;
  for (const SimEvent& ev : report.event_log) {
    outages += ev.type == SimEventType::kOutage;
  }
  EXPECT_GT(outages, 0u);
  EXPECT_EQ(report.outages, outages);
  // Each outage stalls a site for 7.5 virtual seconds.
  EXPECT_GT(report.completion_seconds, 7.5);
}

TEST(Sim, HugeRetryBudgetStillInjectsLoss) {
  // Regression: the retry policy must not truncate through the 16-bit
  // event attempt tag — retries=65536 once wrapped to 0 and silently
  // disabled loss.
  const auto parts = make_parts(3, 600, 8, 71);
  const PipelineConfig cfg = base_config(71);
  const Coordinator coord(
      parse_scenario("radio=wifi,loss=0.5,retries=65536,seed=71"));
  const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_GT(report.uplink_stats.drops + report.downlink_stats.drops, 0u);
  EXPECT_GT(report.uplink_stats.retransmit_bits +
                report.downlink_stats.retransmit_bits,
            0u);
}

TEST(Sim, StreamingDeploymentOverSimulatedLinks) {
  const std::size_t m = 3, rounds = 4;
  const auto parts = make_parts(m, 1600, 12, 61);
  PipelineConfig cfg = base_config(61);
  StreamingCoresetOptions sopts;
  sopts.k = cfg.k;
  sopts.leaf_size = 128;
  sopts.coreset_size = 64;
  sopts.seed = 61;
  const Coordinator coord(parse_scenario("ble-swarm,seed=61"));
  const SimReport report = coord.run_streaming(parts, sopts, cfg, rounds);
  EXPECT_EQ(report.pipeline, "streaming");
  // One summary frame per site per round.
  EXPECT_EQ(report.result.uplink.messages, m * rounds);
  EXPECT_EQ(report.result.centers.rows(), cfg.k);
  EXPECT_GT(report.result.summary_points, 0u);
  EXPECT_GT(report.completion_seconds, 0.0);

  // Deterministic across thread counts, like everything else.
  set_parallel_threads(1);
  const SimReport again = coord.run_streaming(parts, sopts, cfg, rounds);
  set_parallel_threads(0);
  EXPECT_EQ(again.result.centers, report.result.centers);
  EXPECT_EQ(again.completion_seconds, report.completion_seconds);
}

TEST(Sim, StreamRoundUplinkOverSynchronousChannel) {
  // The streaming round helper works over any Port — here the plain
  // synchronous Channel.
  Rng rng = make_rng(71);
  const Dataset batch(Matrix::gaussian(300, 6, rng));
  StreamingCoresetOptions sopts;
  sopts.k = 2;
  sopts.leaf_size = 64;
  sopts.coreset_size = 32;
  StreamingCoreset stream(sopts);
  Channel ch;

  // A round before any data ships an empty frame to keep the server's
  // receive loop matched.
  const Coreset empty = stream_round_uplink(stream, Dataset{}, ch);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(decode_coreset(ch.receive()).size(), 0u);

  const Coreset sent = stream_round_uplink(stream, batch, ch, 8);
  EXPECT_GT(sent.size(), 0u);
  const Coreset received = decode_coreset(ch.receive());
  EXPECT_EQ(received.points.points(), sent.points.points());
  // QT billing applies to the summary's point coordinates.
  EXPECT_EQ(ch.ledger().messages, 2u);
}

TEST(Sim, ReceiveOnIdleNetworkThrows) {
  SimNetwork net(2, parse_scenario("ideal"));
  EXPECT_THROW((void)net.uplink(0).receive(), precondition_error);
  EXPECT_THROW((void)net.uplink(2), precondition_error);
}

}  // namespace
}  // namespace ekm
