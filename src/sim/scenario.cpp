#include "sim/scenario.hpp"

#include <cstdlib>

#include "common/expects.hpp"

namespace ekm {
namespace {

SimScenario ideal() {
  SimScenario s;
  s.name = "ideal";
  s.radio = wifi_link();
  return s;
}

SimScenario wifi_office() {
  SimScenario s;
  s.name = "wifi-office";
  s.radio = wifi_link();
  s.loss_rate = 0.01;
  s.jitter_frac = 0.05;
  return s;
}

SimScenario ble_swarm() {
  SimScenario s;
  s.name = "ble-swarm";
  s.radio = ble_link();
  s.loss_rate = 0.02;
  s.dropout_rate = 0.05;
  s.outage_seconds = 2.0;
  s.jitter_frac = 0.1;
  return s;
}

SimScenario lora_field() {
  SimScenario s;
  s.name = "lora-field";
  s.radio = lora_link();
  s.loss_rate = 0.05;
  s.dropout_rate = 0.02;
  s.outage_seconds = 30.0;
  s.jitter_frac = 0.2;
  s.site_speed_skew = 2.0;
  return s;
}

SimScenario nr5g_fleet() {
  SimScenario s;
  s.name = "nr5g-fleet";
  s.radio = nr5g_link();
  s.loss_rate = 0.005;
  s.straggler_fraction = 0.25;
  s.straggler_slowdown = 4.0;
  return s;
}

SimScenario lossy_mesh() {
  SimScenario s;
  s.name = "lossy-mesh";
  s.radio = wifi_link();
  s.loss_rate = 0.2;
  s.dropout_rate = 0.1;
  s.outage_seconds = 1.0;
  s.jitter_frac = 0.3;
  return s;
}

LinkModel radio_by_name(const std::string& name) {
  if (name == "lora") return lora_link();
  if (name == "ble") return ble_link();
  if (name == "wifi") return wifi_link();
  if (name == "5g" || name == "nr5g") return nr5g_link();
  EKM_EXPECTS_MSG(false, "unknown radio class '" + name +
                             "' (expected lora|ble|wifi|5g)");
  return {};
}

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  EKM_EXPECTS_MSG(end != value.c_str() && *end == '\0',
                  "malformed value for scenario key '" + key + "': " + value);
  return v;
}

void apply_override(SimScenario& s, const std::string& key,
                    const std::string& value) {
  if (key == "radio") {
    s.radio = radio_by_name(value);
  } else if (key == "loss") {
    s.loss_rate = parse_double(key, value);
    EKM_EXPECTS_MSG(s.loss_rate >= 0.0 && s.loss_rate < 1.0,
                    "loss must be in [0, 1)");
  } else if (key == "dropout") {
    s.dropout_rate = parse_double(key, value);
    EKM_EXPECTS_MSG(s.dropout_rate >= 0.0 && s.dropout_rate <= 1.0,
                    "dropout must be in [0, 1]");
  } else if (key == "outage") {
    s.outage_seconds = parse_double(key, value);
  } else if (key == "retries") {
    s.max_retries = static_cast<int>(parse_double(key, value));
    EKM_EXPECTS_MSG(s.max_retries >= 0, "retries must be >= 0");
  } else if (key == "jitter") {
    s.jitter_frac = parse_double(key, value);
    EKM_EXPECTS_MSG(s.jitter_frac >= 0.0 && s.jitter_frac < 1.0,
                    "jitter must be in [0, 1)");
  } else if (key == "stragglers") {
    s.straggler_fraction = parse_double(key, value);
    EKM_EXPECTS_MSG(s.straggler_fraction >= 0.0 && s.straggler_fraction <= 1.0,
                    "stragglers must be in [0, 1]");
  } else if (key == "slowdown") {
    s.straggler_slowdown = parse_double(key, value);
    EKM_EXPECTS_MSG(s.straggler_slowdown >= 1.0, "slowdown must be >= 1");
  } else if (key == "skew") {
    s.site_speed_skew = parse_double(key, value);
    EKM_EXPECTS_MSG(s.site_speed_skew >= 1.0, "skew must be >= 1");
  } else if (key == "sps") {
    s.seconds_per_scalar = parse_double(key, value);
    EKM_EXPECTS_MSG(s.seconds_per_scalar >= 0.0, "sps must be >= 0");
  } else if (key == "server-speed") {
    s.server_speed = parse_double(key, value);
    EKM_EXPECTS_MSG(s.server_speed > 0.0, "server-speed must be > 0");
  } else if (key == "seed") {
    // Full 64-bit parse — a double round-trip would collapse seeds
    // above 2^53 and overflow into UB near 2^64.
    char* end = nullptr;
    s.seed = std::strtoull(value.c_str(), &end, 10);
    EKM_EXPECTS_MSG(end != value.c_str() && *end == '\0',
                    "malformed value for scenario key 'seed': " + value);
  } else {
    EKM_EXPECTS_MSG(false, "unknown scenario key '" + key + "'");
  }
}

}  // namespace

std::vector<std::string> sim_scenario_names() {
  return {"ideal",      "wifi-office", "ble-swarm",
          "lora-field", "nr5g-fleet",  "lossy-mesh"};
}

std::optional<SimScenario> sim_scenario_preset(const std::string& name) {
  if (name == "ideal") return ideal();
  if (name == "wifi-office") return wifi_office();
  if (name == "ble-swarm") return ble_swarm();
  if (name == "lora-field") return lora_field();
  if (name == "nr5g-fleet") return nr5g_fleet();
  if (name == "lossy-mesh") return lossy_mesh();
  return std::nullopt;
}

SimScenario parse_scenario(const std::string& spec) {
  SimScenario s = ideal();
  bool named = false;
  std::size_t pos = 0;
  bool first = true;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (token.empty()) {
      EKM_EXPECTS_MSG(first && spec.empty(), "empty scenario token");
      break;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      EKM_EXPECTS_MSG(first && !named, "scenario name must come first");
      const auto preset = sim_scenario_preset(token);
      EKM_EXPECTS_MSG(preset.has_value(), "unknown scenario '" + token + "'");
      s = *preset;
      named = true;
    } else {
      apply_override(s, token.substr(0, eq), token.substr(eq + 1));
      if (!named) s.name = "custom";
    }
    first = false;
  }
  return s;
}

}  // namespace ekm
