// k-Means cost functions (eq. (1) and (4) of the paper).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "linalg/matrix.hpp"

namespace ekm {

/// Index of the nearest center (rows of `centers`) to `p`, and the
/// squared distance to it.
struct NearestCenter {
  std::size_t index = 0;
  double sq_dist = 0.0;
};

[[nodiscard]] NearestCenter nearest_center(std::span<const double> p,
                                           const Matrix& centers);

/// cost(P, X) = sum_p w(p) * min_x ||p - x||^2. Weights default to 1, so
/// for unweighted datasets this is exactly eq. (1); for a coreset's point
/// set it is the sum in eq. (4) (the caller adds Δ).
[[nodiscard]] double kmeans_cost(const Dataset& data, const Matrix& centers);

/// Assignment of every point to its nearest center.
[[nodiscard]] std::vector<std::size_t> assign_to_centers(const Dataset& data,
                                                         const Matrix& centers);

/// Optimal 1-means center μ(P): the weighted sample mean (§3.1).
[[nodiscard]] std::vector<double> weighted_mean(const Dataset& data);

/// cost(P, {μ(P)}): the optimal 1-means cost, used by sensitivity
/// sampling and by the disSS bicriteria step.
[[nodiscard]] double one_means_cost(const Dataset& data);

}  // namespace ekm
