// Contract-checking macros in the spirit of the C++ Core Guidelines
// (I.6 Expects / I.8 Ensures). Violations throw so tests can assert on
// them; they are never compiled out because the library is used in a
// simulation harness where silent corruption would invalidate results.
#pragma once

#include <stdexcept>
#include <string>

namespace ekm {

/// Thrown when a precondition (EKM_EXPECTS) is violated.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a postcondition or internal invariant (EKM_ENSURES) fails.
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void fail_expects(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  throw precondition_error(std::string("precondition failed: ") + cond +
                           " at " + file + ":" + std::to_string(line) +
                           (msg.empty() ? "" : (" — " + msg)));
}

[[noreturn]] inline void fail_ensures(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  throw invariant_error(std::string("invariant failed: ") + cond + " at " +
                        file + ":" + std::to_string(line) +
                        (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace detail
}  // namespace ekm

#define EKM_EXPECTS(cond)                                              \
  do {                                                                 \
    if (!(cond)) ::ekm::detail::fail_expects(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define EKM_EXPECTS_MSG(cond, msg)                                       \
  do {                                                                   \
    if (!(cond)) ::ekm::detail::fail_expects(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define EKM_ENSURES(cond)                                              \
  do {                                                                 \
    if (!(cond)) ::ekm::detail::fail_ensures(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define EKM_ENSURES_MSG(cond, msg)                                       \
  do {                                                                   \
    if (!(cond)) ::ekm::detail::fail_ensures(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
