// Shared helpers for the reproduction benches: dataset construction at
// bench scale, flag parsing, and figure-style output formatting.
//
// Every bench accepts:
//   --full        paper-scale parameters (slow; default is laptop scale)
//   --mc N        Monte-Carlo repetitions (default depends on the bench)
//   --seed S      master seed
// The benches print the same rows/series as the paper's tables/figures;
// EXPERIMENTS.md records the expected shapes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "data/loaders.hpp"
#include "obs/recorder.hpp"

namespace ekm::bench {

struct BenchArgs {
  bool full = false;
  int monte_carlo = 0;  // 0 = bench default
  std::uint64_t seed = 2024;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        args.full = true;
      } else if (std::strcmp(argv[i], "--mc") == 0 && i + 1 < argc) {
        args.monte_carlo = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      }
    }
    return args;
  }
};

/// MNIST-stand-in at bench scale (real IDX file used if present in
/// ./data). Paper scale: 60000 x 784; laptop scale trims n only — the
/// dimension is the structurally important part.
inline Dataset mnist_dataset(const BenchArgs& args, std::size_t n_fast = 4000) {
  Rng rng = make_rng(args.seed, 0x0a71ULL);
  const std::size_t n = args.full ? 60000 : n_fast;
  return load_or_generate_mnist("data", n, rng);
}

/// NeurIPS-corpus stand-in: d = Θ(n) sparse counts. Paper scale:
/// 11463 x 5812.
inline Dataset neurips_dataset(const BenchArgs& args, std::size_t n_fast = 3000,
                               std::size_t d_fast = 1500) {
  Rng rng = make_rng(args.seed, 0x0a72ULL);
  const std::size_t n = args.full ? 11463 : n_fast;
  const std::size_t d = args.full ? 5812 : d_fast;
  return load_or_generate_neurips("data", n, d, rng);
}

/// Best-of-R wall-clock timing, routed through the observability
/// recorder's single timing path (obs/timed_section): every repetition
/// lands as a host wall-clock span on the installed recorder (if any),
/// so kernel benches and sim sweeps share one timing code path instead
/// of each bench carrying its own ad-hoc Timer loop.
inline double time_best_of(const char* label, int reps,
                           const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    best = std::min(best, timed_section(label, fn));
  }
  return best;
}

/// Provenance pairs collected from repeatable `--meta key=value` flags
/// (tools/run_bench.sh stamps git SHA, compiler, flags, EKM_THREADS).
using MetaPairs = std::vector<std::pair<std::string, std::string>>;

/// Parses one `--meta key=value` occurrence into `meta`; returns false
/// (with a message) on a missing '=' so callers can exit 2.
inline bool parse_meta_pair(const char* value, MetaPairs& meta) {
  const char* eq = std::strchr(value, '=');
  if (eq == nullptr || eq == value) {
    std::fprintf(stderr, "--meta expects key=value, got '%s'\n", value);
    return false;
  }
  meta.emplace_back(std::string(value, eq), std::string(eq + 1));
  return true;
}

/// Minimal JSON string escaping for provenance values (compiler flag
/// strings can contain quotes and backslashes).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Writes `"provenance": {...},` (with trailing comma + newline) if any
/// --meta pairs were given; writes nothing otherwise, so benches run
/// without run_bench.sh emit byte-identical JSON to before.
inline void write_provenance(std::FILE* f, const MetaPairs& meta,
                             const char* indent) {
  if (meta.empty()) return;
  std::fprintf(f, "%s\"provenance\": {", indent);
  for (std::size_t i = 0; i < meta.size(); ++i) {
    std::fprintf(f, "%s\"%s\": \"%s\"", i == 0 ? "" : ", ",
                 json_escape(meta[i].first).c_str(),
                 json_escape(meta[i].second).c_str());
  }
  std::fprintf(f, "},\n");
}

/// Prints one figure panel: the empirical CDF of `values` labelled as the
/// paper's plots are (e.g. "Fig1a MNIST normalized-cost JL+FSS").
inline void print_cdf(const std::string& panel, const std::string& series,
                      std::span<const double> values) {
  const EmpiricalCdf cdf = empirical_cdf(values);
  std::printf("# %s — CDF for %s (x p)\n", panel.c_str(), series.c_str());
  std::fputs(format_cdf(cdf, 16).c_str(), stdout);
}

/// Prints a paper-style summary row.
inline void print_row(const std::string& name, const ExperimentSeries& s) {
  const Summary cost = summarize(s.costs());
  const Summary comm = summarize(s.comm_bits());
  const Summary time = summarize(s.device_times());
  std::printf("%-14s cost=%.4f (sd %.4f)  comm=%.3e  time=%.3fs\n",
              name.c_str(), cost.mean, cost.stddev, comm.mean, time.mean);
}

}  // namespace ekm::bench
