// PhaseScheduler — drives a protocol TaskGraph over a Fabric.
//
// The scheduler pops the lowest-id ready task, runs its action on the
// protocol thread, and records a TaskSpan of the owning actor's virtual
// clock before/after (zeros on the synchronous Network, whose clocks
// do not exist). Because the builders in src/distributed add tasks in
// the program order of the PR 4 lock-step loops — a valid topological
// order — lowest-ready-id execution replays exactly that order: if the
// smallest unexecuted id's dependencies all carry smaller ids, it is
// ready the moment its predecessors finish, so the pop sequence is the
// creation sequence. Host-side behavior (sends, receives, RNG draws,
// ledgers) is therefore bitwise identical to the loops it replaced, at
// any overlap setting.
//
// Where, then, does phase overlap live? On the fabric's virtual clock.
// In the discrete-event simulator each frame's fate is sealed at send
// time, and a *barrier* (kBarrier task collecting a round) commits once
// every input is final: delivered, or known-expired. With overlap off
// the server learns of a miss only when the round deadline passes —
// the PR 3/4 behavior — so one straggler pins every barrier to its
// full deadline. With overlap on (SimNetwork::set_phase_overlap,
// scenario key `overlap=`), a sender-side expiry is NAK'd to the
// server out-of-band (one control-frame latency, no payload airtime,
// nothing billed), the barrier commits at the last *final* input
// instead of the cutoff, and every downstream task — the broadcast,
// the fast sites' next-phase compute, their uplinks — starts that much
// earlier in virtual time while the straggler's own timeline still
// runs. Merge barriers stay committed-only: nothing is aggregated
// speculatively, so a fault-free or infinite-deadline run is bitwise
// identical with overlap on or off (there the server already learns of
// an expiry the moment the sender gives up).
//
// The trace doubles as the per-site timeline: site_timeline(i) is the
// sequence of spans actor i executed, on its own virtual clock.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "sched/task_graph.hpp"

namespace ekm {

/// One executed task, stamped with the owning actor's virtual clock
/// before and after the action (both 0 on a clock-less fabric).
struct TaskSpan {
  TaskId id = 0;
  TaskKind kind = TaskKind::kCompute;
  std::size_t actor = kServerActor;
  std::string label;
  double start_s = 0.0;
  double finish_s = 0.0;
};

class PhaseScheduler {
 public:
  explicit PhaseScheduler(Fabric& net) : net_(&net) {}

  /// Runs the graph to quiescence: repeatedly executes the lowest-id
  /// ready task (actions may add further tasks mid-run). Throws
  /// invariant_error if tasks remain that can never become ready —
  /// impossible for graphs built through TaskGraph::add, which
  /// validates dependencies, but asserted anyway.
  void run(TaskGraph& graph);

  /// Every task executed, in execution order.
  [[nodiscard]] const std::vector<TaskSpan>& trace() const { return trace_; }

  /// The spans one actor executed (its timeline on its own clock).
  [[nodiscard]] std::vector<TaskSpan> site_timeline(std::size_t actor) const {
    std::vector<TaskSpan> out;
    for (const TaskSpan& s : trace_) {
      if (s.actor == actor) out.push_back(s);
    }
    return out;
  }

 private:
  [[nodiscard]] double actor_clock(std::size_t actor) const {
    return actor == kServerActor ? net_->server_time()
                                 : net_->site_time(actor);
  }

  /// Completion record per executed task id, kept so a dependent task
  /// can record a flow arrow (obs/recorder.hpp RecordedFlow) from each
  /// cross-actor dependency's finish to its own start.
  struct Finished {
    std::size_t actor = kServerActor;
    double finish_s = 0.0;
    bool done = false;
  };

  Fabric* net_;
  std::vector<TaskSpan> trace_;
  std::vector<Finished> finished_;
};

}  // namespace ekm
