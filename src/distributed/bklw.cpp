#include "distributed/bklw.hpp"

#include <algorithm>

#include "distributed/dispca.hpp"
#include "distributed/disss.hpp"
#include "dr/pca.hpp"
#include "net/summary_codec.hpp"
#include "obs/recorder.hpp"
#include "sched/scheduler.hpp"

namespace ekm {

// BKLW composes the two task-graph protocols (disPCA, disSS) with a
// projection phase between them — itself a small per-site graph: each
// site's basis collect feeds its local projection, with no cross-site
// dependency at all. That independence is the point of phase overlap:
// on the simulated fabric a fast site's basis arrives, it projects and
// enters disSS on its own clock, regardless of what a straggler's
// timeline is still doing.
Coreset bklw_coreset(std::span<const Dataset> parts, const BklwOptions& opts,
                     Fabric& net, Stopwatch& device_work, std::uint64_t seed) {
  ObsKernelScope obs_scope("bklw_coreset");
  EKM_EXPECTS(!parts.empty());
  std::size_t n_total = 0;
  std::size_t d = 0;
  for (const Dataset& p : parts) {
    n_total += p.size();
    if (p.size() > 0) d = p.dim();
  }
  EKM_EXPECTS_MSG(n_total > 0, "all sources empty");

  // --- disPCA: merge the global principal subspace. ---
  DisPcaOptions popts;
  const std::size_t t = opts.intrinsic_dim > 0
                            ? opts.intrinsic_dim
                            : fss_intrinsic_dim(opts.k, opts.epsilon, n_total, d);
  popts.t1 = t;
  popts.t2 = t;
  popts.round_deadline_s = opts.round_deadline_s;
  popts.min_responders = opts.min_responders;
  const DisPcaResult pca = dispca(parts, popts, net, device_work);

  // --- each source projects locally: coords_i = A_i V (n_i x t2). ---
  // (The ambient projected set of Theorem 5.1 is coords · V^T; working in
  // coordinates is equivalent for sampling and k-means since V is
  // orthonormal, and it is what keeps the disSS uplink at t2 scalars per
  // point.)
  std::vector<Dataset> projected(parts.size());
  TaskGraph graph;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].empty()) {
      (void)graph.add({TaskKind::kCollect, i, "bklw/drain-basis",
                       [&net, i] {
                         // Even an empty site consumes its copy of the
                         // broadcast: a frame left queued would alias
                         // the next downlink read on this link (disSS's
                         // allocation, or a refine round's centers).
                         (void)net.downlink(i).receive_by(kNoRound);
                       },
                       {}});
      continue;
    }
    (void)graph.add(
        {TaskKind::kCompute, i, "bklw/project",
         [&, i] {
           auto scope = device_work.measure();
           // A site whose basis broadcast expired on the downlink cannot
           // project; it enters disSS as an empty source (transmitting
           // only the empty-summary sentinel) instead of wedging the
           // protocol.
           auto basis_frame = net.downlink(i).receive_by(kNoRound);
           if (!basis_frame.has_value()) return;
           const Matrix v = decode_matrix(*basis_frame);
           Matrix coords = matmul(parts[i].points(), v);
           projected[i] = parts[i].is_weighted()
                              ? Dataset(std::move(coords), *parts[i].weights())
                              : Dataset(std::move(coords));
         },
         {}});
  }
  PhaseScheduler(net).run(graph);

  // --- disSS on the projected data. ---
  DisSsOptions sopts;
  sopts.k = opts.k;
  sopts.total_samples =
      opts.total_samples > 0
          ? opts.total_samples
          : disss_sample_size(opts.k, opts.epsilon, opts.delta, parts.size(),
                              n_total);
  sopts.significant_bits = opts.significant_bits;
  sopts.quant = opts.quant;
  sopts.round_deadline_s = opts.round_deadline_s;
  sopts.min_responders = opts.min_responders;
  sopts.reallocate = opts.reallocate;
  sopts.realloc_reserve = opts.realloc_reserve;
  sopts.pipeline = opts.pipeline;
  Coreset coreset = disss(projected, sopts, net, device_work, seed);

  coreset.delta = 0.0;
  coreset.basis = pca.v.transposed();  // t2 x d
  return coreset;
}

}  // namespace ekm
