// ekm — command-line front end for the communication-efficient k-means
// pipelines.
//
// Usage:
//   ekm --algorithm jl+fss+jl --k 4 --input data.csv --output centers.csv
//   ekm --algorithm jl+bklw --sources 10 --synthetic mnist --n 10000
//
// Flags:
//   --input PATH          dense CSV, one point per row (mutually exclusive
//                         with --synthetic)
//   --synthetic NAME      mnist | neurips | mixture (default mixture)
//   --n N, --d D          synthetic dataset shape
//   --algorithm NAME      nr | fss | jl+fss | fss+jl | jl+fss+jl |
//                         bklw | jl+bklw          (default jl+fss+jl)
//   --k K                 number of centers        (default 2)
//   --sources M           data sources; >1 selects the distributed path
//   --coreset-size S, --jl-dim D1, --pca-dim T    summary knobs
//   --qt-bits S           rounding quantizer significand bits (52 = off)
//   --refine ITERS        device-side refinement rounds (extension)
//   --seed SEED           master seed
//   --output PATH         write centers as CSV (default: stdout summary only)
//   --sim SPEC            run the multi-source path over the discrete-event
//                         simulator: SPEC is a named scenario (ideal,
//                         wifi-office, ble-swarm, lora-field, nr5g-fleet,
//                         lossy-mesh, hetero-mesh, deadline-fleet) optionally
//                         followed by key=value overrides, e.g.
//                         "lora-field,loss=0.1,site2.radio=ble".
//                         Algorithms: nr | bklw | jl+bklw | stream.
//   --rounds R            uplink rounds for --algorithm stream (default 4)
//   --deadline SECONDS    per-collection-round deadline on the virtual
//                         clock (sim only); sites that miss it are dropped
//                         from the round and the server aggregates over the
//                         responders. "inf" (the default) waits for everyone.
//   --retry STRATEGY      retransmission policy (sim only): fixed (default),
//                         backoff (exponential + jitter), or giveup
//                         (deadline-aware: skip attempts that cannot finish
//                         before the round cutoff).
//   --overlap             phase-overlap scheduling (sim only): a site that
//                         abandons an uplink frame NAKs the server, so a
//                         round's merge barrier commits as soon as every
//                         frame's fate is final instead of waiting out the
//                         deadline — fast sites start the next phase while
//                         stragglers' timelines still run. Equivalent to
//                         scenario key overlap=on.
//   --pipeline            cross-round pipelining (sim only): round r+1's
//                         task graph depends only on round r's committed
//                         barrier, and the sender's schedule NAKs a frame
//                         the moment its airtime provably overshoots the
//                         round cutoff — the server opens the next round
//                         while stragglers resolve. Equivalent to scenario
//                         key pipeline=on.
//   --trace-out FILE      write a Chrome/Perfetto trace of the run (sim
//                         only): one track per actor on the virtual clock
//                         plus host wall-clock kernel spans. Recording is
//                         side-effect-free — results are bit-identical
//                         with or without it (docs/observability.md).
//   --metrics-out FILE    write per-round JSONL metric snapshots (sim only)
//   --event-log off|N     cap the retained simulator event trace; same as
//                         scenario key event-log=. The default retains
//                         every radio event in memory (docs/simulation.md).
//
// Every numeric flag goes through a checked parse: trailing garbage,
// empty values, and out-of-range numbers exit 2 with a message naming
// the flag, instead of the silent atoi-zero they once produced.
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "common/parse_num.hpp"
#include "core/pipeline.hpp"
#include "data/generators.hpp"
#include "data/loaders.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/lloyd.hpp"
#include "obs/attribution.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_export.hpp"
#include "sim/coordinator.hpp"

namespace {

using namespace ekm;

struct CliArgs {
  std::string input;
  std::string synthetic = "mixture";
  std::string algorithm = "jl+fss+jl";
  std::string output;
  std::size_t n = 5000;
  std::size_t d = 128;
  std::size_t k = 2;
  std::size_t sources = 1;
  std::size_t coreset_size = 300;
  std::size_t jl_dim = 64;
  std::size_t pca_dim = 16;
  int qt_bits = 52;
  int refine = 0;
  std::uint64_t seed = 1;
  std::string sim;
  std::size_t rounds = 4;
  double deadline = std::numeric_limits<double>::infinity();
  bool deadline_set = false;
  std::string retry;  // empty = keep the scenario's strategy
  bool overlap = false;
  bool pipeline = false;
  std::string trace_out;    // empty = no trace export
  std::string metrics_out;  // empty = no metrics export
  std::string explain;      // "" = off, else "text" or "json"
  std::string explain_diff_a;  // both set = standalone diff mode
  std::string explain_diff_b;
  std::size_t event_log_limit = 0;
  bool event_log_set = false;
  bool help = false;
};

// --- checked numeric parsing, shared by every numeric flag ----------------
// Validation lives in common/parse_num.hpp (the scenario parser uses
// the same core); these wrappers only add the flag-naming stderr
// message and the exit-2 contract.

bool parse_u64(const char* flag, const char* value, std::uint64_t& out) {
  const auto v = parse_full_ull(value);
  if (!v.has_value()) {
    std::fprintf(stderr,
                 "invalid value for %s: '%s' (expected a non-negative integer)\n",
                 flag, value);
    return false;
  }
  out = *v;
  return true;
}

bool parse_size(const char* flag, const char* value, std::size_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(flag, value, v)) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_i32(const char* flag, const char* value, int& out) {
  const auto v = parse_full_ll(value);
  if (!v.has_value() || *v < INT_MIN || *v > INT_MAX) {
    std::fprintf(stderr, "invalid value for %s: '%s' (expected an integer)\n",
                 flag, value);
    return false;
  }
  out = static_cast<int>(*v);
  return true;
}

// Non-finite policy (see parse_full_double): an explicit "inf" token
// parses and is meaningful for --deadline (wait forever); a
// finite-looking token that overflows double ("1e999") is rejected in
// the parser itself; "nan" parses but fails every flag's range check
// (NaN compares false), so it exits 2 like any other bad value.
bool parse_f64(const char* flag, const char* value, double& out) {
  const auto v = parse_full_double(value);
  if (!v.has_value()) {
    std::fprintf(stderr, "invalid value for %s: '%s' (expected a number)\n",
                 flag, value);
    return false;
  }
  out = *v;
  return true;
}

std::optional<CliArgs> parse(int argc, char** argv) {
  CliArgs a;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    const auto want = [&](const char* name) { return std::strcmp(flag, name) == 0; };
    if (want("--help") || want("-h")) {
      a.help = true;
    } else if (want("--input")) {
      if (const char* v = next(i)) a.input = v; else return std::nullopt;
    } else if (want("--synthetic")) {
      if (const char* v = next(i)) a.synthetic = v; else return std::nullopt;
    } else if (want("--algorithm")) {
      if (const char* v = next(i)) a.algorithm = v; else return std::nullopt;
    } else if (want("--output")) {
      if (const char* v = next(i)) a.output = v; else return std::nullopt;
    } else if (want("--n")) {
      const char* v = next(i);
      if (v == nullptr || !parse_size(flag, v, a.n)) return std::nullopt;
    } else if (want("--d")) {
      const char* v = next(i);
      if (v == nullptr || !parse_size(flag, v, a.d)) return std::nullopt;
    } else if (want("--k")) {
      const char* v = next(i);
      if (v == nullptr || !parse_size(flag, v, a.k)) return std::nullopt;
    } else if (want("--sources")) {
      const char* v = next(i);
      if (v == nullptr || !parse_size(flag, v, a.sources)) return std::nullopt;
    } else if (want("--coreset-size")) {
      const char* v = next(i);
      if (v == nullptr || !parse_size(flag, v, a.coreset_size)) return std::nullopt;
    } else if (want("--jl-dim")) {
      const char* v = next(i);
      if (v == nullptr || !parse_size(flag, v, a.jl_dim)) return std::nullopt;
    } else if (want("--pca-dim")) {
      const char* v = next(i);
      if (v == nullptr || !parse_size(flag, v, a.pca_dim)) return std::nullopt;
    } else if (want("--qt-bits")) {
      const char* v = next(i);
      if (v == nullptr || !parse_i32(flag, v, a.qt_bits)) return std::nullopt;
      if (a.qt_bits < 1 || a.qt_bits > 52) {
        std::fprintf(stderr, "--qt-bits must be in [1, 52] (52 = off), got %d\n",
                     a.qt_bits);
        return std::nullopt;
      }
    } else if (want("--refine")) {
      const char* v = next(i);
      if (v == nullptr || !parse_i32(flag, v, a.refine)) return std::nullopt;
      if (a.refine < 0) {
        std::fprintf(stderr, "--refine must be >= 0, got %d\n", a.refine);
        return std::nullopt;
      }
    } else if (want("--seed")) {
      const char* v = next(i);
      if (v == nullptr || !parse_u64(flag, v, a.seed)) return std::nullopt;
    } else if (want("--sim")) {
      if (const char* v = next(i)) a.sim = v; else return std::nullopt;
    } else if (want("--rounds")) {
      const char* v = next(i);
      if (v == nullptr || !parse_size(flag, v, a.rounds)) return std::nullopt;
    } else if (want("--deadline")) {
      const char* v = next(i);
      if (v == nullptr || !parse_f64(flag, v, a.deadline)) return std::nullopt;
      if (!(a.deadline > 0.0)) {  // rejects 0, negatives and NaN
        std::fprintf(stderr, "--deadline must be > 0 seconds (or inf), got %s\n", v);
        return std::nullopt;
      }
      a.deadline_set = true;
    } else if (want("--retry")) {
      // Grammar shared with the scenario parser (retry_strategy_from_name)
      // so the CLI can never drift from `retry=` / `siteN.retry=`.
      if (const char* v = next(i)) a.retry = v; else return std::nullopt;
      if (!retry_strategy_from_name(a.retry).has_value()) {
        std::fprintf(stderr,
                     "--retry must be fixed|backoff|giveup, got '%s'\n",
                     a.retry.c_str());
        return std::nullopt;
      }
    } else if (want("--overlap")) {
      a.overlap = true;
    } else if (want("--pipeline")) {
      a.pipeline = true;
    } else if (want("--trace-out")) {
      const char* v = next(i);
      if (v == nullptr) return std::nullopt;
      if (*v == '\0') {
        std::fprintf(stderr, "--trace-out needs a non-empty file path\n");
        return std::nullopt;
      }
      a.trace_out = v;
    } else if (want("--metrics-out")) {
      const char* v = next(i);
      if (v == nullptr) return std::nullopt;
      if (*v == '\0') {
        std::fprintf(stderr, "--metrics-out needs a non-empty file path\n");
        return std::nullopt;
      }
      a.metrics_out = v;
    } else if (want("--explain-diff")) {
      // Two positional values: the A (baseline) and B (candidate)
      // metrics JSONL files. Checked here so a missing B exits 2
      // before anything runs.
      const char* va = next(i);
      if (va == nullptr) return std::nullopt;
      const char* vb = next(i);
      if (vb == nullptr) return std::nullopt;
      if (*va == '\0' || *vb == '\0') {
        std::fprintf(stderr,
                     "--explain-diff needs two non-empty metrics JSONL paths\n");
        return std::nullopt;
      }
      a.explain_diff_a = va;
      a.explain_diff_b = vb;
    } else if (want("--explain") ||
               std::strncmp(flag, "--explain=", 10) == 0) {
      const char* v = want("--explain") ? "text" : flag + 10;
      if (std::strcmp(v, "text") != 0 && std::strcmp(v, "json") != 0) {
        std::fprintf(stderr, "--explain takes =json or =text, got '%s'\n", v);
        return std::nullopt;
      }
      a.explain = v;
    } else if (want("--event-log")) {
      // Grammar shared with the scenario key `event-log=off|N`.
      const char* v = next(i);
      if (v == nullptr) return std::nullopt;
      if (std::strcmp(v, "off") == 0) {
        a.event_log_limit = 0;
      } else {
        const auto cap = parse_full_ull(v);
        if (!cap.has_value()) {
          std::fprintf(stderr,
                       "invalid value for --event-log: '%s' (expected 'off' "
                       "or a non-negative integer)\n",
                       v);
          return std::nullopt;
        }
        a.event_log_limit = static_cast<std::size_t>(*cap);
      }
      a.event_log_set = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag);
      return std::nullopt;
    }
  }
  return a;
}

std::optional<PipelineKind> kind_of(const std::string& name) {
  if (name == "nr") return PipelineKind::kNoReduction;
  if (name == "fss") return PipelineKind::kFss;
  if (name == "jl+fss") return PipelineKind::kJlFss;
  if (name == "fss+jl") return PipelineKind::kFssJl;
  if (name == "jl+fss+jl") return PipelineKind::kJlFssJl;
  if (name == "bklw") return PipelineKind::kBklw;
  if (name == "jl+bklw") return PipelineKind::kJlBklw;
  return std::nullopt;
}

Dataset make_input(const CliArgs& a) {
  if (!a.input.empty()) {
    Dataset d = load_csv(a.input);
    normalize_zero_mean_unit_range(d);
    return d;
  }
  Rng rng = make_rng(a.seed, 0xdadaULL);
  if (a.synthetic == "mnist") {
    MnistLikeSpec spec;
    spec.n = a.n;
    return make_mnist_like(spec, rng);
  }
  if (a.synthetic == "neurips") {
    NeuripsLikeSpec spec;
    spec.n = a.n;
    spec.dim = a.d;
    return make_neurips_like(spec, rng);
  }
  GaussianMixtureSpec spec;
  spec.n = a.n;
  spec.dim = a.d;
  spec.k = a.k;
  return make_gaussian_mixture(spec, rng);
}

void write_centers_csv(const std::string& path, const Matrix& centers) {
  std::ofstream out(path);
  for (std::size_t c = 0; c < centers.rows(); ++c) {
    auto row = centers.row(c);
    for (std::size_t j = 0; j < row.size(); ++j) {
      out << row[j] << (j + 1 < row.size() ? ',' : '\n');
    }
  }
}

constexpr const char* kUsage =
    "ekm — communication-efficient k-means (Lu et al., ICDCS'20 reproduction)\n"
    "  --input PATH | --synthetic mnist|neurips|mixture [--n N --d D]\n"
    "  --algorithm nr|fss|jl+fss|fss+jl|jl+fss+jl|bklw|jl+bklw|stream\n"
    "  --k K  --sources M  --coreset-size S  --jl-dim D1  --pca-dim T\n"
    "  --qt-bits S  --refine ITERS  --seed SEED  --output centers.csv\n"
    "  --sim SCENARIO[,key=value...]  (scenarios: ideal wifi-office\n"
    "    ble-swarm lora-field nr5g-fleet lossy-mesh hetero-mesh\n"
    "    deadline-fleet; keys: radio loss dropout outage retries jitter\n"
    "    stragglers slowdown skew sps server-speed deadline\n"
    "    min-responders realloc realloc-reserve overlap pipeline event-log\n"
    "    retry churn quant backoff-base backoff-cap backoff-jitter seed\n"
    "    topology (star|tree) branching (tree: children per gateway, >= 2)\n"
    "    level-split (tree: level-0 share of a finite round budget)\n"
    "    siteN.{radio,bandwidth,loss,dropout,speed,retry,join,leave,trace}\n"
    "    gatewayN.{same fields} (tree: per-gateway device overrides);\n"
    "    sim algorithms: nr bklw jl+bklw stream — topology=tree supports\n"
    "    bklw and jl+bklw only)\n"
    "  --rounds R   uplink rounds for --algorithm stream (default 4)\n"
    "  --deadline SECONDS   per-round deadline on the virtual clock (sim\n"
    "    only): sites that miss it are dropped from that round and the\n"
    "    server aggregates over the responders; inf waits for everyone\n"
    "  --retry fixed|backoff|giveup   retransmission policy (sim only):\n"
    "    fixed ack-timeout, exponential backoff + jitter, or\n"
    "    deadline-aware give-up that keeps the radio off for attempts\n"
    "    that cannot complete before the round cutoff\n"
    "  --overlap    phase-overlap scheduling (sim only): expiry NAKs let\n"
    "    round barriers commit as soon as every frame's fate is final,\n"
    "    so fast sites start the next phase early (= overlap=on)\n"
    "  --pipeline   cross-round pipelining (sim only): round r+1 opens on\n"
    "    round r's committed barrier and predicted-arrival NAKs fire when\n"
    "    a frame's schedule provably overshoots the cutoff (= pipeline=on)\n"
    "  --trace-out FILE     Chrome/Perfetto trace of the run (sim only):\n"
    "    one track per actor (server, sites, event queue) on the virtual\n"
    "    clock, plus host wall-clock kernel spans; side-effect-free\n"
    "  --metrics-out FILE   per-round JSONL metric snapshots (sim only):\n"
    "    responders, misses, uplink bits, energy, quantizer widths, and\n"
    "    each round's critical-path attribution\n"
    "  --explain[=text|json]   critical-path attribution report (sim\n"
    "    only): per-round blame table (server/site compute, airtime,\n"
    "    retransmits, stalls, gateway folds, deadline waits), tightest-\n"
    "    slack actors, slack histograms. =json prints one JSON object as\n"
    "    the final stdout line; default is the text table\n"
    "  --explain-diff A.jsonl B.jsonl   standalone: compare two\n"
    "    --metrics-out files per blame category; exit 0 = no regression,\n"
    "    1 = B regressed past thresholds, 2 = unusable input\n"
    "  --event-log off|N    cap the retained simulator event trace (same\n"
    "    as scenario key event-log=; the default keeps every event)\n";

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args || args->help) {
    std::fputs(kUsage, args ? stdout : stderr);
    return args ? 0 : 2;
  }
  if (!args->explain_diff_a.empty()) {
    // Standalone mode: compare two previously written metrics JSONL
    // files; no dataset, no simulation. Exit 0 = no regression,
    // 1 = regression over thresholds, 2 = unusable input.
    std::string report;
    const int rc = explain_diff_files(args->explain_diff_a,
                                      args->explain_diff_b,
                                      /*rel_threshold=*/0.10,
                                      /*abs_threshold_s=*/1e-3, report);
    std::fputs(report.c_str(), rc == 2 ? stderr : stdout);
    return rc;
  }
  const bool streaming = args->algorithm == "stream";
  std::optional<PipelineKind> kind;
  if (!streaming) {
    kind = kind_of(args->algorithm);
    if (!kind) {
      std::fprintf(stderr, "unknown algorithm '%s'\n%s", args->algorithm.c_str(),
                   kUsage);
      return 2;
    }
    if (pipeline_is_distributed(*kind) && args->sources < 2) {
      std::fprintf(stderr, "%s needs --sources >= 2\n", args->algorithm.c_str());
      return 2;
    }
  }
  if (streaming && args->sim.empty()) {
    std::fprintf(stderr, "--algorithm stream needs --sim\n");
    return 2;
  }
  if (args->sources < 1) {
    std::fprintf(stderr, "--sources must be >= 1\n");
    return 2;
  }
  if (streaming && args->rounds < 1) {
    std::fprintf(stderr, "--rounds must be >= 1\n");
    return 2;
  }
  if (!args->sim.empty() && !streaming && *kind != PipelineKind::kNoReduction &&
      !pipeline_is_distributed(*kind)) {
    std::fprintf(stderr, "--sim supports nr|bklw|jl+bklw|stream\n");
    return 2;
  }
  if (args->deadline_set && args->sim.empty()) {
    std::fprintf(stderr, "--deadline needs --sim (deadlines live on the "
                         "simulator's virtual clock)\n");
    return 2;
  }
  if (!args->retry.empty() && args->sim.empty()) {
    std::fprintf(stderr, "--retry needs --sim (retransmission policies live "
                         "on the simulated radio)\n");
    return 2;
  }
  if (args->overlap && args->sim.empty()) {
    std::fprintf(stderr, "--overlap needs --sim (phase overlap lives on the "
                         "simulator's virtual clock)\n");
    return 2;
  }
  if (args->pipeline && args->sim.empty()) {
    std::fprintf(stderr, "--pipeline needs --sim (cross-round pipelining "
                         "lives on the simulator's virtual clock)\n");
    return 2;
  }
  if (!args->trace_out.empty() && args->sim.empty()) {
    std::fprintf(stderr, "--trace-out needs --sim (the trace's timelines are "
                         "the simulator's virtual clocks)\n");
    return 2;
  }
  if (!args->metrics_out.empty() && args->sim.empty()) {
    std::fprintf(stderr, "--metrics-out needs --sim (metric snapshots close "
                         "with the simulator's collection rounds)\n");
    return 2;
  }
  if (args->event_log_set && args->sim.empty()) {
    std::fprintf(stderr, "--event-log needs --sim (it caps the simulator's "
                         "retained event trace)\n");
    return 2;
  }
  if (!args->explain.empty() && args->sim.empty()) {
    std::fprintf(stderr, "--explain needs --sim (attribution replays the "
                         "simulator's recorded server-clock operations)\n");
    return 2;
  }

  const Dataset data = make_input(*args);
  std::printf("input: %zu points x %zu dims\n", data.size(), data.dim());

  PipelineConfig cfg;
  cfg.k = args->k;
  cfg.epsilon = 0.3;
  cfg.seed = args->seed;
  cfg.coreset_size = args->coreset_size;
  cfg.jl_dim = args->jl_dim;
  cfg.pca_dim = args->pca_dim;
  cfg.significant_bits = args->qt_bits;
  cfg.refine_iters = args->refine;

  PipelineResult res;
  std::string explain_out;  // --explain report; printed last (see below)
  if (!args->sim.empty()) {
    SimScenario scenario;
    try {
      scenario = parse_scenario(args->sim);
    } catch (const precondition_error& e) {
      std::fprintf(stderr, "bad --sim spec: %s\n", e.what());
      return 2;
    }
    // The master seed drives the scenario too unless the spec pins one.
    if (args->sim.find("seed=") == std::string::npos) scenario.seed = args->seed;
    // --deadline overrides whatever the scenario string or preset set.
    if (args->deadline_set) scenario.round.deadline_s = args->deadline;
    // --retry overrides the scenario's fleet-wide strategy (per-site
    // siteN.retry= overrides still win, matching --deadline's layering).
    if (!args->retry.empty()) {
      scenario.retry.strategy = *retry_strategy_from_name(args->retry);
    }
    // --overlap turns phase-overlap scheduling on; it never turns a
    // scenario's `overlap=on` off (same either-side-opts-in layering
    // as the Coordinator's config merge).
    if (args->overlap) scenario.round.overlap = true;
    // --pipeline layers the same way: either side opting in wins.
    if (args->pipeline) scenario.round.pipeline = true;
    // --event-log overrides the scenario's retention cap, like --deadline.
    if (args->event_log_set) scenario.event_log_limit = args->event_log_limit;

    Rng rng = make_rng(args->seed, 0x9a87ULL);
    const std::vector<Dataset> parts =
        partition_random(data, args->sources, rng);
    // Attach the flight recorder only when an export was asked for: the
    // Coordinator hangs it on the SimNetwork (virtual-clock spans,
    // events, per-round snapshots), and the process-global hook lets
    // hot kernels stamp host wall-clock spans. Recording never touches
    // RNG streams or event ordering, so the run's numbers are
    // bit-identical either way.
    Recorder recorder;
    const bool recording = !args->trace_out.empty() ||
                           !args->metrics_out.empty() ||
                           !args->explain.empty();
    if (recording) {
      cfg.recorder = &recorder;
      install_recorder(&recorder);
    }
    const Coordinator coord(scenario);
    SimReport report;
    try {
      if (streaming) {
        StreamingCoresetOptions sopts;
        sopts.k = args->k;
        sopts.coreset_size = args->coreset_size;
        sopts.seed = derive_seed(args->seed, 0x57ea3ULL);
        report = coord.run_streaming(parts, sopts, cfg, args->rounds);
      } else {
        report = coord.run(*kind, parts, cfg);
      }
    } catch (const invariant_error& e) {
      // E.g. a round deadline so tight it fell below min-responders.
      std::fprintf(stderr, "simulation failed: %s\n", e.what());
      return 1;
    } catch (const precondition_error& e) {
      // Configuration errors surfacing at fleet construction — e.g. a
      // siteN.* override naming a site beyond --sources, or a join and
      // leave pinned to the same instant. These are usage errors, so
      // they exit 2 like every other bad flag/spec.
      std::fprintf(stderr, "bad simulation setup: %s\n", e.what());
      return 2;
    }
    res = std::move(report.result);
    const LinkStats& up = report.uplink_stats;
    std::printf("sim scenario   : %s over %zu site(s), radio %s\n",
                report.scenario.c_str(), args->sources,
                scenario.radio.name.c_str());
    std::printf("completion     : %.6g virtual seconds\n",
                report.completion_seconds);
    std::printf("site energy    : %.6g J\n", report.energy_joules);
    std::printf("uplink radio   : %llu attempts, %llu drops, "
                "%llu retransmitted bits, %.6g s airtime\n",
                static_cast<unsigned long long>(up.attempts),
                static_cast<unsigned long long>(up.drops),
                static_cast<unsigned long long>(up.retransmit_bits),
                up.airtime_s);
    std::printf("events         : %zu (%llu site outages)\n",
                report.event_log.size(),
                static_cast<unsigned long long>(report.outages));
    if (scenario.round.active()) {
      std::printf("deadline       : %.6g s/round over %llu round(s), "
                  "%llu dropped frame(s) (%llu supplemental), "
                  "%llu realloc wave(s)\n",
                  scenario.round.deadline_s,
                  static_cast<unsigned long long>(report.rounds),
                  static_cast<unsigned long long>(report.deadline_misses),
                  static_cast<unsigned long long>(report.supplemental_misses),
                  static_cast<unsigned long long>(report.realloc_waves));
    }
    if (report.joins + report.leaves + report.orphaned_frames > 0) {
      std::printf("fleet churn    : %llu join(s), %llu leave(s), "
                  "%llu orphaned frame(s)\n",
                  static_cast<unsigned long long>(report.joins),
                  static_cast<unsigned long long>(report.leaves),
                  static_cast<unsigned long long>(report.orphaned_frames));
    }
    if (scenario.quant == QuantPolicy::kAdaptive) {
      std::printf("quantization   : adaptive (frames narrow under deadline "
                  "pressure)\n");
    }
    if (scenario.round.overlap) {
      std::printf("phase overlap  : on (server done at %.6g virtual s)\n",
                  report.server_completion_seconds);
    }
    if (scenario.round.pipeline) {
      std::printf("pipelining     : on (server done at %.6g virtual s, "
                  "critical-path bound %.6g s)\n",
                  report.server_completion_seconds,
                  report.server_critical_path_seconds);
    }
    if (scenario.retry.strategy != RetryStrategy::kFixed) {
      std::printf("retry policy   : %s\n",
                  retry_strategy_name(scenario.retry.strategy));
    }
    if (recording) install_recorder(nullptr);
    if (!args->trace_out.empty()) {
      if (!write_chrome_trace(recorder, args->trace_out)) {
        std::fprintf(stderr, "failed to write trace to '%s'\n",
                     args->trace_out.c_str());
        return 1;
      }
      std::printf("trace written  : %s (%zu spans, %zu events)\n",
                  args->trace_out.c_str(), recorder.spans().size(),
                  recorder.events().size());
    }
    if (!args->metrics_out.empty()) {
      if (!write_metrics_jsonl(recorder, args->metrics_out)) {
        std::fprintf(stderr, "failed to write metrics to '%s'\n",
                     args->metrics_out.c_str());
        return 1;
      }
      std::printf("metrics written: %s (%zu round snapshot(s))\n",
                  args->metrics_out.c_str(), recorder.rounds().size());
    }
    if (!args->explain.empty()) {
      // Rendered now (the recorder dies with this scope) but printed
      // as the very last stdout of the process, so scripts can take
      // the report with `tail` — CI pipes the =json line, which is a
      // single JSON object, straight into a validator.
      const RunAttribution attribution = attribute_run(recorder);
      explain_out =
          args->explain == "json"
              ? render_explain_json(attribution,
                                    report.server_critical_path_seconds) +
                    "\n"
              : render_explain_text(attribution);
    }
  } else if (args->sources > 1) {
    Rng rng = make_rng(args->seed, 0x9a87ULL);
    const std::vector<Dataset> parts = partition_random(data, args->sources, rng);
    res = run_distributed_pipeline(*kind, parts, cfg);
  } else {
    res = run_pipeline(*kind, data, cfg);
  }

  const double cost = kmeans_cost(data, res.centers);
  std::printf("algorithm      : %s\n",
              streaming ? "streaming" : pipeline_name(*kind));
  std::printf("k-means cost   : %.6g\n", cost);
  std::printf("summary points : %zu\n", res.summary_points);
  std::printf("uplink         : %llu bits, %llu scalars, %llu messages\n",
              static_cast<unsigned long long>(res.uplink.bits),
              static_cast<unsigned long long>(res.uplink.scalars),
              static_cast<unsigned long long>(res.uplink.messages));
  std::printf("vs raw upload  : %.4f%% of %zu scalars\n",
              100.0 * static_cast<double>(res.uplink.scalars) /
                  static_cast<double>(data.scalar_count()),
              data.scalar_count());
  if (args->sim.empty()) {
    // Suppressed on the sim path: device compute there lives on the
    // deterministic virtual clock (the completion figure above), and a
    // host wall-clock number next to it would only mislead.
    std::printf("device time    : %.3f s\n", res.device_seconds);
  }

  if (!args->output.empty()) {
    write_centers_csv(args->output, res.centers);
    std::printf("centers written: %s\n", args->output.c_str());
  }
  if (!explain_out.empty()) std::fputs(explain_out.c_str(), stdout);
  return 0;
}
