// Tests for src/cr: coreset semantics, sensitivity sampling, FSS.
// The central property test sweeps random center sets and checks the
// ε-coreset inequality (3) empirically.
#include <gtest/gtest.h>

#include <cmath>

#include "cr/coreset.hpp"
#include "cr/fss.hpp"
#include "cr/sensitivity.hpp"
#include "data/generators.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/lloyd.hpp"
#include "linalg/svd.hpp"

namespace ekm {
namespace {

Dataset mixture(std::size_t n, std::size_t dim, std::size_t k,
                std::uint64_t seed, double separation = 10.0) {
  Rng rng = make_rng(seed);
  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.k = k;
  spec.separation = separation;
  return make_gaussian_mixture(spec, rng);
}

TEST(Coreset, CostAddsDelta) {
  Coreset cs;
  cs.points = Dataset(Matrix{{0.0}}, {2.0});
  cs.delta = 5.0;
  const Matrix centers{{1.0}};
  EXPECT_DOUBLE_EQ(coreset_cost(cs, centers), 2.0 * 1.0 + 5.0);
}

TEST(Coreset, ToAmbientAppliesBasis) {
  Coreset cs;
  cs.points = Dataset(Matrix{{2.0}}, {1.0});        // coords in R^1
  cs.basis = Matrix{{0.6, 0.8}};                    // 1 x 2, unit row
  const Dataset ambient = cs.to_ambient();
  EXPECT_EQ(ambient.dim(), 2u);
  EXPECT_DOUBLE_EQ(ambient.point(0)[0], 1.2);
  EXPECT_DOUBLE_EQ(ambient.point(0)[1], 1.6);
}

TEST(Coreset, ScalarCountAccounting) {
  Coreset cs;
  cs.points = Dataset(Matrix(10, 3), std::vector<double>(10, 1.0));
  EXPECT_EQ(cs.scalar_count(), 10u * 3 + 10 + 1);
  cs.basis = Matrix(3, 50);
  EXPECT_EQ(cs.scalar_count(), 10u * 3 + 10 + 1 + 150);
}

TEST(Coreset, EpsForExactCoresetIsZero) {
  const Dataset d = mixture(50, 4, 2, 31);
  Coreset cs;
  std::vector<double> w(d.size(), 1.0);
  cs.points = Dataset(d.points(), std::move(w));
  Rng rng = make_rng(32);
  const Matrix centers = Matrix::gaussian(2, 4, rng);
  EXPECT_NEAR(coreset_eps_for(cs, d, centers), 0.0, 1e-12);
}

TEST(Sensitivity, TotalWeightMatchesInput) {
  const Dataset d = mixture(500, 6, 3, 33);
  SensitivitySampleOptions opts;
  opts.k = 3;
  opts.sample_size = 60;
  Rng rng = make_rng(34);
  const Coreset cs = sensitivity_sample(d, opts, rng);
  // With bicriteria top-up the total weight matches n up to the clamping
  // of negative residuals (small).
  EXPECT_NEAR(cs.points.total_weight(), 500.0, 0.1 * 500.0);
}

TEST(Sensitivity, PassthroughWhenSampleCoversData) {
  const Dataset d = mixture(20, 3, 2, 35);
  SensitivitySampleOptions opts;
  opts.k = 2;
  opts.sample_size = 50;
  Rng rng = make_rng(36);
  const Coreset cs = sensitivity_sample(d, opts, rng);
  EXPECT_EQ(cs.size(), 20u);
  EXPECT_DOUBLE_EQ(cs.points.total_weight(), 20.0);
}

class CoresetQuality : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CoresetQuality, EpsilonPropertyOverRandomCenters) {
  const std::size_t sample_size = GetParam();
  const Dataset d = mixture(800, 8, 3, 37);
  SensitivitySampleOptions opts;
  opts.k = 3;
  opts.sample_size = sample_size;
  Rng rng = make_rng(38);
  const Coreset cs = sensitivity_sample(d, opts, rng);

  // Check (3) on (a) random centers, (b) solved centers, (c) far centers.
  Rng crng = make_rng(39);
  double worst_eps = 0.0;
  for (int trial = 0; trial < 12; ++trial) {
    const Matrix centers = Matrix::gaussian(3, 8, crng, trial < 6 ? 1.0 : 10.0);
    worst_eps = std::max(worst_eps, coreset_eps_for(cs, d, centers));
  }
  KMeansOptions kopts;
  kopts.k = 3;
  kopts.seed = 40;
  const Matrix solved = kmeans(d, kopts).centers;
  worst_eps = std::max(worst_eps, coreset_eps_for(cs, d, solved));

  // Larger samples must be accurate; smaller ones looser but bounded.
  const double allowance = sample_size >= 200 ? 0.15 : 0.35;
  EXPECT_LT(worst_eps, allowance);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, CoresetQuality,
                         ::testing::Values<std::size_t>(100, 200, 400));

TEST(Sensitivity, BeatsUniformOnSkewedData) {
  // A dominant heavy cluster plus a tiny far-away cluster: uniform
  // sampling routinely misses the tiny cluster, sensitivity sampling
  // keeps it (via the distance term). Compare worst-case coreset error
  // over centers that isolate the tiny cluster.
  Rng rng = make_rng(41);
  Matrix pts(1000, 2);
  std::normal_distribution<double> noise(0.0, 0.5);
  for (std::size_t i = 0; i < 990; ++i) {
    pts(i, 0) = noise(rng);
    pts(i, 1) = noise(rng);
  }
  for (std::size_t i = 990; i < 1000; ++i) {
    pts(i, 0) = 100.0 + noise(rng);
    pts(i, 1) = 100.0 + noise(rng);
  }
  const Dataset d(std::move(pts));
  const Matrix probe{{0.0, 0.0}, {100.0, 100.0}};

  double sens_err = 0.0;
  double unif_err = 0.0;
  for (std::uint64_t t = 0; t < 8; ++t) {
    SensitivitySampleOptions opts;
    opts.k = 2;
    opts.sample_size = 40;
    Rng r1 = make_rng(42 + t);
    Rng r2 = make_rng(142 + t);
    sens_err += coreset_eps_for(sensitivity_sample(d, opts, r1), d, probe);
    unif_err += coreset_eps_for(uniform_sample_coreset(d, 40, r2), d, probe);
  }
  EXPECT_LT(sens_err, unif_err);
}

TEST(Fss, CoresetEpsilonPropertyWithDelta) {
  const Dataset d = mixture(600, 30, 3, 43);
  FssOptions opts;
  opts.k = 3;
  opts.epsilon = 0.3;
  opts.sample_size = 250;
  Rng rng = make_rng(44);
  const Coreset cs = fss_coreset(d, opts, rng);
  EXPECT_TRUE(cs.basis.has_value());
  EXPECT_GE(cs.delta, 0.0);

  Rng crng = make_rng(45);
  double worst = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix centers = Matrix::gaussian(3, 30, crng, 2.0);
    worst = std::max(worst, coreset_eps_for(cs, d, centers));
  }
  KMeansOptions kopts;
  kopts.k = 3;
  kopts.seed = 46;
  worst = std::max(worst, coreset_eps_for(cs, d, kmeans(d, kopts).centers));
  EXPECT_LT(worst, 0.3);
}

TEST(Fss, DeltaEqualsDiscardedEnergy) {
  Rng rng = make_rng(47);
  const Dataset d(Matrix::gaussian(100, 20, rng));
  FssOptions opts;
  opts.k = 2;
  opts.intrinsic_dim = 5;
  opts.sample_size = 200;  // >= n => passthrough sampling, pure PCA effect
  Rng frng = make_rng(48);
  const Coreset cs = fss_coreset(d, opts, frng);
  const Svd svd = thin_svd(d.points());
  double tail = 0.0;
  for (std::size_t j = 5; j < svd.rank(); ++j) tail += svd.sigma[j] * svd.sigma[j];
  EXPECT_NEAR(cs.delta, tail, 1e-6 * (1.0 + tail));
  // With passthrough sampling the coreset is exact: cost identity holds
  // for the optimal 1-mean center of the full data.
  const Matrix mu(1, 20);  // origin is near-optimal for centered Gaussian
  EXPECT_NEAR(coreset_cost(cs, mu), kmeans_cost(d, mu),
              0.02 * kmeans_cost(d, mu));
}

TEST(Fss, BasisRowsOrthonormal) {
  const Dataset d = mixture(200, 16, 2, 49);
  FssOptions opts;
  opts.k = 2;
  opts.sample_size = 50;
  Rng rng = make_rng(50);
  const Coreset cs = fss_coreset(d, opts, rng);
  ASSERT_TRUE(cs.basis.has_value());
  const Matrix btb = matmul_a_bt(*cs.basis, *cs.basis);  // t x t
  EXPECT_LT(
      subtract(btb, Matrix::identity(btb.rows())).frobenius_norm(), 1e-9);
}

TEST(Fss, SolveOnCoresetApproximatesFullSolve) {
  const Dataset d = mixture(800, 24, 3, 51);
  FssOptions opts;
  opts.k = 3;
  opts.sample_size = 300;
  Rng rng = make_rng(52);
  const Coreset cs = fss_coreset(d, opts, rng);

  KMeansOptions kopts;
  kopts.k = 3;
  kopts.restarts = 8;
  kopts.seed = 53;
  const double full_cost = kmeans(d, kopts).cost;
  const KMeansResult on_coreset = kmeans(cs.points, kopts);
  const Matrix lifted = matmul(on_coreset.centers, *cs.basis);
  EXPECT_LT(kmeans_cost(d, lifted), 1.25 * full_cost);
}

TEST(Fss, SizeHeuristicClampsSanely) {
  EXPECT_GE(fss_coreset_size(2, 0.3, 0.1, 100000), 8u);
  EXPECT_LE(fss_coreset_size(2, 0.05, 0.1, 500), 500u);
  EXPECT_THROW((void)fss_coreset_size(2, 0.0, 0.1, 100), precondition_error);
}

TEST(Fss, RejectsEmptyInput) {
  FssOptions opts;
  Rng rng = make_rng(54);
  EXPECT_THROW((void)fss_coreset(Dataset(), opts, rng), precondition_error);
}

}  // namespace
}  // namespace ekm
