#include "cr/fss.hpp"

#include <algorithm>

#include "dr/pca.hpp"
#include "obs/recorder.hpp"

namespace ekm {

Coreset fss_coreset(const Dataset& data, const FssOptions& opts, Rng& rng) {
  ObsKernelScope obs_scope("fss_coreset");
  EKM_EXPECTS(!data.empty());
  const std::size_t n = data.size();
  const std::size_t d = data.dim();

  const std::size_t t = opts.intrinsic_dim > 0
                            ? std::min({opts.intrinsic_dim, n, d})
                            : fss_intrinsic_dim(opts.k, opts.epsilon, n, d);
  const std::size_t sample_size =
      opts.sample_size > 0 ? opts.sample_size
                           : fss_coreset_size(opts.k, opts.epsilon, opts.delta, n);

  // 1) Exact PCA to intrinsic dimension t; Δ = discarded energy.
  PcaProjection pca = pca_project(data, t);

  // 2) Sensitivity sampling on the projected coordinates. Row selection
  //    commutes with the projection, so sampling coords and attaching the
  //    basis afterwards equals sampling the projected ambient points.
  SensitivitySampleOptions sopts;
  sopts.k = opts.k;
  sopts.sample_size = sample_size;
  sopts.include_bicriteria_centers = opts.include_bicriteria_centers;
  Coreset cs = sensitivity_sample(pca.coords, sopts, rng);

  cs.delta = pca.residual_sq;
  cs.basis = pca.map.projection().transposed();  // t x d, orthonormal rows
  return cs;
}

}  // namespace ekm
