// Reproduces Figure 1 (single-source CDFs of normalized k-means cost and
// data-source running time) and Table 3 (single-source normalized
// communication cost) for both datasets.
//
// Paper protocol (§7.2): k = 2, 10 Monte-Carlo runs, algorithms FSS,
// JL+FSS (Alg 1), FSS+JL (Alg 2), JL+FSS+JL (Alg 3), baseline NR;
// parameters tuned so all algorithms land at a similar empirical error.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"

using namespace ekm;
using namespace ekm::bench;

namespace {

PipelineConfig tuned_config(const Dataset& data, std::uint64_t seed) {
  PipelineConfig cfg;
  cfg.epsilon = 0.3;
  cfg.seed = seed;
  // Empirical tuning mirroring §7.2.1: coreset ~5% of n (min 200), JL to
  // ~96 dims, FSS intrinsic dimension ~24 — chosen so the four
  // algorithms reach similar normalized cost.
  cfg.coreset_size = std::max<std::size_t>(200, data.size() / 20);
  cfg.jl_dim = 96;
  cfg.jl_dim2 = 48;
  cfg.pca_dim = 24;
  return cfg;
}

void run_dataset(const char* label, const Dataset& data, int mc,
                 std::uint64_t seed) {
  std::printf("== %s: n=%zu d=%zu k=2, %d Monte-Carlo runs ==\n", label,
              data.size(), data.dim(), mc);
  ExperimentContext ctx(data, /*k=*/2, seed);
  const PipelineConfig cfg = tuned_config(data, seed);

  const std::vector<PipelineKind> kinds{
      PipelineKind::kNoReduction, PipelineKind::kFss, PipelineKind::kJlFss,
      PipelineKind::kFssJl, PipelineKind::kJlFssJl};

  std::vector<ExperimentSeries> all;
  for (PipelineKind kind : kinds) {
    all.push_back(ctx.run(kind, cfg, kind == PipelineKind::kNoReduction ? 1 : mc));
  }

  // --- Figure 1 panels: CDFs of normalized cost and running time. ---
  for (const ExperimentSeries& s : all) {
    if (s.name == "NR") continue;
    print_cdf(std::string("Fig1 ") + label + " normalized-cost", s.name,
              s.costs());
  }
  for (const ExperimentSeries& s : all) {
    if (s.name == "NR") continue;
    print_cdf(std::string("Fig1 ") + label + " running-time(s)", s.name,
              s.device_times());
  }

  // --- Table 3 row: normalized communication cost. ---
  std::printf("# Table 3 — %s normalized communication cost\n", label);
  for (const ExperimentSeries& s : all) {
    const Summary comm = summarize(s.comm_bits());
    std::printf("%-12s %.3e\n", s.name.c_str(), comm.mean);
  }
  std::printf("# summary\n%s\n", format_series_table(all).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const int mc = args.monte_carlo > 0 ? args.monte_carlo : (args.full ? 10 : 5);

  run_dataset("MNIST", mnist_dataset(args), mc, args.seed);
  run_dataset("NeurIPS", neurips_dataset(args), mc, args.seed + 1);
  return 0;
}
