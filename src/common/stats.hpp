// Small statistics toolkit used by the experiment harness: summary
// statistics over Monte-Carlo runs and empirical CDFs matching the
// figures in §7 of the paper.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ekm {

/// Summary of a sample: n, mean, (sample) stddev, min/median/max.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

/// `q`-quantile (0 <= q <= 1) with linear interpolation between order
/// statistics (type-7, the numpy default).
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Empirical CDF: sorted support points and the fraction of the sample
/// at or below each point, i.e. the staircase the paper plots in
/// Figures 1 and 2.
struct EmpiricalCdf {
  std::vector<double> x;  ///< sorted sample values
  std::vector<double> p;  ///< P(X <= x[i]) = (i+1)/n

  /// Evaluates the CDF at an arbitrary point.
  [[nodiscard]] double at(double value) const;
};

[[nodiscard]] EmpiricalCdf empirical_cdf(std::span<const double> xs);

/// Renders a CDF as "x p" rows for plotting / logging.
[[nodiscard]] std::string format_cdf(const EmpiricalCdf& cdf,
                                     std::size_t max_rows = 32);

}  // namespace ekm
