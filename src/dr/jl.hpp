// Johnson–Lindenstrauss random projections (§3.2, Lemma 3.1 /
// Theorem 3.1 of the paper).
//
// The defining property exploited by the paper is data-obliviousness: the
// projection matrix depends only on (d, d', seed), so data sources and the
// server can generate identical maps from a shared seed and the matrix
// never crosses the wire (the decisive advantage over PCA in Table 2).
#pragma once

#include <cstddef>
#include <cstdint>

#include "dr/linear_map.hpp"

namespace ekm {

/// Random-matrix families satisfying the JL/sub-Gaussian conditions of
/// Theorem 3.1.
enum class JlFamily {
  kGaussian,    ///< i.i.d. N(0, 1/d') entries [Indyk–Motwani]
  kRademacher,  ///< ±1/sqrt(d') with equal probability [Achlioptas]
  kSparse,      ///< sqrt(3/d') x {+1, 0, 0, -1, 0, 0} [Achlioptas sparse]
};

/// Target dimension for an ε-accurate JL projection protecting
/// `n_points` x `k` candidate difference vectors with failure
/// probability δ: d' = ceil(8 ln(4 n k / δ) / ε²) — the explicit constant
/// the paper adopts in §6.3.2 (C2 = 24 discussion). Clamped to >= 1.
[[nodiscard]] std::size_t jl_target_dim(double epsilon, std::size_t n_points,
                                        std::size_t k, double delta);

/// Deterministically generates the projection matrix for (d, d', seed).
/// Same arguments always yield the same map, on any node.
[[nodiscard]] LinearMap make_jl_projection(std::size_t input_dim,
                                           std::size_t output_dim,
                                           std::uint64_t seed,
                                           JlFamily family = JlFamily::kGaussian);

}  // namespace ekm
