// Word-count clustering: the paper's NeurIPS-corpus scenario — a single
// data source holding a sparse, very high-dimensional count matrix
// (d = Θ(n)), the regime where the order of DR and CR matters most
// (§7.2.2 observation (iii)).
//
// Compares the three single-source compositions and shows why JL-first
// wins when d >> log n: FSS's exact SVD dominates the device time, and
// its transmitted basis dominates the wire.
#include <cstdio>

#include "core/experiment.hpp"
#include "data/generators.hpp"

int main() {
  using namespace ekm;

  Rng rng = make_rng(33);
  NeuripsLikeSpec spec;
  spec.n = 2500;
  spec.dim = 1200;  // d comparable to n, like the real corpus
  spec.topics = 12;
  const Dataset corpus = make_neurips_like(spec, rng);
  std::printf("corpus: %zu rows x %zu attributes (sparse counts)\n",
              corpus.size(), corpus.dim());

  ExperimentContext ctx(corpus, /*k=*/2, /*seed=*/5);
  PipelineConfig config;
  config.epsilon = 0.3;
  config.seed = 17;
  config.coreset_size = 250;
  config.jl_dim = 96;
  config.pca_dim = 24;

  std::vector<ExperimentSeries> all;
  for (PipelineKind kind :
       {PipelineKind::kFss, PipelineKind::kJlFss, PipelineKind::kFssJl,
        PipelineKind::kJlFssJl}) {
    all.push_back(ctx.run(kind, config, 2));
  }
  std::printf("\n%s", format_series_table(all).c_str());
  std::printf(
      "\nreading guide: JL+FSS and JL+FSS+JL avoid the full-dimensional SVD\n"
      "(time column) and JL+FSS+JL additionally ships no basis (comm\n"
      "column) — the d >> log n prediction of Table 2 in the paper.\n");
  return 0;
}
