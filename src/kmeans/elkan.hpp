// Elkan's accelerated exact Lloyd iteration (triangle-inequality
// pruning). Produces the same fixed points as plain Lloyd but skips most
// point-center distance evaluations once clusters stabilize — the
// standard production solver for the server-side `kmeans(S', w, k)` call
// when summaries are large or k is big.
//
// References: Elkan, "Using the triangle inequality to accelerate
// k-means", ICML 2003. This implementation keeps the lower-bound matrix
// and per-point upper bounds, with the usual weighted-centroid update.
#pragma once

#include "kmeans/lloyd.hpp"

namespace ekm {

/// Drop-in replacement for `lloyd`: same contract, same result semantics
/// (deterministic given the initial centers), fewer distance evaluations.
/// `stats_out`, if non-null, receives the number of exact distance
/// computations performed (for the acceleration tests/bench).
[[nodiscard]] KMeansResult elkan(const Dataset& data, Matrix initial_centers,
                                 const KMeansOptions& opts,
                                 std::uint64_t* distance_evals = nullptr);

/// Full solver: k-means++ restarts with the Elkan iteration.
[[nodiscard]] KMeansResult kmeans_elkan(const Dataset& data,
                                        const KMeansOptions& opts);

}  // namespace ekm
