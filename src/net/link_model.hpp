// Wireless-link timing model.
//
// The paper reports communication in scalars/bits; a deployment engineer
// budgets in seconds and joules on a concrete radio. This model converts
// a TrafficLedger into estimated airtime and energy under a simple
// (bandwidth, per-message latency, energy-per-bit) link abstraction, with
// presets for the radio classes typical of edge ML (LoRa, BLE, Wi-Fi,
// 5G). Used by the edge_sensors example and available for custom benches.
#pragma once

#include <string>

#include "common/expects.hpp"
#include "net/channel.hpp"

namespace ekm {

struct LinkModel {
  std::string name = "custom";
  double bandwidth_bps = 1e6;       ///< sustained uplink goodput
  double per_message_latency_s = 0; ///< per-frame setup/ack overhead
  double energy_per_bit_j = 0.0;    ///< transmit energy per payload bit

  /// Estimated transfer time for a ledger's worth of traffic.
  [[nodiscard]] double transfer_seconds(const TrafficLedger& t) const {
    EKM_EXPECTS(bandwidth_bps > 0.0);
    return static_cast<double>(t.bits) / bandwidth_bps +
           static_cast<double>(t.messages) * per_message_latency_s;
  }

  /// Estimated transmit energy.
  [[nodiscard]] double transfer_joules(const TrafficLedger& t) const {
    return static_cast<double>(t.bits) * energy_per_bit_j;
  }

  /// Full-protocol airtime: uplink plus downlink traffic over the same
  /// radio (edge links are half-duplex; the two directions serialize).
  /// Callers previously had to convert each direction by hand.
  [[nodiscard]] double round_trip_seconds(const TrafficLedger& up,
                                          const TrafficLedger& down) const {
    return transfer_seconds(up) + transfer_seconds(down);
  }

  /// Device energy for a full round trip. Receive energy per bit is
  /// charged at the same rate as transmit — a deliberate upper bound;
  /// pass a zeroed downlink ledger for transmit-only budgets.
  [[nodiscard]] double round_trip_joules(const TrafficLedger& up,
                                         const TrafficLedger& down) const {
    return transfer_joules(up) + transfer_joules(down);
  }
};

/// Radio presets (order-of-magnitude figures from vendor datasheets; the
/// point is the relative spread, not the third digit).
[[nodiscard]] inline LinkModel lora_link() {
  return {"LoRa SF7", 5.5e3, 0.4, 1.2e-6};
}
[[nodiscard]] inline LinkModel ble_link() {
  return {"BLE 1M", 700e3, 0.01, 3.0e-8};
}
[[nodiscard]] inline LinkModel wifi_link() {
  return {"Wi-Fi 802.11n", 50e6, 0.002, 5.0e-9};
}
[[nodiscard]] inline LinkModel nr5g_link() {
  return {"5G sub-6", 100e6, 0.001, 4.0e-9};
}

}  // namespace ekm
