// Tests for the second wave of extensions: alias-method sampling,
// k-means|| seeding, Frequent Directions sketching, and k-median.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/sampling.hpp"
#include "cr/sensitivity.hpp"
#include "data/generators.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/kmedian.hpp"
#include "kmeans/lloyd.hpp"
#include "kmeans/parallel_seed.hpp"
#include "linalg/frequent_directions.hpp"
#include "linalg/svd.hpp"

namespace ekm {
namespace {

TEST(AliasTable, MatchesTargetDistribution) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  const AliasTable table(weights);
  EXPECT_DOUBLE_EQ(table.total_weight(), 10.0);

  Rng rng = make_rng(800);
  std::vector<std::size_t> counts(4, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[table.sample(rng)];
  for (std::size_t j = 0; j < 4; ++j) {
    const double expected = weights[j] / 10.0;
    const double observed = static_cast<double>(counts[j]) / draws;
    EXPECT_NEAR(observed, expected, 0.01) << "bucket " << j;
  }
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const std::vector<double> weights{0.0, 1.0, 0.0, 1.0};
  const AliasTable table(weights);
  Rng rng = make_rng(801);
  for (int i = 0; i < 5000; ++i) {
    const std::size_t s = table.sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTable, SingletonAndValidation) {
  const std::vector<double> one{5.0};
  const AliasTable table(one);
  Rng rng = make_rng(802);
  EXPECT_EQ(table.sample(rng), 0u);
  EXPECT_THROW(AliasTable(std::vector<double>{}), precondition_error);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), precondition_error);
  EXPECT_THROW(AliasTable(std::vector<double>{-1.0, 2.0}), precondition_error);
}

TEST(AliasTable, ExtremeWeightRatios) {
  // 1e12 : 1 ratio — the heavy index must dominate without starving the
  // light one entirely across many draws.
  const std::vector<double> weights{1e12, 1.0};
  const AliasTable table(weights);
  Rng rng = make_rng(803);
  std::size_t heavy = 0;
  for (int i = 0; i < 10000; ++i) heavy += (table.sample(rng) == 0);
  EXPECT_GE(heavy, 9990u);
}

TEST(ParallelSeed, ReturnsKCentersWithBoundedCost) {
  Rng rng = make_rng(810);
  GaussianMixtureSpec spec;
  spec.n = 1000;
  spec.dim = 10;
  spec.k = 5;
  spec.separation = 12.0;
  const Dataset d = make_gaussian_mixture(spec, rng);

  ParallelSeedOptions opts;
  opts.k = 5;
  Rng srng = make_rng(811);
  const Matrix seeds = kmeans_parallel_seed(d, opts, srng);
  EXPECT_EQ(seeds.rows(), 5u);
  EXPECT_EQ(seeds.cols(), 10u);

  // Seeding alone should land within a constant factor of a full solve.
  KMeansOptions kopts;
  kopts.k = 5;
  kopts.restarts = 8;
  kopts.seed = 9;
  const double opt = kmeans(d, kopts).cost;
  EXPECT_LT(kmeans_cost(d, seeds), 30.0 * opt);
}

TEST(ParallelSeed, ScalableSolverMatchesLloydQuality) {
  Rng rng = make_rng(812);
  GaussianMixtureSpec spec;
  spec.n = 1500;
  spec.dim = 8;
  spec.k = 6;
  spec.separation = 10.0;
  const Dataset d = make_gaussian_mixture(spec, rng);

  KMeansOptions kopts;
  kopts.k = 6;
  kopts.restarts = 4;
  kopts.seed = 10;
  ParallelSeedOptions sopts;
  sopts.k = 6;
  const KMeansResult scalable = kmeans_scalable(d, kopts, sopts);
  const KMeansResult classic = kmeans(d, kopts);
  EXPECT_LT(scalable.cost, 1.2 * classic.cost);
  EXPECT_THROW((void)kmeans_scalable(d, kopts, ParallelSeedOptions{.k = 3}),
               precondition_error);
}

TEST(FrequentDirections, CovarianceErrorBound) {
  // FD guarantee: 0 <= ||A x||² - ||B x||² <= ||A||_F² / l for unit x.
  Rng rng = make_rng(820);
  const Matrix a = Matrix::gaussian(300, 24, rng);
  const std::size_t l = 12;
  FrequentDirections fd(l, 24);
  for (std::size_t i = 0; i < a.rows(); ++i) fd.insert(a.row(i));
  const Matrix b = fd.sketch();
  EXPECT_LE(b.rows(), 2 * l);

  const double bound =
      a.frobenius_norm() * a.frobenius_norm() / static_cast<double>(l);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix x = Matrix::gaussian(1, 24, rng);
    const double nrm = norm2(x.row(0));
    for (double& v : x.row(0)) v /= nrm;
    double ax = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double dp = dot(a.row(i), x.row(0));
      ax += dp * dp;
    }
    double bx = 0.0;
    for (std::size_t i = 0; i < b.rows(); ++i) {
      const double dp = dot(b.row(i), x.row(0));
      bx += dp * dp;
    }
    EXPECT_GE(ax - bx, -1e-6 * (1.0 + ax));
    EXPECT_LE(ax - bx, bound * (1.0 + 1e-9));
  }
}

TEST(FrequentDirections, PrincipalBasisCapturesDominantSubspace) {
  // Data on a 3-dimensional subspace plus tiny noise: the FD basis with
  // t = 3 captures almost all energy.
  Rng rng = make_rng(821);
  const Matrix latent = Matrix::gaussian(400, 3, rng);
  const Matrix decoder = Matrix::gaussian(3, 32, rng);
  Matrix a = matmul(latent, decoder);
  std::normal_distribution<double> noise(0.0, 1e-3);
  for (double& v : a.flat()) v += noise(rng);

  FrequentDirections fd(8, 32);
  for (std::size_t i = 0; i < a.rows(); ++i) fd.insert(a.row(i));
  const Matrix basis = fd.principal_basis(3);
  ASSERT_EQ(basis.cols(), 3u);

  const Matrix coords = matmul(a, basis);
  const double captured = std::pow(coords.frobenius_norm(), 2);
  const double total = std::pow(a.frobenius_norm(), 2);
  EXPECT_GT(captured / total, 0.99);
}

TEST(FrequentDirections, ValidatesDimensions) {
  FrequentDirections fd(4, 8);
  const std::vector<double> wrong(5, 1.0);
  EXPECT_THROW(fd.insert(std::span<const double>(wrong)), precondition_error);
  EXPECT_THROW(FrequentDirections(0, 8), precondition_error);
}

TEST(KMedian, CostUsesFirstPowerDistances) {
  const Dataset d(Matrix{{0.0}, {3.0}});
  const Matrix centers{{0.0}};
  EXPECT_DOUBLE_EQ(kmedian_cost(d, centers), 3.0);   // not 9
  EXPECT_DOUBLE_EQ(kmeans_cost(d, centers), 9.0);    // contrast
}

TEST(KMedian, GeometricMedianOfTriangle) {
  // Equilateral triangle: the geometric median is the centroid.
  const double h = std::sqrt(3.0) / 2.0;
  const Dataset d(Matrix{{0.0, 0.0}, {1.0, 0.0}, {0.5, h}});
  const std::vector<double> med = geometric_median(d);
  EXPECT_NEAR(med[0], 0.5, 1e-6);
  EXPECT_NEAR(med[1], h / 3.0, 1e-6);
}

TEST(KMedian, MedianIsRobustToOutlierUnlikeMean) {
  // 9 points at 0, one at 1000: median stays near 0, mean does not.
  Matrix pts(10, 1);
  pts(9, 0) = 1000.0;
  const Dataset d(std::move(pts));
  const std::vector<double> med = geometric_median(d);
  EXPECT_LT(std::fabs(med[0]), 1.0);
  EXPECT_NEAR(weighted_mean(d)[0], 100.0, 1e-9);
}

TEST(KMedian, SolvesSeparatedClusters) {
  Rng rng = make_rng(830);
  GaussianMixtureSpec spec;
  spec.n = 400;
  spec.dim = 4;
  spec.k = 3;
  spec.separation = 15.0;
  const Dataset d = make_gaussian_mixture(spec, rng);
  KMedianOptions opts;
  opts.k = 3;
  opts.seed = 7;
  const KMedianResult res = kmedian(d, opts);
  EXPECT_EQ(res.centers.rows(), 3u);
  // Against the 1-median cost the 3-median solution must be far better.
  const Matrix one_center(1, 4);
  const Matrix med1 = [&] {
    Matrix m(1, 4);
    const std::vector<double> gm = geometric_median(d);
    std::copy(gm.begin(), gm.end(), m.row(0).begin());
    return m;
  }();
  EXPECT_LT(res.cost, 0.3 * kmedian_cost(d, med1));
}

TEST(KMedian, WeightedMedianShifts) {
  const Dataset d(Matrix{{0.0}, {10.0}}, {10.0, 1.0});
  const std::vector<double> med = geometric_median(d);
  EXPECT_LT(med[0], 1.0);  // heavy point pins the median
}

TEST(KMedian, CoresetFromSensitivitySamplingWorksForMedianToo) {
  // The paper's CR machinery targets k-means, but the same summary gives
  // a serviceable k-median solve — the cross-objective reuse motivating
  // summaries over model shipping ([5][6] in the paper's intro).
  Rng rng = make_rng(831);
  GaussianMixtureSpec spec;
  spec.n = 1200;
  spec.dim = 6;
  spec.k = 3;
  spec.separation = 12.0;
  const Dataset d = make_gaussian_mixture(spec, rng);
  SensitivitySampleOptions sopts;
  sopts.k = 3;
  sopts.sample_size = 200;
  Rng srng = make_rng(832);
  const Coreset cs = sensitivity_sample(d, sopts, srng);

  KMedianOptions opts;
  opts.k = 3;
  opts.seed = 8;
  const KMedianResult on_coreset = kmedian(cs.points, opts);
  const KMedianResult full = kmedian(d, opts);
  EXPECT_LT(kmedian_cost(d, on_coreset.centers), 1.3 * full.cost);
}

}  // namespace
}  // namespace ekm
