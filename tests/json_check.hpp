// Minimal JSON well-formedness checker shared by the observability
// tests (test_obs.cpp, test_attribution.cpp). CI validates exporter
// artifacts with `python3 -m json.tool`; this is the in-process stand-in
// so the same property is asserted where no interpreter is available.
// It accepts exactly the RFC 8259 grammar — objects, arrays, strings
// with the two-character and \uXXXX escapes, numbers, the three
// literals — and nothing else (trailing garbage, bare NaN/Infinity, and
// raw control characters inside strings all fail).
#pragma once

#include <cstddef>
#include <string>

namespace ekm::test {

class JsonChecker {
 public:
  [[nodiscard]] static bool valid(const std::string& text) {
    JsonChecker c(text);
    c.skip_ws();
    if (!c.value()) return false;
    c.skip_ws();
    return c.p_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& t) : t_(t) {}

  [[nodiscard]] bool eof() const { return p_ >= t_.size(); }
  [[nodiscard]] char peek() const { return t_[p_]; }
  void skip_ws() {
    while (!eof() && (t_[p_] == ' ' || t_[p_] == '\t' || t_[p_] == '\n' ||
                      t_[p_] == '\r')) {
      ++p_;
    }
  }
  bool lit(const char* s) {
    for (; *s != '\0'; ++s, ++p_) {
      if (eof() || t_[p_] != *s) return false;
    }
    return true;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }

  bool object() {
    ++p_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') { ++p_; return true; }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"' || !string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return false;
      ++p_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == '}') { ++p_; return true; }
      if (peek() != ',') return false;
      ++p_;
    }
  }

  bool array() {
    ++p_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') { ++p_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ']') { ++p_; return true; }
      if (peek() != ',') return false;
      ++p_;
    }
  }

  bool string() {
    ++p_;  // opening '"'
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(t_[p_]);
      if (c == '"') { ++p_; return true; }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++p_;
        if (eof()) return false;
        const char e = t_[p_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p_;
            if (eof() || !is_hex(t_[p_])) return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++p_;
    }
    return false;  // unterminated
  }

  bool number() {
    if (peek() == '-') ++p_;
    if (eof()) return false;
    if (peek() == '0') {
      ++p_;
    } else if (is_digit(peek())) {
      while (!eof() && is_digit(peek())) ++p_;
    } else {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++p_;
      if (eof() || !is_digit(peek())) return false;
      while (!eof() && is_digit(peek())) ++p_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++p_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++p_;
      if (eof() || !is_digit(peek())) return false;
      while (!eof() && is_digit(peek())) ++p_;
    }
    return true;
  }

  [[nodiscard]] static bool is_digit(char c) { return c >= '0' && c <= '9'; }
  [[nodiscard]] static bool is_hex(char c) {
    return is_digit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }

  const std::string& t_;
  std::size_t p_ = 0;
};

}  // namespace ekm::test
