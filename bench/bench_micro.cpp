// google-benchmark microbenchmarks for the substrates: SVD, JL apply,
// PCA, sensitivity sampling, FSS, quantizer, k-means, codec. These guard
// the complexity claims of Table 2 at the kernel level (e.g. thin SVD
// scaling with d vs JL apply scaling with d').
#include <benchmark/benchmark.h>

#include "cr/fss.hpp"
#include "cr/sensitivity.hpp"
#include "data/generators.hpp"
#include "dr/jl.hpp"
#include "dr/pca.hpp"
#include "kmeans/lloyd.hpp"
#include "linalg/sparse.hpp"
#include "linalg/svd.hpp"
#include "net/summary_codec.hpp"
#include "qt/quantizer.hpp"

namespace {

using namespace ekm;

Dataset bench_data(std::size_t n, std::size_t d) {
  Rng rng = make_rng(1234, n * 31 + d);
  MnistLikeSpec spec;
  spec.n = n;
  spec.dim = d;
  spec.latent_dim = 12;
  return make_mnist_like(spec, rng);
}

void BM_ThinSvd(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const Dataset data = bench_data(1024, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(thin_svd(data.points()));
  }
  state.SetComplexityN(static_cast<std::int64_t>(d));
}
BENCHMARK(BM_ThinSvd)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_RandomizedSvd(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const Dataset data = bench_data(1024, d);
  Rng rng = make_rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(randomized_svd(data.points(), 16, rng));
  }
}
BENCHMARK(BM_RandomizedSvd)->Arg(64)->Arg(128)->Arg(256);

void BM_JlApply(benchmark::State& state) {
  const auto d_out = static_cast<std::size_t>(state.range(0));
  const Dataset data = bench_data(1024, 512);
  const LinearMap map = make_jl_projection(512, d_out, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.apply(data.points()));
  }
}
BENCHMARK(BM_JlApply)->Arg(16)->Arg(64)->Arg(128);

void BM_JlGenerate(benchmark::State& state) {
  const auto family = static_cast<JlFamily>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_jl_projection(1024, 96, 11, family));
  }
}
BENCHMARK(BM_JlGenerate)->Arg(0)->Arg(1)->Arg(2);

void BM_SparseJlApply(benchmark::State& state) {
  Rng rng = make_rng(21);
  NeuripsLikeSpec spec;
  spec.n = 1024;
  spec.dim = 1024;
  spec.density = 0.05;
  const Dataset d = make_neurips_like(spec, rng);
  const SparseMatrix sparse = SparseMatrix::from_dense(d.points(), 1e-12);
  const LinearMap jl = make_jl_projection(1024, 64, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse.multiply_dense(jl.projection()));
  }
}
BENCHMARK(BM_SparseJlApply);

void BM_PcaProject(benchmark::State& state) {
  const Dataset data = bench_data(1024, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pca_project(data, 16));
  }
}
BENCHMARK(BM_PcaProject);

void BM_SensitivitySample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Dataset data = bench_data(n, 64);
  SensitivitySampleOptions opts;
  opts.k = 2;
  opts.sample_size = 200;
  for (auto _ : state) {
    Rng rng = make_rng(9);
    benchmark::DoNotOptimize(sensitivity_sample(data, opts, rng));
  }
}
BENCHMARK(BM_SensitivitySample)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FssCoreset(benchmark::State& state) {
  const Dataset data = bench_data(2048, static_cast<std::size_t>(state.range(0)));
  FssOptions opts;
  opts.k = 2;
  opts.sample_size = 200;
  opts.intrinsic_dim = 16;
  for (auto _ : state) {
    Rng rng = make_rng(10);
    benchmark::DoNotOptimize(fss_coreset(data, opts, rng));
  }
}
BENCHMARK(BM_FssCoreset)->Arg(64)->Arg(192)->Arg(384);

void BM_Quantizer(benchmark::State& state) {
  const Dataset data = bench_data(1024, 256);
  const RoundingQuantizer q(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.quantize(data.points()));
  }
}
BENCHMARK(BM_Quantizer)->Arg(4)->Arg(23)->Arg(52);

void BM_WeightedKMeans(benchmark::State& state) {
  const Dataset data = bench_data(static_cast<std::size_t>(state.range(0)), 32);
  KMeansOptions opts;
  opts.k = 4;
  opts.restarts = 2;
  opts.seed = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kmeans(data, opts));
  }
}
BENCHMARK(BM_WeightedKMeans)->Arg(512)->Arg(2048);

void BM_CoresetCodec(benchmark::State& state) {
  Coreset cs;
  Rng rng = make_rng(12);
  cs.points = Dataset(Matrix::gaussian(256, 64, rng),
                      std::vector<double>(256, 1.0));
  cs.basis = Matrix::gaussian(64, 512, rng);
  for (auto _ : state) {
    const Message msg = encode_coreset(cs);
    benchmark::DoNotOptimize(decode_coreset(msg));
  }
}
BENCHMARK(BM_CoresetCodec);

}  // namespace

BENCHMARK_MAIN();
