// Simulated edge-network channels with communication accounting.
//
// The paper's communication-cost metric is "number of scalars a data
// source sends to the server" (§3.4), refined to bits once quantization
// enters (§6). Every summary in this library crosses a Port as a real
// serialized frame; the port records three ledgers:
//   * bytes  — the physical frame size (64-bit doubles),
//   * bits   — the logical wire size, where a scalar quantized to s
//              significand bits counts 12 + s bits instead of 64,
//   * scalars — the paper's §3–5 unit.
// Tables 3–4 and Figures 3–6 read these ledgers; nothing is estimated.
//
// Two implementations exist behind the Port/Fabric interfaces:
//   * Channel/Network (this header) — the idealized synchronous star:
//     send enqueues instantly, receive dequeues instantly;
//   * SimLink/SimNetwork (src/sim/) — a discrete-event runtime where the
//     same frames ride a LinkModel with bandwidth, latency, jitter,
//     losses and retransmissions on a virtual clock.
// Protocol code (disPCA, disSS, BKLW, the pipelines) is written against
// Fabric and runs unchanged over either.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/expects.hpp"

namespace ekm {

class Recorder;  // src/obs/recorder.hpp — the optional flight recorder
struct TreeTopology;  // net/topology.hpp — sites → gateways → server

/// Absolute deadline meaning "wait forever" — the paper's synchronous
/// protocol, and the default cap for every deadline-aware receive.
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// Handle to one open collection round. Fabric::open_round mints them
/// (1-based, in open order, on fabrics that track rounds); every
/// round-scoped receive names the round it collects for, so a
/// time-aware fabric can keep *per-round* cutoff state — several
/// rounds' frames can ride the fabric at once without a late straggler
/// from round r aliasing round r+1's traffic (the simulator asserts
/// the pairing frame by frame).
using RoundId = std::uint64_t;

/// "No round": the state before the first open_round, and the id
/// clock-less fabrics hand back. Its cutoff is kNoDeadline — a receive
/// scoped to kNoRound waits forever (minus any explicit cap).
inline constexpr RoundId kNoRound = 0;

/// Availability floor shared by every deadline-driven collection round:
/// a round that leaves fewer *distinct* responding sites than `floor`
/// throws invariant_error instead of aggregating a degenerate summary.
/// Callers count each site at most once per round — a site that also
/// delivers a reallocation-wave supplement is still one responder, and
/// one that misses the wave after responding stays counted. Under
/// churn a departed site naturally stops counting: it is not a
/// distinct *responding* site.
///
/// `round_ordinal` (1-based; 0 = unknown) attributes the violation in
/// a multi-round sweep — "Lloyd round fell below the floor" is useless
/// when forty Lloyd rounds ran; callers pass Fabric::rounds_opened().
/// The counts ride along so a sweep log is actionable by itself.
inline void enforce_availability_floor(std::size_t responders,
                                       std::size_t floor,
                                       const char* round_name,
                                       std::uint64_t round_ordinal = 0) {
  EKM_ENSURES_MSG(
      responders >= floor,
      std::string(round_name) +
          (round_ordinal > 0
               ? " (collection round #" + std::to_string(round_ordinal) + ")"
               : "") +
          " fell below the availability floor: " +
          std::to_string(responders) + " of the required " +
          std::to_string(floor) + " site(s) responded");
}

/// One framed message in flight.
struct Message {
  std::vector<std::byte> payload;
  std::uint64_t wire_bits = 0;
  std::size_t scalars = 0;
};

/// Accumulated traffic totals of a channel.
struct TrafficLedger {
  std::uint64_t bytes = 0;
  std::uint64_t bits = 0;
  std::uint64_t scalars = 0;
  std::uint64_t messages = 0;

  TrafficLedger& operator+=(const TrafficLedger& other) {
    bytes += other.bytes;
    bits += other.bits;
    scalars += other.scalars;
    messages += other.messages;
    return *this;
  }

  [[nodiscard]] friend TrafficLedger operator+(TrafficLedger a,
                                               const TrafficLedger& b) {
    a += b;
    return a;
  }

  /// Zeroes every counter — lets one channel account multiple phases
  /// (e.g. per-round ledgers in the simulator) without reallocation.
  void reset() { *this = TrafficLedger{}; }

  [[nodiscard]] friend bool operator==(const TrafficLedger&,
                                       const TrafficLedger&) = default;
};

/// One endpoint-to-endpoint message stream. Implementations bill the
/// ledger on send; receive hands frames back in FIFO order (a simulated
/// implementation may advance a virtual clock to do so).
class Port {
 public:
  virtual ~Port() = default;
  virtual void send(Message msg) = 0;
  [[nodiscard]] virtual bool has_pending() const = 0;
  [[nodiscard]] virtual Message receive() = 0;
  [[nodiscard]] virtual const TrafficLedger& ledger() const = 0;

  /// Round-scoped deadline-aware receive: hands back the next frame if
  /// it is (or will be) delivered no later than round `round`'s cutoff
  /// — further capped by `deadline_cap` (absolute virtual seconds; the
  /// tighter of the two applies, e.g. a tree's level-0 cutoff or a
  /// reallocation wave's first-wave deadline) — and nullopt if the
  /// frame misses, in which case the frame is *consumed* (abandoned):
  /// the round has moved on and a late arrival must not alias the next
  /// round's frame. kNoRound scopes to no round (cutoff kNoDeadline):
  /// the blocking-receive idiom for downlinks and round-less protocols.
  /// On an instant fabric every pending frame already arrived, so a
  /// miss only means the peer never sent. A time-aware fabric asserts
  /// that the frame consumed was sent under `round` (when not
  /// kNoRound) — the structural guard against cross-round aliasing.
  [[nodiscard]] virtual std::optional<Message> receive_by(
      RoundId round, double deadline_cap = kNoDeadline) {
    (void)round;
    (void)deadline_cap;
    if (has_pending()) return receive();
    return std::nullopt;
  }
  /// The pre-round-handle spelling, deleted so a raw deadline cannot
  /// silently convert to a RoundId: scope the receive to its round and
  /// pass any tighter deadline as the cap.
  std::optional<Message> receive_by(double) = delete;
};

/// Receives one site's round uplink of `count` frames, scoped to
/// `round` and optionally capped by `deadline_cap` (same semantics as
/// Port::receive_by). Every frame is consumed regardless of outcome (a
/// late frame left queued would alias the next round's traffic on this
/// link); the group is all-or-nothing — if any member misses, nullopt
/// comes back and the site counts as ONE round miss. This is what
/// keeps a multi-frame summary (disPCA's Σ/V pair) from being
/// half-aggregated when only part of it arrived in time. The
/// dispca/disss round collects all go through this helper; the other
/// single-frame collection loops (NR, refine, the baselines,
/// streaming) still call receive_by directly.
[[nodiscard]] inline std::optional<std::vector<Message>> receive_frames_by(
    Port& port, std::size_t count, RoundId round,
    double deadline_cap = kNoDeadline) {
  std::vector<Message> frames;
  frames.reserve(count);
  bool complete = true;
  for (std::size_t i = 0; i < count; ++i) {
    auto frame = port.receive_by(round, deadline_cap);
    if (frame.has_value()) {
      frames.push_back(std::move(*frame));
    } else {
      complete = false;
    }
  }
  if (!complete) return std::nullopt;
  return frames;
}

/// Deleted like Port::receive_by(double): a raw deadline is not a
/// round handle.
std::optional<std::vector<Message>> receive_frames_by(Port&, std::size_t,
                                                      double) = delete;

/// Star topology around one edge server: per-source uplink (counted by
/// the paper's metric) and downlink (coordination traffic the paper
/// treats as negligible, e.g. footnote 1; still measured for honesty).
class Fabric {
 public:
  virtual ~Fabric() = default;
  [[nodiscard]] virtual std::size_t num_sources() const = 0;
  [[nodiscard]] virtual Port& uplink(std::size_t source) = 0;
  [[nodiscard]] virtual Port& downlink(std::size_t source) = 0;

  /// Opens one deadline-driven collection round (src/sim/round_policy.hpp)
  /// and returns its handle — what the round's receive_by calls scope
  /// themselves to, and what round_cutoff() resolves to an absolute
  /// deadline. A time-aware fabric anchors the cutoff at the server's
  /// current virtual clock, keeps it as *per-round* state (several
  /// rounds may be in flight under cross-round pipelining), and stops
  /// uplink retransmissions that would start after it; on the
  /// idealized synchronous star every frame arrives instantly, so
  /// rounds are vacuous and kNoRound comes back regardless of
  /// `deadline_seconds`.
  virtual RoundId open_round(double deadline_seconds) {
    (void)deadline_seconds;
    return kNoRound;
  }

  /// Absolute cutoff of round `round`: the deadline its receives
  /// resolve against, kNoDeadline for kNoRound or on fabrics without
  /// time. Protocols use it to derive schedule values (a wave's
  /// first-wave deadline, a tree's level-0 split) from the handle.
  [[nodiscard]] virtual double round_cutoff(RoundId round) const {
    (void)round;
    return kNoDeadline;
  }

  /// Opens a sub-deadline *inside* round `round`: a second collection
  /// wave (e.g. disSS's budget-reallocation wave) that must respect
  /// the enclosing round's cutoff. `absolute_deadline` is an absolute
  /// virtual time (typically that round's cutoff); a time-aware fabric
  /// clamps the round's cutoff to min(current cutoff,
  /// absolute_deadline) — so the wave can never outlive its round —
  /// and returns the same handle, whose round_cutoff() now reads the
  /// clamped value. On the idealized synchronous star every frame
  /// already arrived and the handle passes through untouched.
  virtual RoundId open_subround(RoundId round, double absolute_deadline) {
    (void)absolute_deadline;
    return round;
  }

  /// Virtual clocks, for schedulers and timelines (src/sched/). The
  /// idealized synchronous star has no notion of time, so both read 0;
  /// a time-aware fabric reports its committed actor clocks.
  [[nodiscard]] virtual double server_time() const { return 0.0; }
  [[nodiscard]] virtual double site_time(std::size_t source) const {
    (void)source;
    return 0.0;
  }

  /// Predicted single-attempt airtime of a `wire_bits` uplink frame
  /// from `source` right now — what adaptive quantization
  /// (qt/policy.hpp) weighs against the remaining round budget. The
  /// synchronous star transmits instantly, so 0 comes back and
  /// adaptive policies keep full width.
  [[nodiscard]] virtual double uplink_airtime_s(std::size_t source,
                                                std::uint64_t wire_bits) const {
    (void)source;
    (void)wire_bits;
    return 0.0;
  }

  /// Whether `source` is currently a fleet member. Always true on
  /// fabrics without a membership model; a churning simulator reports
  /// the site's state at its own clock, letting collection loops skip
  /// departed sites instead of counting their orphaned frames as
  /// ordinary misses. Non-const: a lazy churn schedule may extend.
  [[nodiscard]] virtual bool is_member(std::size_t source) {
    (void)source;
    return true;
  }

  /// Collection rounds opened so far — the 1-based ordinal callers
  /// hand to enforce_availability_floor for attribution. 0 on fabrics
  /// that never count rounds (the synchronous star).
  [[nodiscard]] virtual std::uint64_t rounds_opened() const { return 0; }

  /// The aggregation tree this fabric routes uplinks through, or null —
  /// the default, and the only possibility on a star. When non-null,
  /// sources [0, topology()->sites) are the data sites and uplink(
  /// sites + g) is gateway g's forward hop to the server; the protocols
  /// in src/distributed collect per gateway instead of per site. A
  /// num_sources() of topology()->sites keeps total_uplink() measuring
  /// the paper's site-level communication metric on either topology.
  [[nodiscard]] virtual const TreeTopology* topology() const {
    return nullptr;
  }

  /// Advances actor `source`'s virtual clock to at least `t` (no-op on
  /// clock-less fabrics, and never moves a clock backwards). A gateway
  /// blocks on its children's frames before merging; this is how the
  /// merge barrier charges that wait to the gateway's own timeline so
  /// its forward hop cannot depart before its inputs existed.
  virtual void wait_until(std::size_t source, double t) {
    (void)source;
    (void)t;
  }

  /// Virtual time at which the most recent receive on `source`'s uplink
  /// resolved — the frame's arrival on a hit, the moment the miss
  /// became known on a miss. 0 on clock-less fabrics and before any
  /// receive. Gateways take max over their children to find the instant
  /// their merged summary is complete.
  [[nodiscard]] virtual double uplink_consumed_at_s(std::size_t source) const {
    (void)source;
    return 0.0;
  }

  /// The attached flight recorder (src/obs/), or null — the default,
  /// and the only possibility on fabrics without one. Protocol code
  /// and the phase scheduler gate ALL observability work on this
  /// pointer, which is what keeps recording zero-cost when off: a null
  /// check is the entire overhead.
  [[nodiscard]] virtual Recorder* recorder() { return nullptr; }

  /// Total source->server traffic — the paper's communication cost.
  [[nodiscard]] TrafficLedger total_uplink() {
    TrafficLedger t;
    for (std::size_t i = 0; i < num_sources(); ++i) t += uplink(i).ledger();
    return t;
  }

  [[nodiscard]] TrafficLedger total_downlink() {
    TrafficLedger t;
    for (std::size_t i = 0; i < num_sources(); ++i) t += downlink(i).ledger();
    return t;
  }
};

/// Unidirectional FIFO channel with zero transit time. Sending enqueues
/// and bills the ledger; receiving dequeues.
class Channel final : public Port {
 public:
  void send(Message msg) override {
    ledger_.bytes += msg.payload.size();
    ledger_.bits += msg.wire_bits;
    ledger_.scalars += msg.scalars;
    ledger_.messages += 1;
    queue_.push_back(std::move(msg));
  }

  [[nodiscard]] bool has_pending() const override { return !queue_.empty(); }

  [[nodiscard]] Message receive() override {
    EKM_EXPECTS_MSG(!queue_.empty(), "receive on empty channel");
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

  [[nodiscard]] const TrafficLedger& ledger() const override { return ledger_; }

 private:
  std::deque<Message> queue_;
  TrafficLedger ledger_;
};

/// The idealized synchronous star of §3.4: every frame arrives the
/// instant it is sent. This is the reference implementation the paper's
/// scalar/bit tables are measured on; src/sim/ provides the time-aware
/// counterpart.
class Network final : public Fabric {
 public:
  explicit Network(std::size_t num_sources) : up_(num_sources), down_(num_sources) {
    EKM_EXPECTS(num_sources >= 1);
  }

  [[nodiscard]] std::size_t num_sources() const override { return up_.size(); }

  [[nodiscard]] Channel& uplink(std::size_t source) override {
    EKM_EXPECTS(source < up_.size());
    return up_[source];
  }
  [[nodiscard]] Channel& downlink(std::size_t source) override {
    EKM_EXPECTS(source < down_.size());
    return down_[source];
  }

 private:
  std::vector<Channel> up_;
  std::vector<Channel> down_;
};

}  // namespace ekm
