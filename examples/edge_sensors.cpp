// Edge-sensor fleet: the paper's multi-source scenario (§5).
//
// Ten battery-powered sensors each hold a shard of a measurement stream
// and a nearby edge server wants k-means centers over the union without
// pulling raw data over the radio. Compares BKLW against Algorithm 4
// (JL+BKLW) and prints the full traffic ledger per source — the number a
// deployment engineer actually budgets for.
#include <cstdio>
#include <vector>

#include "core/pipeline.hpp"
#include "data/generators.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/lloyd.hpp"
#include "net/link_model.hpp"

int main() {
  using namespace ekm;
  constexpr std::size_t kSources = 10;

  // Sensor data: 6 operating regimes (clusters) in a 256-dim feature
  // space, 8000 readings scattered across the fleet.
  Rng rng = make_rng(21);
  GaussianMixtureSpec spec;
  spec.n = 8000;
  spec.dim = 256;
  spec.k = 6;
  spec.separation = 6.0;
  const Dataset all = make_gaussian_mixture(spec, rng);
  const std::vector<Dataset> shards = partition_random(all, kSources, rng);

  std::printf("fleet: %zu sensors, %zu readings x %zu features total\n",
              kSources, all.size(), all.dim());

  PipelineConfig config;
  config.k = 6;
  config.epsilon = 0.3;
  config.seed = 99;
  config.coreset_size = 500;
  config.jl_dim = 80;
  config.pca_dim = 24;

  KMeansOptions solver;
  solver.k = config.k;
  solver.restarts = 8;
  solver.seed = 2;
  const double full_cost = kmeans(all, solver).cost;

  for (PipelineKind kind : {PipelineKind::kBklw, PipelineKind::kJlBklw}) {
    const PipelineResult res = run_distributed_pipeline(kind, shards, config);
    const double cost = kmeans_cost(all, res.centers);
    std::printf("\n%s:\n", pipeline_name(kind));
    std::printf("  normalized k-means cost : %.4f\n", cost / full_cost);
    std::printf("  uplink                  : %llu bits in %llu messages "
                "(%llu scalars)\n",
                static_cast<unsigned long long>(res.uplink.bits),
                static_cast<unsigned long long>(res.uplink.messages),
                static_cast<unsigned long long>(res.uplink.scalars));
    std::printf("  downlink (coordination) : %llu bits\n",
                static_cast<unsigned long long>(res.downlink.bits));
    std::printf("  per-sensor uplink       : ~%.1f KiB\n",
                static_cast<double>(res.uplink.bits) / 8.0 / 1024.0 /
                    static_cast<double>(kSources));
    std::printf("  sensor compute time     : %.3f s (sum over fleet)\n",
                res.device_seconds);
    // Radio budget: what this uplink costs on concrete link classes.
    for (const LinkModel& link :
         {lora_link(), ble_link(), wifi_link(), nr5g_link()}) {
      std::printf("  airtime on %-14s: %8.2f s  (%.4f J)\n",
                  link.name.c_str(), link.transfer_seconds(res.uplink),
                  link.transfer_joules(res.uplink));
    }
  }

  const std::size_t raw_bits = all.scalar_count() * 64;
  std::printf("\nraw-data upload would cost %.1f KiB total\n",
              static_cast<double>(raw_bits) / 8.0 / 1024.0);
  return 0;
}
