#include "net/summary_codec.hpp"

#include "common/serial.hpp"

namespace ekm {
namespace {

constexpr std::uint32_t kTagCoreset = 0x434f5245;  // "CORE"
constexpr std::uint32_t kTagMatrix = 0x4d415452;   // "MATR"
constexpr std::uint32_t kTagScalar = 0x53434c52;   // "SCLR"

void put_matrix(ByteWriter& w, const Matrix& m) {
  w.put_u64(m.rows());
  w.put_u64(m.cols());
  w.put_doubles(m.flat());
}

Matrix get_matrix(ByteReader& r) {
  const auto rows = r.get_u64();
  const auto cols = r.get_u64();
  std::vector<double> data = r.get_doubles();
  // Guard the product against wrap-around from hostile headers before
  // trusting rows x cols as a shape.
  EKM_EXPECTS_MSG(rows == 0 || cols == data.size() / rows,
                  "matrix frame corrupt");
  EKM_EXPECTS_MSG(data.size() == rows * cols, "matrix frame corrupt");
  return Matrix(rows, cols, std::move(data));
}

}  // namespace

std::uint64_t wire_bits_per_scalar(int significant_bits) {
  if (significant_bits >= 52 || significant_bits <= 0) return 64;
  return 12 + static_cast<std::uint64_t>(significant_bits);
}

std::uint64_t coreset_wire_bits(const Coreset& coreset, int significant_bits) {
  const std::size_t point_scalars =
      coreset.points.size() * coreset.points.dim();
  const std::size_t basis_scalars =
      coreset.basis ? coreset.basis->rows() * coreset.basis->cols() : 0;
  const std::size_t n = coreset.points.size();
  return point_scalars * wire_bits_per_scalar(significant_bits) +
         (basis_scalars + n + 1) * 64;
}

Message encode_coreset(const Coreset& coreset, int significant_bits) {
  ByteWriter w;
  w.put_u32(kTagCoreset);
  put_matrix(w, coreset.points.points());
  w.put_f64(coreset.delta);
  const std::size_t n = coreset.points.size();
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) weights[i] = coreset.points.weight(i);
  w.put_doubles(weights);
  w.put_u32(coreset.basis ? 1 : 0);
  if (coreset.basis) put_matrix(w, *coreset.basis);

  Message msg;
  const std::size_t point_scalars = coreset.points.size() * coreset.points.dim();
  const std::size_t basis_scalars =
      coreset.basis ? coreset.basis->rows() * coreset.basis->cols() : 0;
  msg.scalars = point_scalars + basis_scalars + n /*weights*/ + 1 /*delta*/;
  msg.wire_bits = coreset_wire_bits(coreset, significant_bits);
  msg.payload = w.take();
  return msg;
}

Coreset decode_coreset(const Message& msg) {
  ByteReader r(msg.payload);
  EKM_EXPECTS_MSG(r.get_u32() == kTagCoreset, "not a coreset frame");
  Matrix pts = get_matrix(r);
  const double delta = r.get_f64();
  std::vector<double> weights = r.get_doubles();
  EKM_EXPECTS_MSG(weights.size() == pts.rows(), "coreset frame corrupt");
  Coreset cs;
  cs.points = Dataset(std::move(pts), std::move(weights));
  cs.delta = delta;
  if (r.get_u32() == 1) cs.basis = get_matrix(r);
  return cs;
}

Message encode_matrix(const Matrix& m, int significant_bits) {
  ByteWriter w;
  w.put_u32(kTagMatrix);
  put_matrix(w, m);
  Message msg;
  msg.scalars = m.rows() * m.cols();
  msg.wire_bits = msg.scalars * wire_bits_per_scalar(significant_bits);
  msg.payload = w.take();
  return msg;
}

Matrix decode_matrix(const Message& msg) {
  ByteReader r(msg.payload);
  EKM_EXPECTS_MSG(r.get_u32() == kTagMatrix, "not a matrix frame");
  return get_matrix(r);
}

Message encode_scalar(double value) {
  ByteWriter w;
  w.put_u32(kTagScalar);
  w.put_f64(value);
  Message msg;
  msg.scalars = 1;
  msg.wire_bits = 64;
  msg.payload = w.take();
  return msg;
}

double decode_scalar(const Message& msg) {
  ByteReader r(msg.payload);
  EKM_EXPECTS_MSG(r.get_u32() == kTagScalar, "not a scalar frame");
  return r.get_f64();
}

}  // namespace ekm
