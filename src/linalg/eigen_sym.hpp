// Symmetric eigendecomposition.
//
// PCA for FSS (§3.3 / Theorem 3.2) and disPCA (§5.1) reduce to the
// eigendecomposition of a Gram matrix A^T A (or A A^T, whichever is
// smaller). We implement the classic dense symmetric pipeline:
// Householder tridiagonalization followed by implicit-shift QL with
// eigenvector accumulation (tred2/tql2). O(d^3), deterministic — this is
// exactly the "exact SVD" cost profile the paper charges FSS and BKLW
// with (complexity O(nd * min(n, d)) in Table 2).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace ekm {

/// Eigendecomposition of a symmetric matrix: A = V diag(values) V^T.
/// `values` are sorted in DESCENDING order; column j of `vectors` is the
/// unit eigenvector for values[j].
struct SymmetricEigen {
  std::vector<double> values;
  Matrix vectors;  // d x d, eigenvectors in columns
};

/// Computes all eigenpairs of a symmetric matrix. The strictly lower
/// triangle is ignored (the matrix is symmetrized from the upper part).
/// Throws invariant_error if the QL iteration fails to converge (does not
/// happen for well-formed symmetric input).
[[nodiscard]] SymmetricEigen eigen_symmetric(const Matrix& a);

/// Cyclic Jacobi eigensolver — slower (O(d^3) per sweep) but with better
/// relative accuracy for small matrices; used by the one-sided-Jacobi SVD
/// verification path and in tests as an independent oracle.
[[nodiscard]] SymmetricEigen eigen_symmetric_jacobi(const Matrix& a,
                                                    int max_sweeps = 64);

}  // namespace ekm
