// Quickstart: compute communication-efficient k-means centers for a
// dataset held by a (simulated) edge device.
//
//   build/examples/quickstart
//
// The device runs Algorithm 3 (JL -> FSS coreset -> JL) and ships a
// ~few-KB summary instead of the raw matrix; the server solves weighted
// k-means on the summary and lifts the centers back to the original
// space. We print the accuracy/communication trade against solving on
// the raw data.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "data/generators.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/lloyd.hpp"

int main() {
  using namespace ekm;

  // 1) The device's dataset: 5000 x 784 image-like points.
  Rng rng = make_rng(/*master seed=*/7);
  MnistLikeSpec spec;
  spec.n = 5000;
  spec.dim = 784;
  const Dataset data = make_mnist_like(spec, rng);
  std::printf("device holds %zu points in %zu dimensions (%zu scalars)\n",
              data.size(), data.dim(), data.scalar_count());

  // 2) Configure the pipeline. `epsilon` is the overall approximation
  //    target; the summary sizes are the practical knobs.
  PipelineConfig config;
  config.k = 10;
  config.epsilon = 0.3;
  config.seed = 42;          // shared by device & server (JL obliviousness)
  config.coreset_size = 400; // |S|
  config.jl_dim = 96;        // first JL target dimension
  config.pca_dim = 32;       // FSS intrinsic dimension

  // The paper's pseudoinverse lift-back degrades with k (fine at the
  // paper's k = 2, lossy at k = 10); one device-side refinement round
  // recovers the partition-based centers. Run both to see the effect.
  config.refine_iters = 3;

  // 3) Run Algorithm 3 end to end through the simulated network.
  const PipelineResult result =
      run_pipeline(PipelineKind::kJlFssJl, data, config);

  // 4) Compare against solving k-means on the full dataset.
  KMeansOptions solver;
  solver.k = config.k;
  solver.restarts = 8;
  solver.seed = 1;
  const double full_cost = kmeans(data, solver).cost;
  const double summary_cost = kmeans_cost(data, result.centers);

  std::printf("summary: %zu points, %llu bits on the wire (%.2f%% of raw)\n",
              result.summary_points,
              static_cast<unsigned long long>(result.uplink.bits),
              100.0 * static_cast<double>(result.uplink.bits) /
                  (static_cast<double>(data.scalar_count()) * 64.0));
  std::printf("device-side time: %.3f s\n", result.device_seconds);
  std::printf("k-means cost: full-data solve = %.2f, via summary = %.2f "
              "(ratio %.4f)\n",
              full_cost, summary_cost, summary_cost / full_cost);

  // 5) The paper-faithful variant without refinement, for contrast.
  config.refine_iters = 0;
  const PipelineResult paper =
      run_pipeline(PipelineKind::kJlFssJl, data, config);
  std::printf("paper-faithful pinv lift only: ratio %.4f at %llu bits — the\n"
              "min-norm preimage drops between-cluster variance at k=10;\n"
              "see PipelineConfig::refine_iters.\n",
              kmeans_cost(data, paper.centers) / full_cost,
              static_cast<unsigned long long>(paper.uplink.bits));
  return 0;
}
