// Metrics registry — the counters/gauges/histograms half of the flight
// recorder (src/obs/recorder.hpp holds the span/event half).
//
// Design constraints, in order:
//   1. Deterministic serialization. Metrics live in a flat vector in
//      registration order; to_json() walks that vector, so two
//      registries fed the same registration + update sequence emit the
//      same bytes. No hash maps anywhere near the output path.
//   2. Zero interference. A registry only ever stores numbers handed to
//      it — it draws no randomness, touches no clock, and is updated
//      exclusively from the protocol thread, so attaching one to a run
//      cannot perturb RNG streams, event order, or any numeric path
//      (tests/test_obs.cpp holds the whole obs layer to that).
//   3. Cheap when off. Nothing in this header is consulted unless a
//      Recorder is attached; the registry itself is plain vectors.
//
// Counter  — monotone uint64 (frames missed, bits shipped).
// Gauge    — last-write-wins double (energy, server clock).
// Histogram — fixed upper-bound buckets + overflow, with sum/count, for
//            value distributions (quantizer widths, span durations).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ekm {

class MetricsRegistry {
 public:
  /// Opaque handle to a registered metric (index into the flat store).
  using Id = std::size_t;

  /// Registers a metric under `name`. Names should be dotted paths
  /// ("sim.deadline_misses"); re-registering a name returns the
  /// existing id (same kind required), so call sites can register
  /// idempotently.
  Id counter(const std::string& name);
  Id gauge(const std::string& name);
  /// `upper_bounds` must be strictly increasing; an implicit +inf
  /// overflow bucket is appended.
  Id histogram(const std::string& name, std::vector<double> upper_bounds);

  void add(Id id, std::uint64_t delta);   ///< counter += delta
  void set(Id id, double value);          ///< gauge = value
  void observe(Id id, double value);      ///< histogram sample

  [[nodiscard]] std::uint64_t counter_value(Id id) const;
  [[nodiscard]] double gauge_value(Id id) const;
  [[nodiscard]] std::size_t size() const { return metrics_.size(); }

  /// One JSON object: {"name": value, ...} in registration order.
  /// Counters emit integers, gauges shortest-roundtrip doubles,
  /// histograms {"buckets": [...], "counts": [...], "sum": s,
  /// "count": n}. Deterministic byte-for-byte for a fixed
  /// registration + update history.
  [[nodiscard]] std::string to_json() const;

  /// Resets every value (not the registrations): counters to 0, gauges
  /// to 0.0, histogram counts/sums to 0. Used by per-round snapshots
  /// that want deltas rather than running totals.
  void reset_values();

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Metric {
    Kind kind = Kind::kCounter;
    std::string name;
    std::uint64_t count = 0;            // counter value / histogram n
    double value = 0.0;                 // gauge value / histogram sum
    std::vector<double> bounds;         // histogram upper bounds
    std::vector<std::uint64_t> buckets; // bounds.size() + 1 (overflow)
  };

  Id register_metric(Kind kind, const std::string& name);

  std::vector<Metric> metrics_;  ///< registration order == output order
};

}  // namespace ekm
