// Scenario configuration for the discrete-event edge-network simulator.
//
// A SimScenario bundles everything that distinguishes one deployment
// from another: the radio class, fault rates (per-attempt frame loss,
// per-transaction site dropout), timing noise (jitter), compute
// heterogeneity (stragglers, speed skew), and the retransmission
// policy. Named presets cover the deployments the benches sweep;
// parse_scenario() additionally accepts "key=value,key=value" overrides
// so the CLI can express anything the struct can.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/link_model.hpp"
#include "sim/round_policy.hpp"

namespace ekm {

/// One site's deviations from the fleet-wide scenario knobs, applied in
/// declaration order (later overrides win). Parsed from `siteN.key=value`
/// tokens; overrides naming a site index beyond the deployment's size
/// are ignored (a scenario string is reusable across fleet sizes).
struct SiteOverride {
  std::size_t site = 0;
  std::optional<LinkModel> radio;        ///< siteN.radio=lora|ble|wifi|5g
  std::optional<double> bandwidth_bps;   ///< siteN.bandwidth=BPS
  std::optional<double> loss_rate;       ///< siteN.loss=P
  std::optional<double> dropout_rate;    ///< siteN.dropout=P
  std::optional<double> compute_speed;   ///< siteN.speed=REL (pins the
                                         ///< speed, after skew/stragglers)
  std::optional<RetryStrategy> retry;    ///< siteN.retry=fixed|backoff|giveup
};

struct SimScenario {
  std::string name = "ideal";

  /// Radio class shared by every site (see link_model.hpp presets).
  LinkModel radio = wifi_link();

  /// Heterogeneous fleets: when non-empty, site i rides
  /// radio_cycle[i % radio_cycle.size()] instead of `radio`
  /// (hetero-mesh uses this); siteN.radio overrides still win.
  std::vector<LinkModel> radio_cycle;

  /// Per-site deviations, applied on top of everything above.
  std::vector<SiteOverride> site_overrides;

  /// Deadline policy for collection rounds (round_policy.hpp). The
  /// default — no deadline — reproduces the paper's wait-for-everyone
  /// protocol bit for bit.
  RoundPolicy round;

  /// Retransmission policy (round_policy.hpp): what a sender does
  /// between attempts of one frame. The default fixed ack-timeout is
  /// the PR 2/3 behavior bit for bit; `retry=backoff` and
  /// `retry=giveup` (per-site `siteN.retry=`) change only how faults
  /// cost clock/airtime, never the goodput ledgers.
  RetryPolicy retry;

  // --- faults -------------------------------------------------------------
  /// Probability that one transmission attempt is lost in flight. Lost
  /// attempts are retransmitted (billed to airtime/energy, not to the
  /// paper's scalar ledger) until delivered or max_retries is spent.
  double loss_rate = 0.0;
  /// Probability that a site is in a dropout window when it next needs
  /// its radio; it then waits out `outage_seconds` before transmitting.
  double dropout_rate = 0.0;
  double outage_seconds = 5.0;
  /// Attempts beyond the first before the link escalates. The protocols
  /// are lossless at the application layer, so after max_retries the
  /// frame is delivered anyway over an assumed reliable fallback — all
  /// attempts stay billed.
  int max_retries = 8;

  // --- timing noise -------------------------------------------------------
  /// Airtime jitter: each attempt's duration is scaled by a uniform
  /// draw from [1 - jitter_frac, 1 + jitter_frac].
  double jitter_frac = 0.0;

  // --- compute heterogeneity ----------------------------------------------
  /// Fraction of sites designated stragglers (chosen by seed)...
  double straggler_fraction = 0.0;
  /// ...and how much slower they are (compute_speed /= slowdown).
  double straggler_slowdown = 4.0;
  /// Multiplicative speed spread across all sites: each site's speed is
  /// additionally scaled by a uniform draw from [1/skew, 1]. 1 = none.
  double site_speed_skew = 1.0;

  // --- compute model ------------------------------------------------------
  /// Virtual seconds the reference edge CPU spends producing one
  /// summary scalar (serialization + the local math behind it). The
  /// absolute value is a calibration constant; the relative spread
  /// across sites is what stragglers/skew act on.
  double seconds_per_scalar = 1e-7;
  /// Server speed relative to the reference edge CPU.
  double server_speed = 16.0;

  // --- reporting ----------------------------------------------------------
  /// Cap on the retained event trace (scenario key `event-log=off|N`):
  /// the simulator records the first N events processed and drops the
  /// rest (0 = record nothing, the `off` spelling). Metrics, clocks
  /// and ledgers are unaffected — only SimReport::event_log shrinks.
  /// Sweep workloads (the overlap sweep in bench_sim_scenarios) turn
  /// this off so a grid of lossy multi-round runs does not hold tens
  /// of thousands of trace entries per cell in memory. The default
  /// (unlimited) keeps PR 2–4 behavior bit for bit.
  std::size_t event_log_limit = static_cast<std::size_t>(-1);

  std::uint64_t seed = 1;

  [[nodiscard]] bool fault_free() const {
    if (loss_rate != 0.0 || dropout_rate != 0.0 || jitter_frac != 0.0) {
      return false;
    }
    for (const SiteOverride& o : site_overrides) {
      if (o.loss_rate.value_or(0.0) != 0.0) return false;
      if (o.dropout_rate.value_or(0.0) != 0.0) return false;
    }
    return true;
  }
};

/// Single source of truth for the retry-strategy grammar, shared by
/// the scenario parser (`retry=`, `siteN.retry=`) and the CLI
/// (`--retry`): "fixed" | "backoff" | "giveup", nullopt on anything
/// else.
[[nodiscard]] std::optional<RetryStrategy> retry_strategy_from_name(
    const std::string& name);

/// Named presets, each an opinionated deployment sketch:
///   ideal          — Wi-Fi, no faults (ledger-equivalent to Network)
///   wifi-office    — Wi-Fi, light loss and jitter
///   ble-swarm      — BLE, moderate loss, occasional dropouts
///   lora-field     — LoRa, lossy, long outages, strong skew
///   nr5g-fleet     — 5G, clean radio but a straggling quarter of sites
///   lossy-mesh     — Wi-Fi with heavy loss/dropout, stress preset
///   hetero-mesh    — mixed Wi-Fi/BLE/LoRa fleet (radio_cycle), light
///                    faults, moderate speed skew
///   deadline-fleet — 5G with a straggling, lossier tail of sites and a
///                    finite round deadline (partial aggregation on by
///                    default)
[[nodiscard]] std::vector<std::string> sim_scenario_names();

/// Returns the preset, or nullopt if `name` is not one.
[[nodiscard]] std::optional<SimScenario> sim_scenario_preset(
    const std::string& name);

/// Parses "NAME" or "NAME,key=value,..." or "key=value,...". Keys:
/// radio (lora|ble|wifi|5g), loss, dropout, outage, retries, jitter,
/// stragglers, slowdown, skew, sps (seconds per scalar), server-speed,
/// deadline (virtual seconds per collection round, or inf),
/// min-responders, realloc (on|off: deadline-aware budget
/// reallocation), realloc-reserve (fraction of a finite round budget
/// scheduled for the reallocation wave), overlap (on|off: phase-overlap
/// scheduling — expiry NAKs commit merge barriers early),
/// event-log (off|N: cap the retained event trace),
/// retry (fixed|backoff|giveup),
/// backoff-base, backoff-cap, backoff-jitter, seed, plus per-site overrides
/// siteN.radio, siteN.bandwidth, siteN.loss, siteN.dropout,
/// siteN.speed, siteN.retry. Overrides apply on top of the preset
/// (default: ideal). Throws precondition_error on unknown names/keys
/// and on malformed values — empty, trailing garbage, or out of range
/// (including finite-looking tokens that overflow double, e.g.
/// `loss=1e999`) — naming the offending key.
[[nodiscard]] SimScenario parse_scenario(const std::string& spec);

}  // namespace ekm
