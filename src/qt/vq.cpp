#include "qt/vq.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "common/rng.hpp"
#include "kmeans/kmeans1d.hpp"

namespace ekm {

ScalarLloydMaxQuantizer::ScalarLloydMaxQuantizer(const Matrix& training,
                                                 std::size_t levels,
                                                 std::size_t max_training_values,
                                                 std::uint64_t seed) {
  EKM_EXPECTS(levels >= 2 && levels <= 4096);
  EKM_EXPECTS(!training.empty());
  EKM_EXPECTS(max_training_values >= levels);

  // Subsample the training values (the DP is O(k n²)).
  auto flat = training.flat();
  std::vector<double> sample;
  if (flat.size() <= max_training_values) {
    sample.assign(flat.begin(), flat.end());
  } else {
    Rng rng = make_rng(seed, 0x10afULL);
    std::uniform_int_distribution<std::size_t> pick(0, flat.size() - 1);
    sample.resize(max_training_values);
    for (double& v : sample) v = flat[pick(rng)];
  }

  const KMeansResult res = kmeans_1d_exact(sample, levels);
  codebook_.resize(res.centers.rows());
  for (std::size_t c = 0; c < codebook_.size(); ++c) {
    codebook_[c] = res.centers(c, 0);
  }
  std::sort(codebook_.begin(), codebook_.end());
  codebook_.erase(std::unique(codebook_.begin(), codebook_.end()),
                  codebook_.end());
  EKM_ENSURES(!codebook_.empty());
}

double ScalarLloydMaxQuantizer::quantize(double x) const {
  // Binary search the sorted codebook for the nearest codeword.
  const auto it = std::lower_bound(codebook_.begin(), codebook_.end(), x);
  if (it == codebook_.begin()) return codebook_.front();
  if (it == codebook_.end()) return codebook_.back();
  const double hi = *it;
  const double lo = *(it - 1);
  return (x - lo <= hi - x) ? lo : hi;
}

Matrix ScalarLloydMaxQuantizer::quantize(const Matrix& m) const {
  Matrix out = m;
  for (double& v : out.flat()) v = quantize(v);
  return out;
}

std::size_t ScalarLloydMaxQuantizer::bits_per_scalar() const {
  return static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(std::max<std::size_t>(2, levels())))));
}

}  // namespace ekm
