// Compressed-sparse-row matrix support.
//
// The paper's second dataset (NeurIPS word counts) is ~95% zeros; an edge
// device holding such data should pay O(nnz) — not O(nd) — for the JL
// projection that dominates Algorithm 1/3/4's device cost, and O(nnz) for
// distance evaluations. This module provides the CSR container and the
// two kernels the pipelines need: sparse × dense products and sparse
// squared distances. (Achlioptas' sparse JL family in dr/jl.hpp attacks
// the same cost from the projection side; the two compose.)
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace ekm {

class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// CSR from raw arrays. `row_ptr` has rows+1 entries, ascending;
  /// `cols[i] < cols_count`; values parallel to cols.
  SparseMatrix(std::size_t rows, std::size_t cols,
               std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
               std::vector<double> values);

  /// Converts from dense, dropping entries with |v| <= tolerance.
  [[nodiscard]] static SparseMatrix from_dense(const Matrix& dense,
                                               double tolerance = 0.0);

  [[nodiscard]] Matrix to_dense() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }
  [[nodiscard]] double density() const noexcept {
    const double cells = static_cast<double>(rows_) * static_cast<double>(cols_);
    return cells > 0.0 ? static_cast<double>(nnz()) / cells : 0.0;
  }

  /// Row r as (column indices, values) spans.
  [[nodiscard]] std::span<const std::size_t> row_cols(std::size_t r) const;
  [[nodiscard]] std::span<const double> row_values(std::size_t r) const;

  /// C = S * B with B dense: O(nnz(S) * cols(B)). The JL-apply kernel.
  [[nodiscard]] Matrix multiply_dense(const Matrix& b) const;

  /// ||row_r - y||² in O(nnz(row) + precomputed ||y||²): uses
  /// ||x - y||² = ||x||² - 2 x·y + ||y||² over the row's support only.
  [[nodiscard]] double row_squared_distance(std::size_t r,
                                            std::span<const double> y,
                                            double y_norm_sq) const;

  /// Squared norms of all rows (precompute for k-means loops).
  [[nodiscard]] std::vector<double> row_norms_sq() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Nearest center (rows of dense `centers`) for every row of `points`,
/// plus the total weighted cost — the sparse analogue of the
/// kmeans_cost/assign pair. `weights` may be empty (all ones).
struct SparseAssignment {
  std::vector<std::size_t> assignment;
  double cost = 0.0;
};

[[nodiscard]] SparseAssignment sparse_assign(const SparseMatrix& points,
                                             const Matrix& centers,
                                             std::span<const double> weights = {});

}  // namespace ekm
