// Joint DR/CR/QT configuration (§6.3 of the paper).
//
// Given a bound Y0 on the acceptable approximation factor and a
// confidence 1-δ0, choose the number of significand bits s and the common
// error parameter ε (the paper's simplification ε1^(1) = ε2 = ε1^(2) = ε)
// that minimize the modeled communication cost X of eq. (24) subject to
// the error constraint (21b). The quantizer has finitely many settings,
// so the paper's procedure — enumerate s, solve for the max feasible ε,
// evaluate X, take the argmin — is exact.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace ekm {

/// Problem parameters for the §6.3 optimizer (all per the paper).
struct QtConfigProblem {
  double y0 = 1.5;       ///< bound on cost(P,X)/cost(P,X*) — eq. (21b)
  double delta0 = 0.1;   ///< overall failure budget; per-stage δ = 1-(1-δ0)^(1/3)
  std::size_t k = 2;
  std::size_t n = 10000;
  std::size_t d = 784;
  double diameter = 2.0;        ///< ∆_D — diameter of the (normalized) space
  double max_point_norm = 1.0;  ///< max_p ||p|| used by the ∆_QT bound (14)
  double opt_cost_lower_bound = 1.0;  ///< E <= cost(P, X*) (§6.3.1)
};

/// One feasible configuration: quantizer setting + error split + the
/// modeled cost X (eq. (24)) and error bound Y (eq. (21b)).
struct QtConfig {
  int significant_bits = 52;  ///< 52 = full double precision (QT off)
  double epsilon = 0.0;       ///< common ε for both JL stages and FSS
  double epsilon_qt = 0.0;    ///< multiplicative error charged to QT
  double modeled_cost_bits = 0.0;  ///< X of eq. (24), in bits
  double error_bound = 0.0;        ///< Y achieved (<= y0)
};

/// The error bound Y(ε, ε_QT) of eq. (21b) for the JL+FSS+JL+QT pipeline.
[[nodiscard]] double qt_error_bound(double epsilon, double epsilon_qt);

/// Modeled communication cost X(ε, ε_QT, s) of eqs. (22)–(24), in bits,
/// using the paper's constants C1 (from [23],[37],[38] via Theorem 36 of
/// [11]), C2 = 24, C3 = 2.
[[nodiscard]] double qt_modeled_cost_bits(const QtConfigProblem& p,
                                          double epsilon, double epsilon_qt,
                                          int significant_bits);

/// Enumerates s = 1..52, solves (21b) for the largest feasible common ε
/// by bisection, and returns the cost-minimizing configuration. Returns
/// nullopt if no s admits a feasible ε (y0 too tight for the given E).
[[nodiscard]] std::optional<QtConfig> optimize_qt_config(
    const QtConfigProblem& problem);

/// All feasible configurations (one per s), for the sweep bench — the
/// paper's Figures 3–6 plot metrics against every s.
[[nodiscard]] std::vector<QtConfig> enumerate_qt_configs(
    const QtConfigProblem& problem);

}  // namespace ekm
