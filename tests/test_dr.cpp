// Tests for src/dr: JL projections (norm preservation, data
// obliviousness), PCA projections, and linear-map lift-backs.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "data/generators.hpp"
#include "dr/jl.hpp"
#include "dr/linear_map.hpp"
#include "dr/pca.hpp"
#include "kmeans/cost.hpp"

namespace ekm {
namespace {

TEST(LinearMap, AppliesProjectionToRows) {
  const LinearMap map(Matrix{{1.0, 0.0}, {0.0, 2.0}, {3.0, 0.0}});
  const Matrix pts{{1.0, 1.0, 1.0}};
  const Matrix out = map.apply(pts);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_DOUBLE_EQ(out(0, 0), 4.0);  // 1*1 + 0 + 1*3
  EXPECT_DOUBLE_EQ(out(0, 1), 2.0);
  EXPECT_THROW((void)map.apply(Matrix(1, 4)), precondition_error);
}

TEST(LinearMap, PreservesWeights) {
  const LinearMap map(Matrix{{1.0}, {1.0}});
  const Dataset d(Matrix{{1.0, 2.0}}, {7.0});
  const Dataset out = map.apply(d);
  EXPECT_TRUE(out.is_weighted());
  EXPECT_DOUBLE_EQ(out.weight(0), 7.0);
}

TEST(LinearMap, LiftRecoversPointsInRowSpace) {
  // For x in the row space of Π^T (i.e. x = y Π for some y), lifting the
  // projection with the Moore–Penrose inverse recovers the min-norm
  // preimage whose projection is exact.
  Rng rng = make_rng(21);
  const Matrix pi = Matrix::gaussian(8, 3, rng);
  const LinearMap map(pi);
  const Matrix y = Matrix::gaussian(5, 3, rng);
  const Matrix lifted = map.lift(y);                // 5 x 8
  const Matrix reprojected = map.apply(lifted);     // 5 x 3
  EXPECT_LT(subtract(reprojected, y).frobenius_norm(),
            1e-9 * (1.0 + y.frobenius_norm()));
}

TEST(LinearMap, ComposeMatchesSequentialApply) {
  Rng rng = make_rng(22);
  const LinearMap a(Matrix::gaussian(10, 6, rng));
  const LinearMap b(Matrix::gaussian(6, 3, rng));
  const LinearMap ab = compose(a, b);
  const Matrix pts = Matrix::gaussian(4, 10, rng);
  const Matrix seq = b.apply(a.apply(pts));
  EXPECT_LT(subtract(ab.apply(pts), seq).frobenius_norm(), 1e-10);
  EXPECT_THROW((void)compose(b, a), precondition_error);
}

TEST(Jl, TargetDimFormula) {
  // d' = ceil(8 ln(4nk/δ) / ε²); spot-check one value.
  const std::size_t d = jl_target_dim(0.5, 1000, 2, 0.1);
  const double expect = std::ceil(8.0 * std::log(4.0 * 2000.0 / 0.1) / 0.25);
  EXPECT_EQ(d, static_cast<std::size_t>(expect));
  EXPECT_THROW((void)jl_target_dim(0.0, 10, 2, 0.1), precondition_error);
  EXPECT_THROW((void)jl_target_dim(0.5, 10, 2, 1.5), precondition_error);
}

TEST(Jl, DataObliviousSameSeedSameMatrix) {
  for (JlFamily fam :
       {JlFamily::kGaussian, JlFamily::kRademacher, JlFamily::kSparse}) {
    const LinearMap a = make_jl_projection(64, 16, 99, fam);
    const LinearMap b = make_jl_projection(64, 16, 99, fam);
    EXPECT_EQ(a.projection(), b.projection());
    const LinearMap c = make_jl_projection(64, 16, 100, fam);
    EXPECT_NE(c.projection(), a.projection());
  }
}

struct JlCase {
  JlFamily family;
  std::size_t d;
  std::size_t d_out;
  double tolerance;  // empirical distortion allowance
};

class JlNormPreservation : public ::testing::TestWithParam<JlCase> {};

TEST_P(JlNormPreservation, MedianDistortionSmall) {
  const JlCase c = GetParam();
  const LinearMap map = make_jl_projection(c.d, c.d_out, 7, c.family);
  Rng rng = make_rng(23);
  const Matrix pts = Matrix::gaussian(200, c.d, rng);
  const Matrix proj = map.apply(pts);
  std::vector<double> ratios;
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    const double before = norm2(pts.row(i));
    const double after = norm2(proj.row(i));
    ratios.push_back(after / before);
  }
  // The median distortion should be near 1 with deviation ~1/sqrt(d_out).
  std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                   ratios.end());
  const double median = ratios[ratios.size() / 2];
  EXPECT_NEAR(median, 1.0, c.tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndDims, JlNormPreservation,
    ::testing::Values(JlCase{JlFamily::kGaussian, 256, 64, 0.15},
                      JlCase{JlFamily::kGaussian, 256, 128, 0.10},
                      JlCase{JlFamily::kRademacher, 256, 64, 0.15},
                      JlCase{JlFamily::kRademacher, 512, 128, 0.10},
                      JlCase{JlFamily::kSparse, 256, 64, 0.20},
                      JlCase{JlFamily::kSparse, 512, 128, 0.12}));

TEST(Jl, PreservesKMeansCostApproximately) {
  // Lemma 4.1 in action: the k-means cost of a projected dataset under
  // projected centers tracks the original cost.
  Rng rng = make_rng(24);
  GaussianMixtureSpec spec;
  spec.n = 400;
  spec.dim = 300;
  spec.k = 3;
  const Dataset d = make_gaussian_mixture(spec, rng);
  const LinearMap map = make_jl_projection(300, 80, 5);
  const Dataset proj = map.apply(d);

  const Matrix centers = Matrix::gaussian(3, 300, rng);
  const Matrix proj_centers = map.apply(centers);
  const double orig = kmeans_cost(d, centers);
  const double after = kmeans_cost(proj, proj_centers);
  EXPECT_NEAR(after / orig, 1.0, 0.35);
}

TEST(Pca, ProjectsOntoPrincipalSubspace) {
  // Points on a line in R^5 plus tiny noise: t=1 captures nearly all.
  Rng rng = make_rng(25);
  Matrix pts(100, 5);
  std::normal_distribution<double> noise(0.0, 1e-3);
  for (std::size_t i = 0; i < 100; ++i) {
    const double t = static_cast<double>(i) / 10.0;
    for (std::size_t j = 0; j < 5; ++j) {
      pts(i, j) = t * static_cast<double>(j + 1) + noise(rng);
    }
  }
  const Dataset d(std::move(pts));
  const PcaProjection pca = pca_project(d, 1);
  EXPECT_EQ(pca.coords.dim(), 1u);
  EXPECT_LT(pca.residual_sq, 1e-2);

  // Residual identity: ||A||² = ||coords||² + residual.
  const double total = d.points().frobenius_norm();
  const double kept = pca.coords.points().frobenius_norm();
  EXPECT_NEAR(total * total, kept * kept + pca.residual_sq,
              1e-6 * (1.0 + total * total));
}

TEST(Pca, ProjectWithinIsIdempotent) {
  Rng rng = make_rng(26);
  const Dataset d(Matrix::gaussian(40, 12, rng));
  const PcaProjection pca = pca_project(d, 4);
  const Dataset within = pca_project_within(pca);
  EXPECT_EQ(within.dim(), 12u);
  // Projecting again onto the same basis changes nothing.
  const Matrix again =
      matmul_a_bt(matmul(within.points(), pca.map.projection()),
                  pca.map.projection());
  EXPECT_LT(subtract(again, within.points()).frobenius_norm(), 1e-9);
}

TEST(Pca, BasisOrthonormal) {
  Rng rng = make_rng(27);
  const Dataset d(Matrix::gaussian(30, 10, rng));
  const PcaProjection pca = pca_project(d, 3);
  const Matrix& v = pca.map.projection();
  EXPECT_LT(
      subtract(matmul_at_b(v, v), Matrix::identity(3)).frobenius_norm(),
      1e-10);
}

TEST(Pca, ClampsRankAndRejectsEmpty) {
  Rng rng = make_rng(28);
  const Dataset d(Matrix::gaussian(5, 3, rng));
  const PcaProjection pca = pca_project(d, 100);
  EXPECT_EQ(pca.coords.dim(), 3u);
  EXPECT_THROW((void)pca_project(Dataset(), 2), precondition_error);
}

TEST(Pca, FssIntrinsicDimFormula) {
  // t = k + ceil(4k/ε²) - 1, clamped to min(n, d).
  EXPECT_EQ(fss_intrinsic_dim(2, 1.0, 1000, 1000), 2u + 8u - 1u);
  EXPECT_EQ(fss_intrinsic_dim(2, 0.5, 1000, 1000), 2u + 32u - 1u);
  EXPECT_EQ(fss_intrinsic_dim(2, 0.1, 20, 1000), 20u);  // clamped by n
  EXPECT_THROW((void)fss_intrinsic_dim(2, 0.0, 10, 10), precondition_error);
}

TEST(Pca, WeightsSurviveProjection) {
  const Dataset d(Matrix{{1.0, 0.0}, {0.0, 1.0}}, {2.0, 5.0});
  const PcaProjection pca = pca_project(d, 1);
  EXPECT_TRUE(pca.coords.is_weighted());
  EXPECT_DOUBLE_EQ(pca.coords.weight(1), 5.0);
}

}  // namespace
}  // namespace ekm
