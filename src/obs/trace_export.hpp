// Exporters for the flight recorder (src/obs/recorder.hpp).
//
//   * write_chrome_trace — Chrome/Perfetto trace-event JSON
//     ({"traceEvents": [...]}): complete ("X") spans on one track per
//     actor (tid 0 = server, tid 1+i = site i), instant ("i") events on
//     a dedicated event-queue track, and wall-clock kernel spans on a
//     separate host process. Open with https://ui.perfetto.dev or
//     chrome://tracing. Timestamps are microseconds; virtual-clock
//     seconds are scaled by 1e6, so the trace timeline reads directly
//     in virtual time.
//   * write_metrics_jsonl — one JSON object per line, one line per
//     collection round, from the recorder's deterministic snapshots.
//
// Both writers are pure consumers: they run after the simulation
// finished and touch nothing but the recorder and the output file.
#pragma once

#include <string>

#include "obs/recorder.hpp"

namespace ekm {

/// Writes the Chrome trace JSON. Returns false (with the file possibly
/// absent or partial) if the path cannot be opened or written.
[[nodiscard]] bool write_chrome_trace(const Recorder& recorder,
                                      const std::string& path);

/// Writes the per-round JSONL metric snapshots. Returns false if the
/// path cannot be opened or written.
[[nodiscard]] bool write_metrics_jsonl(const Recorder& recorder,
                                       const std::string& path);

}  // namespace ekm
