// Thin / truncated singular value decomposition and Moore–Penrose
// pseudoinverse.
//
// Roles in the reproduction:
//  * `thin_svd` — the "exact SVD" used by FSS (Theorem 3.2) and by each
//    data source in disPCA (§5.1, step 1). Cost O(nd * min(n,d)),
//    matching the complexity the paper charges those algorithms with.
//  * `truncated_svd` — convenience wrapper keeping the top-t triple.
//  * `randomized_svd` — Halko-style sketch SVD; not used by the paper's
//    algorithms (that would change their complexity) but provided for the
//    ablation bench comparing exact vs sketched PCA inside FSS.
//  * `pseudoinverse` — Π⁺ for lifting k-means centers back through a
//    linear DR map (π⁻¹ in Algorithms 1–4, via the Moore–Penrose inverse
//    as discussed under Table 1 of the paper).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace ekm {

/// A = U diag(sigma) V^T with U: n x r, sigma: r, V: d x r, where
/// r = min(n, d) (thin) or the requested truncation rank.
/// Singular values are non-negative and sorted descending.
struct Svd {
  Matrix u;
  std::vector<double> sigma;
  Matrix v;

  /// Number of retained components.
  [[nodiscard]] std::size_t rank() const { return sigma.size(); }

  /// Reconstructs U diag(sigma) V^T (for tests / lift-backs).
  [[nodiscard]] Matrix reconstruct() const;

  /// Keeps only the top-t components (t <= rank()).
  void truncate(std::size_t t);
};

/// Thin SVD via the Gram-matrix route: eigendecompose A^T A (d <= n) or
/// A A^T (n < d) and recover the other factor. Accurate for the dominant
/// part of the spectrum, which is all k-means PCA needs; components with
/// sigma below ~1e-8 * sigma_max are orthogonalized rather than divided.
[[nodiscard]] Svd thin_svd(const Matrix& a);

/// Top-t SVD. Computes the thin SVD and truncates.
[[nodiscard]] Svd truncated_svd(const Matrix& a, std::size_t t);

/// Randomized range-finder SVD (Halko–Martinsson–Tropp): rank + oversample
/// Gaussian sketch, `power_iters` subspace iterations, small exact SVD.
[[nodiscard]] Svd randomized_svd(const Matrix& a, std::size_t rank, Rng& rng,
                                 std::size_t oversample = 8,
                                 int power_iters = 2);

/// Moore–Penrose pseudoinverse via thin SVD. Components with singular
/// value <= rcond * sigma_max are treated as zero.
[[nodiscard]] Matrix pseudoinverse(const Matrix& a, double rcond = 1e-12);

/// Thin Householder QR; returns Q (n x min(n,d)) with orthonormal columns.
[[nodiscard]] Matrix householder_q(const Matrix& a);

/// disPCA's associative summary merge (§5.1 step 2): appends the rows
/// Y_i = Σ_i^(t1) V_i^(t1)^T of one local SVD summary — row j is
/// sigma_row(0, j) · (column j of v)^T — onto the stacked Y matrix.
/// Both the server (star) and a gateway (tree) fold summaries through
/// this one function, in ascending source order, so the stacked Y — and
/// everything downstream of its global SVD — is identical whichever
/// topology carried the frames (src/cr/merge.hpp has the layer-wide
/// contract). A summary with an empty sigma row contributes nothing.
void append_pca_summary(Matrix& y, const Matrix& sigma_row, const Matrix& v);

}  // namespace ekm
