// k-Median clustering — the companion objective of the paper's coreset
// machinery (ref [4] is "distributed k-means and k-median clustering";
// the JL guarantee of ref [10] covers k-medians as well).
//
// cost_med(P, X) = Σ_p w(p) · min_x ||p - x||  (distances, not squares).
// The alternating solver uses Weiszfeld's algorithm for the geometric
// median inside each cluster, and the same D-sampling seeding with
// first-power distances. Included so summaries built by this library can
// back both objectives, as the coreset literature intends.
#pragma once

#include "data/dataset.hpp"
#include "kmeans/lloyd.hpp"
#include "linalg/matrix.hpp"

namespace ekm {

/// Σ w(p) min_x ||p - x|| over the rows of `centers`.
[[nodiscard]] double kmedian_cost(const Dataset& data, const Matrix& centers);

/// Weighted geometric median by Weiszfeld iteration (with the standard
/// perturbation guard when an iterate lands on a data point).
[[nodiscard]] std::vector<double> geometric_median(const Dataset& data,
                                                   int max_iters = 100,
                                                   double tol = 1e-9);

struct KMedianOptions {
  std::size_t k = 2;
  int max_iters = 60;        ///< outer assignment/re-center rounds
  int weiszfeld_iters = 30;  ///< inner geometric-median iterations
  int restarts = 5;
  std::uint64_t seed = 42;
};

struct KMedianResult {
  Matrix centers;
  double cost = 0.0;
  std::vector<std::size_t> assignment;
  int iterations = 0;
};

/// Alternating k-median: D-sampled seeding, nearest-center assignment,
/// per-cluster Weiszfeld re-centering; best of `restarts`.
[[nodiscard]] KMedianResult kmedian(const Dataset& data,
                                    const KMedianOptions& opts);

}  // namespace ekm
