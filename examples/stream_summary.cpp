// Streaming summarization: a device that collects data over time.
//
// Edge devices rarely hold their whole dataset at once — they accumulate
// readings. This example maintains a merge-and-reduce streaming coreset
// (src/cr/streaming.hpp) while "days" of data arrive, and at the end of
// each day ships the current summary to the server for fresh k-means
// centers. Resident memory on the device stays logarithmic in the stream
// length, and each day's uplink is one small coreset, not the backlog.
#include <cstdio>

#include "cr/streaming.hpp"
#include "data/generators.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/lloyd.hpp"
#include "net/summary_codec.hpp"

int main() {
  using namespace ekm;
  constexpr std::size_t kDays = 5;
  constexpr std::size_t kPerDay = 2000;

  StreamingCoresetOptions opts;
  opts.k = 4;
  opts.leaf_size = 256;
  opts.coreset_size = 160;
  opts.seed = 3;
  StreamingCoreset stream(opts);

  // Drifting source: each day's distribution shifts slightly — the part
  // adaptive summaries must keep up with.
  std::vector<Dataset> days;
  Rng rng = make_rng(99);
  for (std::size_t day = 0; day < kDays; ++day) {
    GaussianMixtureSpec spec;
    spec.n = kPerDay;
    spec.dim = 32;
    spec.k = 4;
    spec.separation = 8.0 + static_cast<double>(day);
    days.push_back(make_gaussian_mixture(spec, rng));
  }

  KMeansOptions solver;
  solver.k = 4;
  solver.restarts = 6;
  solver.seed = 5;

  std::vector<Dataset> seen;  // for evaluation only — the device drops it
  for (std::size_t day = 0; day < kDays; ++day) {
    stream.insert(days[day]);
    seen.push_back(days[day]);

    const Coreset summary = stream.finalize();
    const Message frame = encode_coreset(summary);
    const KMeansResult centers = kmeans(summary.points, solver);

    const Dataset all = concatenate(seen);
    const double full = kmeans(all, solver).cost;
    const double via_summary = kmeans_cost(all, centers.centers);
    std::printf(
        "day %zu: seen=%6zu resident=%4zu pts levels=%zu  uplink=%5.1f KiB  "
        "cost ratio=%.4f\n",
        day + 1, stream.points_seen(), stream.resident_points(),
        stream.live_levels(),
        static_cast<double>(frame.wire_bits) / 8.0 / 1024.0,
        via_summary / full);
  }
  std::printf(
      "\nraw backlog after day %zu would be %.1f KiB; the streaming summary "
      "stays constant-size.\n",
      kDays,
      static_cast<double>(kDays * kPerDay * 32 * 64) / 8.0 / 1024.0);
  return 0;
}
