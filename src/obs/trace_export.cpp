#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>

namespace ekm {
namespace {

// Track layout inside the virtual-time process (pid 1): tid 0 is the
// server, tid 1+i is site i, and the event queue rides one past the
// highest site track. Wall-clock kernel spans live in their own
// process (pid 2) so Perfetto never tries to align wall and virtual
// timestamps on one timeline.
constexpr int kVirtualPid = 1;
constexpr int kHostPid = 2;

std::uint64_t virtual_tid(std::size_t actor) {
  return actor == kRecorderServerActor ? 0 : 1 + actor;
}

/// Escapes a label for a JSON string (labels are protocol-generated —
/// "disSS/site3/uplink" — but escaping keeps the writer total).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void emit_thread_name(std::FILE* f, int pid, std::uint64_t tid,
                      const std::string& name, bool& first) {
  std::fprintf(f,
               "%s  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": %d, "
               "\"tid\": %llu, \"args\": {\"name\": \"%s\"}}",
               first ? "" : ",\n", pid, static_cast<unsigned long long>(tid),
               json_escape(name).c_str());
  first = false;
}

}  // namespace

bool write_chrome_trace(const Recorder& recorder, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  // Discover the fleet size from what was recorded, so the queue track
  // lands just past the last site track.
  std::size_t max_site = 0;
  bool any_site = false;
  for (const RecordedSpan& s : recorder.spans()) {
    if (!s.wall && s.actor != kRecorderServerActor) {
      max_site = std::max(max_site, s.actor);
      any_site = true;
    }
  }
  for (const RecordedEvent& e : recorder.events()) {
    max_site = std::max(max_site, static_cast<std::size_t>(e.site));
    any_site = true;
  }
  const std::uint64_t queue_tid = any_site ? max_site + 2 : 1;

  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  bool first = true;

  // Metadata: name the processes and every track we will emit onto.
  std::fprintf(f,
               "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %d, "
               "\"args\": {\"name\": \"virtual time (simulated fabric)\"}}",
               kVirtualPid);
  first = false;
  std::fprintf(f,
               ",\n  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %d, "
               "\"args\": {\"name\": \"host wall clock (kernels)\"}}",
               kHostPid);
  emit_thread_name(f, kVirtualPid, 0, "server", first);
  if (any_site) {
    for (std::size_t i = 0; i <= max_site; ++i) {
      emit_thread_name(f, kVirtualPid, 1 + i, "site " + std::to_string(i),
                       first);
    }
  }
  emit_thread_name(f, kVirtualPid, queue_tid, "event queue", first);
  emit_thread_name(f, kHostPid, 0, "kernels", first);

  for (const RecordedSpan& s : recorder.spans()) {
    const int pid = s.wall ? kHostPid : kVirtualPid;
    const std::uint64_t tid = s.wall ? 0 : virtual_tid(s.actor);
    const double ts_us = s.start_s * 1e6;
    const double dur_us = (s.finish_s - s.start_s) * 1e6;
    std::fprintf(f,
                 ",\n  {\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"%s\", "
                 "\"pid\": %d, \"tid\": %llu, \"ts\": %.17g, \"dur\": %.17g}",
                 json_escape(s.label).c_str(), json_escape(s.kind).c_str(),
                 pid, static_cast<unsigned long long>(tid), ts_us,
                 dur_us < 0.0 ? 0.0 : dur_us);
  }

  for (const RecordedEvent& e : recorder.events()) {
    std::fprintf(
        f,
        ",\n  {\"ph\": \"i\", \"name\": \"%s\", \"cat\": \"frame\", "
        "\"pid\": %d, \"tid\": %llu, \"ts\": %.17g, \"s\": \"t\", "
        "\"args\": {\"site\": %u, \"uplink\": %s, \"attempt\": %u, "
        "\"bits\": %llu}}",
        e.name, kVirtualPid, static_cast<unsigned long long>(queue_tid),
        e.time_s * 1e6, e.site, e.uplink ? "true" : "false",
        static_cast<unsigned>(e.attempt),
        static_cast<unsigned long long>(e.bits));
  }

  std::fprintf(f, "\n]}\n");
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_metrics_jsonl(const Recorder& recorder, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const RoundSnapshot& snap : recorder.rounds()) {
    std::fprintf(f, "%s\n", snap.json_line.c_str());
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace ekm
