// Seed management for reproducible experiments.
//
// Every randomized component in the library takes an explicit `Rng&` or a
// seed; nothing reads global entropy. The paper's JL projections rely on
// the projection matrix being reproducible from a shared seed so that the
// server and data sources agree on the map without transmitting it
// (§4.1.2 "data-oblivious"); `derive_seed` gives each component an
// independent stream from one master seed.
#pragma once

#include <cstdint>
#include <random>

namespace ekm {

using Rng = std::mt19937_64;

/// SplitMix64 finalizer — decorrelates sequential seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derives the seed of an independent stream identified by `stream` from a
/// master seed. Same (seed, stream) always yields the same generator.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master,
                                                  std::uint64_t stream) noexcept {
  return splitmix64(master ^ splitmix64(stream));
}

/// Convenience: a generator positioned at the derived stream.
[[nodiscard]] inline Rng make_rng(std::uint64_t master, std::uint64_t stream = 0) {
  return Rng(derive_seed(master, stream));
}

}  // namespace ekm
