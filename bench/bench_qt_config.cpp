// Exercises the §6.3 joint DR/CR/QT configuration optimizer on a real
// dataset: estimates the lower bound E on the optimal cost via adaptive
// sampling (§6.3.1), enumerates the feasible quantizer settings, prints
// the modeled communication cost X (eq. (24)) per s, and runs the chosen
// JL+FSS+JL+QT configuration end to end to compare the model's pick with
// the measured sweep.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "kmeans/bicriteria.hpp"
#include "qt/config.hpp"

using namespace ekm;
using namespace ekm::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const Dataset data = mnist_dataset(args, /*n_fast=*/2500);
  ExperimentContext ctx(data, 2, args.seed);

  // §6.3.1: E = best-of-log(1/δ) bicriteria cost / 20.
  Rng rng = make_rng(args.seed, 0xe57ULL);
  const double e_lower = estimate_opt_cost_lower_bound(data, 2, 4, rng);

  double max_norm = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    max_norm = std::max(max_norm, norm2(data.point(i)));
  }

  QtConfigProblem problem;
  problem.y0 = 2.0;
  problem.delta0 = 0.1;
  problem.k = 2;
  problem.n = data.size();
  problem.d = data.dim();
  problem.diameter = 2.0 * std::sqrt(static_cast<double>(data.dim()));
  problem.max_point_norm = max_norm;
  problem.opt_cost_lower_bound = e_lower;

  std::printf("# QT config optimizer: n=%zu d=%zu E=%.4g max||p||=%.3f Y0=%.2f\n",
              problem.n, problem.d, e_lower, max_norm, problem.y0);
  std::printf("%-4s %-10s %-12s %-14s %-10s\n", "s", "epsilon", "eps_QT",
              "modeled-X(bits)", "Y-bound");
  for (const QtConfig& c : enumerate_qt_configs(problem)) {
    std::printf("%-4d %-10.4f %-12.4g %-14.4g %-10.4f\n", c.significant_bits,
                c.epsilon, c.epsilon_qt, c.modeled_cost_bits, c.error_bound);
  }
  const auto best = optimize_qt_config(problem);
  if (!best) {
    std::printf("no feasible configuration for Y0=%.2f\n", problem.y0);
    return 0;
  }
  std::printf("# optimizer pick: s=%d epsilon=%.4f modeled X=%.4g bits\n",
              best->significant_bits, best->epsilon, best->modeled_cost_bits);

  // Measured cross-check: run JL+FSS+JL+QT at the picked s and at the
  // extremes the paper calls suboptimal (§7.3.2 observation (ii)).
  PipelineConfig cfg;
  cfg.epsilon = 0.3;
  cfg.seed = args.seed;
  cfg.coreset_size = 200;
  cfg.jl_dim = 96;
  cfg.pca_dim = 24;
  const int mc = args.monte_carlo > 0 ? args.monte_carlo : 3;
  for (int s : {2, best->significant_bits, 52}) {
    PipelineConfig c = cfg;
    c.significant_bits = s;
    const ExperimentSeries series = ctx.run(PipelineKind::kJlFssJl, c, mc);
    std::printf("measured s=%-3d cost=%.4f comm=%.4e\n", s,
                summarize(series.costs()).mean,
                summarize(series.comm_bits()).mean);
  }
  return 0;
}
