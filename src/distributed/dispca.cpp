#include "distributed/dispca.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/svd.hpp"
#include "net/summary_codec.hpp"
#include "net/topology.hpp"
#include "obs/recorder.hpp"
#include "sched/scheduler.hpp"

namespace ekm {

// disPCA as a task graph (src/sched/): per-site local-SVD compute
// feeding a two-frame uplink, one server collect per site, the global
// merge barrier, and the basis broadcast fan-out. Tasks are added in
// the program order of the PR 4 loop, so the scheduler's execution is
// bitwise identical to it; what the graph buys is the explicit
// dependency structure — the merge barrier commits on *final* inputs,
// which under phase overlap (SimNetwork expiry NAKs) happens as soon
// as every site's frames are delivered or known-expired instead of at
// the round cutoff.
//
// Under a tree fabric (net.topology() != nullptr) the per-site server
// collects are replaced by per-gateway merge barriers: gateway g
// receives its children's Σ/V pairs by the level-0 cutoff, folds them
// through the SAME associative merge the server uses
// (append_pca_summary, linalg/svd.hpp) in ascending child order, and
// forwards one (responder count, Y_g) pair to the server. Because the
// merge is a row concatenation and gateways cover contiguous ascending
// site ranges, the server's stacked Y is bitwise the star Y whenever
// every frame arrives — the exact property the star/tree parity test
// pins.
DisPcaResult dispca(std::span<const Dataset> parts, const DisPcaOptions& opts,
                    Fabric& net, Stopwatch& device_work) {
  EKM_EXPECTS(!parts.empty());
  EKM_EXPECTS(parts.size() == net.num_sources());
  const std::size_t m = parts.size();
  std::size_t d = 0;
  for (const Dataset& p : parts) {
    if (!p.empty()) {
      d = p.dim();
      break;
    }
  }
  EKM_EXPECTS_MSG(d > 0, "all sources empty");
  for (const Dataset& p : parts) {
    EKM_EXPECTS_MSG(p.empty() || p.dim() == d,
                    "sources disagree on dimension");
  }

  // Shared round state, written by the tasks below in dependency order.
  // (Everything a task lambda captures must live here, at function
  // scope — the graph runs long after any inner block has closed.)
  RoundId round = kNoRound;
  double deadline = kNoDeadline;  ///< the round's cutoff, for schedule
                                  ///< arithmetic (level-0 hop deadlines)
  std::vector<Matrix> sigma(m);  // 1 x t1 each
  std::vector<Matrix> v(m);      // d x t1 each
  Matrix y;                      // (Σ_responders t1_i) x d
  std::size_t responders = 0;
  std::vector<Matrix> y_gw;      // per-gateway partial stacks (tree only)
  std::vector<std::size_t> responders_gw;
  DisPcaResult result;

  TaskGraph graph;

  // The round opens before the first uplink so a time-aware fabric can
  // cancel retransmissions that would outlive the deadline.
  const TaskId open = graph.add(
      {TaskKind::kBarrier, kServerActor, "disPCA/open-round",
       [&] {
         round = net.open_round(opts.round_deadline_s);
         deadline = net.round_cutoff(round);
       },
       {}});

  // --- data sources: local SVD, uplink (Σ^(t1), V^(t1)). ---
  std::vector<TaskId> uplinks(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (parts[i].empty()) {
      uplinks[i] = graph.add({TaskKind::kUplink, i, "disPCA/uplink-empty",
                              [&net, i] {
                                net.uplink(i).send(encode_matrix(Matrix(0, 0)));
                                net.uplink(i).send(encode_matrix(Matrix(0, 0)));
                              },
                              {open}});
      continue;
    }
    const TaskId compute = graph.add(
        {TaskKind::kCompute, i, "disPCA/local-svd",
         [&, i] {
           auto scope = device_work.measure();
           const std::size_t t1 =
               std::min({opts.t1, parts[i].size(), parts[i].dim()});
           Svd svd = truncated_svd(parts[i].points(), t1);
           sigma[i] = Matrix(1, svd.rank());
           for (std::size_t j = 0; j < svd.rank(); ++j) {
             sigma[i](0, j) = svd.sigma[j];
           }
           v[i] = svd.v;
         },
         {open}});
    uplinks[i] = graph.add({TaskKind::kUplink, i, "disPCA/uplink-frames",
                            [&, i] {
                              net.uplink(i).send(encode_matrix(sigma[i]));
                              net.uplink(i).send(encode_matrix(v[i]));
                            },
                            {compute}});
  }

  // --- server: stack Y_i = Σ_i^(t1) V_i^(t1)^T over whichever sources
  // delivered by the deadline, global SVD. A dropped source's subspace
  // simply does not shape this round's merge — the availability /
  // accuracy trade the deadline buys. ---
  const TreeTopology* topo = net.topology();
  std::vector<TaskId> collects;
  if (topo == nullptr) {
    collects.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      collects[i] = graph.add(
          {TaskKind::kCollect, kServerActor, "disPCA/collect",
           [&, i] {
             // The Σ/V pair is one summary: both frames are consumed
             // either way, and a half-arrived pair is one site miss —
             // never half-aggregated (receive_frames_by).
             auto frames = receive_frames_by(net.uplink(i), 2, round);
             if (!frames.has_value()) return;
             responders += 1;
             const Matrix sigma_row = decode_matrix((*frames)[0]);
             const Matrix v_t1 = decode_matrix((*frames)[1]);
             append_pca_summary(y, sigma_row, v_t1);
           },
           {uplinks[i]}});
    }
  } else {
    // --- gateways: in-flight reduce. Gateway g (inner device S + g,
    // its own virtual-time track) collects its children by the level-0
    // cutoff, folds them in ascending child order, and forwards one
    // merged frame — cutting server fan-in from O(sites) to
    // O(gateways). The gateway's own clock is charged the wait for its
    // slowest resolved child (wait_until), so the forward hop departs
    // after its inputs exist. ---
    const std::size_t gateways = topo->gateways();
    y_gw.assign(gateways, Matrix{});
    responders_gw.assign(gateways, 0);
    collects.resize(gateways);
    for (std::size_t g = 0; g < gateways; ++g) {
      const std::size_t actor = topo->sites + g;
      std::vector<TaskId> child_collects;
      for (std::size_t c = topo->child_begin(g); c < topo->child_end(g); ++c) {
        child_collects.push_back(graph.add(
            {TaskKind::kCollect, actor, "disPCA/gw-collect",
             [&, g, c] {
               // The level-0 hop deadline caps the round's cutoff: the
               // child's frame is still round-scoped (the aliasing
               // guard), just due earlier at the gateway.
               const double cutoff =
                   topo->level0_deadline(deadline, opts.round_deadline_s);
               auto frames = receive_frames_by(net.uplink(c), 2, round, cutoff);
               if (!frames.has_value()) return;
               responders_gw[g] += 1;
               const Matrix sigma_row = decode_matrix((*frames)[0]);
               const Matrix v_t1 = decode_matrix((*frames)[1]);
               append_pca_summary(y_gw[g], sigma_row, v_t1);
             },
             {uplinks[c]}}));
      }
      const TaskId forward = graph.add(
          {TaskKind::kUplink, actor, "disPCA/gw-forward",
           [&, g, actor] {
             double ready = 0.0;
             for (std::size_t c = topo->child_begin(g);
                  c < topo->child_end(g); ++c) {
               ready = std::max(ready, net.uplink_consumed_at_s(c));
             }
             net.wait_until(actor, ready);
             if (Recorder* rec = net.recorder()) {
               rec->note_gateway_fanin(g, responders_gw[g]);
             }
             net.uplink(actor).send(encode_scalar(
                 static_cast<double>(responders_gw[g])));
             net.uplink(actor).send(encode_matrix(y_gw[g]));
           },
           std::move(child_collects)});
      collects[g] = graph.add(
          {TaskKind::kCollect, kServerActor, "disPCA/collect-gateway",
           [&, g] {
             auto frames =
                 receive_frames_by(net.uplink(topo->sites + g), 2, round);
             if (!frames.has_value()) return;
             responders += static_cast<std::size_t>(
                 std::llround(decode_scalar((*frames)[0])));
             const Matrix y_g = decode_matrix((*frames)[1]);
             if (y_g.size() == 0) return;
             y.append_rows(y_g);
           },
           {forward}});
    }
  }

  const TaskId merge = graph.add(
      {TaskKind::kBarrier, kServerActor, "disPCA/merge-basis",
       [&] {
         enforce_availability_floor(responders, opts.min_responders,
                                    "disPCA round", net.rounds_opened());
         EKM_ENSURES_MSG(y.rows() > 0,
                         "all sources empty or dropped at the deadline");
         const std::size_t t2 = std::min({opts.t2, y.rows(), d});
         Svd global = truncated_svd(y, t2);
         result.v = global.v;  // d x t2
       },
       collects});

  // --- server -> sources: broadcast the merged basis (downlink, not
  // counted by the paper's metric but measured by the ledger). ---
  for (std::size_t i = 0; i < m; ++i) {
    (void)graph.add({TaskKind::kBroadcast, kServerActor, "disPCA/broadcast",
                     [&, i] { net.downlink(i).send(encode_matrix(result.v)); },
                     {merge}});
  }

  PhaseScheduler(net).run(graph);
  return result;
}

}  // namespace ekm
