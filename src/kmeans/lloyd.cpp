#include "kmeans/lloyd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

namespace ekm {
namespace {

// Draws an index with probability proportional to probs[i] (need not be
// normalized; total > 0 required).
std::size_t sample_proportional(std::span<const double> probs, double total,
                                Rng& rng) {
  std::uniform_real_distribution<double> unif(0.0, total);
  double r = unif(rng);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    r -= probs[i];
    if (r <= 0.0) return i;
  }
  return probs.size() - 1;  // numeric slack lands on the last index
}

}  // namespace

Matrix kmeanspp_seed(const Dataset& data, std::size_t k, Rng& rng) {
  EKM_EXPECTS(k >= 1 && !data.empty());
  const std::size_t n = data.size();
  const std::size_t d = data.dim();
  Matrix centers(std::min(k, n), d);

  // First center ∝ weight.
  std::vector<double> probs(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    probs[i] = data.weight(i);
    total += probs[i];
  }
  EKM_EXPECTS_MSG(total > 0.0, "all weights are zero");
  std::size_t first = sample_proportional(probs, total, rng);
  std::copy(data.point(first).begin(), data.point(first).end(),
            centers.row(0).begin());

  // Maintain squared distance to the nearest chosen center.
  std::vector<double> d2(n);
  for (std::size_t i = 0; i < n; ++i) {
    d2[i] = squared_distance(data.point(i), centers.row(0));
  }

  for (std::size_t c = 1; c < centers.rows(); ++c) {
    total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      probs[i] = data.weight(i) * d2[i];
      total += probs[i];
    }
    std::size_t next;
    if (total <= 0.0) {
      // All mass already covered (duplicate points): any point works.
      std::uniform_int_distribution<std::size_t> unif(0, n - 1);
      next = unif(rng);
    } else {
      next = sample_proportional(probs, total, rng);
    }
    std::copy(data.point(next).begin(), data.point(next).end(),
              centers.row(c).begin());
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], squared_distance(data.point(i), centers.row(c)));
    }
  }
  return centers;
}

KMeansResult lloyd(const Dataset& data, Matrix initial_centers,
                   const KMeansOptions& opts) {
  EKM_EXPECTS(!data.empty());
  EKM_EXPECTS(initial_centers.cols() == data.dim());
  const std::size_t n = data.size();
  const std::size_t k = initial_centers.rows();
  const std::size_t d = data.dim();

  KMeansResult res;
  res.centers = std::move(initial_centers);
  res.assignment.assign(n, 0);
  double prev_cost = std::numeric_limits<double>::infinity();

  std::vector<double> cluster_weight(k, 0.0);
  Matrix sums(k, d);

  for (int it = 0; it < opts.max_iters; ++it) {
    // Assignment step.
    double cost = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const NearestCenter nc = nearest_center(data.point(i), res.centers);
      res.assignment[i] = nc.index;
      cost += data.weight(i) * nc.sq_dist;
    }
    res.cost = cost;
    res.iterations = it + 1;

    if (std::isfinite(prev_cost) &&
        prev_cost - cost <= opts.rel_tol * std::max(prev_cost, 1e-300)) {
      break;
    }
    prev_cost = cost;

    // Update step.
    std::fill(cluster_weight.begin(), cluster_weight.end(), 0.0);
    std::fill(sums.flat().begin(), sums.flat().end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double w = data.weight(i);
      if (w == 0.0) continue;
      const std::size_t c = res.assignment[i];
      cluster_weight[c] += w;
      auto p = data.point(i);
      auto s = sums.row(c);
      for (std::size_t j = 0; j < d; ++j) s[j] += w * p[j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (cluster_weight[c] > 0.0) {
        auto s = sums.row(c);
        auto ctr = res.centers.row(c);
        for (std::size_t j = 0; j < d; ++j) ctr[j] = s[j] / cluster_weight[c];
      } else {
        // Empty cluster: reseat the center on the point farthest from its
        // current center (standard repair, keeps k centers meaningful).
        double worst = -1.0;
        std::size_t worst_i = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d2 =
              squared_distance(data.point(i), res.centers.row(res.assignment[i]));
          if (data.weight(i) > 0.0 && d2 > worst) {
            worst = d2;
            worst_i = i;
          }
        }
        std::copy(data.point(worst_i).begin(), data.point(worst_i).end(),
                  res.centers.row(c).begin());
      }
    }
  }

  // Refresh cost/assignment for the final centers (the loop may have
  // updated centers after the last assignment).
  double cost = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const NearestCenter nc = nearest_center(data.point(i), res.centers);
    res.assignment[i] = nc.index;
    cost += data.weight(i) * nc.sq_dist;
  }
  res.cost = cost;
  return res;
}

KMeansResult kmeans(const Dataset& data, const KMeansOptions& opts) {
  EKM_EXPECTS(opts.k >= 1);
  EKM_EXPECTS(!data.empty());

  KMeansResult best;
  best.cost = std::numeric_limits<double>::infinity();
  const int restarts = std::max(1, opts.restarts);
  for (int r = 0; r < restarts; ++r) {
    Rng rng = make_rng(opts.seed, static_cast<std::uint64_t>(r));
    Matrix seeds = kmeanspp_seed(data, opts.k, rng);
    KMeansResult res = lloyd(data, std::move(seeds), opts);
    if (res.cost < best.cost) best = std::move(res);
  }
  return best;
}

KMeansResult kmeans_brute_force(const Dataset& data, std::size_t k) {
  EKM_EXPECTS(k >= 1 && !data.empty());
  const std::size_t n = data.size();
  const std::size_t d = data.dim();
  double combos = std::pow(static_cast<double>(k), static_cast<double>(n));
  EKM_EXPECTS_MSG(combos <= double(1 << 22), "instance too large for brute force");

  std::vector<std::size_t> assign(n, 0);
  std::vector<std::size_t> best_assign;
  double best_cost = std::numeric_limits<double>::infinity();

  // Enumerate all k^n assignments via an odometer.
  while (true) {
    // Centroids of the current assignment.
    Matrix centers(k, d);
    std::vector<double> w(k, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      w[assign[i]] += data.weight(i);
      auto p = data.point(i);
      auto c = centers.row(assign[i]);
      for (std::size_t j = 0; j < d; ++j) c[j] += data.weight(i) * p[j];
    }
    bool feasible = true;
    for (std::size_t c = 0; c < k; ++c) {
      if (w[c] > 0.0) {
        auto row = centers.row(c);
        for (std::size_t j = 0; j < d; ++j) row[j] /= w[c];
      }
    }
    if (feasible) {
      double cost = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        cost +=
            data.weight(i) * squared_distance(data.point(i), centers.row(assign[i]));
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_assign = assign;
      }
    }
    // Advance odometer.
    std::size_t pos = 0;
    while (pos < n && ++assign[pos] == k) {
      assign[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }

  // Rebuild the optimal centers from the best assignment.
  KMeansResult res;
  res.assignment = best_assign;
  res.cost = best_cost;
  res.centers = Matrix(k, d);
  std::vector<double> w(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    w[best_assign[i]] += data.weight(i);
    auto p = data.point(i);
    auto c = res.centers.row(best_assign[i]);
    for (std::size_t j = 0; j < d; ++j) c[j] += data.weight(i) * p[j];
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (w[c] > 0.0) {
      auto row = res.centers.row(c);
      for (std::size_t j = 0; j < d; ++j) row[j] /= w[c];
    }
  }
  return res;
}

}  // namespace ekm
