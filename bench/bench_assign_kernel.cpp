// Micro-bench for the batched assignment kernel: naive per-point scan
// (the seed's nearest_center loop) vs. the GEMM-style batched kernel at
// one thread vs. the kernel with the full pool. Emits points/sec so the
// perf trajectory is trackable across PRs (tools/run_bench.sh ->
// BENCH_assign.json).
//
// Usage: bench_assign_kernel [--n N] [--d D] [--k K] [--reps R]
//                            [--threads T] [--json PATH]
//                            [--meta key=value ...]
// Defaults match the acceptance shape: n=50000, d=64, k=50.
// Timing goes through bench_util's time_best_of — the recorder-backed
// path shared with the sim sweeps — not a bench-local Timer loop.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "data/generators.hpp"
#include "kmeans/assign.hpp"
#include "kmeans/cost.hpp"

using namespace ekm;
using ekm::bench::time_best_of;

int main(int argc, char** argv) {
  std::size_t n = 50000, d = 64, k = 50;
  int reps = 5;
  std::size_t threads = 0;  // 0 = pool default (EKM_THREADS / hardware)
  std::string json_path;
  bench::MetaPairs meta;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](std::size_t& out) {
      if (i + 1 < argc) out = static_cast<std::size_t>(std::atoll(argv[++i]));
    };
    if (std::strcmp(argv[i], "--n") == 0) next(n);
    else if (std::strcmp(argv[i], "--d") == 0) next(d);
    else if (std::strcmp(argv[i], "--k") == 0) next(k);
    else if (std::strcmp(argv[i], "--threads") == 0) next(threads);
    else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strcmp(argv[i], "--meta") == 0 && i + 1 < argc) {
      if (!bench::parse_meta_pair(argv[++i], meta)) return 2;
    }
  }

  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = d;
  spec.k = std::max<std::size_t>(4, k / 2);
  Rng rng = make_rng(2024, 0xbe7cULL);
  const Dataset data = make_gaussian_mixture(spec, rng);
  const Matrix centers = Matrix::gaussian(k, d, rng, 2.0);

  std::vector<std::size_t> idx(n);
  std::vector<double> sq(n);

  // Naive: the seed's per-point scan over checked rows.
  const double t_naive = time_best_of("assign_naive", reps, [&] {
    for (std::size_t i = 0; i < n; ++i) {
      const NearestCenter nc = nearest_center(data.point(i), centers);
      idx[i] = nc.index;
      sq[i] = nc.sq_dist;
    }
  });

  set_parallel_threads(1);
  const double t_batched_1t = time_best_of("assign_batched_1t", reps, [&] {
    assign_batch_into(data.points(), centers, idx, sq);
  });

  set_parallel_threads(threads);
  const std::size_t pool_threads = parallel_threads();
  const double t_batched_mt = time_best_of("assign_batched_mt", reps, [&] {
    assign_batch_into(data.points(), centers, idx, sq);
  });
  set_parallel_threads(0);

  const double pps_naive = static_cast<double>(n) / t_naive;
  const double pps_1t = static_cast<double>(n) / t_batched_1t;
  const double pps_mt = static_cast<double>(n) / t_batched_mt;

  std::printf("assign kernel  n=%zu d=%zu k=%zu reps=%d\n", n, d, k, reps);
  std::printf("  naive           %10.3e points/s\n", pps_naive);
  std::printf("  batched (1t)    %10.3e points/s  (%.2fx naive)\n", pps_1t,
              pps_1t / pps_naive);
  std::printf("  batched (%zut)    %10.3e points/s  (%.2fx naive, %.2fx 1t)\n",
              pool_threads, pps_mt, pps_mt / pps_naive, pps_mt / pps_1t);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"assign_kernel\",\n");
    bench::write_provenance(f, meta, "  ");
    std::fprintf(f,
                 "  \"n\": %zu, \"d\": %zu, \"k\": %zu, \"reps\": %d,\n"
                 "  \"threads\": %zu,\n"
                 "  \"naive_points_per_sec\": %.6e,\n"
                 "  \"batched_1t_points_per_sec\": %.6e,\n"
                 "  \"batched_mt_points_per_sec\": %.6e,\n"
                 "  \"speedup_1t_vs_naive\": %.3f,\n"
                 "  \"speedup_mt_vs_naive\": %.3f\n"
                 "}\n",
                 n, d, k, reps, pool_threads, pps_naive, pps_1t, pps_mt,
                 pps_1t / pps_naive, pps_mt / pps_naive);
    std::fclose(f);
  }
  return 0;
}
