#include "linalg/frequent_directions.hpp"

#include <algorithm>
#include <cmath>

namespace ekm {

FrequentDirections::FrequentDirections(std::size_t sketch_size, std::size_t dim)
    : buffer_(2 * sketch_size, dim), l_(sketch_size) {
  EKM_EXPECTS(sketch_size >= 1 && dim >= 1);
}

void FrequentDirections::insert(std::span<const double> row) {
  EKM_EXPECTS_MSG(row.size() == buffer_.cols(), "FD row dimension mismatch");
  if (fill_ == buffer_.rows()) shrink();
  std::copy(row.begin(), row.end(), buffer_.row(fill_).begin());
  ++fill_;
  ++rows_seen_;
}

void FrequentDirections::shrink() {
  // SVD of the occupied buffer; subtract sigma_l² from every squared
  // singular value (Liberty's shrinkage), keep the top l directions.
  const Matrix occupied = buffer_.row_range(0, fill_);
  Svd svd = thin_svd(occupied);
  const std::size_t keep = std::min(l_, svd.rank());
  const double floor_sq =
      (svd.rank() > keep - 1) ? svd.sigma[keep - 1] * svd.sigma[keep - 1] : 0.0;

  std::fill(buffer_.flat().begin(), buffer_.flat().end(), 0.0);
  fill_ = 0;
  for (std::size_t j = 0; j < keep; ++j) {
    const double shrunk =
        std::sqrt(std::max(0.0, svd.sigma[j] * svd.sigma[j] - floor_sq));
    if (shrunk <= 0.0) continue;
    auto dst = buffer_.row(fill_);
    for (std::size_t c = 0; c < buffer_.cols(); ++c) {
      dst[c] = shrunk * svd.v(c, j);
    }
    ++fill_;
  }
}

Matrix FrequentDirections::sketch() {
  if (fill_ > l_) shrink();
  return buffer_.row_range(0, std::max<std::size_t>(fill_, 1));
}

void FrequentDirections::merge(FrequentDirections& other) {
  EKM_EXPECTS_MSG(other.dim() == dim(), "FD merge dimension mismatch");
  const Matrix b = other.sketch();
  // rows_seen_ must count the other stream's rows, not its sketch rows.
  const std::size_t seen = rows_seen_ + other.rows_seen();
  for (std::size_t r = 0; r < b.rows(); ++r) insert(b.row(r));
  rows_seen_ = seen;
}

Matrix FrequentDirections::principal_basis(std::size_t t) {
  const Matrix b = sketch();
  Svd svd = thin_svd(b);
  svd.truncate(std::min(t, svd.rank()));
  return svd.v;  // d x t
}

}  // namespace ekm
