#include "kmeans/minibatch.hpp"

#include <random>

namespace ekm {

KMeansResult kmeans_minibatch(const Dataset& data,
                              const MiniBatchOptions& opts) {
  EKM_EXPECTS(!data.empty());
  EKM_EXPECTS(opts.k >= 1 && opts.batch_size >= 1 && opts.iterations >= 1);
  const std::size_t n = data.size();
  const std::size_t d = data.dim();

  Rng rng = make_rng(opts.seed, 0xbacbULL);  // stream tag "batch"
  Matrix centers = kmeanspp_seed(data, opts.k, rng);
  const std::size_t k = centers.rows();
  std::vector<double> center_mass(k, 0.0);

  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  std::vector<std::size_t> batch(opts.batch_size);
  std::vector<std::size_t> batch_assign(opts.batch_size);

  for (int it = 0; it < opts.iterations; ++it) {
    // Sample and assign with the centers frozen (per Sculley).
    for (std::size_t b = 0; b < opts.batch_size; ++b) {
      batch[b] = pick(rng);
      batch_assign[b] = nearest_center(data.point(batch[b]), centers).index;
    }
    // Per-center gradient step with counts-based learning rate.
    for (std::size_t b = 0; b < opts.batch_size; ++b) {
      const std::size_t c = batch_assign[b];
      const double w = data.weight(batch[b]);
      if (w == 0.0) continue;
      center_mass[c] += w;
      const double eta = w / center_mass[c];
      auto ctr = centers.row(c);
      auto p = data.point(batch[b]);
      for (std::size_t j = 0; j < d; ++j) {
        ctr[j] += eta * (p[j] - ctr[j]);
      }
    }
  }

  KMeansResult res;
  res.centers = std::move(centers);
  res.iterations = opts.iterations;
  res.assignment.resize(n);
  double cost = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const NearestCenter nc = nearest_center(data.point(i), res.centers);
    res.assignment[i] = nc.index;
    cost += data.weight(i) * nc.sq_dist;
  }
  res.cost = cost;
  return res;
}

}  // namespace ekm
