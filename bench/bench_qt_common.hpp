// Shared sweep for the quantization figures (Figures 3–6): run each
// (algorithm + QT) pipeline across a grid of significand-bit settings s
// and print three series per algorithm — normalized k-means cost,
// normalized communication cost, running time — exactly the three panels
// of each figure. s = 52 is the right-most "no quantization" point the
// paper highlights.
#pragma once

#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"

namespace ekm::bench {

inline std::vector<int> qt_sweep_grid(bool full) {
  if (full) {
    std::vector<int> s;
    for (int i = 1; i <= 52; ++i) s.push_back(i);  // paper: s = 1..53
    return s;
  }
  return {1, 2, 3, 4, 6, 8, 10, 14, 20, 28, 38, 52};
}

struct QtSweepPoint {
  int s = 52;
  double cost = 0.0;
  double comm = 0.0;
  double time = 0.0;
};

inline void run_qt_sweep(const char* figure, const char* label,
                         const ExperimentContext& ctx,
                         const std::vector<PipelineKind>& kinds,
                         PipelineConfig cfg, const std::vector<int>& grid,
                         int mc) {
  std::printf("== %s %s: n=%zu d=%zu k=%zu, %d MC runs per point ==\n", figure,
              label, ctx.data().size(), ctx.data().dim(), ctx.k(), mc);
  for (PipelineKind kind : kinds) {
    std::vector<QtSweepPoint> points;
    for (int s : grid) {
      PipelineConfig c = cfg;
      c.significant_bits = s;
      const ExperimentSeries series = ctx.run(kind, c, mc);
      QtSweepPoint p;
      p.s = s;
      p.cost = summarize(series.costs()).mean;
      p.comm = summarize(series.comm_bits()).mean;
      p.time = summarize(series.device_times()).mean;
      points.push_back(p);
    }
    const std::string name = std::string(pipeline_name(kind)) + "+QT";
    std::printf("# %s(a) %s normalized k-means cost vs s — %s\n", figure,
                label, name.c_str());
    for (const QtSweepPoint& p : points) std::printf("%d\t%.4f\n", p.s, p.cost);
    std::printf("# %s(b) %s normalized communication cost vs s — %s\n", figure,
                label, name.c_str());
    for (const QtSweepPoint& p : points) std::printf("%d\t%.4e\n", p.s, p.comm);
    std::printf("# %s(c) %s running time (s) vs s — %s\n", figure, label,
                name.c_str());
    for (const QtSweepPoint& p : points) std::printf("%d\t%.4f\n", p.s, p.time);
  }
}

}  // namespace ekm::bench
