#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace ekm {
namespace {

thread_local bool t_in_pool_worker = false;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("EKM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// Work-pulling pool: a job is a chunk counter; workers (and the caller)
// race on an atomic cursor until the chunks are exhausted. The caller
// returns only after every chunk body has returned, so job state on the
// caller's stack stays valid for the whole run.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  std::size_t threads() const {
    // Atomic: resize() mutates threads_ concurrently with readers.
    return thread_count_.load(std::memory_order_acquire);
  }

  void resize(std::size_t n) {
    std::lock_guard<std::mutex> job_lock(run_mu_);
    if (n == 0) n = default_thread_count();
    if (n == threads()) return;
    shutdown();
    spawn(n);
  }

  void run(std::size_t chunks,
           const std::function<void(std::size_t)>& chunk_body) {
    // One job at a time: a second user thread calling parallel_for
    // serializes here instead of clobbering the live job's cursor (the
    // library's entry points stay safe to call from multiple threads).
    std::lock_guard<std::mutex> job_lock(run_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      body_ = &chunk_body;
      total_ = chunks;
      next_.store(0, std::memory_order_relaxed);
      completed_.store(0, std::memory_order_relaxed);
      error_ = nullptr;
      ++epoch_;
    }
    work_cv_.notify_all();
    // Chunk bodies run on this thread too; flag it so a nested
    // parallel_for degrades to serial instead of deadlocking on run_mu_.
    t_in_pool_worker = true;
    drain(chunk_body, chunks);  // never throws; exceptions land in error_
    t_in_pool_worker = false;
    // Wait until every chunk ran AND every worker left drain(): a worker
    // still inside drain() holds a reference to chunk_body, so returning
    // earlier (or starting the next job) would dangle it.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return completed_.load(std::memory_order_acquire) == total_ &&
             active_ == 0;
    });
    body_ = nullptr;
    if (error_ != nullptr) {
      // Surface the first chunk failure on the submitting thread (a
      // throw on a worker would otherwise std::terminate; contract
      // macros in this library throw by design).
      const std::exception_ptr e = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

  ~ThreadPool() { shutdown(); }

 private:
  ThreadPool() { spawn(default_thread_count()); }

  void spawn(std::size_t n) {
    stop_ = false;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
    thread_count_.store(threads_.size() + 1, std::memory_order_release);
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++epoch_;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    thread_count_.store(1, std::memory_order_release);
  }

  void drain(const std::function<void(std::size_t)>& body,
             std::size_t total) {
    for (;;) {
      const std::size_t c = next_.fetch_add(1, std::memory_order_relaxed);
      if (c >= total) break;
      try {
        body(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (error_ == nullptr) error_ = std::current_exception();
      }
      // A failed chunk still counts as completed so waiters make
      // progress; run() rethrows error_ afterwards.
      if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
  }

  void worker_loop() {
    t_in_pool_worker = true;
    std::uint64_t seen_epoch = 0;
    for (;;) {
      const std::function<void(std::size_t)>* body = nullptr;
      std::size_t total = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
        if (stop_) return;
        seen_epoch = epoch_;
        body = body_;
        total = total_;
        if (body != nullptr) ++active_;
      }
      if (body != nullptr) {
        drain(*body, total);
        {
          std::lock_guard<std::mutex> lock(mu_);
          --active_;
        }
        done_cv_.notify_all();
      }
    }
  }

  std::mutex run_mu_;  // serializes whole jobs (and resizes)
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t total_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> thread_count_{1};
  std::exception_ptr error_;  // first chunk failure of the current job
  std::size_t active_ = 0;    // workers currently inside drain()
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace

std::size_t parallel_threads() { return ThreadPool::instance().threads(); }

void set_parallel_threads(std::size_t n) { ThreadPool::instance().resize(n); }

std::size_t parallel_chunk_count(std::size_t n, std::size_t grain) {
  if (n == 0) return 0;
  if (grain < 1) grain = 1;
  return (n + grain - 1) / grain;
}

void parallel_for_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (grain < 1) grain = 1;
  const std::size_t chunks = parallel_chunk_count(n, grain);
  if (chunks == 0) return;
  auto run_chunk = [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    body(c, begin, end);
  };
  if (chunks == 1 || t_in_pool_worker || parallel_threads() == 1) {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
    return;
  }
  ThreadPool::instance().run(chunks, run_chunk);
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for_chunks(
      n, grain,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        body(begin, end);
      });
}

}  // namespace ekm
