#!/usr/bin/env bash
# Builds and runs the tracked benches, leaving BENCH_assign.json and
# BENCH_sim.json in the repo root so successive PRs can track the perf
# and scenario trajectories.
#
# Usage: tools/run_bench.sh [build_dir] [extra bench_assign_kernel args...]
#   EKM_THREADS caps the pool for the multi-threaded series.
#   BENCH_sim.json is bitwise deterministic for a fixed seed at any
#   EKM_THREADS (it lives on the simulator's virtual clock).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" --target bench_assign_kernel bench_sim_scenarios -j >/dev/null

"$build_dir/bench_assign_kernel" --json "$repo_root/BENCH_assign.json" "$@"
echo "wrote $repo_root/BENCH_assign.json"

"$build_dir/bench_sim_scenarios" --json "$repo_root/BENCH_sim.json"
echo "wrote $repo_root/BENCH_sim.json"
