#include "kmeans/cost.hpp"

#include "kmeans/assign.hpp"

namespace ekm {

NearestCenter nearest_center(std::span<const double> p, const Matrix& centers) {
  EKM_EXPECTS_MSG(centers.rows() > 0, "no centers");
  NearestCenter best{0, squared_distance(p, centers.row(0))};
  for (std::size_t c = 1; c < centers.rows(); ++c) {
    const double d2 = squared_distance(p, centers.row(c));
    if (d2 < best.sq_dist) best = {c, d2};
  }
  return best;
}

double kmeans_cost(const Dataset& data, const Matrix& centers) {
  return assign_and_cost(data, centers, {});
}

std::vector<std::size_t> assign_to_centers(const Dataset& data,
                                           const Matrix& centers) {
  std::vector<std::size_t> assign(data.size());
  assign_batch_into(data.points(), centers, assign, {});
  return assign;
}

std::vector<double> weighted_mean(const Dataset& data) {
  EKM_EXPECTS(!data.empty());
  std::vector<double> mean(data.dim(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double w = data.weight(i);
    total += w;
    auto p = data.point(i);
    for (std::size_t j = 0; j < data.dim(); ++j) mean[j] += w * p[j];
  }
  EKM_EXPECTS_MSG(total > 0.0, "total weight must be positive");
  for (double& v : mean) v /= total;
  return mean;
}

double one_means_cost(const Dataset& data) {
  const std::vector<double> mu = weighted_mean(data);
  double cost = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    cost += data.weight(i) * squared_distance(data.point(i), mu);
  }
  return cost;
}

}  // namespace ekm
