// Coreset persistence.
//
// An edge device that builds summaries over time (see cr/streaming.hpp)
// needs to park them on flash between reporting windows, and a server
// wants to archive received summaries for later re-use — the paper's
// intro point that one transmitted summary can back many later models
// ([5][6]). The file format is the wire format of net/summary_codec with
// a magic/version header, so a stored file is byte-compatible with a
// received frame.
#pragma once

#include <filesystem>

#include "cr/coreset.hpp"

namespace ekm {

/// Writes a coreset to `path` (overwrites). Throws std::runtime_error on
/// I/O failure.
void save_coreset(const Coreset& coreset, const std::filesystem::path& path);

/// Reads a coreset back. Throws std::runtime_error on I/O failure and
/// precondition_error on a corrupt or wrong-version file.
[[nodiscard]] Coreset load_coreset(const std::filesystem::path& path);

}  // namespace ekm
