// Dense row-major matrix of doubles.
//
// This is the numeric workhorse of the library: datasets are matrices
// (one row per point, §3.1 of the paper uses the same convention A_P),
// projections are matrix products, and PCA/SVD/pinv are built on top.
// Deliberately minimal — no expression templates; the operations the
// algorithms need are provided as named functions with obvious cost.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace ekm {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Takes ownership of a flat row-major buffer.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    EKM_EXPECTS(data_.size() == rows_ * cols_);
  }

  /// Row-of-rows literal, for tests: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Entries drawn i.i.d. N(0, stddev^2).
  [[nodiscard]] static Matrix gaussian(std::size_t rows, std::size_t cols,
                                       Rng& rng, double stddev = 1.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) {
    EKM_EXPECTS(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    EKM_EXPECTS(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  [[nodiscard]] std::span<double> row(std::size_t i) {
    EKM_EXPECTS(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    EKM_EXPECTS(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }

  [[nodiscard]] std::span<double> flat() { return data_; }
  [[nodiscard]] std::span<const double> flat() const { return data_; }

  /// Unchecked raw access for release-mode inner loops (the assignment
  /// kernel and friends). The checked operator()/row() stay the public
  /// default; callers of these owe their own bounds reasoning.
  [[nodiscard]] double* row_ptr(std::size_t i) noexcept {
    return data_.data() + i * cols_;
  }
  [[nodiscard]] const double* row_ptr(std::size_t i) const noexcept {
    return data_.data() + i * cols_;
  }
  [[nodiscard]] double& at_unchecked(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  [[nodiscard]] double at_unchecked(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  [[nodiscard]] Matrix transposed() const;

  /// Copy of the first `c` columns (c <= cols).
  [[nodiscard]] Matrix first_cols(std::size_t c) const;

  /// Copy of rows [r0, r1).
  [[nodiscard]] Matrix row_range(std::size_t r0, std::size_t r1) const;

  /// Appends all rows of `other` (same column count).
  void append_rows(const Matrix& other);

  void scale(double s);

  [[nodiscard]] double frobenius_norm() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. O(rows_A * cols_A * cols_B), cache-friendly ikj order.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B without materializing A^T.
[[nodiscard]] Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T without materializing B^T.
[[nodiscard]] Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// y = A * x.
[[nodiscard]] std::vector<double> matvec(const Matrix& a,
                                         std::span<const double> x);

/// A + B and A - B.
[[nodiscard]] Matrix add(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix subtract(const Matrix& a, const Matrix& b);

/// Euclidean helpers on raw spans (hot path of k-means).
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);
[[nodiscard]] double squared_distance(std::span<const double> a,
                                      std::span<const double> b);
[[nodiscard]] double norm2(std::span<const double> a);

}  // namespace ekm
