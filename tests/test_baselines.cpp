// Tests for the distributed baselines (federated Lloyd, MapReduce merge,
// gossip P2P) — correctness, protocol accounting, and the qualitative
// contrasts the paper asserts about them.
#include <gtest/gtest.h>

#include "data/generators.hpp"
#include "distributed/baselines.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/kmeans1d.hpp"
#include "kmeans/lloyd.hpp"

namespace ekm {
namespace {

std::vector<Dataset> make_parts(std::size_t n, std::size_t dim, std::size_t k,
                                std::size_t m, std::uint64_t seed,
                                double separation = 12.0) {
  Rng rng = make_rng(seed);
  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.k = k;
  spec.separation = separation;
  const Dataset d = make_gaussian_mixture(spec, rng);
  return partition_random(d, m, rng);
}

double solved_cost(const std::vector<Dataset>& parts, std::size_t k) {
  const Dataset full = concatenate(parts);
  KMeansOptions opts;
  opts.k = k;
  opts.restarts = 8;
  opts.seed = 3;
  return kmeans(full, opts).cost;
}

TEST(DistributedLloyd, ConvergesToNearOptimal) {
  const auto parts = make_parts(800, 8, 3, 4, 700);
  Network net(4);
  Stopwatch work;
  DistributedLloydOptions opts;
  opts.k = 3;
  opts.seed = 11;
  const DistributedBaselineResult res =
      distributed_lloyd(parts, opts, net, work);
  EXPECT_LT(res.cost, 1.25 * solved_cost(parts, 3));
  EXPECT_GE(res.rounds, 2);
  EXPECT_GT(work.total_seconds(), 0.0);
}

TEST(DistributedLloyd, CommunicationGrowsWithRounds) {
  const auto parts = make_parts(600, 6, 3, 4, 701, /*separation=*/3.0);
  // Tight tolerance => more rounds => more uplink bits.
  Network net_loose(4);
  Network net_tight(4);
  Stopwatch w1;
  Stopwatch w2;
  DistributedLloydOptions loose;
  loose.k = 3;
  loose.max_rounds = 2;
  DistributedLloydOptions tight = loose;
  tight.max_rounds = 20;
  tight.rel_tol = 1e-12;
  const auto r1 = distributed_lloyd(parts, loose, net_loose, w1);
  const auto r2 = distributed_lloyd(parts, tight, net_tight, w2);
  EXPECT_GT(r2.rounds, r1.rounds);
  EXPECT_GT(net_tight.total_uplink().bits, net_loose.total_uplink().bits);
  // Per-round uplink = m * k * (d+2) scalars (+seeding round).
  const std::uint64_t per_round = 4ull * 3 * (6 + 2);
  EXPECT_EQ(net_tight.total_uplink().scalars - net_loose.total_uplink().scalars,
            per_round * static_cast<std::uint64_t>(r2.rounds - r1.rounds));
}

TEST(DistributedLloyd, HandlesEmptySource) {
  auto parts = make_parts(300, 5, 2, 2, 702);
  parts.push_back(Dataset());
  Network net(3);
  Stopwatch work;
  DistributedLloydOptions opts;
  opts.k = 2;
  const auto res = distributed_lloyd(parts, opts, net, work);
  EXPECT_EQ(res.centers.rows(), 2u);
}

TEST(MapReduce, OneRoundCheapAndReasonableOnSeparatedData) {
  const auto parts = make_parts(900, 10, 3, 5, 703, /*separation=*/15.0);
  Network net(5);
  Stopwatch work;
  MapReduceOptions opts;
  opts.k = 3;
  const auto res = mapreduce_kmeans(parts, opts, net, work);
  EXPECT_EQ(res.rounds, 1);
  // Well-separated clusters: the merge heuristic is fine here.
  EXPECT_LT(res.cost, 1.3 * solved_cost(parts, 3));
  // Uplink = m * k * (d + 1) scalars exactly.
  EXPECT_EQ(net.total_uplink().scalars, 5u * 3 * (10 + 1));
}

TEST(MapReduce, OneShotMergeBracketedByExactOptimum) {
  // 1-D instance scored against the EXACT optimum (DP oracle), so solver
  // luck cannot flip the verdict. Empirically the mass-weighted merge is
  // strong (it is a size-mk summary of the data); what it lacks — the
  // paper's §2 point — is a tunable (1+ε) guarantee: its gap is whatever
  // the instance induces and cannot be driven down by spending more
  // communication, unlike the coreset pipelines. Here we pin the bracket:
  // never below the oracle, and measurably lossy on subcluster splits.
  Rng rng = make_rng(704);
  std::normal_distribution<double> jitter(0.0, 0.01);
  const auto group_points = [&](double center, std::size_t n, Matrix& out,
                                std::size_t offset) {
    for (std::size_t i = 0; i < n; ++i) out(offset + i, 0) = center + jitter(rng);
  };
  // Source 1: 0 x160, 10 x160, 100 x80. Source 2: 0 x40, 10 x280, 100 x80.
  Matrix p1(400, 1);
  group_points(0.0, 160, p1, 0);
  group_points(10.0, 160, p1, 160);
  group_points(100.0, 80, p1, 320);
  Matrix p2(400, 1);
  group_points(0.0, 40, p2, 0);
  group_points(10.0, 280, p2, 40);
  group_points(100.0, 80, p2, 320);
  std::vector<Dataset> parts;
  parts.emplace_back(std::move(p1));
  parts.emplace_back(std::move(p2));

  const Dataset full = concatenate(parts);
  std::vector<double> values(full.size());
  for (std::size_t i = 0; i < full.size(); ++i) values[i] = full.point(i)[0];
  const double exact_opt = kmeans_1d_exact(values, 2).cost;

  Network net(2);
  Stopwatch work;
  MapReduceOptions opts;
  opts.k = 2;
  const auto res = mapreduce_kmeans(parts, opts, net, work);
  EXPECT_GE(res.cost, exact_opt - 1e-6);  // oracle is a true lower bound
  EXPECT_LT(res.cost, 1.5 * exact_opt);   // bounded heuristic on this data
  // (On this instance the merge in fact lands on the optimum — evidence
  // for "empirically strong, theoretically unguaranteed".)
}

TEST(Gossip, ConsensusImprovesOverLocalSolves) {
  const auto parts = make_parts(1000, 8, 3, 5, 705);
  // Local-only reference: best single-node solve scored globally.
  double local_only = std::numeric_limits<double>::infinity();
  const Dataset full = concatenate(parts);
  for (const Dataset& p : parts) {
    if (p.empty()) continue;
    KMeansOptions kopts;
    kopts.k = 3;
    kopts.restarts = 1;
    kopts.max_iters = 10;
    kopts.seed = 7;
    const KMeansResult local = kmeans(p, kopts);
    local_only = std::min(local_only, kmeans_cost(full, local.centers));
  }

  Network net(5);
  Stopwatch work;
  GossipOptions opts;
  opts.k = 3;
  opts.rounds = 15;
  const auto res = gossip_kmeans(parts, opts, net, work);
  EXPECT_LE(res.cost, local_only * 1.05);
  EXPECT_GT(net.total_uplink().bits, 0u);
}

TEST(Gossip, TrafficScalesWithRounds) {
  const auto parts = make_parts(400, 6, 2, 4, 706);
  Network few(4);
  Network many(4);
  Stopwatch w1;
  Stopwatch w2;
  GossipOptions opts;
  opts.k = 2;
  opts.rounds = 3;
  (void)gossip_kmeans(parts, opts, few, w1);
  opts.rounds = 12;
  (void)gossip_kmeans(parts, opts, many, w2);
  EXPECT_GT(many.total_uplink().bits, 2u * few.total_uplink().bits);
}

TEST(Baselines, ValidateInputs) {
  std::vector<Dataset> empty_parts(2);
  Network net(2);
  Stopwatch work;
  DistributedLloydOptions opts;
  EXPECT_THROW((void)distributed_lloyd(empty_parts, opts, net, work),
               precondition_error);
  MapReduceOptions mr;
  EXPECT_THROW((void)mapreduce_kmeans(empty_parts, mr, net, work),
               precondition_error);
  GossipOptions go;
  EXPECT_THROW((void)gossip_kmeans(empty_parts, go, net, work),
               precondition_error);
}

}  // namespace
}  // namespace ekm
