#!/usr/bin/env bash
# Builds and runs the assignment-kernel bench, leaving BENCH_assign.json
# in the repo root so successive PRs can track the perf trajectory.
#
# Usage: tools/run_bench.sh [build_dir] [extra bench args...]
#   EKM_THREADS caps the pool for the multi-threaded series.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" --target bench_assign_kernel -j >/dev/null

"$build_dir/bench_assign_kernel" --json "$repo_root/BENCH_assign.json" "$@"
echo "wrote $repo_root/BENCH_assign.json"
