#include "cr/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "common/parallel.hpp"
#include "common/sampling.hpp"
#include "kmeans/assign.hpp"
#include "kmeans/cost.hpp"

namespace ekm {
namespace {

Coreset passthrough_coreset(const Dataset& data) {
  Coreset cs;
  std::vector<double> w(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) w[i] = data.weight(i);
  cs.points = Dataset(data.points(), std::move(w));
  return cs;
}

}  // namespace

Coreset sensitivity_sample(const Dataset& data,
                           const SensitivitySampleOptions& opts, Rng& rng) {
  EKM_EXPECTS(!data.empty());
  EKM_EXPECTS(opts.sample_size >= 1);
  const std::size_t n = data.size();
  const std::size_t d = data.dim();
  if (opts.sample_size >= n) return passthrough_coreset(data);

  // 1) Rough solution B and the induced clustering.
  BicriteriaOptions bopts = opts.bicriteria;
  bopts.k = opts.k;
  const Matrix b_centers = bicriteria_centers(data, bopts, rng);
  const std::size_t b = b_centers.rows();

  std::vector<std::size_t> assign(n);
  std::vector<double> dist2(n);
  const double cost_b = assign_and_cost(data, b_centers, assign, dist2);
  std::vector<double> cluster_weight(b, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    cluster_weight[assign[i]] += data.weight(i);
  }

  // 2) Sensitivity upper bounds: s(p) = w(p) d²(p,B)/cost(B) + w(p)/W(b(p)).
  //    (Feldman–Langberg; the additive term guards points in small
  //    clusters whose cost can spike under adversarial centers.)
  //    Scored in parallel; the total folds serially so it is independent
  //    of the thread count.
  std::vector<double> sens(n);
  parallel_for(n, 4096, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const double w = data.weight(i);
      const double cost_term = cost_b > 0.0 ? w * dist2[i] / cost_b : 0.0;
      const double cluster_term =
          cluster_weight[assign[i]] > 0.0 ? w / cluster_weight[assign[i]] : 0.0;
      sens[i] = cost_term + cluster_term;
    }
  });
  double total_sens = 0.0;
  for (std::size_t i = 0; i < n; ++i) total_sens += sens[i];
  EKM_ENSURES_MSG(total_sens > 0.0, "degenerate sensitivities");

  // 3) Draw sample_size i.i.d. points ∝ sensitivity; weight t/(N s(q)) w(q).
  //    Alias table: O(n) setup + O(1) per draw keeps the device budget
  //    at ˜O(n) regardless of |S|.
  const std::size_t N = opts.sample_size;
  const AliasTable table(sens);
  std::vector<std::size_t> picks(N);
  for (std::size_t s = 0; s < N; ++s) picks[s] = table.sample(rng);

  std::vector<double> sample_weight(N);
  for (std::size_t s = 0; s < N; ++s) {
    sample_weight[s] = total_sens / (static_cast<double>(N) * sens[picks[s]]) *
                       data.weight(picks[s]);
  }

  // 4) Optionally add the bicriteria centers so cluster masses — and
  //    hence the total weight — are matched deterministically ([4]).
  std::size_t extra = opts.include_bicriteria_centers ? b : 0;
  Matrix pts(N + extra, d);
  std::vector<double> weights(N + extra, 0.0);
  for (std::size_t s = 0; s < N; ++s) {
    auto src = data.point(picks[s]);
    std::copy(src.begin(), src.end(), pts.row(s).begin());
    weights[s] = sample_weight[s];
  }
  if (opts.include_bicriteria_centers) {
    // "Weights set to match the number of points per cluster" ([4]): if a
    // cluster's sampled mass overshoots its true mass, rescale the samples
    // in that cluster; otherwise the center carries the residual. Either
    // way the total coreset weight equals the input weight exactly.
    std::vector<double> sampled_mass(b, 0.0);
    for (std::size_t s = 0; s < N; ++s) {
      sampled_mass[assign[picks[s]]] += weights[s];
    }
    std::vector<double> cluster_scale(b, 1.0);
    for (std::size_t c = 0; c < b; ++c) {
      if (sampled_mass[c] > cluster_weight[c] && sampled_mass[c] > 0.0) {
        cluster_scale[c] = cluster_weight[c] / sampled_mass[c];
      }
    }
    for (std::size_t s = 0; s < N; ++s) {
      weights[s] *= cluster_scale[assign[picks[s]]];
    }
    for (std::size_t c = 0; c < b; ++c) {
      auto src = b_centers.row(c);
      std::copy(src.begin(), src.end(), pts.row(N + c).begin());
      weights[N + c] =
          std::max(0.0, cluster_weight[c] -
                            std::min(sampled_mass[c], cluster_weight[c]));
    }
  }

  Coreset cs;
  cs.points = Dataset(std::move(pts), std::move(weights));
  return cs;
}

Coreset uniform_sample_coreset(const Dataset& data, std::size_t sample_size,
                               Rng& rng) {
  EKM_EXPECTS(!data.empty() && sample_size >= 1);
  const std::size_t n = data.size();
  if (sample_size >= n) return passthrough_coreset(data);

  const double total_w = data.total_weight();
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  Matrix pts(sample_size, data.dim());
  std::vector<double> weights(sample_size,
                              total_w / static_cast<double>(sample_size));
  for (std::size_t s = 0; s < sample_size; ++s) {
    auto src = data.point(pick(rng));
    std::copy(src.begin(), src.end(), pts.row(s).begin());
  }
  Coreset cs;
  cs.points = Dataset(std::move(pts), std::move(weights));
  return cs;
}

std::size_t fss_coreset_size(std::size_t k, double epsilon, double delta,
                             std::size_t n) {
  EKM_EXPECTS(epsilon > 0.0 && delta > 0.0 && delta < 1.0 && k >= 1);
  const double kd = static_cast<double>(k);
  const double lg = std::log2(kd + 1.0);
  // ˜O(k³ log²k ε⁻⁴ log(1/δ)) with a laptop-scale constant: the theory
  // constant (~5e4, §6.3.2) would exceed n for every feasible experiment.
  const double raw = kd * kd * kd * lg * lg * std::log(1.0 / delta) /
                     (epsilon * epsilon * epsilon * epsilon) * 0.05;
  const double lo = 4.0 * kd;
  return static_cast<std::size_t>(
      std::clamp(raw, lo, static_cast<double>(n)));
}

}  // namespace ekm
