// TreeFabric — hierarchical aggregation as a composition of Fabrics.
//
// A TreeFabric presents a fleet of `topology.sites` data sources to the
// protocols while routing their uplinks through gateways on an inner
// fabric that carries sites AND gateways as sources: inner source i < S
// is data site i, inner source S + g is gateway g's forward hop. The
// wrapper owns no links, clocks, or randomness — every Port, deadline,
// clock and event lives on the inner fabric (in practice a SimNetwork
// built over S + G sources), so all of the simulator's determinism
// contracts carry over verbatim. What the wrapper adds is the
// *addressing convention*: num_sources() is S (the paper's metric — and
// total_uplink() — stays site-level), uplink(S + g) reaches gateway g's
// hop, and topology() exposes the tree so protocol builders emit
// per-gateway merge barriers instead of per-site server collects.
//
// The reduce itself deliberately does NOT live here: gateways run
// protocol-specific merges (the shared associative layer,
// src/cr/merge.hpp + linalg/svd.hpp) as tasks on the scheduler, where
// they get their own virtual-time track and trace spans. A fabric that
// merged opaquely inside send() could not reuse the server's merge code
// or show up in the task graph.
//
// Gateways are fleet devices on the inner fabric: they burn energy,
// obey per-device overrides (`gatewayN.*` maps to inner site S + g),
// and are subject to the scenario's stragglers/skew draws like any
// other site.
#pragma once

#include "net/channel.hpp"
#include "net/topology.hpp"

namespace ekm {

class TreeFabric final : public Fabric {
 public:
  /// `inner` must carry topology.sites + topology.gateways() sources
  /// and outlive this wrapper.
  TreeFabric(Fabric& inner, const TreeTopology& topology);

  [[nodiscard]] std::size_t num_sources() const override {
    return topo_.sites;
  }
  [[nodiscard]] Port& uplink(std::size_t source) override {
    return inner_->uplink(source);  // source may address a gateway hop
  }
  [[nodiscard]] Port& downlink(std::size_t source) override {
    return inner_->downlink(source);
  }
  // Round handles pass through untouched: the inner fabric mints them,
  // and the gateway merge barriers thread the same RoundId through
  // their level-0 collects (as a deadline cap on the round's cutoff),
  // so a tree round is ONE round on the inner network's books. Opening
  // a round also (re-)declares the actor split to any attached
  // recorder — here rather than at construction because the recorder
  // is typically attached after the wrapper is built, and begin_run
  // resets the split. Idempotent metadata, never a simulation effect.
  RoundId open_round(double deadline_seconds) override;
  [[nodiscard]] double round_cutoff(RoundId round) const override {
    return inner_->round_cutoff(round);
  }
  RoundId open_subround(RoundId round, double absolute_deadline) override {
    return inner_->open_subround(round, absolute_deadline);
  }
  [[nodiscard]] double server_time() const override {
    return inner_->server_time();
  }
  [[nodiscard]] double site_time(std::size_t source) const override {
    return inner_->site_time(source);
  }
  [[nodiscard]] double uplink_airtime_s(std::size_t source,
                                        std::uint64_t wire_bits) const override {
    return inner_->uplink_airtime_s(source, wire_bits);
  }
  [[nodiscard]] bool is_member(std::size_t source) override {
    return inner_->is_member(source);
  }
  [[nodiscard]] std::uint64_t rounds_opened() const override {
    return inner_->rounds_opened();
  }
  [[nodiscard]] Recorder* recorder() override { return inner_->recorder(); }
  [[nodiscard]] const TreeTopology* topology() const override {
    return &topo_;
  }
  void wait_until(std::size_t source, double t) override {
    inner_->wait_until(source, t);
  }
  [[nodiscard]] double uplink_consumed_at_s(std::size_t source) const override {
    return inner_->uplink_consumed_at_s(source);
  }

  [[nodiscard]] Fabric& inner() { return *inner_; }

 private:
  Fabric* inner_;
  TreeTopology topo_;
};

}  // namespace ekm
