#!/usr/bin/env bash
# Builds and runs the tracked benches, leaving BENCH_assign.json and
# BENCH_sim.json in the repo root so successive PRs can track the perf
# and scenario trajectories.
#
# Usage: tools/run_bench.sh [build_dir] [extra bench_assign_kernel args...]
#   EKM_THREADS caps the pool for the multi-threaded series.
#   BENCH_sim.json is bitwise deterministic for a fixed seed at any
#   EKM_THREADS (it lives on the simulator's virtual clock).
#
# Each bench writes to a temp file that is moved into place only after
# the binary exits cleanly: a crashing bench fails this script loudly
# and leaves the previously committed JSON untouched, instead of
# shipping a partial or stale trajectory.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

# Any temp file not yet renamed into place is removed on exit — a bench
# that crashes (or a Ctrl-C mid-run) must not leave BENCH_*.json.XXXXXX
# litter next to the committed trajectories. `mv` removes the source, so
# cleaning up an already-promoted tmp is a harmless no-op.
tmp_files=()
cleanup() {
  ((${#tmp_files[@]})) && rm -f "${tmp_files[@]}"
  return 0
}
trap cleanup EXIT

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" --target bench_assign_kernel bench_sim_scenarios -j >/dev/null

# Provenance block stamped into both JSONs (the bench emits it as a
# top-level "provenance" object): enough to answer "which commit,
# which compiler, how many threads produced this trajectory?" when two
# BENCH files disagree. Values degrade to "unknown" rather than failing
# the run — a bench result without provenance still beats no result.
git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"
if ! git -C "$repo_root" diff --quiet HEAD -- 2>/dev/null; then
  git_sha="$git_sha-dirty"
fi
compiler="$(grep -m1 '^CMAKE_CXX_COMPILER:' "$build_dir/CMakeCache.txt" 2>/dev/null | cut -d= -f2- || true)"
if [[ -n "$compiler" ]] && command -v "$compiler" >/dev/null 2>&1; then
  compiler="$("$compiler" --version 2>/dev/null | head -1 || echo "$compiler")"
fi
cxx_flags="$(grep -m1 '^CMAKE_CXX_FLAGS_RELEASE:' "$build_dir/CMakeCache.txt" 2>/dev/null | cut -d= -f2- || true)"
meta_args=(
  --meta "git_sha=${git_sha:-unknown}"
  --meta "compiler=${compiler:-unknown}"
  --meta "cxx_flags_release=${cxx_flags:-unknown}"
  --meta "ekm_threads=${EKM_THREADS:-default}"
)

run_bench() {
  local binary="$1" target="$2"
  shift 2
  local tmp
  # No suffix after the Xs: BSD/macOS mktemp rejects templates with one.
  tmp="$(mktemp "$target.XXXXXX")"
  tmp_files+=("$tmp")
  if ! "$binary" --json "$tmp" "$@" || [[ ! -s "$tmp" ]]; then
    rm -f "$tmp"
    echo "error: $(basename "$binary") failed — $target left untouched" >&2
    return 1
  fi
  # A bench that exits 0 but emits broken JSON (truncated table, a
  # printf that drifted from the closing braces) must not replace the
  # committed trajectory: validate before promoting. Skipped quietly
  # where python3 is unavailable — the exit-status and non-empty checks
  # above still hold.
  if command -v python3 >/dev/null 2>&1; then
    if ! python3 -m json.tool "$tmp" >/dev/null 2>&1; then
      rm -f "$tmp"
      echo "error: $(basename "$binary") emitted invalid JSON — $target left untouched" >&2
      return 1
    fi
  fi
  mv "$tmp" "$target"
  echo "wrote $target"
}

# The sim bench's scenario strings are constants compiled into the
# bench itself and already emitted as each sweep's "scenario" field, so
# the provenance block only adds build/host facts, never duplicates them.
run_bench "$build_dir/bench_assign_kernel" "$repo_root/BENCH_assign.json" \
  "${meta_args[@]}" "$@"
run_bench "$build_dir/bench_sim_scenarios" "$repo_root/BENCH_sim.json" \
  "${meta_args[@]}"
