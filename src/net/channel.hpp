// Simulated edge-network channels with communication accounting.
//
// The paper's communication-cost metric is "number of scalars a data
// source sends to the server" (§3.4), refined to bits once quantization
// enters (§6). Every summary in this library crosses a Channel as a real
// serialized frame; the channel records three ledgers:
//   * bytes  — the physical frame size (64-bit doubles),
//   * bits   — the logical wire size, where a scalar quantized to s
//              significand bits counts 12 + s bits instead of 64,
//   * scalars — the paper's §3–5 unit.
// Tables 3–4 and Figures 3–6 read these ledgers; nothing is estimated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/expects.hpp"

namespace ekm {

/// One framed message in flight.
struct Message {
  std::vector<std::byte> payload;
  std::uint64_t wire_bits = 0;
  std::size_t scalars = 0;
};

/// Accumulated traffic totals of a channel.
struct TrafficLedger {
  std::uint64_t bytes = 0;
  std::uint64_t bits = 0;
  std::uint64_t scalars = 0;
  std::uint64_t messages = 0;

  TrafficLedger& operator+=(const TrafficLedger& other) {
    bytes += other.bytes;
    bits += other.bits;
    scalars += other.scalars;
    messages += other.messages;
    return *this;
  }
};

/// Unidirectional FIFO channel. Sending enqueues and bills the ledger;
/// receiving dequeues.
class Channel {
 public:
  void send(Message msg) {
    ledger_.bytes += msg.payload.size();
    ledger_.bits += msg.wire_bits;
    ledger_.scalars += msg.scalars;
    ledger_.messages += 1;
    queue_.push_back(std::move(msg));
  }

  [[nodiscard]] bool has_pending() const { return !queue_.empty(); }

  [[nodiscard]] Message receive() {
    EKM_EXPECTS_MSG(!queue_.empty(), "receive on empty channel");
    Message m = std::move(queue_.front());
    queue_.pop_front();
    return m;
  }

  [[nodiscard]] const TrafficLedger& ledger() const { return ledger_; }

 private:
  std::deque<Message> queue_;
  TrafficLedger ledger_;
};

/// Star topology around one edge server: per-source uplink (counted by
/// the paper's metric) and downlink (coordination traffic the paper
/// treats as negligible, e.g. footnote 1; still measured for honesty).
class Network {
 public:
  explicit Network(std::size_t num_sources) : up_(num_sources), down_(num_sources) {
    EKM_EXPECTS(num_sources >= 1);
  }

  [[nodiscard]] std::size_t num_sources() const { return up_.size(); }

  [[nodiscard]] Channel& uplink(std::size_t source) {
    EKM_EXPECTS(source < up_.size());
    return up_[source];
  }
  [[nodiscard]] Channel& downlink(std::size_t source) {
    EKM_EXPECTS(source < down_.size());
    return down_[source];
  }

  /// Total source->server traffic — the paper's communication cost.
  [[nodiscard]] TrafficLedger total_uplink() const {
    TrafficLedger t;
    for (const Channel& c : up_) t += c.ledger();
    return t;
  }

  [[nodiscard]] TrafficLedger total_downlink() const {
    TrafficLedger t;
    for (const Channel& c : down_) t += c.ledger();
    return t;
  }

 private:
  std::vector<Channel> up_;
  std::vector<Channel> down_;
};

}  // namespace ekm
