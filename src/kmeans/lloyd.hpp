// Weighted Lloyd's algorithm with k-means++ seeding.
//
// This is the `kmeans(S', w, k)` oracle the server runs in Algorithms
// 1–4 (the paper's theorems assume an optimal solver; in practice — as in
// the paper's own experiments — a seeded Lloyd with restarts is used, and
// the approximation guarantees degrade gracefully by the solver's own
// factor).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "kmeans/cost.hpp"
#include "linalg/matrix.hpp"

namespace ekm {

struct KMeansOptions {
  std::size_t k = 2;
  int max_iters = 100;         ///< Lloyd iterations per restart
  double rel_tol = 1e-7;       ///< stop when cost improves less than this
  int restarts = 5;            ///< independent k-means++ seedings
  std::uint64_t seed = 42;     ///< master seed (restart r uses stream r)
};

struct KMeansResult {
  Matrix centers;                    ///< k x d
  double cost = 0.0;                 ///< weighted cost of the best run
  std::vector<std::size_t> assignment;
  int iterations = 0;                ///< Lloyd iterations of the best run
};

/// k-means++ (D^2) seeding over a weighted dataset: the first center is
/// drawn with probability ∝ weight, subsequent ones ∝ weight × squared
/// distance to the nearest chosen center.
[[nodiscard]] Matrix kmeanspp_seed(const Dataset& data, std::size_t k, Rng& rng);

/// One seeded Lloyd run from the given initial centers.
[[nodiscard]] KMeansResult lloyd(const Dataset& data, Matrix initial_centers,
                                 const KMeansOptions& opts);

/// Full solver: `restarts` independent (seed, k-means++) runs, best kept.
/// Requires 1 <= k; if k >= number of distinct points the result places a
/// center on every point (zero cost).
[[nodiscard]] KMeansResult kmeans(const Dataset& data, const KMeansOptions& opts);

/// Exhaustive-search optimum for tiny instances (k^n assignments).
/// Test oracle only; requires k^n <= 2^22 or so — enforced via EKM_EXPECTS.
[[nodiscard]] KMeansResult kmeans_brute_force(const Dataset& data, std::size_t k);

}  // namespace ekm
