// Shared helpers for the reproduction benches: dataset construction at
// bench scale, flag parsing, and figure-style output formatting.
//
// Every bench accepts:
//   --full        paper-scale parameters (slow; default is laptop scale)
//   --mc N        Monte-Carlo repetitions (default depends on the bench)
//   --seed S      master seed
// The benches print the same rows/series as the paper's tables/figures;
// EXPERIMENTS.md records the expected shapes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/stats.hpp"
#include "core/experiment.hpp"
#include "data/loaders.hpp"

namespace ekm::bench {

struct BenchArgs {
  bool full = false;
  int monte_carlo = 0;  // 0 = bench default
  std::uint64_t seed = 2024;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        args.full = true;
      } else if (std::strcmp(argv[i], "--mc") == 0 && i + 1 < argc) {
        args.monte_carlo = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      }
    }
    return args;
  }
};

/// MNIST-stand-in at bench scale (real IDX file used if present in
/// ./data). Paper scale: 60000 x 784; laptop scale trims n only — the
/// dimension is the structurally important part.
inline Dataset mnist_dataset(const BenchArgs& args, std::size_t n_fast = 4000) {
  Rng rng = make_rng(args.seed, 0x0a71ULL);
  const std::size_t n = args.full ? 60000 : n_fast;
  return load_or_generate_mnist("data", n, rng);
}

/// NeurIPS-corpus stand-in: d = Θ(n) sparse counts. Paper scale:
/// 11463 x 5812.
inline Dataset neurips_dataset(const BenchArgs& args, std::size_t n_fast = 3000,
                               std::size_t d_fast = 1500) {
  Rng rng = make_rng(args.seed, 0x0a72ULL);
  const std::size_t n = args.full ? 11463 : n_fast;
  const std::size_t d = args.full ? 5812 : d_fast;
  return load_or_generate_neurips("data", n, d, rng);
}

/// Prints one figure panel: the empirical CDF of `values` labelled as the
/// paper's plots are (e.g. "Fig1a MNIST normalized-cost JL+FSS").
inline void print_cdf(const std::string& panel, const std::string& series,
                      std::span<const double> values) {
  const EmpiricalCdf cdf = empirical_cdf(values);
  std::printf("# %s — CDF for %s (x p)\n", panel.c_str(), series.c_str());
  std::fputs(format_cdf(cdf, 16).c_str(), stdout);
}

/// Prints a paper-style summary row.
inline void print_row(const std::string& name, const ExperimentSeries& s) {
  const Summary cost = summarize(s.costs());
  const Summary comm = summarize(s.comm_bits());
  const Summary time = summarize(s.device_times());
  std::printf("%-14s cost=%.4f (sd %.4f)  comm=%.3e  time=%.3fs\n",
              name.c_str(), cost.mean, cost.stddev, comm.mean, time.mean);
}

}  // namespace ekm::bench
