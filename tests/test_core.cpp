// Tests for src/core: ε-calibration, the seven pipelines end to end
// (single and multi source, with and without QT), and the experiment
// harness.
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "data/generators.hpp"
#include "kmeans/cost.hpp"

namespace ekm {
namespace {

Dataset small_mnist_like(std::size_t n = 600, std::size_t dim = 100) {
  Rng rng = make_rng(200);
  MnistLikeSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.latent_dim = 8;
  return make_mnist_like(spec, rng);
}

PipelineConfig test_config() {
  PipelineConfig cfg;
  cfg.k = 2;
  cfg.epsilon = 0.5;
  cfg.seed = 11;
  cfg.coreset_size = 120;
  cfg.jl_dim = 32;
  cfg.pca_dim = 12;
  cfg.solver_restarts = 4;
  return cfg;
}

TEST(Calibration, SolvesDefiningEquations) {
  for (double target : {0.1, 0.5, 1.0}) {
    const double e1 = epsilon_for_alg1(target);
    EXPECT_NEAR(std::pow(1 + e1, 5) / (1 - e1), 1 + target, 1e-9);
    const double e2 = epsilon_for_fss(target);
    EXPECT_NEAR((1 + e2) / (1 - e2), 1 + target, 1e-9);
    const double e3 = epsilon_for_alg3(target);
    EXPECT_NEAR(std::pow(1 + e3, 9) / (1 - e3), 1 + target, 1e-9);
    const double e4 = epsilon_for_bklw(target);
    EXPECT_NEAR(std::pow(1 + e4, 2) / std::pow(1 - e4, 2), 1 + target, 1e-9);
    const double e5 = epsilon_for_alg4(target);
    EXPECT_NEAR(std::pow(1 + e5, 6) / std::pow(1 - e5, 2), 1 + target, 1e-9);
  }
}

TEST(Calibration, MorePowersNeedSmallerEpsilon) {
  const double t = 0.5;
  EXPECT_GT(epsilon_for_fss(t), epsilon_for_alg1(t));
  EXPECT_GT(epsilon_for_alg1(t), epsilon_for_alg3(t));
  EXPECT_GT(epsilon_for_bklw(t), epsilon_for_alg4(t));
  EXPECT_THROW((void)solve_internal_epsilon(-0.1, 5, 1), precondition_error);
}

TEST(PipelineNames, Complete) {
  EXPECT_STREQ(pipeline_name(PipelineKind::kJlFssJl), "JL+FSS+JL");
  EXPECT_FALSE(pipeline_is_distributed(PipelineKind::kFss));
  EXPECT_TRUE(pipeline_is_distributed(PipelineKind::kJlBklw));
}

class SingleSourcePipeline : public ::testing::TestWithParam<PipelineKind> {};

TEST_P(SingleSourcePipeline, EndToEndApproximation) {
  const PipelineKind kind = GetParam();
  const Dataset data = small_mnist_like();
  const PipelineConfig cfg = test_config();
  const PipelineResult res = run_pipeline(kind, data, cfg);

  // Centers live in the ORIGINAL space.
  EXPECT_EQ(res.centers.rows(), 2u);
  EXPECT_EQ(res.centers.cols(), data.dim());

  // Approximation: within 2x of a well-restarted full solve (the test
  // config is deliberately aggressive; the benches tune for ~1.1).
  KMeansOptions opts;
  opts.k = 2;
  opts.restarts = 8;
  opts.seed = 3;
  const double opt_cost = kmeans(data, opts).cost;
  EXPECT_LT(kmeans_cost(data, res.centers), 2.0 * opt_cost);

  // Communication: summaries beat raw transfer by a lot.
  const std::uint64_t raw_bits = data.scalar_count() * 64;
  if (kind != PipelineKind::kNoReduction) {
    EXPECT_LT(res.uplink.bits, raw_bits / 4);
    EXPECT_LT(res.summary_points, data.size());
  } else {
    EXPECT_EQ(res.uplink.bits, raw_bits);
  }
}

TEST_P(SingleSourcePipeline, DeterministicGivenSeed) {
  const PipelineKind kind = GetParam();
  const Dataset data = small_mnist_like(300, 64);
  const PipelineConfig cfg = test_config();
  const PipelineResult a = run_pipeline(kind, data, cfg);
  const PipelineResult b = run_pipeline(kind, data, cfg);
  EXPECT_EQ(a.centers, b.centers);
  EXPECT_EQ(a.uplink.bits, b.uplink.bits);
}

INSTANTIATE_TEST_SUITE_P(Kinds, SingleSourcePipeline,
                         ::testing::Values(PipelineKind::kNoReduction,
                                           PipelineKind::kFss,
                                           PipelineKind::kJlFss,
                                           PipelineKind::kFssJl,
                                           PipelineKind::kJlFssJl));

TEST(Pipeline, CommunicationOrdering) {
  // JL+FSS must beat FSS on the wire (no d x t basis at full ambient d);
  // FSS+JL and JL+FSS+JL ship no basis at all.
  const Dataset data = small_mnist_like(800, 200);
  PipelineConfig cfg = test_config();
  const auto bits = [&](PipelineKind k) {
    return run_pipeline(k, data, cfg).uplink.bits;
  };
  const auto fss = bits(PipelineKind::kFss);
  const auto jl_fss = bits(PipelineKind::kJlFss);
  const auto nr = bits(PipelineKind::kNoReduction);
  EXPECT_LT(jl_fss, fss);
  EXPECT_LT(fss, nr / 4);
}

TEST(Pipeline, QuantizationCutsBitsWithoutHurtingCost) {
  const Dataset data = small_mnist_like(700, 128);
  PipelineConfig cfg = test_config();
  const PipelineResult full = run_pipeline(PipelineKind::kJlFssJl, data, cfg);
  cfg.significant_bits = 10;
  const PipelineResult q = run_pipeline(PipelineKind::kJlFssJl, data, cfg);
  EXPECT_LT(q.uplink.bits, 0.6 * static_cast<double>(full.uplink.bits));
  const double c_full = kmeans_cost(data, full.centers);
  const double c_q = kmeans_cost(data, q.centers);
  EXPECT_LT(c_q, 1.1 * c_full);
}

TEST(Pipeline, RefinementRecoversLargeKAccuracy) {
  // At k = 10 the Moore–Penrose lift of JL-projected centers loses most
  // of the between-cluster variance; one device-side Lloyd round fixes it.
  Rng rng = make_rng(210);
  MnistLikeSpec spec;
  spec.n = 1200;
  spec.dim = 196;
  const Dataset data = make_mnist_like(spec, rng);
  PipelineConfig cfg = test_config();
  cfg.k = 10;
  cfg.coreset_size = 300;

  KMeansOptions opts;
  opts.k = 10;
  opts.restarts = 8;
  opts.seed = 3;
  const double opt_cost = kmeans(data, opts).cost;

  const PipelineResult raw = run_pipeline(PipelineKind::kJlFssJl, data, cfg);
  cfg.refine_iters = 1;
  const PipelineResult refined =
      run_pipeline(PipelineKind::kJlFssJl, data, cfg);

  const double raw_ratio = kmeans_cost(data, raw.centers) / opt_cost;
  const double refined_ratio = kmeans_cost(data, refined.centers) / opt_cost;
  EXPECT_LT(refined_ratio, raw_ratio);
  EXPECT_LT(refined_ratio, 1.3);
  // Refinement ships the final k x d model: bits grow, but stay far
  // below raw-data transfer.
  EXPECT_GT(refined.uplink.bits, raw.uplink.bits);
  EXPECT_LT(refined.uplink.bits, data.scalar_count() * 64 / 4);
}

TEST(Pipeline, DistributedRefinementAccountsTraffic) {
  Rng rng = make_rng(211);
  MnistLikeSpec spec;
  spec.n = 900;
  spec.dim = 100;
  const Dataset data = make_mnist_like(spec, rng);
  Rng prng = make_rng(212);
  const std::vector<Dataset> parts = partition_random(data, 4, prng);
  PipelineConfig cfg = test_config();
  cfg.refine_iters = 2;
  const PipelineResult res =
      run_distributed_pipeline(PipelineKind::kJlBklw, parts, cfg);
  // 2 rounds x 4 sources x k x (d+1) stats scalars on top of the summary.
  const PipelineResult base = [&] {
    PipelineConfig c = cfg;
    c.refine_iters = 0;
    return run_distributed_pipeline(PipelineKind::kJlBklw, parts, c);
  }();
  EXPECT_EQ(res.uplink.scalars - base.uplink.scalars,
            2u * 4 * cfg.k * (data.dim() + 1));
}

TEST(Pipeline, CommBitsMonotoneInQuantizerBits) {
  const Dataset data = small_mnist_like(500, 80);
  PipelineConfig cfg = test_config();
  std::uint64_t prev = 0;
  for (int s : {4, 10, 24, 52}) {
    cfg.significant_bits = s;
    const PipelineResult res = run_pipeline(PipelineKind::kJlFssJl, data, cfg);
    EXPECT_GT(res.uplink.bits, prev);
    prev = res.uplink.bits;
  }
}

TEST(Pipeline, SecondJlDimControlsWireWidth) {
  const Dataset data = small_mnist_like(600, 128);
  PipelineConfig cfg = test_config();
  cfg.jl_dim2 = 16;
  const PipelineResult narrow = run_pipeline(PipelineKind::kJlFssJl, data, cfg);
  cfg.jl_dim2 = 32;
  const PipelineResult wide = run_pipeline(PipelineKind::kJlFssJl, data, cfg);
  // Same |S|; wire width scales with the post-CR dimension.
  EXPECT_LT(narrow.uplink.bits, wide.uplink.bits);
  EXPECT_EQ(narrow.summary_points, wide.summary_points);
  // Algorithm 2 honours it too.
  const PipelineResult alg2 = run_pipeline(PipelineKind::kFssJl, data, cfg);
  EXPECT_EQ(alg2.uplink.scalars,
            wide.uplink.scalars);  // same |S| x d2 + weights + delta
}

TEST(Pipeline, SingleSourceRejectsDistributedKinds) {
  const Dataset data = small_mnist_like(100, 32);
  EXPECT_THROW((void)run_pipeline(PipelineKind::kBklw, data, test_config()),
               precondition_error);
}

class MultiSourcePipeline : public ::testing::TestWithParam<PipelineKind> {};

TEST_P(MultiSourcePipeline, EndToEndApproximation) {
  const PipelineKind kind = GetParam();
  const Dataset data = small_mnist_like(800, 100);
  Rng rng = make_rng(201);
  const std::vector<Dataset> parts = partition_random(data, 4, rng);
  const PipelineConfig cfg = test_config();
  const PipelineResult res = run_distributed_pipeline(kind, parts, cfg);

  EXPECT_EQ(res.centers.rows(), 2u);
  EXPECT_EQ(res.centers.cols(), data.dim());
  KMeansOptions opts;
  opts.k = 2;
  opts.restarts = 8;
  opts.seed = 3;
  const double opt_cost = kmeans(data, opts).cost;
  EXPECT_LT(kmeans_cost(data, res.centers), 2.0 * opt_cost);
  if (kind != PipelineKind::kNoReduction) {
    EXPECT_LT(res.uplink.bits, data.scalar_count() * 64 / 4);
    EXPECT_GT(res.device_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, MultiSourcePipeline,
                         ::testing::Values(PipelineKind::kNoReduction,
                                           PipelineKind::kBklw,
                                           PipelineKind::kJlBklw));

TEST(Pipeline, JlBklwBeatsBklwOnWire) {
  const Dataset data = small_mnist_like(800, 256);
  Rng rng = make_rng(202);
  const std::vector<Dataset> parts = partition_random(data, 5, rng);
  PipelineConfig cfg = test_config();
  const auto bklw = run_distributed_pipeline(PipelineKind::kBklw, parts, cfg);
  const auto jl = run_distributed_pipeline(PipelineKind::kJlBklw, parts, cfg);
  EXPECT_LT(jl.uplink.bits, bklw.uplink.bits);
}

TEST(Experiment, ContextMetricsAreNormalized) {
  ExperimentContext ctx(small_mnist_like(500, 80), 2, 7, 3);
  EXPECT_GT(ctx.baseline_cost(), 0.0);
  EXPECT_EQ(ctx.parts().size(), 3u);

  const ExperimentSeries series =
      ctx.run(PipelineKind::kJlFss, test_config(), 3);
  EXPECT_EQ(series.runs.size(), 3u);
  EXPECT_EQ(series.name, "JL+FSS");
  for (const RunMetrics& m : series.runs) {
    EXPECT_GE(m.normalized_cost, 0.95);  // can't beat the baseline by much
    EXPECT_LT(m.normalized_cost, 2.5);
    EXPECT_GT(m.normalized_comm_bits, 0.0);
    EXPECT_LT(m.normalized_comm_bits, 1.0);
  }
  // NR normalizes to exactly 1.0 comm.
  const ExperimentSeries nr =
      ctx.run(PipelineKind::kNoReduction, test_config(), 1);
  EXPECT_DOUBLE_EQ(nr.runs[0].normalized_comm_bits, 1.0);
  EXPECT_DOUBLE_EQ(nr.runs[0].normalized_comm_scalars, 1.0);
}

TEST(Experiment, MonteCarloRunsDiffer) {
  ExperimentContext ctx(small_mnist_like(400, 64), 2, 8);
  const ExperimentSeries series =
      ctx.run(PipelineKind::kJlFss, test_config(), 3);
  // Different seeds => different JL matrices => (almost surely)
  // different costs.
  EXPECT_NE(series.runs[0].normalized_cost, series.runs[1].normalized_cost);
}

TEST(Experiment, FormatTableContainsAllRows) {
  ExperimentContext ctx(small_mnist_like(300, 49), 2, 9);
  std::vector<ExperimentSeries> all;
  all.push_back(ctx.run(PipelineKind::kNoReduction, test_config(), 1));
  all.push_back(ctx.run(PipelineKind::kFss, test_config(), 1));
  const std::string table = format_series_table(all);
  EXPECT_NE(table.find("NR"), std::string::npos);
  EXPECT_NE(table.find("FSS"), std::string::npos);
}

}  // namespace
}  // namespace ekm
