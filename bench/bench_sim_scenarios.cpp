// Scenario sweep over the discrete-event edge-network simulator: radio
// classes (LoRa / BLE / Wi-Fi / 5G) × fault rates (loss+dropout) for the
// BKLW multi-source pipeline, followed by a deadline sweep — a
// straggler-heavy fleet under lossy-mesh faults with per-round deadlines
// from infinity down to aggressive, tracing the responders-vs-accuracy
// trade of partial aggregation — and a realloc sweep, comparing the
// server-side coreset size and cost ratio with deadline-aware budget
// reallocation off vs on across a fault grid — and an overlap sweep:
// a deadline-bound fleet with a growing set of link-constrained
// stragglers, run with phase-overlap scheduling off vs on, tracing the
// server time-to-model the expiry-NAK commit rule buys (event logging
// off: a sweep of lossy multi-round runs has no use for full traces in
// memory) — and a pipeline sweep: the same straggler shape run with
// cross-round pipelining off vs on, tracing how close predicted-arrival
// NAKs plus committed-barrier round edges push server completion to the
// per-run critical-path lower bound (`server_critical_path_seconds`,
// also emitted for every overlap cell) — and a churn sweep: two sites behind an 8 kbps trace link
// under (deadline × churn-rate) pressure, run with fixed vs adaptive
// per-frame quantization, tracing the misses-vs-accuracy trade of
// graceful degradation — and a fleet scale sweep: fault-free fleets
// from 256 up to 10240 sites, each run star and as a two-level
// aggregation tree (topology=tree, branching ≈ √sites), tracing what
// the gateway layer buys at scale: server fan-in O(branching) instead
// of O(sites), the time-to-fresh-model that follows, and the
// bits-per-level split — against the event-queue high-water mark the
// 10k-site runs exercise — and an attribution section: the overlap and
// pipeline grids re-run under a flight recorder, each cell's recorded
// server-clock op stream replayed into a critical-path blame
// decomposition (src/obs/attribution.hpp) with a per-cell
// `critical_path_matches` verdict asserting the replay reproduces
// `server_critical_path_seconds` bit for bit. Emits per-cell deployment metrics —
// virtual completion time, site energy, goodput vs retransmitted bits,
// attempt/drop counts, responder counts, and the k-means cost ratio
// against the NR (ship-everything) baseline — as BENCH_sim.json so
// successive PRs can track the trajectory, PR-1-style.
//
// Every reported number lives on the virtual clock or in a ledger, so
// the whole JSON is bitwise deterministic for a fixed --seed at any
// EKM_THREADS setting (tests/test_sim.cpp holds the simulator to that).
//
// Usage: bench_sim_scenarios [--n N] [--d D] [--k K] [--sources M]
//                            [--seed S] [--json PATH] [--only SECTION]
//                            [--list] [--meta key=value ...]
//                            [--trace-out FILE] [--metrics-out FILE]
// --meta pairs land verbatim in a top-level "provenance" object
// (tools/run_bench.sh stamps git SHA, compiler, flags, EKM_THREADS).
// --list prints the splice-able section names, one per line, and exits
// (the single source of truth tools/run_bench.sh --list defers to).
// --only runs a single sweep section (cells | deadline_sweep |
// realloc_sweep | overlap_sweep | pipeline_sweep | churn_sweep |
// fleet_scale_sweep | attribution) and
// emits a JSON holding just that section — still valid JSON with the
// full header/provenance, so tools/run_bench.sh can splice it into an
// existing BENCH_sim.json without re-running the other sweeps. Every
// section's cells are bitwise independent of which other sections ran
// (each cell builds its own Coordinator from its own spec string), so
// a spliced section matches a full run byte for byte.
// --trace-out/--metrics-out attach one flight recorder (src/obs/)
// across all sweep cells — a debug artifact whose presence never
// changes a single reported number (recording is side-effect-free).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "data/generators.hpp"
#include "kmeans/cost.hpp"
#include "obs/attribution.hpp"
#include "obs/trace_export.hpp"
#include "sim/coordinator.hpp"

namespace {

using namespace ekm;

struct Cell {
  std::string radio;
  double fault = 0.0;
  SimReport report;
  double cost_ratio = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 4000, d = 32, k = 4, sources = 8;
  std::uint64_t seed = 7;
  std::string json_path;
  std::string trace_path, metrics_path;
  std::string only;  // empty: run every section
  bool list_sections = false;
  bench::MetaPairs meta;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](std::size_t& out) {
      if (i + 1 < argc) out = static_cast<std::size_t>(std::atoll(argv[++i]));
    };
    if (std::strcmp(argv[i], "--n") == 0) next(n);
    else if (std::strcmp(argv[i], "--d") == 0) next(d);
    else if (std::strcmp(argv[i], "--k") == 0) next(k);
    else if (std::strcmp(argv[i], "--sources") == 0) next(sources);
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc)
      only = argv[++i];
    else if (std::strcmp(argv[i], "--list") == 0)
      list_sections = true;
    else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
      trace_path = argv[++i];
    else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc)
      metrics_path = argv[++i];
    else if (std::strcmp(argv[i], "--meta") == 0 && i + 1 < argc) {
      if (!bench::parse_meta_pair(argv[++i], meta)) return 2;
    }
  }
  const std::vector<std::string> kSections = {
      "cells",          "deadline_sweep", "realloc_sweep",    "overlap_sweep",
      "pipeline_sweep", "churn_sweep",    "fleet_scale_sweep", "attribution"};
  if (list_sections) {
    for (const std::string& s : kSections) std::printf("%s\n", s.c_str());
    return 0;
  }
  if (!only.empty() &&
      std::find(kSections.begin(), kSections.end(), only) == kSections.end()) {
    std::fprintf(stderr, "unknown --only section '%s' (expected one of:",
                 only.c_str());
    for (const std::string& s : kSections) std::fprintf(stderr, " %s", s.c_str());
    std::fprintf(stderr, ")\n");
    return 2;
  }
  const auto selected = [&](const char* section) {
    return only.empty() || only == section;
  };

  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = d;
  spec.k = k;
  Rng data_rng = make_rng(seed, 0xdadaULL);
  const Dataset data = make_gaussian_mixture(spec, data_rng);
  Rng part_rng = make_rng(seed, 0x9a87ULL);
  const std::vector<Dataset> parts = partition_random(data, sources, part_rng);

  PipelineConfig cfg;
  cfg.k = k;
  cfg.epsilon = 0.3;
  cfg.seed = seed;
  cfg.coreset_size = 300;
  cfg.pca_dim = 16;

  // One recorder across all sweep cells (each Coordinator run attaches
  // it to its own SimNetwork): spans from different cells share the
  // virtual-time axis, which is fine for a debug artifact. Attached
  // only when an export was requested — and even attached, recording
  // changes no reported number.
  Recorder recorder;
  if (!trace_path.empty() || !metrics_path.empty()) {
    cfg.recorder = &recorder;
    install_recorder(&recorder);
  }

  // The ship-everything baseline the cost ratios are against.
  const PipelineResult nr = run_distributed_pipeline(
      PipelineKind::kNoReduction, parts, cfg);
  const double nr_cost = kmeans_cost(data, nr.centers);

  const std::vector<std::string> radios = {"lora", "ble", "wifi", "5g"};
  const std::vector<double> faults = {0.0, 0.05, 0.2};

  std::vector<Cell> cells;
  std::printf("sim scenarios  n=%zu d=%zu k=%zu sources=%zu pipeline=BKLW\n",
              n, d, k, sources);
  if (selected("cells")) {
  std::printf("%-6s %-6s %14s %12s %14s %14s %9s %7s %10s\n", "radio",
              "fault", "completion_s", "energy_J", "goodput_bits",
              "retx_bits", "attempts", "drops", "cost_ratio");
  for (const std::string& radio : radios) {
    for (double fault : faults) {
      char spec_buf[128];
      std::snprintf(spec_buf, sizeof spec_buf,
                    "radio=%s,loss=%.3f,dropout=%.3f,outage=2,jitter=%.3f,"
                    "seed=%llu",
                    radio.c_str(), fault, fault / 2.0, fault / 2.0,
                    static_cast<unsigned long long>(seed));
      const Coordinator coord(parse_scenario(spec_buf));
      Cell cell;
      cell.radio = radio;
      cell.fault = fault;
      cell.report = coord.run(PipelineKind::kBklw, parts, cfg);
      cell.cost_ratio =
          kmeans_cost(data, cell.report.result.centers) / nr_cost;
      const LinkStats& up = cell.report.uplink_stats;
      std::printf("%-6s %-6.2f %14.4f %12.4e %14llu %14llu %9llu %7llu %10.4f\n",
                  radio.c_str(), fault, cell.report.completion_seconds,
                  cell.report.energy_joules,
                  static_cast<unsigned long long>(cell.report.result.uplink.bits),
                  static_cast<unsigned long long>(up.retransmit_bits),
                  static_cast<unsigned long long>(up.attempts),
                  static_cast<unsigned long long>(up.drops), cell.cost_ratio);
      cells.push_back(std::move(cell));
    }
  }
  }  // selected("cells")

  // --- deadline sweep: responders vs accuracy under partial aggregation.
  // A straggler-heavy, compute-bound fleet with lossy-mesh faults; the
  // per-round deadline tightens from infinity (the paper's protocol,
  // bit-identical to the wait-for-everyone cells above in ledgers and
  // centers) down to budgets that drop the straggling sites.
  struct DeadlineCell {
    double deadline = 0.0;  // infinity encoded as 0 in the printout
    SimReport report;
    double cost_ratio = 0.0;
    bool feasible = true;  // false: the round fell below min-responders
  };
  const std::vector<double> deadlines = {
      std::numeric_limits<double>::infinity(), 16.0, 8.0, 4.0, 2.0, 1.0, 0.5};
  // Single source of truth for the sweep's base scenario: the run and
  // the JSON "scenario" field must not drift apart.
  constexpr const char* kSweepBase =
      "lossy-mesh,stragglers=0.25,slowdown=64,sps=1e-5";
  std::vector<DeadlineCell> dcells;
  if (selected("deadline_sweep")) {
  std::printf("\ndeadline sweep  scenario=lossy-mesh+stragglers pipeline=BKLW\n");
  std::printf("%-10s %12s %14s %14s %9s %7s %10s %10s\n", "deadline",
              "responders", "completion_s", "server_done_s", "misses", "drops",
              "retx_bits", "cost_ratio");
  for (double deadline : deadlines) {
    char spec_buf[192];
    if (std::isfinite(deadline)) {
      std::snprintf(spec_buf, sizeof spec_buf, "%s,deadline=%g,seed=%llu",
                    kSweepBase, deadline,
                    static_cast<unsigned long long>(seed));
    } else {
      std::snprintf(spec_buf, sizeof spec_buf, "%s,seed=%llu", kSweepBase,
                    static_cast<unsigned long long>(seed));
    }
    const Coordinator coord(parse_scenario(spec_buf));
    DeadlineCell cell;
    cell.deadline = deadline;
    try {
      cell.report = coord.run(PipelineKind::kBklw, parts, cfg);
      cell.cost_ratio = kmeans_cost(data, cell.report.result.centers) / nr_cost;
    } catch (const invariant_error&) {
      // The budget was so tight a round fell below the availability
      // floor; record the cell as infeasible rather than killing the
      // whole sweep (other seeds/shapes may hit this at 0.5 s).
      cell.feasible = false;
    }
    if (!cell.feasible) {
      std::printf("%-10g %12s\n", deadline, "infeasible");
      dcells.push_back(std::move(cell));
      continue;
    }
    const std::uint64_t responders =
        sources - cell.report.sites_dropped;
    std::printf("%-10g %8llu/%-3zu %14.4f %14.4f %9llu %7llu %10llu %10.4f\n",
                deadline, static_cast<unsigned long long>(responders), sources,
                cell.report.completion_seconds,
                cell.report.server_completion_seconds,
                static_cast<unsigned long long>(cell.report.deadline_misses),
                static_cast<unsigned long long>(
                    cell.report.uplink_stats.drops),
                static_cast<unsigned long long>(
                    cell.report.uplink_stats.retransmit_bits),
                cell.cost_ratio);
    dcells.push_back(std::move(cell));
  }
  }  // selected("deadline_sweep")

  // --- realloc sweep: budget conservation under faults. A compute-
  // bound straggler fleet (deadline-fleet shaped) whose slow quarter
  // reports costs in time but blows the summary round, so its sample
  // allocation is at stake every round — swept across frame-loss rates
  // with deadline-aware budget reallocation off (PR 3's renormalize-
  // over-responders) and on (the within-round re-split wave). The
  // column to watch is summary_points: with reallocation on, the
  // server's coreset holds ≈ the full sample budget the scenario paid
  // for, instead of shrinking with every dropped site.
  struct ReallocCell {
    double fault = 0.0;
    bool realloc = false;
    SimReport report;
    double cost_ratio = 0.0;
    bool feasible = true;
  };
  constexpr const char* kReallocBase =
      "radio=5g,sps=1e-3,stragglers=0.25,slowdown=16,deadline=8,"
      "realloc-reserve=0.5,outage=2";
  const std::vector<double> realloc_faults = {0.0, 0.05, 0.2};
  std::vector<ReallocCell> rcells;
  if (selected("realloc_sweep")) {
  std::printf("\nrealloc sweep  scenario=5g+stragglers,deadline=8 pipeline=BKLW\n");
  // "miss_sites" (not "responders"): sites_dropped counts any site with
  // an abandoned frame, including a responder whose wave *supplement*
  // missed while its first-wave coreset stands — so it upper-bounds
  // actual data loss in realloc=on cells (see SimReport::sites_dropped).
  // Likewise the JSON emits "uplink_bits" (not "goodput_bits"): with
  // realloc=on the uplink total includes superseded first-wave coresets
  // the server replaced, so bits are a *cost* column here; the benefit
  // column is summary_points.
  std::printf("%-6s %-8s %12s %14s %9s %7s %10s %10s\n", "fault", "realloc",
              "miss_sites", "summary_pts", "misses", "waves", "retx_bits",
              "cost_ratio");
  for (double fault : realloc_faults) {
    for (int realloc_on = 0; realloc_on <= 1; ++realloc_on) {
      char spec_buf[224];
      std::snprintf(spec_buf, sizeof spec_buf,
                    "%s,loss=%.3f,dropout=%.3f,jitter=%.3f,realloc=%s,seed=%llu",
                    kReallocBase, fault, fault / 2.0, fault / 2.0,
                    realloc_on ? "on" : "off",
                    static_cast<unsigned long long>(seed));
      const Coordinator coord(parse_scenario(spec_buf));
      ReallocCell cell;
      cell.fault = fault;
      cell.realloc = realloc_on != 0;
      try {
        cell.report = coord.run(PipelineKind::kBklw, parts, cfg);
        cell.cost_ratio =
            kmeans_cost(data, cell.report.result.centers) / nr_cost;
      } catch (const invariant_error&) {
        cell.feasible = false;
      }
      if (!cell.feasible) {
        std::printf("%-6.2f %-8s %12s\n", fault, realloc_on ? "on" : "off",
                    "infeasible");
        rcells.push_back(std::move(cell));
        continue;
      }
      std::printf("%-6.2f %-8s %8llu/%-3zu %14zu %9llu %7llu %10llu %10.4f\n",
                  fault, realloc_on ? "on" : "off",
                  static_cast<unsigned long long>(cell.report.sites_dropped),
                  sources, cell.report.result.summary_points,
                  static_cast<unsigned long long>(cell.report.deadline_misses),
                  static_cast<unsigned long long>(cell.report.realloc_waves),
                  static_cast<unsigned long long>(
                      cell.report.uplink_stats.retransmit_bits),
                  cell.cost_ratio);
      rcells.push_back(std::move(cell));
    }
  }
  }  // selected("realloc_sweep")

  // --- overlap sweep: phase-overlap scheduling vs the lock-step
  // barriers. A 3-second-round give-up fleet where 0/1/2 sites sit
  // behind 2 kbps links: their multi-kilobit summaries can never make
  // a round, so they expire at compute-ready time — with overlap off
  // the server still waits every round out; with overlap on the expiry
  // NAK commits each merge barrier at its last final input and the
  // fast sites' next phase starts early. The protocol actions are
  // identical either way (same frames, responders, RNG draws), so the
  // columns to watch are pure timing: server_completion_seconds and
  // completion_seconds. The 0-straggler rows are the control: overlap
  // must change nothing there.
  struct OverlapCell {
    std::size_t slow_sites = 0;
    bool overlap = false;
    SimReport report;
    double cost_ratio = 0.0;
    bool feasible = true;
  };
  constexpr const char* kOverlapBase =
      "radio=wifi,sps=1e-4,deadline=3,retry=giveup,event-log=off";
  std::vector<OverlapCell> ocells;
  if (selected("overlap_sweep")) {
  std::printf("\noverlap sweep  scenario=wifi+2kbps-stragglers,deadline=3 "
              "pipeline=BKLW\n");
  std::printf("%-6s %-8s %14s %12s %14s %12s %9s %7s %10s\n", "slow",
              "overlap", "server_done_s", "cp_bound_s", "completion_s",
              "energy_J", "misses", "suppl", "cost_ratio");
  for (std::size_t slow = 0; slow <= 2; ++slow) {
    for (int overlap_on = 0; overlap_on <= 1; ++overlap_on) {
      std::string spec = kOverlapBase;
      for (std::size_t j = 0; j < slow; ++j) {
        spec += ",site" + std::to_string(j) + ".bandwidth=2000";
      }
      spec += std::string(",overlap=") + (overlap_on ? "on" : "off");
      spec += ",seed=" + std::to_string(seed);
      const Coordinator coord(parse_scenario(spec));
      OverlapCell cell;
      cell.slow_sites = slow;
      cell.overlap = overlap_on != 0;
      try {
        cell.report = coord.run(PipelineKind::kBklw, parts, cfg);
        cell.cost_ratio =
            kmeans_cost(data, cell.report.result.centers) / nr_cost;
      } catch (const invariant_error&) {
        cell.feasible = false;
      }
      if (!cell.feasible) {
        std::printf("%-6zu %-8s %14s\n", slow, overlap_on ? "on" : "off",
                    "infeasible");
        ocells.push_back(std::move(cell));
        continue;
      }
      std::printf("%-6zu %-8s %14.4f %12.4f %14.4f %12.4e %9llu %7llu %10.4f\n",
                  slow, overlap_on ? "on" : "off",
                  cell.report.server_completion_seconds,
                  cell.report.server_critical_path_seconds,
                  cell.report.completion_seconds, cell.report.energy_joules,
                  static_cast<unsigned long long>(cell.report.deadline_misses),
                  static_cast<unsigned long long>(
                      cell.report.supplemental_misses),
                  cell.cost_ratio);
      ocells.push_back(std::move(cell));
    }
  }
  }  // selected("overlap_sweep")

  // --- pipeline sweep: cross-round pipelining vs lock-step rounds on
  // the overlap sweep's straggler shape. The give-up stragglers' frames
  // expire at compute-ready time without keying the radio, so centers,
  // ledgers, and energy are identical pipelined or not; what pipelining
  // changes is when the server *learns*: predicted-arrival NAKs prove
  // the miss at scheduled-send time and round r+1's task graph hangs
  // off round r's committed barrier instead of its cutoff. The column
  // to watch is server_completion_seconds against
  // server_critical_path_seconds — the per-run lower bound (server
  // compute + downlink sends + consumed uplink arrivals only); the
  // pipelined rows should close most of the gap the unpipelined rows
  // leave. The 0-straggler rows are the control: the fleet is
  // fault-free there, so pipelining must change nothing at all.
  struct PipelineCell {
    std::size_t slow_sites = 0;
    bool pipelined = false;
    SimReport report;
    double cost_ratio = 0.0;
    bool feasible = true;
  };
  constexpr const char* kPipelineBase =
      "radio=wifi,sps=1e-4,deadline=3,retry=giveup,event-log=off";
  std::vector<PipelineCell> pcells;
  if (selected("pipeline_sweep")) {
  std::printf("\npipeline sweep  scenario=wifi+2kbps-stragglers,deadline=3 "
              "pipeline=BKLW\n");
  std::printf("%-6s %-9s %14s %12s %14s %12s %9s %10s\n", "slow", "pipeline",
              "server_done_s", "cp_bound_s", "completion_s", "energy_J",
              "misses", "cost_ratio");
  for (std::size_t slow = 0; slow <= 2; ++slow) {
    for (int pipeline_on = 0; pipeline_on <= 1; ++pipeline_on) {
      std::string spec = kPipelineBase;
      for (std::size_t j = 0; j < slow; ++j) {
        spec += ",site" + std::to_string(j) + ".bandwidth=2000";
      }
      spec += std::string(",pipeline=") + (pipeline_on ? "on" : "off");
      spec += ",seed=" + std::to_string(seed);
      const Coordinator coord(parse_scenario(spec));
      PipelineCell cell;
      cell.slow_sites = slow;
      cell.pipelined = pipeline_on != 0;
      try {
        cell.report = coord.run(PipelineKind::kBklw, parts, cfg);
        cell.cost_ratio =
            kmeans_cost(data, cell.report.result.centers) / nr_cost;
      } catch (const invariant_error&) {
        cell.feasible = false;
      }
      if (!cell.feasible) {
        std::printf("%-6zu %-9s %14s\n", slow, pipeline_on ? "on" : "off",
                    "infeasible");
        pcells.push_back(std::move(cell));
        continue;
      }
      std::printf("%-6zu %-9s %14.4f %12.4f %14.4f %12.4e %9llu %10.4f\n",
                  slow, pipeline_on ? "on" : "off",
                  cell.report.server_completion_seconds,
                  cell.report.server_critical_path_seconds,
                  cell.report.completion_seconds, cell.report.energy_joules,
                  static_cast<unsigned long long>(cell.report.deadline_misses),
                  cell.cost_ratio);
      pcells.push_back(std::move(cell));
    }
  }
  }  // selected("pipeline_sweep")

  // --- churn sweep: graceful degradation under deadline pressure. Two
  // of the eight sites ride an 8 kbps trace link, so their full-width
  // summary coresets can never cross inside the round; the rest of the
  // fleet optionally churns (stochastic leave/rejoin). Each (deadline,
  // churn) point runs with quant=fixed — the paper's billing, which
  // loses the slow sites' data to the deadline — and quant=adaptive,
  // which narrows those frames until they fit. The columns to watch:
  // misses and summary_pts (adaptive keeps the slow sites' data in the
  // model) against cost_ratio (the accuracy price of the narrowed
  // coordinates). Orphans/joins/leaves trace the churn process itself —
  // identical across the quant pair, since membership draws come from
  // dedicated streams.
  struct ChurnCell {
    double deadline = 0.0;
    double churn = 0.0;
    bool adaptive = false;
    SimReport report;
    double cost_ratio = 0.0;
    bool feasible = true;
  };
  constexpr const char* kChurnBase =
      "radio=wifi,retry=giveup,event-log=off,"
      "site0.trace=0:8000:0,site1.trace=0:8000:0";
  const std::vector<double> churn_deadlines = {8.0, 5.0};
  const std::vector<double> churn_rates = {0.0, 0.02, 0.05};
  std::vector<ChurnCell> ccells;
  if (selected("churn_sweep")) {
  std::printf("\nchurn sweep  scenario=wifi+8kbps-trace-sites pipeline=BKLW\n");
  std::printf("%-9s %-6s %-9s %8s %8s %6s %6s %12s %10s\n", "deadline",
              "churn", "quant", "misses", "orphans", "joins", "leaves",
              "summary_pts", "cost_ratio");
  for (double deadline : churn_deadlines) {
    for (double churn : churn_rates) {
      for (int adaptive_on = 0; adaptive_on <= 1; ++adaptive_on) {
        char spec_buf[256];
        std::snprintf(spec_buf, sizeof spec_buf,
                      "%s,deadline=%g,churn=%.3f,quant=%s,seed=%llu",
                      kChurnBase, deadline, churn,
                      adaptive_on ? "adaptive" : "fixed",
                      static_cast<unsigned long long>(seed));
        const Coordinator coord(parse_scenario(spec_buf));
        ChurnCell cell;
        cell.deadline = deadline;
        cell.churn = churn;
        cell.adaptive = adaptive_on != 0;
        try {
          cell.report = coord.run(PipelineKind::kBklw, parts, cfg);
          cell.cost_ratio =
              kmeans_cost(data, cell.report.result.centers) / nr_cost;
        } catch (const invariant_error&) {
          // A churn draw can empty a round below the availability
          // floor; record the cell rather than killing the sweep.
          cell.feasible = false;
        }
        if (!cell.feasible) {
          std::printf("%-9g %-6.2f %-9s %8s\n", deadline, churn,
                      adaptive_on ? "adaptive" : "fixed", "infeasible");
          ccells.push_back(std::move(cell));
          continue;
        }
        std::printf("%-9g %-6.2f %-9s %8llu %8llu %6llu %6llu %12zu %10.4f\n",
                    deadline, churn, adaptive_on ? "adaptive" : "fixed",
                    static_cast<unsigned long long>(
                        cell.report.deadline_misses),
                    static_cast<unsigned long long>(
                        cell.report.orphaned_frames),
                    static_cast<unsigned long long>(cell.report.joins),
                    static_cast<unsigned long long>(cell.report.leaves),
                    cell.report.result.summary_points, cell.cost_ratio);
        ccells.push_back(std::move(cell));
      }
    }
  }
  }  // selected("churn_sweep")

  // --- fleet scale sweep: hierarchical aggregation at fleet sizes a
  // star server cannot reasonably fan-in. Four fault-free wifi fleets
  // from 256 to 10240 sites, each run star and as a two-level tree
  // with branching ≈ √sites, on small per-site shards (8 points × 8
  // dims per site) so the cost scales with the protocol, not the data.
  // The columns to watch: server fan-in (tree: gateways; star: sites),
  // server_completion_seconds (time-to-fresh-model — the tree server
  // drains O(branching) frames instead of O(sites)), and the
  // bits-per-level split — level-0 (site uplinks) is identical star vs
  // tree on a fault-free fleet, the gateway→server hop adds level-1
  // on top. queue_high_water gauges the event-queue memory pressure
  // the 10k-site runs exercise (the reservation the simulator makes
  // up front). No cost-ratio column: every cell is fault-free, so the
  // model quality question belongs to the fault sweeps above.
  struct FleetCell {
    std::size_t sites = 0;
    bool tree = false;
    SimReport report;
    bool feasible = true;
  };
  constexpr const char* kFleetBase = "radio=wifi,sps=1e-6,event-log=off";
  const std::vector<std::pair<std::size_t, std::size_t>> fleet_shapes = {
      {256, 16}, {1024, 32}, {4096, 64}, {10240, 128}};
  std::vector<FleetCell> fcells;
  if (selected("fleet_scale_sweep")) {
  std::printf("\nfleet scale sweep  scenario=wifi,fault-free pipeline=BKLW\n");
  std::printf("%-7s %-5s %7s %7s %14s %14s %13s %13s %9s\n", "sites", "topo",
              "branch", "fan_in", "server_done_s", "completion_s", "l0_bits",
              "l1_bits", "queue_hw");
  for (const auto& [fleet_sites, fleet_branching] : fleet_shapes) {
    // Fresh data per fleet size, deterministic in (seed, sites) only —
    // a --only run regenerates exactly what the full run saw.
    GaussianMixtureSpec fleet_spec;
    fleet_spec.n = 8 * fleet_sites;
    fleet_spec.dim = 8;
    fleet_spec.k = 2;
    Rng fleet_data_rng = make_rng(seed, 0xf1ee70000ULL + fleet_sites);
    const Dataset fleet_data = make_gaussian_mixture(fleet_spec, fleet_data_rng);
    Rng fleet_part_rng = make_rng(seed, 0x9a870000ULL + fleet_sites);
    const std::vector<Dataset> fleet_parts =
        partition_random(fleet_data, fleet_sites, fleet_part_rng);
    PipelineConfig fleet_cfg;
    fleet_cfg.k = 2;
    fleet_cfg.epsilon = 0.3;
    fleet_cfg.seed = seed;
    fleet_cfg.coreset_size = 2 * fleet_sites;
    fleet_cfg.pca_dim = 4;
    for (int tree_on = 0; tree_on <= 1; ++tree_on) {
      char spec_buf[160];
      if (tree_on != 0) {
        std::snprintf(spec_buf, sizeof spec_buf,
                      "%s,topology=tree,branching=%zu,seed=%llu", kFleetBase,
                      fleet_branching, static_cast<unsigned long long>(seed));
      } else {
        std::snprintf(spec_buf, sizeof spec_buf, "%s,seed=%llu", kFleetBase,
                      static_cast<unsigned long long>(seed));
      }
      const Coordinator coord(parse_scenario(spec_buf));
      FleetCell cell;
      cell.sites = fleet_sites;
      cell.tree = tree_on != 0;
      try {
        cell.report = coord.run(PipelineKind::kBklw, fleet_parts, fleet_cfg);
      } catch (const invariant_error&) {
        cell.feasible = false;
      }
      if (!cell.feasible) {
        std::printf("%-7zu %-5s %7s\n", fleet_sites,
                    tree_on != 0 ? "tree" : "star", "infeasible");
        fcells.push_back(std::move(cell));
        continue;
      }
      std::printf(
          "%-7zu %-5s %7llu %7llu %14.4f %14.4f %13llu %13llu %9llu\n",
          fleet_sites, tree_on != 0 ? "tree" : "star",
          static_cast<unsigned long long>(cell.report.branching),
          static_cast<unsigned long long>(cell.report.server_fan_in),
          cell.report.server_completion_seconds,
          cell.report.completion_seconds,
          static_cast<unsigned long long>(cell.report.result.uplink.bits),
          static_cast<unsigned long long>(cell.report.gateway_uplink_bits),
          static_cast<unsigned long long>(cell.report.queue_high_water));
      fcells.push_back(std::move(cell));
    }
  }
  }  // selected("fleet_scale_sweep")

  // --- attribution: the causal-replay audit over the overlap and
  // pipeline grids. Every (slow × knob × on/off) cell of the two timing
  // sweeps is re-run with its own flight recorder attached, the
  // recorded server-clock op stream is replayed (src/obs/attribution),
  // and the cell reports whether the replayed critical path reproduces
  // the run's server_critical_path_seconds BIT FOR BIT (`cp_match`) —
  // plus where the server's completion time went, per blame category.
  // Each cell builds its own Coordinator and Recorder, so the section
  // is bitwise independent of which other sections ran (the splice
  // contract), and recording never changes a reported number (the
  // recorder contract) — the runs here ARE the overlap_sweep /
  // pipeline_sweep runs, re-observed.
  struct AttrCell {
    std::size_t slow_sites = 0;
    const char* knob = "overlap";
    bool on = false;
    bool feasible = true;
    bool cp_match = false;
    RunAttribution attribution;
    SimReport report;
  };
  constexpr const char* kAttrBase =
      "radio=wifi,sps=1e-4,deadline=3,retry=giveup,event-log=off";
  std::vector<AttrCell> acells;
  if (selected("attribution")) {
  std::printf("\nattribution  scenario=wifi+2kbps-stragglers,deadline=3 "
              "pipeline=BKLW\n");
  std::printf("%-6s %-9s %-4s %9s %12s %14s %12s %12s %12s\n", "slow", "knob",
              "on", "cp_match", "cp_s", "server_done_s", "site_cmp_s",
              "airtime_s", "dl_wait_s");
  for (const char* knob : {"overlap", "pipeline"}) {
    for (std::size_t slow = 0; slow <= 2; ++slow) {
      for (int knob_on = 0; knob_on <= 1; ++knob_on) {
        std::string spec = kAttrBase;
        for (std::size_t j = 0; j < slow; ++j) {
          spec += ",site" + std::to_string(j) + ".bandwidth=2000";
        }
        spec += std::string(",") + knob + "=" + (knob_on ? "on" : "off");
        spec += ",seed=" + std::to_string(seed);
        const Coordinator coord(parse_scenario(spec));
        AttrCell cell;
        cell.slow_sites = slow;
        cell.knob = knob;
        cell.on = knob_on != 0;
        Recorder cell_recorder;
        PipelineConfig attr_cfg = cfg;
        attr_cfg.recorder = &cell_recorder;
        try {
          cell.report = coord.run(PipelineKind::kBklw, parts, attr_cfg);
        } catch (const invariant_error&) {
          cell.feasible = false;
        }
        if (!cell.feasible) {
          std::printf("%-6zu %-9s %-4s %9s\n", slow, knob,
                      knob_on ? "on" : "off", "infeasible");
          acells.push_back(std::move(cell));
          continue;
        }
        cell.attribution = attribute_run(cell_recorder);
        cell.cp_match = cell.attribution.valid &&
                        cell.attribution.critical_path_s ==
                            cell.report.server_critical_path_seconds;
        const double* blame = cell.attribution.blame_total;
        std::printf(
            "%-6zu %-9s %-4s %9s %12.4f %14.4f %12.4f %12.4f %12.4f\n", slow,
            knob, knob_on ? "on" : "off", cell.cp_match ? "yes" : "NO",
            cell.attribution.critical_path_s,
            cell.attribution.server_completion_s,
            blame[static_cast<std::size_t>(BlameCategory::kSiteCompute)],
            blame[static_cast<std::size_t>(BlameCategory::kUplinkAirtime)],
            blame[static_cast<std::size_t>(BlameCategory::kDeadlineWait)]);
        acells.push_back(std::move(cell));
      }
    }
  }
  }  // selected("attribution")

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"sim_scenarios\",\n");
    bench::write_provenance(f, meta, "  ");
    // Sections are emitted in a fixed order; each selected one opens
    // with ",\n" after the headerless nr_cost line, so a --only run
    // stays valid JSON and a full run is byte-stable section by
    // section (what tools/run_bench.sh's splice relies on).
    std::fprintf(f,
                 "  \"pipeline\": \"bklw\",\n"
                 "  \"n\": %zu, \"d\": %zu, \"k\": %zu, \"sources\": %zu,\n"
                 "  \"seed\": %llu,\n"
                 "  \"nr_cost\": %.17g",
                 n, d, k, sources, static_cast<unsigned long long>(seed),
                 nr_cost);
    if (selected("cells")) {
    std::fprintf(f, ",\n  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      const LinkStats& up = c.report.uplink_stats;
      std::fprintf(
          f,
          "    {\"radio\": \"%s\", \"fault_rate\": %.3f,\n"
          "     \"completion_seconds\": %.17g, \"energy_joules\": %.17g,\n"
          "     \"goodput_bits\": %llu, \"goodput_scalars\": %llu,\n"
          "     \"retransmit_bits\": %llu, \"attempts\": %llu, \"drops\": %llu,\n"
          "     \"uplink_airtime_seconds\": %.17g, \"events\": %zu,\n"
          "     \"cost_ratio_vs_nr\": %.17g}%s\n",
          c.radio.c_str(), c.fault, c.report.completion_seconds,
          c.report.energy_joules,
          static_cast<unsigned long long>(c.report.result.uplink.bits),
          static_cast<unsigned long long>(c.report.result.uplink.scalars),
          static_cast<unsigned long long>(up.retransmit_bits),
          static_cast<unsigned long long>(up.attempts),
          static_cast<unsigned long long>(up.drops), up.airtime_s,
          c.report.event_log.size(), c.cost_ratio,
          i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]");
    }  // selected("cells")
    if (selected("deadline_sweep")) {
    std::fprintf(f,
                 ",\n"
                 "  \"deadline_sweep\": {\n"
                 "    \"scenario\": \"%s\",\n"
                 "    \"pipeline\": \"bklw\",\n"
                 "    \"cells\": [\n",
                 kSweepBase);
    for (std::size_t i = 0; i < dcells.size(); ++i) {
      const DeadlineCell& c = dcells[i];
      const LinkStats& up = c.report.uplink_stats;
      // JSON has no Infinity literal; the unbounded round is deadline 0.
      const double deadline_field = std::isfinite(c.deadline) ? c.deadline : 0.0;
      if (!c.feasible) {
        std::fprintf(f,
                     "      {\"deadline_seconds\": %.17g, \"unbounded\": false,"
                     " \"feasible\": false}%s\n",
                     deadline_field, i + 1 < dcells.size() ? "," : "");
        continue;
      }
      std::fprintf(
          f,
          "      {\"deadline_seconds\": %.17g, \"unbounded\": %s,\n"
          "       \"feasible\": true,\n"
          "       \"responders\": %llu, \"sources\": %zu,\n"
          "       \"deadline_misses\": %llu, \"rounds\": %llu,\n"
          "       \"completion_seconds\": %.17g,\n"
          "       \"server_completion_seconds\": %.17g,\n"
          "       \"energy_joules\": %.17g,\n"
          "       \"goodput_bits\": %llu, \"retransmit_bits\": %llu,\n"
          "       \"attempts\": %llu, \"drops\": %llu, \"expired\": %llu,\n"
          "       \"cost_ratio_vs_nr\": %.17g}%s\n",
          deadline_field, std::isfinite(c.deadline) ? "false" : "true",
          static_cast<unsigned long long>(sources - c.report.sites_dropped),
          sources,
          static_cast<unsigned long long>(c.report.deadline_misses),
          static_cast<unsigned long long>(c.report.rounds),
          c.report.completion_seconds, c.report.server_completion_seconds,
          c.report.energy_joules,
          static_cast<unsigned long long>(c.report.result.uplink.bits),
          static_cast<unsigned long long>(up.retransmit_bits),
          static_cast<unsigned long long>(up.attempts),
          static_cast<unsigned long long>(up.drops),
          static_cast<unsigned long long>(up.expired),
          c.cost_ratio, i + 1 < dcells.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }");
    }  // selected("deadline_sweep")
    if (selected("realloc_sweep")) {
    std::fprintf(f,
                 ",\n"
                 "  \"realloc_sweep\": {\n"
                 "    \"scenario\": \"%s\",\n"
                 "    \"pipeline\": \"bklw\",\n"
                 "    \"cells\": [\n",
                 kReallocBase);
    for (std::size_t i = 0; i < rcells.size(); ++i) {
      const ReallocCell& c = rcells[i];
      if (!c.feasible) {
        std::fprintf(f,
                     "      {\"fault_rate\": %.3f, \"realloc\": %s,"
                     " \"feasible\": false}%s\n",
                     c.fault, c.realloc ? "true" : "false",
                     i + 1 < rcells.size() ? "," : "");
        continue;
      }
      std::fprintf(
          f,
          "      {\"fault_rate\": %.3f, \"realloc\": %s, \"feasible\": true,\n"
          "       \"sites_with_misses\": %llu, \"sources\": %zu,\n"
          "       \"summary_points\": %zu, \"realloc_waves\": %llu,\n"
          "       \"deadline_misses\": %llu, \"rounds\": %llu,\n"
          "       \"completion_seconds\": %.17g,\n"
          "       \"server_completion_seconds\": %.17g,\n"
          "       \"uplink_bits\": %llu, \"retransmit_bits\": %llu,\n"
          "       \"cost_ratio_vs_nr\": %.17g}%s\n",
          c.fault, c.realloc ? "true" : "false",
          static_cast<unsigned long long>(c.report.sites_dropped),
          sources, c.report.result.summary_points,
          static_cast<unsigned long long>(c.report.realloc_waves),
          static_cast<unsigned long long>(c.report.deadline_misses),
          static_cast<unsigned long long>(c.report.rounds),
          c.report.completion_seconds, c.report.server_completion_seconds,
          static_cast<unsigned long long>(c.report.result.uplink.bits),
          static_cast<unsigned long long>(
              c.report.uplink_stats.retransmit_bits),
          c.cost_ratio, i + 1 < rcells.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }");
    }  // selected("realloc_sweep")
    if (selected("overlap_sweep")) {
    std::fprintf(f,
                 ",\n"
                 "  \"overlap_sweep\": {\n"
                 "    \"scenario\": \"%s\",\n"
                 "    \"pipeline\": \"bklw\",\n"
                 "    \"straggler_bandwidth_bps\": 2000,\n"
                 "    \"cells\": [\n",
                 kOverlapBase);
    for (std::size_t i = 0; i < ocells.size(); ++i) {
      const OverlapCell& c = ocells[i];
      if (!c.feasible) {
        std::fprintf(f,
                     "      {\"slow_sites\": %zu, \"overlap\": %s,"
                     " \"feasible\": false}%s\n",
                     c.slow_sites, c.overlap ? "true" : "false",
                     i + 1 < ocells.size() ? "," : "");
        continue;
      }
      std::fprintf(
          f,
          "      {\"slow_sites\": %zu, \"overlap\": %s, \"feasible\": true,\n"
          "       \"server_completion_seconds\": %.17g,\n"
          "       \"server_critical_path_seconds\": %.17g,\n"
          "       \"completion_seconds\": %.17g,\n"
          "       \"energy_joules\": %.17g,\n"
          "       \"deadline_misses\": %llu, \"supplemental_misses\": %llu,\n"
          "       \"sites_dropped\": %llu, \"sites_data_dropped\": %llu,\n"
          "       \"rounds\": %llu, \"events\": %zu,\n"
          "       \"cost_ratio_vs_nr\": %.17g}%s\n",
          c.slow_sites, c.overlap ? "true" : "false",
          c.report.server_completion_seconds,
          c.report.server_critical_path_seconds, c.report.completion_seconds,
          c.report.energy_joules,
          static_cast<unsigned long long>(c.report.deadline_misses),
          static_cast<unsigned long long>(c.report.supplemental_misses),
          static_cast<unsigned long long>(c.report.sites_dropped),
          static_cast<unsigned long long>(c.report.sites_data_dropped),
          static_cast<unsigned long long>(c.report.rounds),
          c.report.event_log.size(), c.cost_ratio,
          i + 1 < ocells.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }");
    }  // selected("overlap_sweep")
    if (selected("pipeline_sweep")) {
    std::fprintf(f,
                 ",\n"
                 "  \"pipeline_sweep\": {\n"
                 "    \"scenario\": \"%s\",\n"
                 "    \"pipeline\": \"bklw\",\n"
                 "    \"straggler_bandwidth_bps\": 2000,\n"
                 "    \"cells\": [\n",
                 kPipelineBase);
    for (std::size_t i = 0; i < pcells.size(); ++i) {
      const PipelineCell& c = pcells[i];
      if (!c.feasible) {
        std::fprintf(f,
                     "      {\"slow_sites\": %zu, \"pipelined\": %s,"
                     " \"feasible\": false}%s\n",
                     c.slow_sites, c.pipelined ? "true" : "false",
                     i + 1 < pcells.size() ? "," : "");
        continue;
      }
      std::fprintf(
          f,
          "      {\"slow_sites\": %zu, \"pipelined\": %s, \"feasible\": true,\n"
          "       \"server_completion_seconds\": %.17g,\n"
          "       \"server_critical_path_seconds\": %.17g,\n"
          "       \"completion_seconds\": %.17g,\n"
          "       \"energy_joules\": %.17g,\n"
          "       \"deadline_misses\": %llu, \"sites_dropped\": %llu,\n"
          "       \"rounds\": %llu,\n"
          "       \"cost_ratio_vs_nr\": %.17g}%s\n",
          c.slow_sites, c.pipelined ? "true" : "false",
          c.report.server_completion_seconds,
          c.report.server_critical_path_seconds, c.report.completion_seconds,
          c.report.energy_joules,
          static_cast<unsigned long long>(c.report.deadline_misses),
          static_cast<unsigned long long>(c.report.sites_dropped),
          static_cast<unsigned long long>(c.report.rounds),
          c.cost_ratio, i + 1 < pcells.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }");
    }  // selected("pipeline_sweep")
    if (selected("churn_sweep")) {
    std::fprintf(f,
                 ",\n"
                 "  \"churn_sweep\": {\n"
                 "    \"scenario\": \"%s\",\n"
                 "    \"pipeline\": \"bklw\",\n"
                 "    \"trace_bandwidth_bps\": 8000,\n"
                 "    \"cells\": [\n",
                 kChurnBase);
    for (std::size_t i = 0; i < ccells.size(); ++i) {
      const ChurnCell& c = ccells[i];
      if (!c.feasible) {
        std::fprintf(f,
                     "      {\"deadline_seconds\": %.17g, \"churn_rate\": %.3f,"
                     " \"adaptive_quant\": %s, \"feasible\": false}%s\n",
                     c.deadline, c.churn, c.adaptive ? "true" : "false",
                     i + 1 < ccells.size() ? "," : "");
        continue;
      }
      std::fprintf(
          f,
          "      {\"deadline_seconds\": %.17g, \"churn_rate\": %.3f,\n"
          "       \"adaptive_quant\": %s, \"feasible\": true,\n"
          "       \"deadline_misses\": %llu, \"orphaned_frames\": %llu,\n"
          "       \"joins\": %llu, \"leaves\": %llu,\n"
          "       \"summary_points\": %zu, \"sites_dropped\": %llu,\n"
          "       \"rounds\": %llu, \"uplink_bits\": %llu,\n"
          "       \"completion_seconds\": %.17g,\n"
          "       \"server_completion_seconds\": %.17g,\n"
          "       \"energy_joules\": %.17g,\n"
          "       \"cost_ratio_vs_nr\": %.17g}%s\n",
          c.deadline, c.churn, c.adaptive ? "true" : "false",
          static_cast<unsigned long long>(c.report.deadline_misses),
          static_cast<unsigned long long>(c.report.orphaned_frames),
          static_cast<unsigned long long>(c.report.joins),
          static_cast<unsigned long long>(c.report.leaves),
          c.report.result.summary_points,
          static_cast<unsigned long long>(c.report.sites_dropped),
          static_cast<unsigned long long>(c.report.rounds),
          static_cast<unsigned long long>(c.report.result.uplink.bits),
          c.report.completion_seconds, c.report.server_completion_seconds,
          c.report.energy_joules, c.cost_ratio,
          i + 1 < ccells.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }");
    }  // selected("churn_sweep")
    if (selected("fleet_scale_sweep")) {
    std::fprintf(f,
                 ",\n"
                 "  \"fleet_scale_sweep\": {\n"
                 "    \"scenario\": \"%s\",\n"
                 "    \"pipeline\": \"bklw\",\n"
                 "    \"per_site_points\": 8, \"dim\": 8, \"k\": 2,\n"
                 "    \"cells\": [\n",
                 kFleetBase);
    for (std::size_t i = 0; i < fcells.size(); ++i) {
      const FleetCell& c = fcells[i];
      if (!c.feasible) {
        std::fprintf(f,
                     "      {\"sites\": %zu, \"topology\": \"%s\","
                     " \"feasible\": false}%s\n",
                     c.sites, c.tree ? "tree" : "star",
                     i + 1 < fcells.size() ? "," : "");
        continue;
      }
      std::fprintf(
          f,
          "      {\"sites\": %zu, \"topology\": \"%s\", \"feasible\": true,\n"
          "       \"branching\": %llu, \"gateways\": %llu,\n"
          "       \"server_fan_in\": %llu,\n"
          "       \"server_completion_seconds\": %.17g,\n"
          "       \"completion_seconds\": %.17g,\n"
          "       \"level0_uplink_bits\": %llu,\n"
          "       \"level1_uplink_bits\": %llu,\n"
          "       \"queue_high_water\": %llu,\n"
          "       \"summary_points\": %zu, \"rounds\": %llu,\n"
          "       \"energy_joules\": %.17g}%s\n",
          c.sites, c.tree ? "tree" : "star",
          static_cast<unsigned long long>(c.report.branching),
          static_cast<unsigned long long>(c.report.gateways),
          static_cast<unsigned long long>(c.report.server_fan_in),
          c.report.server_completion_seconds, c.report.completion_seconds,
          static_cast<unsigned long long>(c.report.result.uplink.bits),
          static_cast<unsigned long long>(c.report.gateway_uplink_bits),
          static_cast<unsigned long long>(c.report.queue_high_water),
          c.report.result.summary_points,
          static_cast<unsigned long long>(c.report.rounds),
          c.report.energy_joules, i + 1 < fcells.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }");
    }  // selected("fleet_scale_sweep")
    if (selected("attribution")) {
    std::fprintf(f,
                 ",\n"
                 "  \"attribution\": {\n"
                 "    \"scenario\": \"%s\",\n"
                 "    \"pipeline\": \"bklw\",\n"
                 "    \"straggler_bandwidth_bps\": 2000,\n"
                 "    \"cells\": [\n",
                 kAttrBase);
    for (std::size_t i = 0; i < acells.size(); ++i) {
      const AttrCell& c = acells[i];
      if (!c.feasible) {
        std::fprintf(f,
                     "      {\"slow_sites\": %zu, \"knob\": \"%s\","
                     " \"on\": %s, \"feasible\": false}%s\n",
                     c.slow_sites, c.knob, c.on ? "true" : "false",
                     i + 1 < acells.size() ? "," : "");
        continue;
      }
      std::fprintf(
          f,
          "      {\"slow_sites\": %zu, \"knob\": \"%s\", \"on\": %s,\n"
          "       \"feasible\": true, \"critical_path_matches\": %s,\n"
          "       \"critical_path_seconds\": %.17g,\n"
          "       \"reported_server_critical_path_seconds\": %.17g,\n"
          "       \"server_completion_seconds\": %.17g,\n"
          "       \"blame\": {",
          c.slow_sites, c.knob, c.on ? "true" : "false",
          c.cp_match ? "true" : "false", c.attribution.critical_path_s,
          c.report.server_critical_path_seconds,
          c.attribution.server_completion_s);
      for (std::size_t b = 0; b < kBlameCategoryCount; ++b) {
        std::fprintf(f, "%s\"%s\": %.17g", b == 0 ? "" : ", ",
                     blame_category_name(static_cast<BlameCategory>(b)),
                     c.attribution.blame_total[b]);
      }
      std::fprintf(f, "}}%s\n", i + 1 < acells.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }");
    }  // selected("attribution")
    std::fprintf(f, "\n}\n");
    std::fclose(f);
  }

  install_recorder(nullptr);
  if (!trace_path.empty() && !write_chrome_trace(recorder, trace_path)) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return 1;
  }
  if (!metrics_path.empty() &&
      !write_metrics_jsonl(recorder, metrics_path)) {
    std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
    return 1;
  }
  return 0;
}
