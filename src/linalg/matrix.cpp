#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <random>
#include <thread>
#include <vector>

namespace ekm {
namespace {

// Deterministic row-sliced parallel for: each worker owns a contiguous
// range of output rows, so every output cell is computed by exactly one
// thread with the same accumulation order as the serial loop.
void parallel_rows(std::size_t rows, std::size_t flops_per_row,
                   const std::function<void(std::size_t, std::size_t)>& body) {
  constexpr std::size_t kSerialFlops = 4u << 20;  // ~4 MFLOP: not worth threads
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t total = rows * std::max<std::size_t>(flops_per_row, 1);
  if (hw == 1 || total < kSerialFlops) {
    body(0, rows);
    return;
  }
  const std::size_t workers =
      std::min<std::size_t>({hw, rows, 1 + total / kSerialFlops});
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (rows + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(rows, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&, begin, end] { body(begin, end); });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    EKM_EXPECTS_MSG(r.size() == cols_, "ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::gaussian(std::size_t rows, std::size_t cols, Rng& rng,
                        double stddev) {
  Matrix m(rows, cols);
  std::normal_distribution<double> dist(0.0, stddev);
  for (double& v : m.data_) v = dist(rng);
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

Matrix Matrix::first_cols(std::size_t c) const {
  EKM_EXPECTS(c <= cols_);
  Matrix m(rows_, c);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* src = data_.data() + i * cols_;
    double* dst = m.data_.data() + i * c;
    for (std::size_t j = 0; j < c; ++j) dst[j] = src[j];
  }
  return m;
}

Matrix Matrix::row_range(std::size_t r0, std::size_t r1) const {
  EKM_EXPECTS(r0 <= r1 && r1 <= rows_);
  Matrix m(r1 - r0, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(r0 * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(r1 * cols_),
            m.data_.begin());
  return m;
}

void Matrix::append_rows(const Matrix& other) {
  if (empty() && rows_ == 0) {
    *this = other;
    return;
  }
  EKM_EXPECTS_MSG(other.cols_ == cols_, "column mismatch in append_rows");
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

void Matrix::scale(double s) {
  for (double& v : data_) v *= s;
}

double Matrix::frobenius_norm() const {
  double ss = 0.0;
  for (double v : data_) ss += v * v;
  return std::sqrt(ss);
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  EKM_EXPECTS_MSG(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix c(a.rows(), b.cols());
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  parallel_rows(n, 2 * k * m, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      std::span<double> ci = c.row(i);
      std::span<const double> ai = a.row(i);
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = ai[p];
        if (aip == 0.0) continue;
        std::span<const double> bp = b.row(p);
        for (std::size_t j = 0; j < m; ++j) ci[j] += aip * bp[j];
      }
    }
  });
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  EKM_EXPECTS_MSG(a.rows() == b.rows(), "matmul_at_b shape mismatch");
  Matrix c(a.cols(), b.cols());
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  // Partition by OUTPUT rows so each cell keeps the serial accumulation
  // order (p ascending) — results are bit-identical to the serial loop.
  parallel_rows(k, 2 * n * m, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t p = 0; p < n; ++p) {
      std::span<const double> ap = a.row(p);
      std::span<const double> bp = b.row(p);
      for (std::size_t i = r0; i < r1; ++i) {
        const double api = ap[i];
        if (api == 0.0) continue;
        std::span<double> ci = c.row(i);
        for (std::size_t j = 0; j < m; ++j) ci[j] += api * bp[j];
      }
    }
  });
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  EKM_EXPECTS_MSG(a.cols() == b.cols(), "matmul_a_bt shape mismatch");
  Matrix c(a.rows(), b.rows());
  parallel_rows(a.rows(), 2 * a.cols() * b.rows(),
                [&](std::size_t r0, std::size_t r1) {
                  for (std::size_t i = r0; i < r1; ++i) {
                    for (std::size_t j = 0; j < b.rows(); ++j) {
                      c(i, j) = dot(a.row(i), b.row(j));
                    }
                  }
                });
  return c;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  EKM_EXPECTS_MSG(a.cols() == x.size(), "matvec shape mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = dot(a.row(i), x);
  return y;
}

Matrix add(const Matrix& a, const Matrix& b) {
  EKM_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c = a;
  auto cf = c.flat();
  auto bf = b.flat();
  for (std::size_t i = 0; i < cf.size(); ++i) cf[i] += bf[i];
  return c;
}

Matrix subtract(const Matrix& a, const Matrix& b) {
  EKM_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c = a;
  auto cf = c.flat();
  auto bf = b.flat();
  for (std::size_t i = 0; i < cf.size(); ++i) cf[i] -= bf[i];
  return c;
}

double dot(std::span<const double> a, std::span<const double> b) {
  EKM_EXPECTS(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  EKM_EXPECTS(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double norm2(std::span<const double> a) {
  double s = 0.0;
  for (double v : a) s += v * v;
  return std::sqrt(s);
}

}  // namespace ekm
