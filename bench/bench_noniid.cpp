// Extension experiment: robustness of the distributed algorithms to
// non-IID sharding.
//
// The paper partitions each dataset uniformly at random across the m = 10
// sources (§7.1) — the friendliest case for disSS, whose step 2 allocates
// the sample budget proportionally to local bicriteria costs. Real edge
// fleets are label-skewed: each device sees mostly its own modes. This
// bench sweeps the Dirichlet concentration alpha from near-IID (alpha =
// 100) to almost-pure shards (alpha = 0.05) and reports the normalized
// cost and communication of BKLW and JL+BKLW, answering: does the paper's
// pipeline survive the sharding it did not evaluate?
//
// Expected shape: costs stay near 1 for all alpha — cost-proportional
// allocation adapts (a source holding one tight cluster reports a tiny
// cost and receives few samples, which is the right thing) — while the
// *variance* across Monte-Carlo runs widens as alpha shrinks.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/lloyd.hpp"

using namespace ekm;
using namespace ekm::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const int mc = args.monte_carlo > 0 ? args.monte_carlo : 5;
  const Dataset data = mnist_dataset(args, /*n_fast=*/3000);

  KMeansOptions base_opts;
  base_opts.k = 2;
  base_opts.restarts = 10;
  base_opts.seed = 77;
  const double baseline = kmeans(data, base_opts).cost;

  PipelineConfig cfg;
  cfg.k = 2;
  cfg.epsilon = 0.3;
  cfg.coreset_size = 300;
  cfg.jl_dim = 96;
  cfg.pca_dim = 20;

  std::printf("# non-IID sharding sweep: n=%zu d=%zu m=10 k=2, %d MC runs\n",
              data.size(), data.dim(), mc);
  std::printf("%-8s %-10s %12s %12s %12s\n", "alpha", "algorithm", "cost-mean",
              "cost-max", "comm(bits)");
  for (double alpha : {100.0, 1.0, 0.2, 0.05}) {
    for (PipelineKind kind : {PipelineKind::kBklw, PipelineKind::kJlBklw}) {
      std::vector<double> costs;
      std::vector<double> comm;
      for (int r = 0; r < mc; ++r) {
        Rng prng = make_rng(args.seed, 1000 + static_cast<std::uint64_t>(r));
        const std::vector<Dataset> parts =
            partition_noniid(data, 10, alpha, /*skew_clusters=*/8, prng);
        PipelineConfig run_cfg = cfg;
        run_cfg.seed = derive_seed(args.seed, static_cast<std::uint64_t>(r));
        const PipelineResult res =
            run_distributed_pipeline(kind, parts, run_cfg);
        costs.push_back(kmeans_cost(data, res.centers) / baseline);
        comm.push_back(static_cast<double>(res.uplink.bits) /
                       (static_cast<double>(data.scalar_count()) * 64.0));
      }
      const Summary c = summarize(costs);
      std::printf("%-8.2f %-10s %12.4f %12.4f %12.3e\n", alpha,
                  pipeline_name(kind), c.mean, c.max, summarize(comm).mean);
    }
  }
  return 0;
}
