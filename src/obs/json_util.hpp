// Shared JSON string escaping for every observability writer.
//
// The trace exporter, the metrics registry, and the attribution writer
// all serialize strings that originate outside their control: span
// labels carry scenario specs (PR 6's `site0.trace=0:8000:0.05` is
// already one `"` away from breaking a writer), and --meta values on
// the bench come straight from the shell. PR 7 gave each writer its
// own policy — trace_export kept a private escape loop that pushed a
// (signed) `char` through the `%04x` varargs promotion and spelled
// the common control characters as u-escapes instead of the short
// forms, while metrics.cpp skipped escaping entirely on the grounds
// that metric names are dotted identifiers. This header is the single
// implementation both now use, so the next writer cannot re-introduce
// either shortcut.
//
// Escaping follows RFC 8259 minimally: the two mandatory escapes
// (`"`, `\`), the short forms for the common control characters, and
// `\u00XX` for the rest of C0. Bytes >= 0x20 pass through untouched,
// so UTF-8 multi-byte sequences survive verbatim.
#pragma once

#include <cstdio>
#include <string>

namespace ekm {

[[nodiscard]] inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          // The cast matters: a bare `char` is signed on most ABIs, and
          // handing a negative byte to `%x` through the varargs
          // promotion is undefined behavior.
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ekm
