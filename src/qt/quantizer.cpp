#include "qt/quantizer.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ekm {

RoundingQuantizer::RoundingQuantizer(int significant_bits)
    : s_(std::clamp(significant_bits, 1, kDoubleSignificandBits)) {}

double RoundingQuantizer::quantize(double x) const noexcept {
  if (s_ >= kDoubleSignificandBits) return x;
  if (x == 0.0 || !std::isfinite(x)) return x;

  auto bits = std::bit_cast<std::uint64_t>(x);
  const int drop = kDoubleSignificandBits - s_;  // low bits to clear
  const std::uint64_t half = std::uint64_t{1} << (drop - 1);
  const std::uint64_t mask = ~((std::uint64_t{1} << drop) - 1);
  // Round-half-away-from-zero on the magnitude: the sign bit is untouched
  // because adding `half` can only carry into the exponent field, which
  // is exactly the "rounding up crosses a binade" case of eq. (13).
  bits = (bits + half) & mask;
  return std::bit_cast<double>(bits);
}

Matrix RoundingQuantizer::quantize(const Matrix& m) const {
  Matrix out = m;
  for (double& v : out.flat()) v = quantize(v);
  return out;
}

Dataset RoundingQuantizer::quantize(const Dataset& data) const {
  Matrix pts = quantize(data.points());
  return data.is_weighted() ? Dataset(std::move(pts), *data.weights())
                            : Dataset(std::move(pts));
}

double RoundingQuantizer::max_error_bound(double max_point_norm) const noexcept {
  return std::ldexp(max_point_norm, -s_);  // 2^{-s} * max ||p||
}

double measured_quantization_error(const Dataset& original,
                                   const Dataset& quantized) {
  EKM_EXPECTS(original.size() == quantized.size());
  EKM_EXPECTS(original.dim() == quantized.dim());
  double worst = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    worst = std::max(
        worst, squared_distance(original.point(i), quantized.point(i)));
  }
  return std::sqrt(worst);
}

}  // namespace ekm
