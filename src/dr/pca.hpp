// PCA-based dimensionality reduction (§2 "feature extraction", and the
// intrinsic-dimension reduction step of FSS / disPCA).
//
// Two flavours are needed by the paper's algorithms:
//  * `pca_map` — a LinearMap onto the top-t right singular vectors
//    (coordinates in R^t); transmitting its output requires also
//    transmitting the basis, which is what makes FSS's communication cost
//    linear in d (Theorem 4.1).
//  * `pca_project_within` — Ā = A V_t V_t^T: points stay in R^d but lie
//    in the t-dimensional principal subspace (the form used in Theorem
//    5.1 and in FSS's intrinsic-dimension reduction), together with the
//    squared projection residual that becomes the coreset's Δ term.
#pragma once

#include <cstddef>

#include "data/dataset.hpp"
#include "dr/linear_map.hpp"
#include "linalg/svd.hpp"

namespace ekm {

/// Result of projecting a dataset onto its top-t principal subspace.
struct PcaProjection {
  LinearMap map;          ///< Π = V_t (d x t); coords = A V_t
  Dataset coords;         ///< points in R^t (weights preserved)
  double residual_sq = 0; ///< ||A - A V_t V_t^T||_F^2 = Σ_{j>t} σ_j² — the Δ
                          ///< constant of Definition 3.2 / Theorem 5.1
};

/// Exact PCA via thin SVD. `t` is clamped to min(n, d). O(nd min(n, d)).
[[nodiscard]] PcaProjection pca_project(const Dataset& data, std::size_t t);

/// Ā = A V_t V_t^T in the ambient space (rows still d-dimensional).
[[nodiscard]] Dataset pca_project_within(const PcaProjection& pca);

/// FSS/disPCA intrinsic dimension t1 = t2 = k + ceil(4k/ε²) - 1
/// (Theorem 5.1), clamped to the data's rank bound.
[[nodiscard]] std::size_t fss_intrinsic_dim(std::size_t k, double epsilon,
                                            std::size_t n, std::size_t d);

}  // namespace ekm
