// Exact 1-D k-means by dynamic programming (Wang & Song, R Journal 2011
// style, O(k n²) with prefix sums). One-dimensional projections appear
// throughout the paper's substrate (e.g. sanity checks for coresets and
// quantizers), and an exact polynomial-time oracle in 1-D is invaluable
// for testing the heuristic solvers: the general problem is NP-hard
// (§1 of the paper, refs [8][9]) but the line is easy.
#pragma once

#include <span>
#include <vector>

#include "kmeans/lloyd.hpp"

namespace ekm {

/// Exact optimal k-means of weighted scalars. Returns optimal centers
/// (ascending), the optimal cost, and the assignment (by sorted order of
/// the input: contiguous clusters). O(k n²) time, O(k n) memory.
[[nodiscard]] KMeansResult kmeans_1d_exact(std::span<const double> values,
                                           std::span<const double> weights,
                                           std::size_t k);

/// Unweighted convenience overload.
[[nodiscard]] KMeansResult kmeans_1d_exact(std::span<const double> values,
                                           std::size_t k);

}  // namespace ekm
