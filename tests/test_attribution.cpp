// Tests for src/obs/attribution: the causal replay must reproduce the
// simulator's server clocks BIT FOR BIT — the attribution engine's one
// hard claim — across the bench's overlap and pipeline grids, star and
// tree, at any thread count; the blame decomposition must account for
// every second of server completion; and the render/diff surfaces
// (`--explain`, `--explain-diff`) must emit well-formed, stable output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/pipeline.hpp"
#include "data/generators.hpp"
#include "json_check.hpp"
#include "obs/attribution.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_export.hpp"
#include "sim/coordinator.hpp"
#include "sim/scenario.hpp"

namespace ekm {
namespace {

std::vector<Dataset> make_parts(std::size_t m, std::size_t n, std::size_t d,
                                std::uint64_t seed) {
  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = d;
  spec.k = 4;
  Rng rng = make_rng(seed, 0xdadaULL);
  const Dataset data = make_gaussian_mixture(spec, rng);
  Rng part_rng = make_rng(seed, 0x9a87ULL);
  return partition_random(data, m, part_rng);
}

PipelineConfig base_config(std::uint64_t seed = 11) {
  PipelineConfig cfg;
  cfg.k = 3;
  cfg.epsilon = 0.3;
  cfg.seed = seed;
  cfg.coreset_size = 200;
  cfg.pca_dim = 8;
  return cfg;
}

// The bench's overlap/pipeline straggler shape (bench_sim_scenarios
// kOverlapBase / kPipelineBase): slow sites ride 2 kbps links into a
// 3-second give-up round.
std::string straggler_spec(std::size_t slow, const char* knob, bool on,
                           std::uint64_t seed) {
  std::string spec = "radio=wifi,sps=1e-4,deadline=3,retry=giveup,event-log=off";
  for (std::size_t j = 0; j < slow; ++j) {
    spec += ",site" + std::to_string(j) + ".bandwidth=2000";
  }
  spec += std::string(",") + knob + "=" + (on ? "on" : "off");
  spec += ",seed=" + std::to_string(seed);
  return spec;
}

constexpr const char* kPipelinedTreeScenario =
    "radio=wifi,deadline=3,retry=giveup,topology=tree,branching=4,"
    "gateway0.bandwidth=2000,pipeline=on,event-log=off,seed=5";

double blame_sum(const double (&blame)[kBlameCategoryCount]) {
  double sum = 0.0;
  for (std::size_t c = 0; c < kBlameCategoryCount; ++c) sum += blame[c];
  return sum;
}

// The bit-exact claims are on the replayed clocks; the per-category
// sums re-associate the same additions, so they get an FP tolerance.
void expect_accounts_for_completion(const RunAttribution& a,
                                    const SimReport& report) {
  ASSERT_TRUE(a.valid);
  EXPECT_EQ(a.critical_path_s, report.server_critical_path_seconds);
  EXPECT_EQ(a.server_completion_s, report.server_completion_seconds);
  EXPECT_NEAR(blame_sum(a.blame_total), report.server_completion_seconds,
              1e-9 * (1.0 + report.server_completion_seconds));
  double rounds_sum = 0.0;
  for (const RoundBlame& r : a.rounds) rounds_sum += blame_sum(r.blame);
  EXPECT_NEAR(rounds_sum, report.server_completion_seconds,
              1e-9 * (1.0 + report.server_completion_seconds));
}

TEST(Attribution, ReplaysCriticalPathBitForBitAcrossSweepGrids) {
  // Every cell of the bench's overlap_sweep and pipeline_sweep grids:
  // the replayed longest path must equal server_critical_path_seconds
  // exactly — not approximately — and the blame categories must sum to
  // server completion.
  const auto parts = make_parts(8, 1200, 16, 7);
  for (const char* knob : {"overlap", "pipeline"}) {
    for (std::size_t slow = 0; slow <= 2; ++slow) {
      for (int on = 0; on <= 1; ++on) {
        const Coordinator coord(
            parse_scenario(straggler_spec(slow, knob, on != 0, 7)));
        PipelineConfig cfg = base_config(7);
        Recorder rec;
        cfg.recorder = &rec;
        const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);
        const RunAttribution a = attribute_run(rec);
        SCOPED_TRACE(std::string(knob) + (on ? "=on" : "=off") +
                     " slow=" + std::to_string(slow));
        expect_accounts_for_completion(a, report);
        // Star topology: no gateway split declared, no gateway blame.
        EXPECT_EQ(a.data_sites, static_cast<std::size_t>(-1));
        EXPECT_EQ(a.blame_total[static_cast<std::size_t>(
                      BlameCategory::kGatewayFold)],
                  0.0);
      }
    }
  }
}

TEST(Attribution, TreeRunsAttributeGatewayWorkAndMatchBitForBit) {
  const auto parts = make_parts(12, 1200, 16, 5);
  const Coordinator coord(parse_scenario(kPipelinedTreeScenario));
  PipelineConfig cfg = base_config(5);
  Recorder rec;
  cfg.recorder = &rec;
  const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);
  const RunAttribution a = attribute_run(rec);
  expect_accounts_for_completion(a, report);
  // The tree declared its actor split, and the gateway hop's airtime /
  // fold showed up under a gateway actor.
  EXPECT_EQ(a.data_sites, 12u);
  EXPECT_EQ(a.gateways, 3u);
  bool saw_gateway_actor = false;
  for (const ActorAttribution& actor : a.actors) {
    if (actor.gateway) {
      saw_gateway_actor = true;
      EXPECT_GE(actor.actor, 12u);
    }
  }
  EXPECT_TRUE(saw_gateway_actor);
  // The critical path routes through consumed uplink arrivals; on this
  // straggling-gateway scenario at least one hop must be one.
  bool saw_uplink_hop = false;
  for (const CriticalHop& hop : a.hops) {
    EXPECT_GE(hop.cp_after_s, hop.cp_before_s);
    if (hop.kind == ServerOpKind::kUplinkArrival) saw_uplink_hop = true;
  }
  EXPECT_TRUE(saw_uplink_hop);
}

TEST(Attribution, IsBitwiseDeterministicAcrossThreadCounts) {
  // The whole report — replayed clocks, blame, actor rollups, slack
  // histograms — must be byte-identical at any EKM_THREADS: everything
  // it reads lives on the virtual clock.
  const auto parts = make_parts(8, 1200, 16, 7);
  const Coordinator coord(
      parse_scenario(straggler_spec(2, "pipeline", true, 7)));

  std::string rendered[2];
  int i = 0;
  for (const int threads : {1, 8}) {
    set_parallel_threads(threads);
    PipelineConfig cfg = base_config(7);
    Recorder rec;
    cfg.recorder = &rec;
    const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);
    rendered[i++] = render_explain_json(
        attribute_run(rec), report.server_critical_path_seconds);
  }
  set_parallel_threads(0);
  EXPECT_EQ(rendered[0], rendered[1]);
}

TEST(Attribution, RecordingForAttributionIsBitwiseNeutral) {
  // The attribution capture (server ops, frame causal timelines, flows)
  // rides the same recorder contract as every other obs producer: a
  // pipelined tree run with the recorder attached must match the bare
  // run bit for bit on everything the run reports.
  const auto parts = make_parts(12, 1200, 16, 5);
  const Coordinator coord(parse_scenario(kPipelinedTreeScenario));
  PipelineConfig cfg = base_config(5);

  const SimReport plain = coord.run(PipelineKind::kBklw, parts, cfg);
  Recorder rec;
  cfg.recorder = &rec;
  const SimReport recorded = coord.run(PipelineKind::kBklw, parts, cfg);

  ASSERT_EQ(plain.result.centers.rows(), recorded.result.centers.rows());
  for (std::size_t r = 0; r < plain.result.centers.rows(); ++r) {
    const auto ra = plain.result.centers.row(r);
    const auto rb = recorded.result.centers.row(r);
    for (std::size_t j = 0; j < ra.size(); ++j) {
      EXPECT_EQ(ra[j], rb[j]) << "center " << r << "," << j;
    }
  }
  EXPECT_EQ(plain.result.uplink.bits, recorded.result.uplink.bits);
  EXPECT_EQ(plain.energy_joules, recorded.energy_joules);
  EXPECT_EQ(plain.completion_seconds, recorded.completion_seconds);
  EXPECT_EQ(plain.server_completion_seconds,
            recorded.server_completion_seconds);
  EXPECT_EQ(plain.server_critical_path_seconds,
            recorded.server_critical_path_seconds);
  ASSERT_EQ(plain.event_log.size(), recorded.event_log.size());
  for (std::size_t i = 0; i < plain.event_log.size(); ++i) {
    EXPECT_EQ(plain.event_log[i], recorded.event_log[i]) << "event " << i;
  }
  // And the capture actually happened.
  EXPECT_FALSE(rec.server_ops().empty());
  EXPECT_FALSE(rec.frame_causals().empty());
}

TEST(Attribution, SegmentsMultiRunRecordersPerRun) {
  // One Recorder across two runs (the bench sweeps' shape): each run
  // segment must attribute against its own run's clocks, and the
  // concatenation of per-segment rounds must align with the recorder's
  // snapshot stream — the invariant the metrics exporter's JSONL
  // annotation rides on.
  const auto parts = make_parts(8, 1200, 16, 7);
  PipelineConfig cfg = base_config(7);
  Recorder rec;
  cfg.recorder = &rec;

  const Coordinator slow_run(
      parse_scenario(straggler_spec(2, "pipeline", false, 7)));
  const Coordinator fast_run(
      parse_scenario(straggler_spec(0, "pipeline", true, 7)));
  const SimReport first = slow_run.run(PipelineKind::kBklw, parts, cfg);
  const SimReport second = fast_run.run(PipelineKind::kBklw, parts, cfg);

  const std::vector<RunAttribution> runs = attribute_all_runs(rec);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].critical_path_s, first.server_critical_path_seconds);
  EXPECT_EQ(runs[0].server_completion_s, first.server_completion_seconds);
  EXPECT_EQ(runs[1].critical_path_s, second.server_critical_path_seconds);
  EXPECT_EQ(runs[1].server_completion_s, second.server_completion_seconds);
  EXPECT_EQ(runs[0].rounds.size() + runs[1].rounds.size(),
            rec.rounds().size());
  // attribute_run on a shared recorder answers for the LAST run.
  const RunAttribution last = attribute_run(rec);
  EXPECT_EQ(last.critical_path_s, second.server_critical_path_seconds);
}

TEST(Attribution, ExplainRenderersAreWellFormed) {
  const auto parts = make_parts(8, 1200, 16, 7);
  const Coordinator coord(
      parse_scenario(straggler_spec(2, "pipeline", true, 7)));
  PipelineConfig cfg = base_config(7);
  Recorder rec;
  cfg.recorder = &rec;
  const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);
  const RunAttribution a = attribute_run(rec);

  // JSON: one single line (the CLI prints it as the last stdout line so
  // `tail -1 | python3 -m json.tool` works), well-formed, and carrying
  // the bitwise verdict.
  const std::string json =
      render_explain_json(a, report.server_critical_path_seconds);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_TRUE(test::JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"matches_reported\": true"), std::string::npos);
  EXPECT_NE(json.find("\"slack_histogram\""), std::string::npos);

  // Text: the blame table names every category and ranks actors.
  const std::string text = render_explain_text(a);
  for (std::size_t c = 0; c < kBlameCategoryCount; ++c) {
    EXPECT_NE(
        text.find(blame_category_name(static_cast<BlameCategory>(c))),
        std::string::npos)
        << blame_category_name(static_cast<BlameCategory>(c));
  }
  EXPECT_NE(text.find("tightest-slack actors"), std::string::npos);
  EXPECT_NE(text.find("slack histogram"), std::string::npos);

  // Per-round attribution members are what the metrics exporter
  // splices into its JSONL lines — each must be a valid JSON object.
  for (const RoundBlame& round : a.rounds) {
    const std::string member = render_attribution_member(round);
    EXPECT_TRUE(test::JsonChecker::valid(member)) << member;
  }
}

TEST(Attribution, DiffEngineFlagsRegressionsAndRejectsGarbage) {
  // End-to-end over the real artifact: two --metrics-out files from a
  // fast and a slow run of the same shape. B slower than A per category
  // → regression (exit 1); identical or faster → clean (exit 0);
  // unreadable / attribution-free files → unusable (exit 2).
  const auto parts = make_parts(8, 1200, 16, 7);
  PipelineConfig cfg = base_config(7);

  const std::string fast_path = "test_attr_fast.jsonl";
  const std::string slow_path = "test_attr_slow.jsonl";
  {
    Recorder rec;
    cfg.recorder = &rec;
    const Coordinator coord(
        parse_scenario(straggler_spec(2, "pipeline", true, 7)));
    (void)coord.run(PipelineKind::kBklw, parts, cfg);
    ASSERT_TRUE(write_metrics_jsonl(rec, fast_path));
  }
  {
    Recorder rec;
    cfg.recorder = &rec;
    const Coordinator coord(
        parse_scenario(straggler_spec(2, "pipeline", false, 7)));
    (void)coord.run(PipelineKind::kBklw, parts, cfg);
    ASSERT_TRUE(write_metrics_jsonl(rec, slow_path));
  }

  std::string report;
  // Turning pipelining off on the same straggler shape buys seconds of
  // deadline waiting the pipelined run never spends: a regression,
  // loudly.
  EXPECT_EQ(explain_diff_files(fast_path, slow_path, 0.10, 1e-3, report), 1);
  EXPECT_NE(report.find("REGRESSED"), std::string::npos) << report;
  EXPECT_NE(report.find("deadline_wait"), std::string::npos) << report;
  // Same file against itself: nothing moved.
  report.clear();
  EXPECT_EQ(explain_diff_files(fast_path, fast_path, 0.10, 1e-3, report), 0);
  // The improvement direction: pipelining shaves seconds off
  // deadline_wait while nudging small categories around (a frame that
  // no longer waits for the cutoff spends a visible fraction of a
  // second in compute/stall instead) — above a coarse absolute floor,
  // nothing regresses.
  report.clear();
  EXPECT_EQ(explain_diff_files(slow_path, fast_path, 0.10, 0.5, report), 0);
  // Garbage in: missing file, and a JSONL with no attribution members.
  report.clear();
  EXPECT_EQ(explain_diff_files("no_such_file.jsonl", fast_path, 0.10, 1e-3,
                               report),
            2);
  const std::string bare_path = "test_attr_bare.jsonl";
  {
    std::ofstream bare(bare_path);
    bare << "{\"round\": 1, \"round.uplink_bits\": 100}\n";
  }
  report.clear();
  EXPECT_EQ(explain_diff_files(fast_path, bare_path, 0.10, 1e-3, report), 2);

  std::remove(fast_path.c_str());
  std::remove(slow_path.c_str());
  std::remove(bare_path.c_str());
}

}  // namespace
}  // namespace ekm
