#include "sched/scheduler.hpp"

#include <queue>

#include "obs/recorder.hpp"

namespace ekm {

void PhaseScheduler::run(TaskGraph& graph) {
  // Min-heap of ready ids: lowest id first, which for program-ordered
  // graphs replays creation order (see header). Tasks added mid-run
  // enter the heap as their dependencies resolve.
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  std::size_t seeded = 0;  ///< ids already scanned for initial readiness

  const auto seed_new_tasks = [&] {
    for (; seeded < graph.size(); ++seeded) {
      if (graph.ready(seeded)) ready.push(seeded);
    }
  };
  seed_new_tasks();

  std::size_t executed = 0;
  while (!ready.empty()) {
    const TaskId id = ready.top();
    ready.pop();
    // A task can be enqueued twice: one added mid-run that depends on
    // the task currently executing is pushed once by complete() and
    // once by the seed scan below. The first pop runs it; stale
    // duplicates are no longer ready and are skipped.
    if (!graph.ready(id)) continue;
    // Copy the task out before running it: an action that adds tasks
    // (the disSS wave continuation) may reallocate the graph's node
    // storage, and a reference into it — including the std::function
    // being executed — would dangle.
    TaskSpan span;
    std::function<void()> action;
    std::vector<TaskId> deps;
    {
      const PhaseTask& task = graph.task(id);
      span.id = id;
      span.kind = task.kind;
      span.actor = task.actor;
      span.label = task.label;
      action = task.action;
      deps = task.deps;
    }
    span.start_s = actor_clock(span.actor);
    if (action) action();
    span.finish_s = actor_clock(span.actor);
    // Forward to the fabric's flight recorder (src/obs/), if attached:
    // the exported per-actor timeline is exactly this trace, and every
    // cross-actor dependency edge becomes a flow arrow (the causal
    // arrows of the protocol DAG — compute → uplink → collect →
    // barrier). A null recorder — the default — costs one branch per
    // task; the finished-task table below is plain bookkeeping over
    // values the run already produced.
    if (Recorder* rec = net_->recorder()) {
      rec->record_span(span.actor, span.label, task_kind_name(span.kind),
                       span.start_s, span.finish_s);
      for (const TaskId dep : deps) {
        if (dep < finished_.size() && finished_[dep].done &&
            finished_[dep].actor != span.actor) {
          rec->record_flow(finished_[dep].actor, finished_[dep].finish_s,
                           span.actor, span.start_s);
        }
      }
    }
    if (id >= finished_.size()) finished_.resize(id + 1);
    finished_[id] = {span.actor, span.finish_s, true};
    trace_.push_back(std::move(span));
    executed += 1;
    for (const TaskId unblocked : graph.complete(id)) ready.push(unblocked);
    seed_new_tasks();  // pick up tasks the action just added
  }
  EKM_ENSURES_MSG(graph.all_done(),
                  "phase scheduler quiesced with unrunnable tasks");
  EKM_ENSURES(executed <= graph.size());
}

}  // namespace ekm
