#include "cr/merge.hpp"

#include <algorithm>

namespace ekm {

Dataset merge_weighted(const Coreset& a, const Coreset& b) {
  const Dataset& pa = a.points;
  const Dataset& pb = b.points;
  EKM_EXPECTS(pa.dim() == pb.dim());
  // Both operands are row-major and contiguous: merge with two flat
  // copies instead of a per-row loop.
  Matrix pts(pa.size() + pb.size(), pa.dim());
  auto dst = pts.flat();
  auto fa = pa.points().flat();
  auto fb = pb.points().flat();
  std::copy(fa.begin(), fa.end(), dst.begin());
  std::copy(fb.begin(), fb.end(), dst.begin() + static_cast<std::ptrdiff_t>(fa.size()));
  std::vector<double> w;
  w.reserve(pa.size() + pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) w.push_back(pa.weight(i));
  for (std::size_t i = 0; i < pb.size(); ++i) w.push_back(pb.weight(i));
  return Dataset(std::move(pts), std::move(w));
}

Dataset merge_union(std::vector<Dataset> pieces) {
  std::vector<Dataset> kept;
  kept.reserve(pieces.size());
  for (Dataset& p : pieces) {
    if (p.size() > 0) kept.push_back(std::move(p));
  }
  if (kept.empty()) return {};
  return concatenate(kept);
}

}  // namespace ekm
