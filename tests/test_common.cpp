// Tests for src/common: contracts, statistics, serialization, RNG streams.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/expects.hpp"
#include "common/parse_num.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"

namespace ekm {
namespace {

TEST(Expects, ViolatedPreconditionThrows) {
  EXPECT_THROW(EKM_EXPECTS(1 == 2), precondition_error);
  EXPECT_THROW(EKM_EXPECTS_MSG(false, "boom"), precondition_error);
  EXPECT_NO_THROW(EKM_EXPECTS(2 == 2));
}

TEST(Expects, ViolatedInvariantThrows) {
  EXPECT_THROW(EKM_ENSURES(false), invariant_error);
  EXPECT_NO_THROW(EKM_ENSURES(true));
}

TEST(Expects, MessageNamesLocation) {
  try {
    EKM_EXPECTS_MSG(false, "context info");
    FAIL() << "should have thrown";
  } catch (const precondition_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context info"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(ParseNum, DoubleOverflowInfNanRegressionTable) {
  // Regression for the ERANGE hole: "1e999" used to parse as +inf with
  // errno never checked, silently turning a typo'd finite value into
  // wait-forever/always-true semantics downstream. The policy table:
  //   * finite-looking overflow  -> rejected
  //   * explicit inf / nan       -> parsed (range checks decide per key)
  //   * underflow to 0/denormal  -> parsed (representable magnitude)
  struct Row {
    const char* token;
    bool accepted;
  };
  const Row rows[] = {
      {"1e999", false},   {"-1e999", false},   {"1e99999", false},
      {"2e308", false},   {"-1.8e308", false},
      {"1e308", true},    {"-1e308", true},    {"0.5", true},
      {"1e-3", true},     {"1e-320", true},    {"1e-999", true},
      {"inf", true},      {"+inf", true},      {"-inf", true},
      {"infinity", true}, {"nan", true},       {"-nan", true},
      {"", false},        {"1e", false},       {"0.1x", false},
  };
  for (const Row& row : rows) {
    const auto v = parse_full_double(row.token);
    EXPECT_EQ(v.has_value(), row.accepted) << "token '" << row.token << "'";
  }
  // The accepted non-finite tokens really are inf/nan (not clamped).
  EXPECT_TRUE(std::isinf(*parse_full_double("inf")));
  EXPECT_TRUE(std::isinf(*parse_full_double("-inf")));
  EXPECT_TRUE(std::isnan(*parse_full_double("nan")));
  // Underflow keeps its (tiny or zero) magnitude instead of erroring.
  EXPECT_GE(*parse_full_double("1e-320"), 0.0);
  EXPECT_EQ(*parse_full_double("1e-999"), 0.0);
}

TEST(ParseNum, IntegerRangeRegressionTable) {
  // The integer parsers already checked ERANGE; pin the behavior so the
  // double fix cannot regress them.
  EXPECT_EQ(parse_full_ll("9223372036854775807").value_or(0),
            9223372036854775807LL);
  EXPECT_FALSE(parse_full_ll("9223372036854775808").has_value());
  EXPECT_FALSE(parse_full_ll("-9223372036854775809").has_value());
  EXPECT_FALSE(parse_full_ll("2.5").has_value());
  EXPECT_EQ(parse_full_ull("18446744073709551615").value_or(0),
            18446744073709551615ULL);
  EXPECT_FALSE(parse_full_ull("18446744073709551616").has_value());
  EXPECT_FALSE(parse_full_ull("-1").has_value());  // no wraparound
}

TEST(Stats, SummarizeBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummarizeEmptyAndSingleton) {
  EXPECT_EQ(summarize({}).n, 0u);
  const std::vector<double> one{7.0};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), precondition_error);
  EXPECT_THROW(quantile(xs, 1.5), precondition_error);
}

TEST(Stats, EmpiricalCdfIsAStaircase) {
  const std::vector<double> xs{3.0, 1.0, 2.0, 2.0};
  const EmpiricalCdf cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.x.size(), 4u);
  EXPECT_TRUE(std::is_sorted(cdf.x.begin(), cdf.x.end()));
  EXPECT_DOUBLE_EQ(cdf.p.back(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(Stats, FormatCdfSubsamples) {
  std::vector<double> xs(100);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  const std::string text = format_cdf(empirical_cdf(xs), 10);
  // At most ~11 rows (10 strided + final).
  EXPECT_LE(std::count(text.begin(), text.end(), '\n'), 12);
}

TEST(Serial, RoundTripPrimitives) {
  ByteWriter w;
  w.put_u32(42);
  w.put_u64(1ull << 40);
  w.put_f64(-3.25);
  w.put_string("hello");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u32(), 42u);
  EXPECT_EQ(r.get_u64(), 1ull << 40);
  EXPECT_DOUBLE_EQ(r.get_f64(), -3.25);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serial, RoundTripDoubleSpan) {
  const std::vector<double> vals{1.0, -2.5, 1e308, 5e-324, 0.0};
  ByteWriter w;
  w.put_doubles(vals);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_doubles(), vals);
}

TEST(Serial, OverrunThrows) {
  ByteWriter w;
  w.put_u32(1);
  ByteReader r(w.bytes());
  (void)r.get_u32();
  EXPECT_THROW((void)r.get_u64(), precondition_error);
}

TEST(Serial, CorruptLengthThrows) {
  ByteWriter w;
  w.put_u64(1000);  // claims 1000 doubles, provides none
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.get_doubles(), precondition_error);
}

TEST(Rng, DerivedStreamsAreDeterministic) {
  Rng a = make_rng(123, 5);
  Rng b = make_rng(123, 5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentStreamsDecorrelate) {
  Rng a = make_rng(123, 0);
  Rng b = make_rng(123, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SequentialMasterSeedsDecorrelate) {
  // splitmix finalization should prevent seed=1/seed=2 correlation.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t s = 0; s < 32; ++s) firsts.insert(make_rng(s)());
  EXPECT_EQ(firsts.size(), 32u);
}

TEST(Timer, StopwatchAccumulatesScopes) {
  Stopwatch sw;
  {
    auto scope = sw.measure();
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  const double first = sw.total_seconds();
  EXPECT_GT(first, 0.0);
  {
    auto scope = sw.measure();
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  EXPECT_GT(sw.total_seconds(), first);
  sw.reset();
  EXPECT_DOUBLE_EQ(sw.total_seconds(), 0.0);
}

}  // namespace
}  // namespace ekm
