#include "obs/metrics.hpp"

#include <cstdio>

#include "common/expects.hpp"
#include "obs/json_util.hpp"

namespace ekm {
namespace {

/// %.17g — enough digits to round-trip any double, and the same format
/// the bench JSON emitters use, so obs output diffs cleanly against
/// them. Deterministic: printf of a finite double is locale-independent
/// for the "C" numeric locale the binaries run under.
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

MetricsRegistry::Id MetricsRegistry::register_metric(Kind kind,
                                                     const std::string& name) {
  EKM_EXPECTS_MSG(!name.empty(), "metric name must be non-empty");
  for (Id i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) {
      EKM_EXPECTS_MSG(metrics_[i].kind == kind,
                      "metric '" + name + "' re-registered as a different kind");
      return i;
    }
  }
  Metric m;
  m.kind = kind;
  m.name = name;
  metrics_.push_back(std::move(m));
  return metrics_.size() - 1;
}

MetricsRegistry::Id MetricsRegistry::counter(const std::string& name) {
  return register_metric(Kind::kCounter, name);
}

MetricsRegistry::Id MetricsRegistry::gauge(const std::string& name) {
  return register_metric(Kind::kGauge, name);
}

MetricsRegistry::Id MetricsRegistry::histogram(const std::string& name,
                                               std::vector<double> upper_bounds) {
  for (std::size_t i = 1; i < upper_bounds.size(); ++i) {
    EKM_EXPECTS_MSG(upper_bounds[i - 1] < upper_bounds[i],
                    "histogram bounds must be strictly increasing");
  }
  const Id id = register_metric(Kind::kHistogram, name);
  Metric& m = metrics_[id];
  if (m.buckets.empty()) {
    m.bounds = std::move(upper_bounds);
    m.buckets.assign(m.bounds.size() + 1, 0);
  }
  return id;
}

void MetricsRegistry::add(Id id, std::uint64_t delta) {
  EKM_EXPECTS(id < metrics_.size());
  EKM_EXPECTS_MSG(metrics_[id].kind == Kind::kCounter,
                  "add() on a non-counter metric");
  metrics_[id].count += delta;
}

void MetricsRegistry::set(Id id, double value) {
  EKM_EXPECTS(id < metrics_.size());
  EKM_EXPECTS_MSG(metrics_[id].kind == Kind::kGauge,
                  "set() on a non-gauge metric");
  metrics_[id].value = value;
}

void MetricsRegistry::observe(Id id, double value) {
  EKM_EXPECTS(id < metrics_.size());
  Metric& m = metrics_[id];
  EKM_EXPECTS_MSG(m.kind == Kind::kHistogram,
                  "observe() on a non-histogram metric");
  std::size_t b = 0;
  while (b < m.bounds.size() && value > m.bounds[b]) ++b;
  m.buckets[b] += 1;
  m.count += 1;
  m.value += value;
}

std::uint64_t MetricsRegistry::counter_value(Id id) const {
  EKM_EXPECTS(id < metrics_.size() && metrics_[id].kind == Kind::kCounter);
  return metrics_[id].count;
}

double MetricsRegistry::gauge_value(Id id) const {
  EKM_EXPECTS(id < metrics_.size() && metrics_[id].kind == Kind::kGauge);
  return metrics_[id].value;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& m = metrics_[i];
    if (i > 0) out += ", ";
    out += '"';
    // Names are dotted identifiers today, but the writer must stay
    // total if a caller registers something wilder (obs/json_util.hpp).
    out += json_escape(m.name);
    out += "\": ";
    switch (m.kind) {
      case Kind::kCounter:
        append_u64(out, m.count);
        break;
      case Kind::kGauge:
        append_double(out, m.value);
        break;
      case Kind::kHistogram: {
        out += "{\"buckets\": [";
        for (std::size_t b = 0; b < m.bounds.size(); ++b) {
          if (b > 0) out += ", ";
          append_double(out, m.bounds[b]);
        }
        out += "], \"counts\": [";
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          if (b > 0) out += ", ";
          append_u64(out, m.buckets[b]);
        }
        out += "], \"sum\": ";
        append_double(out, m.value);
        out += ", \"count\": ";
        append_u64(out, m.count);
        out += '}';
        break;
      }
    }
  }
  out += '}';
  return out;
}

void MetricsRegistry::reset_values() {
  for (Metric& m : metrics_) {
    m.count = 0;
    m.value = 0.0;
    for (std::uint64_t& b : m.buckets) b = 0;
  }
}

}  // namespace ekm
