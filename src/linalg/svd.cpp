#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/eigen_sym.hpp"

namespace ekm {
namespace {

// Gram–Schmidt re-orthonormalization of column j of `m` against columns
// [0, j); used to fill in factor columns for (near-)zero singular values.
void orthonormalize_column(Matrix& m, std::size_t j, Rng& rng) {
  const std::size_t n = m.rows();
  std::normal_distribution<double> dist;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (attempt > 0) {
      for (std::size_t i = 0; i < n; ++i) m(i, j) = dist(rng);
    }
    for (std::size_t c = 0; c < j; ++c) {
      double proj = 0.0;
      for (std::size_t i = 0; i < n; ++i) proj += m(i, c) * m(i, j);
      for (std::size_t i = 0; i < n; ++i) m(i, j) -= proj * m(i, c);
    }
    double nrm = 0.0;
    for (std::size_t i = 0; i < n; ++i) nrm += m(i, j) * m(i, j);
    nrm = std::sqrt(nrm);
    if (nrm > 1e-12) {
      for (std::size_t i = 0; i < n; ++i) m(i, j) /= nrm;
      return;
    }
  }
  // Degenerate only if j >= rank of the whole space; leave the column zero.
}

// Smallest Gram eigenvalue distinguishable from rounding noise: the Jacobi
// sweeps resolve eigenvalues to O(dim·eps·λmax), so anything below that is
// noise and its square root must be reported as an exact zero (σ below
// √eps·σmax is unresolvable through A^T A by construction).
double gram_noise_floor(double lambda_max, std::size_t dim) {
  return 32.0 * std::numeric_limits<double>::epsilon() *
         static_cast<double>(std::max<std::size_t>(dim, 1)) * lambda_max;
}

}  // namespace

Matrix Svd::reconstruct() const {
  Matrix us = u;  // scale columns of U by sigma
  for (std::size_t i = 0; i < us.rows(); ++i) {
    for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= sigma[j];
  }
  return matmul_a_bt(us, v);
}

void Svd::truncate(std::size_t t) {
  EKM_EXPECTS(t <= sigma.size());
  sigma.resize(t);
  u = u.first_cols(t);
  v = v.first_cols(t);
}

Svd thin_svd(const Matrix& a) {
  EKM_EXPECTS_MSG(!a.empty(), "thin_svd of empty matrix");
  const std::size_t n = a.rows();
  const std::size_t d = a.cols();
  const std::size_t r = std::min(n, d);
  Svd out;
  Rng rng = make_rng(0x5bdULL, n * 1315423911ULL + d);

  if (d <= n) {
    // Eigen-decompose A^T A (d x d): V and sigma^2.
    const Matrix gram = matmul_at_b(a, a);
    SymmetricEigen eig = eigen_symmetric(gram);
    out.v = eig.vectors.first_cols(r);
    out.sigma.resize(r);
    const double smax2 = std::max(eig.values.empty() ? 0.0 : eig.values[0], 0.0);
    for (std::size_t j = 0; j < r; ++j) {
      out.sigma[j] = std::sqrt(std::max(eig.values[j], 0.0));
    }
    // U = A V Sigma^{-1}.
    out.u = matmul(a, out.v);
    const double tol = std::max(1e-8 * std::sqrt(smax2),
                                std::sqrt(gram_noise_floor(smax2, d)));
    for (std::size_t j = 0; j < r; ++j) {
      if (out.sigma[j] > tol) {
        const double inv = 1.0 / out.sigma[j];
        for (std::size_t i = 0; i < n; ++i) out.u(i, j) *= inv;
      } else {
        out.sigma[j] = 0.0;
        orthonormalize_column(out.u, j, rng);
      }
    }
  } else {
    // n < d: eigen-decompose A A^T (n x n): U and sigma^2, V = A^T U / s.
    const Matrix gram = matmul_a_bt(a, a);
    SymmetricEigen eig = eigen_symmetric(gram);
    out.u = eig.vectors.first_cols(r);
    out.sigma.resize(r);
    const double smax2 = std::max(eig.values.empty() ? 0.0 : eig.values[0], 0.0);
    for (std::size_t j = 0; j < r; ++j) {
      out.sigma[j] = std::sqrt(std::max(eig.values[j], 0.0));
    }
    out.v = matmul_at_b(a, out.u);
    const double tol = std::max(1e-8 * std::sqrt(smax2),
                                std::sqrt(gram_noise_floor(smax2, n)));
    for (std::size_t j = 0; j < r; ++j) {
      if (out.sigma[j] > tol) {
        const double inv = 1.0 / out.sigma[j];
        for (std::size_t i = 0; i < d; ++i) out.v(i, j) *= inv;
      } else {
        out.sigma[j] = 0.0;
        orthonormalize_column(out.v, j, rng);
      }
    }
  }
  return out;
}

Svd truncated_svd(const Matrix& a, std::size_t t) {
  Svd s = thin_svd(a);
  s.truncate(std::min(t, s.rank()));
  return s;
}

Svd randomized_svd(const Matrix& a, std::size_t rank, Rng& rng,
                   std::size_t oversample, int power_iters) {
  const std::size_t r = std::min(rank + oversample, std::min(a.rows(), a.cols()));
  // Range finder: Y = A Omega, Q = orth(Y), with optional power iterations
  // (A A^T)^q A Omega for spectra with slow decay.
  Matrix omega = Matrix::gaussian(a.cols(), r, rng);
  Matrix y = matmul(a, omega);
  Matrix q = householder_q(y);
  for (int it = 0; it < power_iters; ++it) {
    Matrix z = matmul_at_b(a, q);   // d x r
    Matrix qz = householder_q(z);
    y = matmul(a, qz);              // n x r
    q = householder_q(y);
  }
  // B = Q^T A is small (r x d): exact thin SVD of B.
  Matrix b = matmul_at_b(q, a);
  Svd bs = thin_svd(b);
  Svd out;
  out.u = matmul(q, bs.u);
  out.sigma = std::move(bs.sigma);
  out.v = std::move(bs.v);
  out.truncate(std::min(rank, out.rank()));
  return out;
}

Matrix pseudoinverse(const Matrix& a, double rcond) {
  Svd s = thin_svd(a);
  const double smax = s.sigma.empty() ? 0.0 : s.sigma[0];
  const double tol = rcond * smax;
  // A^+ = V diag(1/sigma) U^T, zeroing tiny components.
  Matrix vs = s.v;  // d x r, scale columns
  for (std::size_t j = 0; j < s.rank(); ++j) {
    const double inv = (s.sigma[j] > tol && s.sigma[j] > 0.0)
                           ? 1.0 / s.sigma[j]
                           : 0.0;
    for (std::size_t i = 0; i < vs.rows(); ++i) vs(i, j) *= inv;
  }
  return matmul_a_bt(vs, s.u);
}

Matrix householder_q(const Matrix& a) {
  const std::size_t n = a.rows();
  const std::size_t d = a.cols();
  const std::size_t r = std::min(n, d);

  // Factorize in place. For each step j the Householder vector is
  // v = (v0s[j], m(j+1..n-1, j)) and H_j = I - betas[j] * v v^T.
  Matrix m = a;
  std::vector<double> betas(r, 0.0);
  std::vector<double> v0s(r, 0.0);
  for (std::size_t j = 0; j < r; ++j) {
    double nrm = 0.0;
    for (std::size_t i = j; i < n; ++i) nrm += m(i, j) * m(i, j);
    nrm = std::sqrt(nrm);
    if (nrm < 1e-300) continue;
    const double alpha = (m(j, j) >= 0.0) ? -nrm : nrm;
    const double v0 = m(j, j) - alpha;
    double vnorm2 = v0 * v0;
    for (std::size_t i = j + 1; i < n; ++i) vnorm2 += m(i, j) * m(i, j);
    if (vnorm2 < 1e-300) continue;
    betas[j] = 2.0 / vnorm2;
    v0s[j] = v0;
    m(j, j) = alpha;  // R diagonal; the tail of column j stays as v's tail
    for (std::size_t c = j + 1; c < d; ++c) {
      double s = v0 * m(j, c);
      for (std::size_t i = j + 1; i < n; ++i) s += m(i, j) * m(i, c);
      s *= betas[j];
      m(j, c) -= s * v0;
      for (std::size_t i = j + 1; i < n; ++i) m(i, c) -= s * m(i, j);
    }
  }

  // Accumulate Q = H_0 H_1 ... H_{r-1} applied to the first r columns of I
  // (backward accumulation touches only the trailing block each step).
  Matrix q(n, r);
  for (std::size_t j = 0; j < r; ++j) q(j, j) = 1.0;
  for (std::size_t j = r; j-- > 0;) {
    if (betas[j] == 0.0) continue;
    const double v0 = v0s[j];
    for (std::size_t c = 0; c < r; ++c) {
      double s = v0 * q(j, c);
      for (std::size_t i = j + 1; i < n; ++i) s += m(i, j) * q(i, c);
      s *= betas[j];
      q(j, c) -= s * v0;
      for (std::size_t i = j + 1; i < n; ++i) q(i, c) -= s * m(i, j);
    }
  }
  return q;
}

void append_pca_summary(Matrix& y, const Matrix& sigma_row, const Matrix& v) {
  if (sigma_row.size() == 0) return;
  EKM_EXPECTS_MSG(sigma_row.rows() == 1 && v.cols() == sigma_row.cols(),
                  "PCA summary shape mismatch");
  const std::size_t d = v.rows();
  Matrix yi(sigma_row.cols(), d);
  for (std::size_t j = 0; j < sigma_row.cols(); ++j) {
    for (std::size_t c = 0; c < d; ++c) {
      yi(j, c) = sigma_row(0, j) * v(c, j);
    }
  }
  y.append_rows(yi);
}

}  // namespace ekm
