// Frequent Directions matrix sketching [Liberty, KDD 2013; Ghashami et
// al., SIAM J. Comp. 2016].
//
// A deterministic streaming alternative to the exact SVD inside FSS's
// PCA stage: maintain a 2l x d sketch B such that
//   0 <= ||A x||² - ||B x||² <= ||A||_F² / l   for every unit x,
// processing rows one at a time in O(l d) amortized. An edge device that
// cannot hold A (or afford O(nd·min(n,d))) can run FD and hand the
// sketch's top right-singular vectors to the coreset step — trading the
// paper's exact-PCA constant for a streaming-friendly one. The ablation
// bench quantifies the trade.
#pragma once

#include <cstddef>
#include <span>

#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace ekm {

class FrequentDirections {
 public:
  /// `sketch_size` = l; the sketch holds up to 2l rows of dimension d.
  FrequentDirections(std::size_t sketch_size, std::size_t dim);

  /// Appends one row of A. Amortized O(l d) (a shrink every l rows).
  void insert(std::span<const double> row);

  /// Current sketch B (at most 2l x d; rows beyond the fill are zero and
  /// trimmed). Triggers a final shrink so the result has <= l rows of
  /// guaranteed quality.
  [[nodiscard]] Matrix sketch();

  /// Top-t right singular vectors of the sketch (d x t) — the streaming
  /// stand-in for the PCA basis FSS needs.
  [[nodiscard]] Matrix principal_basis(std::size_t t);

  /// Folds another sketch into this one by inserting its rows in order
  /// (the associative FD merge of Ghashami et al. §3): the combined
  /// sketch covers the concatenated stream within the same per-sketch
  /// error bound. Deterministic in operand order — a gateway folding
  /// child sketches in ascending child index gets a bitwise-stable
  /// result (src/cr/merge.hpp has the layer-wide contract).
  void merge(FrequentDirections& other);

  [[nodiscard]] std::size_t rows_seen() const { return rows_seen_; }
  [[nodiscard]] std::size_t dim() const { return buffer_.cols(); }

 private:
  void shrink();

  Matrix buffer_;            // 2l x d workspace
  std::size_t fill_ = 0;     // occupied rows
  std::size_t l_;            // sketch parameter
  std::size_t rows_seen_ = 0;
};

}  // namespace ekm
