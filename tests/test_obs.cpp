// Tests for src/obs: the metrics registry's deterministic typed store,
// the recorder's per-round snapshot protocol, the exporters — and THE
// contract of the whole layer: recording is side-effect-free. A run
// with a recorder attached must be bitwise identical to the same run
// without one — centers, ledgers, energy, and the SimEvent log — at
// any EKM_THREADS, under churn, adaptive quantization, and phase
// overlap all at once.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/pipeline.hpp"
#include "data/generators.hpp"
#include "json_check.hpp"
#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_export.hpp"
#include "sim/coordinator.hpp"
#include "sim/scenario.hpp"

namespace ekm {
namespace {

std::vector<Dataset> make_parts(std::size_t m, std::size_t n, std::size_t d,
                                std::uint64_t seed) {
  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = d;
  spec.k = 4;
  Rng rng = make_rng(seed, 0xdadaULL);
  const Dataset data = make_gaussian_mixture(spec, rng);
  Rng part_rng = make_rng(seed, 0x9a87ULL);
  return partition_random(data, m, part_rng);
}

PipelineConfig base_config(std::uint64_t seed = 11) {
  PipelineConfig cfg;
  cfg.k = 3;
  cfg.epsilon = 0.3;
  cfg.seed = seed;
  cfg.coreset_size = 200;
  cfg.pca_dim = 8;
  return cfg;
}

// The CI churn smoke's fleet shape: scheduled leave/join, stochastic
// churn, a trace-pinned site, adaptive quantization, phase overlap —
// every recording call site fires at least once on this scenario.
constexpr const char* kBusyScenario =
    "deadline-fleet,churn=0.02,quant=adaptive,overlap=on,"
    "site2.leave=9,site5.join=3,site0.trace=0:8000:0.05;20:2e6:0,seed=1";

void expect_bitwise_equal(const SimReport& a, const SimReport& b) {
  ASSERT_EQ(a.result.centers.rows(), b.result.centers.rows());
  ASSERT_EQ(a.result.centers.cols(), b.result.centers.cols());
  for (std::size_t r = 0; r < a.result.centers.rows(); ++r) {
    const auto ra = a.result.centers.row(r);
    const auto rb = b.result.centers.row(r);
    for (std::size_t j = 0; j < ra.size(); ++j) {
      EXPECT_EQ(ra[j], rb[j]) << "center " << r << "," << j;
    }
  }
  EXPECT_EQ(a.result.uplink.bits, b.result.uplink.bits);
  EXPECT_EQ(a.result.uplink.scalars, b.result.uplink.scalars);
  EXPECT_EQ(a.result.uplink.messages, b.result.uplink.messages);
  EXPECT_EQ(a.result.downlink.bits, b.result.downlink.bits);
  EXPECT_EQ(a.result.downlink.messages, b.result.downlink.messages);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.completion_seconds, b.completion_seconds);
  EXPECT_EQ(a.server_completion_seconds, b.server_completion_seconds);
  ASSERT_EQ(a.event_log.size(), b.event_log.size());
  for (std::size_t i = 0; i < a.event_log.size(); ++i) {
    EXPECT_EQ(a.event_log[i], b.event_log[i]) << "event " << i;
  }
}

TEST(Metrics, RegistryIsDeterministicAndTyped) {
  MetricsRegistry reg;
  const auto misses = reg.counter("round.misses");
  const auto energy = reg.gauge("fleet.energy");
  const auto widths = reg.histogram("quant.bits", {8.0, 16.0, 24.0});

  reg.add(misses, 3);
  reg.set(energy, 0.5);
  reg.observe(widths, 8.0);   // lands in the first bucket (<= 8)
  reg.observe(widths, 17.0);  // third bucket (<= 24)
  reg.observe(widths, 99.0);  // overflow

  EXPECT_EQ(reg.counter_value(misses), 3u);
  EXPECT_EQ(reg.gauge_value(energy), 0.5);
  EXPECT_EQ(reg.to_json(),
            "{\"round.misses\": 3, \"fleet.energy\": 0.5, "
            "\"quant.bits\": {\"buckets\": [8, 16, 24], "
            "\"counts\": [1, 0, 1, 1], \"sum\": 124, \"count\": 3}}");

  // Idempotent re-registration returns the same id; a kind change is a
  // registration bug and throws.
  EXPECT_EQ(reg.counter("round.misses"), misses);
  EXPECT_THROW((void)reg.gauge("round.misses"), precondition_error);
  EXPECT_THROW((void)reg.histogram("bad", {2.0, 1.0}), precondition_error);
  EXPECT_THROW(reg.add(energy, 1), precondition_error);
  EXPECT_THROW(reg.set(misses, 1.0), precondition_error);
  EXPECT_THROW(reg.observe(misses, 1.0), precondition_error);

  // reset_values clears values, not registrations — the serialized
  // shape (and therefore the JSONL column order) is stable.
  reg.reset_values();
  EXPECT_EQ(reg.counter_value(misses), 0u);
  EXPECT_EQ(reg.to_json(),
            "{\"round.misses\": 0, \"fleet.energy\": 0, "
            "\"quant.bits\": {\"buckets\": [8, 16, 24], "
            "\"counts\": [0, 0, 0, 0], \"sum\": 0, \"count\": 0}}");
}

TEST(Obs, JsonEscapeHandlesQuotesBackslashesAndControls) {
  // The single escape helper every obs writer shares (json_util.hpp).
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape("\r\b\f"), "\\r\\b\\f");
  // Remaining C0 controls take the \u form; the high bit passes through
  // untouched (UTF-8 continuation bytes must survive verbatim).
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(Obs, ExportersEscapeHostileLabels) {
  // A span label or metric name carrying quotes, backslashes, and
  // control characters must come out of every writer as valid JSON —
  // the PR 7 writers each had their own partial policy (one skipped
  // escaping entirely); this is the regression fence for the shared
  // helper.
  const std::string evil = "say \"hi\"\\path\nnext\x02";

  Recorder rec;
  rec.record_span(0, evil, "kernel", 0.0, 1.0);
  const std::string trace_path = "test_obs_evil_trace.json";
  ASSERT_TRUE(write_chrome_trace(rec, trace_path));
  std::ifstream tf(trace_path);
  std::stringstream buf;
  buf << tf.rdbuf();
  const std::string t = buf.str();
  EXPECT_TRUE(test::JsonChecker::valid(t)) << t;
  EXPECT_NE(t.find("say \\\"hi\\\"\\\\path\\nnext\\u0002"), std::string::npos);
  std::remove(trace_path.c_str());

  MetricsRegistry reg;
  reg.add(reg.counter(evil), 1);
  const std::string j = reg.to_json();
  EXPECT_TRUE(test::JsonChecker::valid(j)) << j;
  EXPECT_NE(j.find("\\u0002"), std::string::npos);
}

TEST(Obs, RecorderSnapshotsDiffTotalsIntoRoundDeltas) {
  Recorder rec;
  rec.note_quant_width(0, 8, 24);   // narrowed
  rec.note_quant_width(1, 24, 24);  // full width

  RoundTotals t1;
  t1.rounds_opened = 1;
  t1.server_time_s = 2.0;
  t1.missed_frames = 2;
  t1.uplink_bits = 1000;
  t1.uplink_frames = 4;
  t1.energy_joules = 0.25;
  t1.per_uplink_missed = {1, 1, 0};  // sites 0 and 1 missed → 1 responder
  rec.snapshot_round(t1);

  ASSERT_EQ(rec.rounds().size(), 1u);
  EXPECT_EQ(rec.rounds()[0].round, 1u);
  const std::string& line = rec.rounds()[0].json_line;
  EXPECT_NE(line.find("\"round\": 1"), std::string::npos);
  EXPECT_NE(line.find("\"round.responders\": 1"), std::string::npos);
  EXPECT_NE(line.find("\"round.deadline_misses\": 2"), std::string::npos);
  EXPECT_NE(line.find("\"round.quant_frames_narrowed\": 1"),
            std::string::npos);

  // Round 2: counters carry the delta, gauges the new absolute value.
  RoundTotals t2 = t1;
  t2.rounds_opened = 2;
  t2.server_time_s = 5.0;
  t2.missed_frames = 3;
  t2.uplink_bits = 1600;
  t2.per_uplink_missed = {1, 2, 0};  // only site 1 missed anew
  rec.snapshot_round(t2);
  const std::string& line2 = rec.rounds()[1].json_line;
  EXPECT_NE(line2.find("\"round.responders\": 2"), std::string::npos);
  EXPECT_NE(line2.find("\"round.deadline_misses\": 1"), std::string::npos);
  EXPECT_NE(line2.find("\"round.uplink_bits\": 600"), std::string::npos);
  EXPECT_NE(line2.find("\"server.time_s\": 5"), std::string::npos);
  // The commit gauge is the last column (appended in PR order), so
  // existing JSONL consumers see their columns unmoved.
  const auto commit_at = line2.find("\"round.server_commit_seconds\": 5");
  ASSERT_NE(commit_at, std::string::npos);
  EXPECT_GT(commit_at, line2.find("\"sim.queue_high_water\""));

  // Snapshots must close rounds in order; a stale ordinal throws.
  EXPECT_THROW(rec.snapshot_round(t1), precondition_error);

  // begin_run() re-arms the baseline so the recorder can ride a second
  // run whose rounds restart at 1 (the bench sweeps).
  rec.begin_run();
  rec.snapshot_round(t1);
  ASSERT_EQ(rec.rounds().size(), 3u);
  EXPECT_EQ(rec.rounds()[2].round, 1u);
}

TEST(Obs, BeginRunReArmsDeltaBaselinesAcrossThreeRuns) {
  // One Recorder across three runs (a bench sweep's lifetime): every
  // begin_run must reset the cumulative→delta baseline, so a run's
  // first snapshot reports its own absolute totals as the round delta —
  // never the previous run's trailing totals leaking through as a
  // negative or inflated diff.
  Recorder rec;
  const std::uint64_t bits_per_run[] = {1000, 700, 1500};
  for (int run = 0; run < 3; ++run) {
    if (run > 0) rec.begin_run();
    RoundTotals t1;
    t1.rounds_opened = 1;
    t1.server_time_s = 2.0;
    t1.uplink_bits = bits_per_run[run];
    t1.uplink_frames = 2;
    t1.per_uplink_missed = {0, 0};
    rec.snapshot_round(t1);
    RoundTotals t2 = t1;
    t2.rounds_opened = 2;
    t2.server_time_s = 4.0;
    t2.uplink_bits = bits_per_run[run] + 300;
    rec.snapshot_round(t2);
  }
  ASSERT_EQ(rec.rounds().size(), 6u);
  for (int run = 0; run < 3; ++run) {
    const RoundSnapshot& first = rec.rounds()[2 * run];
    const RoundSnapshot& second = rec.rounds()[2 * run + 1];
    EXPECT_EQ(first.round, 1u) << "run " << run;
    EXPECT_EQ(second.round, 2u) << "run " << run;
    const std::string want_first =
        "\"round.uplink_bits\": " + std::to_string(bits_per_run[run]);
    EXPECT_NE(first.json_line.find(want_first), std::string::npos)
        << "run " << run << ": " << first.json_line;
    EXPECT_NE(second.json_line.find("\"round.uplink_bits\": 300"),
              std::string::npos)
        << "run " << run << ": " << second.json_line;
    EXPECT_TRUE(test::JsonChecker::valid(first.json_line));
    EXPECT_TRUE(test::JsonChecker::valid(second.json_line));
  }
}

TEST(Obs, RecordingIsBitwiseNeutralUnderChurnOverlapAndThreads) {
  const auto parts = make_parts(8, 1600, 16, 31);
  const Coordinator coord(parse_scenario(kBusyScenario));
  PipelineConfig cfg = base_config(31);

  set_parallel_threads(1);
  const SimReport plain = coord.run(PipelineKind::kBklw, parts, cfg);

  Recorder rec;
  cfg.recorder = &rec;
  install_recorder(&rec);
  const SimReport recorded = coord.run(PipelineKind::kBklw, parts, cfg);
  install_recorder(nullptr);

  // The recorder saw real traffic...
  EXPECT_FALSE(rec.spans().empty());
  EXPECT_FALSE(rec.events().empty());
  ASSERT_FALSE(rec.rounds().empty());
  // ...one snapshot per collection round, in order...
  EXPECT_EQ(rec.rounds().size(), recorded.rounds);
  for (std::size_t i = 0; i < rec.rounds().size(); ++i) {
    EXPECT_EQ(rec.rounds()[i].round, i + 1);
  }
  // ...the mirrored event stream is exactly the canonical log...
  ASSERT_EQ(rec.events().size(), recorded.event_log.size());
  // ...and nothing the run computed moved by a single bit.
  expect_bitwise_equal(plain, recorded);

  // Same contract across thread counts: the recorded totals (drawn on
  // the protocol thread) cannot see the pool size either.
  set_parallel_threads(8);
  Recorder rec8;
  cfg.recorder = &rec8;
  install_recorder(&rec8);
  const SimReport recorded8 = coord.run(PipelineKind::kBklw, parts, cfg);
  install_recorder(nullptr);
  set_parallel_threads(0);
  expect_bitwise_equal(plain, recorded8);
  ASSERT_EQ(rec8.rounds().size(), rec.rounds().size());
  for (std::size_t i = 0; i < rec.rounds().size(); ++i) {
    EXPECT_EQ(rec8.rounds()[i].json_line, rec.rounds()[i].json_line);
  }
}

TEST(Obs, ExportersWriteValidArtifacts) {
  const auto parts = make_parts(6, 1200, 16, 7);
  const Coordinator coord(parse_scenario(kBusyScenario));
  PipelineConfig cfg = base_config(7);
  Recorder rec;
  cfg.recorder = &rec;
  const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);

  const std::string trace_path = "test_obs_trace.json";
  const std::string metrics_path = "test_obs_metrics.jsonl";
  ASSERT_TRUE(write_chrome_trace(rec, trace_path));
  ASSERT_TRUE(write_metrics_jsonl(rec, metrics_path));

  // Trace: the Chrome JSON envelope with per-actor thread metadata and
  // at least one complete span per scheduler phase kind we know ran.
  std::ifstream tf(trace_path);
  std::stringstream trace;
  trace << tf.rdbuf();
  const std::string t = trace.str();
  EXPECT_NE(t.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(t.find("\"server\""), std::string::npos);
  EXPECT_NE(t.find("\"site 0\""), std::string::npos);
  EXPECT_NE(t.find("\"event queue\""), std::string::npos);
  EXPECT_NE(t.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(t.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_EQ(t.back(), '\n');

  // JSONL: one line per collection round, each a self-contained object.
  std::ifstream mf(metrics_path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(mf, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    lines += 1;
  }
  EXPECT_EQ(lines, report.rounds);

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());

  // Unwritable paths fail cleanly instead of crashing or half-writing.
  EXPECT_FALSE(write_chrome_trace(rec, "no-such-dir/x/trace.json"));
  EXPECT_FALSE(write_metrics_jsonl(rec, "no-such-dir/x/m.jsonl"));
}

TEST(Obs, ExportersEmitValidJsonOnChurnPipelineTreeScenario) {
  // The heaviest export shape all at once — churn, cross-round
  // pipelining, a straggling gateway, hierarchical aggregation — and
  // both artifacts must still parse end to end (CI re-checks the same
  // property with python3 -m json.tool): the trace with its flow
  // arrows, counter tracks, and critical-path spans, the metrics JSONL
  // with an attribution member on every line.
  const auto parts = make_parts(12, 1200, 16, 5);
  const Coordinator coord(parse_scenario(
      "radio=wifi,deadline=3,retry=giveup,topology=tree,branching=4,"
      "gateway0.bandwidth=2000,pipeline=on,churn=0.01,event-log=off,seed=5"));
  PipelineConfig cfg = base_config(5);
  Recorder rec;
  cfg.recorder = &rec;
  const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);

  const std::string trace_path = "test_obs_tree_trace.json";
  const std::string metrics_path = "test_obs_tree_metrics.jsonl";
  ASSERT_TRUE(write_chrome_trace(rec, trace_path));
  ASSERT_TRUE(write_metrics_jsonl(rec, metrics_path));

  std::ifstream tf(trace_path);
  std::stringstream trace;
  trace << tf.rdbuf();
  const std::string t = trace.str();
  ASSERT_TRUE(test::JsonChecker::valid(t));
  // Flow arrows (ph s/f pairs), the two counter tracks, and the
  // critical-path track all made it in.
  EXPECT_NE(t.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(t.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(t.find("\"sim.frames_in_flight\""), std::string::npos);
  EXPECT_NE(t.find("\"sim.queue_high_water\""), std::string::npos);
  EXPECT_NE(t.find("\"critical path\""), std::string::npos);
  EXPECT_NE(t.find("\"cp\": 1"), std::string::npos);
  EXPECT_NE(t.find("\"gateway 0\""), std::string::npos);

  std::ifstream mf(metrics_path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(mf, line)) {
    EXPECT_TRUE(test::JsonChecker::valid(line)) << line;
    EXPECT_NE(line.find("\"attribution\""), std::string::npos) << line;
    lines += 1;
  }
  EXPECT_EQ(lines, report.rounds);

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(Obs, KernelTimingRecordsOnlyWhenInstalled) {
  // Without an installed recorder, timed_section is a pure stopwatch.
  bool ran = false;
  const double s = timed_section("unit", [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_GE(s, 0.0);

  // With one installed, the same call lands a wall-clock kernel span —
  // the single timing path bench_util::time_best_of builds on.
  Recorder rec;
  install_recorder(&rec);
  (void)timed_section("unit", [] {});
  { ObsKernelScope scope("scoped"); }
  install_recorder(nullptr);
  ASSERT_EQ(rec.spans().size(), 2u);
  EXPECT_EQ(rec.spans()[0].label, "unit");
  EXPECT_TRUE(rec.spans()[0].wall);
  EXPECT_EQ(rec.spans()[1].label, "scoped");
  EXPECT_EQ(rec.spans()[1].kind, "kernel");

  // Uninstalled again: no further spans accumulate.
  (void)timed_section("after", [] {});
  EXPECT_EQ(rec.spans().size(), 2u);
}

}  // namespace
}  // namespace ekm
