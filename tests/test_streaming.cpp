// Tests for the merge-and-reduce streaming coreset.
#include <gtest/gtest.h>

#include <cmath>

#include "cr/streaming.hpp"
#include "data/generators.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/lloyd.hpp"

namespace ekm {
namespace {

Dataset mixture(std::size_t n, std::size_t dim, std::size_t k,
                std::uint64_t seed) {
  Rng rng = make_rng(seed);
  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.k = k;
  return make_gaussian_mixture(spec, rng);
}

StreamingCoresetOptions small_opts() {
  StreamingCoresetOptions opts;
  opts.k = 3;
  opts.leaf_size = 128;
  opts.coreset_size = 96;
  opts.seed = 7;
  return opts;
}

TEST(Streaming, CountsAndMemoryStayLogarithmic) {
  StreamingCoreset stream(small_opts());
  const Dataset d = mixture(4000, 6, 3, 400);
  stream.insert(d);
  EXPECT_EQ(stream.points_seen(), 4000u);
  // 4000/128 = 31 leaves -> <= ceil(log2(31)) + 1 live levels.
  EXPECT_LE(stream.live_levels(), 6u);
  // Resident memory is levels * coreset_size + partial leaf, not O(n).
  EXPECT_LT(stream.resident_points(), 6u * 96 * 2 + 128);
}

TEST(Streaming, TotalWeightTracksStreamLength) {
  StreamingCoreset stream(small_opts());
  const Dataset d = mixture(3000, 4, 3, 401);
  stream.insert(d);
  const Coreset cs = stream.finalize();
  EXPECT_NEAR(cs.points.total_weight(), 3000.0, 0.15 * 3000.0);
}

TEST(Streaming, FinalCoresetSupportsNearOptimalSolve) {
  const Dataset d = mixture(5000, 8, 3, 402);
  StreamingCoresetOptions opts = small_opts();
  opts.coreset_size = 160;
  StreamingCoreset stream(opts);
  // Feed in adversarial order: sorted by first coordinate, so early
  // leaves see only part of the space.
  std::vector<std::size_t> order(d.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return d.point(a)[0] < d.point(b)[0];
  });
  for (std::size_t i : order) stream.insert(d.point(i));

  const Coreset cs = stream.finalize();
  EXPECT_LE(cs.size(), 2u * opts.coreset_size + opts.leaf_size);

  KMeansOptions kopts;
  kopts.k = 3;
  kopts.restarts = 8;
  kopts.seed = 11;
  const double full = kmeans(d, kopts).cost;
  const KMeansResult on_cs = kmeans(cs.points, kopts);
  EXPECT_LT(kmeans_cost(d, on_cs.centers), 1.35 * full);
}

TEST(Streaming, FinalizeIsNonDestructive) {
  StreamingCoreset stream(small_opts());
  stream.insert(mixture(500, 4, 3, 403));
  const Coreset first = stream.finalize();
  stream.insert(mixture(500, 4, 3, 404));
  const Coreset second = stream.finalize();
  EXPECT_EQ(stream.points_seen(), 1000u);
  EXPECT_NEAR(second.points.total_weight(), 1000.0, 200.0);
  EXPECT_NEAR(first.points.total_weight(), 500.0, 100.0);
}

TEST(Streaming, PartialLeafOnlyStream) {
  StreamingCoreset stream(small_opts());
  const Dataset d = mixture(50, 4, 3, 405);  // less than one leaf
  stream.insert(d);
  EXPECT_EQ(stream.live_levels(), 0u);
  const Coreset cs = stream.finalize();
  EXPECT_DOUBLE_EQ(cs.points.total_weight(), 50.0);  // exact: no sampling yet
}

TEST(Streaming, RejectsDimensionChangeAndEmptyFinalize) {
  StreamingCoreset stream(small_opts());
  EXPECT_THROW((void)stream.finalize(), precondition_error);
  const std::vector<double> p2{1.0, 2.0};
  const std::vector<double> p3{1.0, 2.0, 3.0};
  stream.insert(std::span<const double>(p2));
  EXPECT_THROW(stream.insert(std::span<const double>(p3)), precondition_error);
}

TEST(Streaming, EquivalentToBatchCoresetQuality) {
  // Stream vs one-shot sensitivity sampling at the same budget: the
  // streaming result may be slightly worse (merge-reduce error growth)
  // but must stay in the same quality class.
  const Dataset d = mixture(4000, 6, 3, 406);
  KMeansOptions kopts;
  kopts.k = 3;
  kopts.restarts = 6;
  kopts.seed = 13;
  const double full = kmeans(d, kopts).cost;

  StreamingCoresetOptions opts = small_opts();
  opts.coreset_size = 128;
  StreamingCoreset stream(opts);
  stream.insert(d);
  const KMeansResult via_stream = kmeans(stream.finalize().points, kopts);

  SensitivitySampleOptions sopts;
  sopts.k = 3;
  sopts.sample_size = 128;
  Rng rng = make_rng(407);
  const KMeansResult via_batch =
      kmeans(sensitivity_sample(d, sopts, rng).points, kopts);

  const double stream_ratio = kmeans_cost(d, via_stream.centers) / full;
  const double batch_ratio = kmeans_cost(d, via_batch.centers) / full;
  EXPECT_LT(stream_ratio, batch_ratio + 0.3);
  EXPECT_LT(stream_ratio, 1.4);
}

}  // namespace
}  // namespace ekm
