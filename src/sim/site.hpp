// Site actors of the simulated edge deployment.
//
// A Site is one data source: a device with its own virtual clock, a
// relative compute speed (stragglers and heterogeneous hardware make
// this < 1), a radio, and an energy meter. The SimNetwork advances a
// site's clock as it computes, waits out outages, and transmits; the
// paper's per-device metrics (device time, §7's energy discussion) fall
// out of these fields instead of wall-clock measurements, which keeps
// them bitwise deterministic for a fixed scenario seed.
#pragma once

#include <cstdint>
#include <vector>

#include "net/link_model.hpp"
#include "sim/round_policy.hpp"
#include "sim/scenario.hpp"

namespace ekm {

struct Site {
  /// Relative compute speed: 1.0 = the reference edge CPU; 0.25 = a
  /// straggler that takes 4x longer for the same local work.
  double compute_speed = 1.0;
  /// The site's radio class (uplink and downlink ride the same radio).
  LinkModel radio;
  /// Per-site fault rates. Seeded from SimScenario::loss_rate /
  /// dropout_rate and then adjusted by `siteN.loss=` / `siteN.dropout=`
  /// scenario overrides (docs/simulation.md, per-site heterogeneity).
  double loss_rate = 0.0;
  double dropout_rate = 0.0;
  /// Retransmission strategy of this site's radio stack (both
  /// directions of its link). Seeded from SimScenario::retry and then
  /// adjusted by `siteN.retry=` overrides; the fleet-wide backoff
  /// knobs stay on the scenario.
  RetryStrategy retry = RetryStrategy::kFixed;
  /// Virtual time up to which this site's actions are committed.
  double clock_s = 0.0;
  /// Transmit energy spent so far, including failed attempts.
  double energy_j = 0.0;
  /// Dropout windows this site sat through.
  std::uint32_t outages = 0;

  /// Trace-driven link schedule (`siteN.trace=`): sorted by start time;
  /// empty = the radio's static bandwidth/loss apply for the whole run.
  std::vector<TraceSegment> trace;

  // --- fleet membership (`siteN.join=`/`siteN.leave=`, `churn=`) ----------
  /// Whether the site is a member at virtual time 0.
  bool initial_member = true;
  /// Sorted instants at which membership flips. Explicit join/leave
  /// overrides pin these; under stochastic churn SimNetwork extends
  /// them lazily from the site's dedicated churn RNG stream. Empty on
  /// a static fleet (every prior PR's behavior, bit for bit).
  std::vector<double> membership_toggles;
};

}  // namespace ekm
