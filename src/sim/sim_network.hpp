// Discrete-event simulated star network (the time-aware Fabric).
//
// SimNetwork implements the same Fabric interface the synchronous
// Network does, so every protocol in src/distributed and src/core runs
// over it unchanged — but here a frame takes time. Sending charges the
// sender's virtual clock for the compute that produced the frame,
// waits out dropout windows, serializes on the link, rides the radio
// (bits / bandwidth + per-frame latency, jittered), may be lost in
// flight and retransmitted, and finally fires a delivery event.
// Receiving advances the virtual clock by draining the event queue
// until the frame has arrived. The paper's scalar/bit ledgers are
// billed exactly as the synchronous Channel bills them (goodput only),
// so a fault-free simulation reproduces the Network ledgers bit for
// bit; faults show up in airtime, energy, retransmitted bits and the
// completion clock instead.
//
// Two things can now make a frame fail for good (both are first-class
// kDrop outcomes at the frame level, traced as kExpire):
//   * retry-budget exhaustion — all max_retries + 1 attempts were lost;
//   * a round deadline (open_round / RoundPolicy) — retransmissions
//     that would start after the deadline are canceled, and a frame
//     that has not delivered by the deadline is abandoned by the
//     receiver (receive_by returns nullopt).
// Every attempt actually made stays billed in airtime/energy/stats;
// the protocols aggregate over whichever sites delivered.
//
// What happens *between* attempts is the site's RetryPolicy
// (round_policy.hpp, scenario `retry=` / `siteN.retry=`): the default
// fixed ack-timeout (PR 2/3, bit for bit), exponential backoff with
// jitter, or deadline-aware give-up, which skips an attempt whose
// unjittered airtime cannot complete before the open round's cutoff —
// expiring the frame without keying the radio.
//
// Determinism: every random draw (loss, jitter, dropout, site speeds)
// comes from per-link/per-network RNG streams derived from the
// scenario seed, consumed on the protocol thread in program order. The
// EKM_THREADS pool never touches the simulator, so event order and all
// ledgers are bitwise identical at any thread count (tests/test_sim.cpp
// asserts this).
#pragma once

#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/channel.hpp"
#include "sim/event_queue.hpp"
#include "sim/scenario.hpp"
#include "sim/site.hpp"

namespace ekm {

class SimNetwork;

/// Fault/airtime accounting of one link (or an aggregate over links).
/// Unlike TrafficLedger, which bills goodput in the paper's units,
/// these count the physical cost of getting the goodput through.
struct LinkStats {
  std::uint64_t attempts = 0;         ///< transmissions incl. retries
  std::uint64_t drops = 0;            ///< attempts lost in flight
  std::uint64_t retransmit_bits = 0;  ///< wire bits spent on retries
  double airtime_s = 0.0;             ///< radio-on time incl. failures
  std::uint64_t expired = 0;          ///< frames the sender gave up on
                                      ///< (retry budget or deadline)
  std::uint64_t missed = 0;           ///< frames the receiver abandoned
                                      ///< (expired, or delivered late)
  std::uint64_t supplemental = 0;     ///< the subset of `missed` that were
                                      ///< reallocation-wave *supplements*
                                      ///< (uplink frames sent under
                                      ///< open_subround): the site's
                                      ///< first-wave data still stands, so
                                      ///< these misses lose no data.
                                      ///< Always 0 on downlinks.
  std::uint64_t orphaned = 0;         ///< the subset of `expired` resolved
                                      ///< by a membership change: the site
                                      ///< had left (siteN.leave / churn)
                                      ///< when the frame needed its radio,
                                      ///< so the frame dropped without an
                                      ///< attempt beyond those already made.

  LinkStats& operator+=(const LinkStats& o) {
    attempts += o.attempts;
    drops += o.drops;
    retransmit_bits += o.retransmit_bits;
    airtime_s += o.airtime_s;
    expired += o.expired;
    missed += o.missed;
    supplemental += o.supplemental;
    orphaned += o.orphaned;
    return *this;
  }
};

/// One frame's resolved fate, decided entirely at send time (every
/// random draw happens in program order on the protocol thread).
struct SimFrame {
  Message msg;
  /// Delivery time; for expired frames, the moment the sender gave up.
  double arrival = 0.0;
  bool expired = false;
  /// The round the frame was sent under (kNoRound for downlinks and
  /// round-less traffic). Uplink receives scoped to a round assert
  /// this matches — the structural guard that a late straggler from
  /// round r can never be consumed as round r+1's frame.
  RoundId round = kNoRound;
  /// An uplink frame sent during a reallocation wave (between
  /// open_subround and the next open_round): a miss of such a frame is
  /// supplemental — the sender's first-wave data still stands at the
  /// server. Downlink frames are never tagged (a later phase may
  /// broadcast before opening its own round, e.g. refine's centers
  /// push), so a lost wave broadcast counts like any downlink miss.
  bool wave = false;
  /// Predicted-arrival NAK time (round pipelining only): the earliest
  /// moment the sender could *prove* the frame would miss its round's
  /// cutoff — an attempt whose minimum-possible airtime overshoots, or
  /// the abandonment itself — plus one control-frame latency.
  /// kNoDeadline when no miss is provable (delivered in time, or an
  /// unbounded round). Consulted only on the receiver's miss path, so
  /// it cannot perturb hits.
  double nak_at = kNoDeadline;
  /// Index among this link's delivered frames (valid when !expired);
  /// ties the frame to its kDeliver event for the receive drain.
  std::uint64_t delivery_seq = 0;
  /// Index of this frame's FrameCausal in the attached Recorder
  /// (obs/recorder.hpp), or kNoCausalFrame when none is attached. Pure
  /// annotation: set and read only behind the recorder branch, so the
  /// member's existence cannot perturb an unrecorded run.
  std::uint64_t causal = static_cast<std::uint64_t>(-1);
};

/// One direction of one site's radio, wrapping the Channel billing
/// discipline with transmission timing and fault injection.
class SimLink final : public Port {
 public:
  void send(Message msg) override;
  [[nodiscard]] bool has_pending() const override { return !in_flight_.empty(); }
  [[nodiscard]] Message receive() override;
  [[nodiscard]] std::optional<Message> receive_by(
      RoundId round, double deadline_cap = kNoDeadline) override;
  std::optional<Message> receive_by(double) = delete;  // see Port
  [[nodiscard]] const TrafficLedger& ledger() const override { return ledger_; }

  [[nodiscard]] const LinkStats& stats() const { return stats_; }

 private:
  friend class SimNetwork;
  SimLink(SimNetwork* net, std::uint32_t site, bool uplink, std::uint64_t seed)
      : net_(net), site_(site), uplink_(uplink), rng_(make_rng(seed)) {}

  SimNetwork* net_;
  std::uint32_t site_;
  bool uplink_;
  TrafficLedger ledger_;  ///< goodput, billed at send exactly like Channel
  LinkStats stats_;
  double busy_until_ = 0.0;  ///< the air is occupied until here
  double consumed_at_ = 0.0;  ///< when the last receive on this link
                              ///< resolved (arrival, or miss learned)
  Rng rng_;                  ///< per-link fault/jitter stream
  std::deque<SimFrame> in_flight_;  ///< sent, not yet consumed (FIFO)
  std::uint64_t deliveries_scheduled_ = 0;  ///< kDeliver events pushed
  std::uint64_t deliveries_done_ = 0;       ///< kDeliver events processed
};

class SimNetwork final : public Fabric {
 public:
  SimNetwork(std::size_t num_sites, const SimScenario& scenario);

  // Links hold back-pointers to their owning network; a copy or move
  // would leave them aimed at the old object.
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  // --- Fabric -------------------------------------------------------------
  [[nodiscard]] std::size_t num_sources() const override { return sites_.size(); }
  [[nodiscard]] Port& uplink(std::size_t source) override;
  [[nodiscard]] Port& downlink(std::size_t source) override;

  /// Opens collection round r (handles are 1-based, in open order) and
  /// anchors its cutoff at the server's current virtual clock. Cutoff
  /// and wave state live in a per-round RoundContext table — NOT one
  /// global — so a prior round's stragglers can still be resolving
  /// (their frames tagged with *their* round) while this round's
  /// traffic rides the fabric. Uplink transmission attempts that would
  /// start at or after the sending round's cutoff are canceled (the
  /// sites know the round schedule), so a straggling or lossy site's
  /// frame expires instead of arriving eventually.
  RoundId open_round(double deadline_seconds) override;

  /// Absolute cutoff of round `round` (kNoDeadline for kNoRound).
  [[nodiscard]] double round_cutoff(RoundId round) const override;

  /// Opens a sub-deadline inside round `round` (the budget
  /// reallocation wave): clamps that round's cutoff to
  /// min(current, absolute_deadline) so the wave respects the round
  /// boundary, marks the round as in-wave (frames sent under it from
  /// here are supplements), and counts the wave in subrounds_opened().
  RoundId open_subround(RoundId round, double absolute_deadline) override;

  // --- inspection ---------------------------------------------------------
  [[nodiscard]] const SimLink& uplink_view(std::size_t source) const;
  [[nodiscard]] const SimLink& downlink_view(std::size_t source) const;
  [[nodiscard]] const Site& site(std::size_t i) const;
  [[nodiscard]] const SimScenario& scenario() const { return scenario_; }

  /// Virtual time of the latest processed event.
  [[nodiscard]] double now() const { return clock_; }
  [[nodiscard]] double server_clock() const { return server_clock_; }

  // Actor clocks for the phase scheduler's timelines (src/sched/).
  [[nodiscard]] double server_time() const override { return server_clock_; }
  [[nodiscard]] double site_time(std::size_t source) const override {
    EKM_EXPECTS(source < sites_.size());
    return sites_[source].clock_s;
  }

  /// Unjittered single-attempt airtime of a `wire_bits` uplink frame at
  /// the site's current clock — honoring the active trace segment —
  /// for adaptive quantization's fit-the-budget check (qt/policy.hpp).
  [[nodiscard]] double uplink_airtime_s(std::size_t source,
                                        std::uint64_t wire_bits) const override;

  /// Whether the site is a fleet member at its own current clock.
  /// Always true on a static fleet; under churn this lazily extends the
  /// site's membership schedule (a dedicated RNG stream — no draw ever
  /// touches the link streams, so protocol determinism is unaffected).
  [[nodiscard]] bool is_member(std::size_t source) override;

  /// Advances site `source`'s clock to at least `t` (monotone max).
  /// Used by gateway merge barriers (net/tree_fabric.hpp) to charge the
  /// wait for children's frames to the gateway's own timeline; pure
  /// clock bookkeeping — no event, no draw, no ledger.
  void wait_until(std::size_t source, double t) override {
    EKM_EXPECTS(source < sites_.size());
    Site& s = sites_[source];
    if (t > s.clock_s) s.clock_s = t;
  }

  /// When the last receive on `source`'s uplink resolved (see Fabric).
  [[nodiscard]] double uplink_consumed_at_s(std::size_t source) const override {
    EKM_EXPECTS(source < up_.size());
    return up_[source].consumed_at_;
  }

  /// Largest number of events ever simultaneously pending — the
  /// event-queue pressure gauge the fleet-scale sweeps report.
  [[nodiscard]] std::size_t queue_high_water() const {
    return queue_.high_water();
  }

  /// Phase-overlap scheduling (RoundPolicy::overlap; scheduler.hpp has
  /// the model): when on, a sender-side uplink expiry inside a finite
  /// round is NAK'd to the server out-of-band — the server learns of
  /// the miss at `abandon + per-frame latency` (clamped to the round
  /// cutoff) instead of waiting the round out, so merge barriers
  /// commit the moment every frame's fate is final. The NAK is a
  /// control-plane frame: no payload airtime, no energy, nothing on
  /// any ledger. Initialized from the scenario; the Coordinator may
  /// override it from PipelineConfig::overlap_phases.
  void set_phase_overlap(bool on) { overlap_ = on; }
  [[nodiscard]] bool phase_overlap() const { return overlap_; }

  /// Misses of reallocation-wave frames (see LinkStats::supplemental):
  /// counted inside missed_frames() but losing no data. Exact data
  /// loss is missed_frames() - supplemental_misses().
  [[nodiscard]] std::uint64_t supplemental_misses() const {
    return supplemental_misses_;
  }

  /// Absolute cutoff of the most recently opened round (kNoDeadline
  /// before the first open_round, or when that round is unbounded).
  /// Inspection convenience over round_cutoff(current round).
  [[nodiscard]] double round_deadline() const {
    return round_cutoff(current_round_);
  }

  /// The most recently opened round's handle (kNoRound before the
  /// first open_round). New uplink frames are tagged with this round.
  [[nodiscard]] RoundId current_round() const { return current_round_; }

  /// Cross-round pipelining (RoundPolicy::pipeline, scenario
  /// `pipeline=`, CLI `--pipeline`): when on, sender-side
  /// predicted-arrival NAKs fire the moment a site's scheduled airtime
  /// *provably* overshoots its round's cutoff — at the attempt start
  /// whose minimum-possible (best-jitter) airtime cannot finish in
  /// time, not at abandon time — so the server learns of a miss (and
  /// commits the round's barrier) as early as the physics allows, and
  /// the next round's downlink broadcast rides the fabric while the
  /// straggler's timeline still runs. Like the overlap NAK this is a
  /// control-plane frame: no payload airtime, no energy, nothing on
  /// any ledger, no event pushed — which is why fault-free and
  /// infinite-deadline runs are bitwise identical with this on or off
  /// (the miss path never consults nak_at). Initialized from the
  /// scenario; the Coordinator may override it from
  /// PipelineConfig::pipeline_rounds.
  void set_round_pipelining(bool on) { pipelining_ = on; }
  [[nodiscard]] bool round_pipelining() const { return pipelining_; }

  /// Critical-path lower bound on the server commit clock: mirrors
  /// every server_clock_ advancement that is real work or a real
  /// arrival (downlink compute, downlink store-and-forward, uplink
  /// arrivals actually consumed) but deletes the waits spent purely on
  /// learning that a straggler missed. By induction it never exceeds
  /// server_clock(); pipelined schedules are judged against it (the
  /// bench's critical-path column — how close the predicted NAKs get
  /// the commit clock to the no-stall schedule).
  [[nodiscard]] double server_critical_path() const {
    return cp_server_clock_;
  }

  /// Frames a receive_by caller abandoned: expired in flight, or
  /// delivered after the round deadline. These are the protocol-level
  /// drops that partial aggregation absorbs.
  [[nodiscard]] std::uint64_t missed_frames() const { return missed_frames_; }

  /// Collection rounds opened so far (open_round calls).
  [[nodiscard]] std::uint64_t rounds_opened() const override {
    return rounds_opened_;
  }

  /// Frames resolved as drops by a membership change (see
  /// LinkStats::orphaned), across all links.
  [[nodiscard]] std::uint64_t orphaned_frames() const {
    return orphaned_frames_;
  }

  /// Membership changes crossed during the run, counted by finish()
  /// over [0, completion] (0 before finish() on a static fleet — and
  /// after it, when nothing churned).
  [[nodiscard]] std::uint64_t joins() const { return joins_; }
  [[nodiscard]] std::uint64_t leaves() const { return leaves_; }

  /// Within-round reallocation waves opened so far (open_subround
  /// calls). Zero on every fault-free or miss-free run.
  [[nodiscard]] std::uint64_t subrounds_opened() const {
    return subrounds_opened_;
  }

  /// Drains every pending event (e.g. broadcast frames no one reads),
  /// checks the per-link ledger invariants, and returns the quiescent
  /// completion time: the moment the last clock, delivery, or radio
  /// falls silent.
  double finish();

  /// Sum of per-site transmit+receive energy (the server is mains
  /// powered and not metered).
  [[nodiscard]] double energy_joules() const;

  /// Dropout windows sat out across all sites.
  [[nodiscard]] std::uint64_t total_outages() const;

  [[nodiscard]] LinkStats total_uplink_stats() const;
  [[nodiscard]] LinkStats total_downlink_stats() const;

  /// Every event processed so far — in processing order while the
  /// simulation runs, canonicalized to (time, push-seq) order by
  /// finish(). The determinism tests compare this log across
  /// EKM_THREADS.
  [[nodiscard]] const std::vector<SimEvent>& event_log() const { return log_; }

  /// Consumes the log without copying (a lossy multi-round run holds
  /// tens of thousands of events). Call after finish().
  [[nodiscard]] std::vector<SimEvent> take_event_log() {
    return std::move(log_);
  }

  /// Attaches a flight recorder (src/obs/): frame events are mirrored
  /// as trace instants (independent of the `event-log=` cap), one
  /// metrics snapshot is taken per collection round, and the phase
  /// scheduler forwards its TaskSpans through Fabric::recorder().
  /// Recording is strictly read-only on the simulation: it draws no
  /// randomness, pushes no events, and advances no clock, so every
  /// number the run produces is bitwise identical with or without a
  /// recorder (tests/test_obs.cpp). Null detaches.
  void set_recorder(Recorder* recorder);
  [[nodiscard]] Recorder* recorder() override { return recorder_; }

 private:
  friend class SimLink;
  void do_send(SimLink& link, Message msg);
  [[nodiscard]] std::optional<Message> do_receive_by(SimLink& link,
                                                     RoundId round,
                                                     double deadline_cap);
  void advance_one_event();
  void assert_link_invariants(const SimLink& link) const;

  /// Closes the latest opened round on the recorder (a snapshot of the
  /// cumulative counters; the recorder diffs them into per-round
  /// deltas). Called at the next open_round and at finish(); guarded
  /// so each round snapshots exactly once. No-op without a recorder.
  void snapshot_round_to_recorder();

  /// Fleet membership of site i at virtual time t. Under stochastic
  /// churn the site's toggle schedule is extended lazily past t from
  /// its dedicated churn RNG stream (hence non-const).
  [[nodiscard]] bool site_member_at(std::size_t i, double t);

  SimScenario scenario_;
  std::vector<Site> sites_;
  std::vector<SimLink> up_;
  std::vector<SimLink> down_;
  EventQueue queue_;
  std::vector<SimEvent> log_;
  double clock_ = 0.0;         ///< latest processed event time
  double server_clock_ = 0.0;  ///< server actor's committed time
  double cp_server_clock_ = 0.0;  ///< critical-path mirror (see above)

  /// Per-round lifecycle state, indexed by RoundId - 1. A context is
  /// never erased: a late frame's round stays resolvable (its cutoff,
  /// its wave flag) for the whole run, which is what lets round r+1
  /// open while round r's stragglers are still on the air.
  struct RoundContext {
    double cutoff = kNoDeadline;  ///< absolute deadline (server clock)
    bool in_wave = false;  ///< open_subround seen; later uplink frames
                           ///< in this round are supplements
  };
  std::vector<RoundContext> rounds_;
  RoundId current_round_ = kNoRound;  ///< latest open_round handle;
                                      ///< tags new uplink frames

  bool overlap_ = false;     ///< phase-overlap commit rule (see above)
  bool pipelining_ = false;  ///< predicted-arrival NAKs (see above)
  std::uint64_t missed_frames_ = 0;
  std::uint64_t supplemental_misses_ = 0;
  std::uint64_t rounds_opened_ = 0;
  std::uint64_t subrounds_opened_ = 0;
  Recorder* recorder_ = nullptr;        ///< optional flight recorder
  std::uint64_t rounds_snapshotted_ = 0;  ///< rounds already snapshotted

  // --- fleet membership (join/leave overrides, stochastic churn) ----------
  bool membership_active_ = false;   ///< any toggles or churn_rate > 0;
                                     ///< false = static fleet, zero overhead
  std::vector<char> churn_managed_;  ///< per site: schedule extends lazily
                                     ///< from churn_rng_ (no explicit
                                     ///< join/leave pinned it)
  std::vector<Rng> churn_rng_;       ///< per-site churn streams (empty
                                     ///< unless churn_rate > 0)
  std::uint64_t orphaned_frames_ = 0;
  std::uint64_t joins_ = 0;   ///< filled by finish()
  std::uint64_t leaves_ = 0;  ///< filled by finish()
};

}  // namespace ekm
