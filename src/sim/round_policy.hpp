// Deadline and retransmission policies for collection rounds.
//
// PR 2's simulator billed every fault as retransmit-until-delivered:
// losses cost airtime, energy and virtual time, but the server always
// waited for every site, so faults could never change the answer. A
// RoundPolicy is the other half of the trade-off federated and edge
// systems actually make: each collection round gets a wall-clock
// budget, sites whose uplink has not delivered by the deadline are
// dropped from that round, and the server aggregates over the partial
// responder set (FedAvg-style straggler dropping, applied to the
// paper's summary protocols).
//
// The policy rides the scenario (SimScenario::round, CLI key
// `deadline=`, flag `--deadline`); the Coordinator copies it into
// PipelineConfig::round_deadline_s, and the protocols in
// src/distributed enforce it through Fabric::open_round /
// Port::receive_by — so the same protocol code runs the paper's
// wait-for-everyone rounds (deadline = infinity) and deadline-driven
// partial rounds, over either fabric.
//
// A RetryPolicy governs what a sender does *between* attempts of one
// frame. PR 2/3 hard-coded the fixed ack-timeout (one per-frame
// latency, then retransmit); that stays the default and is bitwise
// unchanged. The two alternatives are the strategies edge stacks
// actually deploy: exponential backoff with jitter (decorrelates
// retransmission bursts on a congested radio) and deadline-aware
// give-up (a sender that can see the attempt cannot complete before
// the round cutoff keeps the radio off instead of burning airtime on
// a frame the server will abandon anyway).
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace ekm {

/// What a sender does after a transmission attempt is lost.
enum class RetryStrategy {
  /// Retransmit after a fixed ack-timeout of one per-frame latency —
  /// the PR 2/3 behavior, reproduced bit for bit (no extra RNG draws).
  kFixed,
  /// Exponential backoff: the k-th retransmission waits
  /// latency × min(backoff_base^k, backoff_cap), jittered by
  /// ±backoff_jitter. Spreads retry bursts out in time; costs clock,
  /// never goodput.
  kBackoff,
  /// Fixed ack-timeout, plus deadline awareness: an attempt whose
  /// unjittered airtime cannot complete before the open round's cutoff
  /// is never keyed — the frame expires on the spot and the radio
  /// (airtime, energy) is saved. With no deadline this is kFixed.
  kGiveUp,
};

[[nodiscard]] constexpr const char* retry_strategy_name(RetryStrategy s) {
  switch (s) {
    case RetryStrategy::kFixed: return "fixed";
    case RetryStrategy::kBackoff: return "backoff";
    case RetryStrategy::kGiveUp: return "giveup";
  }
  return "?";
}

/// Retransmission policy (scenario key `retry=`, per-site
/// `siteN.retry=`, CLI `--retry`). The backoff knobs apply fleet-wide;
/// only the strategy is per-site overridable.
struct RetryPolicy {
  RetryStrategy strategy = RetryStrategy::kFixed;
  /// Backoff growth per retry (delay factor = base^attempt, attempt
  /// 0-based, so the first retransmission waits one ack-timeout).
  double backoff_base = 2.0;
  /// Cap on the backoff factor (multiples of the ack-timeout).
  double backoff_cap = 64.0;
  /// Symmetric jitter on each backoff delay: scaled by U[1−j, 1+j].
  /// Drawn from the per-link RNG stream on the protocol thread, so
  /// backoff runs stay thread-count deterministic like everything else.
  double backoff_jitter = 0.1;
};

struct RoundPolicy {
  /// Virtual seconds each collection round may take, measured from the
  /// moment the server opens the round (Fabric::open_round). Infinity
  /// (the default) reproduces the paper's synchronous protocol
  /// bit for bit.
  double deadline_s = std::numeric_limits<double>::infinity();

  /// Availability floor: a round that leaves fewer responding sites
  /// than this throws instead of aggregating a degenerate summary.
  /// Counted over *distinct* sites — a site that also completes a
  /// reallocation wave is still one responder.
  std::size_t min_responders = 1;

  /// Deadline-aware budget reallocation (scenario key `realloc=`):
  /// when a site that was allocated part of a round's sample budget
  /// misses the round, the server re-splits the lost allocation among
  /// the still-live responders in a second within-round wave (see
  /// disss.cpp). Off reproduces PR 3's renormalize-over-responders
  /// behavior; either way a round with no misses never opens a wave,
  /// so this flag cannot perturb clean runs.
  bool reallocate = true;

  /// Fraction of a *finite* round budget the schedule reserves for the
  /// reallocation wave (scenario key `realloc-reserve=`): first-wave
  /// summaries are due at `deadline − reserve × budget`, supplements at
  /// the round cutoff. The server only learns who missed a finite
  /// round when the collection deadline passes, so without a reserve a
  /// wave could never deliver — with 0 (the default) finite-deadline
  /// rounds skip the wave entirely and behave exactly like PR 3, and
  /// reallocation acts only on unbounded rounds (where retry-budget
  /// expiries surface the moment the sender gives up). A positive
  /// reserve is the explicit over-provisioning trade: sites that would
  /// have arrived inside the reserve window are dropped and their
  /// budget re-split (the `deadline-fleet` preset schedules 0.5).
  double realloc_reserve = 0.0;

  /// Phase-overlap scheduling (scenario key `overlap=`, CLI
  /// `--overlap`; src/sched/scheduler.hpp has the full story): when a
  /// site abandons an uplink frame inside a finite round — retry
  /// budget spent, or a give-up/cancelation at the radio — it NAKs the
  /// server out-of-band (one control-frame latency, no payload
  /// airtime, nothing billed), so the round's merge barrier commits
  /// the moment every frame's fate is final instead of waiting the
  /// deadline out. Downstream phases then start earlier on the virtual
  /// clock: a fast site runs its disSS round while a straggler's
  /// abandoned disPCA frame would still have pinned the old barrier.
  /// Barriers stay committed-only (no speculation), so fault-free and
  /// infinite-deadline runs are bitwise identical with this on or off
  /// — with no deadline the server already learns of an expiry when
  /// the sender gives up. Off (the default) is PR 4's wait-out-the-
  /// round behavior, bit for bit.
  bool overlap = false;

  /// Cross-round pipelining (scenario key `pipeline=`, CLI
  /// `--pipeline`): two mechanisms behind one switch. On the fabric,
  /// sender-side *predicted-arrival* NAKs fire the moment a site's
  /// scheduled airtime provably overshoots its round's cutoff — at the
  /// attempt start whose best-case (minimum-jitter) airtime cannot
  /// finish in time — instead of at abandon time, so merge barriers
  /// commit as early as the physics allows (strictly no later than the
  /// `overlap` NAK, and covering delivered-but-late frames overlap
  /// never sees). In the task graphs, round r+1's tasks depend only on
  /// round r's *committed* barrier, so the next round's downlink
  /// broadcast rides the fabric while round r's stragglers resolve
  /// (per-round RoundContext state in SimNetwork keeps their frames
  /// from aliasing). Barriers stay committed-only, so fault-free and
  /// infinite-deadline runs are bitwise identical with this on or off;
  /// straggler fleets keep identical centers/ledgers/energy with a
  /// strictly earlier server completion. Off (the default) is PR 8's
  /// round-serial behavior, bit for bit.
  bool pipeline = false;

  /// True when rounds can actually drop sites.
  [[nodiscard]] bool active() const { return std::isfinite(deadline_s); }
};

}  // namespace ekm
