#include "dr/pca.hpp"

#include <algorithm>
#include <cmath>

namespace ekm {

PcaProjection pca_project(const Dataset& data, std::size_t t) {
  EKM_EXPECTS(!data.empty());
  const std::size_t r = std::min({t, data.size(), data.dim()});
  EKM_EXPECTS_MSG(r >= 1, "PCA target dimension must be >= 1");

  Svd svd = thin_svd(data.points());
  PcaProjection out;
  // Residual energy = sum of squared singular values beyond t.
  for (std::size_t j = r; j < svd.rank(); ++j) {
    out.residual_sq += svd.sigma[j] * svd.sigma[j];
  }
  svd.truncate(r);
  out.map = LinearMap(svd.v);  // d x r
  Matrix coords = matmul(data.points(), svd.v);
  out.coords = data.is_weighted() ? Dataset(std::move(coords), *data.weights())
                                  : Dataset(std::move(coords));
  return out;
}

Dataset pca_project_within(const PcaProjection& pca) {
  // Ā = (A V_t) V_t^T — lift the coordinates back with the basis itself
  // (V_t is orthonormal, so V_t^T is its pseudoinverse).
  Matrix ambient = matmul_a_bt(pca.coords.points(), pca.map.projection());
  return pca.coords.is_weighted()
             ? Dataset(std::move(ambient), *pca.coords.weights())
             : Dataset(std::move(ambient));
}

std::size_t fss_intrinsic_dim(std::size_t k, double epsilon, std::size_t n,
                              std::size_t d) {
  EKM_EXPECTS(epsilon > 0.0);
  const double t = static_cast<double>(k) +
                   std::ceil(4.0 * static_cast<double>(k) / (epsilon * epsilon)) -
                   1.0;
  const auto bound = std::min(n, d);
  return std::max<std::size_t>(1,
                               std::min(static_cast<std::size_t>(t), bound));
}

}  // namespace ekm
