// Quantizer tuning: the §6.3 workflow as a user would run it.
//
// Given a bound Y0 on acceptable solution quality, pick the number of
// significand bits s (and the error split ε) that minimizes the modeled
// communication cost, then validate the pick by running the
// JL+FSS+JL+QT pipeline at s-2, s, and 52.
#include <cmath>
#include <cstdio>

#include "core/experiment.hpp"
#include "data/generators.hpp"
#include "kmeans/bicriteria.hpp"
#include "qt/config.hpp"

int main() {
  using namespace ekm;

  Rng rng = make_rng(55);
  MnistLikeSpec spec;
  spec.n = 3000;
  spec.dim = 392;
  const Dataset data = make_mnist_like(spec, rng);

  // Step 1 (§6.3.1): lower-bound the optimal cost by adaptive sampling.
  Rng erng = make_rng(56);
  const double e_bound = estimate_opt_cost_lower_bound(data, 2, 4, erng);

  double max_norm = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    max_norm = std::max(max_norm, norm2(data.point(i)));
  }

  // Step 2: optimize the configuration for Y0 = 2 (at most 2x optimal).
  QtConfigProblem problem;
  problem.y0 = 2.0;
  problem.k = 2;
  problem.n = data.size();
  problem.d = data.dim();
  problem.diameter = 2.0 * std::sqrt(static_cast<double>(data.dim()));
  problem.max_point_norm = max_norm;
  problem.opt_cost_lower_bound = e_bound;

  const auto best = optimize_qt_config(problem);
  if (!best) {
    std::printf("Y0 too tight for any quantizer setting — raise Y0.\n");
    return 1;
  }
  std::printf("optimizer: keep s=%d significand bits (eps=%.3f, modeled "
              "X=%.3g bits)\n",
              best->significant_bits, best->epsilon, best->modeled_cost_bits);

  // Step 3: validate the pick empirically.
  ExperimentContext ctx(data, 2, 77);
  PipelineConfig config;
  config.epsilon = 0.3;
  config.seed = 78;
  config.coreset_size = 200;
  config.jl_dim = 80;
  config.pca_dim = 20;
  for (int s : {std::max(1, best->significant_bits - 2),
                best->significant_bits, 52}) {
    PipelineConfig c = config;
    c.significant_bits = s;
    const ExperimentSeries series = ctx.run(PipelineKind::kJlFssJl, c, 3);
    std::printf("s=%-3d normalized cost=%.4f  normalized comm=%.4e\n", s,
                summarize(series.costs()).mean,
                summarize(series.comm_bits()).mean);
  }
  std::printf("expected: cost flat in s beyond the knee; comm shrinking "
              "with smaller s.\n");
  return 0;
}
