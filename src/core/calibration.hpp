// Error-parameter calibration (§5.3 / Table 2 of the paper).
//
// Each algorithm reaches a different power of (1+ε)/(1-ε) in its
// approximation guarantee, so comparing them at equal error requires
// solving (1+x)^a / (1-x)^b = 1 + ε for the internal parameter x:
//   FSS          a=1, b=1        Alg 1 (JL+FSS)      a=5, b=1
//   Alg 2 (FSS+JL) a=5, b=1      Alg 3 (JL+FSS+JL)   a=9, b=1
//   BKLW         a=2, b=2        Alg 4 (JL+BKLW)     a=6, b=2
#pragma once

namespace ekm {

/// Solves (1+x)^a / (1-x)^b = 1 + target for x in (0, 1) by bisection
/// (the left side is strictly increasing). Requires target > 0.
[[nodiscard]] double solve_internal_epsilon(double target, double a, double b);

[[nodiscard]] double epsilon_for_fss(double target);      // (1+x)/(1-x)
[[nodiscard]] double epsilon_for_alg1(double target);     // (1+x)^5/(1-x)
[[nodiscard]] double epsilon_for_alg2(double target);     // (1+x)^5/(1-x)
[[nodiscard]] double epsilon_for_alg3(double target);     // (1+x)^9/(1-x)
[[nodiscard]] double epsilon_for_bklw(double target);     // (1+x)^2/(1-x)^2
[[nodiscard]] double epsilon_for_alg4(double target);     // (1+x)^6/(1-x)^2

}  // namespace ekm
