// Distributed k-means baselines from the paper's related work (§2):
// "there are also system works on adapting centralized k-means algorithms
// for distributed settings, e.g., MapReduce [28], sensor networks [29],
// and Peer-to-Peer networks [30]. However, these algorithms are only
// heuristics." — and, from the introduction, the federated-learning
// alternative of shipping model parameters every round instead of one
// data summary.
//
// These implementations let the benches quantify both contrasts against
// BKLW / JL+BKLW on the same simulated network with the same ledgers:
//  * distributed_lloyd  — federated-style synchronous Lloyd: the server
//    broadcasts centers, sources return per-cluster sufficient
//    statistics, repeat until convergence. Multi-round: communication
//    grows with rounds x m x k x (d+1).
//  * mapreduce_kmeans   — one-shot [28]-style: each source solves k-means
//    locally and uplinks its k weighted centers; the server clusters the
//    m x k candidates. Cheap (m·k·d scalars) but unguaranteed — local
//    solves can merge clusters a global view would keep apart.
//  * gossip_kmeans      — server-free [30]-style P2P: sources on a random
//    connected graph improve local centers with a Lloyd step and average
//    greedily-matched centers with a random neighbour each round.
#pragma once

#include <cstdint>
#include <span>

#include "common/timer.hpp"
#include "data/dataset.hpp"
#include "kmeans/lloyd.hpp"
#include "net/channel.hpp"

namespace ekm {

struct DistributedLloydOptions {
  std::size_t k = 2;
  int max_rounds = 50;
  double rel_tol = 1e-6;  ///< stop when the global cost improves less
  std::uint64_t seed = 42;

  /// Per-round deadline: stragglers' sufficient statistics are dropped
  /// and the center update averages over the responders (the FedAvg
  /// straggler-dropping model). Infinity = synchronous rounds.
  double round_deadline_s = kNoDeadline;
  std::size_t min_responders = 1;  ///< fewer responders than this throws
};

struct DistributedBaselineResult {
  Matrix centers;
  double cost = 0.0;   ///< exact global k-means cost of the final centers
  int rounds = 0;      ///< network rounds used
};

/// Federated-style synchronous distributed Lloyd. Seeds with a
/// weight-proportional sample gathered in one extra round.
[[nodiscard]] DistributedBaselineResult distributed_lloyd(
    std::span<const Dataset> parts, const DistributedLloydOptions& opts,
    Fabric& net, Stopwatch& device_work);

struct MapReduceOptions {
  std::size_t k = 2;
  int local_restarts = 3;
  std::uint64_t seed = 42;

  /// Deadline for the single map round; late local solutions are left
  /// out of the reduce. Infinity = wait for everyone.
  double round_deadline_s = kNoDeadline;
  std::size_t min_responders = 1;  ///< fewer responders than this throws
};

/// One-shot local-solve + merge ([28]-style).
[[nodiscard]] DistributedBaselineResult mapreduce_kmeans(
    std::span<const Dataset> parts, const MapReduceOptions& opts, Fabric& net,
    Stopwatch& device_work);

struct GossipOptions {
  std::size_t k = 2;
  int rounds = 20;
  std::size_t degree = 2;  ///< random out-neighbours per node per round
  std::uint64_t seed = 42;
};

/// Server-free gossip consensus ([30]-style). Communication flows over
/// the uplink ledgers of the two endpoints involved in each exchange
/// (peer traffic is still radio traffic). Returns the centers of the
/// node with the best local cost estimate, evaluated globally.
[[nodiscard]] DistributedBaselineResult gossip_kmeans(
    std::span<const Dataset> parts, const GossipOptions& opts, Fabric& net,
    Stopwatch& device_work);

}  // namespace ekm
