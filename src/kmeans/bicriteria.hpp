// Bicriteria k-means approximation by adaptive (D^2) sampling
// [Aggarwal–Deshpande–Kannan, APPROX'09 — refs [36]/[42] of the paper].
//
// Returns O(beta * k) centers whose cost is, with constant probability, a
// constant-factor approximation of the optimal k-means cost. Used in two
// places:
//  * sensitivity sampling (CR) needs a rough solution to compute
//    sensitivities against;
//  * disSS step 1 has every data source compute a local bicriteria
//    solution and report its cost for proportional sample allocation;
//  * §6.3.1 estimates the lower bound E = cost(P, X)/20 on the optimal
//    cost from the best of log(1/δ) repetitions.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "linalg/matrix.hpp"

namespace ekm {

struct BicriteriaOptions {
  std::size_t k = 2;
  double beta = 3.0;   ///< centers per round = ceil(beta * k)
  int rounds = 4;      ///< adaptive sampling rounds
};

/// One adaptive-sampling run: in each round, draws ceil(beta*k) points
/// with probability proportional to weight x squared distance to the
/// centers chosen so far (first round: proportional to weight).
[[nodiscard]] Matrix bicriteria_centers(const Dataset& data,
                                        const BicriteriaOptions& opts, Rng& rng);

/// Best-of-`repeats` bicriteria cost, divided by 20: a probabilistic
/// lower bound on cost(P, X*) per [36] (§6.3.1 of the paper). `repeats`
/// plays the role of log(1/δ).
[[nodiscard]] double estimate_opt_cost_lower_bound(const Dataset& data,
                                                   std::size_t k, int repeats,
                                                   Rng& rng);

}  // namespace ekm
