// Ablation bench for the design choices called out in DESIGN.md:
//  1. JL family (Gaussian vs Rademacher vs sparse Achlioptas) — same
//     accuracy, different device cost;
//  2. sensitivity sampling vs uniform sampling inside the coreset step;
//  3. exact vs randomized SVD inside FSS's PCA stage (the paper charges
//     FSS with exact-SVD complexity; randomized SVD is the obvious
//     engineering escape hatch and this quantifies what it buys);
//  4. with vs without the bicriteria-center weight top-up in sensitivity
//     sampling (the [4] variant the QT analysis relies on).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/timer.hpp"
#include "cr/fss.hpp"
#include "cr/sensitivity.hpp"
#include "core/experiment.hpp"
#include "dr/jl.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/elkan.hpp"
#include "kmeans/lloyd.hpp"
#include "linalg/sparse.hpp"
#include "linalg/svd.hpp"
#include "qt/quantizer.hpp"
#include "qt/vq.hpp"

using namespace ekm;
using namespace ekm::bench;

namespace {

void ablate_jl_family(const Dataset& data, std::uint64_t seed) {
  std::printf("# Ablation 1 — JL family (d=%zu -> 96)\n", data.dim());
  KMeansOptions kopts;
  kopts.k = 2;
  kopts.seed = seed;
  const double base = kmeans(data, kopts).cost;
  for (auto [family, name] :
       {std::pair{JlFamily::kGaussian, "gaussian"},
        std::pair{JlFamily::kRademacher, "rademacher"},
        std::pair{JlFamily::kSparse, "sparse"}}) {
    Timer gen;
    const LinearMap map = make_jl_projection(data.dim(), 96, seed, family);
    const double gen_s = gen.seconds();
    Timer apply;
    const Dataset proj = map.apply(data);
    const double apply_s = apply.seconds();
    const KMeansResult res = kmeans(proj, kopts);
    const Matrix lifted = map.lift(res.centers);
    std::printf("%-12s gen=%.4fs apply=%.4fs lifted-cost=%.4f\n", name, gen_s,
                apply_s, kmeans_cost(data, lifted) / base);
  }
}

void ablate_sampling(const Dataset& data, std::uint64_t seed) {
  std::printf("# Ablation 2 — sensitivity vs uniform coreset (|S|=200)\n");
  KMeansOptions kopts;
  kopts.k = 2;
  kopts.seed = seed;
  const double base = kmeans(data, kopts).cost;
  for (int variant = 0; variant < 2; ++variant) {
    double worst_cost = 0.0;
    for (std::uint64_t r = 0; r < 5; ++r) {
      Rng rng = make_rng(seed, 10 + r);
      Coreset cs;
      if (variant == 0) {
        SensitivitySampleOptions opts;
        opts.k = 2;
        opts.sample_size = 200;
        cs = sensitivity_sample(data, opts, rng);
      } else {
        cs = uniform_sample_coreset(data, 200, rng);
      }
      const KMeansResult res = kmeans(cs.points, kopts);
      worst_cost = std::max(worst_cost, kmeans_cost(data, res.centers) / base);
    }
    std::printf("%-12s worst normalized cost over 5 runs = %.4f\n",
                variant == 0 ? "sensitivity" : "uniform", worst_cost);
  }
}

void ablate_svd(const Dataset& data, std::uint64_t seed) {
  std::printf("# Ablation 3 — exact vs randomized SVD for the PCA stage\n");
  Timer exact_t;
  const Svd exact = truncated_svd(data.points(), 16);
  const double exact_s = exact_t.seconds();
  Timer rand_t;
  Rng rng = make_rng(seed);
  const Svd approx = randomized_svd(data.points(), 16, rng);
  const double rand_s = rand_t.seconds();
  double exact_energy = 0.0;
  double approx_energy = 0.0;
  for (std::size_t j = 0; j < 16; ++j) {
    exact_energy += exact.sigma[j] * exact.sigma[j];
    approx_energy += approx.sigma[j] * approx.sigma[j];
  }
  std::printf("exact      %.4fs  captured-energy=%.6g\n", exact_s, exact_energy);
  std::printf("randomized %.4fs  captured-energy=%.6g (%.4f of exact)\n",
              rand_s, approx_energy, approx_energy / exact_energy);
}

void ablate_topup(const Dataset& data, std::uint64_t seed) {
  std::printf("# Ablation 4 — bicriteria-center weight top-up\n");
  for (bool topup : {true, false}) {
    double worst_weight_err = 0.0;
    for (std::uint64_t r = 0; r < 5; ++r) {
      Rng rng = make_rng(seed, 20 + r);
      SensitivitySampleOptions opts;
      opts.k = 2;
      opts.sample_size = 150;
      opts.include_bicriteria_centers = topup;
      const Coreset cs = sensitivity_sample(data, opts, rng);
      const double err =
          std::abs(cs.points.total_weight() - static_cast<double>(data.size())) /
          static_cast<double>(data.size());
      worst_weight_err = std::max(worst_weight_err, err);
    }
    std::printf("top-up=%-5s worst |sum(w) - n|/n over 5 runs = %.4f\n",
                topup ? "on" : "off", worst_weight_err);
  }
}

void ablate_sparse_jl(const BenchArgs& args) {
  std::printf("# Ablation 5 — sparse vs dense JL application (NeurIPS-like)\n");
  Rng rng = make_rng(args.seed, 0x51ULL);
  NeuripsLikeSpec spec;
  spec.n = 3000;
  spec.dim = 1500;
  // Measure on the RAW counts (pre-normalization zeros intact): build the
  // counts, sparsify, then compare kernel times.
  spec.density = 0.04;
  const Dataset d = make_neurips_like(spec, rng);
  // Normalization densifies; recover the sparse structure against the
  // per-column shift by thresholding deviations from the column mode.
  const SparseMatrix sparse = SparseMatrix::from_dense(d.points(), 1e-12);
  const LinearMap jl = make_jl_projection(spec.dim, 96, args.seed);

  Timer dense_t;
  const Matrix dense_out = jl.apply(d.points());
  const double dense_s = dense_t.seconds();
  Timer sparse_t;
  const Matrix sparse_out = sparse.multiply_dense(jl.projection());
  const double sparse_s = sparse_t.seconds();
  std::printf("density=%.3f  dense=%.4fs  sparse=%.4fs  speedup=%.2fx  "
              "(results equal: %s)\n",
              sparse.density(), dense_s, sparse_s, dense_s / sparse_s,
              subtract(dense_out, sparse_out).frobenius_norm() < 1e-9 ? "yes"
                                                                      : "NO");
}

void ablate_elkan(const Dataset& data, std::uint64_t seed) {
  std::printf("# Ablation 6 — plain Lloyd vs Elkan (server-side solve)\n");
  for (std::size_t k : {2, 8, 16}) {
    KMeansOptions opts;
    opts.k = k;
    opts.max_iters = 60;
    opts.restarts = 1;
    opts.seed = seed;
    Rng rng = make_rng(seed, k);
    const Matrix seeds = kmeanspp_seed(data, k, rng);
    Timer lt;
    const KMeansResult l = lloyd(data, seeds, opts);
    const double lloyd_s = lt.seconds();
    std::uint64_t evals = 0;
    Timer et;
    const KMeansResult e = elkan(data, seeds, opts, &evals);
    const double elkan_s = et.seconds();
    std::printf("k=%-3zu lloyd=%.4fs elkan=%.4fs (%.2fx) cost-delta=%.2e\n", k,
                lloyd_s, elkan_s, lloyd_s / std::max(elkan_s, 1e-9),
                std::fabs(l.cost - e.cost) / l.cost);
  }
}

void ablate_quantizers(const Dataset& data, std::uint64_t seed) {
  std::printf("# Ablation 7 — rounding (§6.1) vs trained Lloyd–Max "
              "quantizer [13]\n");
  const Matrix& pts = data.points();
  for (int bits : {2, 4, 6}) {
    const RoundingQuantizer rounding(bits);
    const ScalarLloydMaxQuantizer trained(pts, std::size_t{1} << bits, 4096,
                                          seed);
    double r_mse = 0.0;
    double t_mse = 0.0;
    for (double v : pts.flat()) {
      r_mse += std::pow(v - rounding.quantize(v), 2);
      t_mse += std::pow(v - trained.quantize(v), 2);
    }
    const auto n = static_cast<double>(pts.size());
    std::printf("bits=%d rounding-mse=%.3e trained-mse=%.3e "
                "(codebook %zu doubles of side info)\n",
                bits, r_mse / n, t_mse / n, trained.codebook_scalars());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const Dataset data = mnist_dataset(args, /*n_fast=*/3000);
  std::printf("== Ablations on MNIST-scale data: n=%zu d=%zu ==\n", data.size(),
              data.dim());
  ablate_jl_family(data, args.seed);
  ablate_sampling(data, args.seed);
  ablate_svd(data, args.seed);
  ablate_topup(data, args.seed);
  ablate_sparse_jl(args);
  ablate_elkan(data, args.seed);
  ablate_quantizers(data, args.seed);
  return 0;
}
