#include "kmeans/bicriteria.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "common/sampling.hpp"
#include "kmeans/assign.hpp"
#include "kmeans/cost.hpp"

namespace ekm {

Matrix bicriteria_centers(const Dataset& data, const BicriteriaOptions& opts,
                          Rng& rng) {
  EKM_EXPECTS(opts.k >= 1 && opts.rounds >= 1 && !data.empty());
  const std::size_t n = data.size();
  const std::size_t d = data.dim();
  const auto per_round = static_cast<std::size_t>(
      std::ceil(opts.beta * static_cast<double>(opts.k)));

  Matrix centers;
  const std::vector<double> point_norms = row_sq_norms(data.points());
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  std::vector<double> cum(n);  // unnormalized prefix sums of the D² mass

  for (int round = 0; round < opts.rounds; ++round) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += data.weight(i) * (round == 0 ? 1.0 : d2[i]);
      cum[i] = total;
    }
    if (total <= 0.0) break;  // every point already has a zero-cost center

    // β·k draws from one fixed distribution: prefix sums + binary search
    // make each draw O(log n) instead of an O(n) subtract-scan.
    Matrix round_centers(std::min(per_round, n), d);
    for (std::size_t c = 0; c < round_centers.rows(); ++c) {
      const std::size_t pick = sample_from_prefix(cum, rng);
      std::copy(data.point(pick).begin(), data.point(pick).end(),
                round_centers.row(c).begin());
    }
    centers.append_rows(round_centers);

    update_min_sq_dist(data.points(), round_centers, d2, point_norms);
  }
  EKM_ENSURES(centers.rows() >= 1);
  return centers;
}

double estimate_opt_cost_lower_bound(const Dataset& data, std::size_t k,
                                     int repeats, Rng& rng) {
  EKM_EXPECTS(repeats >= 1);
  BicriteriaOptions opts;
  opts.k = k;
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const Matrix centers = bicriteria_centers(data, opts, rng);
    best = std::min(best, kmeans_cost(data, centers));
  }
  // cost(P, X) <= 20 * OPT with high probability => OPT >= cost/20.
  return best / 20.0;
}

}  // namespace ekm
