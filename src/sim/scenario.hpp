// Scenario configuration for the discrete-event edge-network simulator.
//
// A SimScenario bundles everything that distinguishes one deployment
// from another: the radio class, fault rates (per-attempt frame loss,
// per-transaction site dropout), timing noise (jitter), compute
// heterogeneity (stragglers, speed skew), and the retransmission
// policy. Named presets cover the deployments the benches sweep;
// parse_scenario() additionally accepts "key=value,key=value" overrides
// so the CLI can express anything the struct can.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/link_model.hpp"
#include "qt/policy.hpp"
#include "sim/round_policy.hpp"

namespace ekm {

/// One piece of a trace-driven link schedule (`siteN.trace=`): from
/// `start_s` of virtual time until the next segment takes over, the
/// site's link runs at `bandwidth_bps` with `loss_rate` per attempt
/// (and, when given, `dropout_rate` per transaction). Before the first
/// segment's start the base radio/fault settings apply, so a trace
/// layers *under* the radio presets and retry policies instead of
/// replacing them — per-frame latency and energy always stay with the
/// radio class.
struct TraceSegment {
  double start_s = 0.0;
  double bandwidth_bps = 0.0;
  double loss_rate = 0.0;
  std::optional<double> dropout_rate;  ///< nullopt = keep the base rate
};

/// One site's deviations from the fleet-wide scenario knobs, applied in
/// declaration order (later overrides win). Parsed from `siteN.key=value`
/// tokens; an override naming a site index beyond the deployment's size
/// is a configuration error — SimNetwork rejects it loudly, naming the
/// key (a silently inert override once hid fleet-size typos).
struct SiteOverride {
  std::size_t site = 0;
  std::string key;                       ///< the original `siteN.field`
                                         ///< token, for error attribution
  std::optional<LinkModel> radio;        ///< siteN.radio=lora|ble|wifi|5g
  std::optional<double> bandwidth_bps;   ///< siteN.bandwidth=BPS
  std::optional<double> loss_rate;       ///< siteN.loss=P
  std::optional<double> dropout_rate;    ///< siteN.dropout=P
  std::optional<double> compute_speed;   ///< siteN.speed=REL (pins the
                                         ///< speed, after skew/stragglers)
  std::optional<RetryStrategy> retry;    ///< siteN.retry=fixed|backoff|giveup
  std::optional<double> join_s;          ///< siteN.join=T (member from T)
  std::optional<double> leave_s;         ///< siteN.leave=T (gone from T)
  std::vector<TraceSegment> trace;       ///< siteN.trace=start:bw:loss[:drop];...
};

/// Aggregation topology (`topology=`): star is the paper's flat fan-in
/// (every site uplinks straight to the server); tree routes uplinks
/// through gateways that merge in flight (net/tree_fabric.hpp), cutting
/// server fan-in from O(sites) to O(branching).
enum class SimTopology : std::uint8_t { kStar, kTree };

struct SimScenario {
  std::string name = "ideal";

  /// Radio class shared by every site (see link_model.hpp presets).
  LinkModel radio = wifi_link();

  /// Heterogeneous fleets: when non-empty, site i rides
  /// radio_cycle[i % radio_cycle.size()] instead of `radio`
  /// (hetero-mesh uses this); siteN.radio overrides still win.
  std::vector<LinkModel> radio_cycle;

  /// Per-site deviations, applied on top of everything above.
  std::vector<SiteOverride> site_overrides;

  /// Deadline policy for collection rounds (round_policy.hpp). The
  /// default — no deadline — reproduces the paper's wait-for-everyone
  /// protocol bit for bit.
  RoundPolicy round;

  /// Retransmission policy (round_policy.hpp): what a sender does
  /// between attempts of one frame. The default fixed ack-timeout is
  /// the PR 2/3 behavior bit for bit; `retry=backoff` and
  /// `retry=giveup` (per-site `siteN.retry=`) change only how faults
  /// cost clock/airtime, never the goodput ledgers.
  RetryPolicy retry;

  // --- faults -------------------------------------------------------------
  /// Probability that one transmission attempt is lost in flight. Lost
  /// attempts are retransmitted (billed to airtime/energy, not to the
  /// paper's scalar ledger) until delivered or max_retries is spent.
  double loss_rate = 0.0;
  /// Probability that a site is in a dropout window when it next needs
  /// its radio; it then waits out `outage_seconds` before transmitting.
  double dropout_rate = 0.0;
  double outage_seconds = 5.0;
  /// Stochastic fleet churn (`churn=`): rate (events per virtual
  /// second) of an alternating leave/rejoin process per site —
  /// membership intervals are Exponential(rate) holds, drawn from a
  /// dedicated per-site RNG stream so churn-free runs consume zero
  /// extra draws. Applies only to sites without an explicit
  /// `siteN.join=`/`siteN.leave=` schedule; 0 (the default) disables
  /// churn entirely and reproduces the static-fleet runtime bit for
  /// bit. A site that leaves resolves every in-flight frame of its
  /// links as a first-class orphaned drop.
  double churn_rate = 0.0;
  /// Attempts beyond the first before the link escalates. The protocols
  /// are lossless at the application layer, so after max_retries the
  /// frame is delivered anyway over an assumed reliable fallback — all
  /// attempts stay billed.
  int max_retries = 8;

  // --- timing noise -------------------------------------------------------
  /// Airtime jitter: each attempt's duration is scaled by a uniform
  /// draw from [1 - jitter_frac, 1 + jitter_frac].
  double jitter_frac = 0.0;

  // --- compute heterogeneity ----------------------------------------------
  /// Fraction of sites designated stragglers (chosen by seed)...
  double straggler_fraction = 0.0;
  /// ...and how much slower they are (compute_speed /= slowdown).
  double straggler_slowdown = 4.0;
  /// Multiplicative speed spread across all sites: each site's speed is
  /// additionally scaled by a uniform draw from [1/skew, 1]. 1 = none.
  double site_speed_skew = 1.0;

  // --- compute model ------------------------------------------------------
  /// Virtual seconds the reference edge CPU spends producing one
  /// summary scalar (serialization + the local math behind it). The
  /// absolute value is a calibration constant; the relative spread
  /// across sites is what stragglers/skew act on.
  double seconds_per_scalar = 1e-7;
  /// Server speed relative to the reference edge CPU.
  double server_speed = 16.0;

  // --- reporting ----------------------------------------------------------
  /// Cap on the retained event trace (scenario key `event-log=off|N`):
  /// the simulator records the first N events processed and drops the
  /// rest (0 = record nothing, the `off` spelling). Metrics, clocks
  /// and ledgers are unaffected — only SimReport::event_log shrinks.
  /// Sweep workloads (the overlap sweep in bench_sim_scenarios) turn
  /// this off so a grid of lossy multi-round runs does not hold tens
  /// of thousands of trace entries per cell in memory. The default
  /// (unlimited) keeps PR 2–4 behavior bit for bit.
  std::size_t event_log_limit = static_cast<std::size_t>(-1);

  /// Per-frame quantization policy (`quant=fixed|adaptive`): with
  /// `adaptive`, a site about to uplink a coreset under a finite round
  /// deadline narrows the frame's significand width when the full-width
  /// airtime cannot fit the remaining budget (see qt/policy.hpp). The
  /// default reproduces the paper's fixed-width billing bit for bit.
  QuantPolicy quant = QuantPolicy::kFixed;

  // --- aggregation topology -----------------------------------------------
  /// `topology=star|tree`. Star — the default — is the paper's flat
  /// fan-in and reproduces it bit for bit. Tree engages hierarchical
  /// aggregation when `branching` < fleet size: sites uplink to
  /// gateways, gateways merge and forward one frame to the server.
  SimTopology topology = SimTopology::kStar;
  /// `branching=N` (tree only): children per gateway, >= 2; gateway g
  /// serves sites [g*N, min((g+1)*N, sites)). 0 means unset — the
  /// parser rejects `topology=tree` without it.
  std::size_t branching = 0;
  /// `level-split=F` (tree only, in (0, 1)): fraction of a finite round
  /// budget granted to level 0 (sites → gateways); the remainder is the
  /// gateways' forwarding window, so a gateway's cutoff always precedes
  /// the server's. Irrelevant under the default no-deadline policy.
  double level_split = 0.5;
  /// `gatewayN.*` per-gateway deviations (same fields as `siteN.*`).
  /// Gateway g is device sites + g on the inner fabric, so overrides
  /// ride the exact same application path as site overrides.
  std::vector<SiteOverride> gateway_overrides;

  std::uint64_t seed = 1;

  [[nodiscard]] bool fault_free() const {
    if (loss_rate != 0.0 || dropout_rate != 0.0 || jitter_frac != 0.0 ||
        churn_rate != 0.0) {
      return false;
    }
    // Gateway overrides ride the same per-device path as site
    // overrides, so the same fields make frames droppable.
    for (const std::vector<SiteOverride>* group :
         {&site_overrides, &gateway_overrides}) {
      for (const SiteOverride& o : *group) {
        if (o.loss_rate.value_or(0.0) != 0.0) return false;
        if (o.dropout_rate.value_or(0.0) != 0.0) return false;
        // A membership schedule makes frames orphan; a trace segment
        // that injects loss or dropout makes them drop. (A
        // bandwidth-only trace shifts timing but never a frame's fate.)
        if (o.join_s.has_value() || o.leave_s.has_value()) return false;
        for (const TraceSegment& seg : o.trace) {
          if (seg.loss_rate != 0.0 || seg.dropout_rate.value_or(0.0) != 0.0) {
            return false;
          }
        }
      }
    }
    return true;
  }
};

/// Single source of truth for the retry-strategy grammar, shared by
/// the scenario parser (`retry=`, `siteN.retry=`) and the CLI
/// (`--retry`): "fixed" | "backoff" | "giveup", nullopt on anything
/// else.
[[nodiscard]] std::optional<RetryStrategy> retry_strategy_from_name(
    const std::string& name);

/// Named presets, each an opinionated deployment sketch:
///   ideal          — Wi-Fi, no faults (ledger-equivalent to Network)
///   wifi-office    — Wi-Fi, light loss and jitter
///   ble-swarm      — BLE, moderate loss, occasional dropouts
///   lora-field     — LoRa, lossy, long outages, strong skew
///   nr5g-fleet     — 5G, clean radio but a straggling quarter of sites
///   lossy-mesh     — Wi-Fi with heavy loss/dropout, stress preset
///   hetero-mesh    — mixed Wi-Fi/BLE/LoRa fleet (radio_cycle), light
///                    faults, moderate speed skew
///   deadline-fleet — 5G with a straggling, lossier tail of sites and a
///                    finite round deadline (partial aggregation on by
///                    default)
[[nodiscard]] std::vector<std::string> sim_scenario_names();

/// Returns the preset, or nullopt if `name` is not one.
[[nodiscard]] std::optional<SimScenario> sim_scenario_preset(
    const std::string& name);

/// Parses "NAME" or "NAME,key=value,..." or "key=value,...". Keys:
/// radio (lora|ble|wifi|5g), loss, dropout, outage, retries, jitter,
/// stragglers, slowdown, skew, sps (seconds per scalar), server-speed,
/// deadline (virtual seconds per collection round, or inf),
/// min-responders, realloc (on|off: deadline-aware budget
/// reallocation), realloc-reserve (fraction of a finite round budget
/// scheduled for the reallocation wave), overlap (on|off: phase-overlap
/// scheduling — expiry NAKs commit merge barriers early),
/// event-log (off|N: cap the retained event trace),
/// retry (fixed|backoff|giveup), churn (leave/rejoin events per virtual
/// second), quant (fixed|adaptive: per-frame quantization policy),
/// topology (star|tree: aggregation shape), branching (tree only,
/// children per gateway, >= 2), level-split (tree only, level-0 share
/// of a finite round budget, in (0, 1)),
/// backoff-base, backoff-cap, backoff-jitter, seed, plus per-site overrides
/// siteN.radio, siteN.bandwidth, siteN.loss, siteN.dropout,
/// siteN.speed, siteN.retry, siteN.join, siteN.leave, and
/// siteN.trace=start:bw:loss[:dropout][;start:bw:loss[:dropout]...]
/// (piecewise link-quality segments over virtual time, strictly
/// increasing starts) — gatewayN.* accepts the same fields for gateway
/// devices under topology=tree. Overrides apply on top of the preset
/// (default: ideal). Throws precondition_error on unknown names/keys
/// and on malformed values — empty, trailing garbage, or out of range
/// (including finite-looking tokens that overflow double, e.g.
/// `loss=1e999`) — naming the offending key; tree-only keys without
/// `topology=tree` (and `topology=tree` without `branching=`) are
/// rejected the same way.
[[nodiscard]] SimScenario parse_scenario(const std::string& spec);

}  // namespace ekm
