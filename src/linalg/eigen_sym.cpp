#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ekm {
namespace {

// hypot without overflow, as used in the EISPACK routines.
double pythag(double a, double b) {
  const double absa = std::fabs(a);
  const double absb = std::fabs(b);
  if (absa > absb) {
    const double r = absb / absa;
    return absa * std::sqrt(1.0 + r * r);
  }
  if (absb == 0.0) return 0.0;
  const double r = absa / absb;
  return absb * std::sqrt(1.0 + r * r);
}

// Householder reduction of a real symmetric matrix to tridiagonal form
// (tred2). On exit `z` holds the accumulated orthogonal transform, `d`
// the diagonal and `e` the subdiagonal (e[0] unused).
void tred2(Matrix& z, std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = z.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  if (n == 0) return;

  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k) {
            z(j, k) -= f * e[k] + g * z(i, k);
          }
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }

  d[0] = 0.0;
  e[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += z(i, k) * z(k, j);
        for (std::size_t k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

// Implicit-shift QL with eigenvector accumulation (tql2). `d` in/out:
// diagonal -> eigenvalues; `e`: subdiagonal (destroyed); `z`: transform
// from tred2 -> eigenvectors in columns. Returns false on non-convergence.
bool tql2(Matrix& z, std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = d.size();
  if (n <= 1) return true;

  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-300 || std::fabs(e[m]) <= 2.3e-16 * dd) break;
      }
      if (m != l) {
        if (++iter == 64) return false;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = pythag(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (r == 0.0 && m > l + 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

void sort_descending(SymmetricEigen& eig) {
  const std::size_t n = eig.values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return eig.values[a] > eig.values[b];
  });
  std::vector<double> vals(n);
  Matrix vecs(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    vals[j] = eig.values[order[j]];
    for (std::size_t i = 0; i < n; ++i) vecs(i, j) = eig.vectors(i, order[j]);
  }
  eig.values = std::move(vals);
  eig.vectors = std::move(vecs);
}

}  // namespace

SymmetricEigen eigen_symmetric(const Matrix& a) {
  EKM_EXPECTS_MSG(a.rows() == a.cols(), "eigen_symmetric needs a square matrix");
  const std::size_t n = a.rows();

  SymmetricEigen eig;
  eig.vectors = Matrix(n, n);
  // Symmetrize from the upper triangle so tiny asymmetries from Gram
  // accumulation cannot push the iteration off the symmetric manifold.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = 0.5 * (a(i, j) + a(j, i));
      eig.vectors(i, j) = v;
      eig.vectors(j, i) = v;
    }
  }

  std::vector<double> d, e;
  tred2(eig.vectors, d, e);
  EKM_ENSURES_MSG(tql2(eig.vectors, d, e), "tql2 failed to converge");
  eig.values = std::move(d);
  sort_descending(eig);
  return eig;
}

SymmetricEigen eigen_symmetric_jacobi(const Matrix& a, int max_sweeps) {
  EKM_EXPECTS_MSG(a.rows() == a.cols(), "eigen needs a square matrix");
  const std::size_t n = a.rows();

  Matrix m = a;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (m(i, j) + m(j, i));
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    }
    if (off < 1e-24 * (1.0 + m.frobenius_norm())) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::fabs(theta) + std::sqrt(theta * theta + 1.0)), theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  SymmetricEigen eig;
  eig.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) eig.values[i] = m(i, i);
  eig.vectors = std::move(v);
  sort_descending(eig);
  return eig;
}

}  // namespace ekm
