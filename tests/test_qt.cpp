// Tests for src/qt: the bit-level rounding quantizer (eq. (13)/(14)) and
// the §6.3 configuration optimizer.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "qt/config.hpp"
#include "qt/quantizer.hpp"

namespace ekm {
namespace {

TEST(Quantizer, FullPrecisionIsIdentity) {
  const RoundingQuantizer q(52);
  Rng rng = make_rng(60);
  std::uniform_real_distribution<double> unif(-1e6, 1e6);
  for (int i = 0; i < 1000; ++i) {
    const double x = unif(rng);
    EXPECT_EQ(q.quantize(x), x);
  }
}

TEST(Quantizer, SpecialValuesPassThrough) {
  const RoundingQuantizer q(4);
  EXPECT_EQ(q.quantize(0.0), 0.0);
  EXPECT_EQ(q.quantize(-0.0), -0.0);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(q.quantize(inf), inf);
  EXPECT_EQ(q.quantize(-inf), -inf);
  EXPECT_TRUE(std::isnan(q.quantize(std::nan(""))));
}

TEST(Quantizer, ExactlyRepresentableValuesUnchanged) {
  // Values with few significand bits are fixed points of Γ.
  const RoundingQuantizer q(4);
  for (double x : {1.0, -2.0, 0.5, 1.5, 0.75, -1.25, 3.0, 4.0}) {
    EXPECT_EQ(q.quantize(x), x) << x;
  }
}

TEST(Quantizer, KnownRounding) {
  // With s = 1, significand grid is {1.0, 1.5} x 2^e: 1.3 -> 1.5 ulp grid.
  const RoundingQuantizer q(1);
  EXPECT_DOUBLE_EQ(q.quantize(1.3), 1.5);
  EXPECT_DOUBLE_EQ(q.quantize(1.2), 1.0);
  EXPECT_DOUBLE_EQ(q.quantize(-1.3), -1.5);
  // Rounding up across a binade: 1.96 -> 2.0 (carry into exponent).
  EXPECT_DOUBLE_EQ(q.quantize(1.96), 2.0);
}

class QuantizerErrorBound : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerErrorBound, RelativeErrorWithinTwoToMinusS) {
  const int s = GetParam();
  const RoundingQuantizer q(s);
  Rng rng = make_rng(61);
  std::uniform_real_distribution<double> mag(-30.0, 30.0);
  std::uniform_real_distribution<double> mant(1.0, 2.0);
  for (int i = 0; i < 2000; ++i) {
    const double x =
        std::ldexp((i % 2 ? 1.0 : -1.0) * mant(rng), static_cast<int>(mag(rng)));
    const double err = std::fabs(x - q.quantize(x));
    EXPECT_LE(err, std::fabs(x) * std::ldexp(1.0, -s) * (1.0 + 1e-15))
        << "s=" << s << " x=" << x;
  }
}

TEST_P(QuantizerErrorBound, Idempotent) {
  const int s = GetParam();
  const RoundingQuantizer q(s);
  Rng rng = make_rng(62);
  std::uniform_real_distribution<double> unif(-100.0, 100.0);
  for (int i = 0; i < 500; ++i) {
    const double once = q.quantize(unif(rng));
    EXPECT_EQ(q.quantize(once), once);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizerErrorBound,
                         ::testing::Values(1, 2, 4, 8, 16, 23, 32, 45, 51));

TEST(Quantizer, ErrorDecreasesWithMoreBits) {
  Rng rng = make_rng(63);
  Matrix pts = Matrix::gaussian(100, 10, rng);
  const Dataset d(std::move(pts));
  double prev = std::numeric_limits<double>::infinity();
  for (int s : {2, 6, 12, 24, 48}) {
    const RoundingQuantizer q(s);
    const double err = measured_quantization_error(d, q.quantize(d));
    EXPECT_LE(err, prev + 1e-18);
    prev = err;
  }
}

TEST(Quantizer, MeasuredErrorWithinAprioriBound) {
  Rng rng = make_rng(64);
  const Dataset d(Matrix::gaussian(200, 16, rng));
  double max_norm = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    max_norm = std::max(max_norm, norm2(d.point(i)));
  }
  for (int s : {1, 4, 9, 20}) {
    const RoundingQuantizer q(s);
    EXPECT_LE(measured_quantization_error(d, q.quantize(d)),
              q.max_error_bound(max_norm) * (1.0 + 1e-12));
  }
}

TEST(Quantizer, SubnormalsHandled) {
  const RoundingQuantizer q(4);
  const double tiny = std::numeric_limits<double>::denorm_min() * 100;
  const double out = q.quantize(tiny);
  EXPECT_TRUE(std::isfinite(out));
  EXPECT_GE(out, 0.0);
}

TEST(Quantizer, BitsPerScalarAndClamping) {
  EXPECT_EQ(RoundingQuantizer(8).bits_per_scalar(), 20u);
  EXPECT_EQ(RoundingQuantizer(52).bits_per_scalar(), 64u);
  EXPECT_EQ(RoundingQuantizer(-5).significant_bits(), 1);
  EXPECT_EQ(RoundingQuantizer(99).significant_bits(), 52);
}

TEST(Quantizer, DatasetWeightsUntouched) {
  const Dataset d(Matrix{{0.123456789}}, {0.987654321});
  const RoundingQuantizer q(3);
  const Dataset out = q.quantize(d);
  EXPECT_DOUBLE_EQ(out.weight(0), 0.987654321);
  EXPECT_NE(out.point(0)[0], d.point(0)[0]);
}

TEST(QtConfig, ErrorBoundMonotoneInEpsilon) {
  double prev = qt_error_bound(0.0, 0.01);
  for (double e : {0.05, 0.1, 0.2, 0.4}) {
    const double y = qt_error_bound(e, 0.01);
    EXPECT_GT(y, prev);
    prev = y;
  }
  EXPECT_NEAR(qt_error_bound(0.0, 0.25), 1.25, 1e-12);
}

TEST(QtConfig, EnumerationFeasibilityStructure) {
  QtConfigProblem p;
  p.y0 = 1.5;
  p.n = 10000;
  p.d = 784;
  p.opt_cost_lower_bound = 50.0;
  p.max_point_norm = 5.0;
  p.diameter = 2.0;
  const std::vector<QtConfig> configs = enumerate_qt_configs(p);
  ASSERT_FALSE(configs.empty());
  // Feasible s values form a suffix: small s has too much QT error.
  for (std::size_t i = 0; i + 1 < configs.size(); ++i) {
    EXPECT_EQ(configs[i + 1].significant_bits,
              configs[i].significant_bits + 1);
    // ε_QT halves per extra bit.
    EXPECT_NEAR(configs[i].epsilon_qt / configs[i + 1].epsilon_qt, 2.0, 1e-9);
    // More bits leave more room for ε.
    EXPECT_GE(configs[i + 1].epsilon, configs[i].epsilon - 1e-12);
  }
  for (const QtConfig& c : configs) {
    EXPECT_LE(c.error_bound, p.y0 * (1.0 + 1e-9));
    EXPECT_GT(c.epsilon, 0.0);
  }
}

TEST(QtConfig, OptimizerPicksEnumerationMinimum) {
  QtConfigProblem p;
  p.y0 = 1.6;
  p.n = 5000;
  p.d = 500;
  p.opt_cost_lower_bound = 100.0;
  p.max_point_norm = 3.0;
  const auto best = optimize_qt_config(p);
  ASSERT_TRUE(best.has_value());
  for (const QtConfig& c : enumerate_qt_configs(p)) {
    EXPECT_LE(best->modeled_cost_bits, c.modeled_cost_bits + 1e-9);
  }
  // Optimal s is interior: neither 1 nor 52 (the paper's observation (ii)
  // that both extremes are suboptimal).
  EXPECT_GT(best->significant_bits, 1);
  EXPECT_LT(best->significant_bits, 52);
}

TEST(QtConfig, InfeasibleTargetReturnsNullopt) {
  QtConfigProblem p;
  p.y0 = 1.0 + 1e-9;  // essentially exact — impossible with any QT error
  p.n = 100000;
  p.opt_cost_lower_bound = 1e-6;  // huge ε_QT at any s
  p.max_point_norm = 10.0;
  EXPECT_FALSE(optimize_qt_config(p).has_value());
  EXPECT_THROW((void)enumerate_qt_configs(QtConfigProblem{.y0 = 0.9}),
               precondition_error);
}

}  // namespace
}  // namespace ekm
