// Dataset container and preprocessing.
//
// A Dataset is a dense point set P ⊂ R^d (one matrix row per point) with
// optional per-point weights — weighted sets arise as coresets (§3.3) and
// as inputs to the server-side weighted k-means solve. Preprocessing
// reproduces §7.1 of the paper: "normalized to [-1, 1] with zero mean",
// and the random split of a dataset across m data sources.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace ekm {

class Dataset {
 public:
  Dataset() = default;

  /// Unweighted dataset (every weight is 1).
  explicit Dataset(Matrix points) : points_(std::move(points)) {}

  /// Weighted dataset; weights must be non-negative, one per row.
  Dataset(Matrix points, std::vector<double> weights);

  [[nodiscard]] std::size_t size() const noexcept { return points_.rows(); }
  [[nodiscard]] std::size_t dim() const noexcept { return points_.cols(); }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] std::span<const double> point(std::size_t i) const {
    return points_.row(i);
  }
  [[nodiscard]] std::span<double> mutable_point(std::size_t i) {
    return points_.row(i);
  }

  [[nodiscard]] double weight(std::size_t i) const {
    return weights_ ? (*weights_)[i] : 1.0;
  }
  [[nodiscard]] bool is_weighted() const noexcept { return weights_.has_value(); }
  [[nodiscard]] double total_weight() const;

  [[nodiscard]] const Matrix& points() const noexcept { return points_; }
  [[nodiscard]] Matrix& mutable_points() noexcept { return points_; }
  [[nodiscard]] const std::vector<double>* weights() const {
    return weights_ ? &*weights_ : nullptr;
  }

  /// Number of raw scalars a source would transmit for this dataset
  /// (the "NR" baseline denominator of Tables 3–4).
  [[nodiscard]] std::size_t scalar_count() const { return size() * dim(); }

 private:
  Matrix points_;
  std::optional<std::vector<double>> weights_;
};

/// In-place §7.1 preprocessing: subtract the per-attribute mean, then
/// scale the whole matrix by 1/max|entry| so values lie in [-1, 1].
/// Returns the scale factor applied (1.0 for an all-zero dataset).
double normalize_zero_mean_unit_range(Dataset& data);

/// Splits `data` into `m` random parts (each point assigned to a source
/// uniformly at random, as in §7.1 "randomly partition each dataset
/// among 10 data sources"). Every part keeps the original dimension;
/// parts may differ in cardinality. Weights, if any, travel with points.
[[nodiscard]] std::vector<Dataset> partition_random(const Dataset& data,
                                                    std::size_t m, Rng& rng);

/// Non-IID split: clusters the data coarsely (k-means++ seeding with
/// `skew_clusters` groups) and assigns each group's points across sources
/// by a Dirichlet(alpha) draw — the "label-skew" sharding typical of real
/// edge deployments. alpha -> infinity recovers the uniform split;
/// alpha -> 0 gives each source nearly pure single-cluster data, the
/// stress case for disSS's cost-proportional sample allocation.
[[nodiscard]] std::vector<Dataset> partition_noniid(const Dataset& data,
                                                    std::size_t m,
                                                    double alpha,
                                                    std::size_t skew_clusters,
                                                    Rng& rng);

/// Concatenates datasets (same dim). Weighted iff any part is weighted.
[[nodiscard]] Dataset concatenate(std::span<const Dataset> parts);

}  // namespace ekm
