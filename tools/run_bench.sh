#!/usr/bin/env bash
# Builds and runs the tracked benches, leaving BENCH_assign.json and
# BENCH_sim.json in the repo root so successive PRs can track the perf
# and scenario trajectories.
#
# Usage: tools/run_bench.sh [--list] [--only SWEEP] [build_dir]
#                           [extra bench_assign_kernel args...]
#   EKM_THREADS caps the pool for the multi-threaded series.
#   BENCH_sim.json is bitwise deterministic for a fixed seed at any
#   EKM_THREADS (it lives on the simulator's virtual clock).
#   --list prints the splice-able --only section names, one per line,
#   and exits (it asks the bench binary itself, so the list can never
#   drift from what --only accepts).
#   --only SWEEP re-runs a single BENCH_sim.json sweep (cells |
#   deadline_sweep | realloc_sweep | overlap_sweep | pipeline_sweep |
#   churn_sweep | fleet_scale_sweep | attribution) and splices that section — plus fresh
#   provenance — into the existing BENCH_sim.json, leaving every other
#   section's bytes untouched (each bench cell is independent of which
#   other sections ran, so the splice equals a full run byte for
#   byte). Requires an existing BENCH_sim.json (run the full bench
#   once first) and skips BENCH_assign.json entirely.
#
# Each bench writes to a temp file that is moved into place only after
# the binary exits cleanly: a crashing bench fails this script loudly
# and leaves the previously committed JSON untouched, instead of
# shipping a partial or stale trajectory.
set -euo pipefail

# --list builds just the sim bench and defers to its own --list, the
# single source of truth for which sections --only can splice.
if [[ "${1:-}" == "--list" ]]; then
  repo_root="$(cd "$(dirname "$0")/.." && pwd)"
  build_dir="${2:-$repo_root/build}"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$build_dir" --target bench_sim_scenarios -j >/dev/null
  exec "$build_dir/bench_sim_scenarios" --list
fi

only=""
if [[ "${1:-}" == "--only" ]]; then
  only="${2:?--only requires a sweep name}"
  shift 2
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

# Any temp file not yet renamed into place is removed on exit — a bench
# that crashes (or a Ctrl-C mid-run) must not leave BENCH_*.json.XXXXXX
# litter next to the committed trajectories. `mv` removes the source, so
# cleaning up an already-promoted tmp is a harmless no-op.
tmp_files=()
cleanup() {
  ((${#tmp_files[@]})) && rm -f "${tmp_files[@]}"
  return 0
}
trap cleanup EXIT

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >/dev/null
if [[ -n "$only" ]]; then
  cmake --build "$build_dir" --target bench_sim_scenarios -j >/dev/null
else
  cmake --build "$build_dir" --target bench_assign_kernel bench_sim_scenarios -j >/dev/null
fi

# Provenance block stamped into both JSONs (the bench emits it as a
# top-level "provenance" object): enough to answer "which commit,
# which compiler, how many threads produced this trajectory?" when two
# BENCH files disagree. Values degrade to "unknown" rather than failing
# the run — a bench result without provenance still beats no result.
git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"
if ! git -C "$repo_root" diff --quiet HEAD -- 2>/dev/null; then
  git_sha="$git_sha-dirty"
fi
compiler="$(grep -m1 '^CMAKE_CXX_COMPILER:' "$build_dir/CMakeCache.txt" 2>/dev/null | cut -d= -f2- || true)"
if [[ -n "$compiler" ]] && command -v "$compiler" >/dev/null 2>&1; then
  compiler="$("$compiler" --version 2>/dev/null | head -1 || echo "$compiler")"
fi
cxx_flags="$(grep -m1 '^CMAKE_CXX_FLAGS_RELEASE:' "$build_dir/CMakeCache.txt" 2>/dev/null | cut -d= -f2- || true)"
# Host facts: the CPU model string and the ISA the binary actually runs
# on. Wall-clock bench numbers (BENCH_assign.json) are meaningless
# across hosts without them; the sim numbers don't need them but carry
# them for free. /proc/cpuinfo covers Linux; sysctl covers macOS; both
# degrade to "unknown" elsewhere.
cpu_model="$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)"
if [[ -z "$cpu_model" ]] && command -v sysctl >/dev/null 2>&1; then
  cpu_model="$(sysctl -n machdep.cpu.brand_string 2>/dev/null || true)"
fi
isa="$(uname -m 2>/dev/null || true)"
if [[ "$isa" == "x86_64" ]] && grep -qm1 ' avx2' /proc/cpuinfo 2>/dev/null; then
  if grep -qm1 ' avx512f' /proc/cpuinfo 2>/dev/null; then
    isa="x86_64+avx512"
  else
    isa="x86_64+avx2"
  fi
fi
meta_args=(
  --meta "git_sha=${git_sha:-unknown}"
  --meta "compiler=${compiler:-unknown}"
  --meta "cxx_flags_release=${cxx_flags:-unknown}"
  --meta "ekm_threads=${EKM_THREADS:-default}"
  --meta "cpu_model=${cpu_model:-unknown}"
  --meta "isa=${isa:-unknown}"
)

run_bench() {
  local binary="$1" target="$2"
  shift 2
  local tmp
  # No suffix after the Xs: BSD/macOS mktemp rejects templates with one.
  tmp="$(mktemp "$target.XXXXXX")"
  tmp_files+=("$tmp")
  if ! "$binary" --json "$tmp" "$@" || [[ ! -s "$tmp" ]]; then
    rm -f "$tmp"
    echo "error: $(basename "$binary") failed — $target left untouched" >&2
    return 1
  fi
  # A bench that exits 0 but emits broken JSON (truncated table, a
  # printf that drifted from the closing braces) must not replace the
  # committed trajectory: validate before promoting. Skipped quietly
  # where python3 is unavailable — the exit-status and non-empty checks
  # above still hold.
  if command -v python3 >/dev/null 2>&1; then
    if ! python3 -m json.tool "$tmp" >/dev/null 2>&1; then
      rm -f "$tmp"
      echo "error: $(basename "$binary") emitted invalid JSON — $target left untouched" >&2
      return 1
    fi
  fi
  mv "$tmp" "$target"
  echo "wrote $target"
}

# --only: re-run one sim sweep and splice its section (plus fresh
# provenance) into the committed BENCH_sim.json textually — a
# brace-depth scan, not a parse/re-serialize round trip, so every
# untouched section keeps its exact bytes.
if [[ -n "$only" ]]; then
  sim_json="$repo_root/BENCH_sim.json"
  if [[ ! -s "$sim_json" ]]; then
    echo "error: --only splices into an existing $sim_json — run the full bench first" >&2
    exit 1
  fi
  if ! command -v python3 >/dev/null 2>&1; then
    echo "error: --only needs python3 for the section splice" >&2
    exit 1
  fi
  frag="$(mktemp "$sim_json.XXXXXX")"
  tmp_files+=("$frag")
  # The bench validates the sweep name itself (exit 2 listing the
  # sections), so a typo fails here before anything is touched.
  "$build_dir/bench_sim_scenarios" --json "$frag" --only "$only" "${meta_args[@]}"
  [[ -s "$frag" ]] || { echo "error: bench_sim_scenarios wrote no JSON" >&2; exit 1; }
  spliced="$(mktemp "$sim_json.XXXXXX")"
  tmp_files+=("$spliced")
  python3 - "$frag" "$sim_json" "$only" > "$spliced" <<'PYEOF'
import sys

frag_path, target_path, name = sys.argv[1], sys.argv[2], sys.argv[3]
frag = open(frag_path).read()
target = open(target_path).read()


def extract(txt, key):
    """Span of the two-space-indented `"key": <value>` member, where
    <value> is a {...} or [...] scanned to its matching close (string-
    aware, so a brace inside a scenario spec cannot derail it)."""
    anchor = '\n  "%s":' % key
    i = txt.find(anchor)
    if i < 0:
        return None
    start = i + 1  # first char of the member line
    p = i + len(anchor)
    while txt[p] in ' \t':
        p += 1
    open_ch = txt[p]
    close_ch = {'[': ']', '{': '}'}[open_ch]
    depth = 0
    in_str = False
    while True:
        c = txt[p]
        if in_str:
            if c == '\\':
                p += 2
                continue
            if c == '"':
                in_str = False
        elif c == '"':
            in_str = True
        elif c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return txt[start:p + 1], start, p + 1
        p += 1


frag_sec = extract(frag, name)
if frag_sec is None:
    sys.exit("splice: fragment JSON has no section '%s'" % name)
old_sec = extract(target, name)
if old_sec is not None:
    target = target[:old_sec[1]] + frag_sec[0] + target[old_sec[2]:]
else:
    # First run of a newly added sweep: append it after the last
    # section, just inside the closing brace.
    end = target.rfind('\n}')
    if end < 0:
        sys.exit("splice: %s does not end in a closing brace" % target_path)
    target = target[:end] + ',\n' + frag_sec[0] + target[end:]
frag_prov = extract(frag, 'provenance')
old_prov = extract(target, 'provenance')
if frag_prov is not None and old_prov is not None:
    target = target[:old_prov[1]] + frag_prov[0] + target[old_prov[2]:]
sys.stdout.write(target)
PYEOF
  if ! python3 -m json.tool "$spliced" >/dev/null 2>&1; then
    echo "error: splice produced invalid JSON — $sim_json left untouched" >&2
    exit 1
  fi
  mv "$spliced" "$sim_json"
  echo "wrote $sim_json (spliced $only)"
  exit 0
fi

# The sim bench's scenario strings are constants compiled into the
# bench itself and already emitted as each sweep's "scenario" field, so
# the provenance block only adds build/host facts, never duplicates them.
run_bench "$build_dir/bench_assign_kernel" "$repo_root/BENCH_assign.json" \
  "${meta_args[@]}" "$@"
run_bench "$build_dir/bench_sim_scenarios" "$repo_root/BENCH_sim.json" \
  "${meta_args[@]}"
