// Tests for the remaining extension modules: feature-selection DR, the
// Lloyd–Max scalar quantizer, and the wireless link model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/generators.hpp"
#include "dr/feature_selection.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/lloyd.hpp"
#include "net/link_model.hpp"
#include "qt/quantizer.hpp"
#include "qt/vq.hpp"

namespace ekm {
namespace {

TEST(FeatureSelection, NormSamplingPrefersHeavyColumns) {
  // Column 0 carries almost all energy: it must dominate the selection.
  Matrix pts(100, 10);
  Rng rng = make_rng(600);
  std::normal_distribution<double> big(0.0, 10.0);
  std::normal_distribution<double> small(0.0, 0.01);
  for (std::size_t i = 0; i < 100; ++i) {
    pts(i, 0) = big(rng);
    for (std::size_t j = 1; j < 10; ++j) pts(i, j) = small(rng);
  }
  const Dataset d(std::move(pts));
  Rng srng = make_rng(601);
  const FeatureSelection sel = select_features_norm(d, 8, srng);
  const auto zeros =
      std::count(sel.indices.begin(), sel.indices.end(), std::size_t{0});
  EXPECT_GE(zeros, 7);
}

TEST(FeatureSelection, MapShapeAndDescriptionCost) {
  Rng rng = make_rng(602);
  const Dataset d(Matrix::gaussian(50, 30, rng));
  Rng srng = make_rng(603);
  const FeatureSelection sel = select_features_norm(d, 12, srng);
  EXPECT_EQ(sel.map.input_dim(), 30u);
  EXPECT_EQ(sel.map.output_dim(), 12u);
  EXPECT_EQ(sel.indices.size(), 12u);
  EXPECT_EQ(sel.description_scalars(), 24u);  // indices + scales
  // Applying the map picks the scaled coordinates.
  const Dataset out = sel.map.apply(d);
  for (std::size_t s = 0; s < 12; ++s) {
    EXPECT_NEAR(out.point(0)[s], d.point(0)[sel.indices[s]] * sel.scales[s],
                1e-12);
  }
}

TEST(FeatureSelection, UnbiasedNormsOnAverage) {
  Rng rng = make_rng(604);
  const Dataset d(Matrix::gaussian(60, 40, rng));
  double total_ratio = 0.0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    Rng srng = make_rng(700 + t);
    const FeatureSelection sel = select_features_norm(d, 20, srng);
    const Dataset proj = sel.map.apply(d);
    const double before = d.points().frobenius_norm();
    const double after = proj.points().frobenius_norm();
    total_ratio += (after * after) / (before * before);
  }
  // E[||sel(x)||²] = ||x||² with the 1/sqrt(t p) scaling.
  EXPECT_NEAR(total_ratio / trials, 1.0, 0.1);
}

TEST(FeatureSelection, LeverageSamplingFindsSubspaceColumns) {
  // Data supported on 3 specific coordinates; leverage sampling (rank 3)
  // must select (almost) only those.
  Matrix pts(80, 20);
  Rng rng = make_rng(605);
  std::normal_distribution<double> g;
  for (std::size_t i = 0; i < 80; ++i) {
    pts(i, 2) = g(rng);
    pts(i, 7) = g(rng);
    pts(i, 13) = g(rng);
  }
  const Dataset d(std::move(pts));
  Rng srng = make_rng(606);
  const FeatureSelection sel = select_features_leverage(d, 10, 3, srng);
  for (std::size_t idx : sel.indices) {
    EXPECT_TRUE(idx == 2 || idx == 7 || idx == 13) << idx;
  }
}

TEST(FeatureSelection, KMeansThroughSelectionStaysReasonable) {
  Rng rng = make_rng(607);
  GaussianMixtureSpec spec;
  spec.n = 500;
  spec.dim = 64;
  spec.k = 3;
  const Dataset d = make_gaussian_mixture(spec, rng);
  Rng srng = make_rng(608);
  const FeatureSelection sel = select_features_norm(d, 32, srng);
  const Dataset proj = sel.map.apply(d);
  KMeansOptions opts;
  opts.k = 3;
  opts.seed = 2;
  const KMeansResult res = kmeans(proj, opts);
  const Matrix lifted = sel.map.lift(res.centers);
  const double full = kmeans(d, opts).cost;
  EXPECT_LT(kmeans_cost(d, lifted), 2.0 * full);
}

TEST(LloydMax, CodebookHitsBimodalModes) {
  // Values concentrated near 0 and near 100: a 2-level codebook must put
  // one codeword near each mode.
  Matrix training(1, 200);
  Rng rng = make_rng(609);
  std::normal_distribution<double> lo(0.0, 0.5);
  std::normal_distribution<double> hi(100.0, 0.5);
  for (std::size_t j = 0; j < 200; ++j) {
    training(0, j) = (j % 2 == 0) ? lo(rng) : hi(rng);
  }
  const ScalarLloydMaxQuantizer q(training, 2);
  ASSERT_EQ(q.levels(), 2u);
  EXPECT_NEAR(q.codebook()[0], 0.0, 1.0);
  EXPECT_NEAR(q.codebook()[1], 100.0, 1.0);
  EXPECT_EQ(q.bits_per_scalar(), 1u);
}

TEST(LloydMax, QuantizeMapsToNearestCodeword) {
  Matrix training{{0.0, 1.0, 10.0, 11.0}};
  const ScalarLloydMaxQuantizer q(training, 2);
  EXPECT_DOUBLE_EQ(q.quantize(-5.0), 0.5);
  EXPECT_DOUBLE_EQ(q.quantize(4.0), 0.5);
  EXPECT_DOUBLE_EQ(q.quantize(7.0), 10.5);
  EXPECT_DOUBLE_EQ(q.quantize(100.0), 10.5);
}

TEST(LloydMax, BeatsRoundingAtEqualBitsOnClusteredValues) {
  // Clustered value distribution: trained codewords beat the uniform-in-
  // exponent rounding grid at the same bit budget.
  Matrix values(1, 2000);
  Rng rng = make_rng(610);
  std::normal_distribution<double> mode1(0.31, 0.001);
  std::normal_distribution<double> mode2(0.87, 0.001);
  for (std::size_t j = 0; j < 2000; ++j) {
    values(0, j) = (j % 2 == 0) ? mode1(rng) : mode2(rng);
  }
  const int bits = 2;
  const ScalarLloydMaxQuantizer trained(values, std::size_t{1} << bits);
  const RoundingQuantizer rounding(bits);
  double trained_mse = 0.0;
  double rounding_mse = 0.0;
  for (double v : values.flat()) {
    trained_mse += std::pow(v - trained.quantize(v), 2);
    rounding_mse += std::pow(v - rounding.quantize(v), 2);
  }
  EXPECT_LT(trained_mse, rounding_mse);
}

TEST(LloydMax, ValidatesOptions) {
  Matrix training{{1.0, 2.0}};
  EXPECT_THROW(ScalarLloydMaxQuantizer(training, 1), precondition_error);
  EXPECT_THROW(ScalarLloydMaxQuantizer(Matrix(), 4), precondition_error);
}

TEST(LinkModel, TransferTimeAndEnergy) {
  TrafficLedger t;
  t.bits = 1'000'000;
  t.messages = 10;
  const LinkModel wifi = wifi_link();
  // 1 Mbit at 50 Mbps = 0.02 s + 10 * 2 ms latency = 0.04 s.
  EXPECT_NEAR(wifi.transfer_seconds(t), 0.02 + 0.02, 1e-9);
  EXPECT_NEAR(wifi.transfer_joules(t), 1e6 * 5e-9, 1e-12);
}

TEST(LinkModel, RadioClassOrdering) {
  TrafficLedger t;
  t.bits = 8'000'000;
  t.messages = 4;
  EXPECT_GT(lora_link().transfer_seconds(t), ble_link().transfer_seconds(t));
  EXPECT_GT(ble_link().transfer_seconds(t), wifi_link().transfer_seconds(t));
  EXPECT_GT(wifi_link().transfer_seconds(t), nr5g_link().transfer_seconds(t));
}

}  // namespace
}  // namespace ekm
