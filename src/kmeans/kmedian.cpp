#include "kmeans/kmedian.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "common/sampling.hpp"
#include "kmeans/cost.hpp"

namespace ekm {
namespace {

double nearest_distance(std::span<const double> p, const Matrix& centers,
                        std::size_t* index_out = nullptr) {
  const NearestCenter nc = nearest_center(p, centers);
  if (index_out != nullptr) *index_out = nc.index;
  return std::sqrt(nc.sq_dist);
}

// D-sampling (first power) seeding: the k-median analogue of k-means++.
Matrix kmedianpp_seed(const Dataset& data, std::size_t k, Rng& rng) {
  const std::size_t n = data.size();
  const std::size_t d = data.dim();
  Matrix centers(std::min(k, n), d);

  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = data.weight(i);
  const AliasTable first(w);
  const std::size_t f = first.sample(rng);
  std::copy(data.point(f).begin(), data.point(f).end(),
            centers.row(0).begin());

  std::vector<double> dist(n);
  for (std::size_t i = 0; i < n; ++i) {
    dist[i] = std::sqrt(
        squared_distance(data.point(i), centers.row(0)));
  }
  for (std::size_t c = 1; c < centers.rows(); ++c) {
    std::vector<double> probs(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      probs[i] = data.weight(i) * dist[i];
      total += probs[i];
    }
    std::size_t next;
    if (total <= 0.0) {
      std::uniform_int_distribution<std::size_t> unif(0, n - 1);
      next = unif(rng);
    } else {
      next = AliasTable(probs).sample(rng);
    }
    std::copy(data.point(next).begin(), data.point(next).end(),
              centers.row(c).begin());
    for (std::size_t i = 0; i < n; ++i) {
      dist[i] = std::min(
          dist[i], std::sqrt(squared_distance(data.point(i), centers.row(c))));
    }
  }
  return centers;
}

}  // namespace

double kmedian_cost(const Dataset& data, const Matrix& centers) {
  double cost = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    cost += data.weight(i) * nearest_distance(data.point(i), centers);
  }
  return cost;
}

std::vector<double> geometric_median(const Dataset& data, int max_iters,
                                     double tol) {
  EKM_EXPECTS(!data.empty());
  const std::size_t d = data.dim();
  // Start from the weighted mean.
  std::vector<double> y = weighted_mean(data);

  for (int it = 0; it < max_iters; ++it) {
    double denom = 0.0;
    std::vector<double> num(d, 0.0);
    bool on_point = false;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double dist = std::sqrt(squared_distance(data.point(i), y));
      if (dist < 1e-12) {
        on_point = true;
        continue;  // Weiszfeld guard: skip coincident points this step
      }
      const double w = data.weight(i) / dist;
      denom += w;
      auto p = data.point(i);
      for (std::size_t j = 0; j < d; ++j) num[j] += w * p[j];
    }
    if (denom <= 0.0) break;  // all mass sits exactly on y
    double shift = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double next = num[j] / denom;
      shift += (next - y[j]) * (next - y[j]);
      y[j] = next;
    }
    if (std::sqrt(shift) < tol && !on_point) break;
  }
  return y;
}

KMedianResult kmedian(const Dataset& data, const KMedianOptions& opts) {
  EKM_EXPECTS(!data.empty());
  EKM_EXPECTS(opts.k >= 1);
  const std::size_t n = data.size();
  const std::size_t d = data.dim();

  KMedianResult best;
  best.cost = std::numeric_limits<double>::infinity();
  const int restarts = std::max(1, opts.restarts);
  for (int r = 0; r < restarts; ++r) {
    Rng rng = make_rng(opts.seed, 0x3edULL + static_cast<std::uint64_t>(r));
    Matrix centers = kmedianpp_seed(data, opts.k, rng);
    std::vector<std::size_t> assign(n, 0);

    double prev = std::numeric_limits<double>::infinity();
    int iters = 0;
    for (int it = 0; it < opts.max_iters; ++it) {
      iters = it + 1;
      // Assignment.
      double cost = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        cost += data.weight(i) *
                nearest_distance(data.point(i), centers, &assign[i]);
      }
      if (std::isfinite(prev) && prev - cost <= 1e-9 * std::max(prev, 1e-300)) {
        break;
      }
      prev = cost;

      // Per-cluster Weiszfeld re-centering.
      for (std::size_t c = 0; c < centers.rows(); ++c) {
        std::vector<std::size_t> members;
        for (std::size_t i = 0; i < n; ++i) {
          if (assign[i] == c && data.weight(i) > 0.0) members.push_back(i);
        }
        if (members.empty()) continue;
        Matrix pts(members.size(), d);
        std::vector<double> w(members.size());
        for (std::size_t m = 0; m < members.size(); ++m) {
          auto src = data.point(members[m]);
          std::copy(src.begin(), src.end(), pts.row(m).begin());
          w[m] = data.weight(members[m]);
        }
        const std::vector<double> median = geometric_median(
            Dataset(std::move(pts), std::move(w)), opts.weiszfeld_iters);
        std::copy(median.begin(), median.end(), centers.row(c).begin());
      }
    }

    const double final_cost = kmedian_cost(data, centers);
    if (final_cost < best.cost) {
      best.cost = final_cost;
      best.centers = std::move(centers);
      best.assignment = std::move(assign);
      best.iterations = iters;
    }
  }
  // Refresh the assignment for the winning centers.
  for (std::size_t i = 0; i < n; ++i) {
    (void)nearest_distance(data.point(i), best.centers, &best.assignment[i]);
  }
  return best;
}

}  // namespace ekm
