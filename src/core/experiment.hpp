// Experiment harness reproducing the §7 evaluation protocol.
//
// Metrics per run (§7.1):
//  * normalized k-means cost  = cost(P, X) / cost(P, X*), X* solved on P;
//  * normalized communication = bits on the uplink / bits of the raw
//    dataset (n·d·64), and the scalar-count variant;
//  * running time at the data source(s) = measured seconds of the DR/CR/QT
//    computation (server solve excluded).
// Each algorithm is repeated for `monte_carlo_runs` independent seeds,
// as the paper repeats 10 Monte-Carlo runs, and the harness exposes the
// raw per-run samples so benches can print the Figure 1/2 CDFs.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/pipeline.hpp"
#include "data/dataset.hpp"

namespace ekm {

struct RunMetrics {
  double normalized_cost = 0.0;
  double normalized_comm_bits = 0.0;
  double normalized_comm_scalars = 0.0;
  double device_seconds = 0.0;
  std::size_t summary_points = 0;
  std::uint64_t uplink_bits = 0;
};

struct ExperimentSeries {
  std::string name;
  std::vector<RunMetrics> runs;

  [[nodiscard]] std::vector<double> costs() const;
  [[nodiscard]] std::vector<double> comm_bits() const;
  [[nodiscard]] std::vector<double> device_times() const;
};

/// Owns a dataset, its multi-source partition, and the X* baseline, so
/// several algorithm series can be evaluated against the same ground
/// truth (exactly how Figures 1–6 share their denominators).
class ExperimentContext {
 public:
  /// `num_sources` > 1 additionally prepares a random partition for the
  /// distributed pipelines (the paper uses m = 10).
  ExperimentContext(Dataset data, std::size_t k, std::uint64_t seed,
                    std::size_t num_sources = 1);

  [[nodiscard]] const Dataset& data() const { return data_; }
  [[nodiscard]] std::span<const Dataset> parts() const { return parts_; }
  [[nodiscard]] double baseline_cost() const { return baseline_cost_; }
  [[nodiscard]] const Matrix& baseline_centers() const { return baseline_centers_; }
  [[nodiscard]] std::size_t k() const { return k_; }

  /// Runs `monte_carlo_runs` independent repetitions of one pipeline;
  /// run r uses master seed derive_seed(config.seed, r).
  [[nodiscard]] ExperimentSeries run(PipelineKind kind, PipelineConfig config,
                                     int monte_carlo_runs) const;

 private:
  Dataset data_;
  std::vector<Dataset> parts_;
  std::size_t k_;
  Matrix baseline_centers_;
  double baseline_cost_ = 0.0;
};

/// Formats "name  mean±sd(cost)  mean(comm)  mean(time)" rows for logs.
[[nodiscard]] std::string format_series_table(
    const std::vector<ExperimentSeries>& series);

}  // namespace ekm
