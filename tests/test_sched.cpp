// Tests for src/sched: task-graph readiness and barrier ordering, the
// creation-order execution guarantee the protocol builders rely on,
// dynamic task addition (the disSS reallocation-wave continuation),
// and the scheduler's per-actor timelines over both fabrics.
#include <gtest/gtest.h>

#include <vector>

#include "net/channel.hpp"
#include "sched/scheduler.hpp"
#include "sched/task_graph.hpp"
#include "sim/scenario.hpp"
#include "sim/sim_network.hpp"

namespace ekm {
namespace {

PhaseTask noop(TaskKind kind, std::vector<TaskId> deps,
               std::size_t actor = kServerActor) {
  return {kind, actor, "noop", {}, std::move(deps)};
}

TEST(TaskGraph, ReadinessFollowsDependencies) {
  TaskGraph g;
  const TaskId a = g.add(noop(TaskKind::kCompute, {}));
  const TaskId b = g.add(noop(TaskKind::kUplink, {a}));
  const TaskId c = g.add(noop(TaskKind::kCollect, {a}));
  const TaskId d = g.add(noop(TaskKind::kBarrier, {b, c}));

  // Only the root is ready; the barrier needs both middle tasks.
  EXPECT_EQ(g.ready_tasks(), (std::vector<TaskId>{a}));
  EXPECT_FALSE(g.ready(d));

  EXPECT_EQ(g.complete(a), (std::vector<TaskId>{b, c}));
  EXPECT_TRUE(g.ready(b));
  EXPECT_TRUE(g.ready(c));
  EXPECT_TRUE(g.complete(b).empty());  // d still waits on c
  EXPECT_FALSE(g.ready(d));
  EXPECT_EQ(g.complete(c), (std::vector<TaskId>{d}));
  EXPECT_TRUE(g.ready(d));
  EXPECT_FALSE(g.all_done());
  EXPECT_TRUE(g.complete(d).empty());
  EXPECT_TRUE(g.all_done());

  // Completing a task twice — or one whose deps are open — throws.
  EXPECT_THROW((void)g.complete(d), precondition_error);
  TaskGraph g2;
  const TaskId r = g2.add(noop(TaskKind::kCompute, {}));
  const TaskId s = g2.add(noop(TaskKind::kCompute, {r}));
  EXPECT_THROW((void)g2.complete(s), precondition_error);
}

TEST(TaskGraph, DependenciesMustNameExistingTasks) {
  TaskGraph g;
  (void)g.add(noop(TaskKind::kCompute, {}));
  // Forward (or dangling) dependencies are unrepresentable, which is
  // what makes every TaskGraph acyclic by construction.
  EXPECT_THROW((void)g.add(noop(TaskKind::kCompute, {5})), precondition_error);
  EXPECT_THROW((void)g.add(noop(TaskKind::kCompute, {1})), precondition_error);
}

TEST(Scheduler, ExecutesProgramOrderedGraphsInCreationOrder) {
  // The protocol builders add tasks in the program order of the PR 4
  // loops; the scheduler must replay exactly that order (this is the
  // bitwise-parity guarantee). Build a two-site round shape and check
  // the execution sequence.
  Network net(2);
  TaskGraph g;
  std::vector<TaskId> order;
  const auto rec = [&order](TaskId id) { return [&order, id] { order.push_back(id); }; };

  const TaskId open = g.add({TaskKind::kBarrier, kServerActor, "open",
                             rec(0), {}});
  const TaskId c0 = g.add({TaskKind::kCompute, 0, "c0", rec(1), {open}});
  const TaskId s0 = g.add({TaskKind::kUplink, 0, "s0", rec(2), {c0}});
  const TaskId c1 = g.add({TaskKind::kCompute, 1, "c1", rec(3), {open}});
  const TaskId s1 = g.add({TaskKind::kUplink, 1, "s1", rec(4), {c1}});
  const TaskId r0 = g.add({TaskKind::kCollect, kServerActor, "r0", rec(5), {s0}});
  const TaskId r1 = g.add({TaskKind::kCollect, kServerActor, "r1", rec(6), {s1}});
  const TaskId merge = g.add({TaskKind::kBarrier, kServerActor, "merge",
                              rec(7), {r0, r1}});
  (void)g.add({TaskKind::kBroadcast, kServerActor, "b0", rec(8), {merge}});
  (void)g.add({TaskKind::kBroadcast, kServerActor, "b1", rec(9), {merge}});

  PhaseScheduler sched(net);
  sched.run(g);
  EXPECT_TRUE(g.all_done());
  EXPECT_EQ(order, (std::vector<TaskId>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));

  // The trace mirrors the execution and partitions by actor.
  ASSERT_EQ(sched.trace().size(), 10u);
  EXPECT_EQ(sched.trace()[0].kind, TaskKind::kBarrier);
  EXPECT_EQ(sched.site_timeline(0).size(), 2u);
  EXPECT_EQ(sched.site_timeline(1).size(), 2u);
  EXPECT_EQ(sched.site_timeline(kServerActor).size(), 6u);
}

TEST(Scheduler, BarrierNeverRunsBeforeItsInputsNorSiteTasksBeforeTheirs) {
  // The ordering contract stated task by task: a collect never runs
  // before its site's uplink, the barrier never before every collect,
  // the broadcast never before the barrier.
  Network net(3);
  TaskGraph g;
  std::vector<TaskId> uplinks, collects;
  std::vector<TaskId> seq;
  const auto log = [&seq](TaskId* slot) {
    return [&seq, slot] { seq.push_back(*slot); };
  };
  std::vector<TaskId> ids(8, 0);
  for (std::size_t i = 0; i < 3; ++i) {
    ids[i] = g.add({TaskKind::kUplink, i, "up", log(&ids[i]), {}});
    uplinks.push_back(ids[i]);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    ids[3 + i] = g.add({TaskKind::kCollect, kServerActor, "collect",
                        log(&ids[3 + i]), {uplinks[i]}});
    collects.push_back(ids[3 + i]);
  }
  ids[6] = g.add({TaskKind::kBarrier, kServerActor, "barrier", log(&ids[6]),
                  collects});
  ids[7] = g.add({TaskKind::kBroadcast, kServerActor, "bcast", log(&ids[7]),
                  {ids[6]}});

  PhaseScheduler(net).run(g);
  ASSERT_EQ(seq.size(), 8u);
  const auto pos = [&seq](TaskId id) {
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (seq[i] == id) return i;
    }
    ADD_FAILURE() << "task " << id << " never ran";
    return seq.size();
  };
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LT(pos(uplinks[i]), pos(collects[i]));
    EXPECT_LT(pos(collects[i]), pos(ids[6]));  // barrier after every collect
  }
  EXPECT_LT(pos(ids[6]), pos(ids[7]));  // broadcast after the barrier
}

TEST(Scheduler, TasksAddedMidRunExecuteAfterTheirDependencies) {
  // The disSS reallocation wave appends its tasks from a running
  // barrier's action; the scheduler must pick them up and respect
  // their dependencies.
  Network net(1);
  TaskGraph g;
  std::vector<int> order;
  const TaskId root = g.add({TaskKind::kBarrier, kServerActor, "root",
                             [&] {
                               order.push_back(0);
                               const TaskId w1 = g.add(
                                   {TaskKind::kBroadcast, kServerActor, "w1",
                                    [&] { order.push_back(1); },
                                    {}});
                               (void)g.add({TaskKind::kCollect, kServerActor,
                                            "w2",
                                            [&] { order.push_back(2); },
                                            {w1}});
                             },
                             {}});
  (void)root;
  PhaseScheduler(net).run(g);
  EXPECT_TRUE(g.all_done());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(g.size(), 3u);
}

TEST(Scheduler, ContinuationDependingOnTheRunningTaskRunsExactlyOnce) {
  // Regression: a task added mid-run whose dependency is the task
  // currently executing gets enqueued twice (once by the dependency
  // resolving, once by the new-task scan); the scheduler must run it
  // once, not twice-then-throw.
  Network net(1);
  TaskGraph g;
  std::vector<int> order;
  std::vector<TaskId> self{0};
  self[0] = g.add({TaskKind::kBarrier, kServerActor, "root",
                   [&] {
                     order.push_back(0);
                     (void)g.add({TaskKind::kCollect, kServerActor, "cont",
                                  [&] { order.push_back(1); },
                                  {self[0]}});  // depends on the RUNNING task
                   },
                   {}});
  PhaseScheduler(net).run(g);
  EXPECT_TRUE(g.all_done());
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Scheduler, TimelinesRideTheSimulatedClocks) {
  // Over a SimNetwork the trace records the owning actor's virtual
  // clock around each task: a site's uplink span covers its transmit
  // time, the server's collect span ends at (or after) the arrival.
  SimNetwork net(2, parse_scenario("radio=wifi"));
  TaskGraph g;
  const TaskId send = g.add({TaskKind::kUplink, 0, "send",
                             [&] {
                               Message msg;
                               msg.payload.resize(1 << 12);
                               msg.wire_bits = 1 << 15;
                               msg.scalars = 512;
                               net.uplink(0).send(std::move(msg));
                             },
                             {}});
  (void)g.add({TaskKind::kCollect, kServerActor, "recv",
               [&] { (void)net.uplink(0).receive_by(kNoRound); },
               {send}});
  PhaseScheduler sched(net);
  sched.run(g);

  const auto site0 = sched.site_timeline(0);
  const auto server = sched.site_timeline(kServerActor);
  ASSERT_EQ(site0.size(), 1u);
  ASSERT_EQ(server.size(), 1u);
  // The site's clock advanced across its send (compute + store-and-
  // forward transmit) from zero...
  EXPECT_EQ(site0[0].start_s, 0.0);
  EXPECT_GT(site0[0].finish_s, 0.0);
  // ...and the server's collect finished no earlier than the site
  // finished transmitting.
  EXPECT_GE(server[0].finish_s, site0[0].finish_s);

  // The synchronous Network has no clocks: spans pin to zero there.
  Network sync(1);
  TaskGraph g2;
  (void)g2.add({TaskKind::kCompute, 0, "noop", {}, {}});
  PhaseScheduler sched2(sync);
  sched2.run(g2);
  ASSERT_EQ(sched2.trace().size(), 1u);
  EXPECT_EQ(sched2.trace()[0].start_s, 0.0);
  EXPECT_EQ(sched2.trace()[0].finish_s, 0.0);
}

}  // namespace
}  // namespace ekm
