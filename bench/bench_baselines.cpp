// Extension experiment: the paper's related-work contrast, quantified.
//
// §2 dismisses MapReduce/P2P distributed k-means as "only heuristics" and
// the introduction argues data summaries beat federated-style parameter
// shipping because "only one round of communications is required". This
// bench puts those claims on the same simulated network as Algorithm 4:
//   JL+BKLW            one round, guaranteed (1+ε) factor
//   distributed Lloyd  federated-style, one stats round per iteration
//   MapReduce merge    one round, no guarantee
//   gossip P2P         server-free, many peer rounds
// printing global cost, total uplink traffic, rounds, and device time.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/pipeline.hpp"
#include "distributed/baselines.hpp"
#include "kmeans/cost.hpp"

using namespace ekm;
using namespace ekm::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const Dataset data = mnist_dataset(args, /*n_fast=*/3000);
  Rng prng = make_rng(args.seed, 0x99ULL);
  const std::vector<Dataset> parts = partition_random(data, 10, prng);

  KMeansOptions base;
  base.k = 2;
  base.restarts = 10;
  base.seed = 5;
  const double baseline = kmeans(data, base).cost;
  const double raw_bits = static_cast<double>(data.scalar_count()) * 64.0;

  std::printf("# distributed baselines: n=%zu d=%zu m=10 k=2\n", data.size(),
              data.dim());
  std::printf("%-18s %10s %12s %8s %10s\n", "method", "cost", "comm(bits)",
              "rounds", "device-s");

  {
    PipelineConfig cfg;
    cfg.k = 2;
    cfg.epsilon = 0.3;
    cfg.seed = args.seed;
    cfg.coreset_size = 300;
    cfg.jl_dim = 96;
    cfg.pca_dim = 20;
    const PipelineResult res =
        run_distributed_pipeline(PipelineKind::kJlBklw, parts, cfg);
    std::printf("%-18s %10.4f %12.3e %8d %10.3f\n", "JL+BKLW (Alg 4)",
                kmeans_cost(data, res.centers) / baseline,
                static_cast<double>(res.uplink.bits) / raw_bits, 1,
                res.device_seconds);
  }
  {
    Network net(10);
    Stopwatch work;
    DistributedLloydOptions opts;
    opts.k = 2;
    opts.seed = args.seed;
    const DistributedBaselineResult res =
        distributed_lloyd(parts, opts, net, work);
    std::printf("%-18s %10.4f %12.3e %8d %10.3f\n", "federated Lloyd",
                res.cost / baseline,
                static_cast<double>(net.total_uplink().bits) / raw_bits,
                res.rounds, work.total_seconds());
  }
  {
    Network net(10);
    Stopwatch work;
    MapReduceOptions opts;
    opts.k = 2;
    opts.seed = args.seed;
    const DistributedBaselineResult res =
        mapreduce_kmeans(parts, opts, net, work);
    std::printf("%-18s %10.4f %12.3e %8d %10.3f\n", "MapReduce merge",
                res.cost / baseline,
                static_cast<double>(net.total_uplink().bits) / raw_bits,
                res.rounds, work.total_seconds());
  }
  {
    Network net(10);
    Stopwatch work;
    GossipOptions opts;
    opts.k = 2;
    opts.seed = args.seed;
    const DistributedBaselineResult res = gossip_kmeans(parts, opts, net, work);
    std::printf("%-18s %10.4f %12.3e %8d %10.3f\n", "gossip P2P",
                res.cost / baseline,
                static_cast<double>(net.total_uplink().bits) / raw_bits,
                res.rounds, work.total_seconds());
  }
  std::printf(
      "# reading: the heuristics can match cost on easy data but ship more\n"
      "# bits (multi-round) or lose the approximation guarantee (one-shot\n"
      "# merges) — the §2 contrast that motivates coreset-based summaries.\n");
  return 0;
}
