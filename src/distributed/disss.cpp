#include "distributed/disss.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include <utility>

#include "cr/merge.hpp"
#include "kmeans/cost.hpp"
#include "net/summary_codec.hpp"
#include "net/topology.hpp"
#include "obs/recorder.hpp"
#include "qt/quantizer.hpp"
#include "sched/scheduler.hpp"

namespace ekm {
namespace {

/// Per-site sampling state retained across the summary round's waves:
/// the assignment/contribution scan of step 3 plus every pick drawn so
/// far, so a reallocation wave can *extend* the sample (continuing the
/// site's RNG stream) instead of re-scanning the shard.
struct SiteSample {
  std::vector<std::size_t> assign;   ///< nearest local center per point
  std::vector<double> contrib;       ///< w(p) · d²(p, X_i) per point
  std::vector<double> cluster_weight;  ///< shard mass per local center
  double cost = 0.0;                 ///< Σ contrib
  std::vector<std::size_t> picks;    ///< sampled point indices, draw order
  std::size_t target_rows = 0;       ///< sample rows in the last coreset
  Rng rng;                           ///< stream 2i+1, persists across waves
};

/// Draws `count` additional cost-proportional picks into `st.picks`.
/// The linear subtract-scan consumes the RNG stream exactly like the
/// pre-wave code, with one deliberate divergence: the rounding
/// fallback below picks the last *positive-contribution* point where
/// the old code used the raw last index — which, when that point was
/// itself a bicriteria center (contrib == 0), reweighted by 1/0 and
/// injected an inf weight into the coreset.
void draw_picks(SiteSample& st, const Dataset& p, std::size_t count) {
  if (count == 0 || st.cost <= 0.0) return;
  const std::size_t n = p.size();
  // Rounding fallback for draws that land within an ulp of st.cost:
  // the last point with positive contribution, never a zero-contrib
  // point (e.g. a data point that is itself a bicriteria center) whose
  // reweighting would divide by zero.
  std::size_t fallback = n - 1;
  while (fallback > 0 && st.contrib[fallback] <= 0.0) --fallback;
  std::uniform_real_distribution<double> unif(0.0, st.cost);
  for (std::size_t s = 0; s < count; ++s) {
    double r = unif(st.rng);
    std::size_t pick = fallback;
    for (std::size_t j = 0; j < n; ++j) {
      r -= st.contrib[j];
      if (r <= 0.0) {
        pick = j;
        break;
      }
    }
    st.picks.push_back(pick);
  }
}

/// Builds the site's local coreset from everything picked so far:
/// sampled points with the unbiased reweighting of [4], per-cluster
/// overshoot rescale, then the bicriteria-center top-up that keeps the
/// total weight exactly equal to the shard's mass — which is what makes
/// the union's mass invariant under who responds and how often a wave
/// re-extends a sample.
Dataset coreset_from_picks(const Dataset& p, const Matrix& xi,
                           const SiteSample& st, double total_cost,
                           std::size_t total_samples) {
  const std::size_t b = xi.rows();
  Matrix pts(st.target_rows + b, p.dim());
  std::vector<double> weights(st.target_rows + b, 0.0);
  std::vector<double> sampled_mass(b, 0.0);
  std::vector<std::size_t> assign_of_pick(st.picks.size(), 0);
  for (std::size_t s = 0; s < st.picks.size(); ++s) {
    const std::size_t pick = st.picks[s];
    auto src = p.point(pick);
    std::copy(src.begin(), src.end(), pts.row(s).begin());
    // Reweighting of [4]: across sources the union is a
    // cost-proportional sample of size `total_samples`, so the
    // unbiased weight is w(p) · total_cost / (total_samples ·
    // contrib(p)) with contrib(p) = w(p) d²(p, X_i).
    weights[s] = p.weight(pick) * total_cost /
                 (static_cast<double>(total_samples) * st.contrib[pick]);
    assign_of_pick[s] = st.assign[pick];
    sampled_mass[st.assign[pick]] += weights[s];
  }
  // Step 3's "weights set to match the number of points per cluster":
  // rescale overshooting clusters, then top residual mass up via the
  // bicriteria centers, keeping the total weight exact.
  for (std::size_t c = 0; c < b; ++c) {
    if (sampled_mass[c] > st.cluster_weight[c] && sampled_mass[c] > 0.0) {
      const double scale = st.cluster_weight[c] / sampled_mass[c];
      for (std::size_t s = 0; s < st.picks.size(); ++s) {
        if (assign_of_pick[s] == c) weights[s] *= scale;
      }
      sampled_mass[c] = st.cluster_weight[c];
    }
  }
  for (std::size_t c = 0; c < b; ++c) {
    auto src = xi.row(c);
    std::copy(src.begin(), src.end(), pts.row(st.target_rows + c).begin());
    weights[st.target_rows + c] =
        std::max(0.0, st.cluster_weight[c] - sampled_mass[c]);
  }
  return {std::move(pts), std::move(weights)};
}

/// Graceful degradation (qt/policy.hpp): the significand width a site
/// commits to right before an uplink. Fixed policy — or an unbounded
/// round, or an instant fabric (airtime 0) — keeps the configured
/// width, consulting nothing; adaptive weighs the frame's single-attempt
/// airtime against the remaining round budget and walks a small ladder
/// of narrower widths until the frame fits, flooring at 8 significand
/// bits (below that the width savings are marginal — 12 header bits
/// dominate — and the frame ships at 8 even when it still cannot fit).
int pick_significant_bits(const Coreset& cs, const DisSsOptions& opts,
                          Fabric& net, std::size_t i, double deadline) {
  if (opts.quant != QuantPolicy::kAdaptive || !std::isfinite(deadline)) {
    return opts.significant_bits;
  }
  const double budget = deadline - net.site_time(i);
  const double full_airtime =
      net.uplink_airtime_s(i, coreset_wire_bits(cs, opts.significant_bits));
  if (full_airtime <= 0.0 || full_airtime <= budget) {
    return opts.significant_bits;
  }
  constexpr int kLadder[] = {24, 16, 8};
  int width = opts.significant_bits;
  for (int step : kLadder) {
    if (step >= opts.significant_bits) continue;
    width = step;
    if (net.uplink_airtime_s(i, coreset_wire_bits(cs, step)) <= budget) break;
  }
  return width;
}

}  // namespace

// disSS as a task graph (src/sched/): two collection rounds — the cost
// round (bicriteria + one-scalar uplink, budget-split barrier, NAK or
// allocation broadcast) and the summary round (sample + coreset
// uplink, union barrier) — plus a *dynamically added* continuation:
// the budget-reallocation wave only exists once the union barrier
// knows who missed, so its tasks (open_subround, per-receiver
// broadcast, supplement compute/uplink, collect, final union) are
// appended to the running graph by the barrier's action. Creation
// order mirrors the PR 4 loops statement for statement, so execution
// (lowest-ready-id) is bitwise identical to them; barriers commit on
// final inputs, which is what the overlap commit rule accelerates.
//
// Under a tree fabric (net.topology() != nullptr) both collection
// rounds aggregate through gateways: gateway g receives its children by
// the level-0 cutoff and forwards one merged frame — [site, cost] rows
// for the cost round, a merge_union of the children's coresets (the
// SAME associative merge the server's union runs, src/cr/merge.hpp)
// for the summary round. Children are folded in ascending order and
// gateways cover contiguous ascending site ranges, so the server-side
// union is bitwise the star union whenever every frame arrives. The
// budget-reallocation wave is disabled under a tree: a supplement
// cannot replace one child inside an already-merged gateway frame
// without a second full level-0 round, which would cost more than the
// resolution it buys.
Coreset disss(std::span<const Dataset> parts, const DisSsOptions& opts,
              Fabric& net, Stopwatch& device_work, std::uint64_t seed) {
  EKM_EXPECTS(!parts.empty());
  EKM_EXPECTS(parts.size() == net.num_sources());
  EKM_EXPECTS(opts.total_samples >= parts.size());
  EKM_EXPECTS_MSG(opts.realloc_reserve >= 0.0 && opts.realloc_reserve < 1.0,
                  "realloc_reserve must be in [0, 1)");
  const std::size_t m = parts.size();

  // Shared protocol state, written by the tasks in dependency order.
  RoundId cost_round = kNoRound;
  double cost_deadline = kNoDeadline;
  std::vector<Matrix> local_centers(m);
  std::vector<double> local_cost(m, 0.0);
  std::vector<char> in_round(m, 0);
  double total_cost = 0.0;
  std::size_t cost_responders = 0;
  std::vector<std::size_t> alloc(m, 0);
  RoundId summary_round = kNoRound;
  double summary_deadline = kNoDeadline;
  double wave1_deadline = kNoDeadline;
  std::vector<SiteSample> samples(m);
  std::vector<char> sent(m, 0);
  std::vector<Dataset> piece(m);
  std::vector<char> got(m, 0);
  std::size_t summary_responders = 0;
  Coreset merged;

  // Tree state (null topo = the star path, untouched): per-gateway
  // delivered [site, cost] rows for the cost round, and the decoded
  // per-gateway unions the server stacks in place of per-site pieces.
  const TreeTopology* topo = net.topology();
  std::vector<std::vector<std::pair<std::size_t, double>>> gw_cost;
  std::vector<Dataset> gw_piece;
  std::vector<std::size_t> gw_responders;

  // The wave schedule is a pure function of the options (see the
  // summary-round open task below for the timing rationale). No wave
  // under a tree — see the header comment.
  const bool reserve_scheduled =
      std::isfinite(opts.round_deadline_s) && opts.realloc_reserve > 0.0;
  const bool realloc_armed =
      opts.reallocate && topo == nullptr &&
      (!std::isfinite(opts.round_deadline_s) || reserve_scheduled);

  TaskGraph graph;

  // --- step 1: local bicriteria solutions, uplink local costs. ---
  const TaskId cost_open = graph.add(
      {TaskKind::kBarrier, kServerActor, "disSS/open-cost-round",
       [&] {
         cost_round = net.open_round(opts.round_deadline_s);
         cost_deadline = net.round_cutoff(cost_round);
       },
       {}});
  std::vector<TaskId> cost_uplinks(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (parts[i].empty()) {
      cost_uplinks[i] =
          graph.add({TaskKind::kUplink, i, "disSS/uplink-cost-empty",
                     [&net, i] { net.uplink(i).send(encode_scalar(0.0)); },
                     {cost_open}});
      continue;
    }
    const TaskId compute = graph.add(
        {TaskKind::kCompute, i, "disSS/bicriteria",
         [&, i] {
           Rng rng = make_rng(seed, 2 * i);
           auto scope = device_work.measure();
           BicriteriaOptions bopts = opts.bicriteria;
           bopts.k = opts.k;
           local_centers[i] = bicriteria_centers(parts[i], bopts, rng);
           local_cost[i] = kmeans_cost(parts[i], local_centers[i]);
         },
         {cost_open}});
    cost_uplinks[i] = graph.add(
        {TaskKind::kUplink, i, "disSS/uplink-cost",
         [&, i] { net.uplink(i).send(encode_scalar(local_cost[i])); },
         {compute}});
  }

  // --- step 2: server allocates the sample budget ∝ cost, over the
  // sources whose cost report made the deadline. Dropped sources are
  // NAK'd (allocation -1) so they stay silent in step 3; total_cost —
  // and with it every sample weight — is renormalized over the
  // responders. ---
  std::vector<TaskId> cost_collects;
  if (topo == nullptr) {
    cost_collects.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      cost_collects[i] = graph.add(
          {TaskKind::kCollect, kServerActor, "disSS/collect-cost",
           [&, i] {
             auto frames = receive_frames_by(net.uplink(i), 1, cost_round);
             if (!frames.has_value()) return;
             in_round[i] = 1;
             cost_responders += 1;
             total_cost += decode_scalar((*frames)[0]);
           },
           {cost_uplinks[i]}});
    }
  } else {
    // Gateways relay the cost reports as one [site, cost] matrix per
    // gateway. The server folds the rows gateway-ascending ×
    // child-ascending — i.e. site-ascending, the star summation order —
    // so total_cost (and with it every sample weight) is bitwise the
    // star figure when every frame arrives.
    const std::size_t gateways = topo->gateways();
    gw_cost.assign(gateways, {});
    cost_collects.resize(gateways);
    for (std::size_t g = 0; g < gateways; ++g) {
      const std::size_t actor = topo->sites + g;
      std::vector<TaskId> child_collects;
      for (std::size_t c = topo->child_begin(g); c < topo->child_end(g); ++c) {
        child_collects.push_back(graph.add(
            {TaskKind::kCollect, actor, "disSS/gw-collect-cost",
             [&, g, c] {
               const double cutoff =
                   topo->level0_deadline(cost_deadline, opts.round_deadline_s);
               auto frames = receive_frames_by(net.uplink(c), 1, cost_round,
                                               cutoff);
               if (!frames.has_value()) return;
               gw_cost[g].emplace_back(c, decode_scalar((*frames)[0]));
             },
             {cost_uplinks[c]}}));
      }
      const TaskId forward = graph.add(
          {TaskKind::kUplink, actor, "disSS/gw-forward-cost",
           [&, g, actor] {
             // The forward hop departs only after the last child frame
             // resolved on the gateway's own timeline.
             double ready = 0.0;
             for (std::size_t c = topo->child_begin(g);
                  c < topo->child_end(g); ++c) {
               ready = std::max(ready, net.uplink_consumed_at_s(c));
             }
             net.wait_until(actor, ready);
             Matrix rows(gw_cost[g].size(), 2);
             for (std::size_t r = 0; r < gw_cost[g].size(); ++r) {
               rows(r, 0) = static_cast<double>(gw_cost[g][r].first);
               rows(r, 1) = gw_cost[g][r].second;
             }
             net.uplink(actor).send(encode_matrix(rows));
           },
           std::move(child_collects)});
      cost_collects[g] = graph.add(
          {TaskKind::kCollect, kServerActor, "disSS/collect-cost-gateway",
           [&, g] {
             auto frames = receive_frames_by(net.uplink(topo->sites + g), 1,
                                             cost_round);
             if (!frames.has_value()) return;
             const Matrix rows = decode_matrix((*frames)[0]);
             for (std::size_t r = 0; r < rows.rows(); ++r) {
               const auto site =
                   static_cast<std::size_t>(std::llround(rows(r, 0)));
               in_round[site] = 1;
               cost_responders += 1;
               total_cost += rows(r, 1);
             }
           },
           {forward}});
    }
  }
  const TaskId budget_split = graph.add(
      {TaskKind::kBarrier, kServerActor, "disSS/budget-split",
       [&] {
         enforce_availability_floor(cost_responders, opts.min_responders,
                                    "disSS cost round", net.rounds_opened());
       },
       cost_collects});
  std::vector<TaskId> alloc_broadcasts(m);
  for (std::size_t i = 0; i < m; ++i) {
    alloc_broadcasts[i] = graph.add(
        {TaskKind::kBroadcast, kServerActor, "disSS/broadcast-alloc",
         [&, i] {
           if (!in_round[i]) {
             net.downlink(i).send(encode_scalar(-1.0));
             return;
           }
           alloc[i] = total_cost > 0.0
                          ? static_cast<std::size_t>(std::llround(
                                static_cast<double>(opts.total_samples) *
                                local_cost[i] / total_cost))
                          : opts.total_samples / cost_responders;
           net.downlink(i).send(encode_scalar(static_cast<double>(alloc[i])));
         },
         {budget_split}});
  }

  // --- step 3: sources sample ∝ cost({p}, X_i), uplink S_i ∪ X_i. ---
  // Cross-round pipelining: with `pipeline=on` the summary round's open
  // barrier depends only on the cost round's *committed* budget-split
  // barrier, not on the allocation broadcasts — the summary round's
  // handle is minted (and its cutoff anchored) while the allocation
  // frames still ride the fabric, and each site's sample task waits on
  // the open barrier plus its OWN allocation broadcast only. Off keeps
  // PR 8's serial edges. Either way the tasks are created in the same
  // program order, so the creation-order replay — and with it every
  // draw, ledger, and clock — is identical; the edges declare the true
  // dataflow for any topological executor.
  const std::vector<TaskId> summary_open_deps =
      opts.pipeline ? std::vector<TaskId>{budget_split} : alloc_broadcasts;
  const TaskId summary_open = graph.add(
      {TaskKind::kBarrier, kServerActor, "disSS/open-summary-round",
       [&] {
         summary_round = net.open_round(opts.round_deadline_s);
         summary_deadline = net.round_cutoff(summary_round);
         // The server only learns who missed a finite round when the
         // collection deadline passes, so a wave opened at the round
         // cutoff itself could never deliver. Reallocation under a
         // finite deadline therefore requires an explicitly scheduled
         // reserve: first-wave summaries are then due at `deadline −
         // reserve × budget` and the tail of the round belongs to the
         // wave. With no reserve (the default) the first wave collects
         // at the full round deadline — exactly PR 3's schedule — and
         // the wave is skipped; with an unbounded round the server
         // learns of a miss the moment the sender's retry budget dies,
         // and the wave runs without a reserve. (The sites schedule
         // transmissions against the *round* cutoff either way — the
         // wave split is the server's internal affair.)
         wave1_deadline =
             opts.reallocate && reserve_scheduled
                 ? summary_deadline - opts.realloc_reserve * opts.round_deadline_s
                 : summary_deadline;
       },
       summary_open_deps});
  std::vector<TaskId> summary_uplinks(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::vector<TaskId> sample_deps =
        opts.pipeline ? std::vector<TaskId>{summary_open, alloc_broadcasts[i]}
                      : std::vector<TaskId>{summary_open};
    summary_uplinks[i] = graph.add(
        {TaskKind::kCompute, i, "disSS/sample+uplink",
         [&, i] {
           if (parts[i].empty()) {
             // Consume the allocation frame even though its value is
             // moot — leaving it queued would alias the next downlink
             // read on this link (e.g. a refine round's pushed
             // centers).
             (void)net.downlink(i).receive_by(kNoRound);
             net.uplink(i).send(encode_coreset(Coreset{}, opts.significant_bits));
             sent[i] = 1;
             return;
           }
           // A NAK'd source — or one whose allocation frame expired on
           // the downlink — sits this round out and transmits nothing.
           auto alloc_frame = net.downlink(i).receive_by(kNoRound);
           const double si_signed =
               alloc_frame.has_value() ? decode_scalar(*alloc_frame) : -1.0;
           if (si_signed < 0.0) return;
           const auto si = static_cast<std::size_t>(si_signed);
           Coreset local;
           {
             auto scope = device_work.measure();
             SiteSample& st = samples[i];
             st.rng = make_rng(seed, 2 * i + 1);
             const Dataset& p = parts[i];
             const std::size_t n = p.size();
             const Matrix& xi = local_centers[i];

             st.assign.resize(n);
             st.contrib.resize(n);
             st.cluster_weight.assign(xi.rows(), 0.0);
             for (std::size_t j = 0; j < n; ++j) {
               const NearestCenter nc = nearest_center(p.point(j), xi);
               st.assign[j] = nc.index;
               st.contrib[j] = p.weight(j) * nc.sq_dist;
               st.cost += st.contrib[j];
               st.cluster_weight[nc.index] += p.weight(j);
             }

             st.target_rows = std::min(si, n);
             draw_picks(st, p, st.target_rows);
             local.points =
                 coreset_from_picks(p, xi, st, total_cost, opts.total_samples);
           }
           // Adaptive quantization commits a width per frame, right
           // before transmission — the only moment the site knows both
           // the frame's size and the remaining round budget. Narrowed
           // points are quantized on-device (billed as device work);
           // the server's re-check at the configured width is exact
           // because s-bit values are representable at every width >= s.
           // Under a tree the site's real cutoff is the gateway's
           // level-0 deadline, not the server's (inf stays inf, so the
           // fixed/unbounded paths are untouched).
           const double site_cutoff =
               topo == nullptr
                   ? summary_deadline
                   : topo->level0_deadline(summary_deadline,
                                           opts.round_deadline_s);
           const int wire_s =
               pick_significant_bits(local, opts, net, i, site_cutoff);
           // The committed width is an observability signal (the
           // "graceful degradation" column): note it on the recorder,
           // if one rides the fabric. Reads only, after the decision.
           if (Recorder* rec = net.recorder()) {
             rec->note_quant_width(i, wire_s, opts.significant_bits);
           }
           if (wire_s < opts.significant_bits) {
             auto scope = device_work.measure();
             local.points = RoundingQuantizer(wire_s).quantize(local.points);
           }
           net.uplink(i).send(encode_coreset(local, wire_s));
           sent[i] = 1;
           // The scan/pick state exists only for the reallocation wave;
           // when no wave can run, release it now instead of holding
           // O(n) per site through the rest of the round.
           if (!realloc_armed) samples[i] = SiteSample{};
         },
         sample_deps});
  }

  // --- step 4: server unions the local coresets that made the
  // deadline. Each local coreset's weights sum to exactly its own
  // shard's mass (the per-cluster top-up in step 3 guarantees it), so
  // a dropped source costs only its mass — the union stays a valid
  // weighted summary of the responders' data. ---
  std::vector<TaskId> summary_collects;
  if (topo == nullptr) {
    summary_collects.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      summary_collects[i] = graph.add(
          {TaskKind::kCollect, kServerActor, "disSS/collect-summary",
           [&, i] {
             if (!sent[i]) return;
             // The first-wave split (wave1_deadline) caps the round's
             // cutoff when a reallocation reserve is scheduled.
             auto frames =
                 receive_frames_by(net.uplink(i), 1, summary_round,
                                   wave1_deadline);
             if (!frames.has_value()) return;
             got[i] = 1;
             summary_responders += 1;
             Coreset local = decode_coreset((*frames)[0]);
             if (local.size() > 0) piece[i] = std::move(local.points);
           },
           {summary_uplinks[i]}});
    }
  } else {
    // Gateway merge barriers: gateway g collects its children's
    // coresets by the level-0 cutoff, folds the delivered ones through
    // merge_union in ascending child order (the server's own union
    // operator), and forwards one (responder count, merged coreset)
    // pair. Codec payloads are value-exact, so the re-encode loses
    // nothing; billing uses the configured full width.
    const std::size_t gateways = topo->gateways();
    gw_piece.assign(gateways, Dataset{});
    gw_responders.assign(gateways, 0);
    summary_collects.resize(gateways);
    for (std::size_t g = 0; g < gateways; ++g) {
      const std::size_t actor = topo->sites + g;
      std::vector<TaskId> child_collects;
      for (std::size_t c = topo->child_begin(g); c < topo->child_end(g); ++c) {
        child_collects.push_back(graph.add(
            {TaskKind::kCollect, actor, "disSS/gw-collect-summary",
             [&, g, c] {
               if (!sent[c]) return;
               const double cutoff = topo->level0_deadline(
                   summary_deadline, opts.round_deadline_s);
               auto frames = receive_frames_by(net.uplink(c), 1, summary_round,
                                               cutoff);
               if (!frames.has_value()) return;
               got[c] = 1;
               gw_responders[g] += 1;
               Coreset local = decode_coreset((*frames)[0]);
               if (local.size() > 0) piece[c] = std::move(local.points);
             },
             {summary_uplinks[c]}}));
      }
      const TaskId forward = graph.add(
          {TaskKind::kUplink, actor, "disSS/gw-forward-summary",
           [&, g, actor] {
             double ready = 0.0;
             for (std::size_t c = topo->child_begin(g);
                  c < topo->child_end(g); ++c) {
               ready = std::max(ready, net.uplink_consumed_at_s(c));
             }
             net.wait_until(actor, ready);
             if (Recorder* rec = net.recorder()) {
               rec->note_gateway_fanin(g, gw_responders[g]);
             }
             std::vector<Dataset> kids;
             for (std::size_t c = topo->child_begin(g);
                  c < topo->child_end(g); ++c) {
               if (piece[c].size() > 0) kids.push_back(std::move(piece[c]));
             }
             Coreset merged_g;
             merged_g.points = merge_union(std::move(kids));
             net.uplink(actor).send(
                 encode_scalar(static_cast<double>(gw_responders[g])));
             net.uplink(actor).send(
                 encode_coreset(merged_g, opts.significant_bits));
           },
           std::move(child_collects)});
      summary_collects[g] = graph.add(
          {TaskKind::kCollect, kServerActor, "disSS/collect-gateway",
           [&, g] {
             auto frames = receive_frames_by(net.uplink(topo->sites + g), 2,
                                             summary_round);
             if (!frames.has_value()) return;
             summary_responders += static_cast<std::size_t>(
                 std::llround(decode_scalar((*frames)[0])));
             Coreset merged_g = decode_coreset((*frames)[1]);
             if (merged_g.size() > 0) gw_piece[g] = std::move(merged_g.points);
           },
           {forward}});
    }
  }

  // The union task is appended by the barrier below — after the wave's
  // tasks when a wave runs, directly otherwise. Its dependency list
  // always encodes the true dataflow (the summary collects, the
  // barrier itself, and any wave collects), even though most of those
  // tasks are already done at append time: the graph must stay correct
  // for any topological executor, not just the creation-order replay.
  const auto add_union_task = [&](std::vector<TaskId> deps) {
    (void)graph.add({TaskKind::kBarrier, kServerActor, "disSS/union",
                     [&] {
                       // merge_union (cr/merge.hpp) skips empty pieces
                       // and concatenates the rest in order — exactly
                       // the loop this task used to inline, now shared
                       // with the gateways' in-flight reduce. On a tree
                       // the operands are the per-gateway unions, whose
                       // ascending concatenation equals the star union
                       // row for row.
                       merged.points =
                           merge_union(topo == nullptr ? std::move(piece)
                                                       : std::move(gw_piece));
                       EKM_ENSURES_MSG(merged.size() > 0,
                                       "disSS produced an empty coreset");
                     },
                     std::move(deps)});
  };

  // --- step 4b: deadline-aware budget reallocation. A source that was
  // allocated part of the sample budget but fell out of the summary
  // round (deadline, or a spent retry budget) paid for samples that
  // never arrived; renormalizing over responders (PR 3) kept the
  // weights honest but delivered a smaller coreset than the round's
  // budget bought. Here the server re-splits the lost allocation
  // ∝ cost among the still-live responders in a second within-round
  // wave: each receiver extends its sample (continuing its own RNG
  // stream), rebuilds the rescale/top-up over the combined picks —
  // keeping its mass exactly its shard's — and uplinks a replacement
  // coreset under the same round cutoff (Fabric::open_subround). A
  // supplement that misses leaves the first-wave coreset in place, so
  // reallocation can only add resolution, never cost liveness. The
  // wave's tasks are appended to the *running* graph here: they exist
  // only once this barrier knows who missed. ---
  struct WaveState {
    double deadline = kNoDeadline;
    std::vector<std::size_t> extra;
    std::vector<char> sent;
  };
  WaveState wave;
  // The barrier's own id, captured so the tasks its action appends can
  // name it as a dependency (assigned right after the add below; the
  // action only runs once the scheduler pops the task, well after).
  TaskId summary_barrier = 0;
  // Deps of the union task up to the barrier: every summary collect,
  // plus the barrier itself.
  const auto barrier_deps = [&] {
    std::vector<TaskId> deps = summary_collects;
    deps.push_back(summary_barrier);
    return deps;
  };
  summary_barrier = graph.add(
      {TaskKind::kBarrier, kServerActor, "disSS/summary-barrier",
       [&] {
         // Distinct-site floor, checked once per round: the
         // reallocation wave never increments it (a responder that also
         // delivers a supplement is still one site) and never
         // decrements it (a responder whose supplement misses keeps its
         // first-wave coreset).
         enforce_availability_floor(summary_responders, opts.min_responders,
                                    "disSS summary round",
                                    net.rounds_opened());
         if (!realloc_armed) {
           add_union_task(barrier_deps());
           return;
         }
         std::size_t lost_budget = 0;
         for (std::size_t i = 0; i < m; ++i) {
           if (in_round[i] && !got[i]) lost_budget += alloc[i];
         }
         // Wave receivers: responders with data that are still fleet
         // members — a site that delivered its first wave and then left
         // (siteN.leave / churn) keeps its standing coreset, but the
         // lost budget is re-split over sites that can actually extend.
         double recv_cost = 0.0;
         std::size_t receivers = 0;
         for (std::size_t i = 0; i < m; ++i) {
           if (got[i] && !parts[i].empty() && net.is_member(i)) {
             recv_cost += local_cost[i];
             receivers += 1;
           }
         }
         wave.extra.assign(m, 0);
         wave.sent.assign(m, 0);
         std::size_t extra_total = 0;
         if (lost_budget > 0 && receivers > 0) {
           for (std::size_t i = 0; i < m; ++i) {
             if (!got[i] || parts[i].empty() || !net.is_member(i)) continue;
             wave.extra[i] =
                 recv_cost > 0.0
                     ? static_cast<std::size_t>(std::llround(
                           static_cast<double>(lost_budget) * local_cost[i] /
                           recv_cost))
                     : lost_budget / receivers;
             extra_total += wave.extra[i];
           }
         }
         // Open (and count) a wave only when rounding left something to
         // transfer — a wave that moves zero samples would still show
         // up in realloc_waves and contradict the budget-conservation
         // metric.
         if (extra_total == 0) {
           add_union_task(barrier_deps());
           return;
         }
         const TaskId wave_open = graph.add(
             {TaskKind::kBarrier, kServerActor, "disSS/open-wave",
              [&] {
                wave.deadline = net.round_cutoff(
                    net.open_subround(summary_round, summary_deadline));
              },
              {summary_barrier}});
         std::vector<TaskId> wave_broadcasts;
         for (std::size_t i = 0; i < m; ++i) {
           if (wave.extra[i] == 0) continue;
           wave_broadcasts.push_back(graph.add(
               {TaskKind::kBroadcast, kServerActor, "disSS/broadcast-extra",
                [&net, &wave, i] {
                  net.downlink(i).send(
                      encode_scalar(static_cast<double>(wave.extra[i])));
                },
                {wave_open}}));
         }
         std::vector<TaskId> wave_uplinks;
         std::vector<TaskId> wave_collects;
         for (std::size_t i = 0; i < m; ++i) {
           if (!got[i] || parts[i].empty() || wave.extra[i] == 0) continue;
           wave_uplinks.push_back(graph.add(
               {TaskKind::kCompute, i, "disSS/supplement",
                [&, i] {
                  // A receiver that loses the wave broadcast sits the
                  // wave out — its first-wave coreset already stands.
                  auto wave_frame = net.downlink(i).receive_by(kNoRound);
                  if (!wave_frame.has_value()) return;
                  const auto more =
                      static_cast<std::size_t>(decode_scalar(*wave_frame));
                  Coreset supplement;
                  {
                    auto scope = device_work.measure();
                    SiteSample& st = samples[i];
                    const std::size_t n = parts[i].size();
                    const std::size_t new_target =
                        std::min(st.target_rows + more, n);
                    draw_picks(st, parts[i], new_target - st.picks.size());
                    st.target_rows = new_target;
                    supplement.points =
                        coreset_from_picks(parts[i], local_centers[i], st,
                                           total_cost, opts.total_samples);
                  }
                  const int wire_s = pick_significant_bits(
                      supplement, opts, net, i, wave.deadline);
                  if (Recorder* rec = net.recorder()) {
                    rec->note_quant_width(i, wire_s, opts.significant_bits);
                  }
                  if (wire_s < opts.significant_bits) {
                    auto scope = device_work.measure();
                    supplement.points =
                        RoundingQuantizer(wire_s).quantize(supplement.points);
                  }
                  net.uplink(i).send(encode_coreset(supplement, wire_s));
                  wave.sent[i] = 1;
                },
                wave_broadcasts}));
         }
         for (std::size_t i = 0; i < m; ++i) {
           if (!got[i] || parts[i].empty() || wave.extra[i] == 0) continue;
           wave_collects.push_back(graph.add(
               {TaskKind::kCollect, kServerActor, "disSS/collect-supplement",
                [&, i] {
                  if (!wave.sent[i]) return;
                  auto frames =
                      receive_frames_by(net.uplink(i), 1, summary_round,
                                        wave.deadline);
                  if (!frames.has_value()) return;  // first-wave coreset stands
                  Coreset supplement = decode_coreset((*frames)[0]);
                  if (supplement.size() > 0) {
                    piece[i] = std::move(supplement.points);
                  }
                },
                wave_uplinks}));
         }
         add_union_task(std::move(wave_collects));
       },
       summary_collects});

  PhaseScheduler(net).run(graph);
  return merged;
}

std::size_t disss_sample_size(std::size_t k, double epsilon, double delta,
                              std::size_t m, std::size_t n) {
  EKM_EXPECTS(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
  const double kd = static_cast<double>(k);
  const double md = static_cast<double>(m);
  const double e2 = epsilon * epsilon;
  // ε⁻⁴(k²/ε² + log 1/δ) + mk log(mk/δ), scaled to laptop constants.
  const double raw = (kd * kd / e2 + std::log(1.0 / delta)) / (e2 * e2) * 0.02 +
                     md * kd * std::log(md * kd / delta);
  return static_cast<std::size_t>(
      std::clamp(raw, 2.0 * md * kd, static_cast<double>(n)));
}

}  // namespace ekm
