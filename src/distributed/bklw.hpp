// BKLW — the distributed FSS of [Balcan–Kanchanapally–Liang–Woodruff,
// NIPS'14, Algorithm 1]; §5.1 of the paper.
//
// BKLW = disPCA (merge an approximate global principal subspace) followed
// by disSS on the projected data {A_i V^(t2) (V^(t2))^T}. The coreset
// points live in the merged t2-dimensional subspace that both the server
// and the sources know after disPCA, so the sources uplink subspace
// coordinates; the dominant communication cost is disPCA's m·t1·d
// scalars (Theorem 5.3: O(mkd/ε²)).
#pragma once

#include <cstdint>
#include <span>

#include "common/timer.hpp"
#include "cr/coreset.hpp"
#include "data/dataset.hpp"
#include "net/channel.hpp"
#include "qt/policy.hpp"

namespace ekm {

struct BklwOptions {
  std::size_t k = 2;
  double epsilon = 0.3;  ///< drives t1 = t2 (Theorem 5.1) and the budget
  double delta = 0.1;
  std::size_t intrinsic_dim = 0;   ///< 0 => k + ceil(4k/ε²) - 1
  std::size_t total_samples = 0;   ///< 0 => disss_sample_size(...)
  int significant_bits = 52;       ///< QT billing for coreset points
  /// Forwarded to DisSsOptions::quant: per-frame quantization policy
  /// (qt/policy.hpp) for the coreset uplinks under a finite deadline.
  QuantPolicy quant = QuantPolicy::kFixed;

  /// Per-collection-round deadline, forwarded to disPCA and disSS (each
  /// of the three rounds gets the same budget). A source dropped from
  /// the disPCA round may still rejoin disSS: the merged basis is
  /// broadcast to every site. Infinity = wait for everyone.
  double round_deadline_s = kNoDeadline;
  /// Minimum sources that must make each round; fewer throws.
  std::size_t min_responders = 1;
  /// Forwarded to DisSsOptions::reallocate: re-split a summary-round
  /// dropout's sample allocation among the responders inside the same
  /// round (disSS step 4b) instead of shrinking the coreset.
  bool reallocate = true;
  /// Forwarded to DisSsOptions::realloc_reserve (0 = no first-wave
  /// sub-deadline; finite-deadline rounds then skip the wave).
  double realloc_reserve = 0.0;
  /// Forwarded to DisSsOptions::pipeline: cross-round task-graph edges
  /// (disSS's summary round opens on the cost round's committed
  /// barrier instead of its broadcasts).
  bool pipeline = false;
};

/// Runs the BKLW coreset construction over `parts` through `net`. The
/// result has `basis` set to the merged principal basis (t2 x d) and
/// Δ = 0, matching the paper's output (S, 0, w) — the Theorem 5.1 offset
/// exists but is an unknown constant that cancels in the argmin.
/// Source-side work accumulates into `device_work`.
[[nodiscard]] Coreset bklw_coreset(std::span<const Dataset> parts,
                                   const BklwOptions& opts, Fabric& net,
                                   Stopwatch& device_work, std::uint64_t seed);

}  // namespace ekm
