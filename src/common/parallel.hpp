// Persistent thread pool with deterministic work decomposition.
//
// Every hot loop in the library (assignment kernel, Lloyd update
// accumulation, seeding d² refreshes, sensitivity scoring) parallelizes
// through this header. Two rules make the results bitwise-independent of
// the worker count:
//
//   1. Work is split into a FIXED chunk grid that depends only on (n,
//      grain) — never on how many threads happen to exist. Any thread may
//      execute any chunk, but each chunk always covers the same index
//      range.
//   2. Reductions accumulate into per-chunk slots and are folded in chunk
//      order by the caller, so floating-point association is fixed.
//
// The pool size comes from the EKM_THREADS environment variable (read
// once, at first use), defaulting to std::thread::hardware_concurrency();
// set_parallel_threads() overrides it at runtime (tests sweep 1 vs 8 and
// assert identical output). Nested parallel_for calls from inside a pool
// worker degrade to serial execution of the inner loop.
#pragma once

#include <cstddef>
#include <functional>

namespace ekm {

/// Threads the pool currently uses, including the calling thread (>= 1).
[[nodiscard]] std::size_t parallel_threads();

/// Overrides the pool size. 0 restores the default (EKM_THREADS env, else
/// hardware_concurrency). Joins and respawns workers; waits for any
/// in-flight parallel_for to finish first.
void set_parallel_threads(std::size_t n);

/// Number of chunks the deterministic grid splits [0, n) into: ceil(n /
/// grain), with grain clamped to >= 1. Depends only on the arguments.
[[nodiscard]] std::size_t parallel_chunk_count(std::size_t n,
                                               std::size_t grain);

/// Runs body(chunk, begin, end) for every chunk of the grid over [0, n).
/// Chunks run concurrently in unspecified order; body must only write
/// chunk-private or per-index state. Runs inline when the pool has one
/// thread, n fits a single chunk, or the caller is itself a pool worker.
/// Safe to call from multiple user threads — whole jobs serialize on an
/// internal mutex (the pool runs one job at a time).
void parallel_for_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Range-only convenience: body(begin, end) per chunk.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace ekm
