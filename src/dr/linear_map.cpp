#include "dr/linear_map.hpp"

namespace ekm {

Dataset LinearMap::apply(const Dataset& data) const {
  Matrix projected = apply(data.points());
  if (data.is_weighted()) {
    return Dataset(std::move(projected), *data.weights());
  }
  return Dataset(std::move(projected));
}

Matrix LinearMap::lift(const Matrix& points) const {
  EKM_EXPECTS_MSG(points.cols() == pi_.cols(), "lift dimension mismatch");
  if (pinv_.empty()) pinv_ = pseudoinverse(pi_);
  return matmul(points, pinv_);
}

LinearMap compose(const LinearMap& first, const LinearMap& second) {
  EKM_EXPECTS_MSG(first.projection().cols() == second.projection().rows(),
                  "compose dimension mismatch");
  return LinearMap(matmul(first.projection(), second.projection()));
}

}  // namespace ekm
