// Streaming coreset maintenance via merge-and-reduce
// [Har-Peled–Mazumdar STOC'04; Braverman–Feldman–Lang '16 — refs [19],
// [25] of the paper].
//
// Edge devices usually *collect* data over time rather than hold it all
// at once. The merge-and-reduce tree keeps one coreset per power-of-two
// bucket of the stream: incoming points fill a leaf buffer; full buffers
// are compressed by sensitivity sampling; equal-level coresets are merged
// (weighted union) and re-compressed, carrying the level up like binary
// addition. At any moment the union of the O(log n) live levels is a
// coreset of everything seen, with ε degrading by a factor logarithmic in
// the stream length — the classic trade documented in the paper's related
// work. finalize() therefore lets a device answer "summarize everything
// so far" at any time with memory O(|S| log n) instead of O(n).
#pragma once

#include <optional>
#include <vector>

#include "cr/sensitivity.hpp"
#include "net/channel.hpp"

namespace ekm {

struct StreamingCoresetOptions {
  std::size_t k = 2;
  std::size_t leaf_size = 512;     ///< raw points per leaf buffer
  std::size_t coreset_size = 128;  ///< |S| per compressed bucket
  std::uint64_t seed = 42;
  bool include_bicriteria_centers = true;
};

class StreamingCoreset {
 public:
  explicit StreamingCoreset(const StreamingCoresetOptions& opts);

  /// Feeds one point (unweighted). O(1) amortized plus the periodic
  /// compressions.
  void insert(std::span<const double> point);

  /// Feeds a batch (weights honoured).
  void insert(const Dataset& batch);

  /// Weighted union of all live levels plus the partial leaf, compressed
  /// once more to `coreset_size` if it exceeds it. Does not disturb the
  /// stream state — more points may follow.
  [[nodiscard]] Coreset finalize() const;

  [[nodiscard]] std::size_t points_seen() const { return points_seen_; }

  /// Number of live merge levels (for tests: should stay O(log n)).
  [[nodiscard]] std::size_t live_levels() const;

  /// Current resident memory in points (leaf + live levels).
  [[nodiscard]] std::size_t resident_points() const;

 private:
  void flush_leaf();
  void carry(Coreset coreset, std::size_t level);
  [[nodiscard]] Coreset compress(const Dataset& points, std::uint64_t stream) const;

  StreamingCoresetOptions opts_;
  std::vector<std::vector<double>> leaf_;  // raw buffered points
  std::vector<double> leaf_weights_;
  std::size_t dim_ = 0;
  std::vector<std::optional<Coreset>> levels_;
  std::size_t points_seen_ = 0;
  std::uint64_t compressions_ = 0;
};

/// One deployment round over a network port: folds `batch` into the
/// stream, finalizes, and ships the summary through `up` (point
/// coordinates billed at `significant_bits`, §6). A round on a stream
/// that has still seen nothing ships an empty frame, so the server's
/// per-round receive stays matched even for late-starting sites.
/// Returns the summary that crossed the wire. Works over any Port —
/// the synchronous Channel or a simulated SimLink (src/sim/).
Coreset stream_round_uplink(StreamingCoreset& stream, const Dataset& batch,
                            Port& up, int significant_bits = 52);

}  // namespace ekm
