// Phase-task DAG for the distributed protocols.
//
// A multi-source pipeline round (disPCA, a disSS cost or summary round,
// a refine iteration) is really a small dataflow graph: per-site local
// compute feeding per-site uplink frames, a server-side collect per
// site, one global merge barrier, and a broadcast fan-out. The PR 2–4
// implementations wrote that graph as lock-step loops, which hides the
// dependency structure the simulator needs for phase overlap. A
// TaskGraph makes it explicit: protocol code *builds* the graph (one
// PhaseTask per compute/frame/barrier, edges = data dependencies) and
// the PhaseScheduler (scheduler.hpp) drives it to completion over a
// Fabric.
//
// Two structural rules keep this safe:
//   * dependencies must name already-added tasks, so every graph is
//     acyclic by construction and creation order is a valid topological
//     order;
//   * the builders in src/distributed add tasks in the exact program
//     order of the PR 4 loops, so the scheduler's
//     lowest-ready-id execution (see scheduler.hpp) replays that order
//     verbatim — host-side execution is bitwise identical to the
//     lock-step code, and phase *overlap* is purely a virtual-time
//     commit rule on the fabric (SimNetwork expiry NAKs), never a
//     reordering of protocol actions.
//
// Tasks may be added while the graph is running: a barrier's action can
// append a continuation (disSS uses this for the budget-reallocation
// wave, which only exists once the server knows who missed).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/expects.hpp"

namespace ekm {

using TaskId = std::size_t;

/// Actor index meaning "the server" (site tasks use the source index).
inline constexpr std::size_t kServerActor = static_cast<std::size_t>(-1);

/// What a PhaseTask does, for traces and tests. The scheduler treats
/// every kind identically; the taxonomy documents the protocol shape.
enum class TaskKind {
  kCompute,    ///< site-local computation (SVD, bicriteria, sampling)
  kUplink,     ///< a site transmits its frame(s) to the server
  kCollect,    ///< the server (or a site) receives a peer's frame(s)
  kBarrier,    ///< global synchronization point (round open, merge,
               ///< budget split) — commits only on final inputs
  kBroadcast,  ///< the server pushes a frame down one site's downlink
};

[[nodiscard]] constexpr const char* task_kind_name(TaskKind k) {
  switch (k) {
    case TaskKind::kCompute: return "compute";
    case TaskKind::kUplink: return "uplink";
    case TaskKind::kCollect: return "collect";
    case TaskKind::kBarrier: return "barrier";
    case TaskKind::kBroadcast: return "broadcast";
  }
  return "?";
}

/// One node of the protocol DAG. `action` runs on the protocol thread
/// when every dependency has completed; an empty action is a purely
/// structural node (useful as a named join point).
struct PhaseTask {
  TaskKind kind = TaskKind::kCompute;
  std::size_t actor = kServerActor;  ///< owning actor (site index/server)
  std::string label;                 ///< e.g. "disPCA/local-svd"
  std::function<void()> action;
  std::vector<TaskId> deps;          ///< must all be < this task's id
};

/// Append-only DAG with readiness tracking. Not thread-safe: protocol
/// graphs are built and run on the protocol thread (the simulator's
/// determinism rules require that anyway).
class TaskGraph {
 public:
  /// Adds a task; every dependency must name an existing task (which
  /// makes cycles unrepresentable). Returns the new task's id.
  TaskId add(PhaseTask task) {
    const TaskId id = nodes_.size();
    std::size_t pending = 0;
    for (const TaskId dep : task.deps) {
      EKM_EXPECTS_MSG(dep < id,
                      "task dependency must name an already-added task");
      if (!nodes_[dep].done) {
        nodes_[dep].dependents.push_back(id);
        pending += 1;
      }
    }
    nodes_.push_back(Node{std::move(task), {}, pending, false});
    return id;
  }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  [[nodiscard]] const PhaseTask& task(TaskId id) const {
    EKM_EXPECTS(id < nodes_.size());
    return nodes_[id].task;
  }

  [[nodiscard]] bool done(TaskId id) const {
    EKM_EXPECTS(id < nodes_.size());
    return nodes_[id].done;
  }

  /// A task is ready when it has not run and every dependency has.
  [[nodiscard]] bool ready(TaskId id) const {
    EKM_EXPECTS(id < nodes_.size());
    return !nodes_[id].done && nodes_[id].pending_deps == 0;
  }

  /// All currently ready tasks, ascending id — the scheduler's queue.
  [[nodiscard]] std::vector<TaskId> ready_tasks() const {
    std::vector<TaskId> out;
    for (TaskId id = 0; id < nodes_.size(); ++id) {
      if (ready(id)) out.push_back(id);
    }
    return out;
  }

  /// Marks a ready task done and returns the dependents it unblocked.
  /// (PhaseScheduler calls this after running the action; tests may
  /// drive it directly to check readiness propagation.)
  std::vector<TaskId> complete(TaskId id) {
    EKM_EXPECTS_MSG(ready(id), "completing a task that is not ready");
    nodes_[id].done = true;
    std::vector<TaskId> unblocked;
    for (const TaskId dep : nodes_[id].dependents) {
      EKM_EXPECTS(nodes_[dep].pending_deps > 0);
      nodes_[dep].pending_deps -= 1;
      if (nodes_[dep].pending_deps == 0) unblocked.push_back(dep);
    }
    return unblocked;
  }

  [[nodiscard]] bool all_done() const {
    for (const Node& n : nodes_) {
      if (!n.done) return false;
    }
    return true;
  }

 private:
  struct Node {
    PhaseTask task;
    std::vector<TaskId> dependents;
    std::size_t pending_deps = 0;
    bool done = false;
  };
  std::vector<Node> nodes_;
};

}  // namespace ekm
