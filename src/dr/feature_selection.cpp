#include "dr/feature_selection.hpp"

#include <cmath>
#include <random>

#include "linalg/svd.hpp"

namespace ekm {
namespace {

FeatureSelection build_selection(std::span<const double> probs, std::size_t d,
                                 std::size_t t, Rng& rng) {
  double total = 0.0;
  for (double p : probs) total += p;
  EKM_EXPECTS_MSG(total > 0.0, "degenerate feature probabilities");

  FeatureSelection sel;
  sel.indices.reserve(t);
  sel.scales.reserve(t);
  std::uniform_real_distribution<double> unif(0.0, total);
  for (std::size_t s = 0; s < t; ++s) {
    double r = unif(rng);
    std::size_t pick = d - 1;
    for (std::size_t j = 0; j < d; ++j) {
      r -= probs[j];
      if (r <= 0.0) {
        pick = j;
        break;
      }
    }
    sel.indices.push_back(pick);
    const double p = probs[pick] / total;
    sel.scales.push_back(1.0 / std::sqrt(static_cast<double>(t) * p));
  }

  Matrix pi(d, t);
  for (std::size_t s = 0; s < t; ++s) pi(sel.indices[s], s) = sel.scales[s];
  sel.map = LinearMap(std::move(pi));
  return sel;
}

}  // namespace

FeatureSelection select_features_norm(const Dataset& data, std::size_t t,
                                      Rng& rng) {
  EKM_EXPECTS(!data.empty());
  EKM_EXPECTS(t >= 1);
  const std::size_t d = data.dim();
  std::vector<double> col_norm_sq(d, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto row = data.point(i);
    for (std::size_t j = 0; j < d; ++j) col_norm_sq[j] += row[j] * row[j];
  }
  return build_selection(col_norm_sq, d, t, rng);
}

FeatureSelection select_features_leverage(const Dataset& data, std::size_t t,
                                          std::size_t k, Rng& rng) {
  EKM_EXPECTS(!data.empty());
  EKM_EXPECTS(t >= 1 && k >= 1);
  const std::size_t d = data.dim();
  const Svd svd = truncated_svd(data.points(), k);
  // Leverage score of column j: squared norm of the j-th row of V_k.
  std::vector<double> leverage(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t c = 0; c < svd.rank(); ++c) {
      leverage[j] += svd.v(j, c) * svd.v(j, c);
    }
  }
  return build_selection(leverage, d, t, rng);
}

}  // namespace ekm
