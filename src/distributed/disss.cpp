#include "distributed/disss.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "kmeans/cost.hpp"
#include "net/summary_codec.hpp"
#include "qt/quantizer.hpp"

namespace ekm {

Coreset disss(std::span<const Dataset> parts, const DisSsOptions& opts,
              Fabric& net, Stopwatch& device_work, std::uint64_t seed) {
  EKM_EXPECTS(!parts.empty());
  EKM_EXPECTS(parts.size() == net.num_sources());
  EKM_EXPECTS(opts.total_samples >= parts.size());
  const std::size_t m = parts.size();

  // --- step 1: local bicriteria solutions, uplink local costs. ---
  const double cost_deadline = net.open_round(opts.round_deadline_s);
  std::vector<Matrix> local_centers(m);
  std::vector<double> local_cost(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (parts[i].empty()) {
      net.uplink(i).send(encode_scalar(0.0));
      continue;
    }
    Rng rng = make_rng(seed, 2 * i);
    {
      auto scope = device_work.measure();
      BicriteriaOptions bopts = opts.bicriteria;
      bopts.k = opts.k;
      local_centers[i] = bicriteria_centers(parts[i], bopts, rng);
      local_cost[i] = kmeans_cost(parts[i], local_centers[i]);
    }
    net.uplink(i).send(encode_scalar(local_cost[i]));
  }

  // --- step 2: server allocates the sample budget ∝ cost, over the
  // sources whose cost report made the deadline. Dropped sources are
  // NAK'd (allocation -1) so they stay silent in step 3; total_cost —
  // and with it every sample weight — is renormalized over the
  // responders. ---
  std::vector<char> in_round(m, 0);
  double total_cost = 0.0;
  std::size_t cost_responders = 0;
  for (std::size_t i = 0; i < m; ++i) {
    auto frame = net.uplink(i).receive_by(cost_deadline);
    if (!frame.has_value()) continue;
    in_round[i] = 1;
    cost_responders += 1;
    total_cost += decode_scalar(*frame);
  }
  EKM_ENSURES_MSG(cost_responders >= opts.min_responders,
                  "disSS cost round fell below the availability floor");
  std::vector<std::size_t> alloc(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    if (!in_round[i]) {
      net.downlink(i).send(encode_scalar(-1.0));
      continue;
    }
    alloc[i] = total_cost > 0.0
                   ? static_cast<std::size_t>(std::llround(
                         static_cast<double>(opts.total_samples) *
                         local_cost[i] / total_cost))
                   : opts.total_samples / cost_responders;
    net.downlink(i).send(encode_scalar(static_cast<double>(alloc[i])));
  }

  // --- step 3: sources sample ∝ cost({p}, X_i), uplink S_i ∪ X_i. ---
  const double summary_deadline = net.open_round(opts.round_deadline_s);
  std::vector<char> sent(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    if (parts[i].empty()) {
      // Consume the allocation frame even though its value is moot —
      // leaving it queued would alias the next downlink read on this
      // link (e.g. a refine round's pushed centers).
      (void)net.downlink(i).receive_by(kNoDeadline);
      net.uplink(i).send(encode_coreset(Coreset{}, opts.significant_bits));
      sent[i] = 1;
      continue;
    }
    // A NAK'd source — or one whose allocation frame expired on the
    // downlink — sits this round out and transmits nothing.
    auto alloc_frame = net.downlink(i).receive_by(kNoDeadline);
    const double si_signed =
        alloc_frame.has_value() ? decode_scalar(*alloc_frame) : -1.0;
    if (si_signed < 0.0) continue;
    const auto si = static_cast<std::size_t>(si_signed);
    Coreset local;
    {
      auto scope = device_work.measure();
      Rng rng = make_rng(seed, 2 * i + 1);
      const Dataset& p = parts[i];
      const std::size_t n = p.size();
      const Matrix& xi = local_centers[i];
      const std::size_t b = xi.rows();

      std::vector<std::size_t> assign(n);
      std::vector<double> contrib(n);
      std::vector<double> cluster_weight(b, 0.0);
      double cost_i = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const NearestCenter nc = nearest_center(p.point(j), xi);
        assign[j] = nc.index;
        contrib[j] = p.weight(j) * nc.sq_dist;
        cost_i += contrib[j];
        cluster_weight[nc.index] += p.weight(j);
      }

      const std::size_t rows = std::min(si, n);
      Matrix pts(rows + b, p.dim());
      std::vector<double> weights(rows + b, 0.0);
      std::vector<double> sampled_mass(b, 0.0);
      std::vector<std::size_t> assign_of_pick(rows, 0);
      if (rows > 0 && cost_i > 0.0) {
        std::uniform_real_distribution<double> unif(0.0, cost_i);
        for (std::size_t s = 0; s < rows; ++s) {
          double r = unif(rng);
          std::size_t pick = n - 1;
          for (std::size_t j = 0; j < n; ++j) {
            r -= contrib[j];
            if (r <= 0.0) {
              pick = j;
              break;
            }
          }
          auto src = p.point(pick);
          std::copy(src.begin(), src.end(), pts.row(s).begin());
          // Reweighting of [4]: across sources the union is a
          // cost-proportional sample of size `total_samples`, so the
          // unbiased weight is w(p) · total_cost / (total_samples ·
          // contrib(p)) with contrib(p) = w(p) d²(p, X_i).
          weights[s] = p.weight(pick) * total_cost /
                       (static_cast<double>(opts.total_samples) * contrib[pick]);
          assign_of_pick[s] = assign[pick];
          sampled_mass[assign[pick]] += weights[s];
        }
      }
      // Step 3's "weights set to match the number of points per cluster":
      // rescale overshooting clusters, then top residual mass up via the
      // bicriteria centers, keeping the total weight exact.
      for (std::size_t c = 0; c < b; ++c) {
        if (sampled_mass[c] > cluster_weight[c] && sampled_mass[c] > 0.0) {
          const double scale = cluster_weight[c] / sampled_mass[c];
          for (std::size_t s = 0; s < rows; ++s) {
            if (assign_of_pick[s] == c) weights[s] *= scale;
          }
          sampled_mass[c] = cluster_weight[c];
        }
      }
      for (std::size_t c = 0; c < b; ++c) {
        auto src = xi.row(c);
        std::copy(src.begin(), src.end(), pts.row(rows + c).begin());
        weights[rows + c] = std::max(0.0, cluster_weight[c] - sampled_mass[c]);
      }
      local.points = Dataset(std::move(pts), std::move(weights));
    }
    net.uplink(i).send(encode_coreset(local, opts.significant_bits));
    sent[i] = 1;
  }

  // --- step 4: server unions the local coresets that made the
  // deadline. Each local coreset's weights sum to exactly its own
  // shard's mass (the per-cluster top-up in step 3 guarantees it), so
  // a dropped source costs only its mass — the union stays a valid
  // weighted summary of the responders' data. ---
  Coreset merged;
  std::vector<Dataset> pieces;
  std::size_t summary_responders = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (!sent[i]) continue;
    auto frame = net.uplink(i).receive_by(summary_deadline);
    if (!frame.has_value()) continue;
    summary_responders += 1;
    Coreset local = decode_coreset(*frame);
    if (local.size() > 0) pieces.push_back(std::move(local.points));
  }
  EKM_ENSURES_MSG(summary_responders >= opts.min_responders,
                  "disSS summary round fell below the availability floor");
  EKM_ENSURES_MSG(!pieces.empty(), "disSS produced an empty coreset");
  merged.points = concatenate(pieces);
  return merged;
}

std::size_t disss_sample_size(std::size_t k, double epsilon, double delta,
                              std::size_t m, std::size_t n) {
  EKM_EXPECTS(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
  const double kd = static_cast<double>(k);
  const double md = static_cast<double>(m);
  const double e2 = epsilon * epsilon;
  // ε⁻⁴(k²/ε² + log 1/δ) + mk log(mk/δ), scaled to laptop constants.
  const double raw = (kd * kd / e2 + std::log(1.0 / delta)) / (e2 * e2) * 0.02 +
                     md * kd * std::log(md * kd / delta);
  return static_cast<std::size_t>(
      std::clamp(raw, 2.0 * md * kd, static_cast<double>(n)));
}

}  // namespace ekm
