// Linear dimensionality-reduction maps π : R^d → R^d'.
//
// A map is represented by its matrix Π ∈ R^{d x d'} acting on row vectors
// (π(p) = p Π, π(P) = A_P Π — §3.1 of the paper). The inverse used to
// lift k-means centers back to the original space (line 7 of Algorithms
// 1–2) is the Moore–Penrose pseudoinverse Π⁺, which the paper notes is a
// valid choice among the non-unique inverses.
#pragma once

#include "data/dataset.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace ekm {

class LinearMap {
 public:
  LinearMap() = default;
  explicit LinearMap(Matrix projection) : pi_(std::move(projection)) {}

  [[nodiscard]] std::size_t input_dim() const { return pi_.rows(); }
  [[nodiscard]] std::size_t output_dim() const { return pi_.cols(); }

  /// π(M) = M Π for a matrix of row-points.
  [[nodiscard]] Matrix apply(const Matrix& points) const {
    EKM_EXPECTS_MSG(points.cols() == pi_.rows(), "LinearMap dimension mismatch");
    return matmul(points, pi_);
  }

  /// π(P): projects every point; weights are preserved.
  [[nodiscard]] Dataset apply(const Dataset& data) const;

  /// π⁻¹(M) = M Π⁺ (Moore–Penrose). Lazily computes and caches Π⁺.
  [[nodiscard]] Matrix lift(const Matrix& points) const;

  [[nodiscard]] const Matrix& projection() const { return pi_; }

 private:
  Matrix pi_;
  mutable Matrix pinv_;  // cached Π⁺ (empty until first lift)
};

/// Composition (π2 ∘ π1): first π1, then π2 — as in Algorithm 3's
/// (π1^(2) ∘ π1^(1))⁻¹ lift-back.
[[nodiscard]] LinearMap compose(const LinearMap& first, const LinearMap& second);

}  // namespace ekm
