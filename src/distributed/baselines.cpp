#include "distributed/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "common/sampling.hpp"
#include "kmeans/cost.hpp"
#include "net/summary_codec.hpp"

namespace ekm {
namespace {

double global_cost(std::span<const Dataset> parts, const Matrix& centers) {
  double cost = 0.0;
  for (const Dataset& p : parts) {
    if (!p.empty()) cost += kmeans_cost(p, centers);
  }
  return cost;
}

// Per-source sufficient statistics for one Lloyd round: k x (d + 2)
// rows of [weighted coordinate sums | weighted count | weighted cost].
Matrix local_stats(const Dataset& part, const Matrix& centers) {
  const std::size_t k = centers.rows();
  const std::size_t d = centers.cols();
  Matrix stats(k, d + 2);
  for (std::size_t i = 0; i < part.size(); ++i) {
    const double w = part.weight(i);
    if (w == 0.0) continue;
    const NearestCenter nc = nearest_center(part.point(i), centers);
    auto row = stats.row(nc.index);
    auto p = part.point(i);
    for (std::size_t j = 0; j < d; ++j) row[j] += w * p[j];
    row[d] += w;
    row[d + 1] += w * nc.sq_dist;
  }
  return stats;
}

}  // namespace

DistributedBaselineResult distributed_lloyd(std::span<const Dataset> parts,
                                            const DistributedLloydOptions& opts,
                                            Fabric& net,
                                            Stopwatch& device_work) {
  EKM_EXPECTS(!parts.empty());
  EKM_EXPECTS(parts.size() == net.num_sources());
  EKM_EXPECTS(opts.k >= 1 && opts.max_rounds >= 1);
  std::size_t d = 0;
  for (const Dataset& p : parts) {
    if (!p.empty()) d = p.dim();
  }
  EKM_EXPECTS_MSG(d > 0, "all sources empty");
  const std::size_t k = opts.k;

  // Seeding round: every source uplinks k weight-proportional local
  // samples; the server keeps k of them at random. Like every
  // collection round here, it is deadline-bounded: late candidates are
  // simply not in the draw.
  const RoundId seed_round = net.open_round(opts.round_deadline_s);
  Matrix candidates;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    Matrix local(0, d);
    if (!parts[i].empty()) {
      auto scope = device_work.measure();
      Rng rng = make_rng(opts.seed, 0xfeedULL + i);
      std::vector<double> w(parts[i].size());
      for (std::size_t p = 0; p < parts[i].size(); ++p) w[p] = parts[i].weight(p);
      const AliasTable table(w);
      local = Matrix(std::min<std::size_t>(k, parts[i].size()), d);
      for (std::size_t c = 0; c < local.rows(); ++c) {
        auto src = parts[i].point(table.sample(rng));
        std::copy(src.begin(), src.end(), local.row(c).begin());
      }
    }
    net.uplink(i).send(encode_matrix(local));
  }
  std::size_t seed_responders = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    auto frame = net.uplink(i).receive_by(seed_round);
    if (!frame.has_value()) continue;
    seed_responders += 1;
    const Matrix local = decode_matrix(*frame);
    if (local.rows() > 0) candidates.append_rows(local);
  }
  enforce_availability_floor(seed_responders, opts.min_responders,
                             "seeding round", net.rounds_opened());
  EKM_ENSURES(candidates.rows() >= 1);
  Rng server_rng = make_rng(opts.seed, 0x5eedULL);
  Matrix centers(std::min<std::size_t>(k, candidates.rows()), d);
  {
    std::vector<std::size_t> order(candidates.rows());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), server_rng);
    for (std::size_t c = 0; c < centers.rows(); ++c) {
      auto src = candidates.row(order[c]);
      std::copy(src.begin(), src.end(), centers.row(c).begin());
    }
  }

  // Synchronous rounds.
  DistributedBaselineResult result;
  double prev_cost = std::numeric_limits<double>::infinity();
  for (int round = 0; round < opts.max_rounds; ++round) {
    result.rounds = round + 1;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      net.downlink(i).send(encode_matrix(centers));
    }
    const RoundId rid = net.open_round(opts.round_deadline_s);
    Matrix sums(k, d);
    std::vector<double> mass(k, 0.0);
    double round_cost = 0.0;
    std::vector<char> sent(parts.size(), 0);
    for (std::size_t i = 0; i < parts.size(); ++i) {
      Matrix stats(k, d + 2);
      {
        auto scope = device_work.measure();
        auto pushed_frame = net.downlink(i).receive_by(kNoRound);
        if (!pushed_frame.has_value()) continue;  // lost the broadcast
        const Matrix pushed = decode_matrix(*pushed_frame);
        if (!parts[i].empty()) stats = local_stats(parts[i], pushed);
      }
      net.uplink(i).send(encode_matrix(stats));
      sent[i] = 1;
    }
    // Partial aggregation: the update runs over whichever sources made
    // the deadline; their masses renormalize the centroids, and the
    // convergence check sees the responders' cost.
    std::size_t responders = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (!sent[i]) continue;
      auto frame = net.uplink(i).receive_by(rid);
      if (!frame.has_value()) continue;
      responders += 1;
      const Matrix stats = decode_matrix(*frame);
      for (std::size_t c = 0; c < k && c < stats.rows(); ++c) {
        auto row = stats.row(c);
        auto dst = sums.row(c);
        for (std::size_t j = 0; j < d; ++j) dst[j] += row[j];
        mass[c] += row[d];
        round_cost += row[d + 1];
      }
    }
    enforce_availability_floor(responders, opts.min_responders, "Lloyd round",
                               net.rounds_opened());
    for (std::size_t c = 0; c < centers.rows(); ++c) {
      if (mass[c] > 0.0) {
        auto row = centers.row(c);
        auto s = sums.row(c);
        for (std::size_t j = 0; j < d; ++j) row[j] = s[j] / mass[c];
      }
    }
    if (std::isfinite(prev_cost) &&
        prev_cost - round_cost <= opts.rel_tol * std::max(prev_cost, 1e-300)) {
      break;
    }
    prev_cost = round_cost;
  }

  result.centers = std::move(centers);
  result.cost = global_cost(parts, result.centers);
  return result;
}

DistributedBaselineResult mapreduce_kmeans(std::span<const Dataset> parts,
                                           const MapReduceOptions& opts,
                                           Fabric& net,
                                           Stopwatch& device_work) {
  EKM_EXPECTS(!parts.empty());
  EKM_EXPECTS(parts.size() == net.num_sources());
  std::size_t d = 0;
  for (const Dataset& p : parts) {
    if (!p.empty()) d = p.dim();
  }
  EKM_EXPECTS_MSG(d > 0, "all sources empty");

  // Map: local k-means; uplink k centers + k cluster masses.
  const RoundId round = net.open_round(opts.round_deadline_s);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    Matrix payload(0, d + 1);
    if (!parts[i].empty()) {
      auto scope = device_work.measure();
      KMeansOptions kopts;
      kopts.k = opts.k;
      kopts.restarts = opts.local_restarts;
      kopts.seed = derive_seed(opts.seed, i);
      const KMeansResult local = kmeans(parts[i], kopts);
      std::vector<double> mass(local.centers.rows(), 0.0);
      for (std::size_t p = 0; p < parts[i].size(); ++p) {
        mass[local.assignment[p]] += parts[i].weight(p);
      }
      payload = Matrix(local.centers.rows(), d + 1);
      for (std::size_t c = 0; c < local.centers.rows(); ++c) {
        auto src = local.centers.row(c);
        auto dst = payload.row(c);
        std::copy(src.begin(), src.end(), dst.begin());
        dst[d] = mass[c];
      }
    }
    net.uplink(i).send(encode_matrix(payload));
  }

  // Reduce: weighted k-means over the candidates that made the
  // deadline — a late local solution is simply absent from the merge.
  Matrix all_centers;
  std::vector<double> all_mass;
  std::size_t responders = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    auto frame = net.uplink(i).receive_by(round);
    if (!frame.has_value()) continue;
    responders += 1;
    const Matrix payload = decode_matrix(*frame);
    for (std::size_t c = 0; c < payload.rows(); ++c) {
      Matrix row(1, d);
      std::copy_n(payload.row(c).begin(), d, row.row(0).begin());
      all_centers.append_rows(row);
      all_mass.push_back(payload(c, d));
    }
  }
  enforce_availability_floor(responders, opts.min_responders, "map round",
                             net.rounds_opened());
  EKM_ENSURES(all_centers.rows() >= 1);
  KMeansOptions reduce;
  reduce.k = opts.k;
  reduce.restarts = 5;
  reduce.seed = derive_seed(opts.seed, 0xedceULL);
  const KMeansResult merged =
      kmeans(Dataset(std::move(all_centers), std::move(all_mass)), reduce);

  DistributedBaselineResult result;
  result.centers = merged.centers;
  result.cost = global_cost(parts, result.centers);
  result.rounds = 1;
  return result;
}

DistributedBaselineResult gossip_kmeans(std::span<const Dataset> parts,
                                        const GossipOptions& opts, Fabric& net,
                                        Stopwatch& device_work) {
  EKM_EXPECTS(!parts.empty());
  EKM_EXPECTS(parts.size() == net.num_sources());
  EKM_EXPECTS(opts.rounds >= 1 && opts.degree >= 1);
  const std::size_t m = parts.size();
  std::size_t d = 0;
  for (const Dataset& p : parts) {
    if (!p.empty()) d = p.dim();
  }
  EKM_EXPECTS_MSG(d > 0, "all sources empty");

  // Local initial solves.
  std::vector<Matrix> local_centers(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (parts[i].empty()) continue;
    auto scope = device_work.measure();
    KMeansOptions kopts;
    kopts.k = opts.k;
    kopts.restarts = 1;
    kopts.max_iters = 10;
    kopts.seed = derive_seed(opts.seed, i);
    local_centers[i] = kmeans(parts[i], kopts).centers;
  }

  Rng rng = make_rng(opts.seed, 0x905ULL);
  std::uniform_int_distribution<std::size_t> pick(0, m - 1);
  for (int round = 0; round < opts.rounds; ++round) {
    for (std::size_t i = 0; i < m; ++i) {
      if (local_centers[i].empty()) continue;
      for (std::size_t e = 0; e < opts.degree; ++e) {
        std::size_t j = pick(rng);
        if (j == i || local_centers[j].empty()) continue;
        // Peer exchange: both endpoints transmit their centers (billed
        // on each sender's uplink ledger — P2P traffic is still radio).
        // If either frame expires in flight, the whole exchange is
        // skipped — gossip tolerates lost rounds by construction.
        net.uplink(i).send(encode_matrix(local_centers[i]));
        net.uplink(j).send(encode_matrix(local_centers[j]));
        auto mine_frame = net.uplink(i).receive_by(kNoRound);
        auto theirs_frame = net.uplink(j).receive_by(kNoRound);
        if (!mine_frame.has_value() || !theirs_frame.has_value()) continue;
        const Matrix mine = decode_matrix(*mine_frame);
        const Matrix theirs = decode_matrix(*theirs_frame);
        auto scope = device_work.measure();
        // Greedy matching: average each of my centers with its nearest
        // peer center.
        Matrix averaged = mine;
        for (std::size_t c = 0; c < averaged.rows(); ++c) {
          const NearestCenter nc = nearest_center(mine.row(c), theirs);
          auto row = averaged.row(c);
          auto peer = theirs.row(nc.index);
          for (std::size_t x = 0; x < d; ++x) row[x] = 0.5 * (row[x] + peer[x]);
        }
        local_centers[i] = averaged;
        local_centers[j] = std::move(averaged);
      }
      // Local improvement step.
      if (!parts[i].empty()) {
        auto scope = device_work.measure();
        KMeansOptions kopts;
        kopts.k = opts.k;
        kopts.max_iters = 2;
        kopts.restarts = 1;
        kopts.seed = derive_seed(opts.seed, 0xaaULL + i);
        local_centers[i] = lloyd(parts[i], local_centers[i], kopts).centers;
      }
    }
  }

  // Pick the consensus estimate with the best local cost, score globally.
  DistributedBaselineResult result;
  double best_local = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m; ++i) {
    if (parts[i].empty() || local_centers[i].empty()) continue;
    const double c = kmeans_cost(parts[i], local_centers[i]);
    if (c < best_local) {
      best_local = c;
      result.centers = local_centers[i];
    }
  }
  EKM_ENSURES(result.centers.rows() >= 1);
  result.cost = global_cost(parts, result.centers);
  result.rounds = opts.rounds;
  return result;
}

}  // namespace ekm
