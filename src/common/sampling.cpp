#include "common/sampling.hpp"

#include <algorithm>
#include <limits>
#include <random>

namespace ekm {

AliasTable::AliasTable(std::span<const double> weights) {
  EKM_EXPECTS(!weights.empty());
  const std::size_t n = weights.size();
  for (double w : weights) EKM_EXPECTS_MSG(w >= 0.0, "negative weight");
  for (double w : weights) total_ += w;
  EKM_EXPECTS_MSG(total_ > 0.0, "all weights are zero");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; partition into under/over-full buckets.
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total_;
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are exactly full (modulo rounding).
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;
}

std::size_t AliasTable::sample(Rng& rng) const {
  std::uniform_int_distribution<std::size_t> bucket(0, prob_.size() - 1);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  const std::size_t b = bucket(rng);
  return unif(rng) < prob_[b] ? b : alias_[b];
}

std::vector<std::size_t> sample_indices(std::span<const double> weights,
                                        std::size_t count, Rng& rng) {
  const AliasTable table(weights);
  std::vector<std::size_t> out(count);
  for (std::size_t& idx : out) idx = table.sample(rng);
  return out;
}

std::size_t sample_from_prefix(std::span<const double> cum, Rng& rng) {
  EKM_EXPECTS(!cum.empty() && cum.back() > 0.0);
  std::uniform_real_distribution<double> unif(0.0, cum.back());
  // The distribution includes its lower bound: clamp r above 0 so a draw
  // of exactly 0.0 cannot land on a leading zero-weight prefix run.
  const double r =
      std::max(unif(rng), std::numeric_limits<double>::denorm_min());
  const auto it = std::lower_bound(cum.begin(), cum.end(), r);
  const auto i = static_cast<std::size_t>(it - cum.begin());
  return std::min(i, cum.size() - 1);
}

}  // namespace ekm
