#include "kmeans/elkan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.hpp"
#include "kmeans/assign.hpp"

namespace ekm {
namespace {

double distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

}  // namespace

KMeansResult elkan(const Dataset& data, Matrix initial_centers,
                   const KMeansOptions& opts, std::uint64_t* distance_evals) {
  EKM_EXPECTS(!data.empty());
  EKM_EXPECTS(initial_centers.rows() >= 1);
  EKM_EXPECTS(initial_centers.cols() == data.dim());
  const std::size_t n = data.size();
  const std::size_t k = initial_centers.rows();
  const std::size_t d = data.dim();
  std::uint64_t evals = 0;

  KMeansResult res;
  res.centers = std::move(initial_centers);
  res.assignment.assign(n, 0);

  // Bounds: upper[i] >= d(x_i, c_{a(i)}); lower[i][c] <= d(x_i, c).
  std::vector<double> upper(n);
  Matrix lower(n, k);

  // Initial exact assignment, parallel over points. The bounds must
  // satisfy lower(i,c) <= d(i,c) <= upper[i] exactly, so this uses the
  // cancellation-safe subtract form — the batched norm-identity kernel's
  // O(eps·‖p‖‖c‖) error could overestimate a lower bound and make the
  // pruning drop the true nearest center.
  parallel_for(n, 512, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      double* row = lower.row_ptr(i);
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        row[c] = distance(data.point(i), res.centers.row(c));
        if (row[c] < best) {
          best = row[c];
          best_c = c;
        }
      }
      res.assignment[i] = best_c;
      upper[i] = best;
    }
  });
  evals += static_cast<std::uint64_t>(n) * k;

  Matrix half_cc(k, k);           // 0.5 * d(c, c')
  std::vector<double> s(k);       // 0.5 * min_{c' != c} d(c, c')
  Matrix sums(k, d);
  std::vector<double> mass(k);
  std::vector<double> shift(k);
  Matrix new_centers(k, d);

  double prev_cost = std::numeric_limits<double>::infinity();
  for (int it = 0; it < opts.max_iters; ++it) {
    // Inter-center distances.
    for (std::size_t c = 0; c < k; ++c) {
      s[c] = std::numeric_limits<double>::infinity();
      for (std::size_t c2 = 0; c2 < k; ++c2) {
        if (c2 == c) continue;
        const double dist =
            0.5 * distance(res.centers.row(c), res.centers.row(c2));
        half_cc(c, c2) = dist;
        s[c] = std::min(s[c], dist);
      }
    }

    // Assignment with pruning.
    for (std::size_t i = 0; i < n; ++i) {
      if (upper[i] <= s[res.assignment[i]]) continue;  // whole point pruned
      bool tight = false;  // is upper[i] the exact distance?
      for (std::size_t c = 0; c < k; ++c) {
        if (c == res.assignment[i]) continue;
        if (upper[i] <= lower(i, c)) continue;
        if (upper[i] <= half_cc(res.assignment[i], c)) continue;
        if (!tight) {
          upper[i] = distance(data.point(i), res.centers.row(res.assignment[i]));
          ++evals;
          lower(i, res.assignment[i]) = upper[i];
          tight = true;
          if (upper[i] <= lower(i, c) ||
              upper[i] <= half_cc(res.assignment[i], c)) {
            continue;
          }
        }
        const double dist = distance(data.point(i), res.centers.row(c));
        ++evals;
        lower(i, c) = dist;
        if (dist < upper[i]) {
          res.assignment[i] = c;
          upper[i] = dist;
          // tight stays true: upper is exact for the new assignee.
        }
      }
    }

    // Weighted centroid update.
    std::fill(sums.flat().begin(), sums.flat().end(), 0.0);
    std::fill(mass.begin(), mass.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double w = data.weight(i);
      if (w == 0.0) continue;
      auto p = data.point(i);
      auto row = sums.row(res.assignment[i]);
      for (std::size_t j = 0; j < d; ++j) row[j] += w * p[j];
      mass[res.assignment[i]] += w;
    }
    for (std::size_t c = 0; c < k; ++c) {
      auto dst = new_centers.row(c);
      if (mass[c] > 0.0) {
        auto src = sums.row(c);
        for (std::size_t j = 0; j < d; ++j) dst[j] = src[j] / mass[c];
      } else {
        // Empty cluster: keep the stale center (the plain-Lloyd reseat
        // heuristic would invalidate all bounds; staying put preserves
        // Elkan's invariants and matches the classic formulation).
        auto src = res.centers.row(c);
        std::copy(src.begin(), src.end(), dst.begin());
      }
      shift[c] = distance(res.centers.row(c), new_centers.row(c));
    }

    // Update bounds by center drift.
    for (std::size_t i = 0; i < n; ++i) {
      upper[i] += shift[res.assignment[i]];
      for (std::size_t c = 0; c < k; ++c) {
        lower(i, c) = std::max(0.0, lower(i, c) - shift[c]);
      }
    }
    res.centers = new_centers;
    res.iterations = it + 1;

    double max_shift = 0.0;
    for (double sh : shift) max_shift = std::max(max_shift, sh);
    if (max_shift == 0.0) break;

    // Cheap convergence check on the (upper-bound) cost.
    double ub_cost = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ub_cost += data.weight(i) * upper[i] * upper[i];
    }
    if (std::isfinite(prev_cost) &&
        std::fabs(prev_cost - ub_cost) <=
            opts.rel_tol * std::max(prev_cost, 1e-300)) {
      break;
    }
    prev_cost = ub_cost;
  }

  // Exact final assignment & cost (batched kernel fallback).
  res.cost = assign_and_cost(data, res.centers, res.assignment);
  evals += static_cast<std::uint64_t>(n) * k;
  if (distance_evals != nullptr) *distance_evals = evals;
  return res;
}

KMeansResult kmeans_elkan(const Dataset& data, const KMeansOptions& opts) {
  EKM_EXPECTS(opts.k >= 1 && !data.empty());
  KMeansResult best;
  best.cost = std::numeric_limits<double>::infinity();
  const int restarts = std::max(1, opts.restarts);
  for (int r = 0; r < restarts; ++r) {
    Rng rng = make_rng(opts.seed, static_cast<std::uint64_t>(r));
    Matrix seeds = kmeanspp_seed(data, opts.k, rng);
    KMeansResult res = elkan(data, std::move(seeds), opts, nullptr);
    if (res.cost < best.cost) best = std::move(res);
  }
  return best;
}

}  // namespace ekm
