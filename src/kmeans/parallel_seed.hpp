// k-means|| — scalable k-means++ [Bahmani–Moseley–Vattani–Kumar–
// Vassilvitskii, VLDB 2012].
//
// k-means++ is inherently sequential: k rounds, each needing a full pass.
// k-means|| oversamples ~l points per round for only O(log n) rounds,
// then reduces the O(l log n) candidates to k by weighted clustering of
// the candidates themselves. In the paper's multi-source setting this is
// the natural seeding for the server-side solve and a building block a
// production deployment would want next to disSS.
#pragma once

#include "kmeans/lloyd.hpp"

namespace ekm {

struct ParallelSeedOptions {
  std::size_t k = 2;
  double oversampling = 2.0;  ///< l = oversampling * k candidates per round
  int rounds = 5;             ///< ~log(n) rounds; 5 suffices in practice
};

/// Returns exactly k seed centers (fewer only if the data has fewer
/// distinct points). Deterministic given `rng`.
[[nodiscard]] Matrix kmeans_parallel_seed(const Dataset& data,
                                          const ParallelSeedOptions& opts,
                                          Rng& rng);

/// Full solver: k-means|| seeding followed by weighted Lloyd.
[[nodiscard]] KMeansResult kmeans_scalable(const Dataset& data,
                                           const KMeansOptions& opts,
                                           const ParallelSeedOptions& seed_opts);

}  // namespace ekm
