// Synthetic dataset generators.
//
// The paper evaluates on MNIST (60000 x 784, dense images, low intrinsic
// dimension) and the NeurIPS word-count corpus (11463 x 5812, sparse,
// heavy-tailed). Neither is shipped with this repository, so we generate
// deterministic synthetic stand-ins that match the structural properties
// the algorithms are sensitive to — cardinality/dimension regime, cluster
// structure, intrinsic dimension, sparsity, and spectral decay. See
// DESIGN.md §3 for the substitution argument. `load_or_generate_*` in
// loaders.hpp prefers real files when present.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace ekm {

/// Isotropic Gaussian mixture: `k` well-separated clusters in R^dim.
/// Ground truth for unit tests (the optimal k-means structure is known
/// by construction when separation >> noise).
struct GaussianMixtureSpec {
  std::size_t n = 1000;
  std::size_t dim = 16;
  std::size_t k = 4;
  double separation = 10.0;  ///< distance scale between cluster centers
  double noise = 1.0;        ///< within-cluster standard deviation
};

[[nodiscard]] Dataset make_gaussian_mixture(const GaussianMixtureSpec& spec,
                                            Rng& rng);

/// MNIST-like images: 10 classes; each class is an anisotropic Gaussian
/// supported on a `latent_dim`-dimensional random manifold embedded in
/// R^dim, pushed through a squashing nonlinearity and clipped to [0, 1]
/// like pixel intensities, with a sparse background. Matches MNIST's
/// "dense but low intrinsic dimension" regime that makes PCA-based FSS
/// effective.
struct MnistLikeSpec {
  std::size_t n = 10000;
  std::size_t dim = 784;
  std::size_t classes = 10;
  std::size_t latent_dim = 16;
  double class_separation = 2.5;
};

[[nodiscard]] Dataset make_mnist_like(const MnistLikeSpec& spec, Rng& rng);

/// NeurIPS-corpus-like sparse counts: documents drawn from a topic model
/// with Zipf-distributed word frequencies. Dimension is comparable to
/// cardinality (d = Θ(n)), the regime where the paper's d ≫ log n
/// analysis favours JL-first compositions.
struct NeuripsLikeSpec {
  std::size_t n = 4000;     ///< number of "words" (rows, as in the paper)
  std::size_t dim = 2000;   ///< number of "papers" (attributes)
  std::size_t topics = 12;
  double zipf_exponent = 1.1;
  double density = 0.05;    ///< expected fraction of nonzero attributes
  double mean_count = 40.0; ///< mean total count per row
};

[[nodiscard]] Dataset make_neurips_like(const NeuripsLikeSpec& spec, Rng& rng);

}  // namespace ekm
