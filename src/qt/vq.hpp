// Scalar (Lloyd–Max) quantization via exact 1-D k-means — the
// "k-means-designed quantizer" the paper contrasts against in §1/§2
// (ref [13], Gersho & Gray).
//
// The rounding quantizer of §6.1 is codebook-free; a trained scalar
// quantizer spends bits where the value distribution has mass, at the
// price of transmitting the codebook. This module provides the trained
// alternative so the ablation bench can quantify the trade:
//   rounding: 12 + s bits/scalar, no side information;
//   Lloyd–Max: ceil(log2 L) bits/scalar + L codebook doubles.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"
#include "linalg/matrix.hpp"

namespace ekm {

class ScalarLloydMaxQuantizer {
 public:
  /// Trains an L-level codebook on (a uniform subsample of) the values in
  /// `training`, using the exact 1-D k-means DP. 2 <= levels <= 4096.
  ScalarLloydMaxQuantizer(const Matrix& training, std::size_t levels,
                          std::size_t max_training_values = 4096,
                          std::uint64_t seed = 42);

  [[nodiscard]] std::size_t levels() const { return codebook_.size(); }
  [[nodiscard]] const std::vector<double>& codebook() const { return codebook_; }

  /// Nearest-codeword quantization.
  [[nodiscard]] double quantize(double x) const;
  [[nodiscard]] Matrix quantize(const Matrix& m) const;

  /// Bits per quantized scalar: ceil(log2 levels).
  [[nodiscard]] std::size_t bits_per_scalar() const;

  /// Side-information cost: the codebook itself (doubles).
  [[nodiscard]] std::size_t codebook_scalars() const { return codebook_.size(); }

 private:
  std::vector<double> codebook_;  // sorted ascending
};

}  // namespace ekm
