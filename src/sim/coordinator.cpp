#include "sim/coordinator.hpp"

#include <utility>

#include "kmeans/lloyd.hpp"
#include "net/summary_codec.hpp"

namespace ekm {
namespace {

/// Rows [r·n/R, (r+1)·n/R) of a shard — round r's batch of R.
Dataset round_batch(const Dataset& shard, std::size_t round, std::size_t rounds) {
  const std::size_t n = shard.size();
  const std::size_t lo = round * n / rounds;
  const std::size_t hi = (round + 1) * n / rounds;
  if (lo >= hi) return {};
  Matrix pts(hi - lo, shard.dim());
  std::vector<double> weights(hi - lo, 1.0);
  for (std::size_t i = lo; i < hi; ++i) {
    auto src = shard.point(i);
    std::copy(src.begin(), src.end(), pts.row(i - lo).begin());
    weights[i - lo] = shard.weight(i);
  }
  return {std::move(pts), std::move(weights)};
}

SimReport make_report(const SimScenario& scenario, std::string pipeline,
                      PipelineResult result, SimNetwork& net) {
  SimReport report;
  report.scenario = scenario.name;
  report.pipeline = std::move(pipeline);
  report.result = std::move(result);
  report.completion_seconds = net.finish();
  report.energy_joules = net.energy_joules();
  report.outages = net.total_outages();
  report.uplink_stats = net.total_uplink_stats();
  report.downlink_stats = net.total_downlink_stats();
  report.event_log = net.take_event_log();  // net is consumed — no copy
  return report;
}

}  // namespace

SimReport Coordinator::run(PipelineKind kind, std::span<const Dataset> parts,
                           const PipelineConfig& cfg) const {
  EKM_EXPECTS(!parts.empty());
  SimNetwork net(parts.size(), scenario_);
  PipelineResult result = run_distributed_pipeline(kind, parts, cfg, net);
  return make_report(scenario_, pipeline_name(kind), std::move(result), net);
}

SimReport Coordinator::run_streaming(std::span<const Dataset> parts,
                                     const StreamingCoresetOptions& sopts,
                                     const PipelineConfig& cfg,
                                     std::size_t rounds) const {
  EKM_EXPECTS(!parts.empty());
  EKM_EXPECTS(rounds >= 1);
  const std::size_t m = parts.size();
  SimNetwork net(m, scenario_);

  std::vector<StreamingCoreset> streams;
  streams.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    StreamingCoresetOptions site_opts = sopts;
    site_opts.seed = derive_seed(sopts.seed, i);
    streams.emplace_back(site_opts);
  }

  // Each round: every site folds its next batch into the
  // merge-and-reduce tree and uplinks the finalized summary; the server
  // keeps the freshest summary per site. Sites progress on their own
  // virtual clocks — the server just drains arrivals.
  std::vector<Coreset> latest(m);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < m; ++i) {
      (void)stream_round_uplink(streams[i], round_batch(parts[i], r, rounds),
                                net.uplink(i), cfg.significant_bits);
    }
    for (std::size_t i = 0; i < m; ++i) {
      Coreset summary = decode_coreset(net.uplink(i).receive());
      if (summary.size() > 0 || latest[i].size() == 0) {
        latest[i] = std::move(summary);
      }
    }
  }

  std::vector<Dataset> pieces;
  for (Coreset& c : latest) {
    if (c.size() > 0) pieces.push_back(std::move(c.points));
  }
  EKM_ENSURES_MSG(!pieces.empty(), "streaming deployment produced no summary");
  const Dataset merged = concatenate(pieces);

  KMeansOptions solver;
  solver.k = cfg.k;
  solver.restarts = cfg.solver_restarts;
  solver.max_iters = cfg.solver_max_iters;
  solver.seed = derive_seed(cfg.seed, 0x501feULL);
  const KMeansResult solved = kmeans(merged, solver);

  PipelineResult result;
  result.centers = solved.centers;
  result.uplink = net.total_uplink();
  result.downlink = net.total_downlink();
  result.summary_points = merged.size();
  return make_report(scenario_, "streaming", std::move(result), net);
}

}  // namespace ekm
