// Binary (de)serialization used by the simulated edge network.
//
// The communication-cost metric of the paper is "number of scalars" /
// "number of bits" sent by data sources; we measure it by actually
// serializing every summary into a ByteWriter and counting bytes plus the
// sub-byte bit budget reported by the quantizer. Little-endian, fixed
// width, no padding — the format is part of the experiment, not just a
// transport detail.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/expects.hpp"

namespace ekm {

/// Append-only binary writer.
class ByteWriter {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &value, sizeof(T));
  }

  void put_u32(std::uint32_t v) { put(v); }
  void put_u64(std::uint64_t v) { put(v); }
  void put_f64(double v) { put(v); }

  void put_doubles(std::span<const double> vals) {
    put_u64(vals.size());
    if (vals.empty()) return;  // empty span's data() may be null
    const auto old = buf_.size();
    buf_.resize(old + vals.size_bytes());
    std::memcpy(buf_.data() + old, vals.data(), vals.size_bytes());
  }

  void put_string(const std::string& s) {
    put_u64(s.size());
    if (s.empty()) return;
    const auto old = buf_.size();
    buf_.resize(old + s.size());
    std::memcpy(buf_.data() + old, s.data(), s.size());
  }

  [[nodiscard]] std::size_t size_bytes() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::byte>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Sequential binary reader over a byte span. Throws on overrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    EKM_EXPECTS_MSG(pos_ + sizeof(T) <= data_.size(), "ByteReader overrun");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  [[nodiscard]] std::uint32_t get_u32() { return get<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t get_u64() { return get<std::uint64_t>(); }
  [[nodiscard]] double get_f64() { return get<double>(); }

  [[nodiscard]] std::vector<double> get_doubles() {
    const auto n = get_u64();
    // Divide instead of multiply: n * sizeof(double) could wrap for a
    // hostile length field and sneak past the bound.
    EKM_EXPECTS_MSG(n <= (data_.size() - pos_) / sizeof(double),
                    "ByteReader overrun (doubles)");
    std::vector<double> vals(n);
    if (n > 0) {
      std::memcpy(vals.data(), data_.data() + pos_, n * sizeof(double));
      pos_ += n * sizeof(double);
    }
    return vals;
  }

  [[nodiscard]] std::string get_string() {
    const auto n = get_u64();
    EKM_EXPECTS_MSG(n <= data_.size() - pos_, "ByteReader overrun (string)");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace ekm
