// Whole-token numeric parsing.
//
// std::atoi and bare strtod return 0 on garbage with no error signal,
// which is how `--qt-bits banana` and `loss=0.1x` once slipped through
// as zeros. These helpers accept a value only when the entire token is
// consumed and in range, and report failure as an empty optional so
// each caller picks its own channel (the scenario parser throws, the
// CLI prints usage and exits 2) without duplicating the validation.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>

namespace ekm {

/// Full-token double. Accepts what strtod accepts ("0.5", "1e-3",
/// "inf", "nan") with one exception: a finite-looking token that
/// overflows double ("1e999" → ±inf with errno ERANGE) is rejected —
/// the user wrote a finite number the type cannot hold, and letting it
/// alias infinity silently turned e.g. `loss=1e999` into "wait
/// forever" semantics downstream. Explicit "inf"/"nan" tokens still
/// parse (strtod sets no errno for them); whether a caller *accepts*
/// a non-finite value stays that caller's policy — the scenario
/// parser's per-key range checks and the CLI's flag checks both let
/// "inf" through only where infinity is meaningful (deadlines) and
/// reject NaN everywhere via ordinary comparisons. Underflow to zero
/// or a denormal (also ERANGE) is NOT an error: the token names a
/// representable magnitude, just a tiny one.
[[nodiscard]] inline std::optional<double> parse_full_double(
    const std::string& value) {
  if (value.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') return std::nullopt;
  if (errno == ERANGE && std::isinf(v)) return std::nullopt;  // overflow
  return v;
}

/// Full-token signed integer — rejects the fractional values a
/// double-then-cast would silently truncate.
[[nodiscard]] inline std::optional<long long> parse_full_ll(
    const std::string& value) {
  if (value.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    return std::nullopt;
  }
  return v;
}

/// Full-token unsigned 64-bit integer. A leading '-' is rejected
/// outright (strtoull would happily wrap it around).
[[nodiscard]] inline std::optional<unsigned long long> parse_full_ull(
    const std::string& value) {
  if (value.empty() || value.front() == '-') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    return std::nullopt;
  }
  return v;
}

}  // namespace ekm
