// Per-frame quantization policy — graceful degradation under deadline
// pressure (scenario key `quant=`, PipelineConfig::quant_policy).
//
// `fixed` is the paper's §6 setting: every coreset frame ships at the
// configured significand width (PipelineConfig::significant_bits),
// whatever the link looks like. `adaptive` lets a site consult the
// remaining round budget and its current link segment right before an
// uplink and drop to a narrower width from a small ladder when the
// frame would otherwise expire at the deadline — frames shrink instead
// of dying, trading resolution for survival. The server-side re-check
// semantics are exact either way: values quantized to s bits are
// representable at every width >= s, so the server's fixed-width
// re-quantization is a no-op on an adaptively narrowed frame.
#pragma once

#include <optional>
#include <string>

namespace ekm {

enum class QuantPolicy {
  kFixed,     ///< always the configured significand width (default)
  kAdaptive,  ///< narrow per frame when the round budget demands it
};

[[nodiscard]] constexpr const char* quant_policy_name(QuantPolicy p) {
  switch (p) {
    case QuantPolicy::kFixed: return "fixed";
    case QuantPolicy::kAdaptive: return "adaptive";
  }
  return "?";
}

/// Single source of truth for the `quant=` grammar, shared by the
/// scenario parser and the CLI: "fixed" | "adaptive", nullopt otherwise.
[[nodiscard]] inline std::optional<QuantPolicy> quant_policy_from_name(
    const std::string& name) {
  if (name == "fixed") return QuantPolicy::kFixed;
  if (name == "adaptive") return QuantPolicy::kAdaptive;
  return std::nullopt;
}

}  // namespace ekm
