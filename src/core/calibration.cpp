#include "core/calibration.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace ekm {

double solve_internal_epsilon(double target, double a, double b) {
  EKM_EXPECTS(target > 0.0);
  EKM_EXPECTS(a >= 0.0 && b >= 0.0 && a + b > 0.0);
  const double goal = 1.0 + target;
  double lo = 0.0;
  double hi = 1.0 - 1e-12;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double value =
        std::pow(1.0 + mid, a) / std::pow(1.0 - mid, b);
    (value < goal ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

double epsilon_for_fss(double target) {
  return solve_internal_epsilon(target, 1.0, 1.0);
}
double epsilon_for_alg1(double target) {
  return solve_internal_epsilon(target, 5.0, 1.0);
}
double epsilon_for_alg2(double target) {
  return solve_internal_epsilon(target, 5.0, 1.0);
}
double epsilon_for_alg3(double target) {
  return solve_internal_epsilon(target, 9.0, 1.0);
}
double epsilon_for_bklw(double target) {
  return solve_internal_epsilon(target, 2.0, 2.0);
}
double epsilon_for_alg4(double target) {
  return solve_internal_epsilon(target, 6.0, 2.0);
}

}  // namespace ekm
