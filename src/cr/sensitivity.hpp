// Sensitivity (importance) sampling coreset construction
// [Langberg–Schulman '10; Feldman–Langberg '11 — the framework behind
// FSS and disSS in the paper].
//
// Given a rough bicriteria solution B, the sensitivity of a point bounds
// its worst-case share of the k-means cost over all center sets; sampling
// proportionally to (an upper bound on) sensitivity and reweighting
// inversely yields an unbiased cost estimator with ε-coreset
// concentration once the sample is large enough (Theorem 3.2).
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "cr/coreset.hpp"
#include "data/dataset.hpp"
#include "kmeans/bicriteria.hpp"

namespace ekm {

struct SensitivitySampleOptions {
  std::size_t k = 2;
  std::size_t sample_size = 100;
  /// If true (the [4] variant the paper leans on in Theorem 6.1's proof),
  /// the bicriteria centers join the coreset with weights that top the
  /// cluster masses up so that the total coreset weight equals the total
  /// input weight deterministically.
  bool include_bicriteria_centers = true;
  BicriteriaOptions bicriteria{};
};

/// Sensitivity-sampling ε-coreset of `data` (no Δ, no basis — callers
/// like FSS attach those). Requires sample_size >= 1 and a non-empty
/// input. If sample_size >= n the input is returned verbatim as a
/// trivially exact coreset.
[[nodiscard]] Coreset sensitivity_sample(const Dataset& data,
                                         const SensitivitySampleOptions& opts,
                                         Rng& rng);

/// Uniform-sampling baseline coreset (same reweighting, no sensitivities).
/// Used by tests and the ablation bench to show why sensitivity sampling
/// is needed for heavy-tailed cost distributions.
[[nodiscard]] Coreset uniform_sample_coreset(const Dataset& data,
                                             std::size_t sample_size, Rng& rng);

/// The FSS-paper default coreset cardinality ˜O(k³ ε⁻⁴ log² k log(1/δ)),
/// with the constant chosen so laptop-scale experiments stay in the
/// sublinear regime; clamped to [4k, n].
[[nodiscard]] std::size_t fss_coreset_size(std::size_t k, double epsilon,
                                           double delta, std::size_t n);

}  // namespace ekm
