// Tests for the batched assignment kernel (src/kmeans/assign.*) and the
// thread pool underneath it: agreement with the naive per-point scan
// across n/k/d sweeps, and bitwise thread-count determinism of kmeans().
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/parallel.hpp"
#include "data/generators.hpp"
#include "kmeans/assign.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/lloyd.hpp"

namespace ekm {
namespace {

Dataset random_weighted(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng = make_rng(seed);
  Matrix pts = Matrix::gaussian(n, d, rng, 2.0);
  std::vector<double> w(n);
  std::uniform_real_distribution<double> unif(0.0, 3.0);
  for (double& v : w) v = unif(rng);
  return Dataset(std::move(pts), std::move(w));
}

// The kernel computes d² through ‖p‖²+‖c‖²−2⟨p,c⟩, the naive scan through
// Σ(p−c)²; the two differ by O(eps·‖p‖·‖c‖), so when the winners differ
// the two candidates must be equidistant to that precision.
void expect_agreement(const Dataset& data, const Matrix& centers) {
  const BatchAssignment batch = assign_batch(data.points(), centers);
  ASSERT_EQ(batch.index.size(), data.size());
  ASSERT_EQ(batch.sq_dist.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const NearestCenter nc = nearest_center(data.point(i), centers);
    const double tol = 1e-9 * (1.0 + nc.sq_dist);
    if (batch.index[i] != nc.index) {
      const double via_batch =
          squared_distance(data.point(i), centers.row(batch.index[i]));
      EXPECT_NEAR(via_batch, nc.sq_dist, tol)
          << "point " << i << ": batch picked " << batch.index[i]
          << ", naive picked " << nc.index;
    }
    EXPECT_NEAR(batch.sq_dist[i], nc.sq_dist, tol) << "point " << i;
  }
}

TEST(AssignKernel, AgreesWithNaiveAcrossShapes) {
  const struct {
    std::size_t n, d, k;
  } shapes[] = {{1, 1, 1},   {7, 1, 3},    {64, 1, 9},  {100, 2, 10},
                {128, 3, 8}, {200, 17, 7}, {333, 33, 23}, {512, 64, 50}};
  std::uint64_t seed = 1;
  for (const auto& s : shapes) {
    const Dataset data = random_weighted(s.n, s.d, seed++);
    Rng rng = make_rng(900 + seed);
    const Matrix centers = Matrix::gaussian(s.k, s.d, rng, 2.0);
    expect_agreement(data, centers);
  }
}

TEST(AssignKernel, DuplicatePointsAndCentersTieToLowestIndex) {
  // Every point duplicated; two identical centers. Both the naive scan
  // and the kernel must resolve ties to the lowest center index.
  Matrix pts(6, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    pts(i, 0) = static_cast<double>(i / 2);  // three distinct locations, x2
    pts(i, 1) = -1.0;
  }
  const Dataset data(std::move(pts));
  const Matrix centers{{0.0, -1.0}, {0.0, -1.0}, {2.0, -1.0}};
  const BatchAssignment batch = assign_batch(data.points(), centers);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const NearestCenter nc = nearest_center(data.point(i), centers);
    EXPECT_EQ(batch.index[i], nc.index) << "point " << i;
    EXPECT_DOUBLE_EQ(batch.sq_dist[i], nc.sq_dist) << "point " << i;
  }
  EXPECT_EQ(batch.index[0], 0u);  // tie between centers 0 and 1
}

TEST(AssignKernel, WeightedCostMatchesNaiveSum) {
  const Dataset data = random_weighted(257, 9, 77);
  Rng rng = make_rng(78);
  const Matrix centers = Matrix::gaussian(6, 9, rng);
  double naive = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    naive += data.weight(i) * nearest_center(data.point(i), centers).sq_dist;
  }
  std::vector<std::size_t> idx(data.size());
  const double batched = assign_and_cost(data, centers, idx);
  EXPECT_NEAR(batched, naive, 1e-9 * (1.0 + naive));
  EXPECT_EQ(idx, assign_to_centers(data, centers));

  // Precomputed point norms (the per-iteration cache Lloyd uses) must be
  // bitwise-equivalent to the internally computed ones.
  const std::vector<double> norms = row_sq_norms(data.points());
  EXPECT_EQ(assign_and_cost(data, centers, idx, {}, norms), batched);
}

TEST(AssignKernel, UpdateMinSqDistMatchesNaive) {
  const Dataset data = random_weighted(300, 5, 11);
  Rng rng = make_rng(12);
  const Matrix first = Matrix::gaussian(4, 5, rng);
  const Matrix second = Matrix::gaussian(3, 5, rng);
  std::vector<double> d2(data.size(), std::numeric_limits<double>::infinity());
  update_min_sq_dist(data.points(), first, d2);
  update_min_sq_dist(data.points(), second, d2);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double naive =
        std::min(nearest_center(data.point(i), first).sq_dist,
                 nearest_center(data.point(i), second).sq_dist);
    EXPECT_NEAR(d2[i], naive, 1e-9 * (1.0 + naive)) << "point " << i;
  }
}

TEST(AssignKernel, PairwiseMatchesSquaredDistance) {
  const Dataset data = random_weighted(40, 13, 21);
  Rng rng = make_rng(22);
  const Matrix centers = Matrix::gaussian(11, 13, rng);
  Matrix out(data.size(), centers.rows());
  pairwise_sq_dist_into(data.points(), centers, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t c = 0; c < centers.rows(); ++c) {
      const double naive = squared_distance(data.point(i), centers.row(c));
      EXPECT_NEAR(out(i, c), naive, 1e-9 * (1.0 + naive));
      EXPECT_GE(out(i, c), 0.0);
    }
  }
}

TEST(AssignKernel, RejectsShapeMismatch) {
  const Dataset data = random_weighted(4, 3, 5);
  EXPECT_THROW((void)assign_batch(data.points(), Matrix()),
               precondition_error);
  EXPECT_THROW((void)assign_batch(data.points(), Matrix{{1.0, 2.0}}),
               precondition_error);
}

// EKM_THREADS=1 vs EKM_THREADS=8 must produce bitwise-identical results;
// set_parallel_threads() is the same code path the env variable seeds.
TEST(ThreadDeterminism, KMeansResultIdenticalAcrossThreadCounts) {
  GaussianMixtureSpec spec;
  spec.n = 2500;
  spec.dim = 24;
  spec.k = 6;
  Rng rng = make_rng(321);
  const Dataset data = make_gaussian_mixture(spec, rng);

  KMeansOptions opts;
  opts.k = 6;
  opts.restarts = 2;
  opts.seed = 99;

  set_parallel_threads(1);
  ASSERT_EQ(parallel_threads(), 1u);
  const KMeansResult serial = kmeans(data, opts);

  set_parallel_threads(8);
  ASSERT_EQ(parallel_threads(), 8u);
  const KMeansResult threaded = kmeans(data, opts);
  set_parallel_threads(0);  // restore default

  EXPECT_TRUE(serial.centers == threaded.centers);  // bitwise (operator==)
  EXPECT_EQ(serial.cost, threaded.cost);
  EXPECT_EQ(serial.assignment, threaded.assignment);
  EXPECT_EQ(serial.iterations, threaded.iterations);
}

TEST(ThreadDeterminism, CostAndSeedingIdenticalAcrossThreadCounts) {
  const Dataset data = random_weighted(3000, 16, 1234);

  set_parallel_threads(1);
  Rng rng1 = make_rng(7);
  const Matrix seeds1 = kmeanspp_seed(data, 12, rng1);
  const double cost1 = kmeans_cost(data, seeds1);

  set_parallel_threads(8);
  Rng rng2 = make_rng(7);
  const Matrix seeds2 = kmeanspp_seed(data, 12, rng2);
  const double cost2 = kmeans_cost(data, seeds2);
  set_parallel_threads(0);

  EXPECT_TRUE(seeds1 == seeds2);
  EXPECT_EQ(cost1, cost2);
}

}  // namespace
}  // namespace ekm
