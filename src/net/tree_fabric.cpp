#include "net/tree_fabric.hpp"

#include "obs/recorder.hpp"

namespace ekm {

RoundId TreeFabric::open_round(double deadline_seconds) {
  if (Recorder* rec = inner_->recorder()) {
    rec->note_topology(topo_.sites, topo_.gateways());
  }
  return inner_->open_round(deadline_seconds);
}

TreeFabric::TreeFabric(Fabric& inner, const TreeTopology& topology)
    : inner_(&inner), topo_(topology) {
  EKM_EXPECTS_MSG(topo_.sites >= 1, "tree topology needs at least one site");
  EKM_EXPECTS_MSG(topo_.branching >= 2, "tree branching must be >= 2");
  EKM_EXPECTS_MSG(topo_.level_split > 0.0 && topo_.level_split < 1.0,
                  "tree level split must be in (0, 1)");
  EKM_EXPECTS_MSG(
      inner.num_sources() == topo_.sites + topo_.gateways(),
      "tree fabric needs an inner fabric with sites + gateways sources");
}

}  // namespace ekm
