#include "obs/recorder.hpp"

#include <chrono>
#include <cstdio>

#include "common/expects.hpp"

namespace ekm {
namespace {

Recorder* g_recorder = nullptr;

/// Wall-clock origin for host-track spans: the first wall reading of
/// the process. Monotonic, so span math never sees a negative duration.
double wall_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return std::chrono::duration<double>(clock::now() - origin).count();
}

}  // namespace

Recorder::Recorder() {
  // Fixed registration order — this is the JSONL column order forever.
  id_responders_ = registry_.gauge("round.responders");
  id_server_time_ = registry_.gauge("server.time_s");
  id_misses_ = registry_.counter("round.deadline_misses");
  id_supplemental_ = registry_.counter("round.supplemental_misses");
  id_orphaned_ = registry_.counter("round.orphaned_frames");
  id_uplink_bits_ = registry_.counter("round.uplink_bits");
  id_uplink_frames_ = registry_.counter("round.uplink_frames");
  id_energy_ = registry_.gauge("fleet.energy_joules");
  id_waves_ = registry_.counter("round.realloc_waves");
  id_narrowed_ = registry_.counter("round.quant_frames_narrowed");
  id_quant_bits_ = registry_.histogram("round.quant_bits", {8.0, 16.0, 24.0});
  // Appended after the quantization metrics (PR order) so existing
  // JSONL consumers see their columns unmoved.
  id_gateway_fanin_ =
      registry_.histogram("round.gateway_fan_in", {4.0, 16.0, 64.0, 256.0});
  id_queue_high_ = registry_.gauge("sim.queue_high_water");
  // Registered last (PR order): the server's committed clock when this
  // round closed — under cross-round pipelining the column that shrinks
  // while the deadline-miss columns stay put.
  id_server_commit_ = registry_.gauge("round.server_commit_seconds");
}

void Recorder::record_span(std::size_t actor, std::string label,
                           std::string kind, double start_s, double finish_s) {
  RecordedSpan s;
  s.actor = actor;
  s.label = std::move(label);
  s.kind = std::move(kind);
  s.start_s = start_s;
  s.finish_s = finish_s;
  spans_.push_back(std::move(s));
}

void Recorder::record_wall_span(std::string label, double start_s,
                                double duration_s) {
  RecordedSpan s;
  s.label = std::move(label);
  s.kind = "kernel";
  s.start_s = start_s;
  s.finish_s = start_s + duration_s;
  s.wall = true;
  spans_.push_back(std::move(s));
}

void Recorder::record_sim_event(double time_s, const char* name,
                                std::uint32_t site, bool uplink,
                                std::uint16_t attempt, std::uint64_t bits) {
  events_.push_back({time_s, name, site, uplink, attempt, bits});
}

void Recorder::note_quant_width(std::size_t site, int wire_bits,
                                int full_bits) {
  (void)site;
  registry_.observe(id_quant_bits_, static_cast<double>(wire_bits));
  if (wire_bits < full_bits) quant_narrowed_round_ += 1;
}

void Recorder::note_gateway_fanin(std::size_t gateway, std::size_t fan_in) {
  (void)gateway;
  registry_.observe(id_gateway_fanin_, static_cast<double>(fan_in));
}

void Recorder::record_server_op(ServerOpKind kind, double value,
                                std::uint32_t site, std::uint64_t frame,
                                std::uint64_t round) {
  server_ops_.push_back({kind, site, frame, round, value});
}

std::uint64_t Recorder::record_frame_causal(const FrameCausal& causal) {
  frame_causals_.push_back(causal);
  return frame_causals_.size() - 1;
}

void Recorder::record_flow(std::size_t from_actor, double from_s,
                           std::size_t to_actor, double to_s, bool critical) {
  flows_.push_back({from_actor, from_s, to_actor, to_s, critical});
}

void Recorder::note_topology(std::size_t data_sites, std::size_t gateways) {
  if (data_sites_ == data_sites && gateway_count_ == gateways) return;
  data_sites_ = data_sites;
  gateway_count_ = gateways;
  // Mirror into the op stream so attribution of an *earlier* run on a
  // shared recorder (the bench sweeps) still sees that run's actor
  // split — the members above only describe the latest run.
  server_ops_.push_back({ServerOpKind::kTopology,
                         static_cast<std::uint32_t>(data_sites),
                         static_cast<std::uint64_t>(gateways), 0, 0.0});
}

void Recorder::snapshot_round(const RoundTotals& totals) {
  EKM_EXPECTS_MSG(totals.rounds_opened > prev_.rounds_opened,
                  "round snapshot out of order");
  // Responders: sites whose uplink took no new miss this round. A site
  // that never uplinked this round also counts no miss — the figure is
  // the simulator's best per-round availability signal without any new
  // bookkeeping on the hot path.
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < totals.per_uplink_missed.size(); ++i) {
    const std::uint64_t before =
        i < prev_.per_uplink_missed.size() ? prev_.per_uplink_missed[i] : 0;
    if (totals.per_uplink_missed[i] > before) dropped += 1;
  }
  registry_.set(id_responders_,
                static_cast<double>(totals.per_uplink_missed.size() - dropped));
  registry_.set(id_server_time_, totals.server_time_s);
  registry_.add(id_misses_, totals.missed_frames - prev_.missed_frames);
  registry_.add(id_supplemental_,
                totals.supplemental_misses - prev_.supplemental_misses);
  registry_.add(id_orphaned_, totals.orphaned_frames - prev_.orphaned_frames);
  registry_.add(id_uplink_bits_, totals.uplink_bits - prev_.uplink_bits);
  registry_.add(id_uplink_frames_, totals.uplink_frames - prev_.uplink_frames);
  registry_.set(id_energy_, totals.energy_joules);  // cumulative by design
  registry_.add(id_waves_, totals.subrounds_opened - prev_.subrounds_opened);
  registry_.add(id_narrowed_, quant_narrowed_round_);
  registry_.set(id_queue_high_,
                static_cast<double>(totals.queue_high_water));  // cumulative
  // The round's commit time is the server clock at the snapshot — the
  // moment the next round opened over the closed one's final inputs.
  registry_.set(id_server_commit_, totals.server_time_s);

  RoundSnapshot snap;
  snap.round = totals.rounds_opened;
  snap.server_time_s = totals.server_time_s;
  snap.queue_high_water = totals.queue_high_water;
  char head[48];
  std::snprintf(head, sizeof head, "{\"round\": %llu, \"metrics\": ",
                static_cast<unsigned long long>(totals.rounds_opened));
  snap.json_line = std::string(head) + registry_.to_json() + "}";
  rounds_.push_back(std::move(snap));

  prev_ = totals;
  quant_narrowed_round_ = 0;
  registry_.reset_values();  // next round's line carries deltas, not totals
}

void Recorder::begin_run() {
  prev_ = RoundTotals{};
  quant_narrowed_round_ = 0;
  registry_.reset_values();  // drop observations of a run that never closed
  // Segment marker for attribution; the topology reverts to "all
  // sites" until the new run's fabric declares otherwise (a tree run
  // followed by a star run must not inherit the gateway split).
  server_ops_.push_back({ServerOpKind::kBeginRun, 0, kNoCausalFrame, 0, 0.0});
  data_sites_ = static_cast<std::size_t>(-1);
  gateway_count_ = 0;
}

Recorder* installed_recorder() { return g_recorder; }

void install_recorder(Recorder* recorder) { g_recorder = recorder; }

double timed_section(const char* label, const std::function<void()>& fn) {
  const double start = wall_seconds();
  fn();
  const double elapsed = wall_seconds() - start;
  if (g_recorder != nullptr) {
    g_recorder->record_wall_span(label, start, elapsed);
  }
  return elapsed;
}

ObsKernelScope::ObsKernelScope(const char* label)
    : label_(g_recorder != nullptr ? label : nullptr) {
  if (label_ != nullptr) start_s_ = wall_seconds();
}

ObsKernelScope::~ObsKernelScope() {
  if (label_ != nullptr && g_recorder != nullptr) {
    g_recorder->record_wall_span(label_, start_s_, wall_seconds() - start_s_);
  }
}

}  // namespace ekm
