// Dataset loaders with synthetic fallback.
//
// If real dataset files are present (MNIST IDX images, or a dense CSV),
// experiments run on them; otherwise the deterministic generators from
// generators.hpp provide structurally equivalent stand-ins (DESIGN.md §3).
#pragma once

#include <filesystem>
#include <optional>
#include <string>

#include "data/dataset.hpp"
#include "data/generators.hpp"

namespace ekm {

/// Loads a dense numeric CSV (no header handling: lines starting with '#'
/// are skipped). Throws std::runtime_error on malformed input.
[[nodiscard]] Dataset load_csv(const std::filesystem::path& path);

/// Loads an MNIST IDX3 image file (magic 0x00000803), flattening each
/// image into a row of [0, 1]-scaled intensities. Returns nullopt if the
/// file does not exist; throws on a malformed file.
[[nodiscard]] std::optional<Dataset> load_idx_images(
    const std::filesystem::path& path, std::size_t max_rows = 0);

/// MNIST experiment input: real `train-images-idx3-ubyte` under
/// `data_dir` if present (subsampled to `n` rows), otherwise
/// make_mnist_like. Output is §7.1-normalized either way.
[[nodiscard]] Dataset load_or_generate_mnist(const std::filesystem::path& data_dir,
                                             std::size_t n, Rng& rng);

/// NeurIPS-corpus experiment input: `neurips_counts.csv` under `data_dir`
/// if present, otherwise make_neurips_like with (n, dim).
[[nodiscard]] Dataset load_or_generate_neurips(
    const std::filesystem::path& data_dir, std::size_t n, std::size_t dim,
    Rng& rng);

}  // namespace ekm
