// FSS coreset construction [Feldman–Schmidt–Sohler, Theorem 36 of ref.
// [11]; Theorem 3.2 of the paper].
//
// FSS = exact PCA to the intrinsic dimension t = O(k/ε²), then
// sensitivity sampling on the projected dataset. The discarded spectral
// energy ||A - A V_t V_t^T||_F² becomes the coreset's Δ constant, which is
// what lets the cardinality be independent of n and d.
//
// The returned coreset stores subspace *coordinates* plus the basis V_t:
// transmitting it costs |S|·t + t·d + |S| + 1 scalars, reproducing the
// O(kd/ε²) communication cost of Theorem 4.1 — unless the caller strips
// the basis because the receiver already knows the subspace (as in
// Algorithm 1, where FSS runs after a JL projection whose seed is shared).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "cr/sensitivity.hpp"
#include "data/dataset.hpp"

namespace ekm {

struct FssOptions {
  std::size_t k = 2;
  double epsilon = 0.3;   ///< coreset accuracy target; drives t and |S|
  double delta = 0.1;     ///< failure probability
  std::size_t sample_size = 0;  ///< 0 => fss_coreset_size(k, ε, δ, n)
  std::size_t intrinsic_dim = 0;  ///< 0 => fss_intrinsic_dim(k, ε, n, d)
  bool include_bicriteria_centers = true;
};

/// Runs FSS on `data`. The result has `basis` set (t x d) and Δ equal to
/// the PCA residual energy. Complexity O(nd·min(n,d)) — dominated by the
/// exact SVD, exactly the cost profile Table 2 charges FSS with.
[[nodiscard]] Coreset fss_coreset(const Dataset& data, const FssOptions& opts,
                                  Rng& rng);

}  // namespace ekm
