// Scenario coordinator: runs the paper's multi-source protocols over a
// simulated network and reports deployment metrics.
//
// The Coordinator owns the scenario. run() wires a SimNetwork between
// the data sources and the server and executes one of the distributed
// pipelines (NR / BKLW / JL+BKLW) through it; run_streaming() instead
// runs the merge-and-reduce streaming path (src/cr/streaming) as a
// multi-round deployment where every site periodically uplinks its
// current summary and the server solves on the latest round's union.
//
// "Asynchronous rounds" here means virtual-time asynchrony: each site
// progresses on its own clock (compute skew, outages, retransmissions),
// the server consumes frames as they arrive, and the completion time is
// the quiescence point of the whole event queue — not m times a
// synchronous round trip.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "cr/streaming.hpp"
#include "sim/scenario.hpp"
#include "sim/sim_network.hpp"

namespace ekm {

struct SimReport {
  std::string scenario;
  std::string pipeline;
  PipelineResult result;  ///< centers + the paper's goodput ledgers

  // --- what the simulator adds over the synchronous Network ---------------
  double completion_seconds = 0.0;  ///< virtual quiescence time
  /// When the server had everything it aggregated — its committed
  /// clock after the final collection round. Under a deadline this is
  /// what improves: the server stops waiting for stragglers, even
  /// while the dropped sites' own clocks (and thus the quiescence time
  /// above) still run.
  double server_completion_seconds = 0.0;
  /// Critical-path lower bound on server_completion_seconds: the
  /// server's clock replayed counting only its own compute, its
  /// downlink sends, and the arrival times of the uplink frames it
  /// actually aggregated — never the waiting-to-learn-of-a-miss time
  /// that cross-round pipelining (RoundPolicy::pipeline) attacks. The
  /// gap between the two columns is the headroom pipelining can
  /// reclaim; a pipelined run is judged against this bound.
  double server_critical_path_seconds = 0.0;
  double energy_joules = 0.0;       ///< summed site radio energy
  std::uint64_t outages = 0;        ///< dropout windows across sites
  LinkStats uplink_stats;           ///< attempts/drops/retx bits/airtime
  LinkStats downlink_stats;
  std::vector<SimEvent> event_log;  ///< full event trace, time order

  // --- deadline rounds (RoundPolicy) --------------------------------------
  std::uint64_t rounds = 0;           ///< collection rounds opened
  /// Frames dropped from a round: expired in flight or delivered late.
  /// Counts every abandoned frame, including a reallocation-wave
  /// supplement whose site's first-wave coreset still stands — so this
  /// (and sites_dropped below) is an upper bound on actual data loss
  /// when waves run; `supplemental_misses` / `sites_data_dropped`
  /// below carry the exact split.
  std::uint64_t deadline_misses = 0;
  /// The subset of deadline_misses that were reallocation-wave
  /// *supplements* (uplink frames sent under open_subround): the
  /// affected site's first-wave coreset still stands, so these lose no
  /// data. Exact data loss is deadline_misses - supplemental_misses.
  /// (A lost wave *broadcast* also leaves the first wave standing, but
  /// stays in the upper bound: downlink frames are never wave-tagged,
  /// because a later phase may broadcast before opening its round.)
  std::uint64_t supplemental_misses = 0;
  std::uint64_t sites_dropped = 0;    ///< sites with >= 1 abandoned frame
                                      ///< (incl. supplemental-only ones)
  /// Sites with >= 1 *non-supplemental* abandoned frame — the exact
  /// count of sites whose data (or a broadcast they needed) was lost,
  /// where sites_dropped above still counts a responder whose only
  /// miss was a superseded wave supplement. Equal to sites_dropped on
  /// every run without reallocation waves.
  std::uint64_t sites_data_dropped = 0;
  std::uint64_t realloc_waves = 0;    ///< within-round budget-reallocation
                                      ///< waves opened (open_subround);
                                      ///< 0 on every miss-free run

  // --- hierarchical aggregation (`topology=tree`) -------------------------
  /// Gateways in the aggregation tree; 0 on star runs. Gateway devices
  /// live on the inner fabric (net/tree_fabric.hpp): their radio energy
  /// is part of energy_joules (they are fleet hardware), but they are
  /// not counted in sites_dropped / sites_data_dropped, which census
  /// data sites only.
  std::uint64_t gateways = 0;
  std::uint64_t branching = 0;       ///< children per gateway; 0 on star
  /// Uplink frames the server itself consumes per collection phase:
  /// gateways on tree runs, every site on star. THE tentpole figure —
  /// tree cuts it from O(sites) to O(sites / branching).
  std::uint64_t server_fan_in = 0;
  /// Bits on the gateway → server hops (level 1). Level-0 bits are
  /// result.uplink.bits as always, so bits-per-level is read directly
  /// off the report. 0 on star runs.
  std::uint64_t gateway_uplink_bits = 0;
  /// Event-queue high-water mark — max events simultaneously pending.
  /// The memory-pressure gauge the 10k-site fleet sweeps track.
  std::uint64_t queue_high_water = 0;

  // --- fleet churn (`siteN.join=`/`siteN.leave=`, `churn=`) ---------------
  std::uint64_t joins = 0;   ///< membership flips to "member" during the run
  std::uint64_t leaves = 0;  ///< membership flips to "gone" during the run
  /// Frames resolved as drops because their site had left the fleet —
  /// a subset of the expired frames, counted per link in
  /// LinkStats::orphaned. 0 on every static fleet.
  std::uint64_t orphaned_frames = 0;
};

class Coordinator {
 public:
  explicit Coordinator(SimScenario scenario) : scenario_(std::move(scenario)) {}

  [[nodiscard]] const SimScenario& scenario() const { return scenario_; }

  /// Runs a distributed pipeline (kNoReduction, kBklw, kJlBklw) over a
  /// simulated network. With a fault-free scenario and no (or infinite)
  /// round deadline the report's ledgers and centers are bitwise
  /// identical to run_distributed_pipeline over the synchronous
  /// Network. The scenario's RoundPolicy (SimScenario::round, CLI
  /// `deadline=` / `--deadline`) fills cfg's round_deadline_s /
  /// min_round_responders wherever cfg still holds the defaults — an
  /// explicit cfg setting wins.
  ///
  /// With `topology=tree` and branching < the fleet size, the pipeline
  /// runs over a TreeFabric: an inner SimNetwork carries sites +
  /// gateways and every site uplink is merged at its gateway before one
  /// frame per gateway reaches the server. Tree supports the coreset
  /// pipelines (kBklw, kJlBklw) without device refinement; branching >=
  /// fleet size degenerates to the star path (bitwise identical to
  /// `topology=star`).
  [[nodiscard]] SimReport run(PipelineKind kind, std::span<const Dataset> parts,
                              const PipelineConfig& cfg) const;

  /// Streaming deployment: each site feeds its shard through a
  /// merge-and-reduce tree in `rounds` equal batches and uplinks the
  /// finalized summary after each batch; the server solves weighted
  /// k-means on the union of the latest summaries. Communication grows
  /// linearly in `rounds` — the price of freshness the simulator makes
  /// visible in airtime and energy.
  [[nodiscard]] SimReport run_streaming(std::span<const Dataset> parts,
                                        const StreamingCoresetOptions& sopts,
                                        const PipelineConfig& cfg,
                                        std::size_t rounds = 4) const;

 private:
  SimScenario scenario_;
};

}  // namespace ekm
