// Tests for src/kmeans: cost functions, seeding, Lloyd, bicriteria
// sampling, and the brute-force oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.hpp"
#include "kmeans/bicriteria.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/lloyd.hpp"

namespace ekm {
namespace {

Dataset two_clusters() {
  // Cluster A near 0, cluster B near 10 (1-D for hand computation).
  return Dataset(Matrix{{0.0}, {0.5}, {1.0}, {10.0}, {10.5}, {11.0}});
}

TEST(Cost, NearestCenterAndCost) {
  const Matrix centers{{0.5}, {10.5}};
  const Dataset d = two_clusters();
  EXPECT_EQ(nearest_center(d.point(0), centers).index, 0u);
  EXPECT_EQ(nearest_center(d.point(5), centers).index, 1u);
  // cost = 0.25 + 0 + 0.25 per cluster, both clusters.
  EXPECT_DOUBLE_EQ(kmeans_cost(d, centers), 1.0);
  EXPECT_THROW((void)nearest_center(d.point(0), Matrix()), precondition_error);
}

TEST(Cost, WeightedCostScalesWithWeights) {
  const Dataset d(Matrix{{0.0}, {2.0}}, {3.0, 1.0});
  const Matrix centers{{0.0}};
  EXPECT_DOUBLE_EQ(kmeans_cost(d, centers), 4.0);  // 3*0 + 1*4
}

TEST(Cost, WeightedMeanIsOptimalOneMeans) {
  const Dataset d(Matrix{{0.0}, {4.0}}, {1.0, 3.0});
  const std::vector<double> mu = weighted_mean(d);
  EXPECT_DOUBLE_EQ(mu[0], 3.0);
  // Sweep candidate 1-means centers: μ must minimize.
  const double at_mu = one_means_cost(d);
  for (double c : {2.0, 2.9, 3.1, 4.0}) {
    const Matrix center{{c}};
    EXPECT_GE(kmeans_cost(d, center) + 1e-12, at_mu);
  }
}

TEST(Cost, ZeroTotalWeightRejected) {
  const Dataset d(Matrix{{1.0}}, {0.0});
  EXPECT_THROW((void)weighted_mean(d), precondition_error);
}

TEST(Assign, MatchesNearest) {
  const Dataset d = two_clusters();
  const Matrix centers{{0.5}, {10.5}};
  const std::vector<std::size_t> assign = assign_to_centers(d, centers);
  EXPECT_EQ(assign, (std::vector<std::size_t>{0, 0, 0, 1, 1, 1}));
}

TEST(KMeansPp, SpreadsSeedsAcrossClusters) {
  const Dataset d = two_clusters();
  int split = 0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    Rng rng = make_rng(s);
    const Matrix seeds = kmeanspp_seed(d, 2, rng);
    // D² seeding should almost always pick one seed per cluster.
    const bool one_low = seeds(0, 0) < 5.0;
    const bool other_high = seeds(1, 0) >= 5.0;
    if (one_low == other_high) ++split;
  }
  EXPECT_GE(split, 18);
}

TEST(KMeansPp, RespectsWeights) {
  // Point 1 has overwhelming weight: it must be picked first (w.h.p.).
  const Dataset d(Matrix{{0.0}, {5.0}}, {1e-9, 1.0});
  int heavy_first = 0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    Rng rng = make_rng(100 + s);
    const Matrix seeds = kmeanspp_seed(d, 1, rng);
    if (seeds(0, 0) == 5.0) ++heavy_first;
  }
  EXPECT_GE(heavy_first, 19);
}

TEST(Lloyd, SolvesWellSeparatedTwoClusters) {
  const Dataset d = two_clusters();
  KMeansOptions opts;
  opts.k = 2;
  opts.seed = 42;
  const KMeansResult res = kmeans(d, opts);
  EXPECT_NEAR(res.cost, 1.0, 1e-9);  // optimal: centers at 0.5 and 10.5
  const double lo = std::min(res.centers(0, 0), res.centers(1, 0));
  const double hi = std::max(res.centers(0, 0), res.centers(1, 0));
  EXPECT_NEAR(lo, 0.5, 1e-9);
  EXPECT_NEAR(hi, 10.5, 1e-9);
}

TEST(Lloyd, IteratesBeyondSeeding) {
  Rng rng = make_rng(13);
  GaussianMixtureSpec spec;
  spec.n = 400;
  spec.dim = 6;
  spec.k = 4;
  spec.separation = 8.0;
  const Dataset d = make_gaussian_mixture(spec, rng);
  KMeansOptions opts;
  opts.k = 4;
  opts.restarts = 1;
  opts.seed = 5;
  const KMeansResult res = kmeans(d, opts);
  // Regression guard for the early-termination bug: Lloyd must actually
  // improve on the raw seeding, which takes > 1 iteration.
  EXPECT_GT(res.iterations, 1);
  Rng rng2 = make_rng(5, 0);
  const Matrix seeds = kmeanspp_seed(d, 4, rng2);
  EXPECT_LE(res.cost, kmeans_cost(d, seeds) + 1e-9);
}

TEST(Lloyd, CostMonotoneInRestarts) {
  Rng rng = make_rng(14);
  GaussianMixtureSpec spec;
  spec.n = 300;
  spec.dim = 5;
  spec.k = 5;
  spec.separation = 4.0;  // moderately hard
  const Dataset d = make_gaussian_mixture(spec, rng);
  KMeansOptions few;
  few.k = 5;
  few.restarts = 1;
  few.seed = 9;
  KMeansOptions many = few;
  many.restarts = 8;
  EXPECT_LE(kmeans(d, many).cost, kmeans(d, few).cost + 1e-12);
}

TEST(Lloyd, WeightedEqualsDuplicated) {
  // Integer weights == duplicating points: identical optimal cost.
  const Dataset weighted(Matrix{{0.0}, {1.0}, {7.0}}, {2.0, 1.0, 3.0});
  const Dataset duplicated(
      Matrix{{0.0}, {0.0}, {1.0}, {7.0}, {7.0}, {7.0}});
  KMeansOptions opts;
  opts.k = 2;
  opts.restarts = 8;
  opts.seed = 3;
  const double wc = kmeans(weighted, opts).cost;
  const double dc = kmeans(duplicated, opts).cost;
  EXPECT_NEAR(wc, dc, 1e-9);
}

TEST(Lloyd, KGreaterEqualDistinctPointsGivesZeroCost) {
  const Dataset d(Matrix{{1.0}, {2.0}, {3.0}});
  KMeansOptions opts;
  opts.k = 3;
  opts.seed = 77;
  EXPECT_NEAR(kmeans(d, opts).cost, 0.0, 1e-18);
}

TEST(Lloyd, HandlesDuplicatePoints) {
  const Dataset d(Matrix{{1.0}, {1.0}, {1.0}, {1.0}});
  KMeansOptions opts;
  opts.k = 2;
  opts.seed = 1;
  EXPECT_NEAR(kmeans(d, opts).cost, 0.0, 1e-18);
}

TEST(Lloyd, ZeroWeightPointsIgnoredInUpdate) {
  const Dataset d(Matrix{{0.0}, {100.0}, {1.0}}, {1.0, 0.0, 1.0});
  KMeansOptions opts;
  opts.k = 1;
  opts.seed = 2;
  const KMeansResult res = kmeans(d, opts);
  EXPECT_NEAR(res.centers(0, 0), 0.5, 1e-9);
}

class BruteForceParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BruteForceParam, LloydMatchesOptimalOnTinyInstances) {
  const std::size_t n = GetParam();
  Rng rng = make_rng(500 + n);
  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = 2;
  spec.k = 2;
  spec.separation = 6.0;
  const Dataset d = make_gaussian_mixture(spec, rng);
  const KMeansResult opt = kmeans_brute_force(d, 2);
  KMeansOptions opts;
  opts.k = 2;
  opts.restarts = 20;
  opts.seed = 4;
  const KMeansResult heur = kmeans(d, opts);
  EXPECT_GE(heur.cost + 1e-9, opt.cost);  // optimality of the oracle
  EXPECT_LE(heur.cost, 1.05 * opt.cost + 1e-9);  // Lloyd is near-optimal here
}

INSTANTIATE_TEST_SUITE_P(Sizes, BruteForceParam,
                         ::testing::Values<std::size_t>(4, 6, 8, 10, 12));

TEST(BruteForce, RejectsHugeInstances) {
  const Dataset d(Matrix(40, 1));
  EXPECT_THROW((void)kmeans_brute_force(d, 3), precondition_error);
}

TEST(Bicriteria, ConstantFactorOnMixture) {
  Rng rng = make_rng(15);
  GaussianMixtureSpec spec;
  spec.n = 500;
  spec.dim = 6;
  spec.k = 4;
  spec.separation = 12.0;
  const Dataset d = make_gaussian_mixture(spec, rng);
  KMeansOptions opts;
  opts.k = 4;
  opts.restarts = 10;
  opts.seed = 6;
  const double opt_cost = kmeans(d, opts).cost;

  BicriteriaOptions bopts;
  bopts.k = 4;
  Rng brng = make_rng(16);
  const Matrix centers = bicriteria_centers(d, bopts, brng);
  EXPECT_GE(centers.rows(), 4u);
  // Bicriteria uses more centers, so it should be within a small constant
  // factor of (often below) the optimal k-means cost.
  EXPECT_LE(kmeans_cost(d, centers), 20.0 * opt_cost + 1e-9);
}

TEST(Bicriteria, LowerBoundIsBelowOptimal) {
  Rng rng = make_rng(17);
  GaussianMixtureSpec spec;
  spec.n = 400;
  spec.dim = 4;
  spec.k = 3;
  const Dataset d = make_gaussian_mixture(spec, rng);
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 10;
  opts.seed = 8;
  const double opt_cost = kmeans(d, opts).cost;
  Rng erng = make_rng(18);
  const double lb = estimate_opt_cost_lower_bound(d, 3, 4, erng);
  EXPECT_GT(lb, 0.0);
  EXPECT_LE(lb, opt_cost + 1e-9);
}

TEST(Bicriteria, WorksWithWeights) {
  const Dataset d(Matrix{{0.0}, {10.0}, {20.0}}, {1.0, 5.0, 1.0});
  BicriteriaOptions opts;
  opts.k = 1;
  opts.rounds = 2;
  Rng rng = make_rng(19);
  const Matrix centers = bicriteria_centers(d, opts, rng);
  EXPECT_GE(centers.rows(), 1u);
}

}  // namespace
}  // namespace ekm
