// Mini-batch k-means (Sculley, WWW 2010) — the low-memory solver an edge
// device would run if it had to cluster locally, and a useful contrast to
// the paper's offloading approach (the "solve locally, ship the centers"
// strawman of §1 that motivates summaries in the first place).
#pragma once

#include "kmeans/lloyd.hpp"

namespace ekm {

struct MiniBatchOptions {
  std::size_t k = 2;
  std::size_t batch_size = 64;
  int iterations = 200;       ///< number of mini-batch steps
  std::uint64_t seed = 42;
};

/// Streams random mini-batches through the per-center learning-rate
/// update c <- c + (w/W_c)(x - c). Supports weighted datasets (weights
/// scale both the sampling and the update). Returns the final centers
/// with exact cost/assignment computed once at the end.
[[nodiscard]] KMeansResult kmeans_minibatch(const Dataset& data,
                                            const MiniBatchOptions& opts);

}  // namespace ekm
