// Distributed sensitivity sampling (disSS) — [Balcan–Ehrlich–Liang,
// NIPS'13]; §5.1 of the paper, step 2 of BKLW.
//
// Protocol (matching the paper's four-step description):
//  1. each source computes a local bicriteria solution X_i and uplinks
//     cost(P_i, X_i) — one scalar (footnote 1: negligible);
//  2. the server allocates the global sample budget proportionally to the
//     reported costs and downlinks s_i;
//  3. each source draws s_i points with probability ∝ cost({p}, X_i) and
//     uplinks S_i ∪ X_i with weights matching the per-cluster masses;
//  4. the union (∪_i (S_i ∪ X_i), 0, w) is the coreset at the server.
#pragma once

#include <span>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "cr/coreset.hpp"
#include "data/dataset.hpp"
#include "kmeans/bicriteria.hpp"
#include "net/channel.hpp"
#include "qt/policy.hpp"

namespace ekm {

struct DisSsOptions {
  std::size_t k = 2;
  std::size_t total_samples = 200;  ///< the paper's global budget s
  BicriteriaOptions bicriteria{};
  /// Billing width for uplinked coreset points (12 + s bits when a
  /// quantizer with s significand bits runs before transmission).
  int significant_bits = 52;
  /// Graceful degradation (qt/policy.hpp): with kAdaptive, a site about
  /// to uplink its coreset under a finite round deadline narrows the
  /// frame below `significant_bits` when the full-width airtime cannot
  /// fit the remaining round budget — the frame shrinks instead of
  /// expiring. kFixed (the default) always ships the configured width.
  QuantPolicy quant = QuantPolicy::kFixed;

  /// Deadline budget per collection round (the cost round and the
  /// summary round each get one). A source that misses the cost round
  /// is NAK'd out of the whole construction; a source that reported a
  /// cost but misses the summary round loses only its sample mass —
  /// the budget and weights are normalized over the cost-round
  /// responders either way. Infinity = wait for everyone.
  double round_deadline_s = kNoDeadline;
  /// Minimum sources that must make each round; fewer throws. Counted
  /// over distinct sites — the reallocation wave neither adds to nor
  /// subtracts from a round's responder count.
  std::size_t min_responders = 1;
  /// Deadline-aware budget reallocation (step 4b): when a source that
  /// was allocated samples misses the summary round, re-split its
  /// allocation ∝ cost among the responders in a second within-round
  /// wave (each extends its sample and uplinks a replacement coreset
  /// under the same round cutoff). The union then carries ≈ the full
  /// `total_samples` budget instead of shrinking with every dropped
  /// site; per-shard mass is unchanged either way. A round with no
  /// misses never opens a wave, so fault-free runs are bitwise
  /// identical with this on or off.
  bool reallocate = true;
  /// Fraction of a *finite* round budget reserved for the wave: the
  /// server collects first-wave summaries by `deadline − reserve ×
  /// budget` and spends the reserve on the reallocation wave. A wave
  /// opened at the round cutoff could never complete — the server
  /// only learns who missed when the deadline passes — so reallocation
  /// under a finite deadline necessarily trades first-wave waiting
  /// time for budget conservation (a site that would have arrived
  /// inside the reserve window is dropped and its budget re-split).
  /// 0 (the default) schedules no reserve: finite-deadline rounds then
  /// collect at the full deadline, bit-identical to PR 3, and skip the
  /// wave (it could never deliver). Ignored when the deadline is
  /// infinite: there the server learns of a miss the moment the
  /// sender gives up, and the wave is unbounded.
  double realloc_reserve = 0.0;
  /// Cross-round pipelining (RoundPolicy::pipeline): the summary
  /// round's open barrier depends only on the cost round's *committed*
  /// budget-split barrier, and each site's sample task on its own
  /// allocation broadcast — so on a time-aware fabric the summary
  /// round opens (and its downlink allocations ride) while the cost
  /// round's stragglers still resolve under their own RoundContext.
  /// Task creation order is unchanged, so runs that never miss are
  /// bitwise identical with this on or off.
  bool pipeline = false;
};

/// Runs disSS over `parts` through `net`; returns the server-side coreset
/// (no Δ, no basis — BKLW attaches the basis semantics). Source-side work
/// accumulates into `device_work`. Source i uses RNG stream i of `seed`.
[[nodiscard]] Coreset disss(std::span<const Dataset> parts,
                            const DisSsOptions& opts, Fabric& net,
                            Stopwatch& device_work, std::uint64_t seed);

/// Heuristic global sample budget mirroring Theorem 5.2's
/// O(ε⁻⁴(kd' + log 1/δ) + mk log(mk/δ)) at laptop-scale constants.
[[nodiscard]] std::size_t disss_sample_size(std::size_t k, double epsilon,
                                            double delta, std::size_t m,
                                            std::size_t n);

}  // namespace ekm
