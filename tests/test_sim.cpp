// Tests for src/sim: the discrete-event runtime's contract with the
// synchronous Network (fault-free ledger/center parity), the
// determinism rules of docs/simulation.md (same seed + any EKM_THREADS
// → identical event order and metrics), fault accounting
// (drop/retransmit billing), scenario parsing, and the streaming
// deployment path.
#include <gtest/gtest.h>

#include <tuple>
#include <utility>

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "data/generators.hpp"
#include "distributed/bklw.hpp"
#include "net/summary_codec.hpp"
#include "sim/coordinator.hpp"
#include "sim/event_queue.hpp"
#include "sim/round_policy.hpp"
#include "sim/scenario.hpp"
#include "sim/sim_network.hpp"

namespace ekm {
namespace {

std::vector<Dataset> make_parts(std::size_t m, std::size_t n, std::size_t d,
                                std::uint64_t seed) {
  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = d;
  spec.k = 4;
  Rng rng = make_rng(seed, 0xdadaULL);
  const Dataset data = make_gaussian_mixture(spec, rng);
  Rng part_rng = make_rng(seed, 0x9a87ULL);
  return partition_random(data, m, part_rng);
}

PipelineConfig base_config(std::uint64_t seed = 11) {
  PipelineConfig cfg;
  cfg.k = 3;
  cfg.epsilon = 0.3;
  cfg.seed = seed;
  cfg.coreset_size = 200;
  cfg.pca_dim = 8;
  return cfg;
}

TEST(EventQueue, PopsByTimeThenPushOrder) {
  EventQueue q;
  q.push({2.0, 0, SimEventType::kDeliver, 0, true, 0, 10});
  q.push({1.0, 0, SimEventType::kSendStart, 1, true, 0, 10});
  q.push({1.0, 0, SimEventType::kDrop, 2, false, 0, 10});
  ASSERT_EQ(q.size(), 3u);
  // Time order first; the two t=1 events tie-break by push order.
  SimEvent a = q.pop();
  EXPECT_EQ(a.site, 1u);
  EXPECT_EQ(a.seq, 1u);
  SimEvent b = q.pop();
  EXPECT_EQ(b.site, 2u);
  SimEvent c = q.pop();
  EXPECT_EQ(c.site, 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW((void)q.pop(), precondition_error);
}

TEST(Scenario, PresetsExistAndParse) {
  for (const std::string& name : sim_scenario_names()) {
    const auto preset = sim_scenario_preset(name);
    ASSERT_TRUE(preset.has_value()) << name;
    EXPECT_EQ(preset->name, name);
    const SimScenario parsed = parse_scenario(name);
    EXPECT_EQ(parsed.name, name);
  }
  EXPECT_FALSE(sim_scenario_preset("no-such-scenario").has_value());
}

TEST(Scenario, ParserRejectsMalformedValues) {
  // Trailing garbage and empty values are typos, not numbers; the
  // error names the offending key.
  EXPECT_THROW((void)parse_scenario("loss=0.1x"), precondition_error);
  EXPECT_THROW((void)parse_scenario("loss="), precondition_error);
  EXPECT_THROW((void)parse_scenario("seed="), precondition_error);
  EXPECT_THROW((void)parse_scenario("seed=12z"), precondition_error);
  // Integers must be integers — retries=2.5 used to truncate silently.
  EXPECT_THROW((void)parse_scenario("retries=2.5"), precondition_error);
  EXPECT_THROW((void)parse_scenario("min-responders=1.5"), precondition_error);
  EXPECT_THROW((void)parse_scenario("min-responders=0"), precondition_error);
  // Range checks, including the non-finite values strtod accepts.
  EXPECT_THROW((void)parse_scenario("deadline=0"), precondition_error);
  EXPECT_THROW((void)parse_scenario("deadline=-1"), precondition_error);
  EXPECT_THROW((void)parse_scenario("deadline=nan"), precondition_error);
  EXPECT_THROW((void)parse_scenario("outage=inf"), precondition_error);
  EXPECT_THROW((void)parse_scenario("sps=nan"), precondition_error);
  try {
    (void)parse_scenario("lora-field,loss=0.1x");
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("'loss'"), std::string::npos)
        << e.what();
  }
}

TEST(Scenario, ParserHandlesDeadlineAndSiteOverrides) {
  const SimScenario s = parse_scenario(
      "radio=wifi,deadline=2.5,min-responders=3,"
      "site1.radio=lora,site1.loss=0.5,site0.speed=0.25,"
      "site0.bandwidth=1000,site2.dropout=0.75");
  EXPECT_TRUE(s.round.active());
  EXPECT_DOUBLE_EQ(s.round.deadline_s, 2.5);
  EXPECT_EQ(s.round.min_responders, 3u);
  ASSERT_EQ(s.site_overrides.size(), 5u);
  EXPECT_EQ(s.site_overrides[0].site, 1u);
  ASSERT_TRUE(s.site_overrides[0].radio.has_value());
  EXPECT_EQ(s.site_overrides[0].radio->name, "LoRa SF7");
  EXPECT_EQ(s.site_overrides[2].site, 0u);
  EXPECT_DOUBLE_EQ(s.site_overrides[2].compute_speed.value(), 0.25);

  // "inf" explicitly turns deadline rounds back off.
  EXPECT_FALSE(parse_scenario("deadline-fleet,deadline=inf").round.active());
  EXPECT_TRUE(parse_scenario("deadline-fleet").round.active());
  // hetero-mesh carries a mixed radio cycle; an explicit fleet-wide
  // radio= override replaces it instead of being silently ignored.
  EXPECT_EQ(parse_scenario("hetero-mesh").radio_cycle.size(), 3u);
  const SimScenario homog = parse_scenario("hetero-mesh,radio=5g");
  EXPECT_TRUE(homog.radio_cycle.empty());
  EXPECT_EQ(homog.radio.name, "5G sub-6");

  // Malformed per-site keys fail loudly.
  EXPECT_THROW((void)parse_scenario("site1.frob=1"), precondition_error);
  EXPECT_THROW((void)parse_scenario("sitex.loss=0.1"), precondition_error);
  EXPECT_THROW((void)parse_scenario("site1.loss="), precondition_error);
  EXPECT_THROW((void)parse_scenario("site1.speed=0"), precondition_error);
  EXPECT_THROW((void)parse_scenario("site.loss=0.1"), precondition_error);
}

TEST(Scenario, SiteOverridesShapeTheFleet) {
  const SimScenario s = parse_scenario(
      "radio=wifi,loss=0.1,site1.radio=lora,site1.loss=0.5,"
      "site0.speed=0.25,site0.bandwidth=1000");
  SimNetwork net(3, s);
  EXPECT_EQ(net.site(0).radio.name, "Wi-Fi 802.11n");
  EXPECT_DOUBLE_EQ(net.site(0).radio.bandwidth_bps, 1000.0);
  EXPECT_DOUBLE_EQ(net.site(0).compute_speed, 0.25);
  EXPECT_DOUBLE_EQ(net.site(0).loss_rate, 0.1);  // fleet default
  EXPECT_EQ(net.site(1).radio.name, "LoRa SF7");
  EXPECT_DOUBLE_EQ(net.site(1).loss_rate, 0.5);
  EXPECT_DOUBLE_EQ(net.site(2).loss_rate, 0.1);
  EXPECT_FALSE(s.fault_free());

  // An override naming a site beyond the fleet is a configuration
  // error, not a no-op — a silently inert override used to hide
  // fleet-size typos. The error names the offending key.
  const SimScenario oob = parse_scenario("radio=wifi,site9.loss=0.9");
  try {
    SimNetwork bad(3, oob);
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("site9.loss"), std::string::npos)
        << e.what();
  }

  // hetero-mesh assigns radios round-robin from the cycle.
  SimNetwork hetero(4, parse_scenario("hetero-mesh"));
  EXPECT_EQ(hetero.site(0).radio.name, "Wi-Fi 802.11n");
  EXPECT_EQ(hetero.site(1).radio.name, "BLE 1M");
  EXPECT_EQ(hetero.site(2).radio.name, "LoRa SF7");
  EXPECT_EQ(hetero.site(3).radio.name, "Wi-Fi 802.11n");
}

TEST(Scenario, ParserAppliesOverrides) {
  const SimScenario s = parse_scenario("lora-field,loss=0.5,retries=3,skew=4");
  EXPECT_EQ(s.radio.name, "LoRa SF7");
  EXPECT_DOUBLE_EQ(s.loss_rate, 0.5);
  EXPECT_EQ(s.max_retries, 3);
  EXPECT_DOUBLE_EQ(s.site_speed_skew, 4.0);
  // Preset fields not overridden survive.
  EXPECT_DOUBLE_EQ(s.jitter_frac, 0.2);

  const SimScenario custom = parse_scenario("radio=ble,dropout=0.25");
  EXPECT_EQ(custom.name, "custom");
  EXPECT_EQ(custom.radio.name, "BLE 1M");
  EXPECT_DOUBLE_EQ(custom.dropout_rate, 0.25);

  EXPECT_THROW((void)parse_scenario("no-such-scenario"), precondition_error);
  EXPECT_THROW((void)parse_scenario("loss=nope"), precondition_error);
  EXPECT_THROW((void)parse_scenario("frobnicate=1"), precondition_error);
  EXPECT_THROW((void)parse_scenario("radio=zigbee"), precondition_error);
  EXPECT_THROW((void)parse_scenario("loss=0.1,lora-field"), precondition_error);
}

TEST(Sim, ZeroFaultMatchesSynchronousNetwork) {
  const auto parts = make_parts(5, 1500, 24, 11);
  const PipelineConfig cfg = base_config();
  const Coordinator coord(parse_scenario("ideal"));
  ASSERT_TRUE(coord.scenario().fault_free());
  ASSERT_FALSE(parse_scenario("lossy-mesh").fault_free());
  for (const PipelineKind kind :
       {PipelineKind::kNoReduction, PipelineKind::kBklw,
        PipelineKind::kJlBklw}) {
    const PipelineResult sync = run_distributed_pipeline(kind, parts, cfg);
    const SimReport sim = coord.run(kind, parts, cfg);
    // The paper's ledgers must match bit for bit...
    EXPECT_EQ(sim.result.uplink, sync.uplink) << pipeline_name(kind);
    EXPECT_EQ(sim.result.downlink, sync.downlink) << pipeline_name(kind);
    // ...and so must the model the server ends up with.
    EXPECT_EQ(sim.result.centers, sync.centers) << pipeline_name(kind);
    EXPECT_EQ(sim.result.summary_points, sync.summary_points);
    // Fault-free still takes time: radios are finite.
    EXPECT_GT(sim.completion_seconds, 0.0);
    EXPECT_EQ(sim.uplink_stats.drops, 0u);
    EXPECT_EQ(sim.uplink_stats.retransmit_bits, 0u);
    EXPECT_EQ(sim.uplink_stats.attempts, sim.result.uplink.messages);
  }
}

TEST(Sim, EventOrderDeterministicAcrossThreadCounts) {
  const auto parts = make_parts(4, 1200, 16, 23);
  const PipelineConfig cfg = base_config(23);
  const Coordinator coord(parse_scenario("lossy-mesh,seed=23"));

  set_parallel_threads(1);
  const SimReport one = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(8);
  const SimReport eight = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(0);

  ASSERT_EQ(one.event_log.size(), eight.event_log.size());
  for (std::size_t i = 0; i < one.event_log.size(); ++i) {
    EXPECT_EQ(one.event_log[i], eight.event_log[i]) << "event " << i;
  }
  EXPECT_EQ(one.completion_seconds, eight.completion_seconds);
  EXPECT_EQ(one.energy_joules, eight.energy_joules);
  EXPECT_EQ(one.result.uplink, eight.result.uplink);
  EXPECT_EQ(one.result.centers, eight.result.centers);

  // The log is a valid trace: times never rewind.
  for (std::size_t i = 1; i < one.event_log.size(); ++i) {
    EXPECT_GE(one.event_log[i].time, one.event_log[i - 1].time);
  }
}

TEST(Sim, DropRetransmitLedgerAccounting) {
  const auto parts = make_parts(4, 1000, 16, 31);
  const PipelineConfig cfg = base_config(31);
  const Coordinator ideal(parse_scenario("ideal"));
  const Coordinator lossy(parse_scenario("radio=wifi,loss=0.5,retries=16"));

  const SimReport clean = ideal.run(PipelineKind::kBklw, parts, cfg);
  const SimReport faulty = lossy.run(PipelineKind::kBklw, parts, cfg);

  // Losses never corrupt the application layer: same goodput ledger,
  // same centers.
  EXPECT_EQ(faulty.result.uplink, clean.result.uplink);
  EXPECT_EQ(faulty.result.centers, clean.result.centers);

  // At 50% loss over dozens of frames, drops are certain; each drop is
  // one retransmission billed once at the frame's wire size.
  const LinkStats up = faulty.uplink_stats;
  const LinkStats down = faulty.downlink_stats;
  EXPECT_GT(up.drops + down.drops, 0u);
  EXPECT_EQ(up.attempts, faulty.result.uplink.messages + up.drops);
  EXPECT_EQ(down.attempts, faulty.result.downlink.messages + down.drops);
  EXPECT_GT(up.retransmit_bits + down.retransmit_bits, 0u);

  // Retries cost the radio: more airtime, more energy, more time.
  EXPECT_GT(up.airtime_s + down.airtime_s,
            clean.uplink_stats.airtime_s + clean.downlink_stats.airtime_s);
  EXPECT_GT(faulty.energy_joules, clean.energy_joules);
  EXPECT_GT(faulty.completion_seconds, clean.completion_seconds);

  // The trace shows the drops and redeliveries.
  std::size_t drop_events = 0, deliver_events = 0;
  for (const SimEvent& ev : faulty.event_log) {
    drop_events += ev.type == SimEventType::kDrop;
    deliver_events += ev.type == SimEventType::kDeliver;
  }
  EXPECT_EQ(drop_events, up.drops + down.drops);
  EXPECT_EQ(deliver_events,
            faulty.result.uplink.messages + faulty.result.downlink.messages);
}

TEST(Sim, StragglersAndSkewSlowCompletionNotLedgers) {
  const auto parts = make_parts(6, 1200, 16, 41);
  const PipelineConfig cfg = base_config(41);
  // Big per-scalar cost so compute dominates the radio.
  const Coordinator uniform(parse_scenario("radio=5g,sps=1e-5"));
  const Coordinator skewed(
      parse_scenario("radio=5g,sps=1e-5,stragglers=0.5,slowdown=16"));

  const SimReport fast = uniform.run(PipelineKind::kBklw, parts, cfg);
  const SimReport slow = skewed.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_GT(slow.completion_seconds, fast.completion_seconds);
  EXPECT_EQ(slow.result.uplink, fast.result.uplink);
  EXPECT_EQ(slow.result.centers, fast.result.centers);
}

TEST(Sim, DropoutWindowsAppearInTraceAndClock) {
  const auto parts = make_parts(4, 800, 8, 51);
  const PipelineConfig cfg = base_config(51);
  const Coordinator coord(
      parse_scenario("radio=wifi,dropout=0.6,outage=7.5,seed=51"));
  const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);
  std::size_t outages = 0;
  for (const SimEvent& ev : report.event_log) {
    outages += ev.type == SimEventType::kOutage;
  }
  EXPECT_GT(outages, 0u);
  EXPECT_EQ(report.outages, outages);
  // Each outage stalls a site for 7.5 virtual seconds.
  EXPECT_GT(report.completion_seconds, 7.5);
}

TEST(Sim, HugeRetryBudgetStillInjectsLoss) {
  // Regression: the retry policy must not truncate through the 16-bit
  // event attempt tag — retries=65536 once wrapped to 0 and silently
  // disabled loss.
  const auto parts = make_parts(3, 600, 8, 71);
  const PipelineConfig cfg = base_config(71);
  const Coordinator coord(
      parse_scenario("radio=wifi,loss=0.5,retries=65536,seed=71"));
  const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_GT(report.uplink_stats.drops + report.downlink_stats.drops, 0u);
  EXPECT_GT(report.uplink_stats.retransmit_bits +
                report.downlink_stats.retransmit_bits,
            0u);
}

TEST(Sim, StreamingDeploymentOverSimulatedLinks) {
  const std::size_t m = 3, rounds = 4;
  const auto parts = make_parts(m, 1600, 12, 61);
  PipelineConfig cfg = base_config(61);
  StreamingCoresetOptions sopts;
  sopts.k = cfg.k;
  sopts.leaf_size = 128;
  sopts.coreset_size = 64;
  sopts.seed = 61;
  const Coordinator coord(parse_scenario("ble-swarm,seed=61"));
  const SimReport report = coord.run_streaming(parts, sopts, cfg, rounds);
  EXPECT_EQ(report.pipeline, "streaming");
  // One summary frame per site per round.
  EXPECT_EQ(report.result.uplink.messages, m * rounds);
  EXPECT_EQ(report.result.centers.rows(), cfg.k);
  EXPECT_GT(report.result.summary_points, 0u);
  EXPECT_GT(report.completion_seconds, 0.0);

  // Deterministic across thread counts, like everything else.
  set_parallel_threads(1);
  const SimReport again = coord.run_streaming(parts, sopts, cfg, rounds);
  set_parallel_threads(0);
  EXPECT_EQ(again.result.centers, report.result.centers);
  EXPECT_EQ(again.completion_seconds, report.completion_seconds);
}

TEST(Sim, StreamRoundUplinkOverSynchronousChannel) {
  // The streaming round helper works over any Port — here the plain
  // synchronous Channel.
  Rng rng = make_rng(71);
  const Dataset batch(Matrix::gaussian(300, 6, rng));
  StreamingCoresetOptions sopts;
  sopts.k = 2;
  sopts.leaf_size = 64;
  sopts.coreset_size = 32;
  StreamingCoreset stream(sopts);
  Channel ch;

  // A round before any data ships an empty frame to keep the server's
  // receive loop matched.
  const Coreset empty = stream_round_uplink(stream, Dataset{}, ch);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(decode_coreset(ch.receive()).size(), 0u);

  const Coreset sent = stream_round_uplink(stream, batch, ch, 8);
  EXPECT_GT(sent.size(), 0u);
  const Coreset received = decode_coreset(ch.receive());
  EXPECT_EQ(received.points.points(), sent.points.points());
  // QT billing applies to the summary's point coordinates.
  EXPECT_EQ(ch.ledger().messages, 2u);
}

TEST(Sim, ReceiveOnIdleNetworkThrows) {
  SimNetwork net(2, parse_scenario("ideal"));
  EXPECT_THROW((void)net.uplink(0).receive(), precondition_error);
  EXPECT_THROW((void)net.uplink(2), precondition_error);
}

// --- deadline rounds (RoundPolicy) ----------------------------------------

TEST(Deadline, ZeroFaultDeadlineRunsMatchSynchronousNetwork) {
  // A generous finite deadline over a fault-free scenario exercises the
  // whole open_round/receive_by machinery, and still must reproduce the
  // synchronous Network — and the unbounded simulated run — bit for bit.
  const auto parts = make_parts(5, 1500, 24, 11);
  const PipelineConfig cfg = base_config();
  const Coordinator bounded(parse_scenario("ideal,deadline=1e6"));
  const Coordinator unbounded(parse_scenario("ideal"));
  for (const PipelineKind kind :
       {PipelineKind::kNoReduction, PipelineKind::kBklw,
        PipelineKind::kJlBklw}) {
    const PipelineResult sync = run_distributed_pipeline(kind, parts, cfg);
    const SimReport dl = bounded.run(kind, parts, cfg);
    const SimReport free_run = unbounded.run(kind, parts, cfg);
    EXPECT_EQ(dl.result.uplink, sync.uplink) << pipeline_name(kind);
    EXPECT_EQ(dl.result.downlink, sync.downlink) << pipeline_name(kind);
    EXPECT_EQ(dl.result.centers, sync.centers) << pipeline_name(kind);
    EXPECT_EQ(dl.deadline_misses, 0u);
    EXPECT_EQ(dl.sites_dropped, 0u);
    EXPECT_GT(dl.rounds, 0u);
    // The deadline machinery must not perturb the virtual clocks either.
    EXPECT_EQ(dl.completion_seconds, free_run.completion_seconds);
    EXPECT_EQ(dl.energy_joules, free_run.energy_joules);
    ASSERT_EQ(dl.event_log.size(), free_run.event_log.size());
  }
}

TEST(Deadline, DropsExactlyTheForcedStraggler) {
  // Site 2 computes 50x slower than the rest of a compute-bound fleet;
  // a 2-second round budget drops it and only it.
  const std::size_t m = 4;
  const auto parts = make_parts(m, 1200, 16, 77);
  const PipelineConfig cfg = base_config(77);
  const Coordinator coord(parse_scenario(
      "radio=5g,sps=1e-3,deadline=2,site2.speed=0.02,seed=77"));
  const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);

  EXPECT_GT(report.deadline_misses, 0u);
  EXPECT_EQ(report.sites_dropped, 1u);
  // Every expiry in the trace belongs to site 2's uplink.
  std::size_t expire_events = 0;
  for (const SimEvent& ev : report.event_log) {
    if (ev.type != SimEventType::kExpire) continue;
    expire_events += 1;
    EXPECT_EQ(ev.site, 2u);
    EXPECT_TRUE(ev.uplink);
  }
  EXPECT_GT(expire_events, 0u);
  // The partial aggregate is still a full model...
  EXPECT_EQ(report.result.centers.rows(), cfg.k);
  // ...and the server finished without waiting for the straggler, whose
  // own clock dominates the quiescence time.
  EXPECT_LT(report.server_completion_seconds, report.completion_seconds);

  // The same fleet with no deadline waits for everyone.
  const Coordinator patient(
      parse_scenario("radio=5g,sps=1e-3,site2.speed=0.02,seed=77"));
  const SimReport full = patient.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_EQ(full.deadline_misses, 0u);
  EXPECT_LT(report.server_completion_seconds,
            full.server_completion_seconds);
}

TEST(Deadline, PartialCoresetWeightsSumOverResponders) {
  const std::size_t m = 4;
  const auto parts = make_parts(m, 1600, 12, 91);
  SimNetwork net(m, parse_scenario(
      "radio=5g,sps=1e-3,deadline=2,site1.speed=0.02,seed=91"));
  Stopwatch device_work;
  BklwOptions opts;
  opts.k = 3;
  opts.epsilon = 0.3;
  opts.intrinsic_dim = 6;
  opts.total_samples = 150;
  opts.round_deadline_s = 2.0;
  const Coreset cs = bklw_coreset(parts, opts, net, device_work, 91);
  (void)net.finish();  // also asserts the ledger invariants

  // Site 1 must have missed at least one round; everyone else none.
  EXPECT_GT(net.uplink_view(1).stats().missed, 0u);
  double responder_mass = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    if (i == 1) continue;
    EXPECT_EQ(net.uplink_view(i).stats().missed, 0u) << "site " << i;
    for (std::size_t p = 0; p < parts[i].size(); ++p) {
      responder_mass += parts[i].weight(p);
    }
  }
  // Each local coreset's weights sum to exactly its shard's mass, so
  // the union's mass is the responders' mass — no more, no less.
  double coreset_mass = 0.0;
  for (std::size_t p = 0; p < cs.size(); ++p) {
    coreset_mass += cs.points.weight(p);
  }
  EXPECT_NEAR(coreset_mass, responder_mass, 1e-6 * responder_mass);

  // The full-responder construction covers the whole fleet's mass.
  SimNetwork full_net(m, parse_scenario("radio=5g,seed=91"));
  Stopwatch full_work;
  BklwOptions full_opts = opts;
  full_opts.round_deadline_s = kNoDeadline;
  const Coreset full = bklw_coreset(parts, full_opts, full_net, full_work, 91);
  double full_mass = 0.0, fleet_mass = 0.0;
  for (std::size_t p = 0; p < full.size(); ++p) {
    full_mass += full.points.weight(p);
  }
  for (const Dataset& part : parts) {
    for (std::size_t p = 0; p < part.size(); ++p) fleet_mass += part.weight(p);
  }
  EXPECT_NEAR(full_mass, fleet_mass, 1e-6 * fleet_mass);
  EXPECT_GT(fleet_mass, responder_mass);
}

TEST(Deadline, AvailabilityFloorThrows) {
  const std::size_t m = 3;
  const auto parts = make_parts(m, 900, 8, 13);
  PipelineConfig cfg = base_config(13);
  // Two of three sites straggle past the budget; requiring all three
  // responders must throw instead of aggregating a sliver.
  const Coordinator coord(parse_scenario(
      "radio=5g,sps=1e-3,deadline=2,min-responders=3,"
      "site0.speed=0.02,site2.speed=0.02,seed=13"));
  try {
    (void)coord.run(PipelineKind::kBklw, parts, cfg);
    FAIL() << "expected invariant_error";
  } catch (const invariant_error& e) {
    // The message carries the context an operator needs to act on a
    // sweep log: which collection round, and the responder shortfall.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("collection round #"), std::string::npos) << msg;
    EXPECT_NE(msg.find("of the required 3"), std::string::npos) << msg;
  }
}

TEST(Deadline, EventOrderDeterministicAcrossThreadCounts) {
  // The determinism contract extends to deadline rounds: faults, drops
  // and partial aggregation included.
  const auto parts = make_parts(4, 1200, 16, 29);
  const PipelineConfig cfg = base_config(29);
  const Coordinator coord(parse_scenario(
      "lossy-mesh,stragglers=0.25,slowdown=64,sps=1e-5,deadline=1,seed=29"));

  set_parallel_threads(1);
  const SimReport one = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(8);
  const SimReport eight = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(0);

  ASSERT_EQ(one.event_log.size(), eight.event_log.size());
  for (std::size_t i = 0; i < one.event_log.size(); ++i) {
    EXPECT_EQ(one.event_log[i], eight.event_log[i]) << "event " << i;
  }
  EXPECT_EQ(one.deadline_misses, eight.deadline_misses);
  EXPECT_EQ(one.sites_dropped, eight.sites_dropped);
  EXPECT_EQ(one.completion_seconds, eight.completion_seconds);
  EXPECT_EQ(one.server_completion_seconds, eight.server_completion_seconds);
  EXPECT_EQ(one.result.centers, eight.result.centers);
}

TEST(Deadline, StreamingKeepsStaleSummariesForLateSites) {
  const std::size_t m = 3, rounds = 4;
  const auto parts = make_parts(m, 1500, 12, 37);
  PipelineConfig cfg = base_config(37);
  StreamingCoresetOptions sopts;
  sopts.k = cfg.k;
  sopts.leaf_size = 128;
  sopts.coreset_size = 64;
  sopts.seed = 37;
  // Site 0 cannot finish a summary inside any round's budget; the
  // deployment keeps serving models from the other sites' summaries.
  const Coordinator coord(parse_scenario(
      "radio=wifi,sps=1e-4,deadline=0.5,site0.speed=0.001,seed=37"));
  const SimReport report = coord.run_streaming(parts, sopts, cfg, rounds);
  EXPECT_EQ(report.result.uplink.messages, m * rounds);  // sends still billed
  EXPECT_EQ(report.deadline_misses, rounds);  // site 0 missed every round
  EXPECT_EQ(report.sites_dropped, 1u);
  EXPECT_EQ(report.result.centers.rows(), cfg.k);
  EXPECT_GT(report.result.summary_points, 0u);
}

// --- retry-budget exhaustion (first-class frame drops) --------------------

TEST(Exhaustion, SpentRetryBudgetIsAFirstClassDrop) {
  // loss=0.9 with a single retry: most frames burn both attempts and
  // expire. The ledgers must balance exactly: every attempt delivered
  // or dropped, every frame delivered or expired, and the trace agrees.
  SimNetwork net(2, parse_scenario("radio=wifi,loss=0.9,retries=1,seed=5"));
  Port& up = net.uplink(0);
  const std::size_t frames = 50;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < frames; ++i) {
    Message msg;
    msg.payload.resize(64);
    msg.wire_bits = 512;
    msg.scalars = 8;
    up.send(std::move(msg));
    delivered += up.receive_by(kNoRound).has_value();
  }
  (void)net.finish();  // asserts the per-link ledger invariants

  const LinkStats& stats = net.uplink_view(0).stats();
  const TrafficLedger& ledger = net.uplink_view(0).ledger();
  EXPECT_EQ(ledger.messages, frames);
  EXPECT_GT(stats.expired, 0u);  // p(no expiry in 50 frames) ~ 1e-4
  EXPECT_LT(delivered, frames);
  EXPECT_EQ(delivered + stats.expired, frames);
  EXPECT_EQ(stats.missed, stats.expired);
  // Attempt-level balance: attempts = deliveries + drops, and expired
  // frames burned the full budget (2 attempts each).
  EXPECT_EQ(stats.attempts, delivered + stats.drops);
  EXPECT_EQ(stats.retransmit_bits, stats.drops * 512);

  std::size_t deliver_events = 0, drop_events = 0, expire_events = 0;
  for (const SimEvent& ev : net.event_log()) {
    deliver_events += ev.type == SimEventType::kDeliver;
    drop_events += ev.type == SimEventType::kDrop;
    expire_events += ev.type == SimEventType::kExpire;
  }
  EXPECT_EQ(deliver_events, delivered);
  EXPECT_EQ(drop_events, stats.drops);
  EXPECT_EQ(expire_events, stats.expired);
}

TEST(Exhaustion, BlockingReceiveOnExpiredFrameThrowsLoudly) {
  // A protocol that insists on the lossless contract while frames can
  // expire is a configuration bug; it must fail fast, not hang.
  SimNetwork net(1, parse_scenario("radio=wifi,loss=0.999,retries=0,seed=3"));
  Port& up = net.uplink(0);
  for (int i = 0; i < 20; ++i) {
    Message msg;
    msg.wire_bits = 256;
    msg.scalars = 4;
    up.send(std::move(msg));
  }
  // p(all 20 frames dodge a 99.9% single-attempt loss) ~ 1e-60.
  EXPECT_THROW(
      {
        for (int i = 0; i < 20; ++i) (void)up.receive();
      },
      invariant_error);
}

TEST(Exhaustion, ProtocolsSurviveExpiredFramesWithoutDeadlines) {
  // Even with no round deadline, a spent retry budget drops sites from
  // rounds instead of wedging the protocol — receive_by(kNoRound)
  // reports the expiry and the aggregation is partial. refine_iters
  // additionally regression-tests frame alignment: a site knocked out
  // by a lost basis broadcast must still drain its downlink FIFO, or
  // the refine round would decode the stale allocation as centers.
  const auto parts = make_parts(5, 1000, 12, 47);
  PipelineConfig cfg = base_config(47);
  cfg.refine_iters = 2;
  // ~12% of frames burn all three attempts and expire — enough for
  // several expiries per run without starving a whole round.
  const Coordinator coord(
      parse_scenario("radio=wifi,loss=0.5,retries=2,seed=47"));
  const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_GT(report.uplink_stats.expired + report.downlink_stats.expired, 0u);
  EXPECT_GT(report.deadline_misses, 0u);
  EXPECT_GT(report.sites_dropped, 0u);
  EXPECT_EQ(report.result.centers.rows(), cfg.k);
}

// --- retry policies (RetryPolicy) -----------------------------------------

TEST(Scenario, ParserHandlesRetryReallocAndOverflow) {
  const SimScenario s = parse_scenario(
      "radio=wifi,retry=backoff,backoff-base=3,backoff-cap=8,"
      "backoff-jitter=0.25,realloc=off,site2.retry=giveup");
  EXPECT_EQ(s.retry.strategy, RetryStrategy::kBackoff);
  EXPECT_DOUBLE_EQ(s.retry.backoff_base, 3.0);
  EXPECT_DOUBLE_EQ(s.retry.backoff_cap, 8.0);
  EXPECT_DOUBLE_EQ(s.retry.backoff_jitter, 0.25);
  EXPECT_FALSE(s.round.reallocate);
  ASSERT_EQ(s.site_overrides.size(), 1u);
  EXPECT_EQ(s.site_overrides[0].retry.value(), RetryStrategy::kGiveUp);
  // The fleet default and the per-site override both materialize.
  SimNetwork net(3, s);
  EXPECT_EQ(net.site(0).retry, RetryStrategy::kBackoff);
  EXPECT_EQ(net.site(1).retry, RetryStrategy::kBackoff);
  EXPECT_EQ(net.site(2).retry, RetryStrategy::kGiveUp);
  EXPECT_TRUE(parse_scenario("realloc=on").round.reallocate);
  EXPECT_EQ(parse_scenario("ideal").retry.strategy, RetryStrategy::kFixed);
  // The wave's reserve is part of the round schedule: default 0, the
  // deadline-fleet preset opts in, and the key parses/range-checks.
  EXPECT_DOUBLE_EQ(parse_scenario("ideal").round.realloc_reserve, 0.0);
  EXPECT_DOUBLE_EQ(parse_scenario("deadline-fleet").round.realloc_reserve, 0.5);
  EXPECT_DOUBLE_EQ(parse_scenario("realloc-reserve=0.25").round.realloc_reserve,
                   0.25);
  EXPECT_THROW((void)parse_scenario("realloc-reserve=1"), precondition_error);
  EXPECT_THROW((void)parse_scenario("realloc-reserve=-0.1"),
               precondition_error);

  EXPECT_THROW((void)parse_scenario("retry=sometimes"), precondition_error);
  EXPECT_THROW((void)parse_scenario("realloc=2"), precondition_error);
  EXPECT_THROW((void)parse_scenario("realloc="), precondition_error);
  EXPECT_THROW((void)parse_scenario("backoff-base=0.5"), precondition_error);
  EXPECT_THROW((void)parse_scenario("backoff-jitter=1"), precondition_error);
  EXPECT_THROW((void)parse_scenario("site1.retry=nope"), precondition_error);

  // Overflowing tokens are typos, not infinities (the parse_num ERANGE
  // fix): they throw naming the key, while an explicit "inf" stays
  // valid exactly where infinity means something (deadline).
  EXPECT_THROW((void)parse_scenario("loss=1e999"), precondition_error);
  EXPECT_THROW((void)parse_scenario("deadline=1e999"), precondition_error);
  try {
    (void)parse_scenario("sps=1e999");
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("'sps'"), std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(parse_scenario("deadline-fleet,deadline=inf").round.active());
}

TEST(Retry, FaultFreeStrategiesMatchFixedBitwise) {
  // With no losses a retry policy never acts (and never draws), so
  // backoff and give-up runs must reproduce the fixed-policy run —
  // events, clocks, energy, ledgers, centers — bit for bit.
  const auto parts = make_parts(4, 1200, 16, 19);
  const PipelineConfig cfg = base_config(19);
  const Coordinator fixed(parse_scenario("ideal"));
  const SimReport base = fixed.run(PipelineKind::kBklw, parts, cfg);
  for (const char* spec : {"ideal,retry=backoff", "ideal,retry=giveup"}) {
    const Coordinator coord(parse_scenario(spec));
    const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);
    ASSERT_EQ(report.event_log.size(), base.event_log.size()) << spec;
    for (std::size_t i = 0; i < report.event_log.size(); ++i) {
      EXPECT_EQ(report.event_log[i], base.event_log[i]) << spec << " " << i;
    }
    EXPECT_EQ(report.completion_seconds, base.completion_seconds) << spec;
    EXPECT_EQ(report.energy_joules, base.energy_joules) << spec;
    EXPECT_EQ(report.result.uplink, base.result.uplink) << spec;
    EXPECT_EQ(report.result.centers, base.result.centers) << spec;
  }
}

TEST(Retry, BackoffDelaysRetriesWithoutTouchingGoodput) {
  // backoff-jitter=0 keeps the RNG stream identical to the fixed run,
  // so both nets see the same loss pattern attempt for attempt; only
  // the retransmission timing differs, and only from the second retry
  // of a frame on (backoff factor 2^k vs always 1).
  const auto run = [](const char* spec) {
    SimNetwork net(1, parse_scenario(spec));
    const RoundId round = net.open_round(kNoDeadline);
    Port& up = net.uplink(0);
    std::size_t delivered = 0;
    for (int i = 0; i < 20; ++i) {
      Message msg;
      msg.payload.resize(64);
      msg.wire_bits = 512;
      msg.scalars = 8;
      up.send(std::move(msg));
      delivered += up.receive_by(round).has_value();
    }
    const double completion = net.finish();  // asserts ledger invariants
    return std::tuple(net.uplink_view(0).stats(),
                      net.uplink_view(0).ledger(), delivered, completion);
  };
  const auto [fixed_stats, fixed_ledger, fixed_delivered, fixed_done] =
      run("radio=wifi,loss=0.9,retries=8,seed=6");
  const auto [bo_stats, bo_ledger, bo_delivered, bo_done] =
      run("radio=wifi,loss=0.9,retries=8,retry=backoff,backoff-jitter=0,"
          "seed=6");
  // Same fault pattern, same goodput, same attempt/drop accounting.
  EXPECT_EQ(bo_delivered, fixed_delivered);
  EXPECT_EQ(bo_stats.attempts, fixed_stats.attempts);
  EXPECT_EQ(bo_stats.drops, fixed_stats.drops);
  EXPECT_EQ(bo_stats.expired, fixed_stats.expired);
  EXPECT_EQ(bo_stats.retransmit_bits, fixed_stats.retransmit_bits);
  EXPECT_EQ(bo_ledger, fixed_ledger);
  // At 90% loss over 20 frames some frame certainly burned >= 2
  // retries, and each such retry waits strictly longer under backoff.
  EXPECT_GT(fixed_stats.drops, fixed_stats.attempts - 20);  // multi-drop frames
  EXPECT_GT(bo_done, fixed_done);
}

TEST(Retry, BackoffIsDeterministicAcrossThreadCountsAndLossless) {
  const auto parts = make_parts(4, 1200, 16, 23);
  const PipelineConfig cfg = base_config(23);
  const Coordinator coord(
      parse_scenario("radio=wifi,loss=0.5,retries=16,retry=backoff,seed=23"));

  set_parallel_threads(1);
  const SimReport one = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(8);
  const SimReport eight = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(0);
  ASSERT_EQ(one.event_log.size(), eight.event_log.size());
  for (std::size_t i = 0; i < one.event_log.size(); ++i) {
    EXPECT_EQ(one.event_log[i], eight.event_log[i]) << "event " << i;
  }
  EXPECT_EQ(one.completion_seconds, eight.completion_seconds);
  EXPECT_EQ(one.energy_joules, eight.energy_joules);
  EXPECT_EQ(one.result.centers, eight.result.centers);

  // Without a deadline the app layer stays lossless under backoff too:
  // same goodput and centers as the fixed-policy run of the same fleet.
  const Coordinator fixed(
      parse_scenario("radio=wifi,loss=0.5,retries=16,seed=23"));
  const SimReport base = fixed.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_EQ(one.result.uplink, base.result.uplink);
  EXPECT_EQ(one.result.centers, base.result.centers);
  EXPECT_GT(one.uplink_stats.drops + one.downlink_stats.drops, 0u);
}

TEST(Retry, GiveUpSkipsAttemptsThatCannotMakeTheDeadline) {
  // One site behind a 1 kbps link, a 2-second round, a 1 Mbit frame:
  // the fixed sender keys the radio for ~1000 s of futile airtime (the
  // frame is delivered long after the receiver abandoned it); the
  // give-up sender sees start + airtime > cutoff and never transmits.
  const auto run = [](const char* spec) {
    SimNetwork net(1, parse_scenario(spec));
    const RoundId round = net.open_round(2.0);
    Message msg;
    msg.payload.resize(1 << 17);
    msg.wire_bits = 1'000'000;
    msg.scalars = 4;
    net.uplink(0).send(std::move(msg));
    EXPECT_FALSE(net.uplink(0).receive_by(round).has_value());
    (void)net.finish();  // asserts the attempt/frame ledger invariants
    return std::pair(net.uplink_view(0).stats(), net.energy_joules());
  };
  const auto [fixed_stats, fixed_energy] =
      run("radio=wifi,site0.bandwidth=1000");
  const auto [giveup_stats, giveup_energy] =
      run("radio=wifi,site0.bandwidth=1000,retry=giveup");

  // Fixed: one attempt, delivered late, abandoned by the receiver.
  EXPECT_EQ(fixed_stats.attempts, 1u);
  EXPECT_EQ(fixed_stats.expired, 0u);
  EXPECT_EQ(fixed_stats.missed, 1u);
  EXPECT_GT(fixed_stats.airtime_s, 900.0);
  EXPECT_GT(fixed_energy, 0.0);
  // Give-up: no attempt, frame expired, radio never keyed.
  EXPECT_EQ(giveup_stats.attempts, 0u);
  EXPECT_EQ(giveup_stats.expired, 1u);
  EXPECT_EQ(giveup_stats.missed, 1u);
  EXPECT_EQ(giveup_stats.airtime_s, 0.0);
  EXPECT_EQ(giveup_energy, 0.0);
}

// --- deadline-aware budget reallocation (disSS step 4b) -------------------

TEST(Realloc, WaveRestoresBudgetAndConservesMass) {
  // Site 1 reports its cost in time (one scalar is cheap even at 2% of
  // reference speed) but cannot compute+ship its summary inside the
  // round, so its sample allocation is lost. With reallocation off the
  // union shrinks by that allocation (PR 3); with it on, the server
  // re-splits the lost budget among the responders inside the same
  // round and the union keeps ~ the full budget. Either way every
  // local coreset's weights sum to exactly its shard's mass, so the
  // union's mass is the responders' mass — reallocation buys sample
  // resolution, never phantom mass.
  const std::size_t m = 4;
  const auto parts = make_parts(m, 1600, 12, 91);
  const char* spec = "radio=5g,sps=1e-3,deadline=2,site1.speed=0.02,seed=91";
  BklwOptions opts;
  opts.k = 3;
  opts.epsilon = 0.3;
  opts.intrinsic_dim = 6;
  opts.total_samples = 150;
  opts.round_deadline_s = 2.0;
  opts.realloc_reserve = 0.5;  // schedule the wave's share of the round

  SimNetwork net_off(m, parse_scenario(spec));
  Stopwatch work_off;
  BklwOptions opts_off = opts;
  opts_off.reallocate = false;
  const Coreset off = bklw_coreset(parts, opts_off, net_off, work_off, 91);
  (void)net_off.finish();
  EXPECT_EQ(net_off.subrounds_opened(), 0u);
  EXPECT_GT(net_off.uplink_view(1).stats().missed, 0u);

  SimNetwork net_on(m, parse_scenario(spec));
  Stopwatch work_on;
  const Coreset on = bklw_coreset(parts, opts, net_on, work_on, 91);
  (void)net_on.finish();
  EXPECT_GE(net_on.subrounds_opened(), 1u);
  EXPECT_GT(net_on.uplink_view(1).stats().missed, 0u);

  // Budget conservation: the reallocated union carries strictly more
  // samples than the responder-only union — the lost allocation came
  // back as responder-side resolution.
  EXPECT_GT(on.size(), off.size());

  // Mass conservation: both unions weigh exactly the responders' data.
  double responder_mass = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    if (i == 1) continue;
    for (std::size_t p = 0; p < parts[i].size(); ++p) {
      responder_mass += parts[i].weight(p);
    }
  }
  const auto mass_of = [](const Coreset& cs) {
    double mass = 0.0;
    for (std::size_t p = 0; p < cs.size(); ++p) {
      mass += cs.points.weight(p);
    }
    return mass;
  };
  EXPECT_NEAR(mass_of(off), responder_mass, 1e-6 * responder_mass);
  EXPECT_NEAR(mass_of(on), responder_mass, 1e-6 * responder_mass);
}

TEST(Realloc, NoReserveKeepsFiniteDeadlineRoundsPr3Shaped) {
  // Regression: with no reserve scheduled (the default), default-on
  // reallocation must not change a finite-deadline round at all — the
  // first wave collects at the full round deadline and the wave is
  // skipped (it could never deliver). In particular a fault-free fleet
  // whose summaries land late in the round must NOT be dropped against
  // a shrunken sub-deadline (this exact shape once threw the
  // availability floor with realloc=on while realloc=off succeeded).
  const auto parts = make_parts(4, 1500, 8, 7);
  PipelineConfig cfg = base_config(7);
  const Coordinator on(parse_scenario("radio=5g,sps=4e-3,deadline=6,seed=7"));
  const Coordinator off(
      parse_scenario("radio=5g,sps=4e-3,deadline=6,realloc=off,seed=7"));
  const SimReport a = on.run(PipelineKind::kBklw, parts, cfg);
  const SimReport b = off.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_EQ(a.realloc_waves, 0u);
  EXPECT_EQ(b.realloc_waves, 0u);
  ASSERT_EQ(a.event_log.size(), b.event_log.size());
  for (std::size_t i = 0; i < a.event_log.size(); ++i) {
    EXPECT_EQ(a.event_log[i], b.event_log[i]) << "event " << i;
  }
  EXPECT_EQ(a.result.centers, b.result.centers);
  EXPECT_EQ(a.result.summary_points, b.result.summary_points);
  EXPECT_EQ(a.completion_seconds, b.completion_seconds);
}

TEST(Realloc, FloorCountsDistinctSitesNotWaveFrames) {
  // 3 of 4 sites respond; the wave then collects up to 3 supplemental
  // frames from the same sites. A floor of 3 must hold (3 distinct
  // responders) and a floor of 4 must throw — wave supplements never
  // top the responder count up.
  const std::size_t m = 4;
  const auto parts = make_parts(m, 1600, 12, 91);
  PipelineConfig cfg = base_config(91);
  const char* base_spec =
      "radio=5g,sps=1e-3,deadline=4,realloc-reserve=0.5,"
      "site1.speed=0.02,seed=91,min-responders=";
  const Coordinator ok(parse_scenario(std::string(base_spec) + "3"));
  const SimReport report = ok.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_GE(report.realloc_waves, 1u);
  EXPECT_EQ(report.sites_dropped, 1u);
  const Coordinator strict(parse_scenario(std::string(base_spec) + "4"));
  EXPECT_THROW((void)strict.run(PipelineKind::kBklw, parts, cfg),
               invariant_error);
}

TEST(Realloc, WaveIsDeterministicAcrossThreadCounts) {
  const std::size_t m = 4;
  const auto parts = make_parts(m, 1600, 12, 91);
  const PipelineConfig cfg = base_config(91);
  const Coordinator coord(parse_scenario(
      "radio=5g,sps=1e-3,deadline=4,realloc-reserve=0.5,"
      "site1.speed=0.02,seed=91"));

  set_parallel_threads(1);
  const SimReport one = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(8);
  const SimReport eight = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(0);

  // The wave actually ran, and ran identically at both thread counts.
  EXPECT_GE(one.realloc_waves, 1u);
  EXPECT_EQ(one.realloc_waves, eight.realloc_waves);
  ASSERT_EQ(one.event_log.size(), eight.event_log.size());
  for (std::size_t i = 0; i < one.event_log.size(); ++i) {
    EXPECT_EQ(one.event_log[i], eight.event_log[i]) << "event " << i;
  }
  EXPECT_EQ(one.completion_seconds, eight.completion_seconds);
  EXPECT_EQ(one.server_completion_seconds, eight.server_completion_seconds);
  EXPECT_EQ(one.result.centers, eight.result.centers);
  EXPECT_EQ(one.result.summary_points, eight.result.summary_points);

  // realloc=off is PR 3's behavior: no waves, fewer summary points.
  const Coordinator off(parse_scenario(
      "radio=5g,sps=1e-3,deadline=4,realloc-reserve=0.5,"
      "site1.speed=0.02,seed=91,realloc=off"));
  const SimReport pr3 = off.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_EQ(pr3.realloc_waves, 0u);
  EXPECT_GT(one.result.summary_points, pr3.result.summary_points);
}

// --- phase-overlap scheduling (src/sched/ + expiry NAKs) ------------------

TEST(Scenario, ParserHandlesOverlapAndEventLog) {
  EXPECT_FALSE(parse_scenario("ideal").round.overlap);
  EXPECT_TRUE(parse_scenario("overlap=on").round.overlap);
  EXPECT_FALSE(parse_scenario("deadline-fleet,overlap=off").round.overlap);
  EXPECT_THROW((void)parse_scenario("overlap=2"), precondition_error);
  EXPECT_THROW((void)parse_scenario("overlap="), precondition_error);

  EXPECT_EQ(parse_scenario("event-log=off").event_log_limit, 0u);
  EXPECT_EQ(parse_scenario("event-log=0").event_log_limit, 0u);
  EXPECT_EQ(parse_scenario("event-log=250").event_log_limit, 250u);
  // Default: unlimited (PR 2–4 behavior).
  EXPECT_EQ(parse_scenario("ideal").event_log_limit,
            static_cast<std::size_t>(-1));
  EXPECT_THROW((void)parse_scenario("event-log="), precondition_error);
  EXPECT_THROW((void)parse_scenario("event-log=-1"), precondition_error);
  EXPECT_THROW((void)parse_scenario("event-log=2.5"), precondition_error);
  EXPECT_THROW((void)parse_scenario("event-log=x"), precondition_error);
}

TEST(Overlap, FaultFreeFiniteDeadlineRunsBitIdentical) {
  // Overlap must be unobservable when nothing misses: barriers stay
  // committed-only, and with every frame delivered in time there is
  // nothing to NAK — events, clocks, energy, ledgers and centers all
  // reproduce the overlap=off run bit for bit.
  const auto parts = make_parts(5, 1500, 24, 11);
  const PipelineConfig cfg = base_config();
  const Coordinator off(parse_scenario("ideal,deadline=1e6"));
  const Coordinator on(parse_scenario("ideal,deadline=1e6,overlap=on"));
  for (const PipelineKind kind :
       {PipelineKind::kNoReduction, PipelineKind::kBklw,
        PipelineKind::kJlBklw}) {
    const SimReport a = off.run(kind, parts, cfg);
    const SimReport b = on.run(kind, parts, cfg);
    EXPECT_EQ(b.result.uplink, a.result.uplink) << pipeline_name(kind);
    EXPECT_EQ(b.result.centers, a.result.centers) << pipeline_name(kind);
    EXPECT_EQ(b.completion_seconds, a.completion_seconds);
    EXPECT_EQ(b.server_completion_seconds, a.server_completion_seconds);
    EXPECT_EQ(b.energy_joules, a.energy_joules);
    ASSERT_EQ(b.event_log.size(), a.event_log.size());
    for (std::size_t i = 0; i < a.event_log.size(); ++i) {
      EXPECT_EQ(b.event_log[i], a.event_log[i]) << "event " << i;
    }
  }
}

TEST(Overlap, InfiniteDeadlineStragglerRunsBitIdentical) {
  // With no deadline the server already learns of an expiry the moment
  // the sender gives up, so the overlap commit rule changes nothing —
  // even on a fleet with a hard straggler and retry-budget expiries.
  const auto parts = make_parts(4, 1200, 16, 47);
  const PipelineConfig cfg = base_config(47);
  const Coordinator off(
      parse_scenario("radio=wifi,loss=0.5,retries=2,site2.speed=0.02,seed=47"));
  const Coordinator on(parse_scenario(
      "radio=wifi,loss=0.5,retries=2,site2.speed=0.02,seed=47,overlap=on"));
  const SimReport a = off.run(PipelineKind::kBklw, parts, cfg);
  const SimReport b = on.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_GT(a.deadline_misses, 0u);  // expiries actually happened
  EXPECT_EQ(b.deadline_misses, a.deadline_misses);
  EXPECT_EQ(b.result.centers, a.result.centers);
  EXPECT_EQ(b.result.uplink, a.result.uplink);
  EXPECT_EQ(b.completion_seconds, a.completion_seconds);
  EXPECT_EQ(b.server_completion_seconds, a.server_completion_seconds);
  EXPECT_EQ(b.energy_joules, a.energy_joules);
  ASSERT_EQ(b.event_log.size(), a.event_log.size());
  for (std::size_t i = 0; i < a.event_log.size(); ++i) {
    EXPECT_EQ(b.event_log[i], a.event_log[i]) << "event " << i;
  }
}

TEST(Overlap, ExpiryNaksSpeedUpServerCompletion) {
  // One site behind a 2 kbps link in a 3-second-round fleet with
  // give-up retries: its disPCA V frame and its summary coreset can
  // never fit the round, so it expires them at compute-ready time —
  // seconds before the cutoff. With overlap off the server still waits
  // each round out; with overlap on the expiry NAK commits the merge
  // barrier at the last *final* input, the basis broadcast goes out
  // early, and the fast sites run their disSS phases while the old
  // schedule would still have been waiting on the straggler's round.
  // The protocol actions are identical either way — same frames, same
  // responders, same RNG draws — so ledgers and centers must match
  // bitwise while the server's time-to-model strictly improves.
  const auto parts = make_parts(4, 2000, 16, 5);
  const PipelineConfig cfg = base_config(5);
  const char* base =
      "radio=wifi,sps=1e-4,deadline=3,retry=giveup,site0.bandwidth=2000,"
      "seed=5";
  const Coordinator off(parse_scenario(base));
  const Coordinator on(parse_scenario(std::string(base) + ",overlap=on"));
  const SimReport a = off.run(PipelineKind::kBklw, parts, cfg);
  const SimReport b = on.run(PipelineKind::kBklw, parts, cfg);

  // The straggler actually missed rounds, identically in both runs.
  EXPECT_GT(a.deadline_misses, 0u);
  EXPECT_EQ(b.deadline_misses, a.deadline_misses);
  EXPECT_EQ(b.sites_dropped, a.sites_dropped);
  // Same protocol, same model, same paper metrics...
  EXPECT_EQ(b.result.centers, a.result.centers);
  EXPECT_EQ(b.result.uplink, a.result.uplink);
  EXPECT_EQ(b.result.summary_points, a.result.summary_points);
  EXPECT_EQ(b.energy_joules, a.energy_joules);
  // ...but the server finishes strictly earlier, and the deployment
  // quiesces no later.
  EXPECT_LT(b.server_completion_seconds, a.server_completion_seconds);
  EXPECT_LE(b.completion_seconds, a.completion_seconds);
}

TEST(Overlap, DeterministicAcrossThreadCounts) {
  // The determinism contract extends to overlapped schedules: the NAK
  // learn-time rule draws nothing, and the task graphs execute in
  // creation order on the protocol thread at any pool size.
  const auto parts = make_parts(4, 1200, 16, 29);
  const PipelineConfig cfg = base_config(29);
  const Coordinator coord(parse_scenario(
      "lossy-mesh,stragglers=0.25,slowdown=64,sps=1e-5,deadline=1,"
      "retry=giveup,overlap=on,seed=29"));

  set_parallel_threads(1);
  const SimReport one = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(8);
  const SimReport eight = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(0);

  ASSERT_EQ(one.event_log.size(), eight.event_log.size());
  for (std::size_t i = 0; i < one.event_log.size(); ++i) {
    EXPECT_EQ(one.event_log[i], eight.event_log[i]) << "event " << i;
  }
  EXPECT_EQ(one.deadline_misses, eight.deadline_misses);
  EXPECT_EQ(one.completion_seconds, eight.completion_seconds);
  EXPECT_EQ(one.server_completion_seconds, eight.server_completion_seconds);
  EXPECT_EQ(one.result.centers, eight.result.centers);
}

// --- cross-round pipelining (RoundPolicy::pipeline) -----------------------

TEST(Pipeline, FaultFreeFiniteDeadlineRunsBitIdentical) {
  // Pipelining must be unobservable when nothing misses: the cross-round
  // task-graph edges never reorder the creation-order replay, and with
  // every frame inside its cutoff there is no provable miss to NAK.
  const auto parts = make_parts(5, 1500, 24, 11);
  const PipelineConfig cfg = base_config();
  const Coordinator off(parse_scenario("ideal,deadline=1e6"));
  const Coordinator on(parse_scenario("ideal,deadline=1e6,pipeline=on"));
  for (const PipelineKind kind :
       {PipelineKind::kNoReduction, PipelineKind::kBklw,
        PipelineKind::kJlBklw}) {
    const SimReport a = off.run(kind, parts, cfg);
    const SimReport b = on.run(kind, parts, cfg);
    EXPECT_EQ(b.result.uplink, a.result.uplink) << pipeline_name(kind);
    EXPECT_EQ(b.result.centers, a.result.centers) << pipeline_name(kind);
    EXPECT_EQ(b.completion_seconds, a.completion_seconds);
    EXPECT_EQ(b.server_completion_seconds, a.server_completion_seconds);
    EXPECT_EQ(b.energy_joules, a.energy_joules);
    ASSERT_EQ(b.event_log.size(), a.event_log.size());
    for (std::size_t i = 0; i < a.event_log.size(); ++i) {
      EXPECT_EQ(b.event_log[i], a.event_log[i]) << "event " << i;
    }
  }
  // Streaming rounds ride the same task-graph machinery now; the
  // conversion itself (and the pipeline edges) must be invisible on a
  // fault-free fleet too.
  StreamingCoresetOptions sopts;
  sopts.k = cfg.k;
  sopts.coreset_size = 120;
  sopts.seed = 11;
  const SimReport sa = off.run_streaming(parts, sopts, cfg, 3);
  const SimReport sb = on.run_streaming(parts, sopts, cfg, 3);
  EXPECT_EQ(sb.result.centers, sa.result.centers);
  EXPECT_EQ(sb.result.uplink, sa.result.uplink);
  EXPECT_EQ(sb.completion_seconds, sa.completion_seconds);
  EXPECT_EQ(sb.server_completion_seconds, sa.server_completion_seconds);
  EXPECT_EQ(sb.energy_joules, sa.energy_joules);
}

TEST(Pipeline, InfiniteDeadlineStragglerRunsBitIdentical) {
  // Predicted-arrival NAKs are gated on a *finite* cutoff: with no
  // deadline nothing can provably miss, so even a fleet with a hard
  // straggler and retry-budget expiries reproduces bit for bit.
  const auto parts = make_parts(4, 1200, 16, 47);
  const PipelineConfig cfg = base_config(47);
  const Coordinator off(
      parse_scenario("radio=wifi,loss=0.5,retries=2,site2.speed=0.02,seed=47"));
  const Coordinator on(parse_scenario(
      "radio=wifi,loss=0.5,retries=2,site2.speed=0.02,seed=47,pipeline=on"));
  const SimReport a = off.run(PipelineKind::kBklw, parts, cfg);
  const SimReport b = on.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_GT(a.deadline_misses, 0u);  // expiries actually happened
  EXPECT_EQ(b.deadline_misses, a.deadline_misses);
  EXPECT_EQ(b.result.centers, a.result.centers);
  EXPECT_EQ(b.result.uplink, a.result.uplink);
  EXPECT_EQ(b.completion_seconds, a.completion_seconds);
  EXPECT_EQ(b.server_completion_seconds, a.server_completion_seconds);
  EXPECT_EQ(b.energy_joules, a.energy_joules);
  ASSERT_EQ(b.event_log.size(), a.event_log.size());
  for (std::size_t i = 0; i < a.event_log.size(); ++i) {
    EXPECT_EQ(b.event_log[i], a.event_log[i]) << "event " << i;
  }
}

TEST(Pipeline, PredictedNaksFireBeforeAbandonTime) {
  // The case overlap's expiry NAKs cannot touch: a lossless fleet whose
  // straggler *delivers* its frames — hundreds of seconds late. The
  // sender never gives up, so there is no expiry to NAK and overlap
  // learns nothing before the cutoff; the predicted-arrival NAK fires
  // at the first attempt whose best-case airtime already overshoots the
  // round, and the server commits each round at that NAK instead.
  const auto parts = make_parts(4, 2000, 16, 5);
  const PipelineConfig cfg = base_config(5);
  const char* base =
      "radio=wifi,loss=0,sps=1e-4,deadline=3,site0.bandwidth=2000,seed=5";
  const Coordinator off(parse_scenario(base));
  const Coordinator overlap(parse_scenario(std::string(base) + ",overlap=on"));
  const Coordinator piped(parse_scenario(std::string(base) + ",pipeline=on"));
  const SimReport a = off.run(PipelineKind::kBklw, parts, cfg);
  const SimReport o = overlap.run(PipelineKind::kBklw, parts, cfg);
  const SimReport b = piped.run(PipelineKind::kBklw, parts, cfg);

  // The straggler missed rounds by late delivery, identically everywhere.
  EXPECT_GT(a.deadline_misses, 0u);
  EXPECT_EQ(b.deadline_misses, a.deadline_misses);
  EXPECT_EQ(b.result.centers, a.result.centers);
  EXPECT_EQ(b.result.uplink, a.result.uplink);
  EXPECT_EQ(b.energy_joules, a.energy_joules);
  // Delivered-late frames give overlap nothing...
  EXPECT_EQ(o.server_completion_seconds, a.server_completion_seconds);
  // ...while the sender-side schedule proves the miss well before the
  // cutoff, and the critical-path bound brackets the result.
  EXPECT_LT(b.server_completion_seconds, a.server_completion_seconds);
  EXPECT_GE(b.server_completion_seconds, b.server_critical_path_seconds);
}

TEST(Pipeline, StreamingStragglerKeepsSummariesAndCommitsEarlier) {
  // Streaming rounds under pipelining: round r+1 opens on round r's
  // committed barrier, so the slow site's expired summary stops pinning
  // the server to each cutoff. Same summaries survive (the stale-over-
  // fresh rule sees identical frames), same centers, earlier commit.
  const auto parts = make_parts(4, 1600, 16, 9);
  const PipelineConfig cfg = base_config(9);
  StreamingCoresetOptions sopts;
  sopts.k = cfg.k;
  sopts.coreset_size = 120;
  sopts.seed = 9;
  const char* base =
      "radio=wifi,sps=1e-4,deadline=3,retry=giveup,site0.bandwidth=2000,"
      "seed=9";
  const Coordinator off(parse_scenario(base));
  const Coordinator on(parse_scenario(std::string(base) + ",pipeline=on"));
  const SimReport a = off.run_streaming(parts, sopts, cfg, 4);
  const SimReport b = on.run_streaming(parts, sopts, cfg, 4);
  EXPECT_GT(a.deadline_misses, 0u);
  EXPECT_EQ(b.deadline_misses, a.deadline_misses);
  EXPECT_EQ(b.result.centers, a.result.centers);
  EXPECT_EQ(b.result.uplink, a.result.uplink);
  EXPECT_EQ(b.energy_joules, a.energy_joules);
  EXPECT_LT(b.server_completion_seconds, a.server_completion_seconds);
  EXPECT_GE(b.server_completion_seconds, b.server_critical_path_seconds);
}

// --- event-log cap (scenario `event-log=off|N`) ---------------------------

TEST(EventLog, CapShrinksTraceNotMetrics) {
  const auto parts = make_parts(4, 1200, 16, 23);
  const PipelineConfig cfg = base_config(23);
  const Coordinator full(parse_scenario("lossy-mesh,seed=23"));
  const Coordinator capped(parse_scenario("lossy-mesh,seed=23,event-log=40"));
  const Coordinator off(parse_scenario("lossy-mesh,seed=23,event-log=off"));

  const SimReport a = full.run(PipelineKind::kBklw, parts, cfg);
  const SimReport b = capped.run(PipelineKind::kBklw, parts, cfg);
  const SimReport c = off.run(PipelineKind::kBklw, parts, cfg);

  ASSERT_GT(a.event_log.size(), 40u);
  EXPECT_EQ(b.event_log.size(), 40u);
  EXPECT_EQ(c.event_log.size(), 0u);
  // Only the retained trace shrinks; every metric is untouched.
  for (const SimReport* r : {&b, &c}) {
    EXPECT_EQ(r->completion_seconds, a.completion_seconds);
    EXPECT_EQ(r->server_completion_seconds, a.server_completion_seconds);
    EXPECT_EQ(r->energy_joules, a.energy_joules);
    EXPECT_EQ(r->deadline_misses, a.deadline_misses);
    EXPECT_EQ(r->result.uplink, a.result.uplink);
    EXPECT_EQ(r->result.centers, a.result.centers);
  }
}

// --- supplemental-miss accounting (exact data loss) -----------------------

TEST(Supplemental, WaveFrameMissesAreClassified) {
  // Frames sent under open_subround carry the wave tag; a miss of one
  // is supplemental (the sender's first-wave data stands), where the
  // same miss in the main collection is real data loss.
  SimNetwork net(1, parse_scenario("radio=wifi,site0.bandwidth=1000"));
  const auto send_big = [&] {
    Message msg;
    msg.payload.resize(1 << 17);
    msg.wire_bits = 1'000'000;  // ~1000 s at 1 kbps: can never make 2 s
    msg.scalars = 4;
    net.uplink(0).send(std::move(msg));
  };
  const RoundId round = net.open_round(2.0);
  send_big();
  EXPECT_FALSE(net.uplink(0).receive_by(round).has_value());
  EXPECT_EQ(net.missed_frames(), 1u);
  EXPECT_EQ(net.supplemental_misses(), 0u);

  const RoundId wave = net.open_subround(round, net.round_cutoff(round));
  send_big();
  EXPECT_FALSE(net.uplink(0).receive_by(wave).has_value());
  EXPECT_EQ(net.missed_frames(), 2u);
  EXPECT_EQ(net.supplemental_misses(), 1u);
  EXPECT_EQ(net.uplink_view(0).stats().supplemental, 1u);

  // The next round resets the wave tag.
  const RoundId next = net.open_round(2.0);
  send_big();
  EXPECT_FALSE(net.uplink(0).receive_by(next).has_value());
  EXPECT_EQ(net.missed_frames(), 3u);
  EXPECT_EQ(net.supplemental_misses(), 1u);
  (void)net.finish();  // asserts supplemental <= missed per link
}

TEST(Supplemental, DownlinkFramesAreNeverWaveTagged) {
  // Regression: in_wave_ only resets at the next open_round, and a
  // later phase may broadcast *before* opening its round (refine
  // pushes centers first). Those downlink frames must not be tagged as
  // wave supplements — a lost broadcast is real data impact and must
  // stay out of the loses-nothing bucket.
  SimNetwork net(1, parse_scenario("radio=wifi,loss=0.9,retries=0,seed=3"));
  const RoundId rid = net.open_round(2.0);
  (void)net.open_subround(rid, net.round_cutoff(rid));
  // Post-wave "next phase" broadcasts, still under the stale wave flag:
  // at 90% loss with no retries most of these expire.
  std::size_t missed = 0;
  for (int i = 0; i < 20; ++i) {
    Message msg;
    msg.wire_bits = 512;
    msg.scalars = 8;
    net.downlink(0).send(std::move(msg));
    missed += !net.downlink(0).receive_by(kNoRound).has_value();
  }
  EXPECT_GT(missed, 0u);  // p(no expiry in 20 frames) ~ 1e-20
  EXPECT_EQ(net.supplemental_misses(), 0u);
  EXPECT_EQ(net.downlink_view(0).stats().supplemental, 0u);
  EXPECT_EQ(net.downlink_view(0).stats().missed, missed);
  (void)net.finish();
}

TEST(Supplemental, ReportSplitsExactLoss) {
  // The forced-straggler realloc shape: site 1 reports cost but misses
  // the summary round; the wave re-splits its budget among the three
  // responders, whose supplements all deliver. deadline_misses counts
  // site 1's abandoned frames only, nothing supplemental — and the two
  // site-drop counters agree.
  const std::size_t m = 4;
  const auto parts = make_parts(m, 1600, 12, 91);
  const PipelineConfig cfg = base_config(91);
  const Coordinator coord(parse_scenario(
      "radio=5g,sps=1e-3,deadline=4,realloc-reserve=0.5,"
      "site1.speed=0.02,seed=91"));
  const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_GE(report.realloc_waves, 1u);
  EXPECT_GT(report.deadline_misses, 0u);
  EXPECT_EQ(report.supplemental_misses, 0u);
  EXPECT_EQ(report.sites_dropped, 1u);
  EXPECT_EQ(report.sites_data_dropped, 1u);

  // Under frame loss, wave supplements can miss too; the split stays
  // coherent: supplements are a subset of misses, and a site whose
  // only miss is a superseded supplement is not a data drop.
  const Coordinator lossy(parse_scenario(
      "radio=5g,sps=1e-3,deadline=4,realloc-reserve=0.5,loss=0.2,"
      "retries=1,site1.speed=0.02,seed=91"));
  const SimReport faulty = lossy.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_LE(faulty.supplemental_misses, faulty.deadline_misses);
  EXPECT_LE(faulty.sites_data_dropped, faulty.sites_dropped);
}

// --- fleet churn, trace-driven links, adaptive quantization ---------------

TEST(Scenario, ParserHandlesChurnTraceAndQuant) {
  const SimScenario s = parse_scenario(
      "radio=wifi,churn=0.05,quant=adaptive,site0.join=2,site1.leave=3.5,"
      "site0.trace=0:8000:0.1;5:1e6:0:0.25");
  EXPECT_DOUBLE_EQ(s.churn_rate, 0.05);
  EXPECT_EQ(s.quant, QuantPolicy::kAdaptive);
  ASSERT_EQ(s.site_overrides.size(), 3u);
  EXPECT_DOUBLE_EQ(s.site_overrides[0].join_s.value(), 2.0);
  EXPECT_DOUBLE_EQ(s.site_overrides[1].leave_s.value(), 3.5);
  const auto& trace = s.site_overrides[2].trace;
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(trace[0].bandwidth_bps, 8000.0);
  EXPECT_DOUBLE_EQ(trace[0].loss_rate, 0.1);
  EXPECT_FALSE(trace[0].dropout_rate.has_value());  // keep the base rate
  EXPECT_DOUBLE_EQ(trace[1].start_s, 5.0);
  EXPECT_DOUBLE_EQ(trace[1].loss_rate, 0.0);
  ASSERT_TRUE(trace[1].dropout_rate.has_value());
  EXPECT_DOUBLE_EQ(*trace[1].dropout_rate, 0.25);
  EXPECT_FALSE(s.fault_free());

  // Defaults: fixed quantization, no churn. A membership schedule or a
  // loss/dropout-injecting trace makes the scenario faulty; a
  // bandwidth-only trace shifts timing but never a frame's fate.
  EXPECT_EQ(parse_scenario("ideal").quant, QuantPolicy::kFixed);
  EXPECT_DOUBLE_EQ(parse_scenario("ideal").churn_rate, 0.0);
  EXPECT_TRUE(parse_scenario("site0.trace=0:8000:0").fault_free());
  EXPECT_FALSE(parse_scenario("site0.trace=0:8000:0.1").fault_free());
  EXPECT_FALSE(parse_scenario("site0.trace=0:8000:0:0.1").fault_free());
  EXPECT_FALSE(parse_scenario("site0.leave=4").fault_free());
  EXPECT_FALSE(parse_scenario("site0.join=4").fault_free());
  EXPECT_FALSE(parse_scenario("churn=0.1").fault_free());

  // Malformed values fail loudly.
  EXPECT_THROW((void)parse_scenario("churn=-1"), precondition_error);
  EXPECT_THROW((void)parse_scenario("churn=nan"), precondition_error);
  EXPECT_THROW((void)parse_scenario("churn="), precondition_error);
  EXPECT_THROW((void)parse_scenario("quant=sometimes"), precondition_error);
  EXPECT_THROW((void)parse_scenario("quant="), precondition_error);
  EXPECT_THROW((void)parse_scenario("site0.join=-1"), precondition_error);
  EXPECT_THROW((void)parse_scenario("site0.join=inf"), precondition_error);
  EXPECT_THROW((void)parse_scenario("site0.leave=0"), precondition_error);
  EXPECT_THROW((void)parse_scenario("site0.trace="), precondition_error);
  // Segments: bandwidth must be positive, loss in [0,1), the field
  // count 3 or 4, every number a number, and starts strictly increasing.
  EXPECT_THROW((void)parse_scenario("site0.trace=0:0:0"), precondition_error);
  EXPECT_THROW((void)parse_scenario("site0.trace=0:1000:1"),
               precondition_error);
  EXPECT_THROW((void)parse_scenario("site0.trace=0:1000"), precondition_error);
  EXPECT_THROW((void)parse_scenario("site0.trace=0:1000:0:0.5:7"),
               precondition_error);
  EXPECT_THROW((void)parse_scenario("site0.trace=x:1000:0"),
               precondition_error);
  EXPECT_THROW((void)parse_scenario("site0.trace=0:1000:0;0:2000:0"),
               precondition_error);
  try {
    (void)parse_scenario("site2.trace=5:1000:0;3:2000:0");
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("site2.trace"), std::string::npos)
        << e.what();
  }
}

TEST(Scenario, LaterSiteOverridesWin) {
  // Overrides apply in declaration order — the grammar's documented
  // "later overrides win" rule, locked by this regression test.
  const SimScenario s = parse_scenario(
      "radio=wifi,site0.bandwidth=1000,site0.loss=0.2,site0.retry=backoff,"
      "site0.bandwidth=2000,site0.loss=0.4,site0.retry=giveup");
  SimNetwork net(1, s);
  EXPECT_DOUBLE_EQ(net.site(0).radio.bandwidth_bps, 2000.0);
  EXPECT_DOUBLE_EQ(net.site(0).loss_rate, 0.4);
  EXPECT_EQ(net.site(0).retry, RetryStrategy::kGiveUp);
}

TEST(Churn, MidRoundLeaveDropsTheSiteOnceNotPerFrame) {
  // Site 0's two-frame summary (think disPCA's Σ/V pair) is half
  // arrived when the site leaves: frame 1 is through before the
  // departure, frame 2's send would start after it and orphans without
  // keying the radio. The group receive counts exactly one site miss —
  // not one per frame — and no frame is double-counted in any ledger.
  SimNetwork net(2, parse_scenario(
      "radio=wifi,sps=0,site0.bandwidth=1000,site0.leave=1"));
  const RoundId round = net.open_round(100.0);
  for (int f = 0; f < 2; ++f) {
    Message msg;
    msg.wire_bits = 1000;  // 1 s + latency per frame at 1 kbps
    msg.scalars = 0;
    net.uplink(0).send(std::move(msg));
  }
  const auto frames = receive_frames_by(net.uplink(0), 2, round);
  EXPECT_FALSE(frames.has_value());  // all-or-nothing: ONE site miss
  (void)net.finish();  // asserts the ledgers, incl. orphaned <= expired

  const LinkStats& stats = net.uplink_view(0).stats();
  EXPECT_EQ(net.uplink_view(0).ledger().messages, 2u);
  EXPECT_EQ(stats.attempts, 1u);  // frame 2 never keyed the radio
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.orphaned, 1u);
  EXPECT_EQ(stats.missed, 1u);
  EXPECT_EQ(net.missed_frames(), 1u);
  EXPECT_EQ(net.orphaned_frames(), 1u);
  EXPECT_EQ(net.leaves(), 1u);
  EXPECT_EQ(net.joins(), 0u);
}

TEST(Churn, FarFutureLeaveIsBitIdenticalToStaticFleet) {
  // A membership schedule activates the churn machinery, but a leave
  // the run never reaches must not perturb anything: the gates draw no
  // randomness, so events, clocks, energy and centers reproduce the
  // static fleet bit for bit — and the join/leave census stays empty.
  const auto parts = make_parts(4, 1200, 16, 23);
  const PipelineConfig cfg = base_config(23);
  const Coordinator fleet(parse_scenario("lossy-mesh,seed=23"));
  const Coordinator late(parse_scenario("lossy-mesh,seed=23,site0.leave=1e9"));
  const SimReport a = fleet.run(PipelineKind::kBklw, parts, cfg);
  const SimReport b = late.run(PipelineKind::kBklw, parts, cfg);
  ASSERT_EQ(b.event_log.size(), a.event_log.size());
  for (std::size_t i = 0; i < a.event_log.size(); ++i) {
    EXPECT_EQ(b.event_log[i], a.event_log[i]) << "event " << i;
  }
  EXPECT_EQ(b.completion_seconds, a.completion_seconds);
  EXPECT_EQ(b.energy_joules, a.energy_joules);
  EXPECT_EQ(b.result.uplink, a.result.uplink);
  EXPECT_EQ(b.result.centers, a.result.centers);
  EXPECT_EQ(b.joins, 0u);
  EXPECT_EQ(b.leaves, 0u);
  EXPECT_EQ(b.orphaned_frames, 0u);
}

TEST(Churn, PipelineSurvivesAnEarlyLeaver) {
  // Site 3 departs before it can ship anything heavier than its cost
  // scalar: its frames orphan, the deadline rounds treat it as a
  // dropped responder, and the model is built from the remaining sites.
  const auto parts = make_parts(4, 1200, 16, 53);
  const PipelineConfig cfg = base_config(53);
  const Coordinator coord(
      parse_scenario("radio=wifi,deadline=5,site3.leave=1e-6,seed=53"));
  const SimReport report = coord.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_EQ(report.leaves, 1u);
  EXPECT_EQ(report.joins, 0u);
  EXPECT_GT(report.orphaned_frames, 0u);
  EXPECT_GT(report.deadline_misses, 0u);
  EXPECT_GE(report.sites_dropped, 1u);
  EXPECT_EQ(report.result.centers.rows(), cfg.k);
  // Orphans are expiries; the report's counter agrees with the links.
  EXPECT_LE(report.orphaned_frames,
            report.uplink_stats.expired + report.downlink_stats.expired);
}

TEST(Churn, StochasticChurnIsDeterministicAcrossThreadCounts) {
  // Churn draws come from dedicated per-site streams consumed on the
  // protocol thread, so the whole membership schedule — and everything
  // downstream of it — is identical at any pool size.
  // LoRa transfers take virtual seconds, so an Exp(0.1) leave/rejoin
  // process actually fires inside the run — the census must be
  // non-trivial for the determinism claim to mean anything.
  const auto parts = make_parts(4, 1200, 16, 83);
  const PipelineConfig cfg = base_config(83);
  const Coordinator coord(
      parse_scenario("radio=lora,deadline=30,churn=0.1,seed=83"));

  set_parallel_threads(1);
  const SimReport one = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(8);
  const SimReport eight = coord.run(PipelineKind::kBklw, parts, cfg);
  set_parallel_threads(0);

  EXPECT_GT(one.joins + one.leaves, 0u);
  ASSERT_EQ(one.event_log.size(), eight.event_log.size());
  for (std::size_t i = 0; i < one.event_log.size(); ++i) {
    EXPECT_EQ(one.event_log[i], eight.event_log[i]) << "event " << i;
  }
  EXPECT_EQ(one.joins, eight.joins);
  EXPECT_EQ(one.leaves, eight.leaves);
  EXPECT_EQ(one.orphaned_frames, eight.orphaned_frames);
  EXPECT_EQ(one.completion_seconds, eight.completion_seconds);
  EXPECT_EQ(one.energy_joules, eight.energy_joules);
  EXPECT_EQ(one.result.centers, eight.result.centers);
}

TEST(Trace, SegmentMatchingBaseRadioIsBitIdentical) {
  // A single segment pinning exactly the base radio's bandwidth (Wi-Fi,
  // 50 Mbps) and the fleet loss rate changes no arithmetic and no draw:
  // the traced run reproduces the plain run bit for bit.
  const auto parts = make_parts(3, 900, 8, 9);
  const PipelineConfig cfg = base_config(9);
  const Coordinator plain(parse_scenario("radio=wifi,loss=0.2,retries=4,seed=9"));
  const Coordinator traced(parse_scenario(
      "radio=wifi,loss=0.2,retries=4,seed=9,"
      "site0.trace=0:5e7:0.2,site1.trace=0:5e7:0.2"));
  const SimReport a = plain.run(PipelineKind::kBklw, parts, cfg);
  const SimReport b = traced.run(PipelineKind::kBklw, parts, cfg);
  ASSERT_EQ(b.event_log.size(), a.event_log.size());
  for (std::size_t i = 0; i < a.event_log.size(); ++i) {
    EXPECT_EQ(b.event_log[i], a.event_log[i]) << "event " << i;
  }
  EXPECT_EQ(b.completion_seconds, a.completion_seconds);
  EXPECT_EQ(b.energy_joules, a.energy_joules);
  EXPECT_EQ(b.result.uplink, a.result.uplink);
  EXPECT_EQ(b.result.centers, a.result.centers);
}

TEST(Trace, SegmentsLayerBandwidthAndLossUnderTheRadio) {
  // Bandwidth: the opening 1 kbps segment stretches a 1000-bit frame to
  // ~1 s of airtime where the base Wi-Fi radio would take microseconds;
  // once the site's clock passes t=10 the second segment restores a
  // fast link and the same frame costs milliseconds.
  SimNetwork net(1, parse_scenario("radio=wifi,site0.trace=0:1000:0;10:1e6:0"));
  const auto send_frame = [&](std::size_t scalars) {
    Message msg;
    msg.wire_bits = 1000;
    msg.scalars = scalars;
    net.uplink(0).send(std::move(msg));
    (void)net.uplink(0).receive();
  };
  send_frame(0);
  const double slow_airtime = net.uplink_view(0).stats().airtime_s;
  EXPECT_GT(slow_airtime, 1.0);
  // 2e8 scalars at the default 1e-7 s/scalar push the clock past the
  // segment boundary before the attempt starts.
  send_frame(200'000'000);
  EXPECT_LT(net.uplink_view(0).stats().airtime_s, slow_airtime + 0.1);
  (void)net.finish();

  // Loss: a segment injects per-attempt loss on a fleet whose base loss
  // is zero — drops appear without touching any other site's stream.
  SimNetwork lossy(1, parse_scenario(
      "radio=wifi,retries=8,seed=3,site0.trace=0:1e6:0.9"));
  for (int i = 0; i < 20; ++i) {
    Message msg;
    msg.wire_bits = 512;
    msg.scalars = 0;
    lossy.uplink(0).send(std::move(msg));
    (void)lossy.uplink(0).receive_by(kNoRound);
  }
  EXPECT_GT(lossy.uplink_view(0).stats().drops, 0u);
  (void)lossy.finish();
}

TEST(Quant, AdaptiveIsBitIdenticalWhenBudgetsFit) {
  // Adaptive quantization consults the budget but narrows nothing when
  // every full-width frame fits its round: the run reproduces the
  // fixed-policy run — events, ledgers, centers — bit for bit.
  const auto parts = make_parts(4, 1200, 16, 19);
  const PipelineConfig cfg = base_config(19);
  const Coordinator fixed(parse_scenario("radio=wifi,deadline=1e6,seed=19"));
  const Coordinator adaptive(
      parse_scenario("radio=wifi,deadline=1e6,quant=adaptive,seed=19"));
  const SimReport a = fixed.run(PipelineKind::kBklw, parts, cfg);
  const SimReport b = adaptive.run(PipelineKind::kBklw, parts, cfg);
  ASSERT_EQ(b.event_log.size(), a.event_log.size());
  for (std::size_t i = 0; i < a.event_log.size(); ++i) {
    EXPECT_EQ(b.event_log[i], a.event_log[i]) << "event " << i;
  }
  EXPECT_EQ(b.completion_seconds, a.completion_seconds);
  EXPECT_EQ(b.result.uplink, a.result.uplink);
  EXPECT_EQ(b.result.centers, a.result.centers);
}

TEST(Quant, AdaptiveNarrowsFramesToSurviveDeadlines) {
  // Two sites ride an 8 kbps trace link: their full-width summary
  // coresets cannot cross inside the round budget, so the fixed policy
  // loses their data to the deadline. Adaptive narrows those frames
  // until they fit — strictly fewer misses and more of the fleet's
  // data in the model, paid for in quantized coordinates (fewer wire
  // bits, a different — degraded — solution).
  const auto parts = make_parts(4, 1600, 16, 63);
  const PipelineConfig cfg = base_config(63);
  const char* base =
      "radio=wifi,deadline=4,retry=giveup,seed=63,"
      "site0.trace=0:8000:0,site1.trace=0:8000:0";
  const Coordinator fixed(parse_scenario(base));
  const Coordinator adaptive(
      parse_scenario(std::string(base) + ",quant=adaptive"));
  const SimReport a = fixed.run(PipelineKind::kBklw, parts, cfg);
  const SimReport b = adaptive.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_GT(a.deadline_misses, 0u);
  EXPECT_LT(b.deadline_misses, a.deadline_misses);
  EXPECT_GT(b.result.summary_points, a.result.summary_points);
  EXPECT_LT(b.result.uplink.bits, a.result.uplink.bits);
  EXPECT_EQ(b.result.centers.rows(), cfg.k);
}

TEST(Exhaustion, EmptyShardWithRefineStaysFrameAligned) {
  // An empty site never projects or samples, but it still receives
  // every broadcast (basis, allocation, refine centers). Each must be
  // consumed in its own phase — a stale frame left queued would be
  // decoded as the next phase's payload. Bit-parity with the
  // synchronous Network proves the alignment.
  auto parts = make_parts(3, 900, 8, 57);
  parts.emplace_back();  // one empty site
  PipelineConfig cfg = base_config(57);
  cfg.refine_iters = 2;
  const PipelineResult sync =
      run_distributed_pipeline(PipelineKind::kBklw, parts, cfg);
  const Coordinator coord(parse_scenario("ideal"));
  const SimReport sim = coord.run(PipelineKind::kBklw, parts, cfg);
  EXPECT_EQ(sim.result.centers, sync.centers);
  EXPECT_EQ(sim.result.uplink, sync.uplink);
  EXPECT_EQ(sim.result.downlink, sync.downlink);
}

}  // namespace
}  // namespace ekm
