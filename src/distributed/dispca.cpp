#include "distributed/dispca.hpp"

#include <algorithm>

#include "linalg/svd.hpp"
#include "net/summary_codec.hpp"

namespace ekm {

DisPcaResult dispca(std::span<const Dataset> parts, const DisPcaOptions& opts,
                    Fabric& net, Stopwatch& device_work) {
  EKM_EXPECTS(!parts.empty());
  EKM_EXPECTS(parts.size() == net.num_sources());
  std::size_t d = 0;
  for (const Dataset& p : parts) {
    if (!p.empty()) {
      d = p.dim();
      break;
    }
  }
  EKM_EXPECTS_MSG(d > 0, "all sources empty");

  // --- data sources: local SVD, uplink (Σ^(t1), V^(t1)). ---
  // The round opens before the first uplink so a time-aware fabric can
  // cancel retransmissions that would outlive the deadline.
  const double deadline = net.open_round(opts.round_deadline_s);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EKM_EXPECTS_MSG(parts[i].empty() || parts[i].dim() == d,
                    "sources disagree on dimension");
    if (parts[i].empty()) {
      net.uplink(i).send(encode_matrix(Matrix(0, 0)));
      net.uplink(i).send(encode_matrix(Matrix(0, 0)));
      continue;
    }
    Matrix sigma_row;  // 1 x t1
    Matrix v_t1;       // d x t1
    {
      auto scope = device_work.measure();
      const std::size_t t1 =
          std::min({opts.t1, parts[i].size(), parts[i].dim()});
      Svd svd = truncated_svd(parts[i].points(), t1);
      sigma_row = Matrix(1, svd.rank());
      for (std::size_t j = 0; j < svd.rank(); ++j) sigma_row(0, j) = svd.sigma[j];
      v_t1 = svd.v;
    }
    net.uplink(i).send(encode_matrix(sigma_row));
    net.uplink(i).send(encode_matrix(v_t1));
  }

  // --- server: stack Y_i = Σ_i^(t1) V_i^(t1)^T over whichever sources
  // delivered by the deadline, global SVD. A dropped source's subspace
  // simply does not shape this round's merge — the availability /
  // accuracy trade the deadline buys. ---
  Matrix y;  // (Σ_responders t1_i) x d
  std::size_t responders = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    // Both frames must be consumed either way, or a late V would alias
    // the next round's traffic on this link.
    auto sigma_frame = net.uplink(i).receive_by(deadline);
    auto v_frame = net.uplink(i).receive_by(deadline);
    if (!sigma_frame.has_value() || !v_frame.has_value()) continue;
    responders += 1;
    const Matrix sigma_row = decode_matrix(*sigma_frame);
    const Matrix v_t1 = decode_matrix(*v_frame);
    if (sigma_row.size() == 0) continue;
    // Y_i rows: sigma_j * (column j of V)^T.
    Matrix yi(sigma_row.cols(), d);
    for (std::size_t j = 0; j < sigma_row.cols(); ++j) {
      for (std::size_t c = 0; c < d; ++c) {
        yi(j, c) = sigma_row(0, j) * v_t1(c, j);
      }
    }
    y.append_rows(yi);
  }
  enforce_availability_floor(responders, opts.min_responders, "disPCA round");
  EKM_ENSURES_MSG(y.rows() > 0, "all sources empty or dropped at the deadline");

  const std::size_t t2 = std::min({opts.t2, y.rows(), d});
  Svd global = truncated_svd(y, t2);

  DisPcaResult result;
  result.v = global.v;  // d x t2

  // --- server -> sources: broadcast the merged basis (downlink, not
  // counted by the paper's metric but measured by the ledger). ---
  for (std::size_t i = 0; i < parts.size(); ++i) {
    net.downlink(i).send(encode_matrix(result.v));
  }
  return result;
}

}  // namespace ekm
