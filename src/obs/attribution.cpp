#include "obs/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "net/channel.hpp"

namespace ekm {
namespace {

constexpr std::size_t kNoTopology = static_cast<std::size_t>(-1);

/// %.17g — the round-trip-exact double format every obs writer uses.
void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

/// Charges `min(remaining, max(0, length))` to `category` and returns
/// the charge — the backward walk over a frame's causal segments.
double charge(double& remaining, double length, double* blame,
              BlameCategory category) {
  const double take = std::min(remaining, std::max(0.0, length));
  if (take > 0.0) {
    blame[static_cast<std::size_t>(category)] += take;
    remaining -= take;
  }
  return take;
}

struct Segment {
  std::size_t begin = 0;  ///< first op past the kBeginRun marker
  std::size_t end = 0;    ///< one past the last op
};

/// The op stream split at kBeginRun markers: one segment per run, in
/// recording order. Empty segments (a run that applied no ops) are
/// kept — the rounds() alignment in the metrics exporter needs every
/// run represented. A recorder that never saw begin_run (hand-driven
/// in tests) yields one whole-stream segment.
std::vector<Segment> run_segments(const std::vector<ServerOp>& ops) {
  std::vector<Segment> segments;
  std::size_t begin = 0;
  bool seen_marker = false;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != ServerOpKind::kBeginRun) continue;
    if (seen_marker || i > begin) segments.push_back({begin, i});
    begin = i + 1;
    seen_marker = true;
  }
  if (seen_marker || ops.size() > begin) {
    segments.push_back({begin, ops.size()});
  }
  return segments;
}

RunAttribution attribute_segment(const Recorder& recorder, Segment segment) {
  const std::vector<ServerOp>& ops = recorder.server_ops();
  const std::vector<FrameCausal>& causals = recorder.frame_causals();

  RunAttribution run;
  run.valid = segment.end > segment.begin;

  // The replayed clocks. Bit-for-bit fidelity rests on this loop
  // applying the exact operations SimNetwork applied, in order, with
  // the same IEEE arithmetic — nothing may be resorted or re-associated.
  double server = 0.0;
  double cp = 0.0;
  std::uint64_t current_round = 0;
  std::vector<double> cutoffs;  ///< by round ordinal - 1

  auto round_row = [&](std::uint64_t ordinal) -> RoundBlame& {
    // Ops before the first kRoundOpen (the initial broadcast of a
    // protocol that opens its round afterwards) fold into round 1.
    const std::uint64_t want = std::max<std::uint64_t>(ordinal, 1);
    while (run.rounds.size() < want) {
      RoundBlame row;
      row.round = run.rounds.size() + 1;
      row.cutoff_s = kNoDeadline;
      run.rounds.push_back(row);
    }
    return run.rounds[want - 1];
  };
  auto actor_row = [&](std::uint32_t site) -> ActorAttribution& {
    const std::size_t want = static_cast<std::size_t>(site) + 1;
    while (run.actors.size() < want) {
      ActorAttribution a;
      a.actor = run.actors.size();
      a.min_slack_s = std::numeric_limits<double>::infinity();
      run.actors.push_back(a);
    }
    return run.actors[site];
  };

  for (std::size_t i = segment.begin; i < segment.end; ++i) {
    const ServerOp& op = ops[i];
    const double server_before = server;
    const double cp_before = cp;
    switch (op.kind) {
      case ServerOpKind::kBeginRun:
        continue;  // never inside a segment, but harmless
      case ServerOpKind::kTopology:
        run.data_sites = op.site;
        run.gateways = static_cast<std::size_t>(op.frame);
        continue;
      case ServerOpKind::kRoundOpen: {
        // Stamp the closing round's clocks before switching context.
        if (current_round > 0) {
          RoundBlame& prev = round_row(current_round);
          prev.commit_s = server;
          prev.critical_path_s = cp;
        }
        current_round = op.round;
        RoundBlame& row = round_row(current_round);
        row.cutoff_s = op.value;
        cutoffs.resize(
            std::max<std::size_t>(cutoffs.size(), current_round), kNoDeadline);
        cutoffs[current_round - 1] = op.value;
        continue;
      }
      case ServerOpKind::kCompute:
        server += op.value;
        cp += op.value;
        break;
      case ServerOpKind::kDownlinkForward:
        server = std::max(server, op.value);
        cp = std::max(cp, op.value);
        break;
      case ServerOpKind::kUplinkArrival:
        server = std::max(server, op.value);
        cp = std::max(cp, op.value);
        break;
      case ServerOpKind::kMissLearn:
        server = std::max(server, op.value);
        // Deliberately not cp: the mirror clock skips learn waits.
        break;
    }

    // --- blame: the interval this op advanced the server clock by ---
    const double delta = server - server_before;
    RoundBlame& row = round_row(current_round);
    switch (op.kind) {
      case ServerOpKind::kCompute:
        row.blame[static_cast<std::size_t>(BlameCategory::kServerCompute)] +=
            delta;
        break;
      case ServerOpKind::kDownlinkForward:
        row.blame[static_cast<std::size_t>(BlameCategory::kDownlink)] += delta;
        break;
      case ServerOpKind::kMissLearn:
        row.blame[static_cast<std::size_t>(BlameCategory::kDeadlineWait)] +=
            delta;
        break;
      case ServerOpKind::kUplinkArrival: {
        double remaining = delta;
        if (op.frame != kNoCausalFrame && op.frame < causals.size()) {
          const FrameCausal& fc = causals[op.frame];
          const bool gateway =
              run.data_sites != kNoTopology && fc.site >= run.data_sites;
          // Backward from the arrival: the delivering attempt's
          // airtime, earlier attempts, the link-busy wait, the
          // sender's own compute, and finally whatever the sender was
          // itself waiting on before its compute began.
          charge(remaining, fc.arrival_s - fc.send_start_s, row.blame,
                 BlameCategory::kUplinkAirtime);
          charge(remaining, fc.send_start_s - fc.first_start_s, row.blame,
                 BlameCategory::kRetransmit);
          charge(remaining, fc.first_start_s - fc.ready_s, row.blame,
                 BlameCategory::kPipelineStall);
          charge(remaining, fc.compute_s + fc.outage_s, row.blame,
                 gateway ? BlameCategory::kGatewayFold
                         : BlameCategory::kSiteCompute);
          charge(remaining, remaining, row.blame,
                 gateway ? BlameCategory::kGatewayFold
                         : BlameCategory::kDownlink);
        } else {
          charge(remaining, remaining, row.blame,
                 BlameCategory::kUplinkAirtime);
        }
        break;
      }
      default:
        break;
    }

    // --- critical-path hops (cp-advancing ops only) ---
    if (cp > cp_before) {
      run.hops.push_back({op.kind, op.site, op.frame, cp_before, cp});
    }

    // --- per-actor rollup + slack against the frame's round cutoff ---
    if (op.kind == ServerOpKind::kUplinkArrival ||
        op.kind == ServerOpKind::kMissLearn) {
      ActorAttribution& actor = actor_row(op.site);
      actor.gateway =
          run.data_sites != kNoTopology && op.site >= run.data_sites;
      if (op.kind == ServerOpKind::kUplinkArrival && cp > cp_before) {
        actor.cp_seconds += cp - cp_before;
        actor.cp_frames += 1;
      }
      if (op.frame != kNoCausalFrame && op.frame < causals.size()) {
        const FrameCausal& fc = causals[op.frame];
        if (fc.round >= 1 && fc.round <= cutoffs.size() &&
            std::isfinite(cutoffs[fc.round - 1])) {
          const double slack = cutoffs[fc.round - 1] - op.value;
          if (!actor.slack_measured || slack < actor.min_slack_s) {
            actor.min_slack_s = slack;
          }
          actor.slack_measured = true;
        }
      }
    }
  }

  if (current_round > 0) {
    RoundBlame& last = round_row(current_round);
    last.commit_s = server;
    last.critical_path_s = cp;
  }
  run.server_completion_s = server;
  run.critical_path_s = cp;
  for (const RoundBlame& row : run.rounds) {
    for (std::size_t c = 0; c < kBlameCategoryCount; ++c) {
      run.blame_total[c] += row.blame[c];
    }
  }
  return run;
}

void append_blame_object(std::string& out, const double* blame) {
  out += "{";
  for (std::size_t c = 0; c < kBlameCategoryCount; ++c) {
    if (c > 0) out += ", ";
    out += "\"";
    out += blame_category_name(static_cast<BlameCategory>(c));
    out += "\": ";
    append_double(out, blame[c]);
  }
  out += "}";
}

/// Actors ranked most-to-blame first: tightest slack, then largest
/// critical-path contribution, then id — the "top-k slack-free actors".
std::vector<const ActorAttribution*> ranked_actors(const RunAttribution& run) {
  std::vector<const ActorAttribution*> ranked;
  for (const ActorAttribution& a : run.actors) {
    if (a.slack_measured || a.cp_frames > 0) ranked.push_back(&a);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ActorAttribution* a, const ActorAttribution* b) {
              const double sa =
                  a->slack_measured ? a->min_slack_s
                                    : std::numeric_limits<double>::infinity();
              const double sb =
                  b->slack_measured ? b->min_slack_s
                                    : std::numeric_limits<double>::infinity();
              if (sa != sb) return sa < sb;
              if (a->cp_seconds != b->cp_seconds) {
                return a->cp_seconds > b->cp_seconds;
              }
              return a->actor < b->actor;
            });
  return ranked;
}

// Slack histogram over per-actor min slack, split sites vs gateways.
// Fixed edges in seconds; the first bucket (<= 0) is the slack-free
// count — those actors bound their rounds.
constexpr double kSlackEdges[] = {0.0, 0.01, 0.1, 0.5, 1.0, 5.0};
constexpr std::size_t kSlackBuckets =
    sizeof(kSlackEdges) / sizeof(kSlackEdges[0]) + 1;

void slack_histogram(const RunAttribution& run, bool gateways,
                     std::uint64_t* counts) {
  for (std::size_t b = 0; b < kSlackBuckets; ++b) counts[b] = 0;
  for (const ActorAttribution& a : run.actors) {
    if (!a.slack_measured || a.gateway != gateways) continue;
    std::size_t b = 0;
    while (b < kSlackBuckets - 1 && a.min_slack_s > kSlackEdges[b]) b += 1;
    counts[b] += 1;
  }
}

void append_slack_histogram(std::string& out, const RunAttribution& run,
                            bool gateways) {
  std::uint64_t counts[kSlackBuckets];
  slack_histogram(run, gateways, counts);
  out += "{\"edges_s\": [";
  for (std::size_t b = 0; b < kSlackBuckets - 1; ++b) {
    if (b > 0) out += ", ";
    append_double(out, kSlackEdges[b]);
  }
  out += "], \"counts\": [";
  for (std::size_t b = 0; b < kSlackBuckets; ++b) {
    if (b > 0) out += ", ";
    append_u64(out, counts[b]);
  }
  out += "]}";
}

const char* actor_kind(const ActorAttribution& a) {
  return a.gateway ? "gateway" : "site";
}

// --- diff-side mini scanner ------------------------------------------------
//
// The diff reads files this repo's own writers produced, so a
// full JSON parser is not needed: every value of interest is a
// `"key": <number>` pair on a one-object-per-line JSONL line. The
// scanner still fails loudly (exit 2) on lines that do not carry the
// expected keys, so a wrong file cannot silently diff as all-zeros.

bool find_number(const std::string& line, std::size_t from, const char* key,
                 double& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle, from);
  if (at == std::string::npos) return false;
  const char* p = line.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(p, &end);
  if (end == p) return false;
  out = v;
  return true;
}

struct DiffTotals {
  std::uint64_t rounds = 0;
  double blame[kBlameCategoryCount] = {};
  double critical_path_s = 0.0;   ///< last round's replayed cp
  double server_commit_s = 0.0;   ///< last round's commit
};

/// Loads the attribution members of one metrics JSONL file. Returns
/// false (with a message in `err`) when the file is unreadable or no
/// line carries an attribution object.
bool load_totals(const std::string& path, DiffTotals& totals,
                 std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot read " + path;
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t at = line.find("\"attribution\":");
    if (at == std::string::npos) continue;
    DiffTotals row;
    bool ok = find_number(line, at, "server_commit_seconds",
                          row.server_commit_s) &&
              find_number(line, at, "critical_path_seconds",
                          row.critical_path_s);
    for (std::size_t c = 0; ok && c < kBlameCategoryCount; ++c) {
      ok = find_number(line, at,
                       blame_category_name(static_cast<BlameCategory>(c)),
                       row.blame[c]);
    }
    if (!ok) {
      err = path + ": malformed attribution line";
      return false;
    }
    totals.rounds += 1;
    for (std::size_t c = 0; c < kBlameCategoryCount; ++c) {
      totals.blame[c] += row.blame[c];
    }
    totals.critical_path_s = row.critical_path_s;
    totals.server_commit_s = row.server_commit_s;
  }
  if (totals.rounds == 0) {
    err = path + ": no attribution data (was it written with --metrics-out "
                 "by a build with attribution?)";
    return false;
  }
  return true;
}

}  // namespace

const char* blame_category_name(BlameCategory c) {
  switch (c) {
    case BlameCategory::kServerCompute: return "server_compute";
    case BlameCategory::kDownlink: return "downlink";
    case BlameCategory::kSiteCompute: return "site_compute";
    case BlameCategory::kUplinkAirtime: return "uplink_airtime";
    case BlameCategory::kRetransmit: return "retransmit";
    case BlameCategory::kPipelineStall: return "pipeline_stall";
    case BlameCategory::kGatewayFold: return "gateway_fold";
    case BlameCategory::kDeadlineWait: return "deadline_wait";
  }
  return "?";
}

RunAttribution attribute_run(const Recorder& recorder) {
  const std::vector<Segment> segments = run_segments(recorder.server_ops());
  if (segments.empty()) return RunAttribution{};
  return attribute_segment(recorder, segments.back());
}

std::vector<RunAttribution> attribute_all_runs(const Recorder& recorder) {
  std::vector<RunAttribution> out;
  for (const Segment& s : run_segments(recorder.server_ops())) {
    out.push_back(attribute_segment(recorder, s));
  }
  return out;
}

std::string render_explain_text(const RunAttribution& run, std::size_t top_k) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "attribution: server completion %.6fs, critical path %.6fs, "
                "%zu round%s\n",
                run.server_completion_s, run.critical_path_s,
                run.rounds.size(), run.rounds.size() == 1 ? "" : "s");
  out += buf;

  std::snprintf(buf, sizeof buf, "%5s %10s %10s", "round", "commit_s", "cp_s");
  out += buf;
  for (std::size_t c = 0; c < kBlameCategoryCount; ++c) {
    std::snprintf(buf, sizeof buf, " %14s",
                  blame_category_name(static_cast<BlameCategory>(c)));
    out += buf;
  }
  out += "\n";
  for (const RoundBlame& row : run.rounds) {
    std::snprintf(buf, sizeof buf, "%5llu %10.4f %10.4f",
                  static_cast<unsigned long long>(row.round), row.commit_s,
                  row.critical_path_s);
    out += buf;
    for (std::size_t c = 0; c < kBlameCategoryCount; ++c) {
      std::snprintf(buf, sizeof buf, " %14.6f", row.blame[c]);
      out += buf;
    }
    out += "\n";
  }
  std::snprintf(buf, sizeof buf, "%5s %10s %10s", "total", "", "");
  out += buf;
  for (std::size_t c = 0; c < kBlameCategoryCount; ++c) {
    std::snprintf(buf, sizeof buf, " %14.6f", run.blame_total[c]);
    out += buf;
  }
  out += "\n";

  const std::vector<const ActorAttribution*> ranked = ranked_actors(run);
  const std::size_t shown = std::min(top_k, ranked.size());
  if (shown > 0) out += "tightest-slack actors:\n";
  for (std::size_t i = 0; i < shown; ++i) {
    const ActorAttribution& a = *ranked[i];
    if (a.slack_measured) {
      std::snprintf(buf, sizeof buf,
                    "  %s %zu: min slack %.6fs, %.6fs on the critical path "
                    "(%llu frame%s)\n",
                    actor_kind(a), a.actor, a.min_slack_s, a.cp_seconds,
                    static_cast<unsigned long long>(a.cp_frames),
                    a.cp_frames == 1 ? "" : "s");
    } else {
      std::snprintf(buf, sizeof buf,
                    "  %s %zu: unbounded rounds, %.6fs on the critical path "
                    "(%llu frame%s)\n",
                    actor_kind(a), a.actor, a.cp_seconds,
                    static_cast<unsigned long long>(a.cp_frames),
                    a.cp_frames == 1 ? "" : "s");
    }
    out += buf;
  }

  for (int pass = 0; pass < 2; ++pass) {
    const bool gateways = pass == 1;
    if (gateways && run.gateways == 0) continue;
    std::uint64_t counts[kSlackBuckets];
    slack_histogram(run, gateways, counts);
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < kSlackBuckets; ++b) total += counts[b];
    if (total == 0) continue;
    std::snprintf(buf, sizeof buf, "slack histogram (%s):",
                  gateways ? "gateways" : "sites");
    out += buf;
    for (std::size_t b = 0; b < kSlackBuckets; ++b) {
      if (b == 0) {
        std::snprintf(buf, sizeof buf, " <=0s: %llu",
                      static_cast<unsigned long long>(counts[b]));
      } else if (b < kSlackBuckets - 1) {
        std::snprintf(buf, sizeof buf, "  <=%gs: %llu", kSlackEdges[b],
                      static_cast<unsigned long long>(counts[b]));
      } else {
        std::snprintf(buf, sizeof buf, "  >%gs: %llu",
                      kSlackEdges[kSlackBuckets - 2],
                      static_cast<unsigned long long>(counts[b]));
      }
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string render_explain_json(const RunAttribution& run,
                                double reported_critical_path_s,
                                std::size_t top_k) {
  std::string out = "{\"explain\": {\"server_completion_seconds\": ";
  append_double(out, run.server_completion_s);
  out += ", \"critical_path_seconds\": ";
  append_double(out, run.critical_path_s);
  out += ", \"reported_server_critical_path_seconds\": ";
  append_double(out, reported_critical_path_s);
  out += ", \"matches_reported\": ";
  out += run.critical_path_s == reported_critical_path_s ? "true" : "false";
  out += ", \"data_sites\": ";
  if (run.data_sites == kNoTopology) {
    out += "null";  // star topology: every actor holds data
  } else {
    append_u64(out, run.data_sites);
  }
  out += ", \"gateways\": ";
  append_u64(out, run.gateways);
  out += ", \"blame\": ";
  append_blame_object(out, run.blame_total);
  out += ", \"rounds\": [";
  for (std::size_t i = 0; i < run.rounds.size(); ++i) {
    const RoundBlame& row = run.rounds[i];
    if (i > 0) out += ", ";
    out += "{\"round\": ";
    append_u64(out, row.round);
    out += ", \"cutoff_seconds\": ";
    if (std::isfinite(row.cutoff_s)) {
      append_double(out, row.cutoff_s);
    } else {
      out += "null";
    }
    out += ", ";
    out += render_attribution_member(row).substr(1);  // reuse, drop the '{'
  }
  out += "], \"top_actors\": [";
  const std::vector<const ActorAttribution*> ranked = ranked_actors(run);
  const std::size_t shown = std::min(top_k, ranked.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const ActorAttribution& a = *ranked[i];
    if (i > 0) out += ", ";
    out += "{\"actor\": ";
    append_u64(out, a.actor);
    out += ", \"kind\": \"";
    out += actor_kind(a);
    out += "\", \"critical_path_seconds\": ";
    append_double(out, a.cp_seconds);
    out += ", \"critical_path_frames\": ";
    append_u64(out, a.cp_frames);
    out += ", \"min_slack_seconds\": ";
    if (a.slack_measured) {
      append_double(out, a.min_slack_s);
    } else {
      out += "null";
    }
    out += "}";
  }
  out += "], \"slack_histogram\": {\"sites\": ";
  append_slack_histogram(out, run, /*gateways=*/false);
  out += ", \"gateways\": ";
  append_slack_histogram(out, run, /*gateways=*/true);
  out += "}}}";
  return out;
}

std::string render_attribution_member(const RoundBlame& round) {
  std::string out = "{\"server_commit_seconds\": ";
  append_double(out, round.commit_s);
  out += ", \"critical_path_seconds\": ";
  append_double(out, round.critical_path_s);
  out += ", \"blame\": ";
  append_blame_object(out, round.blame);
  out += "}";
  return out;
}

int explain_diff_files(const std::string& path_a, const std::string& path_b,
                       double rel_threshold, double abs_threshold_s,
                       std::string& out) {
  DiffTotals a;
  DiffTotals b;
  std::string err;
  if (!load_totals(path_a, a, err) || !load_totals(path_b, b, err)) {
    out += "explain-diff: " + err + "\n";
    return 2;
  }
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "explain-diff: A=%s (%llu rounds)  B=%s (%llu rounds)\n",
                path_a.c_str(), static_cast<unsigned long long>(a.rounds),
                path_b.c_str(), static_cast<unsigned long long>(b.rounds));
  out += buf;
  std::snprintf(buf, sizeof buf, "%-16s %14s %14s %14s  %s\n", "category",
                "A_s", "B_s", "delta_s", "verdict");
  out += buf;
  bool regressed = false;
  auto judge = [&](const char* name, double va, double vb) {
    const double delta = vb - va;
    const bool bad = delta > abs_threshold_s &&
                     delta > rel_threshold * std::max(va, abs_threshold_s);
    regressed = regressed || bad;
    std::snprintf(buf, sizeof buf, "%-16s %14.6f %14.6f %+14.6f  %s\n", name,
                  va, vb, delta, bad ? "REGRESSED" : "ok");
    out += buf;
  };
  for (std::size_t c = 0; c < kBlameCategoryCount; ++c) {
    judge(blame_category_name(static_cast<BlameCategory>(c)), a.blame[c],
          b.blame[c]);
  }
  judge("critical_path", a.critical_path_s, b.critical_path_s);
  judge("server_commit", a.server_commit_s, b.server_commit_s);
  return regressed ? 1 : 0;
}

}  // namespace ekm
