// Discrete-event core of the edge-network simulator.
//
// Everything that happens on the virtual clock — a frame starting to
// transmit, an attempt being lost in flight, a frame arriving, a site
// sitting out an outage — is a SimEvent. Producers push events tagged
// with their firing time; the queue hands them back in (time, seq)
// order, where seq is the push order. The seq tiebreak makes the pop
// order a pure function of the push sequence, which itself is a pure
// function of (scenario, seed) because all simulator calls happen on
// the protocol thread in program order — never on pool workers. That is
// what the determinism rule in docs/simulation.md ("same seed + any
// EKM_THREADS → identical event order") bottoms out in.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/expects.hpp"

namespace ekm {

enum class SimEventType : std::uint8_t {
  kSendStart,  ///< first bit of an attempt leaves the radio
  kDrop,       ///< an attempt was lost in flight (sender times out)
  kDeliver,    ///< the frame reached the far end
  kOutage,     ///< a site sat out a dropout window before transmitting
  kExpire,     ///< the frame was abandoned: retry budget spent, a round
               ///< deadline cut the retransmissions off, or the
               ///< receiver stopped waiting at the deadline
};

[[nodiscard]] constexpr const char* sim_event_name(SimEventType t) {
  switch (t) {
    case SimEventType::kSendStart: return "send";
    case SimEventType::kDrop: return "drop";
    case SimEventType::kDeliver: return "deliver";
    case SimEventType::kOutage: return "outage";
    case SimEventType::kExpire: return "expire";
  }
  return "?";
}

struct SimEvent {
  double time = 0.0;        ///< virtual seconds since simulation start
  std::uint64_t seq = 0;    ///< push order; total tiebreak
  SimEventType type = SimEventType::kSendStart;
  std::uint32_t site = 0;   ///< source index of the link involved
  bool uplink = true;       ///< direction of the link involved
  std::uint16_t attempt = 0;///< 0-based transmission attempt
  std::uint64_t bits = 0;   ///< wire bits of the frame involved

  [[nodiscard]] friend bool operator==(const SimEvent&, const SimEvent&) = default;
};

/// Min-heap on (time, seq). Push order assigns seq, so two queues fed
/// the same push sequence pop identically — including time ties.
///
/// Implemented directly over a std::vector with std::push_heap /
/// std::pop_heap — exactly the operations std::priority_queue is
/// specified in terms of, so the pop order is unchanged — to expose the
/// two things 10k-site fleets need that the adapter hides: an up-front
/// reserve() (a cold fleet's first round would otherwise grow the heap
/// through a dozen reallocations) and a high-water mark (the
/// queue-pressure gauge the flight recorder reports per round).
class EventQueue {
 public:
  void push(SimEvent ev) {
    ev.seq = next_seq_++;
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    if (heap_.size() > high_water_) high_water_ = heap_.size();
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Pre-sizes the backing store (never shrinks). Capacity only — no
  /// effect on contents, order, or the high-water mark.
  void reserve(std::size_t events) { heap_.reserve(events); }

  /// Largest number of events ever simultaneously pending — the
  /// simulator's memory-pressure signal at fleet scale.
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

  [[nodiscard]] SimEvent pop() {
    EKM_EXPECTS_MSG(!heap_.empty(), "pop on empty event queue");
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    SimEvent ev = heap_.back();
    heap_.pop_back();
    return ev;
  }

 private:
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::vector<SimEvent> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace ekm
