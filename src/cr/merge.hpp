// Shared associative-merge layer for summaries.
//
// Every summary in the library is built from associative operators: the
// weighted coreset union (disSS's server union, the streaming
// merge-and-reduce carry) and the PCA summary stack (disPCA's Y-matrix,
// Frequent-Directions sketch append). Associativity is what lets an
// intermediate gateway (net/tree_fabric.hpp) reduce its children's
// frames in flight and forward one merged frame without changing the
// final model — but only if the gateway runs the *same* merge code the
// server runs. This header is that single implementation: the star path
// and the tree path both call through here, so "star ≡ flattened tree"
// is a property of one function, not a coincidence of three copies.
//
// Determinism contract: merges are folds over an explicit operand
// order. A fixed order (the protocols use ascending site/child index)
// gives bitwise-stable output; permuting the operands permutes rows of
// the result but preserves the weighted point multiset exactly, which
// is the order-invariance the tree relies on (tests/test_tree.cpp).
#pragma once

#include <vector>

#include "cr/coreset.hpp"

namespace ekm {

/// Weighted union of two coresets: points of `a` then points of `b`,
/// weights carried through unchanged. The associative operator behind
/// the streaming merge-and-reduce tree and the gateway in-flight
/// reduce. Ignores delta/basis (both are 0/absent on every coreset that
/// crosses this merge — disSS and streaming summaries are ambient).
[[nodiscard]] Dataset merge_weighted(const Coreset& a, const Coreset& b);

/// Ordered weighted union of many summary pieces: concatenation in
/// operand order, empty pieces skipped. This is disSS's server union —
/// and, applied to per-gateway merges of per-site pieces, exactly the
/// same row order as the flat star union, which is what the star-vs-tree
/// bitwise parity test pins down. Returns an empty Dataset when every
/// piece is empty (callers enforce their own non-empty invariants).
[[nodiscard]] Dataset merge_union(std::vector<Dataset> pieces);

}  // namespace ekm
