// Reproduces Figure 3: single-source joint DR+CR+QT on the MNIST-scale
// dataset. Panels: (a) normalized k-means cost, (b) normalized
// communication cost, (c) running time — each vs the number of retained
// significand bits s, for FSS+QT, JL+FSS+QT (Alg 1), FSS+JL+QT (Alg 2),
// JL+FSS+JL+QT (Alg 3).
#include "bench/bench_qt_common.hpp"

using namespace ekm;
using namespace ekm::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const int mc = args.monte_carlo > 0 ? args.monte_carlo : (args.full ? 10 : 3);

  // Smaller n than Fig 1 keeps the full-SVD algorithms tractable across
  // the whole s grid; the QT effect is independent of n.
  const Dataset data = mnist_dataset(args, /*n_fast=*/2500);
  ExperimentContext ctx(data, 2, args.seed);

  PipelineConfig cfg;
  cfg.epsilon = 0.3;
  cfg.seed = args.seed;
  cfg.coreset_size = std::max<std::size_t>(150, data.size() / 20);
  cfg.jl_dim = 96;
  cfg.jl_dim2 = 48;
  cfg.pca_dim = 24;

  run_qt_sweep("Fig3", "MNIST", ctx,
               {PipelineKind::kFss, PipelineKind::kJlFss, PipelineKind::kFssJl,
                PipelineKind::kJlFssJl},
               cfg, qt_sweep_grid(args.full), mc);
  return 0;
}
