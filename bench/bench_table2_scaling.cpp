// Empirically validates Table 2 — the communication-cost / complexity
// scaling summary. The theory says, as functions of (n, d):
//   FSS        comm O(kd/ε²)      time O(nd·min(n,d))
//   JL+FSS     comm O(k logn/ε⁴)  time ˜O(nd/ε²)
//   FSS+JL     comm ˜O(k³/ε⁶)     time O(nd·min(n,d))
//   JL+FSS+JL  comm ˜O(k³/ε⁶)     time ˜O(nd/ε²)
//   BKLW       comm O(mkd/ε²)     time O(nd·min(n,d))
//   JL+BKLW    comm O(mk logn/ε⁴) time ˜O(nd/ε⁴)
// This bench sweeps d at fixed n and n at fixed d and prints measured
// uplink scalars + device seconds so the scaling shape can be read off:
// with growing d, FSS/BKLW communication grows linearly while the JL-first
// variants stay flat; device time grows superlinearly in d only for the
// full-SVD algorithms.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "data/generators.hpp"

using namespace ekm;
using namespace ekm::bench;

namespace {

Dataset mixture(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng = make_rng(seed);
  MnistLikeSpec spec;
  spec.n = n;
  spec.dim = d;
  spec.latent_dim = 12;
  return make_mnist_like(spec, rng);
}

void sweep(const char* what, const std::vector<std::pair<std::size_t, std::size_t>>& sizes,
           std::uint64_t seed) {
  const std::vector<PipelineKind> single{
      PipelineKind::kFss, PipelineKind::kJlFss, PipelineKind::kFssJl,
      PipelineKind::kJlFssJl};
  std::printf("# Table 2 scaling — sweep over %s\n", what);
  std::printf("%-8s %-8s %-12s %14s %12s\n", "n", "d", "algorithm",
              "uplink-scalars", "device-s");
  for (auto [n, d] : sizes) {
    const Dataset data = mixture(n, d, seed);
    PipelineConfig cfg;
    cfg.k = 2;
    cfg.epsilon = 0.3;
    cfg.seed = seed;
    cfg.coreset_size = 200;
    cfg.jl_dim = 64;
    cfg.pca_dim = 16;
    for (PipelineKind kind : single) {
      const PipelineResult res = run_pipeline(kind, data, cfg);
      std::printf("%-8zu %-8zu %-12s %14llu %12.4f\n", n, d,
                  pipeline_name(kind),
                  static_cast<unsigned long long>(res.uplink.scalars),
                  res.device_seconds);
    }
    // Distributed pair at m = 10.
    Rng prng = make_rng(seed, 1);
    const std::vector<Dataset> parts = partition_random(data, 10, prng);
    for (PipelineKind kind : {PipelineKind::kBklw, PipelineKind::kJlBklw}) {
      const PipelineResult res = run_distributed_pipeline(kind, parts, cfg);
      std::printf("%-8zu %-8zu %-12s %14llu %12.4f\n", n, d,
                  pipeline_name(kind),
                  static_cast<unsigned long long>(res.uplink.scalars),
                  res.device_seconds);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::size_t base_n = args.full ? 16000 : 3000;
  const std::size_t base_d = args.full ? 1024 : 384;

  std::vector<std::pair<std::size_t, std::size_t>> d_sweep;
  for (std::size_t d : {128, 256, 512, 1024}) {
    d_sweep.emplace_back(base_n, args.full ? d * 2 : d);
  }
  sweep("d (fixed n)", d_sweep, args.seed);

  std::vector<std::pair<std::size_t, std::size_t>> n_sweep;
  for (std::size_t n : {1000, 2000, 4000, 8000}) {
    n_sweep.emplace_back(args.full ? n * 4 : n, base_d);
  }
  sweep("n (fixed d)", n_sweep, args.seed + 1);
  return 0;
}
