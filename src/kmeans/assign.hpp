// Batched nearest-center assignment — the shared distance kernel under
// every stage of the pipeline (k-means++ seeding, bicriteria rounds,
// Lloyd iterations, sensitivity scoring, final evaluation).
//
// The naive per-point scan walks n·k squared_distance calls, each a
// single-accumulator subtract-multiply chain. This kernel instead uses
//
//   d²(p, c) = ‖p‖² + ‖c‖² − 2⟨p, c⟩
//
// with row norms cached once per call and the ⟨p, c⟩ block computed
// GEMM-style: centers blocked 8 at a time with independent accumulators
// so the FMA chains pipeline, points tiled so a tile of centers stays in
// L1. Point tiles map onto the common/parallel.hpp chunk grid, so results
// are bitwise-identical for every EKM_THREADS value:
//   - each point's winner is computed from a scan over centers in fixed
//     ascending order (ties keep the lowest index, like the naive scan);
//   - weighted-cost reductions fold per-tile partials in tile order.
//
// The identity can go slightly negative under cancellation; distances are
// clamped to >= 0. Values differ from the subtract-form by O(eps·‖p‖‖c‖),
// which is why agreement tests compare assignments, not raw bits.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "linalg/matrix.hpp"

namespace ekm {

/// Per-point nearest-center index and squared distance.
struct BatchAssignment {
  std::vector<std::size_t> index;
  std::vector<double> sq_dist;
};

/// Assigns every row of `points` to its nearest row of `centers`.
[[nodiscard]] BatchAssignment assign_batch(const Matrix& points,
                                           const Matrix& centers);

/// In-place variant. `index` and `sq_dist` may each be empty (skipped) or
/// exactly points.rows() long. `point_sq_norms` as in assign_and_cost.
void assign_batch_into(const Matrix& points, const Matrix& centers,
                       std::span<std::size_t> index,
                       std::span<double> sq_dist,
                       std::span<const double> point_sq_norms = {});

/// Assignment plus the weighted cost sum_i w_i · d²(p_i, nearest), with a
/// deterministic ordered reduction. `index`/`sq_dist` as above.
/// `point_sq_norms` (empty, or one ‖p_i‖² per point from row_sq_norms)
/// lets iterative callers skip the O(n·d) norm pass — point data is
/// immutable across Lloyd iterations.
[[nodiscard]] double assign_and_cost(const Dataset& data,
                                     const Matrix& centers,
                                     std::span<std::size_t> index,
                                     std::span<double> sq_dist = {},
                                     std::span<const double> point_sq_norms = {});

/// ‖row‖² per row (parallel); the cacheable input to assign_and_cost.
[[nodiscard]] std::vector<double> row_sq_norms(const Matrix& m);

/// d2[i] = min(d2[i], min_c d²(points.row(i), centers.row(c))) — the
/// refresh step of D²-seeding and bicriteria rounds. d2 entries may be
/// +infinity (first round). `point_sq_norms` as in assign_and_cost —
/// seeding loops call this once per (small) center batch, so skipping
/// the O(n·d) norm pass roughly halves their refresh cost.
void update_min_sq_dist(const Matrix& points, const Matrix& centers,
                        std::span<double> d2,
                        std::span<const double> point_sq_norms = {});

/// out(i, c) = d²(points.row(i), centers.row(c)) for all pairs; `out`
/// must be preallocated points.rows() x centers.rows(). Note the values
/// carry the identity form's O(eps·‖p‖‖c‖) error in both directions —
/// don't use them where a one-sided bound is required (Elkan's pruning
/// invariants need the subtract form).
void pairwise_sq_dist_into(const Matrix& points, const Matrix& centers,
                           Matrix& out);

}  // namespace ekm
