// Tests for src/net: channel FIFO semantics, traffic ledgers, and the
// summary wire codecs (round-trip exactness + billing).
#include <gtest/gtest.h>

#include "net/channel.hpp"
#include "net/link_model.hpp"
#include "net/summary_codec.hpp"
#include "net/coreset_io.hpp"

#include <filesystem>
#include <fstream>

namespace ekm {
namespace {

TEST(Channel, FifoOrder) {
  Channel ch;
  ch.send(encode_scalar(1.0));
  ch.send(encode_scalar(2.0));
  EXPECT_TRUE(ch.has_pending());
  EXPECT_DOUBLE_EQ(decode_scalar(ch.receive()), 1.0);
  EXPECT_DOUBLE_EQ(decode_scalar(ch.receive()), 2.0);
  EXPECT_FALSE(ch.has_pending());
  EXPECT_THROW((void)ch.receive(), precondition_error);
}

TEST(Channel, LedgerAccumulates) {
  Channel ch;
  ch.send(encode_scalar(1.0));
  ch.send(encode_scalar(2.0));
  const TrafficLedger& l = ch.ledger();
  EXPECT_EQ(l.messages, 2u);
  EXPECT_EQ(l.scalars, 2u);
  EXPECT_EQ(l.bits, 128u);
  EXPECT_GT(l.bytes, 16u);  // payload + framing
  // Receiving does not change the ledger.
  (void)ch.receive();
  EXPECT_EQ(ch.ledger().messages, 2u);
}

TEST(TrafficLedger, ResetAndPlus) {
  Channel ch;
  ch.send(encode_scalar(1.0));
  ch.send(encode_scalar(2.0));
  TrafficLedger a = ch.ledger();
  const TrafficLedger sum = a + ch.ledger();
  EXPECT_EQ(sum.messages, 4u);
  EXPECT_EQ(sum.scalars, 4u);
  EXPECT_EQ(sum.bits, 2u * a.bits);
  EXPECT_EQ(sum.bytes, 2u * a.bytes);
  a.reset();
  EXPECT_EQ(a, TrafficLedger{});
  EXPECT_EQ(a + sum, sum);
}

TEST(LinkModel, RoundTripHelpers) {
  const LinkModel link{"test", 1e6, 0.5, 2.0e-9};
  TrafficLedger up;
  up.bits = 1'000'000;
  up.messages = 2;
  TrafficLedger down;
  down.bits = 500'000;
  down.messages = 1;
  // Half-duplex: the round trip is the sum of the two directions.
  EXPECT_DOUBLE_EQ(link.round_trip_seconds(up, down),
                   link.transfer_seconds(up) + link.transfer_seconds(down));
  EXPECT_DOUBLE_EQ(link.round_trip_seconds(up, down), 1.0 + 1.0 + 0.5 + 0.5);
  EXPECT_DOUBLE_EQ(link.round_trip_joules(up, down),
                   (1'000'000 + 500'000) * 2.0e-9);
  // A zeroed downlink ledger degrades to the one-way figures.
  EXPECT_DOUBLE_EQ(link.round_trip_seconds(up, TrafficLedger{}),
                   link.transfer_seconds(up));
}

TEST(Channel, IsAPort) {
  // The synchronous Channel and Network satisfy the Port/Fabric
  // interfaces the simulator shares (src/sim/).
  Channel ch;
  Port& port = ch;
  port.send(encode_scalar(4.0));
  EXPECT_TRUE(port.has_pending());
  EXPECT_DOUBLE_EQ(decode_scalar(port.receive()), 4.0);
  Network net(2);
  Fabric& fabric = net;
  fabric.uplink(1).send(encode_scalar(5.0));
  EXPECT_EQ(fabric.total_uplink().messages, 1u);
}

TEST(Network, UplinkAndDownlinkSeparated) {
  Network net(3);
  net.uplink(0).send(encode_scalar(1.0));
  net.uplink(2).send(encode_scalar(2.0));
  net.downlink(1).send(encode_scalar(3.0));
  EXPECT_EQ(net.total_uplink().messages, 2u);
  EXPECT_EQ(net.total_downlink().messages, 1u);
  EXPECT_EQ(net.total_uplink().scalars, 2u);
  EXPECT_THROW((void)net.uplink(3), precondition_error);
}

TEST(Codec, MatrixRoundTrip) {
  Rng rng = make_rng(70);
  const Matrix m = Matrix::gaussian(7, 5, rng);
  const Message msg = encode_matrix(m);
  EXPECT_EQ(msg.scalars, 35u);
  EXPECT_EQ(msg.wire_bits, 35u * 64);
  EXPECT_EQ(decode_matrix(msg), m);
}

TEST(Codec, EmptyMatrixRoundTrip) {
  const Message msg = encode_matrix(Matrix(0, 0));
  EXPECT_EQ(msg.scalars, 0u);
  const Matrix out = decode_matrix(msg);
  EXPECT_EQ(out.rows(), 0u);
}

TEST(Codec, QuantizedBillingReducesBits) {
  Rng rng = make_rng(71);
  const Matrix m = Matrix::gaussian(10, 10, rng);
  const Message full = encode_matrix(m, 52);
  const Message q8 = encode_matrix(m, 8);
  EXPECT_EQ(full.wire_bits, 100u * 64);
  EXPECT_EQ(q8.wire_bits, 100u * 20);  // 12 + 8 bits per scalar
  // Payload bytes identical — billing is logical, transport is doubles.
  EXPECT_EQ(full.payload.size(), q8.payload.size());
}

TEST(Codec, WireBitsPerScalarTable) {
  EXPECT_EQ(wire_bits_per_scalar(52), 64u);
  EXPECT_EQ(wire_bits_per_scalar(1), 13u);
  EXPECT_EQ(wire_bits_per_scalar(23), 35u);
  EXPECT_EQ(wire_bits_per_scalar(0), 64u);   // degenerate: treat as full
  EXPECT_EQ(wire_bits_per_scalar(-3), 64u);
}

TEST(Codec, CoresetRoundTripNoBasis) {
  Coreset cs;
  cs.points = Dataset(Matrix{{1.0, 2.0}, {3.0, 4.0}}, {0.5, 1.5});
  cs.delta = 7.25;
  const Message msg = encode_coreset(cs);
  EXPECT_EQ(msg.scalars, 4u + 2 + 1);  // coords + weights + delta
  const Coreset out = decode_coreset(msg);
  EXPECT_EQ(out.points.points(), cs.points.points());
  EXPECT_DOUBLE_EQ(out.points.weight(0), 0.5);
  EXPECT_DOUBLE_EQ(out.points.weight(1), 1.5);
  EXPECT_DOUBLE_EQ(out.delta, 7.25);
  EXPECT_FALSE(out.basis.has_value());
}

TEST(Codec, CoresetRoundTripWithBasis) {
  Coreset cs;
  cs.points = Dataset(Matrix{{2.0}}, {1.0});
  cs.basis = Matrix{{0.6, 0.8}};
  const Message msg = encode_coreset(cs);
  EXPECT_EQ(msg.scalars, 1u + 2 + 1 + 1);  // coords + basis + weight + delta
  const Coreset out = decode_coreset(msg);
  ASSERT_TRUE(out.basis.has_value());
  EXPECT_EQ(*out.basis, *cs.basis);
}

TEST(Codec, CoresetQuantizedBillingCountsPointsOnly) {
  Coreset cs;
  cs.points = Dataset(Matrix(4, 3), std::vector<double>(4, 1.0));
  cs.basis = Matrix(3, 10);
  const Message msg = encode_coreset(cs, 8);
  // 12 point scalars at 20 bits; 30 basis + 4 weights + 1 delta at 64.
  EXPECT_EQ(msg.wire_bits, 12u * 20 + (30u + 4 + 1) * 64);
}

TEST(Codec, EmptyCoresetRoundTrip) {
  const Message msg = encode_coreset(Coreset{});
  const Coreset out = decode_coreset(msg);
  EXPECT_EQ(out.size(), 0u);
  EXPECT_DOUBLE_EQ(out.delta, 0.0);
}

TEST(Codec, TagMismatchThrows) {
  const Message m = encode_matrix(Matrix(1, 1));
  EXPECT_THROW((void)decode_coreset(m), precondition_error);
  EXPECT_THROW((void)decode_scalar(m), precondition_error);
  const Message s = encode_scalar(1.0);
  EXPECT_THROW((void)decode_matrix(s), precondition_error);
}

TEST(Codec, TruncatedFrameThrows) {
  Message msg = encode_matrix(Matrix(2, 2));
  msg.payload.resize(msg.payload.size() / 2);
  EXPECT_THROW((void)decode_matrix(msg), precondition_error);
}

TEST(CoresetIo, SaveLoadRoundTrip) {
  Coreset cs;
  Rng rng = make_rng(910);
  cs.points = Dataset(Matrix::gaussian(12, 5, rng),
                      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  cs.delta = 3.5;
  cs.basis = Matrix::gaussian(5, 20, rng);
  const auto path = std::filesystem::temp_directory_path() / "ekm_cs.bin";
  save_coreset(cs, path);
  const Coreset back = load_coreset(path);
  EXPECT_EQ(back.points.points(), cs.points.points());
  EXPECT_DOUBLE_EQ(back.points.weight(11), 12.0);
  EXPECT_DOUBLE_EQ(back.delta, 3.5);
  ASSERT_TRUE(back.basis.has_value());
  EXPECT_EQ(*back.basis, *cs.basis);
  std::filesystem::remove(path);
}

TEST(CoresetIo, RejectsCorruptFiles) {
  const auto path = std::filesystem::temp_directory_path() / "ekm_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a coreset file at all............";
  }
  EXPECT_THROW((void)load_coreset(path), precondition_error);
  EXPECT_THROW((void)load_coreset("/nonexistent/x.bin"), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Codec, RandomBytesNeverCrashDecoders) {
  // Fuzz-ish robustness: arbitrary payloads must either decode or throw
  // a contract error — never read out of bounds or abort.
  Rng rng = make_rng(900);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> len(0, 256);
  for (int trial = 0; trial < 500; ++trial) {
    Message msg;
    msg.payload.resize(len(rng));
    for (std::byte& b : msg.payload) b = static_cast<std::byte>(byte(rng));
    try {
      (void)decode_coreset(msg);
    } catch (const precondition_error&) {
    }
    try {
      (void)decode_matrix(msg);
    } catch (const precondition_error&) {
    }
    try {
      (void)decode_scalar(msg);
    } catch (const precondition_error&) {
    }
  }
  SUCCEED();
}

TEST(Codec, BitFlippedFrameEitherDecodesOrThrows) {
  Rng rng = make_rng(901);
  const Matrix m = Matrix::gaussian(4, 4, rng);
  const Message base = encode_matrix(m);
  std::uniform_int_distribution<std::size_t> pos(0, base.payload.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  for (int trial = 0; trial < 300; ++trial) {
    Message msg = base;
    msg.payload[pos(rng)] ^= static_cast<std::byte>(1 << bit(rng));
    try {
      (void)decode_matrix(msg);
    } catch (const precondition_error&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace ekm
