// Aggregation-tree topology: sites → gateways → server.
//
// The star fabrics (Network, SimNetwork) give every site a direct
// uplink to the server, so server fan-in, merge cost, and event-queue
// pressure all grow linearly in the fleet. A TreeTopology describes the
// two-level alternative TreeFabric composes: contiguous blocks of
// `branching` sites share a gateway, the gateway reduces its children's
// frames in flight (the shared merge layer, src/cr/merge.hpp), and
// forwards one merged frame — cutting server fan-in from O(sites) to
// O(gateways) = O(sites / branching).
//
// The mapping is static and index-arithmetic only: gateway g owns sites
// [g·b, min((g+1)·b, sites)). That keeps child order — and with it the
// fixed-order merges and every determinism contract — a pure function
// of (sites, branching), with no RNG and no state.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/expects.hpp"

namespace ekm {

struct TreeTopology {
  std::size_t sites = 0;      ///< level-0 data sources
  std::size_t branching = 0;  ///< max children per gateway (>= 2)
  /// Fraction of a finite round budget allotted to level 0 (site →
  /// gateway); the remaining (1 - level_split) is the gateways' window
  /// to merge and forward (scenario key `level-split=`, default 0.5).
  double level_split = 0.5;

  [[nodiscard]] std::size_t gateways() const {
    EKM_EXPECTS(branching >= 1);
    return (sites + branching - 1) / branching;
  }
  [[nodiscard]] std::size_t gateway_of(std::size_t site) const {
    EKM_EXPECTS(site < sites);
    return site / branching;
  }
  [[nodiscard]] std::size_t child_begin(std::size_t g) const {
    return g * branching;
  }
  [[nodiscard]] std::size_t child_end(std::size_t g) const {
    const std::size_t end = (g + 1) * branching;
    return end < sites ? end : sites;
  }
  /// Children of gateway g (the last gateway may own fewer).
  [[nodiscard]] std::size_t fan_in(std::size_t g) const {
    return child_end(g) - child_begin(g);
  }

  /// Per-level deadline split: the absolute cutoff at which a gateway
  /// stops waiting for its children, given the round's absolute server
  /// deadline and the round budget (RoundPolicy::deadline_s). The
  /// gateway cutoff precedes the server's by (1 - level_split) · budget,
  /// leaving the tail of the round for the gateway's own forward hop.
  /// Unbounded rounds stay unbounded at every level.
  [[nodiscard]] double level0_deadline(double server_deadline,
                                       double budget_s) const {
    if (!std::isfinite(server_deadline) || !std::isfinite(budget_s)) {
      return server_deadline;
    }
    return server_deadline - (1.0 - level_split) * budget_s;
  }
};

}  // namespace ekm
