// Discrete sampling utilities.
//
// Sensitivity sampling, disSS and the bicriteria rounds all draw many
// i.i.d. indices from a fixed categorical distribution. A linear scan per
// draw costs O(n) each (O(nN) total); Walker's alias method preprocesses
// in O(n) and draws in O(1), which is what makes ˜O(nd) device budgets
// honest when |S| is large.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace ekm {

/// Walker alias table over an unnormalized non-negative weight vector.
class AliasTable {
 public:
  /// O(n) construction. Requires at least one strictly positive weight.
  explicit AliasTable(std::span<const double> weights);

  /// O(1) draw of an index with probability weights[i] / sum(weights).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return prob_.size(); }
  [[nodiscard]] double total_weight() const { return total_; }

 private:
  std::vector<double> prob_;        // acceptance probability per bucket
  std::vector<std::size_t> alias_;  // fallback index per bucket
  double total_ = 0.0;
};

/// Draws `count` i.i.d. indices ∝ weights (convenience wrapper; builds
/// the table once).
[[nodiscard]] std::vector<std::size_t> sample_indices(
    std::span<const double> weights, std::size_t count, Rng& rng);

/// Draws an index with probability (cum[i] - cum[i-1]) / cum.back() from
/// unnormalized non-decreasing prefix sums (cum.back() > 0 required):
/// O(log n) per draw via binary search. The right tool when the
/// distribution changes between draws (D²-seeding) or only O(k) draws
/// are taken (bicriteria rounds) — AliasTable amortizes better for many
/// draws from one fixed distribution. Zero-probability indices (equal
/// consecutive prefixes) are never selected; numeric slack at the top
/// end lands on the last index.
[[nodiscard]] std::size_t sample_from_prefix(std::span<const double> cum,
                                             Rng& rng);

}  // namespace ekm
