// Critical-path attribution — turns the Recorder's causal capture into
// answers: *why* did the server finish when it did, which actors had no
// slack, and how does one run compare to another.
//
// The simulator records every operation it applies to its server clocks
// (ServerOp, obs/recorder.hpp) at the exact mutation site, in
// dependency order, plus one FrameCausal timeline per uplink frame.
// That op sequence is the per-round dependency DAG flattened: a
// `+= compute` op is a chain edge, a `max(clock, t)` op is a join over
// an external arrival edge (downlink settle, consumed uplink, NAK /
// deadline learn — the pipeline cross-round edges and NAK
// short-circuits included, because the recorded `t` already is the
// pipelined learn time). Replaying the identical IEEE-754 fold is
// therefore the DAG's longest-path computation, and it reproduces the
// run bit for bit:
//
//   * replaying every op         == SimReport::server_completion_seconds
//   * skipping kMissLearn        == SimReport::server_critical_path_seconds
//
// Blame decomposition: each op that advanced the replayed server clock
// owns the interval it advanced it by. Chain ops map directly
// (kCompute → server compute, kDownlinkForward → downlink, kMissLearn →
// deadline wait). A consumed uplink arrival's interval is walked
// *backward* over its FrameCausal segments — delivering-attempt airtime,
// then earlier attempts (retransmit), then the link-busy wait (pipeline
// stall), then the sender's compute+outage (site compute, or gateway
// fold when the sender is an aggregation gateway), with any remainder
// charged to what the sender itself was waiting on (the broadcast /
// the gateway's children). Every category is a deterministic function
// of recorded values, so the decomposition is bitwise stable at any
// EKM_THREADS; the per-category sums equal server completion up to
// float association (the bit-exact claims above are the fold itself).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/recorder.hpp"

namespace ekm {

/// Where a second of server-completion time went. Order is the stable
/// serialization order of every writer below.
enum class BlameCategory : std::uint8_t {
  kServerCompute,   ///< server-side compute charges
  kDownlink,        ///< broadcast settle + waiting on upstream input
  kSiteCompute,     ///< data-site local compute (incl. outage sit-out)
  kUplinkAirtime,   ///< delivering attempt's airtime + latency
  kRetransmit,      ///< earlier attempts: losses, backoff, ack timeouts
  kPipelineStall,   ///< frame ready but its link still busy (store&fwd)
  kGatewayFold,     ///< gateway fold compute + waiting on its children
  kDeadlineWait,    ///< miss path: cutoff / NAK learn waits
};

inline constexpr std::size_t kBlameCategoryCount = 8;

[[nodiscard]] const char* blame_category_name(BlameCategory c);

/// One collection round's share of the decomposition. `commit_s` and
/// `critical_path_s` are the replayed clocks when the round closed
/// (the run's end for the last round).
struct RoundBlame {
  std::uint64_t round = 0;
  double cutoff_s = 0.0;  ///< kNoDeadline when the round was unbounded
  double commit_s = 0.0;
  double critical_path_s = 0.0;
  double blame[kBlameCategoryCount] = {};
};

/// One hop of the critical path: an op that advanced the replayed
/// cp clock, with the interval it owns. Feeds the trace exporter's
/// flow arrows and the dedicated critical-path track.
struct CriticalHop {
  ServerOpKind kind = ServerOpKind::kCompute;
  std::uint32_t site = 0;
  std::uint64_t frame = kNoCausalFrame;
  double cp_before_s = 0.0;
  double cp_after_s = 0.0;
};

/// Per-actor rollup: critical-path seconds contributed by this actor's
/// consumed uplink frames, and the actor's tightest slack against any
/// bounded round cutoff (misses have slack <= 0 by construction).
struct ActorAttribution {
  std::size_t actor = 0;
  bool gateway = false;
  double cp_seconds = 0.0;
  std::uint64_t cp_frames = 0;
  double min_slack_s = 0.0;
  bool slack_measured = false;
};

/// Attribution of one run segment (one kBeginRun..kBeginRun window of
/// the op stream — one fabric attach, e.g. one bench cell).
struct RunAttribution {
  bool valid = false;  ///< false when the segment held no ops at all
  std::size_t data_sites = static_cast<std::size_t>(-1);  ///< SIZE_MAX: star
  std::size_t gateways = 0;
  double server_completion_s = 0.0;  ///< == server_completion_seconds bitwise
  double critical_path_s = 0.0;  ///< == server_critical_path_seconds bitwise
  double blame_total[kBlameCategoryCount] = {};
  std::vector<RoundBlame> rounds;
  std::vector<CriticalHop> hops;
  std::vector<ActorAttribution> actors;  ///< ascending actor id
};

/// Attributes the recorder's *last* run segment (the common case: one
/// Recorder, one run).
[[nodiscard]] RunAttribution attribute_run(const Recorder& recorder);

/// Attributes every run segment in recording order — one entry per
/// begin_run. The concatenation of all segments' rounds aligns 1:1
/// with Recorder::rounds(), which is how the metrics exporter annotates
/// its JSONL lines.
[[nodiscard]] std::vector<RunAttribution> attribute_all_runs(
    const Recorder& recorder);

// --- renderers -------------------------------------------------------------

/// Human-readable blame report: per-round table, totals, top-k
/// zero-slack actors, per-site/per-gateway slack histograms.
[[nodiscard]] std::string render_explain_text(const RunAttribution& run,
                                              std::size_t top_k = 5);

/// The same report as a single-line JSON object (machine side of
/// `ekm_cli --explain=json`; one line so `tail -1 | python3 -m
/// json.tool` works in CI). `reported_critical_path_s` is
/// SimReport::server_critical_path_seconds; the object carries both it
/// and the replayed value plus their bitwise-equality verdict.
[[nodiscard]] std::string render_explain_json(const RunAttribution& run,
                                              double reported_critical_path_s,
                                              std::size_t top_k = 5);

/// One round's attribution as the JSON object the metrics exporter
/// splices into its JSONL line (`"attribution": {...}`).
[[nodiscard]] std::string render_attribution_member(const RoundBlame& round);

// --- run diffing -----------------------------------------------------------

/// Compares two attribution-annotated metrics JSONL files (the
/// `--metrics-out` artifact) per blame category. A category regresses
/// when B exceeds A by more than `abs_threshold_s` *and* by more than
/// `rel_threshold` of A. Appends a human-readable report to `out`.
/// Returns 0 (compared, no regression), 1 (regression found), or
/// 2 (a file is unreadable or carries no attribution data).
[[nodiscard]] int explain_diff_files(const std::string& path_a,
                                     const std::string& path_b,
                                     double rel_threshold,
                                     double abs_threshold_s, std::string& out);

}  // namespace ekm
