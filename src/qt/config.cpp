#include "qt/config.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/expects.hpp"
#include "qt/quantizer.hpp"

namespace ekm {
namespace {

// C1 from §6.3.2: 54912 (1 + log2 3)(1 + log2(26/3)) / 225.
double paper_c1() {
  return 54912.0 * (1.0 + std::log2(3.0)) * (1.0 + std::log2(26.0 / 3.0)) /
         225.0;
}

constexpr double kPaperC2 = 24.0;
constexpr double kPaperC3 = 2.0;

}  // namespace

double qt_error_bound(double epsilon, double epsilon_qt) {
  EKM_EXPECTS(epsilon >= 0.0 && epsilon < 1.0);
  const double e1 = 1.0 + epsilon;
  // (21b) with ε1^(1) = ε2 = ε1^(2) = ε:
  // Y = (1+ε)^2 (1+ε)^2 / (1-ε) * ((1+ε)^2 (1+ε)(1+ε)^2 + ε_QT).
  return e1 * e1 * e1 * e1 / (1.0 - epsilon) *
         (e1 * e1 * e1 * e1 * e1 + epsilon_qt);
}

double qt_modeled_cost_bits(const QtConfigProblem& p, double epsilon,
                            double epsilon_qt, int significant_bits) {
  EKM_EXPECTS(epsilon > 0.0 && epsilon < 1.0);
  const double delta = 1.0 - std::pow(1.0 - p.delta0, 1.0 / 3.0);
  const double k = static_cast<double>(p.k);
  const double lg_k = std::max(1.0, std::log2(k));
  const double e4 = std::pow(epsilon, 4.0);

  // n' — coreset cardinality (C1 k^3 log^2 k log(1/δ) / ε^4).
  const double n_prime = paper_c1() * k * k * k * lg_k * lg_k *
                         std::log(1.0 / delta) / e4;
  // d' — post-JL dimension (C2 log(n'k/δ) / ε²).
  const double d_prime =
      kPaperC2 * std::log(n_prime * k / delta) / (epsilon * epsilon);
  // b' — bits per scalar (C3 log(n sqrt(d) / ε_QT)); the enumerated s is
  // the realizable value, the model keeps the paper's form.
  const double b_model =
      kPaperC3 *
      std::log2(static_cast<double>(p.n) * std::sqrt(static_cast<double>(p.d)) /
                std::max(epsilon_qt, 1e-300));
  const double b_prime =
      std::min(b_model, static_cast<double>(12 + significant_bits));
  return n_prime * d_prime * std::max(1.0, b_prime);
}

std::vector<QtConfig> enumerate_qt_configs(const QtConfigProblem& p) {
  EKM_EXPECTS(p.y0 > 1.0);
  EKM_EXPECTS(p.opt_cost_lower_bound > 0.0);

  std::vector<QtConfig> feasible;
  for (int s = 1; s <= kDoubleSignificandBits; ++s) {
    const RoundingQuantizer q(s);
    const double dqt = q.max_error_bound(p.max_point_norm);
    const double eps_qt = 4.0 * static_cast<double>(p.n) * p.diameter * dqt /
                          p.opt_cost_lower_bound;
    // Feasibility at ε→0: Y → 1 + ε_QT.
    if (1.0 + eps_qt > p.y0) continue;

    // Largest ε with Y(ε, ε_QT) <= y0 — Y is increasing in ε, bisection.
    double lo = 0.0;
    double hi = 0.999;
    if (qt_error_bound(hi, eps_qt) <= p.y0) {
      lo = hi;
    } else {
      for (int it = 0; it < 80; ++it) {
        const double mid = 0.5 * (lo + hi);
        (qt_error_bound(mid, eps_qt) <= p.y0 ? lo : hi) = mid;
      }
    }
    if (lo <= 0.0) continue;

    QtConfig cfg;
    cfg.significant_bits = s;
    cfg.epsilon = lo;
    cfg.epsilon_qt = eps_qt;
    cfg.error_bound = qt_error_bound(lo, eps_qt);
    cfg.modeled_cost_bits = qt_modeled_cost_bits(p, lo, eps_qt, s);
    feasible.push_back(cfg);
  }
  return feasible;
}

std::optional<QtConfig> optimize_qt_config(const QtConfigProblem& problem) {
  const std::vector<QtConfig> all = enumerate_qt_configs(problem);
  if (all.empty()) return std::nullopt;
  return *std::min_element(all.begin(), all.end(),
                           [](const QtConfig& a, const QtConfig& b) {
                             return a.modeled_cost_bits < b.modeled_cost_bits;
                           });
}

}  // namespace ekm
