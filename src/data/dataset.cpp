#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

namespace ekm {

Dataset::Dataset(Matrix points, std::vector<double> weights)
    : points_(std::move(points)), weights_(std::move(weights)) {
  EKM_EXPECTS_MSG(weights_->size() == points_.rows(),
                  "one weight per point required");
  for (double w : *weights_) EKM_EXPECTS_MSG(w >= 0.0, "negative weight");
}

double Dataset::total_weight() const {
  if (!weights_) return static_cast<double>(size());
  double s = 0.0;
  for (double w : *weights_) s += w;
  return s;
}

double normalize_zero_mean_unit_range(Dataset& data) {
  if (data.empty()) return 1.0;
  Matrix& m = data.mutable_points();
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();

  std::vector<double> mean(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = m.row(i);
    for (std::size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (double& v : mean) v /= static_cast<double>(n);

  double maxabs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    auto row = m.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      row[j] -= mean[j];
      maxabs = std::max(maxabs, std::fabs(row[j]));
    }
  }
  if (maxabs == 0.0) return 1.0;
  const double scale = 1.0 / maxabs;
  m.scale(scale);
  return scale;
}

std::vector<Dataset> partition_random(const Dataset& data, std::size_t m,
                                      Rng& rng) {
  EKM_EXPECTS(m >= 1);
  std::uniform_int_distribution<std::size_t> pick(0, m - 1);
  std::vector<std::vector<std::size_t>> idx(m);
  for (std::size_t i = 0; i < data.size(); ++i) idx[pick(rng)].push_back(i);

  std::vector<Dataset> parts;
  parts.reserve(m);
  for (std::size_t s = 0; s < m; ++s) {
    Matrix pts(idx[s].size(), data.dim());
    std::vector<double> w;
    if (data.is_weighted()) w.reserve(idx[s].size());
    for (std::size_t r = 0; r < idx[s].size(); ++r) {
      auto src = data.point(idx[s][r]);
      std::copy(src.begin(), src.end(), pts.row(r).begin());
      if (data.is_weighted()) w.push_back(data.weight(idx[s][r]));
    }
    parts.push_back(data.is_weighted() ? Dataset(std::move(pts), std::move(w))
                                       : Dataset(std::move(pts)));
  }
  return parts;
}

namespace {

// Gamma(alpha, 1) sampler good enough for Dirichlet draws (Marsaglia–
// Tsang for alpha >= 1, boost trick for alpha < 1).
double sample_gamma(double alpha, Rng& rng) {
  std::normal_distribution<double> normal;
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  if (alpha < 1.0) {
    const double u = unif(rng);
    return sample_gamma(alpha + 1.0, rng) * std::pow(u, 1.0 / alpha);
  }
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal(rng);
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = unif(rng);
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

}  // namespace

std::vector<Dataset> partition_noniid(const Dataset& data, std::size_t m,
                                      double alpha, std::size_t skew_clusters,
                                      Rng& rng) {
  EKM_EXPECTS(m >= 1);
  EKM_EXPECTS(alpha > 0.0);
  EKM_EXPECTS(skew_clusters >= 1);

  // Coarse grouping: D²-seeded centers, nearest-center assignment. This
  // plays the role of "labels" for the skewed shard draw.
  std::vector<std::size_t> group(data.size(), 0);
  {
    // Inline D² seeding to avoid a dependency on ekm_kmeans.
    const std::size_t g = std::min(skew_clusters, data.size());
    std::vector<std::size_t> centers;
    std::uniform_int_distribution<std::size_t> pick(0, data.size() - 1);
    centers.push_back(pick(rng));
    std::vector<double> d2(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      d2[i] = squared_distance(data.point(i), data.point(centers[0]));
    }
    std::uniform_real_distribution<double> unif(0.0, 1.0);
    while (centers.size() < g) {
      double total = 0.0;
      for (double v : d2) total += v;
      std::size_t next = data.size() - 1;
      if (total > 0.0) {
        double r = unif(rng) * total;
        for (std::size_t i = 0; i < data.size(); ++i) {
          r -= d2[i];
          if (r <= 0.0) {
            next = i;
            break;
          }
        }
      } else {
        next = pick(rng);
      }
      centers.push_back(next);
      for (std::size_t i = 0; i < data.size(); ++i) {
        d2[i] = std::min(d2[i],
                         squared_distance(data.point(i), data.point(next)));
      }
    }
    for (std::size_t i = 0; i < data.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < centers.size(); ++c) {
        const double dist = squared_distance(data.point(i), data.point(centers[c]));
        if (dist < best) {
          best = dist;
          group[i] = c;
        }
      }
    }
  }

  // Per-group Dirichlet(alpha) source proportions, then a categorical
  // draw per point.
  const std::size_t g = *std::max_element(group.begin(), group.end()) + 1;
  std::vector<std::vector<double>> proportions(g, std::vector<double>(m));
  for (std::size_t c = 0; c < g; ++c) {
    double total = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
      proportions[c][s] = sample_gamma(alpha, rng);
      total += proportions[c][s];
    }
    for (double& p : proportions[c]) p /= total;
  }

  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::vector<std::vector<std::size_t>> idx(m);
  for (std::size_t i = 0; i < data.size(); ++i) {
    double r = unif(rng);
    std::size_t s = m - 1;
    for (std::size_t c = 0; c < m; ++c) {
      r -= proportions[group[i]][c];
      if (r <= 0.0) {
        s = c;
        break;
      }
    }
    idx[s].push_back(i);
  }

  std::vector<Dataset> parts;
  parts.reserve(m);
  for (std::size_t s = 0; s < m; ++s) {
    Matrix pts(idx[s].size(), data.dim());
    std::vector<double> w;
    if (data.is_weighted()) w.reserve(idx[s].size());
    for (std::size_t r = 0; r < idx[s].size(); ++r) {
      auto src = data.point(idx[s][r]);
      std::copy(src.begin(), src.end(), pts.row(r).begin());
      if (data.is_weighted()) w.push_back(data.weight(idx[s][r]));
    }
    parts.push_back(data.is_weighted() ? Dataset(std::move(pts), std::move(w))
                                       : Dataset(std::move(pts)));
  }
  return parts;
}

Dataset concatenate(std::span<const Dataset> parts) {
  EKM_EXPECTS(!parts.empty());
  const std::size_t d = parts[0].dim();
  std::size_t n = 0;
  bool weighted = false;
  for (const Dataset& p : parts) {
    EKM_EXPECTS_MSG(p.dim() == d || p.empty(), "dimension mismatch");
    n += p.size();
    weighted = weighted || p.is_weighted();
  }
  Matrix pts(n, d);
  std::vector<double> w;
  if (weighted) w.reserve(n);
  std::size_t r = 0;
  for (const Dataset& p : parts) {
    for (std::size_t i = 0; i < p.size(); ++i, ++r) {
      auto src = p.point(i);
      std::copy(src.begin(), src.end(), pts.row(r).begin());
      if (weighted) w.push_back(p.weight(i));
    }
  }
  return weighted ? Dataset(std::move(pts), std::move(w))
                  : Dataset(std::move(pts));
}

}  // namespace ekm
