// Flight recorder — the unified observability sink for the simulator,
// the phase scheduler, and the hot kernels.
//
// One Recorder collects three signal families that used to live apart:
//   * spans   — scheduler TaskSpans (virtual-clock, one track per
//               actor) and hot-kernel timings (host wall clock, their
//               own track; see install_recorder below);
//   * events  — the SimNetwork frame events (send/drop/deliver/outage/
//               expire), mirrored as trace instants on an event-queue
//               track, independent of the scenario's `event-log=` cap;
//   * rounds  — one metrics snapshot per collection round (responders,
//               misses/expired/orphaned, uplink bits, energy, realloc
//               waves, quantizer widths, server clock), serialized
//               through a MetricsRegistry into deterministic JSONL.
// src/obs/trace_export.hpp turns the first two into a Chrome/Perfetto
// trace and the third into a JSONL file.
//
// THE contract of this layer (tests/test_obs.cpp): recording is
// side-effect-free. A Recorder only ever *reads* values the run already
// produced — it draws no randomness, pushes no events, advances no
// clock, and every producer guards its recording with a single
// `if (recorder)` branch — so centers, ledgers, energy, and the
// SimEvent log are bitwise identical with recording on or off, at any
// EKM_THREADS, under churn and overlap alike. Wall-clock kernel spans
// are the one nondeterministic signal, and they exist only inside the
// trace output.
//
// Threading: a Recorder is not synchronized. Every producer runs on the
// protocol thread (the simulator and scheduler are protocol-thread-only
// by construction; kernels record around their entry call, before any
// pool fan-out), so no locking is needed — and none may be added where
// it could perturb the run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ekm {

/// Actor id meaning "the server" on a span (matches sched's
/// kServerActor so scheduler spans forward without translation).
inline constexpr std::size_t kRecorderServerActor =
    static_cast<std::size_t>(-1);

/// One recorded span. Virtual-clock spans carry the owning actor;
/// wall-clock spans (wall == true) live on the host track and their
/// times are seconds since the first wall span of the process.
struct RecordedSpan {
  std::size_t actor = kRecorderServerActor;
  std::string label;
  std::string kind;  ///< task_kind_name(...) or "kernel"
  double start_s = 0.0;
  double finish_s = 0.0;
  bool wall = false;
};

/// One mirrored simulator frame event (an instant on the queue track).
struct RecordedEvent {
  double time_s = 0.0;
  const char* name = "";  ///< sim_event_name(...) — static storage
  std::uint32_t site = 0;
  bool uplink = true;
  std::uint16_t attempt = 0;
  std::uint64_t bits = 0;
};

/// "No FrameCausal was recorded for this frame" sentinel.
inline constexpr std::uint64_t kNoCausalFrame = static_cast<std::uint64_t>(-1);

/// One operation the simulator applied to its server clocks, recorded
/// at the exact mutation site. The op sequence *is* the run's causal
/// DAG flattened in dependency order: replaying the identical IEEE-754
/// fold (attribution.hpp) reproduces `server_clock_` — and, skipping
/// kMissLearn, `cp_server_clock_` / SimReport::server_critical_path_
/// seconds — bit for bit. Everything here is a value the run already
/// computed; recording it draws nothing and advances nothing.
enum class ServerOpKind : std::uint8_t {
  kBeginRun,          ///< run boundary marker (pushed by begin_run)
  kTopology,          ///< site = data sites, frame = gateways (note_topology)
  kRoundOpen,         ///< value = the new round's cutoff, round = ordinal
  kCompute,           ///< server-side compute charge: clock += value
  kDownlinkForward,   ///< downlink settled: clock = max(clock, value)
  kUplinkArrival,     ///< consumed uplink hit: clock = max(clock, value)
  kMissLearn,         ///< server learned of a miss: server clock only
};

struct ServerOp {
  ServerOpKind kind = ServerOpKind::kBeginRun;
  std::uint32_t site = 0;             ///< sending/receiving actor (hits/misses)
  std::uint64_t frame = kNoCausalFrame;  ///< index into frame_causals()
  std::uint64_t round = 0;            ///< kRoundOpen: 1-based ordinal
  double value = 0.0;
};

/// Why one uplink frame arrived when it did: the per-frame timeline the
/// blame decomposition walks backward (compute → outage → link-busy
/// wait → retransmits → delivering airtime). All times are on the
/// sending actor's virtual clock, recorded at send time when the
/// simulator seals the frame's fate.
struct FrameCausal {
  std::uint32_t site = 0;
  std::uint64_t round = 0;        ///< 1-based round the frame belongs to
  double compute_s = 0.0;         ///< local compute charged before the send
  double outage_s = 0.0;          ///< dropout window sat out before sending
  double ready_s = 0.0;           ///< sender clock when the frame was ready
  double first_start_s = 0.0;     ///< first attempt's start (after link busy)
  double send_start_s = 0.0;      ///< start of the last attempt made
  double arrival_s = 0.0;         ///< delivery time (or abandon time if expired)
  double nak_at_s = 0.0;          ///< predicted-arrival NAK time (inf if none)
  std::uint16_t attempts = 0;     ///< transmission attempts actually made
  bool expired = false;
  bool wave = false;              ///< supplemental (realloc-wave) frame
};

/// One causal arrow between actors for the trace exporter: the
/// scheduler records cross-actor task-graph edges, attribution records
/// critical-path hops. Perfetto draws them as flow arrows.
struct RecordedFlow {
  std::size_t from_actor = kRecorderServerActor;
  double from_s = 0.0;
  std::size_t to_actor = kRecorderServerActor;
  double to_s = 0.0;
  bool critical = false;  ///< tagged cp=1 in the trace
};

/// Cumulative run totals a time-aware fabric hands to snapshot_round.
/// Everything here is a value the run already computed; the Recorder
/// diffs consecutive snapshots into per-round deltas itself.
struct RoundTotals {
  std::uint64_t rounds_opened = 0;  ///< ordinal of the round being closed
  double server_time_s = 0.0;
  std::uint64_t missed_frames = 0;
  std::uint64_t supplemental_misses = 0;
  std::uint64_t orphaned_frames = 0;
  std::uint64_t subrounds_opened = 0;
  std::uint64_t uplink_bits = 0;
  std::uint64_t uplink_frames = 0;
  double energy_joules = 0.0;
  /// Event-queue high-water mark (max events simultaneously pending
  /// since the run started) — the simulator's memory-pressure gauge at
  /// 10k-site fleet scale.
  std::size_t queue_high_water = 0;
  /// Per-uplink cumulative missed counts, used to count responders:
  /// a site whose uplink took no new miss this round responded.
  std::vector<std::uint64_t> per_uplink_missed;
};

/// One closed collection round, both as structured fields and as the
/// deterministic JSONL line the exporter writes. The structured fields
/// exist so the exporter can place counter samples (`ph:"C"`) on the
/// timeline without re-parsing its own JSON.
struct RoundSnapshot {
  std::uint64_t round = 0;
  double server_time_s = 0.0;
  std::size_t queue_high_water = 0;
  std::string json_line;
};

class Recorder {
 public:
  Recorder();

  // --- producers (protocol thread only) -----------------------------------
  void record_span(std::size_t actor, std::string label, std::string kind,
                   double start_s, double finish_s);
  void record_wall_span(std::string label, double start_s, double duration_s);
  void record_sim_event(double time_s, const char* name, std::uint32_t site,
                        bool uplink, std::uint16_t attempt, std::uint64_t bits);
  /// A frame left a site narrower than the configured width (adaptive
  /// quantization under deadline pressure). Full-width frames are noted
  /// too, so the histogram carries the whole width distribution.
  void note_quant_width(std::size_t site, int wire_bits, int full_bits);
  /// A gateway merge barrier closed over `fan_in` delivered children
  /// (hierarchical aggregation, net/tree_fabric.hpp). Folds into the
  /// round's fan-in histogram; star-topology runs never call this.
  void note_gateway_fanin(std::size_t gateway, std::size_t fan_in);
  /// Closes the round `totals.rounds_opened` (1-based): computes the
  /// per-round deltas against the previous snapshot, folds them into
  /// the registry, and serializes one JSONL line.
  void snapshot_round(const RoundTotals& totals);
  /// Appends one server-clock op (see ServerOpKind). The simulator
  /// calls this adjacent to each `server_clock_` mutation, behind its
  /// one `if (recorder_)` branch.
  void record_server_op(ServerOpKind kind, double value, std::uint32_t site = 0,
                        std::uint64_t frame = kNoCausalFrame,
                        std::uint64_t round = 0);
  /// Appends one frame timeline and returns its index, which the
  /// simulator stamps onto the in-flight SimFrame so receive-side ops
  /// can name their cause.
  [[nodiscard]] std::uint64_t record_frame_causal(const FrameCausal& causal);
  /// Appends one causal arrow for the trace (scheduler task-graph
  /// edges; attribution adds critical-path hops at export time).
  void record_flow(std::size_t from_actor, double from_s, std::size_t to_actor,
                   double to_s, bool critical = false);
  /// Declares the actor split of the current run: actors < data_sites
  /// hold data, actors >= data_sites are aggregation gateways
  /// (net/tree_fabric.hpp). Star runs never call this; begin_run resets
  /// to "every actor is a site". Blame categorization and gateway track
  /// naming read it; idempotent, so per-round calls are fine.
  void note_topology(std::size_t data_sites, std::size_t gateways);
  /// Re-arms the per-run delta baseline. A fabric calls this when the
  /// recorder is attached, so one Recorder can ride several runs in
  /// sequence (the bench sweeps) without the first round of a new run
  /// diffing against the last round of the previous one. Accumulated
  /// spans/events/snapshots are kept — they are the artifact. Pushes a
  /// kBeginRun marker so attribution can segment the op stream per run.
  void begin_run();

  // --- consumers ----------------------------------------------------------
  [[nodiscard]] const std::vector<RecordedSpan>& spans() const {
    return spans_;
  }
  [[nodiscard]] const std::vector<RecordedEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<RoundSnapshot>& rounds() const {
    return rounds_;
  }
  [[nodiscard]] const std::vector<ServerOp>& server_ops() const {
    return server_ops_;
  }
  [[nodiscard]] const std::vector<FrameCausal>& frame_causals() const {
    return frame_causals_;
  }
  [[nodiscard]] const std::vector<RecordedFlow>& flows() const {
    return flows_;
  }
  /// Actors below this index hold data; SIZE_MAX when no topology was
  /// declared (star runs: every actor is a site).
  [[nodiscard]] std::size_t data_sites() const { return data_sites_; }
  [[nodiscard]] std::size_t gateway_count() const { return gateway_count_; }
  [[nodiscard]] MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const { return registry_; }

 private:
  MetricsRegistry registry_;  ///< per-round scratch; reset each snapshot
  MetricsRegistry::Id id_responders_;
  MetricsRegistry::Id id_server_time_;
  MetricsRegistry::Id id_misses_;
  MetricsRegistry::Id id_supplemental_;
  MetricsRegistry::Id id_orphaned_;
  MetricsRegistry::Id id_uplink_bits_;
  MetricsRegistry::Id id_uplink_frames_;
  MetricsRegistry::Id id_energy_;
  MetricsRegistry::Id id_waves_;
  MetricsRegistry::Id id_narrowed_;
  MetricsRegistry::Id id_quant_bits_;
  MetricsRegistry::Id id_gateway_fanin_;
  MetricsRegistry::Id id_queue_high_;
  MetricsRegistry::Id id_server_commit_;

  std::vector<RecordedSpan> spans_;
  std::vector<RecordedEvent> events_;
  std::vector<RoundSnapshot> rounds_;
  std::vector<ServerOp> server_ops_;
  std::vector<FrameCausal> frame_causals_;
  std::vector<RecordedFlow> flows_;
  std::size_t data_sites_ = static_cast<std::size_t>(-1);
  std::size_t gateway_count_ = 0;
  RoundTotals prev_;  ///< totals at the previous snapshot (zeros at start)
  std::uint64_t quant_narrowed_round_ = 0;  ///< narrowed frames this round
};

/// Process-global recorder hook for code with no Fabric in reach (the
/// assign/coreset kernels, the bench timing helpers). Null by default:
/// the only cost of an uninstalled recorder is one pointer load and
/// branch per kernel entry. Install/uninstall from the main thread
/// around a run; producers must call it from the protocol thread only.
[[nodiscard]] Recorder* installed_recorder();
void install_recorder(Recorder* recorder);

/// Runs `fn` inside a wall-clock kernel span recorded to the installed
/// recorder (no-op when none is installed) and returns the elapsed
/// seconds — the one timing path kernel benches and sim sweeps share.
double timed_section(const char* label, const std::function<void()>& fn);

/// RAII wall-clock kernel span on the installed recorder. Declared here
/// so kernels can write `ObsKernelScope scope("assign.batch");` — a
/// single branch when no recorder is installed.
class ObsKernelScope {
 public:
  explicit ObsKernelScope(const char* label);
  ObsKernelScope(const ObsKernelScope&) = delete;
  ObsKernelScope& operator=(const ObsKernelScope&) = delete;
  ~ObsKernelScope();

 private:
  const char* label_;   ///< null when no recorder was installed
  double start_s_ = 0.0;
};

}  // namespace ekm
