// Feature-selection dimensionality reduction (§2 of the paper, "feature
// selection" branch; refs [15] Cohen et al.).
//
// Instead of projecting onto new features (JL/PCA), pick a weighted
// subset of the ORIGINAL coordinates. Communication-wise a selection map
// is free to describe (t column indices + t scales instead of a d x t
// matrix), and the summary keeps interpretable attributes — the reason
// feature selection stays attractive despite needing more features than
// extraction for the same ε (O(k log k/ε²) vs O(log(k/ε)/ε²)).
//
// Two samplers are provided:
//  * norm sampling    — columns ∝ squared column norm (cheap, one pass);
//  * leverage sampling— columns ∝ rank-k leverage scores from a truncated
//                       SVD (the [15]-style importance, costlier).
// Both rescale selected columns by 1/sqrt(t p_j) so inner products are
// unbiased, and both return an ordinary LinearMap (a scaled selection
// matrix), so they compose with the pipelines like any other DR method.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "dr/linear_map.hpp"

namespace ekm {

struct FeatureSelection {
  std::vector<std::size_t> indices;  ///< selected original coordinates
  std::vector<double> scales;        ///< 1/sqrt(t p_j) per selected column
  LinearMap map;                     ///< d x t scaled selection matrix

  /// Scalars needed to describe the map on the wire: t indices + t
  /// scales (vs d*t for a dense projection) — the communication edge of
  /// selection over extraction.
  [[nodiscard]] std::size_t description_scalars() const {
    return indices.size() * 2;
  }
};

/// Samples `t` features with probability proportional to squared column
/// norm. Duplicates allowed (as in the sampling analyses).
[[nodiscard]] FeatureSelection select_features_norm(const Dataset& data,
                                                    std::size_t t, Rng& rng);

/// Samples `t` features with probability proportional to their rank-k
/// leverage scores (row norms of the top-k right singular vectors).
[[nodiscard]] FeatureSelection select_features_leverage(const Dataset& data,
                                                        std::size_t t,
                                                        std::size_t k, Rng& rng);

}  // namespace ekm
