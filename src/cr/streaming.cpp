#include "cr/streaming.hpp"

#include <algorithm>

#include "cr/merge.hpp"
#include "net/summary_codec.hpp"

namespace ekm {

StreamingCoreset::StreamingCoreset(const StreamingCoresetOptions& opts)
    : opts_(opts) {
  EKM_EXPECTS(opts_.leaf_size >= 1);
  EKM_EXPECTS(opts_.coreset_size >= 1);
  EKM_EXPECTS(opts_.k >= 1);
}

void StreamingCoreset::insert(std::span<const double> point) {
  EKM_EXPECTS(!point.empty());
  if (dim_ == 0) dim_ = point.size();
  EKM_EXPECTS_MSG(point.size() == dim_, "stream dimension changed");
  leaf_.emplace_back(point.begin(), point.end());
  leaf_weights_.push_back(1.0);
  ++points_seen_;
  if (leaf_.size() >= opts_.leaf_size) flush_leaf();
}

void StreamingCoreset::insert(const Dataset& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (dim_ == 0) dim_ = batch.dim();
    EKM_EXPECTS_MSG(batch.dim() == dim_, "stream dimension changed");
    leaf_.emplace_back(batch.point(i).begin(), batch.point(i).end());
    leaf_weights_.push_back(batch.weight(i));
    ++points_seen_;
    if (leaf_.size() >= opts_.leaf_size) flush_leaf();
  }
}

Coreset StreamingCoreset::compress(const Dataset& points,
                                   std::uint64_t stream) const {
  SensitivitySampleOptions sopts;
  sopts.k = opts_.k;
  sopts.sample_size = opts_.coreset_size;
  sopts.include_bicriteria_centers = opts_.include_bicriteria_centers;
  Rng rng = make_rng(opts_.seed, stream);
  return sensitivity_sample(points, sopts, rng);
}

void StreamingCoreset::flush_leaf() {
  if (leaf_.empty()) return;
  Matrix pts(leaf_.size(), dim_);
  for (std::size_t i = 0; i < leaf_.size(); ++i) {
    std::copy(leaf_[i].begin(), leaf_[i].end(), pts.row_ptr(i));
  }
  Dataset buffer(std::move(pts), std::move(leaf_weights_));
  leaf_.clear();
  leaf_weights_ = {};
  carry(compress(buffer, ++compressions_), 0);
}

void StreamingCoreset::carry(Coreset coreset, std::size_t level) {
  if (levels_.size() <= level) levels_.resize(level + 1);
  if (!levels_[level]) {
    levels_[level] = std::move(coreset);
    return;
  }
  // Merge equal-level coresets and re-compress — binary-counter carry.
  Dataset merged = merge_weighted(*levels_[level], coreset);
  levels_[level].reset();
  carry(compress(merged, ++compressions_), level + 1);
}

Coreset StreamingCoreset::finalize() const {
  EKM_EXPECTS_MSG(points_seen_ > 0, "empty stream");
  // Union of the live levels plus the partial leaf.
  std::vector<Dataset> pieces;
  if (!leaf_.empty()) {
    Matrix pts(leaf_.size(), dim_);
    for (std::size_t i = 0; i < leaf_.size(); ++i) {
      std::copy(leaf_[i].begin(), leaf_[i].end(), pts.row(i).begin());
    }
    pieces.emplace_back(std::move(pts), leaf_weights_);
  }
  for (const auto& lvl : levels_) {
    if (lvl) pieces.push_back(lvl->points);
  }
  Coreset out;
  out.points = concatenate(pieces);
  if (out.points.size() > opts_.coreset_size) {
    out = compress(out.points, 0xf1a1ULL);  // final squeeze
  }
  return out;
}

std::size_t StreamingCoreset::live_levels() const {
  std::size_t live = 0;
  for (const auto& lvl : levels_) live += lvl.has_value();
  return live;
}

Coreset stream_round_uplink(StreamingCoreset& stream, const Dataset& batch,
                            Port& up, int significant_bits) {
  if (!batch.empty()) stream.insert(batch);
  Coreset summary;
  if (stream.points_seen() > 0) summary = stream.finalize();
  up.send(encode_coreset(summary, significant_bits));
  return summary;
}

std::size_t StreamingCoreset::resident_points() const {
  std::size_t resident = leaf_.size();
  for (const auto& lvl : levels_) {
    if (lvl) resident += lvl->size();
  }
  return resident;
}

}  // namespace ekm
