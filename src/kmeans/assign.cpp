#include "kmeans/assign.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/parallel.hpp"
#include "obs/recorder.hpp"

namespace ekm {
namespace {

// Points per parallel chunk. This is the deterministic reduction grain:
// weighted costs fold one partial per tile, in tile order.
constexpr std::size_t kPointTile = 256;
// Centers per packed tile — one SIMD lane each (AVX-512: one zmm of
// doubles; AVX2: two ymm). The b-loops below are fixed-trip so the
// compiler turns them into broadcast-FMA vector ops.
constexpr std::size_t kLanes = 8;

// Four-lane dot product with fixed association (deterministic); used for
// the cached row norms.
inline double dot4(const double* a, const double* b, std::size_t d) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    s0 += a[j] * b[j];
    s1 += a[j + 1] * b[j + 1];
    s2 += a[j + 2] * b[j + 2];
    s3 += a[j + 3] * b[j + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; j < d; ++j) s += a[j] * b[j];
  return s;
}

// Centers repacked GEMM-style: block B holds lanes for centers
// [B·8, B·8+8) transposed to [j][lane] so the lane dimension is
// contiguous — the inner product over j becomes broadcast(p[j]) * tile
// row, eight centers per FMA. Ragged blocks are zero-padded; padded
// lanes carry a +inf norm so their distance is +inf and never wins.
struct PackedCenters {
  std::size_t k = 0;
  std::size_t d = 0;
  std::size_t blocks = 0;
  std::vector<double> tiles;  // [block][j][lane], 64-byte-aligned base
  std::vector<double> norms;  // [block*8 + lane], +inf padding
  std::size_t align_offset = 0;

  explicit PackedCenters(const Matrix& centers)
      : k(centers.rows()),
        d(centers.cols()),
        blocks((centers.rows() + kLanes - 1) / kLanes),
        tiles(blocks * centers.cols() * kLanes + kLanes, 0.0),
        norms(blocks * kLanes, std::numeric_limits<double>::infinity()) {
    // Align the tile base so each [j][lane] row is one aligned cache
    // line (a lane row is exactly 64 bytes).
    const auto base = reinterpret_cast<std::uintptr_t>(tiles.data());
    align_offset = (64 - base % 64) % 64 / sizeof(double);
    for (std::size_t c = 0; c < k; ++c) {
      const double* row = centers.row_ptr(c);
      double* t = tile(c / kLanes);
      const std::size_t lane = c % kLanes;
      for (std::size_t j = 0; j < d; ++j) t[j * kLanes + lane] = row[j];
      norms[c] = dot4(row, row, d);
    }
  }

  [[nodiscard]] double* tile(std::size_t block) {
    return tiles.data() + align_offset + block * d * kLanes;
  }
  [[nodiscard]] const double* tile(std::size_t block) const {
    return tiles.data() + align_offset + block * d * kLanes;
  }
};

// d²(p, centers of block B) for all eight lanes. Four j-split
// accumulator vectors break the FMA latency chain; they are combined in
// a fixed order, so results do not depend on tiling or thread count.
#if defined(__GNUC__) || defined(__clang__)
// GNU vector-extension path: keeps the whole block — accumulate, fold,
// clamp — in one 8-lane register, so the epilogue is a handful of vector
// ops instead of per-lane extracts.
using Lanes8 = double __attribute__((vector_size(kLanes * sizeof(double)),
                                     aligned(64)));

inline void block_sq_dists(const double* p, double pn, const double* tile,
                           const double* cn, std::size_t d, double* out) {
  const auto* t =
      static_cast<const Lanes8*>(__builtin_assume_aligned(tile, 64));
  Lanes8 a0 = {}, a1 = {}, a2 = {}, a3 = {};
  std::size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    a0 += p[j] * t[j];
    a1 += p[j + 1] * t[j + 1];
    a2 += p[j + 2] * t[j + 2];
    a3 += p[j + 3] * t[j + 3];
  }
  for (; j < d; ++j) a0 += p[j] * t[j];
  const Lanes8 dot = (a0 + a1) + (a2 + a3);
  Lanes8 d2;
  for (std::size_t b = 0; b < kLanes; ++b) d2[b] = pn + cn[b];
  d2 -= 2.0 * dot;
  d2 = d2 > 0.0 ? d2 : Lanes8{};  // clamp cancellation noise at zero
  for (std::size_t b = 0; b < kLanes; ++b) out[b] = d2[b];
}
#else
inline void block_sq_dists(const double* p, double pn, const double* tile,
                           const double* cn, std::size_t d, double* out) {
  double a0[kLanes] = {0.0}, a1[kLanes] = {0.0};
  double a2[kLanes] = {0.0}, a3[kLanes] = {0.0};
  std::size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    const double p0 = p[j], p1 = p[j + 1], p2 = p[j + 2], p3 = p[j + 3];
    const double* t = tile + j * kLanes;
    for (std::size_t b = 0; b < kLanes; ++b) a0[b] += p0 * t[b];
    for (std::size_t b = 0; b < kLanes; ++b) a1[b] += p1 * t[kLanes + b];
    for (std::size_t b = 0; b < kLanes; ++b) a2[b] += p2 * t[2 * kLanes + b];
    for (std::size_t b = 0; b < kLanes; ++b) a3[b] += p3 * t[3 * kLanes + b];
  }
  for (; j < d; ++j) {
    const double pj = p[j];
    const double* t = tile + j * kLanes;
    for (std::size_t b = 0; b < kLanes; ++b) a0[b] += pj * t[b];
  }
  for (std::size_t b = 0; b < kLanes; ++b) {
    const double dot = (a0[b] + a1[b]) + (a2[b] + a3[b]);
    out[b] = std::max(0.0, pn + cn[b] - 2.0 * dot);
  }
}
#endif

// Scans all center blocks in ascending order for each point of [i0, i1)
// and calls per_point(i, best_index, best_sq_dist). `seed` (optional)
// caps the running minimum from below — ties against the seed keep the
// seed, ties between centers keep the lowest index, like the naive scan.
template <class PerPoint>
void scan_points(const Matrix& points, const PackedCenters& pc,
                 const double* pnorm, std::size_t i0, std::size_t i1,
                 const double* seed, PerPoint&& per_point) {
  const std::size_t d = pc.d;
  double d2[kLanes];
  for (std::size_t i = i0; i < i1; ++i) {
    const double* p = points.row_ptr(i);
    const double pn = pnorm[i];
    double best = seed != nullptr ? seed[i]
                                  : std::numeric_limits<double>::infinity();
    std::size_t best_c = 0;
    for (std::size_t block = 0; block < pc.blocks; ++block) {
      block_sq_dists(p, pn, pc.tile(block), pc.norms.data() + block * kLanes,
                     d, d2);
      for (std::size_t b = 0; b < kLanes; ++b) {
        if (d2[b] < best) {  // padded lanes are +inf and never win
          best = d2[b];
          best_c = block * kLanes + b;
        }
      }
    }
    per_point(i, best_c, best);
  }
}

void check_shapes(const Matrix& points, const Matrix& centers) {
  EKM_EXPECTS_MSG(centers.rows() > 0, "no centers");
  EKM_EXPECTS_MSG(points.cols() == centers.cols(),
                  "points/centers dimension mismatch");
}

// Caller-provided point norms, or a freshly computed set kept alive in
// `store`. Shared by every public entry point taking point_sq_norms.
std::span<const double> norms_or(std::span<const double> given,
                                 const Matrix& points,
                                 std::vector<double>& store) {
  EKM_EXPECTS(given.empty() || given.size() == points.rows());
  if (!given.empty()) return given;
  store = row_sq_norms(points);
  return store;
}

}  // namespace

std::vector<double> row_sq_norms(const Matrix& m) {
  std::vector<double> out(m.rows());
  const std::size_t d = m.cols();
  parallel_for(m.rows(), 4 * kPointTile,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   const double* r = m.row_ptr(i);
                   out[i] = dot4(r, r, d);
                 }
               });
  return out;
}

BatchAssignment assign_batch(const Matrix& points, const Matrix& centers) {
  BatchAssignment out;
  out.index.resize(points.rows());
  out.sq_dist.resize(points.rows());
  assign_batch_into(points, centers, out.index, out.sq_dist);
  return out;
}

void assign_batch_into(const Matrix& points, const Matrix& centers,
                       std::span<std::size_t> index,
                       std::span<double> sq_dist,
                       std::span<const double> point_sq_norms) {
  // Wall-clock span for the flight recorder (src/obs/); entered on the
  // calling (protocol) thread, so no pool worker ever touches it.
  ObsKernelScope obs_scope("assign_batch");
  check_shapes(points, centers);
  const std::size_t n = points.rows();
  EKM_EXPECTS(index.empty() || index.size() == n);
  EKM_EXPECTS(sq_dist.empty() || sq_dist.size() == n);
  if (n == 0) return;
  std::vector<double> pn_store;
  const std::span<const double> pn = norms_or(point_sq_norms, points, pn_store);
  const PackedCenters pc(centers);
  std::size_t* idx = index.empty() ? nullptr : index.data();
  double* sd = sq_dist.empty() ? nullptr : sq_dist.data();
  parallel_for(n, kPointTile, [&](std::size_t begin, std::size_t end) {
    scan_points(points, pc, pn.data(), begin, end, nullptr,
                [&](std::size_t i, std::size_t c, double d2) {
                  if (idx != nullptr) idx[i] = c;
                  if (sd != nullptr) sd[i] = d2;
                });
  });
}

double assign_and_cost(const Dataset& data, const Matrix& centers,
                       std::span<std::size_t> index,
                       std::span<double> sq_dist,
                       std::span<const double> point_sq_norms) {
  ObsKernelScope obs_scope("assign_and_cost");
  const Matrix& points = data.points();
  check_shapes(points, centers);
  const std::size_t n = points.rows();
  EKM_EXPECTS(index.empty() || index.size() == n);
  EKM_EXPECTS(sq_dist.empty() || sq_dist.size() == n);
  if (n == 0) return 0.0;
  std::vector<double> pn_store;
  const std::span<const double> pn = norms_or(point_sq_norms, points, pn_store);
  const PackedCenters pc(centers);
  std::size_t* idx = index.empty() ? nullptr : index.data();
  double* sd = sq_dist.empty() ? nullptr : sq_dist.data();
  std::vector<double> partial(parallel_chunk_count(n, kPointTile), 0.0);
  parallel_for_chunks(
      n, kPointTile,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        double local = 0.0;
        scan_points(points, pc, pn.data(), begin, end, nullptr,
                    [&](std::size_t i, std::size_t c, double d2) {
                      if (idx != nullptr) idx[i] = c;
                      if (sd != nullptr) sd[i] = d2;
                      local += data.weight(i) * d2;
                    });
        partial[chunk] = local;
      });
  double cost = 0.0;
  for (double p : partial) cost += p;  // fixed tile order
  return cost;
}

void update_min_sq_dist(const Matrix& points, const Matrix& centers,
                        std::span<double> d2,
                        std::span<const double> point_sq_norms) {
  check_shapes(points, centers);
  const std::size_t n = points.rows();
  EKM_EXPECTS(d2.size() == n);
  if (n == 0) return;
  std::vector<double> pn_store;
  const std::span<const double> pn = norms_or(point_sq_norms, points, pn_store);
  const PackedCenters pc(centers);
  double* out = d2.data();
  parallel_for(n, kPointTile, [&](std::size_t begin, std::size_t end) {
    scan_points(points, pc, pn.data(), begin, end, out,
                [&](std::size_t i, std::size_t, double best) {
                  out[i] = best;
                });
  });
}

void pairwise_sq_dist_into(const Matrix& points, const Matrix& centers,
                           Matrix& out) {
  check_shapes(points, centers);
  const std::size_t n = points.rows();
  const std::size_t k = centers.rows();
  const std::size_t d = points.cols();
  EKM_EXPECTS(out.rows() == n && out.cols() == k);
  if (n == 0) return;
  const std::vector<double> pn = row_sq_norms(points);
  const PackedCenters pc(centers);
  parallel_for(n, kPointTile, [&](std::size_t begin, std::size_t end) {
    double d2[kLanes];
    for (std::size_t i = begin; i < end; ++i) {
      const double* p = points.row_ptr(i);
      double* row = out.row_ptr(i);
      for (std::size_t block = 0; block < pc.blocks; ++block) {
        block_sq_dists(p, pn[i], pc.tile(block),
                       pc.norms.data() + block * kLanes, d, d2);
        const std::size_t c0 = block * kLanes;
        const std::size_t bc = std::min(kLanes, k - c0);
        for (std::size_t b = 0; b < bc; ++b) row[c0 + b] = d2[b];
      }
    }
  });
}

}  // namespace ekm
