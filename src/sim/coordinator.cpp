#include "sim/coordinator.hpp"

#include <cmath>
#include <utility>

#include "kmeans/lloyd.hpp"
#include "net/summary_codec.hpp"
#include "net/tree_fabric.hpp"
#include "sched/scheduler.hpp"

namespace ekm {
namespace {

/// Rows [r·n/R, (r+1)·n/R) of a shard — round r's batch of R.
Dataset round_batch(const Dataset& shard, std::size_t round, std::size_t rounds) {
  const std::size_t n = shard.size();
  const std::size_t lo = round * n / rounds;
  const std::size_t hi = (round + 1) * n / rounds;
  if (lo >= hi) return {};
  Matrix pts(hi - lo, shard.dim());
  std::vector<double> weights(hi - lo, 1.0);
  for (std::size_t i = lo; i < hi; ++i) {
    auto src = shard.point(i);
    std::copy(src.begin(), src.end(), pts.row(i - lo).begin());
    weights[i - lo] = shard.weight(i);
  }
  return {std::move(pts), std::move(weights)};
}

SimReport make_report(const SimScenario& scenario, std::string pipeline,
                      PipelineResult result, SimNetwork& net,
                      const TreeTopology* topo = nullptr) {
  SimReport report;
  report.scenario = scenario.name;
  report.pipeline = std::move(pipeline);
  report.result = std::move(result);
  report.completion_seconds = net.finish();
  report.server_completion_seconds = net.server_clock();
  report.server_critical_path_seconds = net.server_critical_path();
  report.energy_joules = net.energy_joules();
  report.outages = net.total_outages();
  report.uplink_stats = net.total_uplink_stats();
  report.downlink_stats = net.total_downlink_stats();
  report.rounds = net.rounds_opened();
  report.deadline_misses = net.missed_frames();
  report.supplemental_misses = net.supplemental_misses();
  report.realloc_waves = net.subrounds_opened();
  // finish() already ran above, so the join/leave census is final.
  report.joins = net.joins();
  report.leaves = net.leaves();
  report.orphaned_frames = net.orphaned_frames();
  report.queue_high_water = net.queue_high_water();
  // On a tree, `net` is the inner fabric carrying sites + gateways: the
  // site census below covers data sites only, and the gateway hops'
  // traffic is broken out per level.
  const std::size_t data_sites = topo != nullptr ? topo->sites
                                                 : net.num_sources();
  if (topo != nullptr) {
    report.gateways = topo->gateways();
    report.branching = topo->branching;
    report.server_fan_in = topo->gateways();
    for (std::size_t g = 0; g < topo->gateways(); ++g) {
      report.gateway_uplink_bits +=
          net.uplink_view(topo->sites + g).ledger().bits;
    }
  } else {
    report.server_fan_in = net.num_sources();
  }
  for (std::size_t i = 0; i < data_sites; ++i) {
    // A site is dropped if any round abandoned one of its uplink
    // frames, or if it lost a broadcast (basis/allocation/centers) and
    // therefore sat a round out without its data reaching the model.
    const LinkStats& up = net.uplink_view(i).stats();
    const LinkStats& down = net.downlink_view(i).stats();
    report.sites_dropped += up.missed > 0 || down.missed > 0;
    // Exact data loss: a site whose only uplink misses were superseded
    // wave supplements left its first-wave data standing. (Downlink
    // misses always count — supplemental is 0 there by construction.)
    report.sites_data_dropped += up.missed > up.supplemental ||
                                 down.missed > down.supplemental;
  }
  report.event_log = net.take_event_log();  // net is consumed — no copy
  return report;
}

/// The scenario's RoundPolicy backfills config defaults; an explicit
/// config setting (a finite deadline, a floor above 1) always wins.
/// Budget reallocation is on by default on both sides, so either side
/// saying `off` (scenario `realloc=off`, or a config that cleared
/// reallocate_budget) turns it off.
PipelineConfig apply_round_policy(PipelineConfig cfg,
                                  const SimScenario& scenario) {
  const RoundPolicy& round = scenario.round;
  if (!std::isfinite(cfg.round_deadline_s)) {
    cfg.round_deadline_s = round.deadline_s;
  }
  if (cfg.min_round_responders <= 1) {
    cfg.min_round_responders = round.min_responders;
  }
  cfg.reallocate_budget = cfg.reallocate_budget && round.reallocate;
  if (cfg.realloc_reserve <= 0.0) {
    cfg.realloc_reserve = round.realloc_reserve;
  }
  // Overlap defaults off on both sides; either side opting in wins
  // (scenario `overlap=` / CLI `--overlap`, or an explicit config).
  cfg.overlap_phases = cfg.overlap_phases || round.overlap;
  // Pipelining follows the same opt-in rule (scenario `pipeline=` /
  // CLI `--pipeline`, or an explicit config).
  cfg.pipeline_rounds = cfg.pipeline_rounds || round.pipeline;
  // Quantization policy defaults to fixed on both sides; the scenario's
  // `quant=` fills the config wherever it still holds the default.
  if (cfg.quant_policy == QuantPolicy::kFixed) {
    cfg.quant_policy = scenario.quant;
  }
  return cfg;
}

}  // namespace

SimReport Coordinator::run(PipelineKind kind, std::span<const Dataset> parts,
                           const PipelineConfig& cfg) const {
  EKM_EXPECTS(!parts.empty());
  const PipelineConfig effective = apply_round_policy(cfg, scenario_);
  // A tree with branching >= fleet size is a star with extra steps:
  // every gateway would have one child. Degenerate to the star path,
  // which the contract pins bitwise to `topology=star`.
  const bool tree = scenario_.topology == SimTopology::kTree &&
                    scenario_.branching < parts.size();
  if (tree) {
    TreeTopology topo;
    topo.sites = parts.size();
    topo.branching = scenario_.branching;
    topo.level_split = scenario_.level_split;
    const std::size_t gateways = topo.gateways();
    EKM_EXPECTS_MSG(kind != PipelineKind::kNoReduction,
                    "topology=tree supports the coreset pipelines only "
                    "(bklw | jl+bklw): no-reduction ships raw points, which "
                    "a gateway cannot merge");
    EKM_EXPECTS_MSG(effective.refine_iters == 0,
                    "topology=tree does not support device refinement "
                    "(refine_iters > 0): refinement collects per-site stats "
                    "over direct links");
    // Validate both override groups against the *split* fleet before
    // building the inner network: the inner fabric carries sites +
    // gateways sources, so without this check a siteN override naming
    // [sites, sites + gateways) would silently land on a gateway.
    for (const SiteOverride& o : scenario_.site_overrides) {
      EKM_EXPECTS_MSG(o.site < parts.size(),
                      "scenario override '" + o.key + "' names site " +
                          std::to_string(o.site) + " but the fleet has only " +
                          std::to_string(parts.size()) + " site(s)");
    }
    for (const SiteOverride& o : scenario_.gateway_overrides) {
      EKM_EXPECTS_MSG(o.site < gateways,
                      "scenario override '" + o.key + "' names gateway " +
                          std::to_string(o.site) + " but the tree has only " +
                          std::to_string(gateways) + " gateway(s)");
    }
    // Gateway g is inner device sites + g; its overrides ride the
    // ordinary per-site application path of the inner network.
    SimScenario inner = scenario_;
    for (const SiteOverride& o : scenario_.gateway_overrides) {
      SiteOverride mapped = o;
      mapped.site = topo.sites + o.site;
      inner.site_overrides.push_back(std::move(mapped));
    }
    inner.gateway_overrides.clear();
    SimNetwork net(topo.sites + gateways, inner);
    TreeFabric fabric(net, topo);
    net.set_phase_overlap(effective.overlap_phases);
    net.set_round_pipelining(effective.pipeline_rounds);
    net.set_recorder(effective.recorder);
    PipelineResult result =
        run_distributed_pipeline(kind, parts, effective, fabric);
    return make_report(scenario_, pipeline_name(kind), std::move(result), net,
                       &topo);
  }
  SimNetwork net(parts.size(), scenario_);
  // The overlap commit rule lives on the fabric (expiry NAKs change
  // when the server *learns*, not what the protocol does), so the
  // Coordinator pushes the resolved setting down to the network that
  // the phase scheduler will drive.
  net.set_phase_overlap(effective.overlap_phases);
  // Predicted-arrival NAKs live on the fabric for the same reason: the
  // sender's schedule proves a miss long before the cutoff passes, and
  // only the network sees that schedule.
  net.set_round_pipelining(effective.pipeline_rounds);
  // The flight recorder (if any) rides the same path: the network owns
  // the attachment point, and the scheduler/protocols reach it through
  // Fabric::recorder(). Null — the default — records nothing.
  net.set_recorder(effective.recorder);
  PipelineResult result = run_distributed_pipeline(kind, parts, effective, net);
  return make_report(scenario_, pipeline_name(kind), std::move(result), net);
}

SimReport Coordinator::run_streaming(std::span<const Dataset> parts,
                                     const StreamingCoresetOptions& sopts,
                                     const PipelineConfig& cfg,
                                     std::size_t rounds) const {
  EKM_EXPECTS(!parts.empty());
  EKM_EXPECTS(rounds >= 1);
  EKM_EXPECTS_MSG(scenario_.topology != SimTopology::kTree ||
                      scenario_.branching >= parts.size(),
                  "streaming deployment supports topology=star only (each "
                  "site's summary must reach the server unmerged to stay "
                  "individually replaceable next round)");
  const std::size_t m = parts.size();
  SimNetwork net(m, scenario_);

  std::vector<StreamingCoreset> streams;
  streams.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    StreamingCoresetOptions site_opts = sopts;
    site_opts.seed = derive_seed(sopts.seed, i);
    streams.emplace_back(site_opts);
  }

  // Each round: every site folds its next batch into the
  // merge-and-reduce tree and uplinks the finalized summary; the server
  // keeps the freshest summary per site. Sites progress on their own
  // virtual clocks — the server just drains arrivals. Under a round
  // deadline (scenario round policy / cfg) a late summary is abandoned
  // and the server keeps that site's previous round's summary: a
  // deadline costs freshness here, never liveness — which is also why
  // min_round_responders deliberately does not apply to streaming
  // rounds (a round with zero fresh summaries just serves stale ones).
  const PipelineConfig effective = apply_round_policy(cfg, scenario_);
  const double deadline_s = effective.round_deadline_s;
  net.set_phase_overlap(effective.overlap_phases);
  net.set_round_pipelining(effective.pipeline_rounds);
  net.set_recorder(effective.recorder);
  std::vector<Coreset> latest(m);
  // The rounds form a task graph rather than a loop so the cross-round
  // dependency is explicit and gateable: unpipelined, round r+1's open
  // barrier depends on every round-r collect (the PR 8 lock-step
  // order); pipelined, it depends only on round r's *committed* barrier
  // — declared structure the creation-order replay does not reorder
  // (scheduler.hpp), so host-side behavior is bitwise identical either
  // way and the timing win comes from the fabric's predicted-arrival
  // NAKs alone. Each round holds its own RoundContext handle: a late
  // summary expiring under round r's cutoff while round r+1's uplinks
  // ride the fabric can never be consumed by an r+1 collect
  // (SimNetwork asserts frame.round against the receiving round).
  std::vector<RoundId> rids(rounds, kNoRound);
  TaskGraph graph;
  std::vector<TaskId> prev_collects;
  TaskId prev_commit = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<TaskId> open_deps;
    if (r > 0) {
      open_deps = effective.pipeline_rounds ? std::vector<TaskId>{prev_commit}
                                            : prev_collects;
    }
    const TaskId open = graph.add(
        {TaskKind::kBarrier, kServerActor, "streaming/round-open",
         [&net, &rids, deadline_s, r] { rids[r] = net.open_round(deadline_s); },
         std::move(open_deps)});
    std::vector<TaskId> uplinks;
    uplinks.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      uplinks.push_back(graph.add(
          {TaskKind::kUplink, i, "streaming/uplink",
           [&, r, i] {
             (void)stream_round_uplink(streams[i],
                                       round_batch(parts[i], r, rounds),
                                       net.uplink(i), cfg.significant_bits);
           },
           {open}}));
    }
    std::vector<TaskId> collects;
    collects.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      collects.push_back(graph.add(
          {TaskKind::kCollect, kServerActor, "streaming/collect",
           [&net, &rids, &latest, r, i] {
             auto frame = net.uplink(i).receive_by(rids[r]);
             // A stale summary survives the round: the server keeps the
             // site's previous summary when this round's expired.
             if (!frame.has_value()) return;
             Coreset summary = decode_coreset(*frame);
             if (summary.size() > 0 || latest[i].size() == 0) {
               latest[i] = std::move(summary);
             }
           },
           {uplinks[i]}}));
    }
    // The commit barrier is purely structural (no fabric calls): it is
    // the "round r is final" join that pipelined round r+1 opens on.
    prev_commit = graph.add({TaskKind::kBarrier, kServerActor,
                             "streaming/commit", {}, collects});
    prev_collects = std::move(collects);
  }
  PhaseScheduler(net).run(graph);

  std::vector<Dataset> pieces;
  for (Coreset& c : latest) {
    if (c.size() > 0) pieces.push_back(std::move(c.points));
  }
  EKM_ENSURES_MSG(!pieces.empty(), "streaming deployment produced no summary");
  const Dataset merged = concatenate(pieces);

  KMeansOptions solver;
  solver.k = cfg.k;
  solver.restarts = cfg.solver_restarts;
  solver.max_iters = cfg.solver_max_iters;
  solver.seed = derive_seed(cfg.seed, 0x501feULL);
  const KMeansResult solved = kmeans(merged, solver);

  PipelineResult result;
  result.centers = solved.centers;
  result.uplink = net.total_uplink();
  result.downlink = net.total_downlink();
  result.summary_points = merged.size();
  return make_report(scenario_, "streaming", std::move(result), net);
}

}  // namespace ekm
