// Tests for the CSR sparse-matrix substrate: structure validation, dense
// round trips, the SpMM kernel used for sparse JL application, and
// sparse distance/assignment correctness against the dense path.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.hpp"
#include "dr/jl.hpp"
#include "kmeans/cost.hpp"
#include "linalg/sparse.hpp"

namespace ekm {
namespace {

Matrix sparse_dense_fixture() {
  Matrix m(3, 4);
  m(0, 1) = 2.0;
  m(1, 0) = -1.0;
  m(1, 3) = 4.0;
  // row 2 all zero
  return m;
}

TEST(Sparse, FromDenseRoundTrip) {
  const Matrix dense = sparse_dense_fixture();
  const SparseMatrix s = SparseMatrix::from_dense(dense);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_EQ(s.cols(), 4u);
  EXPECT_EQ(s.nnz(), 3u);
  EXPECT_NEAR(s.density(), 3.0 / 12.0, 1e-15);
  EXPECT_EQ(s.to_dense(), dense);
}

TEST(Sparse, RowAccess) {
  const SparseMatrix s = SparseMatrix::from_dense(sparse_dense_fixture());
  const auto cols = s.row_cols(1);
  const auto vals = s.row_values(1);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 0u);
  EXPECT_EQ(cols[1], 3u);
  EXPECT_DOUBLE_EQ(vals[0], -1.0);
  EXPECT_DOUBLE_EQ(vals[1], 4.0);
  EXPECT_EQ(s.row_cols(2).size(), 0u);
  EXPECT_THROW((void)s.row_cols(3), precondition_error);
}

TEST(Sparse, ToleranceDropsSmallEntries) {
  Matrix m(1, 3);
  m(0, 0) = 1e-12;
  m(0, 1) = 0.5;
  const SparseMatrix s = SparseMatrix::from_dense(m, 1e-9);
  EXPECT_EQ(s.nnz(), 1u);
}

TEST(Sparse, CsrValidation) {
  // row_ptr endpoints wrong.
  EXPECT_THROW(SparseMatrix(1, 2, {0, 2}, {0}, {1.0}), precondition_error);
  // column out of range.
  EXPECT_THROW(SparseMatrix(1, 2, {0, 1}, {5}, {1.0}), precondition_error);
  // descending row_ptr.
  EXPECT_THROW(SparseMatrix(2, 2, {0, 1, 0}, {0}, {1.0}), precondition_error);
}

TEST(Sparse, MultiplyDenseMatchesDense) {
  Rng rng = make_rng(500);
  NeuripsLikeSpec spec;
  spec.n = 60;
  spec.dim = 120;
  const Dataset d = make_neurips_like(spec, rng);
  const SparseMatrix s = SparseMatrix::from_dense(d.points());
  const Matrix b = Matrix::gaussian(120, 16, rng);
  const Matrix via_sparse = s.multiply_dense(b);
  const Matrix via_dense = matmul(d.points(), b);
  EXPECT_LT(subtract(via_sparse, via_dense).frobenius_norm(),
            1e-9 * (1.0 + via_dense.frobenius_norm()));
  EXPECT_THROW((void)s.multiply_dense(Matrix(7, 3)), precondition_error);
}

TEST(Sparse, SparseJlApplication) {
  // The device-side JL step for sparse data: S * Pi == dense(S) * Pi.
  Rng rng = make_rng(501);
  NeuripsLikeSpec spec;
  spec.n = 80;
  spec.dim = 200;
  const Dataset d = make_neurips_like(spec, rng);
  const SparseMatrix s = SparseMatrix::from_dense(d.points());
  const LinearMap jl = make_jl_projection(200, 32, 9);
  const Matrix sparse_path = s.multiply_dense(jl.projection());
  const Matrix dense_path = jl.apply(d.points());
  EXPECT_LT(subtract(sparse_path, dense_path).frobenius_norm(), 1e-9);
}

TEST(Sparse, RowSquaredDistanceMatchesDense) {
  Rng rng = make_rng(502);
  const Matrix dense = Matrix::gaussian(10, 8, rng);
  // Zero half the entries for genuine sparsity.
  Matrix sparse_dense = dense;
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 8; j += 2) sparse_dense(i, j) = 0.0;
  }
  const SparseMatrix s = SparseMatrix::from_dense(sparse_dense);
  const Matrix y = Matrix::gaussian(1, 8, rng);
  const double y_norm_sq = dot(y.row(0), y.row(0));
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(s.row_squared_distance(r, y.row(0), y_norm_sq),
                squared_distance(sparse_dense.row(r), y.row(0)), 1e-9);
  }
}

TEST(Sparse, AssignMatchesDenseAssignment) {
  Rng rng = make_rng(503);
  NeuripsLikeSpec spec;
  spec.n = 100;
  spec.dim = 64;
  const Dataset d = make_neurips_like(spec, rng);
  const SparseMatrix s = SparseMatrix::from_dense(d.points());
  const Matrix centers = Matrix::gaussian(4, 64, rng);

  const SparseAssignment sa = sparse_assign(s, centers);
  const std::vector<std::size_t> da = assign_to_centers(d, centers);
  const double dense_cost = kmeans_cost(d, centers);
  EXPECT_NEAR(sa.cost, dense_cost, 1e-7 * (1.0 + dense_cost));
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < 100; ++i) disagreements += (sa.assignment[i] != da[i]);
  EXPECT_LE(disagreements, 1u);  // ties may break differently
}

TEST(Sparse, WeightedAssignCost) {
  const Matrix dense{{1.0, 0.0}, {0.0, 1.0}};
  const SparseMatrix s = SparseMatrix::from_dense(dense);
  const Matrix centers{{0.0, 0.0}};
  const std::vector<double> w{2.0, 3.0};
  const SparseAssignment sa = sparse_assign(s, centers, w);
  EXPECT_DOUBLE_EQ(sa.cost, 2.0 * 1.0 + 3.0 * 1.0);
}

TEST(Sparse, GeneratorsAreActuallySparse) {
  Rng rng = make_rng(504);
  NeuripsLikeSpec spec;
  spec.n = 200;
  spec.dim = 500;
  spec.density = 0.05;
  const Dataset d = make_neurips_like(spec, rng);
  // After normalization the zero entries share the per-column shifted
  // value; sparsify against the per-column mode via from_dense on the raw
  // pattern is not possible post-normalization, so check support count on
  // the pre-normalized structure: approximate via distinct-value count.
  // Instead verify the intended knob on raw counts: regenerate without
  // normalization by measuring column support of nonzero deviations.
  std::size_t support = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    auto row = d.point(i);
    for (std::size_t j = 1; j < d.dim(); ++j) {
      if (std::fabs(row[j] - d.point((i + 1) % d.size())[j]) > 1e-12) {
        ++support;
        break;
      }
    }
  }
  EXPECT_GT(support, 0u);  // sanity: rows are not identical
}

}  // namespace
}  // namespace ekm
