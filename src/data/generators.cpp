#include "data/generators.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace ekm {

Dataset make_gaussian_mixture(const GaussianMixtureSpec& spec, Rng& rng) {
  EKM_EXPECTS(spec.k >= 1 && spec.n >= spec.k && spec.dim >= 1);

  // Cluster centers: random Gaussian directions scaled to `separation`.
  Matrix centers = Matrix::gaussian(spec.k, spec.dim, rng);
  for (std::size_t c = 0; c < spec.k; ++c) {
    auto row = centers.row(c);
    const double nrm = norm2(row);
    if (nrm > 0.0) {
      const double s = spec.separation / nrm;
      for (double& v : row) v *= s;
    }
  }

  Matrix pts(spec.n, spec.dim);
  std::normal_distribution<double> noise(0.0, spec.noise);
  std::uniform_int_distribution<std::size_t> pick(0, spec.k - 1);
  for (std::size_t i = 0; i < spec.n; ++i) {
    // Round-robin over clusters keeps them balanced; ties in tests then
    // depend only on noise, not on multinomial fluctuations.
    const std::size_t c = (i < spec.k) ? i : pick(rng);
    auto row = pts.row(i);
    auto ctr = centers.row(c);
    for (std::size_t j = 0; j < spec.dim; ++j) row[j] = ctr[j] + noise(rng);
  }
  return Dataset(std::move(pts));
}

Dataset make_mnist_like(const MnistLikeSpec& spec, Rng& rng) {
  EKM_EXPECTS(spec.classes >= 1 && spec.n >= spec.classes);
  EKM_EXPECTS(spec.latent_dim >= 1 && spec.latent_dim <= spec.dim);

  // Shared decoder from latent space to pixel space; per-class latent
  // means. The same decoder for all classes gives the global low
  // intrinsic dimension that real MNIST exhibits.
  const Matrix decoder =
      Matrix::gaussian(spec.latent_dim, spec.dim, rng,
                       1.0 / std::sqrt(static_cast<double>(spec.latent_dim)));
  Matrix class_means =
      Matrix::gaussian(spec.classes, spec.latent_dim, rng, spec.class_separation);

  Matrix pts(spec.n, spec.dim);
  std::normal_distribution<double> latent_noise(0.0, 1.0);
  std::normal_distribution<double> pixel_noise(0.0, 0.05);
  std::uniform_int_distribution<std::size_t> pick(0, spec.classes - 1);
  std::vector<double> z(spec.latent_dim);

  for (std::size_t i = 0; i < spec.n; ++i) {
    const std::size_t c = (i < spec.classes) ? i : pick(rng);
    for (std::size_t l = 0; l < spec.latent_dim; ++l) {
      z[l] = class_means(c, l) + latent_noise(rng);
    }
    auto row = pts.row(i);
    for (std::size_t j = 0; j < spec.dim; ++j) {
      double v = 0.0;
      for (std::size_t l = 0; l < spec.latent_dim; ++l) v += z[l] * decoder(l, j);
      // Squash to [0,1] like a pixel intensity; tanh keeps the cluster
      // geometry while bounding the range, then clamp tiny values to an
      // exact 0 to mimic MNIST's dark background.
      v = 0.5 * (std::tanh(v) + 1.0) + pixel_noise(rng);
      v = std::clamp(v, 0.0, 1.0);
      if (v < 0.12) v = 0.0;
      row[j] = v;
    }
  }

  Dataset out(std::move(pts));
  normalize_zero_mean_unit_range(out);
  return out;
}

Dataset make_neurips_like(const NeuripsLikeSpec& spec, Rng& rng) {
  EKM_EXPECTS(spec.topics >= 1 && spec.dim >= 1 && spec.n >= 1);

  // Each topic is a distribution over the `dim` attributes with Zipf
  // weights over a topic-specific random permutation of attributes.
  std::vector<std::vector<double>> topic_cdf(spec.topics);
  std::vector<std::vector<std::size_t>> topic_perm(spec.topics);
  for (std::size_t t = 0; t < spec.topics; ++t) {
    auto& perm = topic_perm[t];
    perm.resize(spec.dim);
    for (std::size_t j = 0; j < spec.dim; ++j) perm[j] = j;
    std::shuffle(perm.begin(), perm.end(), rng);

    auto& cdf = topic_cdf[t];
    cdf.resize(spec.dim);
    double acc = 0.0;
    for (std::size_t j = 0; j < spec.dim; ++j) {
      acc += 1.0 / std::pow(static_cast<double>(j + 1), spec.zipf_exponent);
      cdf[j] = acc;
    }
    for (double& v : cdf) v /= acc;
  }

  Matrix pts(spec.n, spec.dim);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick_topic(0, spec.topics - 1);
  std::poisson_distribution<int> total_count(spec.mean_count);

  // Cap the support of each row so the expected density matches `density`.
  const auto max_support = std::max<std::size_t>(
      1, static_cast<std::size_t>(spec.density * static_cast<double>(spec.dim)));

  for (std::size_t i = 0; i < spec.n; ++i) {
    const std::size_t primary = (i < spec.topics) ? i : pick_topic(rng);
    const std::size_t secondary = pick_topic(rng);
    const int draws = std::max(1, total_count(rng));
    auto row = pts.row(i);
    std::size_t support = 0;
    for (int s = 0; s < draws; ++s) {
      const std::size_t t = (unif(rng) < 0.8) ? primary : secondary;
      const auto& cdf = topic_cdf[t];
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), unif(rng));
      std::size_t zipf_rank =
          static_cast<std::size_t>(std::distance(cdf.begin(), it));
      if (zipf_rank >= spec.dim) zipf_rank = spec.dim - 1;
      const std::size_t attr = topic_perm[t][zipf_rank];
      if (row[attr] == 0.0) {
        if (support >= max_support) continue;
        ++support;
      }
      row[attr] += 1.0;
    }
  }

  Dataset out(std::move(pts));
  normalize_zero_mean_unit_range(out);
  return out;
}

}  // namespace ekm
