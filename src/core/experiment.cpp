#include "core/experiment.hpp"

#include <iomanip>
#include <sstream>

#include "kmeans/cost.hpp"
#include "kmeans/lloyd.hpp"

namespace ekm {

std::vector<double> ExperimentSeries::costs() const {
  std::vector<double> v;
  v.reserve(runs.size());
  for (const RunMetrics& r : runs) v.push_back(r.normalized_cost);
  return v;
}

std::vector<double> ExperimentSeries::comm_bits() const {
  std::vector<double> v;
  v.reserve(runs.size());
  for (const RunMetrics& r : runs) v.push_back(r.normalized_comm_bits);
  return v;
}

std::vector<double> ExperimentSeries::device_times() const {
  std::vector<double> v;
  v.reserve(runs.size());
  for (const RunMetrics& r : runs) v.push_back(r.device_seconds);
  return v;
}

ExperimentContext::ExperimentContext(Dataset data, std::size_t k,
                                     std::uint64_t seed,
                                     std::size_t num_sources)
    : data_(std::move(data)), k_(k) {
  EKM_EXPECTS(!data_.empty());
  EKM_EXPECTS(k_ >= 1);

  // X*: the best solution the solver finds on the full dataset — the
  // paper's denominator "centers computed from P".
  KMeansOptions opts;
  opts.k = k_;
  opts.restarts = 10;
  opts.max_iters = 200;
  opts.seed = derive_seed(seed, 0xba5eULL);
  KMeansResult baseline = kmeans(data_, opts);
  baseline_centers_ = std::move(baseline.centers);
  baseline_cost_ = baseline.cost;

  if (num_sources > 1) {
    Rng rng = make_rng(seed, 0x9a87ULL);
    parts_ = partition_random(data_, num_sources, rng);
  }
}

ExperimentSeries ExperimentContext::run(PipelineKind kind,
                                        PipelineConfig config,
                                        int monte_carlo_runs) const {
  EKM_EXPECTS(monte_carlo_runs >= 1);
  const double raw_bits =
      static_cast<double>(data_.scalar_count()) * 64.0;
  const double raw_scalars = static_cast<double>(data_.scalar_count());

  ExperimentSeries series;
  series.name = pipeline_name(kind);
  config.k = k_;

  for (int r = 0; r < monte_carlo_runs; ++r) {
    PipelineConfig run_cfg = config;
    run_cfg.seed = derive_seed(config.seed, static_cast<std::uint64_t>(r));
    const PipelineResult res =
        pipeline_is_distributed(kind)
            ? run_distributed_pipeline(kind, parts(), run_cfg)
            : run_pipeline(kind, data_, run_cfg);

    RunMetrics m;
    m.normalized_cost =
        baseline_cost_ > 0.0
            ? kmeans_cost(data_, res.centers) / baseline_cost_
            : 1.0;
    m.normalized_comm_bits = static_cast<double>(res.uplink.bits) / raw_bits;
    m.normalized_comm_scalars =
        static_cast<double>(res.uplink.scalars) / raw_scalars;
    m.device_seconds = res.device_seconds;
    m.summary_points = res.summary_points;
    m.uplink_bits = res.uplink.bits;
    series.runs.push_back(m);
  }
  return series;
}

std::string format_series_table(const std::vector<ExperimentSeries>& series) {
  std::ostringstream out;
  out << std::left << std::setw(14) << "algorithm" << std::right
      << std::setw(12) << "cost(mean)" << std::setw(11) << "cost(max)"
      << std::setw(14) << "comm(bits)" << std::setw(13) << "time(s)" << '\n';
  for (const ExperimentSeries& s : series) {
    const Summary cost = summarize(s.costs());
    const Summary comm = summarize(s.comm_bits());
    const Summary time = summarize(s.device_times());
    out << std::left << std::setw(14) << s.name << std::right << std::fixed
        << std::setprecision(4) << std::setw(12) << cost.mean << std::setw(11)
        << cost.max << std::scientific << std::setprecision(2) << std::setw(14)
        << comm.mean << std::fixed << std::setprecision(4) << std::setw(13)
        << time.mean << '\n';
  }
  return out.str();
}

}  // namespace ekm
