// Tests for src/data: Dataset semantics, §7.1 normalization, random
// partitioning, synthetic generators, and file loaders.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "data/loaders.hpp"
#include "kmeans/cost.hpp"
#include "linalg/svd.hpp"
#include "kmeans/lloyd.hpp"

namespace ekm {
namespace {

TEST(Dataset, WeightsDefaultToOne) {
  const Dataset d(Matrix{{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_FALSE(d.is_weighted());
  EXPECT_DOUBLE_EQ(d.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(d.total_weight(), 2.0);
  EXPECT_EQ(d.scalar_count(), 4u);
}

TEST(Dataset, WeightedInvariants) {
  const Dataset d(Matrix{{1.0}, {2.0}}, {0.5, 1.5});
  EXPECT_TRUE(d.is_weighted());
  EXPECT_DOUBLE_EQ(d.total_weight(), 2.0);
  EXPECT_THROW(Dataset(Matrix{{1.0}}, {0.5, 0.5}), precondition_error);
  EXPECT_THROW(Dataset(Matrix{{1.0}}, {-0.1}), precondition_error);
}

TEST(Normalize, ZeroMeanUnitRange) {
  Dataset d(Matrix{{0.0, 10.0}, {2.0, 30.0}, {4.0, 20.0}});
  normalize_zero_mean_unit_range(d);
  // Column means are zero.
  for (std::size_t j = 0; j < d.dim(); ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) mean += d.point(i)[j];
    EXPECT_NEAR(mean / static_cast<double>(d.size()), 0.0, 1e-12);
  }
  // Range within [-1, 1] and the extreme is attained.
  double maxabs = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (double v : d.point(i)) maxabs = std::max(maxabs, std::fabs(v));
  }
  EXPECT_NEAR(maxabs, 1.0, 1e-12);
}

TEST(Normalize, DegenerateAllZero) {
  Dataset d(Matrix(3, 2));
  EXPECT_DOUBLE_EQ(normalize_zero_mean_unit_range(d), 1.0);
}

TEST(Partition, PreservesPointsAndCount) {
  Rng rng = make_rng(3);
  GaussianMixtureSpec spec;
  spec.n = 200;
  spec.dim = 4;
  const Dataset d = make_gaussian_mixture(spec, rng);
  const std::vector<Dataset> parts = partition_random(d, 7, rng);
  ASSERT_EQ(parts.size(), 7u);
  std::size_t total = 0;
  for (const Dataset& p : parts) {
    total += p.size();
    if (!p.empty()) EXPECT_EQ(p.dim(), 4u);
  }
  EXPECT_EQ(total, 200u);

  // Every original point must appear in exactly one part (multiset match
  // via sum of coordinates as a cheap fingerprint plus size equality).
  double orig_sum = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (double v : d.point(i)) orig_sum += v;
  }
  double part_sum = 0.0;
  for (const Dataset& p : parts) {
    for (std::size_t i = 0; i < p.size(); ++i) {
      for (double v : p.point(i)) part_sum += v;
    }
  }
  EXPECT_NEAR(orig_sum, part_sum, 1e-9 * (1.0 + std::fabs(orig_sum)));
}

TEST(Partition, CarriesWeights) {
  const Dataset d(Matrix{{1.0}, {2.0}, {3.0}}, {1.0, 2.0, 3.0});
  Rng rng = make_rng(4);
  const std::vector<Dataset> parts = partition_random(d, 2, rng);
  double total_w = 0.0;
  for (const Dataset& p : parts) total_w += p.total_weight();
  EXPECT_DOUBLE_EQ(total_w, 6.0);
}

TEST(PartitionNonIid, PreservesAllPoints) {
  Rng rng = make_rng(40);
  GaussianMixtureSpec spec;
  spec.n = 400;
  spec.dim = 6;
  spec.k = 4;
  const Dataset d = make_gaussian_mixture(spec, rng);
  const std::vector<Dataset> parts = partition_noniid(d, 5, 0.3, 4, rng);
  ASSERT_EQ(parts.size(), 5u);
  std::size_t total = 0;
  for (const Dataset& p : parts) total += p.size();
  EXPECT_EQ(total, 400u);
}

TEST(PartitionNonIid, SmallAlphaSkewsShardSizes) {
  Rng rng = make_rng(41);
  GaussianMixtureSpec spec;
  spec.n = 2000;
  spec.dim = 8;
  spec.k = 4;
  spec.separation = 20.0;
  const Dataset d = make_gaussian_mixture(spec, rng);

  // Measure skew via the max/min shard-size ratio across several draws.
  auto skew_of = [&](double alpha, std::uint64_t seed) {
    Rng r = make_rng(seed);
    const std::vector<Dataset> parts = partition_noniid(d, 4, alpha, 4, r);
    std::size_t mx = 0;
    std::size_t mn = d.size();
    for (const Dataset& p : parts) {
      mx = std::max(mx, p.size());
      mn = std::min(mn, p.size());
    }
    return static_cast<double>(mx) / std::max<double>(1.0, static_cast<double>(mn));
  };
  double tight = 0.0;
  double loose = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    tight += skew_of(100.0, 50 + s);
    loose += skew_of(0.05, 60 + s);
  }
  EXPECT_GT(loose, tight);  // smaller alpha => more skew
}

TEST(PartitionNonIid, ValidatesArguments) {
  const Dataset d(Matrix{{1.0}});
  Rng rng = make_rng(42);
  EXPECT_THROW((void)partition_noniid(d, 2, 0.0, 2, rng), precondition_error);
  EXPECT_THROW((void)partition_noniid(d, 0, 1.0, 2, rng), precondition_error);
}

TEST(Concatenate, RoundTripsPartition) {
  Rng rng = make_rng(5);
  GaussianMixtureSpec spec;
  spec.n = 64;
  spec.dim = 3;
  const Dataset d = make_gaussian_mixture(spec, rng);
  const std::vector<Dataset> parts = partition_random(d, 4, rng);
  const Dataset merged = concatenate(parts);
  EXPECT_EQ(merged.size(), d.size());
  EXPECT_EQ(merged.dim(), d.dim());
}

TEST(Generators, GaussianMixtureIsClusterable) {
  Rng rng = make_rng(6);
  GaussianMixtureSpec spec;
  spec.n = 300;
  spec.dim = 8;
  spec.k = 3;
  spec.separation = 30.0;
  spec.noise = 1.0;
  const Dataset d = make_gaussian_mixture(spec, rng);
  // With separation >> noise the k-means cost at k=3 is far below k=1.
  KMeansOptions opts;
  opts.k = 3;
  opts.seed = 11;
  const KMeansResult res = kmeans(d, opts);
  EXPECT_LT(res.cost, 0.1 * one_means_cost(d));
}

TEST(Generators, DeterministicGivenSeed) {
  MnistLikeSpec spec;
  spec.n = 50;
  spec.dim = 49;
  Rng rng1 = make_rng(7);
  Rng rng2 = make_rng(7);
  const Dataset a = make_mnist_like(spec, rng1);
  const Dataset b = make_mnist_like(spec, rng2);
  EXPECT_EQ(a.points(), b.points());
}

TEST(Generators, MnistLikeShapeAndNormalization) {
  MnistLikeSpec spec;
  spec.n = 120;
  spec.dim = 196;
  Rng rng = make_rng(8);
  const Dataset d = make_mnist_like(spec, rng);
  EXPECT_EQ(d.size(), 120u);
  EXPECT_EQ(d.dim(), 196u);
  double maxabs = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (double v : d.point(i)) maxabs = std::max(maxabs, std::fabs(v));
  }
  EXPECT_LE(maxabs, 1.0 + 1e-12);
  EXPECT_GT(maxabs, 0.5);  // normalization actually used the range
}

TEST(Generators, MnistLikeHasLowIntrinsicDimension) {
  MnistLikeSpec spec;
  spec.n = 200;
  spec.dim = 144;
  spec.latent_dim = 8;
  Rng rng = make_rng(9);
  const Dataset d = make_mnist_like(spec, rng);
  const Svd svd = thin_svd(d.points());
  double total = 0.0;
  for (double s : svd.sigma) total += s * s;
  double top = 0.0;
  for (std::size_t j = 0; j < 24 && j < svd.rank(); ++j) {
    top += svd.sigma[j] * svd.sigma[j];
  }
  // The top ~3x latent_dim components capture nearly all energy.
  EXPECT_GT(top / total, 0.85);
}

TEST(Generators, NeuripsLikeIsSparseNonNegativeBeforeNormalization) {
  NeuripsLikeSpec spec;
  spec.n = 150;
  spec.dim = 400;
  Rng rng = make_rng(10);
  const Dataset d = make_neurips_like(spec, rng);
  EXPECT_EQ(d.size(), 150u);
  EXPECT_EQ(d.dim(), 400u);
  // After zero-mean normalization sparsity shows as many identical
  // values (the shifted zeros) per column; check the mode dominates.
  std::size_t zeros_like = 0;
  const double probe = d.point(0)[0];
  (void)probe;
  for (std::size_t i = 1; i < d.size(); ++i) {
    if (d.point(i)[0] == d.point(0)[0] || std::fabs(d.point(i)[0]) < 1.0) {
      ++zeros_like;
    }
  }
  EXPECT_GT(zeros_like, d.size() / 2);
}

TEST(Loaders, CsvRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "ekm_test.csv";
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "1.5, 2.5, -3\n";
    out << "0, 1e3, 4.25\n";
  }
  const Dataset d = load_csv(path);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.dim(), 3u);
  EXPECT_DOUBLE_EQ(d.point(0)[2], -3.0);
  EXPECT_DOUBLE_EQ(d.point(1)[1], 1000.0);
  std::filesystem::remove(path);
}

TEST(Loaders, CsvRaggedThrows) {
  const auto path = std::filesystem::temp_directory_path() / "ekm_ragged.csv";
  {
    std::ofstream out(path);
    out << "1, 2\n1, 2, 3\n";
  }
  EXPECT_THROW((void)load_csv(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Loaders, MissingIdxReturnsNullopt) {
  EXPECT_FALSE(load_idx_images("/nonexistent/file-idx3-ubyte").has_value());
}

TEST(Loaders, IdxRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "ekm_test.idx";
  {
    std::ofstream out(path, std::ios::binary);
    const unsigned char header[] = {0, 0, 8, 3,  // magic 0x803
                                    0, 0, 0, 2,  // 2 images
                                    0, 0, 0, 2,  // 2 x 2
                                    0, 0, 0, 2};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
    const unsigned char pixels[8] = {0, 255, 128, 64, 10, 20, 30, 40};
    out.write(reinterpret_cast<const char*>(pixels), sizeof(pixels));
  }
  const auto d = load_idx_images(path);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->size(), 2u);
  EXPECT_EQ(d->dim(), 4u);
  EXPECT_DOUBLE_EQ(d->point(0)[1], 1.0);
  EXPECT_NEAR(d->point(0)[2], 128.0 / 255.0, 1e-12);
  std::filesystem::remove(path);
}

TEST(Loaders, GenerateFallbacksProduceRequestedShape) {
  Rng rng = make_rng(11);
  const Dataset mnist = load_or_generate_mnist("/nonexistent", 64, rng);
  EXPECT_EQ(mnist.size(), 64u);
  EXPECT_EQ(mnist.dim(), 784u);
  Rng rng2 = make_rng(12);
  const Dataset neurips = load_or_generate_neurips("/nonexistent", 80, 120, rng2);
  EXPECT_EQ(neurips.size(), 80u);
  EXPECT_EQ(neurips.dim(), 120u);
}

}  // namespace
}  // namespace ekm
