#include "cr/coreset.hpp"

#include <algorithm>
#include <cmath>

#include "kmeans/cost.hpp"

namespace ekm {

Dataset Coreset::to_ambient() const {
  if (!basis) return points;
  EKM_EXPECTS_MSG(points.dim() == basis->rows(),
                  "coreset coords do not match basis rank");
  Matrix ambient = matmul(points.points(), *basis);  // (|S| x t) * (t x d)
  return points.is_weighted() ? Dataset(std::move(ambient), *points.weights())
                              : Dataset(std::move(ambient));
}

std::size_t Coreset::scalar_count() const {
  std::size_t count = points.size() * points.dim();  // coordinates
  count += points.size();                            // weights
  count += 1;                                        // delta
  if (basis) count += basis->rows() * basis->cols(); // subspace basis
  return count;
}

double coreset_cost(const Coreset& coreset, const Matrix& centers) {
  const Dataset ambient = coreset.to_ambient();
  return kmeans_cost(ambient, centers) + coreset.delta;
}

double coreset_eps_for(const Coreset& coreset, const Dataset& full,
                       const Matrix& centers) {
  const double true_cost = kmeans_cost(full, centers);
  const double approx = coreset_cost(coreset, centers);
  if (true_cost == 0.0) return approx == 0.0 ? 0.0 : INFINITY;
  // (1-eps) cost <= approx <= (1+eps) cost  =>  eps >= |approx/cost - 1|.
  return std::fabs(approx / true_cost - 1.0);
}

}  // namespace ekm
