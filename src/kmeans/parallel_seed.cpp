#include "kmeans/parallel_seed.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "common/sampling.hpp"
#include "kmeans/assign.hpp"
#include "kmeans/cost.hpp"

namespace ekm {

Matrix kmeans_parallel_seed(const Dataset& data,
                            const ParallelSeedOptions& opts, Rng& rng) {
  EKM_EXPECTS(!data.empty());
  EKM_EXPECTS(opts.k >= 1 && opts.rounds >= 1 && opts.oversampling > 0.0);
  const std::size_t n = data.size();
  const std::size_t d = data.dim();
  const auto l = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             opts.oversampling * static_cast<double>(opts.k))));

  // Round 0: one uniform (weight-proportional) point.
  std::vector<double> w0(n);
  for (std::size_t i = 0; i < n; ++i) w0[i] = data.weight(i);
  const AliasTable first(w0);
  Matrix candidates(1, d);
  {
    auto src = data.point(first.sample(rng));
    std::copy(src.begin(), src.end(), candidates.row(0).begin());
  }

  const std::vector<double> point_norms = row_sq_norms(data.points());
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  update_min_sq_dist(data.points(), candidates, d2, point_norms);

  // O(rounds) oversampling passes: add each point with probability
  // min(1, l * cost(p) / total_cost).
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (int round = 0; round < opts.rounds; ++round) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += data.weight(i) * d2[i];
    if (total <= 0.0) break;
    Matrix added;
    for (std::size_t i = 0; i < n; ++i) {
      const double p =
          std::min(1.0, static_cast<double>(l) * data.weight(i) * d2[i] / total);
      if (unif(rng) < p) {
        Matrix row(1, d);
        auto src = data.point(i);
        std::copy(src.begin(), src.end(), row.row(0).begin());
        added.append_rows(row);
      }
    }
    if (added.rows() == 0) continue;
    candidates.append_rows(added);
    update_min_sq_dist(data.points(), added, d2, point_norms);
  }

  if (candidates.rows() <= opts.k) return candidates;

  // Reduction: weight each candidate by the mass it attracts, then run
  // weighted k-means++ & Lloyd on the (small) candidate set.
  std::vector<std::size_t> attract(n);
  assign_batch_into(data.points(), candidates, attract, {});
  std::vector<double> cand_weight(candidates.rows(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    cand_weight[attract[i]] += data.weight(i);
  }
  const Dataset cand_set(candidates, std::move(cand_weight));
  KMeansOptions reduce;
  reduce.k = opts.k;
  reduce.restarts = 3;
  reduce.max_iters = 50;
  reduce.seed = rng();
  return kmeans(cand_set, reduce).centers;
}

KMeansResult kmeans_scalable(const Dataset& data, const KMeansOptions& opts,
                             const ParallelSeedOptions& seed_opts) {
  EKM_EXPECTS(opts.k == seed_opts.k);
  KMeansResult best;
  best.cost = std::numeric_limits<double>::infinity();
  const int restarts = std::max(1, opts.restarts);
  for (int r = 0; r < restarts; ++r) {
    Rng rng = make_rng(opts.seed, 0x9000ULL + static_cast<std::uint64_t>(r));
    Matrix seeds = kmeans_parallel_seed(data, seed_opts, rng);
    KMeansResult res = lloyd(data, std::move(seeds), opts);
    if (res.cost < best.cost) best = std::move(res);
  }
  return best;
}

}  // namespace ekm
