// Tests for the additional k-means solvers: Elkan (accelerated exact
// Lloyd), mini-batch, and the exact 1-D dynamic program.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "data/generators.hpp"
#include "kmeans/cost.hpp"
#include "kmeans/elkan.hpp"
#include "kmeans/kmeans1d.hpp"
#include "kmeans/lloyd.hpp"
#include "kmeans/minibatch.hpp"

namespace ekm {
namespace {

Dataset mixture(std::size_t n, std::size_t dim, std::size_t k,
                std::uint64_t seed, double separation = 8.0) {
  Rng rng = make_rng(seed);
  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = dim;
  spec.k = k;
  spec.separation = separation;
  return make_gaussian_mixture(spec, rng);
}

class ElkanVsLloyd : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ElkanVsLloyd, SameQualityFixedPoints) {
  const std::size_t k = GetParam();
  const Dataset d = mixture(600, 12, k, 300 + k);
  KMeansOptions opts;
  opts.k = k;
  opts.max_iters = 100;
  opts.restarts = 1;
  opts.seed = 5;

  Rng r1 = make_rng(5, 0);
  const Matrix seeds = kmeanspp_seed(d, k, r1);
  const KMeansResult plain = lloyd(d, seeds, opts);
  std::uint64_t evals = 0;
  const KMeansResult fast = elkan(d, seeds, opts, &evals);

  // Same seeding => equally good local optimum (costs agree tightly;
  // tie-breaking may differ on equidistant points).
  EXPECT_NEAR(fast.cost, plain.cost, 1e-6 * (1.0 + plain.cost));
  // Pruning must actually prune: far fewer than n*k*iters distances.
  const std::uint64_t naive =
      static_cast<std::uint64_t>(d.size()) * k *
      static_cast<std::uint64_t>(fast.iterations + 1);
  EXPECT_LT(evals, naive);
}

INSTANTIATE_TEST_SUITE_P(Ks, ElkanVsLloyd,
                         ::testing::Values<std::size_t>(2, 4, 8, 16));

TEST(Elkan, PruningSavesDistancesOnSeparatedData) {
  const Dataset d = mixture(2000, 16, 8, 310, /*separation=*/20.0);
  KMeansOptions opts;
  opts.k = 8;
  opts.max_iters = 50;
  Rng rng = make_rng(7, 0);
  const Matrix seeds = kmeanspp_seed(d, 8, rng);
  std::uint64_t evals = 0;
  const KMeansResult res = elkan(d, seeds, opts, &evals);
  // Well-separated clusters: most points never touch most centers after
  // the first pass; expect < 40% of naive distance evaluations.
  const double naive = static_cast<double>(d.size()) * 8.0 *
                       static_cast<double>(res.iterations + 1);
  EXPECT_LT(static_cast<double>(evals), 0.4 * naive);
}

TEST(Elkan, WeightedDataSupported) {
  const Dataset d(Matrix{{0.0}, {1.0}, {10.0}, {11.0}}, {3.0, 1.0, 1.0, 3.0});
  KMeansOptions opts;
  opts.k = 2;
  const KMeansResult res = kmeans_elkan(d, opts);
  // Weighted centroids: (3*0+1)/4 = 0.25 and (10+3*11)/4 = 10.75.
  std::vector<double> centers{res.centers(0, 0), res.centers(1, 0)};
  std::sort(centers.begin(), centers.end());
  EXPECT_NEAR(centers[0], 0.25, 1e-9);
  EXPECT_NEAR(centers[1], 10.75, 1e-9);
}

TEST(MiniBatch, ConvergesNearLloydOnEasyData) {
  const Dataset d = mixture(2000, 8, 4, 320, /*separation=*/15.0);
  KMeansOptions lopts;
  lopts.k = 4;
  lopts.seed = 9;
  const double lloyd_cost = kmeans(d, lopts).cost;

  MiniBatchOptions mopts;
  mopts.k = 4;
  mopts.batch_size = 64;
  mopts.iterations = 300;
  mopts.seed = 10;
  const KMeansResult mb = kmeans_minibatch(d, mopts);
  EXPECT_LT(mb.cost, 1.2 * lloyd_cost);
}

TEST(MiniBatch, RespectsWeights) {
  // Two values; one carries 99% of the weight — its cluster center must
  // sit essentially on it even with k=1.
  const Dataset d(Matrix{{0.0}, {10.0}}, {99.0, 1.0});
  MiniBatchOptions opts;
  opts.k = 1;
  opts.batch_size = 16;
  opts.iterations = 400;
  const KMeansResult res = kmeans_minibatch(d, opts);
  EXPECT_LT(res.centers(0, 0), 2.0);
}

TEST(MiniBatch, ValidatesOptions) {
  const Dataset d(Matrix{{1.0}});
  MiniBatchOptions opts;
  opts.iterations = 0;
  EXPECT_THROW((void)kmeans_minibatch(d, opts), precondition_error);
}

TEST(KMeans1d, KnownOptimum) {
  // {0, 1, 10, 11}, k=2: split {0,1} | {10,11}, cost 0.5 + 0.5 = 1.
  const std::vector<double> xs{10.0, 0.0, 11.0, 1.0};  // unsorted on purpose
  const KMeansResult res = kmeans_1d_exact(xs, 2);
  EXPECT_NEAR(res.cost, 1.0, 1e-12);
  EXPECT_NEAR(res.centers(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(res.centers(1, 0), 10.5, 1e-12);
  // Assignment is reported in ORIGINAL input order.
  EXPECT_EQ(res.assignment[0], res.assignment[2]);  // 10 with 11
  EXPECT_EQ(res.assignment[1], res.assignment[3]);  // 0 with 1
  EXPECT_NE(res.assignment[0], res.assignment[1]);
}

TEST(KMeans1d, WeightsShiftTheOptimum) {
  // With weight 10 on the value 2, the single center moves toward 2.
  const std::vector<double> xs{0.0, 2.0};
  const std::vector<double> ws{1.0, 10.0};
  const KMeansResult res = kmeans_1d_exact(xs, ws, 1);
  EXPECT_NEAR(res.centers(0, 0), 20.0 / 11.0, 1e-12);
}

TEST(KMeans1d, MatchesBruteForceOnRandomInstances) {
  Rng rng = make_rng(330);
  std::uniform_real_distribution<double> unif(-5.0, 5.0);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 8;
    Matrix pts(n, 1);
    std::vector<double> xs(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = unif(rng);
      pts(i, 0) = xs[i];
    }
    const KMeansResult dp = kmeans_1d_exact(xs, 3);
    const KMeansResult bf = kmeans_brute_force(Dataset(std::move(pts)), 3);
    EXPECT_NEAR(dp.cost, bf.cost, 1e-9) << "trial " << trial;
  }
}

TEST(KMeans1d, KGreaterEqualNIsZeroCost) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const KMeansResult res = kmeans_1d_exact(xs, 5);
  EXPECT_NEAR(res.cost, 0.0, 1e-15);
  EXPECT_EQ(res.centers.rows(), 3u);
}

TEST(KMeans1d, IsTheOracleLloydCannotBeat) {
  Rng rng = make_rng(331);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::vector<double> xs(200);
  Matrix pts(200, 1);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = unif(rng) < 0.5 ? unif(rng) : 5.0 + unif(rng) * 0.1;
    pts(i, 0) = xs[i];
  }
  const KMeansResult dp = kmeans_1d_exact(xs, 4);
  KMeansOptions opts;
  opts.k = 4;
  opts.restarts = 10;
  opts.seed = 12;
  const KMeansResult heur = kmeans(Dataset(std::move(pts)), opts);
  EXPECT_GE(heur.cost + 1e-9, dp.cost);
}

}  // namespace
}  // namespace ekm
