// Unit tests for the EventQueue vector-heap (sim/event_queue.hpp): pop
// order on (time, seq), reserve() as a capacity-only knob, and the
// high-water gauge. These pin the contract the simulator's determinism
// rule bottoms out in — two queues fed the same push sequence must pop
// identically, time ties included — independent of any fleet run.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace ekm {
namespace {

SimEvent at(double time, std::uint32_t site = 0) {
  SimEvent ev;
  ev.time = time;
  ev.site = site;
  return ev;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(at(3.0));
  q.push(at(1.0));
  q.push(at(2.0));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 2.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TimeTiesBreakByPushOrder) {
  // Every event fires at the same instant; the pop order must be the
  // push order, because seq is assigned by push() and the comparator
  // falls back to it. The site field tags each event's push position.
  EventQueue q;
  for (std::uint32_t i = 0; i < 64; ++i) q.push(at(5.0, i));
  std::uint64_t prev_seq = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const SimEvent ev = q.pop();
    EXPECT_EQ(ev.site, i);
    if (i > 0) EXPECT_GT(ev.seq, prev_seq);
    prev_seq = ev.seq;
  }
}

TEST(EventQueue, SeededShuffleOfTiedGroupsPopsDeterministically) {
  // A randomized push sequence with many tied timestamps: two queues
  // fed the identical sequence must pop the identical events, field for
  // field — the pure-function-of-push-order property the simulator's
  // EKM_THREADS invariance rests on.
  std::mt19937_64 rng(0xe5e17ULL);
  std::vector<SimEvent> pushes;
  for (std::uint32_t i = 0; i < 500; ++i) {
    // ~8 distinct times over 500 events => long tied runs.
    SimEvent ev = at(static_cast<double>(rng() % 8), i);
    ev.bits = rng() % 4096;
    pushes.push_back(ev);
  }
  const auto drain = [&pushes] {
    EventQueue q;
    for (const SimEvent& ev : pushes) q.push(ev);
    std::vector<SimEvent> out;
    while (!q.empty()) out.push_back(q.pop());
    return out;
  };
  const std::vector<SimEvent> first = drain();
  const std::vector<SimEvent> second = drain();
  ASSERT_EQ(first.size(), pushes.size());
  EXPECT_EQ(first, second);
  // And the order is the stable sort of the push sequence by time.
  std::vector<SimEvent> expected = first;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const SimEvent& a, const SimEvent& b) {
                     return a.seq < b.seq;
                   });
  std::stable_sort(expected.begin(), expected.end(),
                   [](const SimEvent& a, const SimEvent& b) {
                     return a.time < b.time;
                   });
  EXPECT_EQ(first, expected);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  // pop_heap/push_heap interleaving (the steady-state shape of a fleet
  // run) must still respect (time, seq): a later push that lands
  // earlier in time overtakes pending events, a tied one does not.
  EventQueue q;
  q.push(at(2.0, 0));
  q.push(at(4.0, 1));
  EXPECT_EQ(q.pop().site, 0u);
  q.push(at(1.0, 2));  // earlier than the pending 4.0
  q.push(at(4.0, 3));  // ties the pending 4.0, pushed later
  EXPECT_EQ(q.pop().site, 2u);
  EXPECT_EQ(q.pop().site, 1u);
  EXPECT_EQ(q.pop().site, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ReserveIsCapacityOnly) {
  EventQueue q;
  q.push(at(1.0, 7));
  q.reserve(10'000);
  // No effect on contents, size, order, or the high-water mark.
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.high_water(), 1u);
  q.push(at(0.5, 8));
  EXPECT_EQ(q.pop().site, 8u);
  EXPECT_EQ(q.pop().site, 7u);
}

TEST(EventQueue, HighWaterTracksMaxSimultaneouslyPending) {
  EventQueue q;
  EXPECT_EQ(q.high_water(), 0u);
  q.push(at(1.0));
  q.push(at(2.0));
  q.push(at(3.0));
  EXPECT_EQ(q.high_water(), 3u);
  (void)q.pop();
  (void)q.pop();
  // Draining never lowers the mark...
  EXPECT_EQ(q.high_water(), 3u);
  q.push(at(4.0));
  q.push(at(5.0));
  // ...and refilling below the old peak never raises it.
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.high_water(), 3u);
  q.push(at(6.0));
  EXPECT_EQ(q.high_water(), 4u);
}

}  // namespace
}  // namespace ekm
