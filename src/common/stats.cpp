#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/expects.hpp"

namespace ekm {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;

  double sum = 0.0;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);

  if (s.n > 1) {
    double ss = 0.0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  s.median = quantile(xs, 0.5);
  return s;
}

double quantile(std::span<const double> xs, double q) {
  EKM_EXPECTS(!xs.empty());
  EKM_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double h = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

EmpiricalCdf empirical_cdf(std::span<const double> xs) {
  EmpiricalCdf cdf;
  cdf.x.assign(xs.begin(), xs.end());
  std::sort(cdf.x.begin(), cdf.x.end());
  cdf.p.resize(cdf.x.size());
  const auto n = static_cast<double>(cdf.x.size());
  for (std::size_t i = 0; i < cdf.x.size(); ++i) {
    cdf.p[i] = static_cast<double>(i + 1) / n;
  }
  return cdf;
}

double EmpiricalCdf::at(double value) const {
  const auto it = std::upper_bound(x.begin(), x.end(), value);
  if (it == x.begin()) return 0.0;
  const auto idx = static_cast<std::size_t>(it - x.begin()) - 1;
  return p[idx];
}

std::string format_cdf(const EmpiricalCdf& cdf, std::size_t max_rows) {
  std::ostringstream out;
  const std::size_t n = cdf.x.size();
  const std::size_t stride = n > max_rows ? (n + max_rows - 1) / max_rows : 1;
  for (std::size_t i = 0; i < n; i += stride) {
    out << cdf.x[i] << '\t' << cdf.p[i] << '\n';
  }
  if (n > 0 && (n - 1) % stride != 0) {
    out << cdf.x[n - 1] << '\t' << cdf.p[n - 1] << '\n';
  }
  return out.str();
}

}  // namespace ekm
