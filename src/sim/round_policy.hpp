// Deadline policy for collection rounds.
//
// PR 2's simulator billed every fault as retransmit-until-delivered:
// losses cost airtime, energy and virtual time, but the server always
// waited for every site, so faults could never change the answer. A
// RoundPolicy is the other half of the trade-off federated and edge
// systems actually make: each collection round gets a wall-clock
// budget, sites whose uplink has not delivered by the deadline are
// dropped from that round, and the server aggregates over the partial
// responder set (FedAvg-style straggler dropping, applied to the
// paper's summary protocols).
//
// The policy rides the scenario (SimScenario::round, CLI key
// `deadline=`, flag `--deadline`); the Coordinator copies it into
// PipelineConfig::round_deadline_s, and the protocols in
// src/distributed enforce it through Fabric::open_round /
// Port::receive_by — so the same protocol code runs the paper's
// wait-for-everyone rounds (deadline = infinity) and deadline-driven
// partial rounds, over either fabric.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace ekm {

struct RoundPolicy {
  /// Virtual seconds each collection round may take, measured from the
  /// moment the server opens the round (Fabric::open_round). Infinity
  /// (the default) reproduces the paper's synchronous protocol
  /// bit for bit.
  double deadline_s = std::numeric_limits<double>::infinity();

  /// Availability floor: a round that leaves fewer responding sites
  /// than this throws instead of aggregating a degenerate summary.
  std::size_t min_responders = 1;

  /// True when rounds can actually drop sites.
  [[nodiscard]] bool active() const { return std::isfinite(deadline_s); }
};

}  // namespace ekm
