#include "kmeans/minibatch.hpp"

#include <algorithm>
#include <random>

#include "kmeans/assign.hpp"

namespace ekm {

KMeansResult kmeans_minibatch(const Dataset& data,
                              const MiniBatchOptions& opts) {
  EKM_EXPECTS(!data.empty());
  EKM_EXPECTS(opts.k >= 1 && opts.batch_size >= 1 && opts.iterations >= 1);
  const std::size_t n = data.size();
  const std::size_t d = data.dim();

  Rng rng = make_rng(opts.seed, 0xbacbULL);  // stream tag "batch"
  Matrix centers = kmeanspp_seed(data, opts.k, rng);
  const std::size_t k = centers.rows();
  std::vector<double> center_mass(k, 0.0);

  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  std::vector<std::size_t> batch(opts.batch_size);
  std::vector<std::size_t> batch_assign(opts.batch_size);
  Matrix batch_points(opts.batch_size, d);

  for (int it = 0; it < opts.iterations; ++it) {
    // Sample, gather, and assign with the centers frozen (per Sculley).
    // The gather keeps the batch contiguous for the batched kernel.
    for (std::size_t b = 0; b < opts.batch_size; ++b) {
      batch[b] = pick(rng);
      const double* src = data.points().row_ptr(batch[b]);
      std::copy(src, src + d, batch_points.row_ptr(b));
    }
    assign_batch_into(batch_points, centers, batch_assign, {});
    // Per-center gradient step with counts-based learning rate.
    for (std::size_t b = 0; b < opts.batch_size; ++b) {
      const std::size_t c = batch_assign[b];
      const double w = data.weight(batch[b]);
      if (w == 0.0) continue;
      center_mass[c] += w;
      const double eta = w / center_mass[c];
      auto ctr = centers.row(c);
      auto p = data.point(batch[b]);
      for (std::size_t j = 0; j < d; ++j) {
        ctr[j] += eta * (p[j] - ctr[j]);
      }
    }
  }

  KMeansResult res;
  res.centers = std::move(centers);
  res.iterations = opts.iterations;
  res.assignment.resize(n);
  res.cost = assign_and_cost(data, res.centers, res.assignment);
  return res;
}

}  // namespace ekm
