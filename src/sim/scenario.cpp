#include "sim/scenario.hpp"

#include <cmath>

#include "common/expects.hpp"
#include "common/parse_num.hpp"

namespace ekm {
namespace {

SimScenario ideal() {
  SimScenario s;
  s.name = "ideal";
  s.radio = wifi_link();
  return s;
}

SimScenario wifi_office() {
  SimScenario s;
  s.name = "wifi-office";
  s.radio = wifi_link();
  s.loss_rate = 0.01;
  s.jitter_frac = 0.05;
  return s;
}

SimScenario ble_swarm() {
  SimScenario s;
  s.name = "ble-swarm";
  s.radio = ble_link();
  s.loss_rate = 0.02;
  s.dropout_rate = 0.05;
  s.outage_seconds = 2.0;
  s.jitter_frac = 0.1;
  return s;
}

SimScenario lora_field() {
  SimScenario s;
  s.name = "lora-field";
  s.radio = lora_link();
  s.loss_rate = 0.05;
  s.dropout_rate = 0.02;
  s.outage_seconds = 30.0;
  s.jitter_frac = 0.2;
  s.site_speed_skew = 2.0;
  return s;
}

SimScenario nr5g_fleet() {
  SimScenario s;
  s.name = "nr5g-fleet";
  s.radio = nr5g_link();
  s.loss_rate = 0.005;
  s.straggler_fraction = 0.25;
  s.straggler_slowdown = 4.0;
  return s;
}

SimScenario lossy_mesh() {
  SimScenario s;
  s.name = "lossy-mesh";
  s.radio = wifi_link();
  s.loss_rate = 0.2;
  s.dropout_rate = 0.1;
  s.outage_seconds = 1.0;
  s.jitter_frac = 0.3;
  return s;
}

SimScenario hetero_mesh() {
  SimScenario s;
  s.name = "hetero-mesh";
  s.radio = wifi_link();
  s.radio_cycle = {wifi_link(), ble_link(), lora_link()};
  s.loss_rate = 0.05;
  s.dropout_rate = 0.02;
  s.outage_seconds = 2.0;
  s.jitter_frac = 0.1;
  s.site_speed_skew = 2.0;
  return s;
}

SimScenario deadline_fleet() {
  SimScenario s;
  s.name = "deadline-fleet";
  s.radio = nr5g_link();
  s.loss_rate = 0.01;
  s.jitter_frac = 0.05;
  s.straggler_fraction = 0.25;
  s.straggler_slowdown = 16.0;
  // Compute-dominated fleet (think the local SVD on a microcontroller):
  // at typical bench shapes a fast site finishes a round in a couple of
  // virtual seconds, the 16x straggling quarter needs tens — an
  // 8-second budget drops the stragglers and keeps everyone else with
  // comfortable margin.
  s.seconds_per_scalar = 1e-3;
  s.round.deadline_s = 8.0;
  // Half the round budget is reserved for the budget-reallocation
  // wave: fast sites finish well inside the 4-second first-wave
  // window, and a dropped straggler's sample allocation comes back as
  // responder-side resolution instead of vanishing.
  s.round.realloc_reserve = 0.5;
  return s;
}

LinkModel radio_by_name(const std::string& key, const std::string& name) {
  if (name == "lora") return lora_link();
  if (name == "ble") return ble_link();
  if (name == "wifi") return wifi_link();
  if (name == "5g" || name == "nr5g") return nr5g_link();
  EKM_EXPECTS_MSG(false, "unknown radio class '" + name + "' for scenario key '" +
                             key + "' (expected lora|ble|wifi|5g)");
  return {};
}

RetryStrategy retry_by_name(const std::string& key, const std::string& name) {
  const auto strategy = retry_strategy_from_name(name);
  EKM_EXPECTS_MSG(strategy.has_value(),
                  "unknown retry strategy '" + name + "' for scenario key '" +
                      key + "' (expected fixed|backoff|giveup)");
  return *strategy;
}

bool bool_by_name(const std::string& key, const std::string& value) {
  if (value == "on" || value == "1" || value == "true") return true;
  if (value == "off" || value == "0" || value == "false") return false;
  EKM_EXPECTS_MSG(false, "malformed boolean for scenario key '" + key +
                             "': '" + value + "' (expected on|off)");
  return false;
}

/// Checked double parse (common/parse_num.hpp): the whole token must be
/// consumed — `loss=0.1x` and `loss=` are configuration typos, not
/// values, and must fail loudly naming the key.
double parse_double(const std::string& key, const std::string& value) {
  EKM_EXPECTS_MSG(!value.empty(),
                  "empty value for scenario key '" + key + "'");
  const auto v = parse_full_double(value);
  EKM_EXPECTS_MSG(v.has_value(),
                  "malformed value for scenario key '" + key + "': '" + value +
                      "'");
  return *v;
}

/// Checked integer parse — rejects empty values, trailing garbage, and
/// fractional values that a double-then-cast would silently truncate
/// (`retries=2.5` was accepted as 2 before this existed).
long long parse_int(const std::string& key, const std::string& value) {
  EKM_EXPECTS_MSG(!value.empty(),
                  "empty value for scenario key '" + key + "'");
  const auto v = parse_full_ll(value);
  EKM_EXPECTS_MSG(v.has_value(),
                  "malformed integer for scenario key '" + key + "': '" +
                      value + "'");
  return *v;
}

/// `siteN.trace=start:bw:loss[:dropout];...` — piecewise link-quality
/// segments over virtual time. Starts must be strictly increasing so
/// the active segment at any instant is unambiguous.
std::vector<TraceSegment> parse_trace(const std::string& key,
                                      const std::string& value) {
  EKM_EXPECTS_MSG(!value.empty(), "empty value for scenario key '" + key + "'");
  std::vector<TraceSegment> trace;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const std::size_t semi = value.find(';', pos);
    const std::string seg_str =
        value.substr(pos, semi == std::string::npos ? std::string::npos
                                                    : semi - pos);
    pos = semi == std::string::npos ? value.size() + 1 : semi + 1;
    std::vector<std::string> fields;
    std::size_t fpos = 0;
    while (fpos <= seg_str.size()) {
      const std::size_t colon = seg_str.find(':', fpos);
      fields.push_back(seg_str.substr(
          fpos, colon == std::string::npos ? std::string::npos : colon - fpos));
      fpos = colon == std::string::npos ? seg_str.size() + 1 : colon + 1;
    }
    EKM_EXPECTS_MSG(fields.size() == 3 || fields.size() == 4,
                    "malformed trace segment '" + seg_str +
                        "' in scenario key '" + key +
                        "' (expected start:bandwidth:loss[:dropout])");
    TraceSegment seg;
    seg.start_s = parse_double(key, fields[0]);
    EKM_EXPECTS_MSG(std::isfinite(seg.start_s) && seg.start_s >= 0.0,
                    "trace segment start must be finite and >= 0 in scenario "
                    "key '" + key + "'");
    seg.bandwidth_bps = parse_double(key, fields[1]);
    EKM_EXPECTS_MSG(std::isfinite(seg.bandwidth_bps) && seg.bandwidth_bps > 0.0,
                    "trace segment bandwidth must be > 0 in scenario key '" +
                        key + "'");
    seg.loss_rate = parse_double(key, fields[2]);
    EKM_EXPECTS_MSG(seg.loss_rate >= 0.0 && seg.loss_rate < 1.0,
                    "trace segment loss must be in [0, 1) in scenario key '" +
                        key + "'");
    if (fields.size() == 4) {
      seg.dropout_rate = parse_double(key, fields[3]);
      EKM_EXPECTS_MSG(*seg.dropout_rate >= 0.0 && *seg.dropout_rate <= 1.0,
                      "trace segment dropout must be in [0, 1] in scenario "
                      "key '" + key + "'");
    }
    EKM_EXPECTS_MSG(trace.empty() || seg.start_s > trace.back().start_s,
                    "trace segment starts must be strictly increasing in "
                    "scenario key '" + key + "'");
    trace.push_back(seg);
  }
  return trace;
}

/// `siteN.key=value` / `gatewayN.key=value` per-device override.
/// Appends one SiteOverride per token to `out`; SimNetwork applies
/// them in order, so later tokens win. `prefix` is "site" or
/// "gateway" — both spell the exact same fields, and the Coordinator
/// maps gateway g onto inner device sites + g (net/tree_fabric.hpp),
/// so one application path serves both levels.
void apply_device_override(SimScenario& s, const std::string& prefix,
                           std::vector<SiteOverride>& out,
                           const std::string& key, const std::string& value) {
  const std::size_t dot = key.find('.');
  EKM_EXPECTS_MSG(
      dot != std::string::npos && dot > prefix.size(),
      "malformed per-" + prefix + " scenario key '" + key + "' (expected " +
          prefix +
          "N.radio|bandwidth|loss|dropout|speed|retry|"
          "join|leave|trace)");
  const long long index =
      parse_int(key, key.substr(prefix.size(), dot - prefix.size()));
  EKM_EXPECTS_MSG(index >= 0, prefix + " index must be >= 0 in scenario key '" +
                                  key + "'");
  const std::string field = key.substr(dot + 1);

  SiteOverride o;
  o.site = static_cast<std::size_t>(index);
  o.key = key;
  if (field == "radio") {
    o.radio = radio_by_name(key, value);
  } else if (field == "bandwidth") {
    o.bandwidth_bps = parse_double(key, value);
    EKM_EXPECTS_MSG(std::isfinite(*o.bandwidth_bps) && *o.bandwidth_bps > 0.0,
                    "bandwidth must be > 0 in scenario key '" + key + "'");
  } else if (field == "loss") {
    o.loss_rate = parse_double(key, value);
    EKM_EXPECTS_MSG(*o.loss_rate >= 0.0 && *o.loss_rate < 1.0,
                    "loss must be in [0, 1) in scenario key '" + key + "'");
  } else if (field == "dropout") {
    o.dropout_rate = parse_double(key, value);
    EKM_EXPECTS_MSG(*o.dropout_rate >= 0.0 && *o.dropout_rate <= 1.0,
                    "dropout must be in [0, 1] in scenario key '" + key + "'");
  } else if (field == "speed") {
    o.compute_speed = parse_double(key, value);
    EKM_EXPECTS_MSG(std::isfinite(*o.compute_speed) && *o.compute_speed > 0.0,
                    "speed must be > 0 in scenario key '" + key + "'");
  } else if (field == "retry") {
    o.retry = retry_by_name(key, value);
  } else if (field == "join") {
    o.join_s = parse_double(key, value);
    EKM_EXPECTS_MSG(std::isfinite(*o.join_s) && *o.join_s >= 0.0,
                    "join time must be finite and >= 0 in scenario key '" +
                        key + "'");
  } else if (field == "leave") {
    o.leave_s = parse_double(key, value);
    EKM_EXPECTS_MSG(std::isfinite(*o.leave_s) && *o.leave_s > 0.0,
                    "leave time must be finite and > 0 in scenario key '" +
                        key + "'");
  } else if (field == "trace") {
    o.trace = parse_trace(key, value);
  } else {
    EKM_EXPECTS_MSG(false,
                    "unknown per-" + prefix + " field '" + field +
                        "' in scenario key '" + key +
                        "' (expected radio|bandwidth|loss|dropout|speed|retry|"
                        "join|leave|trace)");
  }
  out.push_back(std::move(o));
}

/// Keys the parser has seen, for the end-of-parse cross-checks: the
/// tree-only keys are meaningless — and therefore rejected — unless
/// `topology=tree` is in force, and a tree needs a branching factor.
struct SeenKeys {
  bool topology = false;
  bool branching = false;
  bool level_split = false;
  std::string first_gateway_key;  ///< empty = none seen
};

void apply_override(SimScenario& s, SeenKeys& seen, const std::string& key,
                    const std::string& value) {
  if (key.rfind("site", 0) == 0 && key.find('.') != std::string::npos) {
    apply_device_override(s, "site", s.site_overrides, key, value);
  } else if (key.rfind("gateway", 0) == 0 &&
             key.find('.') != std::string::npos) {
    if (seen.first_gateway_key.empty()) seen.first_gateway_key = key;
    apply_device_override(s, "gateway", s.gateway_overrides, key, value);
  } else if (key == "topology") {
    seen.topology = true;
    if (value == "star") {
      s.topology = SimTopology::kStar;
    } else if (value == "tree") {
      s.topology = SimTopology::kTree;
    } else {
      EKM_EXPECTS_MSG(false, "unknown topology '" + value +
                                 "' for scenario key 'topology' (expected "
                                 "star|tree)");
    }
  } else if (key == "branching") {
    seen.branching = true;
    const long long v = parse_int(key, value);
    EKM_EXPECTS_MSG(v >= 2, "branching must be >= 2 (children per gateway) in "
                            "scenario key 'branching'");
    s.branching = static_cast<std::size_t>(v);
  } else if (key == "level-split") {
    seen.level_split = true;
    s.level_split = parse_double(key, value);
    EKM_EXPECTS_MSG(s.level_split > 0.0 && s.level_split < 1.0,
                    "level-split must be in (0, 1) (level-0 share of the "
                    "round budget)");
  } else if (key == "radio") {
    s.radio = radio_by_name(key, value);
    // An explicit fleet-wide radio replaces a preset's mixed cycle
    // (hetero-mesh) — otherwise the override would be silently ignored.
    s.radio_cycle.clear();
  } else if (key == "loss") {
    s.loss_rate = parse_double(key, value);
    EKM_EXPECTS_MSG(s.loss_rate >= 0.0 && s.loss_rate < 1.0,
                    "loss must be in [0, 1)");
  } else if (key == "dropout") {
    s.dropout_rate = parse_double(key, value);
    EKM_EXPECTS_MSG(s.dropout_rate >= 0.0 && s.dropout_rate <= 1.0,
                    "dropout must be in [0, 1]");
  } else if (key == "outage") {
    s.outage_seconds = parse_double(key, value);
    EKM_EXPECTS_MSG(std::isfinite(s.outage_seconds) && s.outage_seconds >= 0.0,
                    "outage must be finite and >= 0");
  } else if (key == "retries") {
    const long long v = parse_int(key, value);
    EKM_EXPECTS_MSG(v >= 0 && v <= 1 << 30, "retries must be in [0, 2^30]");
    s.max_retries = static_cast<int>(v);
  } else if (key == "jitter") {
    s.jitter_frac = parse_double(key, value);
    EKM_EXPECTS_MSG(s.jitter_frac >= 0.0 && s.jitter_frac < 1.0,
                    "jitter must be in [0, 1)");
  } else if (key == "stragglers") {
    s.straggler_fraction = parse_double(key, value);
    EKM_EXPECTS_MSG(s.straggler_fraction >= 0.0 && s.straggler_fraction <= 1.0,
                    "stragglers must be in [0, 1]");
  } else if (key == "slowdown") {
    s.straggler_slowdown = parse_double(key, value);
    EKM_EXPECTS_MSG(std::isfinite(s.straggler_slowdown) &&
                        s.straggler_slowdown >= 1.0,
                    "slowdown must be >= 1");
  } else if (key == "skew") {
    s.site_speed_skew = parse_double(key, value);
    EKM_EXPECTS_MSG(std::isfinite(s.site_speed_skew) &&
                        s.site_speed_skew >= 1.0,
                    "skew must be >= 1");
  } else if (key == "sps") {
    s.seconds_per_scalar = parse_double(key, value);
    EKM_EXPECTS_MSG(std::isfinite(s.seconds_per_scalar) &&
                        s.seconds_per_scalar >= 0.0,
                    "sps must be finite and >= 0");
  } else if (key == "server-speed") {
    s.server_speed = parse_double(key, value);
    EKM_EXPECTS_MSG(std::isfinite(s.server_speed) && s.server_speed > 0.0,
                    "server-speed must be > 0");
  } else if (key == "deadline") {
    // "inf" turns deadline rounds off explicitly (strtod parses it).
    s.round.deadline_s = parse_double(key, value);
    EKM_EXPECTS_MSG(s.round.deadline_s > 0.0 && !std::isnan(s.round.deadline_s),
                    "deadline must be > 0 (virtual seconds, or inf)");
  } else if (key == "min-responders") {
    const long long v = parse_int(key, value);
    EKM_EXPECTS_MSG(v >= 1, "min-responders must be >= 1");
    s.round.min_responders = static_cast<std::size_t>(v);
  } else if (key == "realloc") {
    s.round.reallocate = bool_by_name(key, value);
  } else if (key == "realloc-reserve") {
    s.round.realloc_reserve = parse_double(key, value);
    EKM_EXPECTS_MSG(s.round.realloc_reserve >= 0.0 &&
                        s.round.realloc_reserve < 1.0,
                    "realloc-reserve must be in [0, 1)");
  } else if (key == "overlap") {
    s.round.overlap = bool_by_name(key, value);
  } else if (key == "pipeline") {
    s.round.pipeline = bool_by_name(key, value);
  } else if (key == "event-log") {
    // "off" = keep nothing; N = keep the first N events processed.
    if (value == "off") {
      s.event_log_limit = 0;
    } else {
      const long long v = parse_int(key, value);
      EKM_EXPECTS_MSG(v >= 0, "event-log must be 'off' or an integer >= 0");
      s.event_log_limit = static_cast<std::size_t>(v);
    }
  } else if (key == "retry") {
    s.retry.strategy = retry_by_name(key, value);
  } else if (key == "churn") {
    s.churn_rate = parse_double(key, value);
    EKM_EXPECTS_MSG(std::isfinite(s.churn_rate) && s.churn_rate >= 0.0,
                    "churn must be finite and >= 0 (leave/rejoin events per "
                    "virtual second)");
  } else if (key == "quant") {
    const auto policy = quant_policy_from_name(value);
    EKM_EXPECTS_MSG(policy.has_value(),
                    "unknown quantization policy '" + value +
                        "' for scenario key 'quant' (expected fixed|adaptive)");
    s.quant = *policy;
  } else if (key == "backoff-base") {
    s.retry.backoff_base = parse_double(key, value);
    EKM_EXPECTS_MSG(std::isfinite(s.retry.backoff_base) &&
                        s.retry.backoff_base >= 1.0,
                    "backoff-base must be >= 1");
  } else if (key == "backoff-cap") {
    s.retry.backoff_cap = parse_double(key, value);
    EKM_EXPECTS_MSG(std::isfinite(s.retry.backoff_cap) &&
                        s.retry.backoff_cap >= 1.0,
                    "backoff-cap must be >= 1");
  } else if (key == "backoff-jitter") {
    s.retry.backoff_jitter = parse_double(key, value);
    EKM_EXPECTS_MSG(s.retry.backoff_jitter >= 0.0 && s.retry.backoff_jitter < 1.0,
                    "backoff-jitter must be in [0, 1)");
  } else if (key == "seed") {
    // Full 64-bit parse — a double round-trip would collapse seeds
    // above 2^53 and overflow into UB near 2^64.
    EKM_EXPECTS_MSG(!value.empty(), "empty value for scenario key 'seed'");
    const auto v = parse_full_ull(value);
    EKM_EXPECTS_MSG(v.has_value(),
                    "malformed value for scenario key 'seed': '" + value + "'");
    s.seed = *v;
  } else {
    EKM_EXPECTS_MSG(false, "unknown scenario key '" + key + "'");
  }
}

}  // namespace

std::optional<RetryStrategy> retry_strategy_from_name(const std::string& name) {
  if (name == "fixed") return RetryStrategy::kFixed;
  if (name == "backoff") return RetryStrategy::kBackoff;
  if (name == "giveup") return RetryStrategy::kGiveUp;
  return std::nullopt;
}

std::vector<std::string> sim_scenario_names() {
  return {"ideal",      "wifi-office", "ble-swarm",   "lora-field",
          "nr5g-fleet", "lossy-mesh",  "hetero-mesh", "deadline-fleet"};
}

std::optional<SimScenario> sim_scenario_preset(const std::string& name) {
  if (name == "ideal") return ideal();
  if (name == "wifi-office") return wifi_office();
  if (name == "ble-swarm") return ble_swarm();
  if (name == "lora-field") return lora_field();
  if (name == "nr5g-fleet") return nr5g_fleet();
  if (name == "lossy-mesh") return lossy_mesh();
  if (name == "hetero-mesh") return hetero_mesh();
  if (name == "deadline-fleet") return deadline_fleet();
  return std::nullopt;
}

SimScenario parse_scenario(const std::string& spec) {
  SimScenario s = ideal();
  SeenKeys seen;
  bool named = false;
  std::size_t pos = 0;
  bool first = true;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (token.empty()) {
      EKM_EXPECTS_MSG(first && spec.empty(), "empty scenario token");
      break;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      EKM_EXPECTS_MSG(first && !named, "scenario name must come first");
      const auto preset = sim_scenario_preset(token);
      EKM_EXPECTS_MSG(preset.has_value(), "unknown scenario '" + token + "'");
      s = *preset;
      named = true;
    } else {
      apply_override(s, seen, token.substr(0, eq), token.substr(eq + 1));
      if (!named) s.name = "custom";
    }
    first = false;
  }
  // Cross-key checks after the whole spec is in, so token order never
  // matters: tree-only keys are configuration errors under star (they
  // would otherwise be silently inert — the exact failure mode the
  // out-of-range site-override check exists for), and a tree without a
  // branching factor has no shape.
  if (s.topology == SimTopology::kTree) {
    EKM_EXPECTS_MSG(seen.branching,
                    "scenario key 'topology=tree' requires 'branching='");
  } else {
    EKM_EXPECTS_MSG(!seen.branching,
                    "scenario key 'branching' requires 'topology=tree'");
    EKM_EXPECTS_MSG(!seen.level_split,
                    "scenario key 'level-split' requires 'topology=tree'");
    EKM_EXPECTS_MSG(seen.first_gateway_key.empty(),
                    "scenario key '" + seen.first_gateway_key +
                        "' requires 'topology=tree'");
  }
  return s;
}

}  // namespace ekm
