#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/timer.hpp"
#include "core/calibration.hpp"
#include "cr/fss.hpp"
#include "kmeans/assign.hpp"
#include "distributed/bklw.hpp"
#include "dr/jl.hpp"
#include "dr/pca.hpp"
#include "net/summary_codec.hpp"
#include "qt/quantizer.hpp"

namespace ekm {
namespace {

KMeansOptions solver_options(const PipelineConfig& cfg) {
  KMeansOptions opts;
  opts.k = cfg.k;
  opts.restarts = cfg.solver_restarts;
  opts.max_iters = cfg.solver_max_iters;
  opts.seed = derive_seed(cfg.seed, 0x501feULL);  // solver stream
  return opts;
}

/// Practical JL target dimension: the Theorem 3.1 form with a laptop
/// constant, clamped to [4, input_dim] (projecting *up* is never useful).
std::size_t practical_jl_dim(double epsilon, std::size_t n, std::size_t k,
                             double delta, std::size_t input_dim) {
  const double raw = std::ceil(
      4.0 * std::log(4.0 * static_cast<double>(n) * static_cast<double>(k) /
                     delta) /
      (epsilon * epsilon));
  return std::clamp<std::size_t>(static_cast<std::size_t>(std::max(raw, 4.0)),
                                 4, std::max<std::size_t>(input_dim, 4));
}

/// Server side: weighted k-means in the summary's coordinate space, then
/// lift through the subspace basis if the summary carries one.
Matrix solve_summary(const Coreset& coreset, const PipelineConfig& cfg) {
  const KMeansResult res = kmeans(coreset.points, solver_options(cfg));
  if (coreset.basis) return matmul(res.centers, *coreset.basis);
  return res.centers;
}

/// Applies the rounding quantizer to the coreset's point coordinates
/// (only — weights, Δ and any basis stay full precision, §6 footnote 6).
void quantize_points(Coreset& coreset, int significant_bits) {
  if (significant_bits >= kDoubleSignificandBits) return;
  const RoundingQuantizer q(significant_bits);
  coreset.points = q.quantize(coreset.points);
}

/// Distributed variant of the refine_iters extension: classic distributed
/// Lloyd rounds seeded by the lifted centers. Per round each source
/// uplinks k x (d + 1) weighted sufficient statistics; the server merges.
Matrix refine_distributed(Matrix centers, std::span<const Dataset> parts,
                          Fabric& net, Stopwatch& device_work,
                          const PipelineConfig& cfg) {
  const std::size_t k = centers.rows();
  const std::size_t d = centers.cols();
  // Shard points never change across refine rounds; norms hoisted.
  std::vector<std::vector<double>> shard_norms(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    shard_norms[i] = row_sq_norms(parts[i].points());
  }
  for (int iter = 0; iter < cfg.refine_iters; ++iter) {
    for (std::size_t i = 0; i < parts.size(); ++i) {
      net.downlink(i).send(encode_matrix(centers));
    }
    // Each refine iteration is one deadline-driven collection round:
    // stragglers' sufficient statistics are left out, and the center
    // update divides by the responding mass only (FedAvg-style).
    const RoundId round = net.open_round(cfg.round_deadline_s);
    Matrix sums(k, d);
    std::vector<double> mass(k, 0.0);
    std::vector<char> sent(parts.size(), 0);
    for (std::size_t i = 0; i < parts.size(); ++i) {
      Matrix stats(k, d + 1);  // row c: [weighted sum | weighted count]
      {
        auto scope = device_work.measure();
        auto pushed_frame = net.downlink(i).receive_by(kNoRound);
        if (!pushed_frame.has_value()) continue;  // lost the broadcast
        if (!parts[i].empty()) {
          const Matrix pushed = decode_matrix(*pushed_frame);
          // Batched assignment of the whole shard, then a serial
          // sufficient-statistics accumulation (order-deterministic).
          std::vector<std::size_t> assign(parts[i].size());
          assign_batch_into(parts[i].points(), pushed, assign, {},
                            shard_norms[i]);
          for (std::size_t p = 0; p < parts[i].size(); ++p) {
            const double* point = parts[i].points().row_ptr(p);
            const double w = parts[i].weight(p);
            auto row = stats.row(assign[p]);
            for (std::size_t j = 0; j < d; ++j) row[j] += w * point[j];
            row[d] += w;
          }
        }
      }
      net.uplink(i).send(encode_matrix(stats));
      sent[i] = 1;
    }
    std::size_t responders = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (!sent[i]) continue;
      auto frame = net.uplink(i).receive_by(round);
      if (!frame.has_value()) continue;
      responders += 1;
      const Matrix stats = decode_matrix(*frame);
      for (std::size_t c = 0; c < k; ++c) {
        auto src = stats.row(c);
        auto dst = sums.row(c);
        for (std::size_t j = 0; j < d; ++j) dst[j] += src[j];
        mass[c] += src[d];
      }
    }
    enforce_availability_floor(responders, cfg.min_round_responders,
                               "refine round", net.rounds_opened());
    for (std::size_t c = 0; c < k; ++c) {
      if (mass[c] > 0.0) {
        auto row = centers.row(c);
        auto s = sums.row(c);
        for (std::size_t j = 0; j < d; ++j) row[j] = s[j] / mass[c];
      }
    }
  }
  return centers;
}

FssOptions fss_options(const PipelineConfig& cfg, double stage_epsilon) {
  FssOptions fo;
  fo.k = cfg.k;
  fo.epsilon = stage_epsilon;
  fo.delta = cfg.delta;
  fo.sample_size = cfg.coreset_size;
  fo.intrinsic_dim = cfg.pca_dim;
  return fo;
}

PipelineResult finish_single_source(Coreset summary, Fabric& net,
                                    const PipelineConfig& cfg,
                                    const LinearMap* lift1,
                                    const LinearMap* lift2, double device_s,
                                    const Dataset& original) {
  // Transmit.
  net.uplink(0).send(encode_coreset(summary, cfg.significant_bits));
  // Server: decode, solve, lift back to the original space.
  const Coreset received = decode_coreset(net.uplink(0).receive());
  Matrix centers = solve_summary(received, cfg);
  if (lift2 != nullptr) centers = lift2->lift(centers);
  if (lift1 != nullptr) centers = lift1->lift(centers);

  double refine_s = 0.0;
  if (cfg.refine_iters > 0) {
    // Extension (see PipelineConfig::refine_iters): server pushes the
    // lifted centers down; the device polishes them on its own data and
    // uplinks the final model.
    net.downlink(0).send(encode_matrix(centers));
    Timer timer;
    const Matrix pushed = decode_matrix(net.downlink(0).receive());
    KMeansOptions ropts;
    ropts.k = pushed.rows();
    ropts.max_iters = cfg.refine_iters;
    ropts.restarts = 1;
    centers = lloyd(original, pushed, ropts).centers;
    refine_s = timer.seconds();
    net.uplink(0).send(encode_matrix(centers));
  }

  PipelineResult result;
  result.centers = std::move(centers);
  result.device_seconds = device_s + refine_s;
  result.uplink = net.total_uplink();
  result.downlink = net.total_downlink();
  result.summary_points = received.size();
  return result;
}

}  // namespace

const char* pipeline_name(PipelineKind kind) {
  switch (kind) {
    case PipelineKind::kNoReduction: return "NR";
    case PipelineKind::kFss: return "FSS";
    case PipelineKind::kJlFss: return "JL+FSS";
    case PipelineKind::kFssJl: return "FSS+JL";
    case PipelineKind::kJlFssJl: return "JL+FSS+JL";
    case PipelineKind::kBklw: return "BKLW";
    case PipelineKind::kJlBklw: return "JL+BKLW";
  }
  return "?";
}

bool pipeline_is_distributed(PipelineKind kind) {
  return kind == PipelineKind::kBklw || kind == PipelineKind::kJlBklw;
}

PipelineResult run_pipeline(PipelineKind kind, const Dataset& data,
                            const PipelineConfig& cfg) {
  EKM_EXPECTS(!pipeline_is_distributed(kind));
  EKM_EXPECTS(!data.empty());
  EKM_EXPECTS(cfg.k >= 1);
  Network net(1);
  const std::size_t n = data.size();
  const std::size_t d = data.dim();
  Rng rng = make_rng(cfg.seed, 0xc0ULL);

  switch (kind) {
    case PipelineKind::kNoReduction: {
      Timer timer;
      Matrix payload = data.points();
      if (cfg.significant_bits < kDoubleSignificandBits) {
        payload = RoundingQuantizer(cfg.significant_bits).quantize(payload);
      }
      const double device_s = timer.seconds();
      net.uplink(0).send(encode_matrix(payload, cfg.significant_bits));
      const Matrix raw = decode_matrix(net.uplink(0).receive());
      const KMeansResult res = kmeans(Dataset(raw), solver_options(cfg));

      PipelineResult result;
      result.centers = res.centers;
      result.device_seconds = device_s;
      result.uplink = net.total_uplink();
      result.summary_points = n;
      return result;
    }

    case PipelineKind::kFss: {
      const double eps = epsilon_for_fss(cfg.epsilon);
      Timer timer;
      Coreset cs = fss_coreset(data, fss_options(cfg, eps), rng);
      quantize_points(cs, cfg.significant_bits);
      const double device_s = timer.seconds();
      // The FSS summary ships basis + coordinates (Theorem 4.1's
      // O(kd/ε²) communication comes from the d x t basis).
      return finish_single_source(std::move(cs), net, cfg, nullptr, nullptr,
                                  device_s, data);
    }

    case PipelineKind::kJlFss: {  // Algorithm 1
      const double eps = epsilon_for_alg1(cfg.epsilon);
      const std::size_t d1 =
          cfg.jl_dim > 0 ? std::min(cfg.jl_dim, d)
                         : practical_jl_dim(eps, n, cfg.k, cfg.delta, d);
      const LinearMap pi1 = make_jl_projection(d, d1, cfg.seed);
      Timer timer;
      const Dataset projected = pi1.apply(data);
      Coreset cs = fss_coreset(projected, fss_options(cfg, eps), rng);
      quantize_points(cs, cfg.significant_bits);
      const double device_s = timer.seconds();
      return finish_single_source(std::move(cs), net, cfg, &pi1, nullptr,
                                  device_s, data);
    }

    case PipelineKind::kFssJl: {  // Algorithm 2
      const double eps = epsilon_for_alg2(cfg.epsilon);
      Timer timer;
      Coreset cs = fss_coreset(data, fss_options(cfg, eps), rng);
      // JL after CR: project the *ambient* coreset points; the basis
      // never crosses the wire.
      const Dataset ambient = cs.to_ambient();
      const std::size_t jl_override =
          cfg.jl_dim2 > 0 ? cfg.jl_dim2 : cfg.jl_dim;
      const std::size_t d2 =
          jl_override > 0
              ? std::min(jl_override, d)
              : practical_jl_dim(eps, std::max<std::size_t>(ambient.size(), 2),
                                 cfg.k, cfg.delta, d);
      const LinearMap pi1 = make_jl_projection(d, d2, cfg.seed);
      Coreset wire;
      wire.points = pi1.apply(ambient);
      wire.delta = cs.delta;
      quantize_points(wire, cfg.significant_bits);
      const double device_s = timer.seconds();
      return finish_single_source(std::move(wire), net, cfg, &pi1, nullptr,
                                  device_s, data);
    }

    case PipelineKind::kJlFssJl: {  // Algorithm 3
      const double eps = epsilon_for_alg3(cfg.epsilon);
      const std::size_t d1 =
          cfg.jl_dim > 0 ? std::min(cfg.jl_dim, d)
                         : practical_jl_dim(eps, n, cfg.k, cfg.delta, d);
      const LinearMap pi1 =
          make_jl_projection(d, d1, derive_seed(cfg.seed, 1));
      Timer timer;
      const Dataset projected = pi1.apply(data);
      Coreset cs = fss_coreset(projected, fss_options(cfg, eps), rng);
      const Dataset ambient = cs.to_ambient();  // in R^{d1}
      const std::size_t d2 =
          cfg.jl_dim2 > 0
              ? std::min(cfg.jl_dim2, d1)
              : practical_jl_dim(eps, std::max<std::size_t>(ambient.size(), 2),
                                 cfg.k, cfg.delta, d1);
      const LinearMap pi2 =
          make_jl_projection(d1, d2, derive_seed(cfg.seed, 2));
      Coreset wire;
      wire.points = pi2.apply(ambient);
      wire.delta = cs.delta;
      quantize_points(wire, cfg.significant_bits);
      const double device_s = timer.seconds();
      return finish_single_source(std::move(wire), net, cfg, &pi1, &pi2,
                                  device_s, data);
    }

    case PipelineKind::kBklw:
    case PipelineKind::kJlBklw:
      EKM_EXPECTS_MSG(false, "distributed pipeline requires parts");
  }
  return {};
}

PipelineResult run_distributed_pipeline(PipelineKind kind,
                                        std::span<const Dataset> parts,
                                        const PipelineConfig& cfg) {
  EKM_EXPECTS(!parts.empty());
  Network net(parts.size());
  return run_distributed_pipeline(kind, parts, cfg, net);
}

PipelineResult run_distributed_pipeline(PipelineKind kind,
                                        std::span<const Dataset> parts,
                                        const PipelineConfig& cfg, Fabric& net) {
  EKM_EXPECTS(!parts.empty());
  EKM_EXPECTS(kind == PipelineKind::kNoReduction || pipeline_is_distributed(kind));
  EKM_EXPECTS(net.num_sources() == parts.size());
  Stopwatch device_work;

  std::size_t n_total = 0;
  std::size_t d = 0;
  for (const Dataset& p : parts) {
    n_total += p.size();
    if (!p.empty()) d = p.dim();
  }
  EKM_EXPECTS(n_total > 0 && d > 0);

  switch (kind) {
    case PipelineKind::kNoReduction: {
      const RoundId round = net.open_round(cfg.round_deadline_s);
      for (std::size_t i = 0; i < parts.size(); ++i) {
        Matrix payload = parts[i].points();
        if (cfg.significant_bits < kDoubleSignificandBits) {
          auto scope = device_work.measure();
          payload = RoundingQuantizer(cfg.significant_bits).quantize(payload);
        }
        net.uplink(i).send(encode_matrix(payload, cfg.significant_bits));
      }
      // Ship-everything is one collection round too: the server
      // clusters whatever raw shards made the deadline.
      Matrix all;
      std::size_t responders = 0;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        auto frame = net.uplink(i).receive_by(round);
        if (!frame.has_value()) continue;
        responders += 1;
        Matrix part = decode_matrix(*frame);
        if (part.rows() > 0) all.append_rows(part);
      }
      enforce_availability_floor(responders, cfg.min_round_responders,
                                 "NR round", net.rounds_opened());
      EKM_ENSURES_MSG(all.rows() > 0,
                      "no data source delivered before the round deadline");
      const KMeansResult res = kmeans(Dataset(std::move(all)), solver_options(cfg));
      PipelineResult result;
      result.centers = res.centers;
      result.device_seconds = device_work.total_seconds();
      result.uplink = net.total_uplink();
      result.downlink = net.total_downlink();
      result.summary_points = n_total;
      return result;
    }

    case PipelineKind::kBklw: {
      const double eps = epsilon_for_bklw(cfg.epsilon);
      BklwOptions opts;
      opts.k = cfg.k;
      opts.epsilon = eps;
      opts.delta = cfg.delta;
      opts.intrinsic_dim = cfg.pca_dim;
      opts.total_samples = cfg.coreset_size;
      opts.significant_bits = cfg.significant_bits;
      opts.quant = cfg.quant_policy;
      opts.round_deadline_s = cfg.round_deadline_s;
      opts.min_responders = cfg.min_round_responders;
      opts.reallocate = cfg.reallocate_budget;
      opts.realloc_reserve = cfg.realloc_reserve;
      opts.pipeline = cfg.pipeline_rounds;
      Coreset cs = bklw_coreset(parts, opts, net, device_work, cfg.seed);
      // QT on the server-held coreset is a no-op for communication (the
      // billing happened inside disSS); the points were quantized by each
      // source pre-transmission, which we reproduce here for the cost:
      if (cfg.significant_bits < kDoubleSignificandBits) {
        quantize_points(cs, cfg.significant_bits);
      }
      Matrix centers = solve_summary(cs, cfg);
      if (cfg.refine_iters > 0) {
        centers = refine_distributed(std::move(centers), parts, net,
                                     device_work, cfg);
      }
      PipelineResult result;
      result.centers = std::move(centers);
      result.device_seconds = device_work.total_seconds();
      result.uplink = net.total_uplink();
      result.downlink = net.total_downlink();
      result.summary_points = cs.size();
      return result;
    }

    case PipelineKind::kJlBklw: {  // Algorithm 4
      const double eps = epsilon_for_alg4(cfg.epsilon);
      const std::size_t d1 =
          cfg.jl_dim > 0 ? std::min(cfg.jl_dim, d)
                         : practical_jl_dim(eps, n_total, cfg.k, cfg.delta, d);
      // Data-oblivious: every source builds the same map from the shared
      // seed; nothing about pi1 crosses the network.
      const LinearMap pi1 = make_jl_projection(d, d1, cfg.seed);
      std::vector<Dataset> projected(parts.size());
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (parts[i].empty()) continue;
        auto scope = device_work.measure();
        projected[i] = pi1.apply(parts[i]);
      }
      BklwOptions opts;
      opts.k = cfg.k;
      opts.epsilon = eps;
      opts.delta = cfg.delta;
      opts.intrinsic_dim = cfg.pca_dim;
      opts.total_samples = cfg.coreset_size;
      opts.significant_bits = cfg.significant_bits;
      opts.quant = cfg.quant_policy;
      opts.round_deadline_s = cfg.round_deadline_s;
      opts.min_responders = cfg.min_round_responders;
      opts.reallocate = cfg.reallocate_budget;
      opts.realloc_reserve = cfg.realloc_reserve;
      opts.pipeline = cfg.pipeline_rounds;
      Coreset cs = bklw_coreset(projected, opts, net, device_work, cfg.seed);
      if (cfg.significant_bits < kDoubleSignificandBits) {
        quantize_points(cs, cfg.significant_bits);
      }
      Matrix centers = solve_summary(cs, cfg);  // lifts through V to R^{d1}
      centers = pi1.lift(centers);              // back to R^d
      if (cfg.refine_iters > 0) {
        centers = refine_distributed(std::move(centers), parts, net,
                                     device_work, cfg);
      }
      PipelineResult result;
      result.centers = std::move(centers);
      result.device_seconds = device_work.total_seconds();
      result.uplink = net.total_uplink();
      result.downlink = net.total_downlink();
      result.summary_points = cs.size();
      return result;
    }

    default:
      EKM_EXPECTS_MSG(false, "single-source pipeline requires run_pipeline");
  }
  return {};
}

}  // namespace ekm
