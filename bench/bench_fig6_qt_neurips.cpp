// Reproduces Figure 6: multi-source joint DR+CR+QT on the NeurIPS-scale
// dataset with m = 10 sources (panels as in Figure 5).
#include "bench/bench_qt_common.hpp"

using namespace ekm;
using namespace ekm::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const int mc = args.monte_carlo > 0 ? args.monte_carlo : (args.full ? 10 : 3);

  const Dataset data = neurips_dataset(args, /*n_fast=*/2000, /*d_fast=*/1000);
  ExperimentContext ctx(data, 2, args.seed, /*num_sources=*/10);

  PipelineConfig cfg;
  cfg.epsilon = 0.3;
  cfg.seed = args.seed;
  cfg.coreset_size = std::max<std::size_t>(250, data.size() / 16);
  cfg.jl_dim = 96;
  cfg.jl_dim2 = 48;
  cfg.pca_dim = 20;

  run_qt_sweep("Fig6", "NeurIPS", ctx,
               {PipelineKind::kBklw, PipelineKind::kJlBklw}, cfg,
               qt_sweep_grid(args.full), mc);
  return 0;
}
