#include "linalg/sparse.hpp"

#include <cmath>
#include <limits>

namespace ekm {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols,
                           std::vector<std::size_t> row_ptr,
                           std::vector<std::size_t> col_idx,
                           std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  EKM_EXPECTS_MSG(row_ptr_.size() == rows_ + 1, "row_ptr size mismatch");
  EKM_EXPECTS_MSG(row_ptr_.front() == 0 && row_ptr_.back() == values_.size(),
                  "row_ptr endpoints invalid");
  EKM_EXPECTS_MSG(col_idx_.size() == values_.size(), "cols/values mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    EKM_EXPECTS_MSG(row_ptr_[r] <= row_ptr_[r + 1], "row_ptr not ascending");
  }
  for (std::size_t c : col_idx_) {
    EKM_EXPECTS_MSG(c < cols_, "column index out of range");
  }
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense, double tolerance) {
  std::vector<std::size_t> row_ptr{0};
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  row_ptr.reserve(dense.rows() + 1);
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    auto row = dense.row(r);
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      if (std::fabs(row[c]) > tolerance) {
        col_idx.push_back(c);
        values.push_back(row[c]);
      }
    }
    row_ptr.push_back(values.size());
  }
  return SparseMatrix(dense.rows(), dense.cols(), std::move(row_ptr),
                      std::move(col_idx), std::move(values));
}

Matrix SparseMatrix::to_dense() const {
  Matrix dense(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    auto row = dense.row(r);
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      row[col_idx_[i]] = values_[i];
    }
  }
  return dense;
}

std::span<const std::size_t> SparseMatrix::row_cols(std::size_t r) const {
  EKM_EXPECTS(r < rows_);
  return {col_idx_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

std::span<const double> SparseMatrix::row_values(std::size_t r) const {
  EKM_EXPECTS(r < rows_);
  return {values_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
}

Matrix SparseMatrix::multiply_dense(const Matrix& b) const {
  EKM_EXPECTS_MSG(cols_ == b.rows(), "sparse multiply shape mismatch");
  Matrix c(rows_, b.cols());
  for (std::size_t r = 0; r < rows_; ++r) {
    auto out = c.row(r);
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const double v = values_[i];
      auto brow = b.row(col_idx_[i]);
      for (std::size_t j = 0; j < b.cols(); ++j) out[j] += v * brow[j];
    }
  }
  return c;
}

double SparseMatrix::row_squared_distance(std::size_t r,
                                          std::span<const double> y,
                                          double y_norm_sq) const {
  EKM_EXPECTS(r < rows_);
  EKM_EXPECTS(y.size() == cols_);
  double x_norm_sq = 0.0;
  double xy = 0.0;
  for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
    const double v = values_[i];
    x_norm_sq += v * v;
    xy += v * y[col_idx_[i]];
  }
  // Guard tiny negative results from cancellation.
  return std::max(0.0, x_norm_sq - 2.0 * xy + y_norm_sq);
}

std::vector<double> SparseMatrix::row_norms_sq() const {
  std::vector<double> norms(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      norms[r] += values_[i] * values_[i];
    }
  }
  return norms;
}

SparseAssignment sparse_assign(const SparseMatrix& points, const Matrix& centers,
                               std::span<const double> weights) {
  EKM_EXPECTS(centers.rows() >= 1);
  EKM_EXPECTS(centers.cols() == points.cols());
  EKM_EXPECTS(weights.empty() || weights.size() == points.rows());

  std::vector<double> center_norms(centers.rows());
  for (std::size_t c = 0; c < centers.rows(); ++c) {
    const double nrm = norm2(centers.row(c));
    center_norms[c] = nrm * nrm;
  }

  SparseAssignment out;
  out.assignment.resize(points.rows());
  for (std::size_t r = 0; r < points.rows(); ++r) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < centers.rows(); ++c) {
      const double d2 =
          points.row_squared_distance(r, centers.row(c), center_norms[c]);
      if (d2 < best) {
        best = d2;
        best_c = c;
      }
    }
    out.assignment[r] = best_c;
    out.cost += (weights.empty() ? 1.0 : weights[r]) * best;
  }
  return out;
}

}  // namespace ekm
