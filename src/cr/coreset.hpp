// Coreset representation (Definition 3.2 of the paper).
//
// A coreset is the tuple (S, Δ, w): a weighted point set plus a constant
// cost offset. The paper's definition generalizes classic coresets by the
// Δ term, which FSS needs to account for the energy discarded by its
// PCA step. Points may be stored either in the ambient space or as
// coordinates in a subspace with an explicit orthonormal basis — the
// distinction is what separates FSS's O(kd/ε²) communication cost (basis
// must be shipped) from Algorithm 2's ˜O(k³/ε⁶) (no basis on the wire).
#pragma once

#include <optional>

#include "data/dataset.hpp"
#include "linalg/matrix.hpp"

namespace ekm {

struct Coreset {
  /// Weighted points. If `basis` is set these are coordinates in the
  /// subspace spanned by the rows of *basis; otherwise ambient points.
  Dataset points;
  /// Constant cost offset Δ of Definition 3.2 (eq. (4)).
  double delta = 0.0;
  /// Optional orthonormal basis (t x d, rows orthonormal): the ambient
  /// representation of point i is points.point(i) * basis.
  std::optional<Matrix> basis;

  [[nodiscard]] std::size_t size() const { return points.size(); }

  /// Dimension of the space the coreset's *ambient* points live in.
  [[nodiscard]] std::size_t ambient_dim() const {
    return basis ? basis->cols() : points.dim();
  }

  /// Materializes ambient points (identity if there is no basis).
  [[nodiscard]] Dataset to_ambient() const;

  /// Number of scalars a data source must transmit for this coreset:
  /// points (+basis if present) + weights + Δ. This is the paper's
  /// "communication cost in scalars" for one summary.
  [[nodiscard]] std::size_t scalar_count() const;
};

/// cost(S, X) per eq. (4): weighted cost of the (ambient) points plus Δ.
[[nodiscard]] double coreset_cost(const Coreset& coreset, const Matrix& centers);

/// Checks the ε-coreset inequality (3) for one candidate center set.
/// Returns the tightest ε' such that the costs agree within 1 ± ε'
/// (useful in property tests: assert eps_for(...) <= eps).
[[nodiscard]] double coreset_eps_for(const Coreset& coreset, const Dataset& full,
                                     const Matrix& centers);

}  // namespace ekm
