#include "net/coreset_io.hpp"

#include <fstream>

#include "common/serial.hpp"
#include "net/summary_codec.hpp"

namespace ekm {
namespace {

constexpr std::uint32_t kFileMagic = 0x454b4d43;  // "EKMC"
constexpr std::uint32_t kFileVersion = 1;

}  // namespace

void save_coreset(const Coreset& coreset, const std::filesystem::path& path) {
  const Message frame = encode_coreset(coreset);
  ByteWriter header;
  header.put_u32(kFileMagic);
  header.put_u32(kFileVersion);
  header.put_u64(frame.payload.size());

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path.string());
  out.write(reinterpret_cast<const char*>(header.bytes().data()),
            static_cast<std::streamsize>(header.size_bytes()));
  out.write(reinterpret_cast<const char*>(frame.payload.data()),
            static_cast<std::streamsize>(frame.payload.size()));
  if (!out) throw std::runtime_error("write failed: " + path.string());
}

Coreset load_coreset(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::vector<std::byte> header_bytes(16);
  in.read(reinterpret_cast<char*>(header_bytes.data()), 16);
  if (!in) throw std::runtime_error("truncated header: " + path.string());

  ByteReader header(header_bytes);
  EKM_EXPECTS_MSG(header.get_u32() == kFileMagic, "not a coreset file");
  EKM_EXPECTS_MSG(header.get_u32() == kFileVersion,
                  "unsupported coreset file version");
  const auto payload_size = header.get_u64();

  Message frame;
  frame.payload.resize(payload_size);
  in.read(reinterpret_cast<char*>(frame.payload.data()),
          static_cast<std::streamsize>(payload_size));
  if (!in) throw std::runtime_error("truncated payload: " + path.string());
  return decode_coreset(frame);
}

}  // namespace ekm
