#include "sim/sim_network.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

namespace ekm {

void SimLink::send(Message msg) { net_->do_send(*this, std::move(msg)); }

Message SimLink::receive() { return net_->do_receive(*this); }

SimNetwork::SimNetwork(std::size_t num_sites, const SimScenario& scenario)
    : scenario_(scenario) {
  EKM_EXPECTS(num_sites >= 1);
  EKM_EXPECTS(scenario_.radio.bandwidth_bps > 0.0);
  EKM_EXPECTS(scenario_.seconds_per_scalar >= 0.0);

  sites_.resize(num_sites);
  for (Site& s : sites_) s.radio = scenario_.radio;

  // Site heterogeneity, all drawn once from the scenario seed: an
  // optional uniform speed skew per site, then a straggler subset
  // chosen by shuffle and slowed down.
  Rng rng = make_rng(scenario_.seed, 0x517e5ULL);
  if (scenario_.site_speed_skew > 1.0) {
    std::uniform_real_distribution<double> unif(1.0 / scenario_.site_speed_skew,
                                                1.0);
    for (Site& s : sites_) s.compute_speed *= unif(rng);
  }
  if (scenario_.straggler_fraction > 0.0) {
    const auto stragglers = static_cast<std::size_t>(
        std::ceil(scenario_.straggler_fraction * static_cast<double>(num_sites)));
    std::vector<std::size_t> order(num_sites);
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t i = 0; i < std::min(stragglers, num_sites); ++i) {
      sites_[order[i]].compute_speed /= scenario_.straggler_slowdown;
    }
  }

  up_.reserve(num_sites);
  down_.reserve(num_sites);
  for (std::size_t i = 0; i < num_sites; ++i) {
    up_.emplace_back(SimLink(this, static_cast<std::uint32_t>(i), true,
                             derive_seed(scenario_.seed, 0xF0ULL + 2 * i)));
    down_.emplace_back(SimLink(this, static_cast<std::uint32_t>(i), false,
                               derive_seed(scenario_.seed, 0xF1ULL + 2 * i)));
  }
}

Port& SimNetwork::uplink(std::size_t source) {
  EKM_EXPECTS(source < up_.size());
  return up_[source];
}

Port& SimNetwork::downlink(std::size_t source) {
  EKM_EXPECTS(source < down_.size());
  return down_[source];
}

const SimLink& SimNetwork::uplink_view(std::size_t source) const {
  EKM_EXPECTS(source < up_.size());
  return up_[source];
}

const SimLink& SimNetwork::downlink_view(std::size_t source) const {
  EKM_EXPECTS(source < down_.size());
  return down_[source];
}

const Site& SimNetwork::site(std::size_t i) const {
  EKM_EXPECTS(i < sites_.size());
  return sites_[i];
}

void SimNetwork::do_send(SimLink& link, Message msg) {
  // The paper's ledger bills goodput at send time, exactly as the
  // synchronous Channel does — fault-free runs must match it bitwise.
  link.ledger_.bytes += msg.payload.size();
  link.ledger_.bits += msg.wire_bits;
  link.ledger_.scalars += msg.scalars;
  link.ledger_.messages += 1;

  Site& site = sites_[link.site_];
  const LinkModel& radio = site.radio;
  const double bits = static_cast<double>(msg.wire_bits);
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  // --- sender-side compute: the frame exists only after the actor has
  // spent the virtual CPU time producing its scalars. ---
  double ready;
  if (link.uplink_) {
    site.clock_s += static_cast<double>(msg.scalars) *
                    scenario_.seconds_per_scalar / site.compute_speed;
    if (scenario_.dropout_rate > 0.0 &&
        unif(link.rng_) < scenario_.dropout_rate) {
      // The site is in a dropout window when it reaches for the radio:
      // it sits the outage out, then proceeds.
      site.outages += 1;
      site.clock_s += scenario_.outage_seconds;
      queue_.push({site.clock_s, 0, SimEventType::kOutage, link.site_,
                   link.uplink_, 0, msg.wire_bits});
    }
    ready = site.clock_s;
  } else {
    server_clock_ += static_cast<double>(msg.scalars) *
                     scenario_.seconds_per_scalar / scenario_.server_speed;
    ready = server_clock_;
  }

  // --- transmission attempts: serialize on the link, ride the radio,
  // retransmit on loss until delivered or the retry budget is spent
  // (then deliver anyway: the protocols are lossless at the
  // application layer, and every attempt stays billed). ---
  double start = std::max(ready, link.busy_until_);
  const double base_airtime =
      bits / radio.bandwidth_bps + radio.per_message_latency_s;
  const auto energy_of = [&](double b) { return b * radio.energy_per_bit_j; };
  for (int attempt = 0;; ++attempt) {
    // The event field saturates at 16 bits; the retry *policy* must
    // not, or huge max_retries would wrap and disable loss entirely.
    const auto attempt_tag = static_cast<std::uint16_t>(
        std::min(attempt, 0xFFFF));
    double airtime = base_airtime;
    if (scenario_.jitter_frac > 0.0) {
      airtime *= 1.0 + scenario_.jitter_frac * (2.0 * unif(link.rng_) - 1.0);
    }
    link.stats_.attempts += 1;
    link.stats_.airtime_s += airtime;
    if (link.uplink_) site.energy_j += energy_of(bits);  // transmit energy
    queue_.push({start, 0, SimEventType::kSendStart, link.site_, link.uplink_,
                 attempt_tag, msg.wire_bits});
    const double end = start + airtime;
    const bool lost = attempt < scenario_.max_retries &&
                      scenario_.loss_rate > 0.0 &&
                      unif(link.rng_) < scenario_.loss_rate;
    if (!lost) {
      queue_.push({end, 0, SimEventType::kDeliver, link.site_, link.uplink_,
                   attempt_tag, msg.wire_bits});
      link.busy_until_ = end;
      // Store-and-forward sender: busy until its own frame is through.
      if (link.uplink_) {
        site.clock_s = std::max(site.clock_s, end);
      } else {
        server_clock_ = std::max(server_clock_, end);
      }
      break;
    }
    link.stats_.drops += 1;
    link.stats_.retransmit_bits += msg.wire_bits;
    queue_.push({end, 0, SimEventType::kDrop, link.site_, link.uplink_,
                 attempt_tag, msg.wire_bits});
    // The sender detects the loss after an ack-timeout of one
    // per-frame latency, then retransmits.
    start = end + radio.per_message_latency_s;
  }
  link.in_flight_.push_back(std::move(msg));
}

Message SimNetwork::do_receive(SimLink& link) {
  while (link.arrived_.empty()) {
    EKM_EXPECTS_MSG(!queue_.empty(), "receive on idle simulated network");
    advance_one_event();
  }
  auto [arrival, msg] = std::move(link.arrived_.front());
  link.arrived_.pop_front();
  // The reader blocks until the frame is in: receiving advances the
  // reader's clock to the arrival time (it may already be later).
  if (link.uplink_) {
    server_clock_ = std::max(server_clock_, arrival);
  } else {
    Site& s = sites_[link.site_];
    s.clock_s = std::max(s.clock_s, arrival);
  }
  return std::move(msg);
}

void SimNetwork::advance_one_event() {
  SimEvent ev = queue_.pop();
  clock_ = std::max(clock_, ev.time);
  if (ev.type == SimEventType::kDeliver) {
    SimLink& link = ev.uplink ? up_[ev.site] : down_[ev.site];
    EKM_ENSURES_MSG(!link.in_flight_.empty(),
                    "delivery event with no frame in flight");
    link.arrived_.emplace_back(ev.time, std::move(link.in_flight_.front()));
    link.in_flight_.pop_front();
    if (!ev.uplink) {
      // Receive energy for the downlink frame, billed at the transmit
      // rate (an upper bound; see link_model.hpp round_trip_joules).
      Site& s = sites_[ev.site];
      s.energy_j += static_cast<double>(ev.bits) * s.radio.energy_per_bit_j;
    }
  }
  log_.push_back(ev);
}

double SimNetwork::finish() {
  while (!queue_.empty()) advance_one_event();
  // Events are processed lazily (a site whose frame is read late may
  // have committed an earlier virtual time than events already
  // drained), so canonicalize the trace into (time, push-seq) order.
  std::sort(log_.begin(), log_.end(),
            [](const SimEvent& a, const SimEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
  double completion = std::max(clock_, server_clock_);
  for (const Site& s : sites_) completion = std::max(completion, s.clock_s);
  for (const SimLink& l : up_) completion = std::max(completion, l.busy_until_);
  for (const SimLink& l : down_) completion = std::max(completion, l.busy_until_);
  return completion;
}

double SimNetwork::energy_joules() const {
  double total = 0.0;
  for (const Site& s : sites_) total += s.energy_j;
  return total;
}

std::uint64_t SimNetwork::total_outages() const {
  std::uint64_t total = 0;
  for (const Site& s : sites_) total += s.outages;
  return total;
}

LinkStats SimNetwork::total_uplink_stats() const {
  LinkStats t;
  for (const SimLink& l : up_) t += l.stats();
  return t;
}

LinkStats SimNetwork::total_downlink_stats() const {
  LinkStats t;
  for (const SimLink& l : down_) t += l.stats();
  return t;
}

}  // namespace ekm
