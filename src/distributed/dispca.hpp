// Distributed PCA (disPCA) — [Balcan–Kanchanapally–Liang–Woodruff,
// NIPS'14]; §5.1 of the paper, step 1 of BKLW.
//
// Each data source computes a local thin SVD A_i = U_i Σ_i V_i^T and
// uplinks the first t1 singular values and right singular vectors; the
// server stacks Y_i = Σ_i^(t1) (V_i^(t1))^T, computes a global SVD of Y
// and keeps the first t2 right singular vectors as the approximate
// principal subspace of ∪_i P_i (Theorem 5.1). The uplink cost
// m·(t1 + t1·d) scalars is what makes BKLW's communication linear in d.
#pragma once

#include <span>

#include "common/timer.hpp"
#include "data/dataset.hpp"
#include "linalg/matrix.hpp"
#include "net/channel.hpp"

namespace ekm {

struct DisPcaOptions {
  std::size_t t1 = 8;  ///< components each source uplinks
  std::size_t t2 = 8;  ///< components of the merged subspace

  /// Deadline budget for the collection round (Fabric::open_round);
  /// sources whose (Σ, V) uplink misses it are left out of the merged
  /// subspace. Infinity = the paper's wait-for-everyone round.
  double round_deadline_s = kNoDeadline;
  /// Minimum sources that must make the round; fewer throws.
  std::size_t min_responders = 1;
};

struct DisPcaResult {
  Matrix v;  ///< d x t2, orthonormal columns: the global principal basis
};

/// Runs disPCA over `parts` (one Dataset per source) through `net`.
/// Source-side computation (the local SVDs) is accumulated into
/// `device_work`; the server-side merge is not. The resulting basis is
/// also pushed down every downlink, mirroring the real protocol.
[[nodiscard]] DisPcaResult dispca(std::span<const Dataset> parts,
                                  const DisPcaOptions& opts, Fabric& net,
                                  Stopwatch& device_work);

}  // namespace ekm
