// Scenario sweep over the discrete-event edge-network simulator: radio
// classes (LoRa / BLE / Wi-Fi / 5G) × fault rates (loss+dropout) for the
// BKLW multi-source pipeline. Emits per-cell deployment metrics —
// virtual completion time, site energy, goodput vs retransmitted bits,
// attempt/drop counts, and the k-means cost ratio against the NR
// (ship-everything) baseline — as BENCH_sim.json so successive PRs can
// track the trajectory, PR-1-style.
//
// Every reported number lives on the virtual clock or in a ledger, so
// the whole JSON is bitwise deterministic for a fixed --seed at any
// EKM_THREADS setting (tests/test_sim.cpp holds the simulator to that).
//
// Usage: bench_sim_scenarios [--n N] [--d D] [--k K] [--sources M]
//                            [--seed S] [--json PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "data/generators.hpp"
#include "kmeans/cost.hpp"
#include "sim/coordinator.hpp"

namespace {

using namespace ekm;

struct Cell {
  std::string radio;
  double fault = 0.0;
  SimReport report;
  double cost_ratio = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 4000, d = 32, k = 4, sources = 8;
  std::uint64_t seed = 7;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](std::size_t& out) {
      if (i + 1 < argc) out = static_cast<std::size_t>(std::atoll(argv[++i]));
    };
    if (std::strcmp(argv[i], "--n") == 0) next(n);
    else if (std::strcmp(argv[i], "--d") == 0) next(d);
    else if (std::strcmp(argv[i], "--k") == 0) next(k);
    else if (std::strcmp(argv[i], "--sources") == 0) next(sources);
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  GaussianMixtureSpec spec;
  spec.n = n;
  spec.dim = d;
  spec.k = k;
  Rng data_rng = make_rng(seed, 0xdadaULL);
  const Dataset data = make_gaussian_mixture(spec, data_rng);
  Rng part_rng = make_rng(seed, 0x9a87ULL);
  const std::vector<Dataset> parts = partition_random(data, sources, part_rng);

  PipelineConfig cfg;
  cfg.k = k;
  cfg.epsilon = 0.3;
  cfg.seed = seed;
  cfg.coreset_size = 300;
  cfg.pca_dim = 16;

  // The ship-everything baseline the cost ratios are against.
  const PipelineResult nr = run_distributed_pipeline(
      PipelineKind::kNoReduction, parts, cfg);
  const double nr_cost = kmeans_cost(data, nr.centers);

  const std::vector<std::string> radios = {"lora", "ble", "wifi", "5g"};
  const std::vector<double> faults = {0.0, 0.05, 0.2};

  std::vector<Cell> cells;
  std::printf("sim scenarios  n=%zu d=%zu k=%zu sources=%zu pipeline=BKLW\n",
              n, d, k, sources);
  std::printf("%-6s %-6s %14s %12s %14s %14s %9s %7s %10s\n", "radio",
              "fault", "completion_s", "energy_J", "goodput_bits",
              "retx_bits", "attempts", "drops", "cost_ratio");
  for (const std::string& radio : radios) {
    for (double fault : faults) {
      char spec_buf[128];
      std::snprintf(spec_buf, sizeof spec_buf,
                    "radio=%s,loss=%.3f,dropout=%.3f,outage=2,jitter=%.3f,"
                    "seed=%llu",
                    radio.c_str(), fault, fault / 2.0, fault / 2.0,
                    static_cast<unsigned long long>(seed));
      const Coordinator coord(parse_scenario(spec_buf));
      Cell cell;
      cell.radio = radio;
      cell.fault = fault;
      cell.report = coord.run(PipelineKind::kBklw, parts, cfg);
      cell.cost_ratio =
          kmeans_cost(data, cell.report.result.centers) / nr_cost;
      const LinkStats& up = cell.report.uplink_stats;
      std::printf("%-6s %-6.2f %14.4f %12.4e %14llu %14llu %9llu %7llu %10.4f\n",
                  radio.c_str(), fault, cell.report.completion_seconds,
                  cell.report.energy_joules,
                  static_cast<unsigned long long>(cell.report.result.uplink.bits),
                  static_cast<unsigned long long>(up.retransmit_bits),
                  static_cast<unsigned long long>(up.attempts),
                  static_cast<unsigned long long>(up.drops), cell.cost_ratio);
      cells.push_back(std::move(cell));
    }
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"sim_scenarios\",\n"
                 "  \"pipeline\": \"bklw\",\n"
                 "  \"n\": %zu, \"d\": %zu, \"k\": %zu, \"sources\": %zu,\n"
                 "  \"seed\": %llu,\n"
                 "  \"nr_cost\": %.17g,\n"
                 "  \"cells\": [\n",
                 n, d, k, sources, static_cast<unsigned long long>(seed),
                 nr_cost);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      const LinkStats& up = c.report.uplink_stats;
      std::fprintf(
          f,
          "    {\"radio\": \"%s\", \"fault_rate\": %.3f,\n"
          "     \"completion_seconds\": %.17g, \"energy_joules\": %.17g,\n"
          "     \"goodput_bits\": %llu, \"goodput_scalars\": %llu,\n"
          "     \"retransmit_bits\": %llu, \"attempts\": %llu, \"drops\": %llu,\n"
          "     \"uplink_airtime_seconds\": %.17g, \"events\": %zu,\n"
          "     \"cost_ratio_vs_nr\": %.17g}%s\n",
          c.radio.c_str(), c.fault, c.report.completion_seconds,
          c.report.energy_joules,
          static_cast<unsigned long long>(c.report.result.uplink.bits),
          static_cast<unsigned long long>(c.report.result.uplink.scalars),
          static_cast<unsigned long long>(up.retransmit_bits),
          static_cast<unsigned long long>(up.attempts),
          static_cast<unsigned long long>(up.drops), up.airtime_s,
          c.report.event_log.size(), c.cost_ratio,
          i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return 0;
}
