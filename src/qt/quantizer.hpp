// Rounding-based quantizer (§6.1, eq. (13) of the paper).
//
// Γ keeps the leading `s` stored significand bits of the IEEE-754 double
// representation and rounds the remainder, so |x - Γ(x)| <= |x| · 2^{-s}
// (eq. (14)). Implemented directly on the bit pattern: add half an ulp at
// position s, then truncate — the carry into the exponent that rounding
// up can cause is handled by integer addition for free.
//
// A quantized scalar costs 1 sign + 11 exponent + s significand bits on
// the wire (the receiver re-expands to a full double), which is how the
// communication accounting in Figures 3–6 measures the QT saving.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "linalg/matrix.hpp"

namespace ekm {

/// Number of stored significand bits of an IEEE-754 double (a(1..52);
/// a(0) is implicit). s == kDoubleSignificandBits means "no quantization".
inline constexpr int kDoubleSignificandBits = 52;

class RoundingQuantizer {
 public:
  /// `significant_bits` = the paper's s, clamped to [1, 52].
  explicit RoundingQuantizer(int significant_bits);

  [[nodiscard]] int significant_bits() const noexcept { return s_; }

  /// Γ(x). Zero, infinities and NaN pass through unchanged; subnormals
  /// are quantized on their raw bit pattern (error still bounded by the
  /// value's own magnitude scale).
  [[nodiscard]] double quantize(double x) const noexcept;

  /// Element-wise Γ over a matrix / dataset (weights are NOT quantized —
  /// the paper applies Γ to the coreset points only, §6 footnote 6).
  [[nodiscard]] Matrix quantize(const Matrix& m) const;
  [[nodiscard]] Dataset quantize(const Dataset& data) const;

  /// Wire cost of one quantized scalar in bits: 1 + 11 + s.
  [[nodiscard]] std::size_t bits_per_scalar() const noexcept {
    return 12 + static_cast<std::size_t>(s_);
  }

  /// A-priori bound (14): ∆_QT <= 2^{-s} · max_p ||p||.
  [[nodiscard]] double max_error_bound(double max_point_norm) const noexcept;

 private:
  int s_;
};

/// Measured quantization error max_p ||p - Γ(p)|| over a dataset (the
/// exact ∆_QT of §6.1; tests check measured <= bound).
[[nodiscard]] double measured_quantization_error(const Dataset& original,
                                                 const Dataset& quantized);

}  // namespace ekm
